package feasibility

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestTable3ExactPaperNumbers pins the reproduction to the paper's
// published Table 3: cloud 200 Tbps / 400 M cores / 80 EB versus devices
// 5000 Tbps / 500 M cores / 210 EB.
func TestTable3ExactPaperNumbers(t *testing.T) {
	c := PaperCloud().Estimate()
	d := PaperDevices().Estimate()

	if c.BandwidthTbps != 200 {
		t.Errorf("cloud bandwidth = %v Tbps, want 200", c.BandwidthTbps)
	}
	if c.Cores != 400e6 {
		t.Errorf("cloud cores = %v, want 400M", c.Cores)
	}
	if c.StorageEB != 80 {
		t.Errorf("cloud storage = %v EB, want 80", c.StorageEB)
	}
	if d.BandwidthTbps != 5000 {
		t.Errorf("device bandwidth = %v Tbps, want 5000", d.BandwidthTbps)
	}
	if d.Cores != 500e6 {
		t.Errorf("device cores = %v, want 500M", d.Cores)
	}
	if math.Abs(d.StorageEB-210) > 1e-9 {
		t.Errorf("device storage = %v EB, want 210", d.StorageEB)
	}
	if !d.Covers(c) {
		t.Error("paper's conclusion — sufficient capacity — does not hold")
	}
}

func TestTable3Rows(t *testing.T) {
	rows := Table3(PaperCloud(), PaperDevices())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string][2]string{
		"Bandwidth": {"200 Tbps", "5000 Tbps"},
		"Cores":     {"400 M", "500 M"},
		"Storage":   {"80 EB", "210 EB"},
	}
	for _, r := range rows {
		w, ok := want[r.Resource]
		if !ok {
			t.Errorf("unexpected resource %q", r.Resource)
			continue
		}
		if r.Cloud != w[0] || r.Devices != w[1] {
			t.Errorf("%s: got %s vs %s, want %s vs %s", r.Resource, r.Cloud, r.Devices, w[0], w[1])
		}
		if !r.Sufficient {
			t.Errorf("%s: paper says devices suffice", r.Resource)
		}
	}
}

func TestCapacityString(t *testing.T) {
	s := PaperCloud().Estimate().String()
	if !strings.Contains(s, "200 Tbps") || !strings.Contains(s, "400 M cores") || !strings.Contains(s, "80 EB") {
		t.Errorf("string = %q", s)
	}
}

func TestCoversPartialFailure(t *testing.T) {
	a := Capacity{BandwidthTbps: 10, Cores: 10, StorageEB: 10}
	b := Capacity{BandwidthTbps: 10, Cores: 11, StorageEB: 10}
	if a.Covers(b) {
		t.Error("a lacks cores yet covers b")
	}
	if !b.Covers(a) {
		t.Error("b should cover a")
	}
}

func TestZeroTrafficShareNoScale(t *testing.T) {
	p := PaperCloud()
	p.ProviderTrafficShare = 0
	c := p.Estimate()
	if c.Cores != 100e6 {
		t.Errorf("unscaled cores = %v", c.Cores)
	}
	if c.BandwidthTbps != 0 {
		t.Errorf("bandwidth with zero share = %v", c.BandwidthTbps)
	}
}

func TestZeroComputeDiscount(t *testing.T) {
	p := PaperDevices()
	p.ComputeDiscount = 0
	if got := p.Estimate().Cores; got != 4e9 {
		t.Errorf("undiscounted cores = %v, want 4e9", got)
	}
}

func TestQualityDiscount(t *testing.T) {
	raw := PaperDevices().Estimate()
	q := QualityDiscount{Availability: 0.5, RedundancyFactor: 3}
	eff := q.Apply(raw)
	if math.Abs(eff.StorageEB-70) > 1e-9 {
		t.Errorf("effective storage = %v EB, want 70", eff.StorageEB)
	}
	if eff.Cores != 250e6 {
		t.Errorf("effective cores = %v, want 250M", eff.Cores)
	}
	if math.Abs(eff.BandwidthTbps-5000.0/6) > 1e-9 {
		t.Errorf("effective bandwidth = %v", eff.BandwidthTbps)
	}
	// With the paper's numbers, 3× redundancy at 50% availability still
	// leaves the storage conclusion intact (70 < 80 fails!) — the §5.2
	// "quality vs quantity" tension made concrete.
	cloud := PaperCloud().Estimate()
	if eff.StorageEB >= cloud.StorageEB {
		t.Error("expected the quality discount to flip the storage conclusion at r=3, a=0.5")
	}
	// Degenerate parameters clamp to no-op.
	noop := QualityDiscount{}.Apply(raw)
	if noop != raw {
		t.Error("zero-value discount should be identity")
	}
}

func TestBreakEvenRedundancy(t *testing.T) {
	got := BreakEvenRedundancy(PaperCloud(), PaperDevices())
	if math.Abs(got-210.0/80) > 1e-9 {
		t.Errorf("break-even redundancy = %v, want 2.625", got)
	}
	empty := CloudParams{}
	if BreakEvenRedundancy(empty, PaperDevices()) != 0 {
		t.Error("zero cloud storage should yield 0")
	}
}

// Property: device capacity is monotone in population counts.
func TestMonotoneInCounts(t *testing.T) {
	f := func(extraPCs uint32) bool {
		base := PaperDevices()
		grown := PaperDevices()
		grown.Classes[0].Count += float64(extraPCs)
		b, g := base.Estimate(), grown.Estimate()
		return g.BandwidthTbps >= b.BandwidthTbps && g.Cores >= b.Cores && g.StorageEB >= b.StorageEB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: quality discount never increases capacity.
func TestDiscountNeverGains(t *testing.T) {
	f := func(a, r float64) bool {
		avail := math.Mod(math.Abs(a), 1)
		red := 1 + math.Mod(math.Abs(r), 10)
		if avail == 0 {
			avail = 0.5
		}
		raw := PaperDevices().Estimate()
		eff := QualityDiscount{Availability: avail, RedundancyFactor: red}.Apply(raw)
		return eff.BandwidthTbps <= raw.BandwidthTbps && eff.Cores <= raw.Cores && eff.StorageEB <= raw.StorageEB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
