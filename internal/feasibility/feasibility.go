// Package feasibility implements the paper's §4 "Infrastructure
// Feasibility" back-of-the-envelope model: it compares the estimated
// capacity of global cloud infrastructure with the currently-unproductive
// capacity of user devices across three resources — bandwidth, compute,
// and storage — and regenerates Table 3 from the paper's published
// constants. Every constant is a parameter, so sensitivity sweeps can
// probe how robust the "there appears to be sufficient capacity"
// conclusion is.
package feasibility

import "fmt"

// Capacity is an absolute resource estimate.
type Capacity struct {
	// BandwidthTbps is aggregate upstream bandwidth in terabits/second.
	BandwidthTbps float64
	// Cores is the number of server-equivalent cores.
	Cores float64
	// StorageEB is storage in exabytes.
	StorageEB float64
}

// Covers reports whether c meets or exceeds need on every resource.
func (c Capacity) Covers(need Capacity) bool {
	return c.BandwidthTbps >= need.BandwidthTbps &&
		c.Cores >= need.Cores &&
		c.StorageEB >= need.StorageEB
}

// String formats the capacity in the paper's Table 3 units.
func (c Capacity) String() string {
	return fmt.Sprintf("%.0f Tbps / %.0f M cores / %.0f EB",
		c.BandwidthTbps, c.Cores/1e6, c.StorageEB)
}

// CloudParams parameterizes the cloud-side estimate. The paper starts from
// Google (no public data; reports suggest ~1 M servers, ~10 EB a few years
// prior, extrapolated to 100 M cores and 20 EB "today"), then scales by
// Google's share of Internet traffic (Google claims a quarter).
type CloudParams struct {
	// ProviderServers is the reference provider's server count.
	ProviderServers float64
	// CoresPerServer extrapolates servers to cores.
	CoresPerServer float64
	// ProviderStorageEB is the reference provider's storage.
	ProviderStorageEB float64
	// InternetTrafficTbps is total Internet traffic.
	InternetTrafficTbps float64
	// ProviderTrafficShare is the reference provider's share of traffic;
	// the inverse is the scale-up factor to "all cloud providers".
	ProviderTrafficShare float64
}

// PaperCloud returns the constants the paper uses in §4.
func PaperCloud() CloudParams {
	return CloudParams{
		ProviderServers:      1e6,
		CoresPerServer:       100,
		ProviderStorageEB:    20,
		InternetTrafficTbps:  200,
		ProviderTrafficShare: 0.25,
	}
}

// Estimate computes the cloud capacity.
func (p CloudParams) Estimate() Capacity {
	scale := 1.0
	if p.ProviderTrafficShare > 0 {
		scale = 1 / p.ProviderTrafficShare
	}
	providerBandwidth := p.InternetTrafficTbps * p.ProviderTrafficShare
	return Capacity{
		BandwidthTbps: providerBandwidth * scale,
		Cores:         p.ProviderServers * p.CoresPerServer * scale,
		StorageEB:     p.ProviderStorageEB * scale,
	}
}

// DeviceClass describes one population of user devices.
type DeviceClass struct {
	Name string
	// Count is the worldwide population.
	Count float64
	// UnusedCores is the spare cores per device.
	UnusedCores float64
	// FreeStorageGB is the spare storage per device.
	FreeStorageGB float64
	// UpstreamMbps is the device's upstream link.
	UpstreamMbps float64
	// ComputeUsable is false for battery-constrained devices, which the
	// paper excludes from the compute pool.
	ComputeUsable bool
}

// DeviceParams parameterizes the device-side estimate.
type DeviceParams struct {
	Classes []DeviceClass
	// ComputeDiscount divides raw device cores to get server-equivalent
	// cores (the paper uses 8: weaker processors plus power management).
	ComputeDiscount float64
}

// PaperDevices returns the §4 device populations: 2 B PCs (2 spare cores,
// 100 GB free, 1 Mbps up), 2 B smartphones (1 core, negligible storage,
// 1 Mbps up), 1 B tablets (1 core, 10 GB, 1 Mbps up), compute discount 8,
// mobile compute excluded.
func PaperDevices() DeviceParams {
	return DeviceParams{
		Classes: []DeviceClass{
			{Name: "personal computers", Count: 2e9, UnusedCores: 2, FreeStorageGB: 100, UpstreamMbps: 1, ComputeUsable: true},
			{Name: "smartphones", Count: 2e9, UnusedCores: 1, FreeStorageGB: 0, UpstreamMbps: 1, ComputeUsable: false},
			{Name: "tablets", Count: 1e9, UnusedCores: 1, FreeStorageGB: 10, UpstreamMbps: 1, ComputeUsable: false},
		},
		ComputeDiscount: 8,
	}
}

// Estimate computes the device-fleet capacity.
func (p DeviceParams) Estimate() Capacity {
	var c Capacity
	for _, cl := range p.Classes {
		c.BandwidthTbps += cl.Count * cl.UpstreamMbps / 1e6 // Mbps → Tbps
		c.StorageEB += cl.Count * cl.FreeStorageGB / 1e9    // GB → EB
		if cl.ComputeUsable {
			cores := cl.Count * cl.UnusedCores
			if p.ComputeDiscount > 0 {
				cores /= p.ComputeDiscount
			}
			c.Cores += cores
		}
	}
	return c
}

// Table3Row is one row of the paper's Table 3.
type Table3Row struct {
	Resource string
	Cloud    string
	Devices  string
	// Sufficient reports whether device capacity covers the cloud side.
	Sufficient bool
}

// Table3 regenerates the paper's Table 3 from the given parameters (pass
// PaperCloud()/PaperDevices() for the published numbers).
func Table3(cloud CloudParams, devices DeviceParams) []Table3Row {
	c := cloud.Estimate()
	d := devices.Estimate()
	return []Table3Row{
		{
			Resource:   "Bandwidth",
			Cloud:      fmt.Sprintf("%.0f Tbps", c.BandwidthTbps),
			Devices:    fmt.Sprintf("%.0f Tbps", d.BandwidthTbps),
			Sufficient: d.BandwidthTbps >= c.BandwidthTbps,
		},
		{
			Resource:   "Cores",
			Cloud:      fmt.Sprintf("%.0f M", c.Cores/1e6),
			Devices:    fmt.Sprintf("%.0f M", d.Cores/1e6),
			Sufficient: d.Cores >= c.Cores,
		},
		{
			Resource:   "Storage",
			Cloud:      fmt.Sprintf("%.0f EB", c.StorageEB),
			Devices:    fmt.Sprintf("%.0f EB", d.StorageEB),
			Sufficient: d.StorageEB >= c.StorageEB,
		},
	}
}

// QualityDiscount models §5.2's "infrastructure quality vs quantity":
// device capacity must be derated for availability (churn) and the
// redundancy overhead needed to mask it before it is comparable to
// datacenter capacity.
type QualityDiscount struct {
	// Availability is the long-run fraction of time a device is reachable.
	Availability float64
	// RedundancyFactor is the storage/bandwidth expansion (replication or
	// erasure overhead) required to ride out churn.
	RedundancyFactor float64
}

// Apply derates raw device capacity to effective capacity.
func (q QualityDiscount) Apply(c Capacity) Capacity {
	avail := q.Availability
	if avail <= 0 || avail > 1 {
		avail = 1
	}
	red := q.RedundancyFactor
	if red < 1 {
		red = 1
	}
	return Capacity{
		BandwidthTbps: c.BandwidthTbps * avail / red,
		Cores:         c.Cores * avail,
		StorageEB:     c.StorageEB / red,
	}
}

// BreakEvenRedundancy returns the maximum redundancy factor at which the
// derated device fleet still covers cloud storage, holding availability
// fixed. It answers: how much churn-masking overhead can the §4 conclusion
// absorb before it flips?
func BreakEvenRedundancy(cloud CloudParams, devices DeviceParams) float64 {
	c := cloud.Estimate()
	d := devices.Estimate()
	if c.StorageEB <= 0 {
		return 0
	}
	return d.StorageEB / c.StorageEB
}
