package identity

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/cryptoutil"
)

// Certificate binds a subject name to a public key under a CA's signature,
// valid within [NotBefore, NotAfter) of simulation time.
type Certificate struct {
	Serial     uint64
	Subject    string
	SubjectKey ed25519.PublicKey
	Issuer     string
	NotBefore  time.Duration
	NotAfter   time.Duration
	Sig        []byte
}

func (c *Certificate) signingBytes() []byte {
	var buf []byte
	var scratch [8]byte
	put := func(b []byte) {
		binary.BigEndian.PutUint64(scratch[:], uint64(len(b)))
		buf = append(buf, scratch[:]...)
		buf = append(buf, b...)
	}
	binary.BigEndian.PutUint64(scratch[:], c.Serial)
	buf = append(buf, scratch[:]...)
	put([]byte(c.Subject))
	put(c.SubjectKey)
	put([]byte(c.Issuer))
	binary.BigEndian.PutUint64(scratch[:], uint64(c.NotBefore))
	buf = append(buf, scratch[:]...)
	binary.BigEndian.PutUint64(scratch[:], uint64(c.NotAfter))
	buf = append(buf, scratch[:]...)
	return buf
}

// CA is a certification authority: the single point of administrative
// control the paper warns about. Compromise() hands the signing key to an
// attacker, after which rogue certificates verify exactly like legitimate
// ones — there is no in-band way for a verifier to tell the difference.
type CA struct {
	name       string
	key        *cryptoutil.KeyPair
	nextSerial uint64
	revoked    map[uint64]bool
	issued     int
}

// NewCA creates a certification authority with a fresh key.
func NewCA(rand io.Reader, name string) (*CA, error) {
	kp, err := cryptoutil.GenerateKeyPair(rand)
	if err != nil {
		return nil, err
	}
	return &CA{name: name, key: kp, revoked: map[uint64]bool{}}, nil
}

// Name returns the CA's name.
func (ca *CA) Name() string { return ca.name }

// PublicKey returns the CA verification key that relying parties pin.
func (ca *CA) PublicKey() ed25519.PublicKey { return ca.key.Public }

// Issued returns how many certificates the CA has signed.
func (ca *CA) Issued() int { return ca.issued }

// Issue signs a certificate for subject/key valid over the given window.
func (ca *CA) Issue(subject string, key ed25519.PublicKey, notBefore, notAfter time.Duration) (*Certificate, error) {
	if notAfter <= notBefore {
		return nil, fmt.Errorf("identity: certificate window [%v, %v) is empty", notBefore, notAfter)
	}
	ca.nextSerial++
	ca.issued++
	cert := &Certificate{
		Serial:     ca.nextSerial,
		Subject:    subject,
		SubjectKey: key,
		Issuer:     ca.name,
		NotBefore:  notBefore,
		NotAfter:   notAfter,
	}
	cert.Sig = ca.key.Sign(cert.signingBytes())
	return cert, nil
}

// Revoke adds a serial to the CA's revocation list.
func (ca *CA) Revoke(serial uint64) { ca.revoked[serial] = true }

// CRL returns a copy of the revocation list.
func (ca *CA) CRL() map[uint64]bool {
	out := make(map[uint64]bool, len(ca.revoked))
	for k, v := range ca.revoked {
		out[k] = v
	}
	return out
}

// Compromise returns the CA's private signing key, modelling a CA breach
// (DigiNotar-style). The attacker can then call ForgeCertificate.
func (ca *CA) Compromise() *cryptoutil.KeyPair { return ca.key }

// ForgeCertificate signs an arbitrary binding with a stolen CA key. The
// result is indistinguishable from a legitimate certificate to verifiers.
func ForgeCertificate(stolen *cryptoutil.KeyPair, issuerName, subject string, key ed25519.PublicKey, notBefore, notAfter time.Duration) *Certificate {
	cert := &Certificate{
		Serial:     1 << 62, // attacker-chosen; CRL won't contain it
		Subject:    subject,
		SubjectKey: key,
		Issuer:     issuerName,
		NotBefore:  notBefore,
		NotAfter:   notAfter,
	}
	cert.Sig = stolen.Sign(cert.signingBytes())
	return cert
}

// Verification errors.
var (
	ErrUnknownIssuer = errors.New("identity: certificate issuer not trusted")
	ErrBadSignature  = errors.New("identity: certificate signature invalid")
	ErrExpired       = errors.New("identity: certificate outside validity window")
	ErrRevoked       = errors.New("identity: certificate revoked")
)

// TrustStore is a verifier's set of pinned CA keys plus any CRLs it has
// fetched. CRL freshness is the verifier's problem — exactly the revocation
// weakness the paper references.
type TrustStore struct {
	cas  map[string]ed25519.PublicKey
	crls map[string]map[uint64]bool
}

// NewTrustStore creates an empty trust store.
func NewTrustStore() *TrustStore {
	return &TrustStore{cas: map[string]ed25519.PublicKey{}, crls: map[string]map[uint64]bool{}}
}

// AddCA pins a CA key under its name.
func (ts *TrustStore) AddCA(name string, key ed25519.PublicKey) { ts.cas[name] = key }

// SetCRL installs a revocation list for an issuer (e.g. fetched
// periodically).
func (ts *TrustStore) SetCRL(issuer string, crl map[uint64]bool) { ts.crls[issuer] = crl }

// Verify checks a certificate at the given simulation time: trusted
// issuer, valid signature, within validity window, not in the installed
// CRL.
func (ts *TrustStore) Verify(cert *Certificate, now time.Duration) error {
	caKey, ok := ts.cas[cert.Issuer]
	if !ok {
		return ErrUnknownIssuer
	}
	if !cryptoutil.Verify(caKey, cert.signingBytes(), cert.Sig) {
		return ErrBadSignature
	}
	if now < cert.NotBefore || now >= cert.NotAfter {
		return ErrExpired
	}
	if crl, ok := ts.crls[cert.Issuer]; ok && crl[cert.Serial] {
		return ErrRevoked
	}
	return nil
}
