package identity

import (
	"io"

	"repro/internal/cryptoutil"
)

// WebOfTrust is a decentralized endorsement graph: members sign statements
// that they have verified another member's key↔name binding. A verifier
// trusts a subject if an endorsement path of bounded depth connects them.
//
// The structure is deliberately faithful to PGP-style webs of trust,
// including the weakness §3.1 cites: a Sybil attacker can manufacture an
// arbitrarily large clique of mutually endorsing identities, and a single
// careless endorsement by an honest member connects the entire clique to
// the honest web.
type WebOfTrust struct {
	// endorsements[from] lists fingerprints `from` has endorsed; each entry
	// is signature-checked at insertion.
	endorsements map[cryptoutil.Hash][]cryptoutil.Hash
	members      map[cryptoutil.Hash]*Identity
}

// NewWebOfTrust creates an empty web.
func NewWebOfTrust() *WebOfTrust {
	return &WebOfTrust{
		endorsements: map[cryptoutil.Hash][]cryptoutil.Hash{},
		members:      map[cryptoutil.Hash]*Identity{},
	}
}

// AddMember registers an identity in the web.
func (w *WebOfTrust) AddMember(id *Identity) { w.members[id.Fingerprint()] = id }

// Member returns a registered identity by fingerprint.
func (w *WebOfTrust) Member(fp cryptoutil.Hash) *Identity { return w.members[fp] }

// NumMembers returns the number of registered identities.
func (w *WebOfTrust) NumMembers() int { return len(w.members) }

// endorsementMsg is the canonical signed statement.
func endorsementMsg(from, to cryptoutil.Hash) []byte {
	msg := make([]byte, 0, 64+12)
	msg = append(msg, []byte("wot-endorse|")...)
	msg = append(msg, from[:]...)
	msg = append(msg, to[:]...)
	return msg
}

// Endorse records that signer vouches for the subject fingerprint. The
// endorsement is signed and verified before insertion; both parties must be
// registered members.
func (w *WebOfTrust) Endorse(signer *Identity, subject cryptoutil.Hash) bool {
	from := signer.Fingerprint()
	if _, ok := w.members[from]; !ok {
		return false
	}
	if _, ok := w.members[subject]; !ok {
		return false
	}
	msg := endorsementMsg(from, subject)
	sig := signer.Key.Sign(msg)
	if !cryptoutil.Verify(signer.Public(), msg, sig) {
		return false
	}
	for _, existing := range w.endorsements[from] {
		if existing == subject {
			return true
		}
	}
	w.endorsements[from] = append(w.endorsements[from], subject)
	return true
}

// TrustPath returns the shortest endorsement path from verifier to subject
// with at most maxDepth hops, or nil if none exists. A verifier implicitly
// trusts itself.
func (w *WebOfTrust) TrustPath(verifier, subject cryptoutil.Hash, maxDepth int) []cryptoutil.Hash {
	if verifier == subject {
		return []cryptoutil.Hash{verifier}
	}
	type queued struct {
		fp   cryptoutil.Hash
		path []cryptoutil.Hash
	}
	visited := map[cryptoutil.Hash]bool{verifier: true}
	queue := []queued{{fp: verifier, path: []cryptoutil.Hash{verifier}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.path)-1 >= maxDepth {
			continue
		}
		for _, next := range w.endorsements[cur.fp] {
			if visited[next] {
				continue
			}
			visited[next] = true
			path := append(append([]cryptoutil.Hash{}, cur.path...), next)
			if next == subject {
				return path
			}
			queue = append(queue, queued{fp: next, path: path})
		}
	}
	return nil
}

// Trusts reports whether verifier reaches subject within maxDepth hops.
func (w *WebOfTrust) Trusts(verifier, subject cryptoutil.Hash, maxDepth int) bool {
	return w.TrustPath(verifier, subject, maxDepth) != nil
}

// SybilRing injects n attacker-controlled identities endorsing each other
// in a hub-and-spoke pattern (the hub endorses every spoke and vice versa
// — the cheapest topology that makes the whole ring reachable within two
// hops of any entry point), returning their fingerprints. Until an honest
// member endorses one of them the ring is isolated; afterwards every ring
// member becomes reachable — the amplification the paper warns about.
func (w *WebOfTrust) SybilRing(rand io.Reader, n int) ([]cryptoutil.Hash, error) {
	ids := make([]*Identity, n)
	fps := make([]cryptoutil.Hash, n)
	for i := 0; i < n; i++ {
		id, err := New(rand, "sybil", MechanismPseudonym)
		if err != nil {
			return nil, err
		}
		ids[i] = id
		fps[i] = id.Fingerprint()
		w.AddMember(id)
	}
	for i := 1; i < n; i++ {
		w.Endorse(ids[0], fps[i])
		w.Endorse(ids[i], fps[0])
	}
	return fps, nil
}

// ReachableFrom returns how many distinct members (excluding the verifier)
// the verifier trusts at maxDepth. Experiments use this to quantify Sybil
// amplification.
func (w *WebOfTrust) ReachableFrom(verifier cryptoutil.Hash, maxDepth int) int {
	return len(w.ReachableSet(verifier, maxDepth))
}

// ReachableSet returns the set of member fingerprints the verifier trusts
// within maxDepth hops (excluding the verifier itself). Use this instead
// of repeated Trusts calls when checking many subjects at once.
func (w *WebOfTrust) ReachableSet(verifier cryptoutil.Hash, maxDepth int) map[cryptoutil.Hash]bool {
	visited := map[cryptoutil.Hash]bool{verifier: true}
	frontier := []cryptoutil.Hash{verifier}
	for d := 0; d < maxDepth && len(frontier) > 0; d++ {
		var next []cryptoutil.Hash
		for _, fp := range frontier {
			for _, to := range w.endorsements[fp] {
				if !visited[to] {
					visited[to] = true
					next = append(next, to)
				}
			}
		}
		frontier = next
	}
	delete(visited, verifier)
	return visited
}
