package identity

import (
	"math/rand"
	"testing"
	"time"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestMechanismProperties(t *testing.T) {
	// §3.1: none of the three basic mechanisms achieves all three
	// properties simultaneously.
	for _, m := range []Mechanism{MechanismPublicKey, MechanismPersonalInfo, MechanismPseudonym} {
		p := m.Properties()
		if p.Usable && p.Secure && p.Private {
			t.Errorf("%v claims all three properties; the paper says none do", m)
		}
	}
	if MechanismPublicKey.Properties().Usable {
		t.Error("public keys should not be usable (opaque strings)")
	}
	if !MechanismPublicKey.Properties().Secure {
		t.Error("public keys should be secure")
	}
	if MechanismPersonalInfo.Properties().Private {
		t.Error("personal info should not be private")
	}
	if Mechanism(99).String() != "unknown" {
		t.Error("unknown mechanism string")
	}
	for _, m := range []Mechanism{MechanismPublicKey, MechanismPersonalInfo, MechanismPseudonym} {
		if m.String() == "unknown" {
			t.Errorf("mechanism %d has no name", m)
		}
	}
}

func TestNewIdentity(t *testing.T) {
	id, err := New(rng(1), "alice", MechanismPseudonym)
	if err != nil {
		t.Fatal(err)
	}
	if id.Fingerprint().IsZero() {
		t.Error("zero fingerprint")
	}
	if len(id.Public()) == 0 {
		t.Error("no public key")
	}
}

func TestCAIssueAndVerify(t *testing.T) {
	ca, err := NewCA(rng(1), "RootCA")
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := New(rng(2), "alice", MechanismPseudonym)
	cert, err := ca.Issue("alice", alice.Public(), 0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore()
	ts.AddCA(ca.Name(), ca.PublicKey())
	if err := ts.Verify(cert, 30*time.Minute); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	if ca.Issued() != 1 {
		t.Errorf("issued = %d", ca.Issued())
	}
}

func TestCAVerifyFailures(t *testing.T) {
	ca, _ := NewCA(rng(1), "RootCA")
	other, _ := NewCA(rng(2), "OtherCA")
	alice, _ := New(rng(3), "alice", MechanismPseudonym)
	cert, _ := ca.Issue("alice", alice.Public(), time.Minute, time.Hour)

	ts := NewTrustStore()
	// Unknown issuer.
	if err := ts.Verify(cert, 30*time.Minute); err != ErrUnknownIssuer {
		t.Errorf("got %v, want ErrUnknownIssuer", err)
	}
	// Wrong pinned key.
	ts.AddCA(ca.Name(), other.PublicKey())
	if err := ts.Verify(cert, 30*time.Minute); err != ErrBadSignature {
		t.Errorf("got %v, want ErrBadSignature", err)
	}
	ts.AddCA(ca.Name(), ca.PublicKey())
	// Not yet valid / expired.
	if err := ts.Verify(cert, 0); err != ErrExpired {
		t.Errorf("got %v, want ErrExpired (before window)", err)
	}
	if err := ts.Verify(cert, 2*time.Hour); err != ErrExpired {
		t.Errorf("got %v, want ErrExpired (after window)", err)
	}
	// Tampered subject.
	bad := *cert
	bad.Subject = "mallory"
	if err := ts.Verify(&bad, 30*time.Minute); err != ErrBadSignature {
		t.Errorf("got %v, want ErrBadSignature for tampered cert", err)
	}
}

func TestCAEmptyWindowRejected(t *testing.T) {
	ca, _ := NewCA(rng(1), "RootCA")
	alice, _ := New(rng(2), "alice", MechanismPseudonym)
	if _, err := ca.Issue("alice", alice.Public(), time.Hour, time.Hour); err == nil {
		t.Error("empty validity window accepted")
	}
}

func TestRevocationRequiresFreshCRL(t *testing.T) {
	ca, _ := NewCA(rng(1), "RootCA")
	alice, _ := New(rng(2), "alice", MechanismPseudonym)
	cert, _ := ca.Issue("alice", alice.Public(), 0, time.Hour)

	ts := NewTrustStore()
	ts.AddCA(ca.Name(), ca.PublicKey())
	ca.Revoke(cert.Serial)

	// Verifier with a stale (absent) CRL still accepts — the revocation
	// weakness the paper references.
	if err := ts.Verify(cert, time.Minute); err != nil {
		t.Fatalf("stale-CRL verifier should accept: %v", err)
	}
	// After fetching the CRL it rejects.
	ts.SetCRL(ca.Name(), ca.CRL())
	if err := ts.Verify(cert, time.Minute); err != ErrRevoked {
		t.Errorf("got %v, want ErrRevoked", err)
	}
}

// TestCACompromiseForgesTrustedCerts demonstrates the paper's CA-compromise
// weakness: a forged certificate from a stolen CA key is indistinguishable
// from a real one.
func TestCACompromiseForgesTrustedCerts(t *testing.T) {
	ca, _ := NewCA(rng(1), "RootCA")
	mallory, _ := New(rng(3), "mallory", MechanismPseudonym)
	ts := NewTrustStore()
	ts.AddCA(ca.Name(), ca.PublicKey())

	stolen := ca.Compromise()
	rogue := ForgeCertificate(stolen, ca.Name(), "alice", mallory.Public(), 0, time.Hour)
	if err := ts.Verify(rogue, time.Minute); err != nil {
		t.Fatalf("forged cert should verify (that's the vulnerability): %v", err)
	}
	// And the CA's own CRL does not contain the rogue serial.
	ts.SetCRL(ca.Name(), ca.CRL())
	if err := ts.Verify(rogue, time.Minute); err != nil {
		t.Fatalf("CRL cannot save us from a forged serial: %v", err)
	}
}

func buildWeb(t *testing.T, names ...string) (*WebOfTrust, map[string]*Identity) {
	t.Helper()
	w := NewWebOfTrust()
	ids := map[string]*Identity{}
	for i, n := range names {
		id, err := New(rng(int64(100+i)), n, MechanismPseudonym)
		if err != nil {
			t.Fatal(err)
		}
		ids[n] = id
		w.AddMember(id)
	}
	return w, ids
}

func TestWoTPathFinding(t *testing.T) {
	w, ids := buildWeb(t, "alice", "bob", "carol", "dave")
	// alice -> bob -> carol; dave isolated.
	if !w.Endorse(ids["alice"], ids["bob"].Fingerprint()) {
		t.Fatal("endorse failed")
	}
	w.Endorse(ids["bob"], ids["carol"].Fingerprint())

	a, c, d := ids["alice"].Fingerprint(), ids["carol"].Fingerprint(), ids["dave"].Fingerprint()
	if !w.Trusts(a, c, 2) {
		t.Error("alice should reach carol in 2 hops")
	}
	if w.Trusts(a, c, 1) {
		t.Error("alice should not reach carol in 1 hop")
	}
	if w.Trusts(a, d, 10) {
		t.Error("isolated dave should be unreachable")
	}
	if !w.Trusts(a, a, 0) {
		t.Error("self-trust should hold")
	}
	path := w.TrustPath(a, c, 5)
	if len(path) != 3 || path[0] != a || path[2] != c {
		t.Errorf("path = %v", path)
	}
	if w.NumMembers() != 4 {
		t.Errorf("members = %d", w.NumMembers())
	}
}

func TestWoTEndorseValidation(t *testing.T) {
	w, ids := buildWeb(t, "alice")
	stranger, _ := New(rng(999), "stranger", MechanismPseudonym)
	if w.Endorse(stranger, ids["alice"].Fingerprint()) {
		t.Error("non-member endorser accepted")
	}
	if w.Endorse(ids["alice"], stranger.Fingerprint()) {
		t.Error("endorsement of non-member accepted")
	}
	// Duplicate endorsement is idempotent.
	w.AddMember(stranger)
	if !w.Endorse(ids["alice"], stranger.Fingerprint()) {
		t.Error("valid endorsement failed")
	}
	if !w.Endorse(ids["alice"], stranger.Fingerprint()) {
		t.Error("duplicate endorsement should succeed (idempotent)")
	}
	if n := len(w.endorsements[ids["alice"].Fingerprint()]); n != 1 {
		t.Errorf("endorsement stored %d times", n)
	}
}

// TestWoTSybilAmplification demonstrates §3.1's "WoT Sybil attacks": the
// ring is unreachable until one honest endorsement links it, after which
// the verifier transitively trusts the entire ring.
func TestWoTSybilAmplification(t *testing.T) {
	w, ids := buildWeb(t, "alice", "bob")
	w.Endorse(ids["alice"], ids["bob"].Fingerprint())
	sybils, err := w.SybilRing(rng(7), 50)
	if err != nil {
		t.Fatal(err)
	}
	a := ids["alice"].Fingerprint()
	if got := w.ReachableFrom(a, 10); got != 1 {
		t.Fatalf("before bridge: alice reaches %d members, want 1 (bob)", got)
	}
	// Bob makes one careless endorsement of a single sybil.
	w.Endorse(ids["bob"], sybils[0])
	got := w.ReachableFrom(a, 10)
	if got != 51 { // bob + all 50 sybils
		t.Errorf("after bridge: alice reaches %d, want 51 (full ring amplification)", got)
	}
	for _, s := range sybils {
		if !w.Trusts(a, s, 10) {
			t.Fatalf("sybil %s not trusted after bridge", s.Short())
		}
	}
}

func TestReachableDepthBound(t *testing.T) {
	w, ids := buildWeb(t, "a", "b", "c")
	w.Endorse(ids["a"], ids["b"].Fingerprint())
	w.Endorse(ids["b"], ids["c"].Fingerprint())
	a := ids["a"].Fingerprint()
	if got := w.ReachableFrom(a, 1); got != 1 {
		t.Errorf("depth 1 reaches %d, want 1", got)
	}
	if got := w.ReachableFrom(a, 2); got != 2 {
		t.Errorf("depth 2 reaches %d, want 2", got)
	}
}

func TestReachableSetMatchesTrusts(t *testing.T) {
	w, ids := buildWeb(t, "a", "b", "c", "d")
	w.Endorse(ids["a"], ids["b"].Fingerprint())
	w.Endorse(ids["b"], ids["c"].Fingerprint())
	a := ids["a"].Fingerprint()
	set := w.ReachableSet(a, 2)
	for name, id := range ids {
		want := w.Trusts(a, id.Fingerprint(), 2) && name != "a"
		if set[id.Fingerprint()] != want {
			t.Errorf("%s: set=%v trusts=%v", name, set[id.Fingerprint()], want)
		}
	}
	if len(set) != w.ReachableFrom(a, 2) {
		t.Error("set size disagrees with ReachableFrom")
	}
}
