// Package identity implements the user-identity machinery surveyed in the
// paper's §3.1: the three basic identity mechanisms (public keys, personal
// information, pseudonyms), a centralized certification-authority PKI with
// issuance, expiry, revocation, and CA-compromise injection, and a Web of
// Trust with endorsement paths and Sybil-attack injection.
//
// The paper's claim under test: "Existing PKIs relying on CAs or a WoT
// suffer from well-known security, trust, and revocation weaknesses (e.g.,
// centralized administrative control, CA compromises, WoT Sybil attacks)".
// internal/naming builds the blockchain alternative on top of
// internal/chain and scores all schemes against Zooko's triangle.
package identity

import (
	"crypto/ed25519"
	"io"

	"repro/internal/cryptoutil"
)

// Mechanism is one of the three basic ways §3.1 lists to represent user
// identities on the Internet.
type Mechanism int

const (
	// MechanismPublicKey identifies users by an opaque key fingerprint.
	MechanismPublicKey Mechanism = iota
	// MechanismPersonalInfo identifies users by real-world attributes
	// (legal name, email, phone).
	MechanismPersonalInfo
	// MechanismPseudonym identifies users by a chosen handle.
	MechanismPseudonym
)

// String returns the mechanism name.
func (m Mechanism) String() string {
	switch m {
	case MechanismPublicKey:
		return "public-key"
	case MechanismPersonalInfo:
		return "personal-info"
	case MechanismPseudonym:
		return "pseudonym"
	}
	return "unknown"
}

// Properties captures §3.1's assessment: "none of these three basic
// mechanisms are simultaneously usable, secure, and privacy preserving by
// themselves."
type Properties struct {
	Usable  bool // human-meaningful / human-usable
	Secure  bool // unforgeable without out-of-band trust
	Private bool // does not reveal real-world identity
}

// Properties returns the paper's assessment of the mechanism.
func (m Mechanism) Properties() Properties {
	switch m {
	case MechanismPublicKey:
		// "Public-key-based identities consisting of opaque strings help
		// preserve privacy and are considered relatively secure; however,
		// such identities have faced usability barriers."
		return Properties{Usable: false, Secure: true, Private: true}
	case MechanismPersonalInfo:
		return Properties{Usable: true, Secure: false, Private: false}
	case MechanismPseudonym:
		return Properties{Usable: true, Secure: false, Private: true}
	}
	return Properties{}
}

// Identity is a user identity: a signing key plus the chosen mechanism's
// presentation. Combining a name with a key ("a name (or pseudonym) is
// combined with a public-key to yield a secure, human-meaningful identity")
// is what the PKI, WoT, and blockchain naming schemes provide.
type Identity struct {
	Key       *cryptoutil.KeyPair
	Name      string
	Mechanism Mechanism
}

// New creates an identity with a fresh key pair from rand.
func New(rand io.Reader, name string, mech Mechanism) (*Identity, error) {
	kp, err := cryptoutil.GenerateKeyPair(rand)
	if err != nil {
		return nil, err
	}
	return &Identity{Key: kp, Name: name, Mechanism: mech}, nil
}

// Fingerprint returns the identity's stable key fingerprint.
func (id *Identity) Fingerprint() cryptoutil.Hash { return id.Key.Fingerprint() }

// Public returns the identity's public key.
func (id *Identity) Public() ed25519.PublicKey { return id.Key.Public }
