// Package erasure implements systematic Reed–Solomon erasure coding over
// GF(2⁸), built from scratch for this repository. A (k, n) code splits data
// into k data shards and produces n-k parity shards; any k of the n shards
// reconstruct the original data.
//
// The paper's §3.3 observes that decentralized storage systems make
// "decisions about … numbers of maintained replicas, mechanisms of replica
// production" with "inherent trade-offs among durability, availability,
// consistency, and performance". Erasure coding is the capacity-efficient
// end of that trade-off space; internal/storage uses this package to
// compare replication with coding under churn (experiment X5).
package erasure

// GF(2⁸) arithmetic using log/antilog tables over the AES/QR-code
// polynomial x⁸+x⁴+x³+x²+1 (0x11d).

const gfPoly = 0x11d

var (
	gfExp [512]byte // doubled so mul can skip a mod 255
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b. Panics on division by zero, which indicates a
// programming error in matrix inversion.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfExpPow returns a**n for field element a.
func gfExpPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	logA := int(gfLog[a])
	return gfExp[(logA*n)%255]
}

// matrix is a dense row-major matrix over GF(256).
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m *matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m *matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }

// identityMatrix returns the n×n identity.
func identityMatrix(n int) *matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde returns the rows×cols matrix with entry (r, c) = r**c. Any
// square submatrix formed from distinct rows is invertible, which is the
// property Reed–Solomon reconstruction relies on.
func vandermonde(rows, cols int) *matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfExpPow(byte(r), c))
		}
	}
	return m
}

// mul returns m × other.
func (m *matrix) mul(other *matrix) *matrix {
	if m.cols != other.rows {
		panic("erasure: matrix dimension mismatch")
	}
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for c := 0; c < other.cols; c++ {
			var acc byte
			for k := 0; k < m.cols; k++ {
				acc ^= gfMul(m.at(r, k), other.at(k, c))
			}
			out.set(r, c, acc)
		}
	}
	return out
}

// subMatrix returns rows [rmin, rmax) × cols [cmin, cmax).
func (m *matrix) subMatrix(rmin, rmax, cmin, cmax int) *matrix {
	out := newMatrix(rmax-rmin, cmax-cmin)
	for r := rmin; r < rmax; r++ {
		for c := cmin; c < cmax; c++ {
			out.set(r-rmin, c-cmin, m.at(r, c))
		}
	}
	return out
}

// invert returns the inverse via Gauss–Jordan elimination, or false if the
// matrix is singular.
func (m *matrix) invert() (*matrix, bool) {
	if m.rows != m.cols {
		return nil, false
	}
	n := m.rows
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			work.set(r, c, m.at(r, c))
		}
		work.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		if pivot != col {
			for c := 0; c < 2*n; c++ {
				a, b := work.at(col, c), work.at(pivot, c)
				work.set(col, c, b)
				work.set(pivot, c, a)
			}
		}
		// Scale pivot row to 1.
		inv := gfInv(work.at(col, col))
		for c := 0; c < 2*n; c++ {
			work.set(col, c, gfMul(work.at(col, c), inv))
		}
		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col || work.at(r, col) == 0 {
				continue
			}
			f := work.at(r, col)
			for c := 0; c < 2*n; c++ {
				work.set(r, c, work.at(r, c)^gfMul(f, work.at(col, c)))
			}
		}
	}
	return work.subMatrix(0, n, n, 2*n), true
}
