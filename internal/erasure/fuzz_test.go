package erasure

import (
	"bytes"
	"testing"
)

// FuzzReedSolomonRoundTrip drives the full storage path — Split, Encode,
// lose up to m shards, Reconstruct, Join — under fuzzed data and fuzzed
// (k, m, loss pattern), and requires the original bytes and all parity
// shards to come back bit-identical. This is the property the §3.3 storage
// systems stake durability on.
func FuzzReedSolomonRoundTrip(f *testing.F) {
	f.Add([]byte("the barriers to overthrowing internet feudalism"), uint8(4), uint8(2), uint16(0b101))
	f.Add([]byte{}, uint8(1), uint8(0), uint16(0))
	f.Add([]byte{0xFF}, uint8(7), uint8(4), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, data []byte, kRaw, mRaw uint8, dropMask uint16) {
		k := 1 + int(kRaw)%8
		m := int(mRaw) % 5
		c, err := New(k, m)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", k, m, err)
		}
		dataShards := c.Split(data)
		all, err := c.Encode(dataShards)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		want := make([][]byte, len(all))
		for i, s := range all {
			want[i] = append([]byte(nil), s...)
		}

		// Lose up to m shards, chosen by the fuzzed mask.
		lost := make([][]byte, len(all))
		copy(lost, all)
		dropped := 0
		for i := 0; i < len(lost) && dropped < m; i++ {
			if dropMask>>uint(i)&1 == 1 {
				lost[i] = nil
				dropped++
			}
		}
		if err := c.Reconstruct(lost); err != nil {
			t.Fatalf("Reconstruct after %d losses (k=%d m=%d): %v", dropped, k, m, err)
		}
		for i := range want {
			if !bytes.Equal(lost[i], want[i]) {
				t.Fatalf("shard %d differs after reconstruction", i)
			}
		}
		got, err := c.Join(lost[:k], len(data))
		if err != nil {
			t.Fatalf("Join: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round-trip mismatch: got %d bytes, want %d", len(got), len(data))
		}
	})
}

// FuzzReconstructArbitraryShards throws structurally hostile shard slices
// at Reconstruct — wrong counts, unequal lengths, too few survivors — and
// requires an error (never a panic, never silent success with bad input).
func FuzzReconstructArbitraryShards(f *testing.F) {
	f.Add(uint8(4), uint8(2), []byte{1, 2, 3, 4}, uint8(3), uint16(0b11))
	f.Add(uint8(2), uint8(1), []byte{}, uint8(0), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, kRaw, mRaw uint8, blob []byte, lens uint8, nilMask uint16) {
		k := 1 + int(kRaw)%8
		m := int(mRaw) % 5
		c, err := New(k, m)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", k, m, err)
		}
		// Build n shard slots with fuzz-chosen lengths and nil holes.
		shards := make([][]byte, c.TotalShards())
		for i := range shards {
			if nilMask>>uint(i)&1 == 1 {
				continue
			}
			l := (int(lens) + i) % 9
			s := make([]byte, l)
			for j := range s {
				if len(blob) > 0 {
					s[j] = blob[(i+j)%len(blob)]
				}
			}
			shards[i] = s
		}
		// Must never panic; errors are fine and expected for most inputs.
		_ = c.Reconstruct(shards)
	})
}
