package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGFFieldAxioms(t *testing.T) {
	// Spot-check multiplicative structure on every element.
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if gfMul(byte(a), inv) != 1 {
			t.Fatalf("a*inv(a) != 1 for a=%d", a)
		}
	}
	for i := 0; i < 1000; i++ {
		a, b, c := byte(i*7), byte(i*13+1), byte(i*31+5)
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatal("multiplication not commutative")
		}
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatal("multiplication not associative")
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatal("distributivity violated")
		}
	}
	if gfMul(0, 123) != 0 || gfMul(123, 0) != 0 {
		t.Error("multiplication by zero")
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero should panic")
		}
	}()
	gfDiv(1, 0)
}

func TestGFExpPow(t *testing.T) {
	if gfExpPow(2, 0) != 1 || gfExpPow(0, 5) != 0 {
		t.Error("power edge cases wrong")
	}
	// a^3 == a*a*a
	for a := 1; a < 256; a++ {
		want := gfMul(gfMul(byte(a), byte(a)), byte(a))
		if gfExpPow(byte(a), 3) != want {
			t.Fatalf("a^3 mismatch for a=%d", a)
		}
	}
}

func TestMatrixInvertIdentity(t *testing.T) {
	for n := 1; n <= 8; n++ {
		id := identityMatrix(n)
		inv, ok := id.invert()
		if !ok {
			t.Fatalf("identity %d not invertible", n)
		}
		if !bytes.Equal(inv.data, id.data) {
			t.Fatalf("inverse of identity %d is not identity", n)
		}
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		m := newMatrix(n, n)
		rng.Read(m.data)
		inv, ok := m.invert()
		if !ok {
			continue // singular random matrix; skip
		}
		prod := m.mul(inv)
		if !bytes.Equal(prod.data, identityMatrix(n).data) {
			t.Fatalf("m * m^-1 != I (n=%d)", n)
		}
	}
}

func TestSingularMatrixNotInvertible(t *testing.T) {
	m := newMatrix(2, 2) // all zeros
	if _, ok := m.invert(); ok {
		t.Error("zero matrix reported invertible")
	}
	r := newMatrix(2, 3)
	if _, ok := r.invert(); ok {
		t.Error("non-square matrix reported invertible")
	}
}

func TestNewCodeValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(4, -1); err == nil {
		t.Error("negative parity accepted")
	}
	if _, err := New(200, 100); err == nil {
		t.Error("n>256 accepted")
	}
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.DataShards() != 4 || c.ParityShards() != 2 || c.TotalShards() != 6 {
		t.Error("shard counts wrong")
	}
	if c.Overhead() != 1.5 {
		t.Errorf("overhead = %v, want 1.5", c.Overhead())
	}
}

func TestEncodeSystematic(t *testing.T) {
	c, _ := New(4, 2)
	data := [][]byte{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(shards[i], data[i]) {
			t.Errorf("shard %d not systematic", i)
		}
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Errorf("verify = %v, %v", ok, err)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	c, _ := New(4, 2)
	if _, err := c.Encode([][]byte{{1}}); err == nil {
		t.Error("wrong shard count accepted")
	}
	if _, err := c.Encode([][]byte{{1}, {2}, {3}, {4, 5}}); err == nil {
		t.Error("unequal shard lengths accepted")
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	c, err := New(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	orig := []byte("the paper argues that decentralized storage must survive churn")
	data := c.Split(orig)
	full, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Erase every subset of up to 3 shards.
	n := c.TotalShards()
	for mask := 0; mask < (1 << n); mask++ {
		erased := 0
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				erased++
			}
		}
		if erased == 0 || erased > c.ParityShards() {
			continue
		}
		shards := make([][]byte, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				shards[i] = append([]byte{}, full[i]...)
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		got, err := c.Join(shards, len(orig))
		if err != nil {
			t.Fatalf("mask %b join: %v", mask, err)
		}
		if !bytes.Equal(got, orig) {
			t.Fatalf("mask %b: reconstruction mismatch", mask)
		}
		// Parity shards must be rebuilt, too.
		if ok, _ := c.Verify(shards); !ok {
			t.Fatalf("mask %b: verify failed after reconstruct", mask)
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := New(4, 2)
	shards := make([][]byte, 6)
	shards[0] = []byte{1}
	shards[1] = []byte{2}
	shards[2] = []byte{3}
	if err := c.Reconstruct(shards); err == nil {
		t.Error("reconstruct with 3 of 4 required shards should fail")
	}
}

func TestReconstructValidation(t *testing.T) {
	c, _ := New(2, 1)
	if err := c.Reconstruct(make([][]byte, 2)); err == nil {
		t.Error("wrong slot count accepted")
	}
	shards := [][]byte{{1}, {2, 3}, nil}
	if err := c.Reconstruct(shards); err == nil {
		t.Error("unequal lengths accepted")
	}
}

func TestReconstructNoOpWhenComplete(t *testing.T) {
	c, _ := New(2, 1)
	full, _ := c.Encode([][]byte{{9}, {8}})
	if err := c.Reconstruct(full); err != nil {
		t.Error(err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c, _ := New(4, 2)
	full, _ := c.Encode([][]byte{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	full[5][0] ^= 0xff
	ok, err := c.Verify(full)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("corrupted parity passed verification")
	}
}

func TestVerifyValidation(t *testing.T) {
	c, _ := New(2, 1)
	if _, err := c.Verify(make([][]byte, 2)); err == nil {
		t.Error("wrong count accepted")
	}
	if _, err := c.Verify([][]byte{{1}, nil, {3}}); err == nil {
		t.Error("missing shard accepted")
	}
	if _, err := c.Verify([][]byte{{1}, {2, 3}, {4}}); err == nil {
		t.Error("unequal lengths accepted")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	c, _ := New(5, 0)
	for _, size := range []int{0, 1, 4, 5, 6, 99, 100, 101} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i * 31)
		}
		shards := c.Split(data)
		if len(shards) != 5 {
			t.Fatalf("size %d: got %d shards", size, len(shards))
		}
		got, err := c.Join(shards, size)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	c, _ := New(3, 0)
	if _, err := c.Join([][]byte{{1}}, 1); err == nil {
		t.Error("short shard list accepted")
	}
	if _, err := c.Join([][]byte{{1}, nil, {3}}, 1); err == nil {
		t.Error("nil shard accepted")
	}
	if _, err := c.Join([][]byte{{1}, {2}, {3}}, 10); err == nil {
		t.Error("oversize join accepted")
	}
}

// Property: for random (k, m), random data, and a random erasure pattern of
// at most m shards, reconstruction recovers the original bytes exactly.
func TestReconstructProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(10)
		m := rng.Intn(6)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		data := make([]byte, 1+rng.Intn(500))
		rng.Read(data)
		full, err := c.Encode(c.Split(data))
		if err != nil {
			return false
		}
		// Erase up to m random shards.
		erase := rng.Intn(m + 1)
		perm := rng.Perm(c.TotalShards())
		for _, idx := range perm[:erase] {
			full[idx] = nil
		}
		if err := c.Reconstruct(full); err != nil {
			return false
		}
		got, err := c.Join(full, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode4x2_64KB(b *testing.B) {
	c, _ := New(4, 2)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(data)
	shards := c.Split(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct8x4_64KB(b *testing.B) {
	c, _ := New(8, 4)
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(data)
	full, _ := c.Encode(c.Split(data))
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, len(full))
		copy(shards, full)
		shards[0], shards[3], shards[9], shards[11] = nil, nil, nil, nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
