package erasure

import (
	"errors"
	"fmt"
)

// Code is a systematic (k, n) Reed–Solomon erasure code: k data shards,
// n-k parity shards, reconstruction from any k of the n.
type Code struct {
	k, n int
	// enc is the n×k encoding matrix; its top k rows are the identity, so
	// the first k output shards are the data itself (systematic form).
	enc *matrix
}

// New creates a (dataShards, dataShards+parityShards) code. GF(2⁸)
// Vandermonde construction limits n to 256 total shards.
func New(dataShards, parityShards int) (*Code, error) {
	k, n := dataShards, dataShards+parityShards
	if k <= 0 || parityShards < 0 {
		return nil, fmt.Errorf("erasure: invalid shard counts k=%d m=%d", k, parityShards)
	}
	if n > 256 {
		return nil, fmt.Errorf("erasure: total shards %d exceeds GF(256) limit of 256", n)
	}
	// Build a systematic encoding matrix: V × (top k rows of V)⁻¹ has the
	// identity on top while preserving the any-k-rows-invertible property.
	v := vandermonde(n, k)
	top := v.subMatrix(0, k, 0, k)
	topInv, ok := top.invert()
	if !ok {
		return nil, errors.New("erasure: vandermonde top square not invertible (bug)")
	}
	return &Code{k: k, n: n, enc: v.mul(topInv)}, nil
}

// DataShards returns k.
func (c *Code) DataShards() int { return c.k }

// TotalShards returns n.
func (c *Code) TotalShards() int { return c.n }

// ParityShards returns n-k.
func (c *Code) ParityShards() int { return c.n - c.k }

// Overhead returns the storage expansion factor n/k.
func (c *Code) Overhead() float64 { return float64(c.n) / float64(c.k) }

// Split pads data to a multiple of k and slices it into k equal data
// shards. The original length must be carried out of band (Join takes it
// back).
func (c *Code) Split(data []byte) [][]byte {
	shardLen := (len(data) + c.k - 1) / c.k
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		shards[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(data) {
			copy(shards[i], data[start:])
		}
	}
	return shards
}

// Join is the inverse of Split: it concatenates data shards and trims to
// size.
func (c *Code) Join(shards [][]byte, size int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, fmt.Errorf("erasure: join needs %d data shards, got %d", c.k, len(shards))
	}
	var out []byte
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			return nil, fmt.Errorf("erasure: join: data shard %d missing", i)
		}
		out = append(out, shards[i]...)
	}
	if size > len(out) {
		return nil, fmt.Errorf("erasure: join: size %d exceeds available %d", size, len(out))
	}
	return out[:size], nil
}

// Encode computes the n-k parity shards for k equal-length data shards and
// returns all n shards (data first, in systematic order).
func (c *Code) Encode(dataShards [][]byte) ([][]byte, error) {
	if len(dataShards) != c.k {
		return nil, fmt.Errorf("erasure: encode needs %d data shards, got %d", c.k, len(dataShards))
	}
	shardLen := len(dataShards[0])
	for i, s := range dataShards {
		if len(s) != shardLen {
			return nil, fmt.Errorf("erasure: shard %d length %d != %d", i, len(s), shardLen)
		}
	}
	out := make([][]byte, c.n)
	for i := 0; i < c.k; i++ {
		out[i] = dataShards[i]
	}
	for r := c.k; r < c.n; r++ {
		shard := make([]byte, shardLen)
		for col := 0; col < c.k; col++ {
			coef := c.enc.at(r, col)
			if coef == 0 {
				continue
			}
			src := dataShards[col]
			for b := 0; b < shardLen; b++ {
				shard[b] ^= gfMul(coef, src[b])
			}
		}
		out[r] = shard
	}
	return out, nil
}

// Reconstruct fills in missing (nil) shards in place. shards must have
// length n; at least k entries must be non-nil and of equal length.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.n {
		return fmt.Errorf("erasure: reconstruct needs %d shard slots, got %d", c.n, len(shards))
	}
	present := 0
	shardLen := -1
	for _, s := range shards {
		if s == nil {
			continue
		}
		present++
		if shardLen == -1 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return errors.New("erasure: present shards have unequal lengths")
		}
	}
	if present == c.n {
		return nil // nothing to do
	}
	if present < c.k {
		return fmt.Errorf("erasure: only %d shards present, need %d", present, c.k)
	}

	// Select the first k present shards; build the k×k decode matrix from
	// their encoding rows and invert it to recover the data shards.
	rows := make([]int, 0, c.k)
	for i := 0; i < c.n && len(rows) < c.k; i++ {
		if shards[i] != nil {
			rows = append(rows, i)
		}
	}
	sub := newMatrix(c.k, c.k)
	for ri, r := range rows {
		for col := 0; col < c.k; col++ {
			sub.set(ri, col, c.enc.at(r, col))
		}
	}
	dec, ok := sub.invert()
	if !ok {
		return errors.New("erasure: decode matrix singular (bug: vandermonde rows should be independent)")
	}

	// Recover data shards: data = dec × available.
	data := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		row := make([]byte, shardLen)
		for col := 0; col < c.k; col++ {
			coef := dec.at(i, col)
			if coef == 0 {
				continue
			}
			src := shards[rows[col]]
			for b := 0; b < shardLen; b++ {
				row[b] ^= gfMul(coef, src[b])
			}
		}
		data[i] = row
	}
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			shards[i] = data[i]
		}
	}
	// Re-encode any missing parity shards from the recovered data.
	for r := c.k; r < c.n; r++ {
		if shards[r] != nil {
			continue
		}
		shard := make([]byte, shardLen)
		for col := 0; col < c.k; col++ {
			coef := c.enc.at(r, col)
			if coef == 0 {
				continue
			}
			src := data[col]
			for b := 0; b < shardLen; b++ {
				shard[b] ^= gfMul(coef, src[b])
			}
		}
		shards[r] = shard
	}
	return nil
}

// Verify checks that the parity shards are consistent with the data shards.
// All n shards must be present and equal length.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.n {
		return false, fmt.Errorf("erasure: verify needs %d shards, got %d", c.n, len(shards))
	}
	for i, s := range shards {
		if s == nil {
			return false, fmt.Errorf("erasure: verify: shard %d missing", i)
		}
		if len(s) != len(shards[0]) {
			return false, errors.New("erasure: verify: unequal shard lengths")
		}
	}
	expected, err := c.Encode(shards[:c.k])
	if err != nil {
		return false, err
	}
	for r := c.k; r < c.n; r++ {
		exp, got := expected[r], shards[r]
		for b := range exp {
			if exp[b] != got[b] {
				return false, nil
			}
		}
	}
	return true, nil
}
