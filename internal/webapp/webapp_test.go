package webapp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/simnet"
)

func key(t testing.TB, seed int64) *cryptoutil.KeyPair {
	t.Helper()
	kp, err := cryptoutil.GenerateKeyPair(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func sampleFiles() map[string][]byte {
	return map[string][]byte{
		"index.html": []byte("<h1>hostless</h1>"),
		"app.js":     []byte("console.log('no server')"),
		"style.css":  []byte("body{margin:0}"),
	}
}

func TestManifestSignVerify(t *testing.T) {
	owner := key(t, 1)
	m, blobs := SignManifest(owner, 1, sampleFiles(), cryptoutil.Hash{})
	if !m.Verify() {
		t.Fatal("fresh manifest fails verification")
	}
	if len(m.Files) != 3 || len(blobs) != 3 {
		t.Fatalf("files = %d blobs = %d", len(m.Files), len(blobs))
	}
	if m.TotalSize() <= 0 {
		t.Error("total size")
	}
	if _, ok := m.File("index.html"); !ok {
		t.Error("File lookup failed")
	}
	if _, ok := m.File("nope"); ok {
		t.Error("ghost file found")
	}
	// Round trip through encoding.
	got, err := DecodeManifest(m.Encode())
	if err != nil || !got.Verify() {
		t.Fatalf("decode: %v", err)
	}
	// Tampering breaks it.
	m.Files[0].ID = cryptoutil.SumHash([]byte("evil"))
	if m.Verify() {
		t.Error("tampered manifest verified")
	}
	// Wrong owner binding breaks it.
	m2, _ := SignManifest(owner, 1, sampleFiles(), cryptoutil.Hash{})
	m2.Site = cryptoutil.SumHash([]byte("other"))
	if m2.Verify() {
		t.Error("manifest with mismatched site address verified")
	}
	if _, err := DecodeManifest([]byte("junk")); err == nil {
		t.Error("junk manifest accepted")
	}
}

func TestManifestDeterministicFileOrder(t *testing.T) {
	owner := key(t, 2)
	a, _ := SignManifest(owner, 1, sampleFiles(), cryptoutil.Hash{})
	b, _ := SignManifest(owner, 1, sampleFiles(), cryptoutil.Hash{})
	if !bytes.Equal(a.signingBytes(), b.signingBytes()) {
		t.Error("same files produce different signing bytes (map-order leak)")
	}
}

// webWorld builds a tracker, a DHT, and n web peers.
func webWorld(t testing.TB, seed int64, n int) (*simnet.Network, *Tracker, []*Peer) {
	t.Helper()
	nw := simnet.New(seed)
	tracker := NewTracker(nw.AddNode())
	peers := make([]*Peer, n)
	dhts := make([]*dht.Peer, n)
	for i := 0; i < n; i++ {
		node := nw.AddNode()
		dhts[i] = dht.NewPeer(node, dht.Key{}, dht.Config{})
		peers[i] = NewPeer(node, dhts[i], tracker.Node().ID(), 10*time.Second)
	}
	for i := 1; i < n; i++ {
		i := i
		nw.After(time.Duration(i)*50*time.Millisecond, func() {
			dhts[i].Bootstrap(dhts[0].Contact(), nil)
		})
	}
	nw.Run(time.Duration(n) * 100 * time.Millisecond)
	return nw, tracker, peers
}

func TestPublishVisitVerifySeed(t *testing.T) {
	nw, tracker, peers := webWorld(t, 3, 8)
	owner := key(t, 4)
	var published *Manifest
	peers[0].Publish(owner, 1, sampleFiles(), cryptoutil.Hash{}, func(m *Manifest) { published = m })
	nw.Run(nw.Now() + time.Minute)
	if published == nil {
		t.Fatal("publish did not complete")
	}
	site := published.Site

	// First visitor fetches from the author.
	var got map[string][]byte
	var verr error
	peers[1].Visit(site, func(files map[string][]byte, err error) { got, verr = files, err })
	nw.Run(nw.Now() + time.Minute)
	if verr != nil {
		t.Fatal(verr)
	}
	if !bytes.Equal(got["index.html"], sampleFiles()["index.html"]) {
		t.Error("file content mismatch")
	}
	if tracker.NumSeeders(site) < 2 {
		t.Errorf("seeders = %d, want ≥2 (visitor should seed)", tracker.NumSeeders(site))
	}

	// Author goes offline; the site survives because the visitor seeds it.
	peers[0].Node().Crash()
	var got2 map[string][]byte
	var verr2 error
	peers[2].Visit(site, func(files map[string][]byte, err error) { got2, verr2 = files, err })
	nw.Run(nw.Now() + time.Minute)
	if verr2 != nil {
		t.Fatalf("visit after author death: %v", verr2)
	}
	if !bytes.Equal(got2["app.js"], sampleFiles()["app.js"]) {
		t.Error("content after author death mismatch")
	}
	if content, ok := peers[2].FileContent(site, "style.css"); !ok || len(content) == 0 {
		t.Error("FileContent lookup failed")
	}
}

func TestVisitUnknownSite(t *testing.T) {
	nw, _, peers := webWorld(t, 5, 4)
	var verr error
	peers[1].Visit(cryptoutil.SumHash([]byte("ghost")), func(files map[string][]byte, err error) { verr = err })
	nw.Run(nw.Now() + time.Minute)
	if verr == nil {
		t.Error("unknown site visit succeeded")
	}
}

func TestSignedUpdatePropagates(t *testing.T) {
	nw, _, peers := webWorld(t, 6, 5)
	owner := key(t, 7)
	files := sampleFiles()
	var site cryptoutil.Hash
	peers[0].Publish(owner, 1, files, cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)
	peers[1].Visit(site, func(map[string][]byte, error) {})
	nw.Run(nw.Now() + time.Minute)

	// Owner ships v2 with a changed file.
	files["index.html"] = []byte("<h1>v2</h1>")
	peers[0].Publish(owner, 2, files, cryptoutil.Hash{}, nil)
	nw.Run(nw.Now() + time.Minute)

	var updated bool
	var uerr error
	peers[1].Refresh(site, func(u bool, err error) { updated, uerr = u, err })
	nw.Run(nw.Now() + time.Minute)
	if uerr != nil {
		t.Fatal(uerr)
	}
	if !updated {
		t.Fatal("refresh found no update")
	}
	if content, _ := peers[1].FileContent(site, "index.html"); string(content) != "<h1>v2</h1>" {
		t.Errorf("content = %q", content)
	}
	// Refresh again: no-op.
	peers[1].Refresh(site, func(u bool, err error) { updated = u })
	nw.Run(nw.Now() + time.Minute)
	if updated {
		t.Error("second refresh should be a no-op")
	}
	// Refresh of unfollowed site errors.
	peers[2].Refresh(site, func(u bool, err error) { uerr = err })
	nw.Run(nw.Now() + time.Minute)
	if uerr == nil {
		t.Error("refresh of unfollowed site should error")
	}
}

func TestForgedUpdateRejected(t *testing.T) {
	nw, _, peers := webWorld(t, 8, 5)
	owner, mallory := key(t, 9), key(t, 10)
	var site cryptoutil.Hash
	peers[0].Publish(owner, 1, sampleFiles(), cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)
	peers[1].Visit(site, func(map[string][]byte, error) {})
	nw.Run(nw.Now() + time.Minute)

	// Mallory crafts a "v3" manifest for the victim's site address signed
	// with her own key and plants it in the DHT.
	forged, _ := SignManifest(mallory, 3, map[string][]byte{"index.html": []byte("pwned")}, cryptoutil.Hash{})
	forged.Site = site // claim the victim's address
	peers[2].DHT().Put(manifestKey(site), forged.Encode(), nil)
	nw.Run(nw.Now() + time.Minute)

	var uerr error
	var updated bool
	peers[1].Refresh(site, func(u bool, err error) { updated, uerr = u, err })
	nw.Run(nw.Now() + time.Minute)
	if updated {
		t.Fatal("forged manifest applied")
	}
	if uerr == nil {
		t.Error("forged manifest should surface as an error")
	}
	if content, _ := peers[1].FileContent(site, "index.html"); string(content) == "pwned" {
		t.Fatal("content replaced by forgery")
	}
}

func TestForkAndMerge(t *testing.T) {
	nw, _, peers := webWorld(t, 11, 6)
	owner, forker := key(t, 12), key(t, 13)
	var site cryptoutil.Hash
	peers[0].Publish(owner, 1, sampleFiles(), cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)

	// Forker visits then forks with a modification.
	peers[1].Visit(site, func(map[string][]byte, error) {})
	nw.Run(nw.Now() + time.Minute)
	var forkM *Manifest
	var ferr error
	peers[1].Fork(site, forker, func(files map[string][]byte) {
		files["app.js"] = []byte("console.log('forked!')")
		files["new.txt"] = []byte("added in fork")
	}, func(m *Manifest, err error) { forkM, ferr = m, err })
	nw.Run(nw.Now() + time.Minute)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if forkM.ForkOf != site {
		t.Error("fork provenance missing")
	}

	// A third peer visits the fork.
	var forkFiles map[string][]byte
	peers[2].Visit(forkM.Site, func(files map[string][]byte, err error) { forkFiles = files })
	nw.Run(nw.Now() + time.Minute)
	if string(forkFiles["app.js"]) != "console.log('forked!')" {
		t.Error("fork content wrong")
	}

	// The original owner (on peer 0) visits the fork and merges it.
	peers[0].Visit(forkM.Site, func(map[string][]byte, error) {})
	nw.Run(nw.Now() + time.Minute)
	var merged *Manifest
	var merr error
	peers[0].Merge(owner, forkM.Site, func(m *Manifest, err error) { merged, merr = m, err })
	nw.Run(nw.Now() + time.Minute)
	if merr != nil {
		t.Fatal(merr)
	}
	if merged.Version != 2 || merged.Site != site {
		t.Errorf("merged version=%d site=%s", merged.Version, merged.Site.Short())
	}
	if _, ok := merged.File("new.txt"); !ok {
		t.Error("merged manifest missing fork's file")
	}

	// Fork of an unvisited site fails.
	peers[3].Fork(cryptoutil.SumHash([]byte("ghost")), forker, nil, func(m *Manifest, err error) { merr = err })
	nw.Run(nw.Now() + time.Minute)
	if merr == nil {
		t.Error("fork of unvisited site should fail")
	}
}

func TestSeederScalingDistributesLoad(t *testing.T) {
	nw, _, peers := webWorld(t, 14, 12)
	owner := key(t, 15)
	var site cryptoutil.Hash
	peers[0].Publish(owner, 1, sampleFiles(), cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)

	// Visitors arrive one after another; later visitors can use earlier
	// ones as seeders.
	for i := 1; i < 12; i++ {
		var verr error
		peers[i].Visit(site, func(files map[string][]byte, err error) { verr = err })
		nw.Run(nw.Now() + time.Minute)
		if verr != nil {
			t.Fatalf("visitor %d: %v", i, verr)
		}
	}
	// Load must be spread: the author should not have served every blob to
	// every visitor (11 visitors × 3 files = 33 blob fetches total).
	authorServes := peers[0].BlobServes
	total := 0
	for _, p := range peers {
		total += p.BlobServes
	}
	if authorServes == total {
		t.Errorf("author served all %d blobs; no visitor seeding happened", total)
	}
	if total < 33 {
		t.Errorf("total serves = %d, want ≥33", total)
	}
}

func TestTrackerIdempotentAnnounce(t *testing.T) {
	nw := simnet.New(16)
	tracker := NewTracker(nw.AddNode())
	node := nw.AddNode()
	rpc := simnet.NewRPCNode(node)
	site := cryptoutil.SumHash([]byte("s"))
	for i := 0; i < 3; i++ {
		rpc.Call(tracker.Node().ID(), methodAnnounce, announceReq{Site: site, Seeder: node.ID()}, 72, time.Minute, func(any, error) {})
	}
	nw.RunAll()
	if tracker.NumSeeders(site) != 1 {
		t.Errorf("seeders = %d, want 1", tracker.NumSeeders(site))
	}
}

func BenchmarkVisit(b *testing.B) {
	nw, _, peers := webWorld(b, 17, 10)
	owner := key(b, 18)
	var site cryptoutil.Hash
	peers[0].Publish(owner, 1, sampleFiles(), cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := peers[1+i%9]
		ok := false
		p.Visit(site, func(files map[string][]byte, err error) { ok = err == nil })
		nw.Run(nw.Now() + time.Minute)
		if !ok {
			b.Fatal(fmt.Sprintf("visit %d failed", i))
		}
	}
}

// TestVisitFallsBackToSwarmManifest kills the DHT record (by isolating the
// DHT value holders) while seeders survive; Visit must still succeed via
// the seeder manifest path, because manifests are self-verifying.
func TestVisitFallsBackToSwarmManifest(t *testing.T) {
	nw := simnet.New(41)
	tracker := NewTracker(nw.AddNode())
	// Author peer with its own private DHT (not shared with the visitor),
	// so the visitor's DHT lookup always misses.
	authorNode := nw.AddNode()
	authorDHT := dht.NewPeer(authorNode, dht.Key{}, dht.Config{})
	author := NewPeer(authorNode, authorDHT, tracker.Node().ID(), 5*time.Second)

	visitorNode := nw.AddNode()
	visitorDHT := dht.NewPeer(visitorNode, dht.Key{}, dht.Config{})
	visitor := NewPeer(visitorNode, visitorDHT, tracker.Node().ID(), 5*time.Second)

	owner := key(t, 42)
	var site cryptoutil.Hash
	author.Publish(owner, 1, sampleFiles(), cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(time.Minute)

	var files map[string][]byte
	var verr error
	visitor.Visit(site, func(f map[string][]byte, err error) { files, verr = f, err })
	nw.Run(nw.Now() + time.Minute)
	if verr != nil {
		t.Fatalf("swarm-manifest fallback failed: %v", verr)
	}
	if string(files["index.html"]) != string(sampleFiles()["index.html"]) {
		t.Error("content mismatch via fallback")
	}
	if m, ok := visitor.Manifest(site); !ok || m.Version != 1 {
		t.Error("visitor did not adopt the manifest")
	}
}

// TestVisitFallbackRejectsForgedSeederManifest plants a forged manifest on
// a malicious seeder: the fallback path must skip it (signature check) and
// fail cleanly when no honest seeder exists.
func TestVisitFallbackRejectsForgedSeederManifest(t *testing.T) {
	nw := simnet.New(43)
	tracker := NewTracker(nw.AddNode())
	mk := func() *Peer {
		node := nw.AddNode()
		return NewPeer(node, dht.NewPeer(node, dht.Key{}, dht.Config{}), tracker.Node().ID(), 5*time.Second)
	}
	mallorySeeder := mk()
	visitor := mk()

	owner, mallory := key(t, 44), key(t, 45)
	site := owner.Fingerprint()
	// Mallory announces herself as a seeder of the victim's site and serves
	// a forged manifest for it.
	forged, blobs := SignManifest(mallory, 7, map[string][]byte{"index.html": []byte("pwned")}, cryptoutil.Hash{})
	forged.Site = site
	mallorySeeder.adopt(forged, blobs)
	mallorySeeder.announce(site)
	nw.Run(time.Minute)

	verr := error(nil)
	visitor.Visit(site, func(f map[string][]byte, err error) { verr = err })
	nw.Run(nw.Now() + time.Minute)
	if verr == nil {
		t.Fatal("forged seeder manifest accepted")
	}
}
