package webapp

import (
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/resil"
	"repro/internal/simnet"
)

// Tracker is a rendezvous service mapping site → seeders (ZeroNet uses
// BitTorrent trackers alongside DHT lookup). It is an optimization, not an
// authority: all content is verified against the signed manifest, so a
// malicious tracker can at worst deny service.
type Tracker struct {
	rpc     *simnet.RPCNode
	seeders map[cryptoutil.Hash][]simnet.NodeID
}

const (
	methodAnnounce = "web.announce"
	methodPeers    = "web.peers"
	methodBlob     = "web.blob"
	methodManifest = "web.manifest"
)

type announceReq struct {
	Site   cryptoutil.Hash
	Seeder simnet.NodeID
}

type peersResp struct {
	Seeders []simnet.NodeID
}

// NewTracker starts a tracker on node in the historical configuration
// (no overload control).
func NewTracker(node *simnet.Node) *Tracker {
	return NewTrackerWith(node, overload.Config{})
}

// NewTrackerWith starts a tracker with explicit overload control. The
// tracker is pure control plane — announce and peer lookups are the RPCs
// a flash crowd needs answered to spread load — so both methods register
// as Control: never queued or shed, and riding the priority lane when
// enabled. The zero Config is a passthrough identical to NewTracker.
func NewTrackerWith(node *simnet.Node, ocfg overload.Config) *Tracker {
	t := &Tracker{rpc: simnet.NewRPCNode(node), seeders: map[cryptoutil.Hash][]simnet.NodeID{}}
	ov := overload.New(t.rpc, ocfg)
	ov.Control(methodAnnounce, t.onAnnounce)
	ov.Control(methodPeers, t.onPeers)
	return t
}

// Node returns the tracker's simnet node.
func (t *Tracker) Node() *simnet.Node { return t.rpc.Node() }

// NumSeeders returns how many seeders a site has announced.
func (t *Tracker) NumSeeders(site cryptoutil.Hash) int { return len(t.seeders[site]) }

func (t *Tracker) onAnnounce(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(announceReq)
	if !ok {
		return false, 8
	}
	for _, s := range t.seeders[r.Site] {
		if s == r.Seeder {
			return true, 8
		}
	}
	t.seeders[r.Site] = append(t.seeders[r.Site], r.Seeder)
	return true, 8
}

func (t *Tracker) onPeers(from simnet.NodeID, req any) (any, int) {
	site, ok := req.(cryptoutil.Hash)
	if !ok {
		return peersResp{}, 8
	}
	out := append([]simnet.NodeID{}, t.seeders[site]...)
	return peersResp{Seeders: out}, 16 + 8*len(out)
}

// Peer is one participant in the hostless web: it can publish sites it
// owns, visit (fetch + verify) other sites, and seed everything it has
// fetched. It keeps a DHT peer for manifest resolution.
type Peer struct {
	rpc     *simnet.RPCNode
	res     *resil.Client // manifest/blob/tracker fetches ride the resilience layer
	dht     *dht.Peer
	tracker simnet.NodeID
	timeout time.Duration
	// sites maps site address → newest verified manifest.
	sites map[cryptoutil.Hash]*Manifest
	blobs map[cryptoutil.Hash][]byte
	// BlobServes counts blobs served to other visitors (seeding load);
	// BlobBytesServed is the same load in payload bytes, which is what
	// origin-load-share comparisons (X18) weigh by.
	BlobServes      int
	BlobBytesServed int64

	// Observability: swarm-wide visit outcomes and seeding load; each
	// Visit is spanned as webapp.visit.duration_s.
	obsVisitOK   *obs.Counter
	obsVisitFail *obs.Counter
	obsServes    *obs.Counter
}

// NewPeer creates a web peer on node, joined to the given DHT (the caller
// bootstraps the DHT peer) and tracker, on the historical fixed-timeout
// transport.
func NewPeer(node *simnet.Node, d *dht.Peer, tracker simnet.NodeID, timeout time.Duration) *Peer {
	return NewPeerWith(node, d, tracker, timeout, resil.Config{})
}

// NewPeerWith is NewPeer with an explicit resilience configuration for
// the peer's own fetches (manifest, blob, and tracker RPCs). The DHT leg
// of a Visit is tuned separately through dht.Config.Resilience.
func NewPeerWith(node *simnet.Node, d *dht.Peer, tracker simnet.NodeID, timeout time.Duration, rcfg resil.Config) *Peer {
	return NewPeerCfg(node, d, tracker, timeout, PeerConfig{Resilience: rcfg})
}

// PeerConfig bundles a web peer's client- and server-side robustness
// layers. The zero value is the historical peer: fixed-timeout fetches,
// unbounded serving.
type PeerConfig struct {
	// Resilience tunes the peer's own fetches (see NewPeerWith).
	Resilience resil.Config
	// Overload, when enabled, puts the peer's serving methods behind
	// server-side overload control: blob serving is the bulk plane
	// (bounded queue, admission control), manifest serving and the peer's
	// own tracker announces ride the control lane — a seeder saturated by
	// a flash crowd keeps handing out the (tiny, swarm-unlocking)
	// manifests and keeps itself announced.
	Overload overload.Config
}

// NewPeerCfg is the fully-configured constructor behind NewPeer and
// NewPeerWith.
func NewPeerCfg(node *simnet.Node, d *dht.Peer, tracker simnet.NodeID, timeout time.Duration, cfg PeerConfig) *Peer {
	rpc := simnet.NewRPCNode(node)
	p := &Peer{
		rpc:          rpc,
		res:          resil.New(rpc, cfg.Resilience),
		dht:          d,
		tracker:      tracker,
		timeout:      timeout,
		sites:        map[cryptoutil.Hash]*Manifest{},
		blobs:        map[cryptoutil.Hash][]byte{},
		obsVisitOK:   node.Obs().Counter("webapp.visit.ok"),
		obsVisitFail: node.Obs().Counter("webapp.visit.fail"),
		obsServes:    node.Obs().Counter("webapp.blob.served"),
	}
	ov := overload.New(rpc, cfg.Overload)
	ov.Protect(methodBlob, p.onBlob)
	ov.Control(methodManifest, p.onManifest)
	ov.MarkControl(methodAnnounce)
	// Re-announce everything after a restart so the swarm finds us again.
	node.OnUp(func() {
		for site := range p.sites {
			p.announce(site)
		}
	})
	return p
}

// Node returns the peer's simnet node.
func (p *Peer) Node() *simnet.Node { return p.rpc.Node() }

// DHT returns the peer's DHT participant.
func (p *Peer) DHT() *dht.Peer { return p.dht }

// Manifest returns the peer's newest verified manifest for a site.
func (p *Peer) Manifest(site cryptoutil.Hash) (*Manifest, bool) {
	m, ok := p.sites[site]
	return m, ok
}

// FileContent returns a fetched file's bytes for a site path.
func (p *Peer) FileContent(site cryptoutil.Hash, path string) ([]byte, bool) {
	m, ok := p.sites[site]
	if !ok {
		return nil, false
	}
	fe, ok := m.File(path)
	if !ok {
		return nil, false
	}
	data, ok := p.blobs[fe.ID]
	return data, ok
}

func (p *Peer) onBlob(from simnet.NodeID, req any) (any, int) {
	id, ok := req.(cryptoutil.Hash)
	if !ok {
		return getBlobResp{}, 8
	}
	data, have := p.blobs[id]
	if !have {
		return getBlobResp{}, 8
	}
	p.BlobServes++
	p.BlobBytesServed += int64(len(data))
	p.obsServes.Inc()
	return getBlobResp{Data: data, OK: true}, 16 + len(data)
}

func (p *Peer) onManifest(from simnet.NodeID, req any) (any, int) {
	site, ok := req.(cryptoutil.Hash)
	if !ok {
		return getBlobResp{}, 8
	}
	m, have := p.sites[site]
	if !have {
		return getBlobResp{}, 8
	}
	enc := m.Encode()
	return getBlobResp{Data: enc, OK: true}, 16 + len(enc)
}

type getBlobResp struct {
	Data []byte
	OK   bool
}

// Publish signs and publishes a site version: blobs are stored locally,
// the manifest goes into the DHT, and the peer announces itself as a
// seeder. done receives the manifest.
func (p *Peer) Publish(owner *cryptoutil.KeyPair, version uint64, files map[string][]byte, forkOf cryptoutil.Hash, done func(*Manifest)) {
	m, blobs := SignManifest(owner, version, files, forkOf)
	p.adopt(m, blobs)
	p.dht.Put(manifestKey(m.Site), m.Encode(), func(int) {
		p.announce(m.Site)
		if done != nil {
			done(m)
		}
	})
}

// adopt installs a verified manifest + blobs locally.
func (p *Peer) adopt(m *Manifest, blobs map[cryptoutil.Hash][]byte) {
	p.sites[m.Site] = m
	for id, data := range blobs {
		p.blobs[id] = data
	}
}

func (p *Peer) announce(site cryptoutil.Hash) {
	req := announceReq{Site: site, Seeder: p.rpc.Node().ID()}
	p.res.Call(p.tracker, methodAnnounce, req, 72, p.timeout, func(any, error) {})
}

// Visit resolves a site: manifest from the DHT (falling back to asking the
// site's seeders directly — every manifest is self-verifying, so any
// untrusted copy will do), blobs from seeders, full verification, then the
// visitor seeds the site itself. done receives the assembled files or an
// error.
func (p *Peer) Visit(site cryptoutil.Hash, done func(files map[string][]byte, err error)) {
	node := p.rpc.Node()
	span := node.Obs().StartSpan("webapp.visit.duration_s", node.Now())
	inner := done
	done = func(files map[string][]byte, err error) {
		span.End(node.Now())
		if err == nil {
			p.obsVisitOK.Inc()
		} else {
			p.obsVisitFail.Inc()
		}
		inner(files, err)
	}
	p.dht.Get(manifestKey(site), func(value []byte, ok bool) {
		if ok {
			m, err := DecodeManifest(value)
			if err != nil {
				done(nil, err)
				return
			}
			p.fetchBundle(m, site, done)
			return
		}
		// DHT miss (churned-out record, partition): the swarm itself is an
		// alternative manifest source.
		p.res.Call(p.tracker, methodPeers, site, 40, p.timeout, func(resp any, err error) {
			pr, ok := resp.(peersResp)
			if err != nil || !ok || len(pr.Seeders) == 0 {
				done(nil, fmt.Errorf("webapp: site %s not found in DHT or swarm", site.Short()))
				return
			}
			p.fetchManifestFrom(site, p.shuffled(pr.Seeders), 0, done)
		})
	})
}

// fetchManifestFrom asks seeders for the site manifest until one supplies
// a copy that verifies, then fetches the bundle.
func (p *Peer) fetchManifestFrom(site cryptoutil.Hash, seeders []simnet.NodeID, i int, done func(map[string][]byte, error)) {
	if i >= len(seeders) {
		done(nil, fmt.Errorf("webapp: no seeder supplied a manifest for %s", site.Short()))
		return
	}
	if seeders[i] == p.rpc.Node().ID() {
		p.fetchManifestFrom(site, seeders, i+1, done)
		return
	}
	p.res.Call(seeders[i], methodManifest, site, 40, p.timeout, func(resp any, err error) {
		if err == nil {
			if r, ok := resp.(getBlobResp); ok && r.OK {
				if m, derr := DecodeManifest(r.Data); derr == nil && m.Site == site && m.Verify() {
					p.fetchBundle(m, site, done)
					return
				}
			}
		}
		p.fetchManifestFrom(site, seeders, i+1, done)
	})
}

// fetchBundle validates the manifest and pulls its blobs from the swarm.
func (p *Peer) fetchBundle(m *Manifest, site cryptoutil.Hash, done func(map[string][]byte, error)) {
	if m.Site != site || !m.Verify() {
		done(nil, fmt.Errorf("webapp: manifest for %s fails verification", site.Short()))
		return
	}
	if cur, ok := p.sites[site]; ok && cur.Version >= m.Version {
		m = cur // already have an equal or newer version
	}
	req := m
	p.res.Call(p.tracker, methodPeers, site, 40, p.timeout, func(resp any, err error) {
		if err != nil {
			done(nil, fmt.Errorf("webapp: tracker unreachable: %w", err))
			return
		}
		pr, ok := resp.(peersResp)
		if !ok || len(pr.Seeders) == 0 {
			done(nil, fmt.Errorf("webapp: no seeders for %s", site.Short()))
			return
		}
		p.fetchBlobs(req, p.shuffled(pr.Seeders), done)
	})
}

func (p *Peer) fetchBlobs(m *Manifest, seeders []simnet.NodeID, done func(map[string][]byte, error)) {
	files := map[string][]byte{}
	blobs := map[cryptoutil.Hash][]byte{}
	pending := 0
	failed := 0
	finished := false
	check := func() {
		if pending != 0 || finished {
			return
		}
		finished = true
		if failed > 0 {
			done(nil, fmt.Errorf("webapp: %d blobs unavailable", failed))
			return
		}
		p.adopt(m, blobs)
		p.announce(m.Site) // visitor becomes seeder
		done(files, nil)
	}
	for _, fe := range m.Files {
		if data, ok := p.blobs[fe.ID]; ok {
			files[fe.Path] = data
			blobs[fe.ID] = data
			continue
		}
		pending++
		fe := fe
		p.fetchBlobFrom(fe.ID, seeders, 0, func(data []byte, ok bool) {
			pending--
			if !ok {
				failed++
			} else {
				files[fe.Path] = data
				blobs[fe.ID] = data
			}
			check()
		})
	}
	check()
}

// shuffled returns a randomly permuted copy of the seeder list so fetch
// load spreads across the swarm instead of hammering the first announcer
// (usually the author).
func (p *Peer) shuffled(seeders []simnet.NodeID) []simnet.NodeID {
	out := append([]simnet.NodeID{}, seeders...)
	rng := p.rpc.Node().Rand()
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// fetchBlobFrom tries seeders in order until one serves a blob matching
// the content address. Seeders are untrusted: a corrupt blob is skipped.
func (p *Peer) fetchBlobFrom(id cryptoutil.Hash, seeders []simnet.NodeID, i int, done func([]byte, bool)) {
	if i >= len(seeders) {
		done(nil, false)
		return
	}
	if seeders[i] == p.rpc.Node().ID() {
		p.fetchBlobFrom(id, seeders, i+1, done)
		return
	}
	p.res.Call(seeders[i], methodBlob, id, 40, p.timeout, func(resp any, err error) {
		if err == nil {
			if r, ok := resp.(getBlobResp); ok && r.OK && cryptoutil.SumHash(r.Data) == id {
				done(r.Data, true)
				return
			}
		}
		p.fetchBlobFrom(id, seeders, i+1, done)
	})
}

// Forget drops the peer's local copy of a site — its manifest and any
// blobs no other followed site still references — so the next Visit
// re-fetches everything over the network. Workload harnesses use it to
// model a fresh user arriving on a device that happened to serve an
// earlier one: without it, a revisit is a pure cache hit and measures
// nothing. The tracker is not informed (it has no unannounce); a seeder
// asked for a blob it no longer holds answers not-have and the fetcher
// fails over, exactly as with a restarted peer.
func (p *Peer) Forget(site cryptoutil.Hash) {
	m, ok := p.sites[site]
	if !ok {
		return
	}
	delete(p.sites, site)
	for _, fe := range m.Files {
		if !p.blobReferenced(fe.ID) {
			delete(p.blobs, fe.ID)
		}
	}
}

// blobReferenced reports whether any followed site still references a blob.
func (p *Peer) blobReferenced(id cryptoutil.Hash) bool {
	for _, m := range p.sites {
		for _, fe := range m.Files {
			if fe.ID == id {
				return true
			}
		}
	}
	return false
}

// Refresh checks the DHT for a newer manifest version of a site the peer
// already follows and fetches changed blobs. done reports whether an
// update was applied.
func (p *Peer) Refresh(site cryptoutil.Hash, done func(updated bool, err error)) {
	cur, ok := p.sites[site]
	if !ok {
		done(false, fmt.Errorf("webapp: not following site %s", site.Short()))
		return
	}
	p.dht.Get(manifestKey(site), func(value []byte, found bool) {
		if !found {
			done(false, nil)
			return
		}
		m, err := DecodeManifest(value)
		if err != nil || !m.Verify() || m.Site != site {
			done(false, fmt.Errorf("webapp: invalid refreshed manifest"))
			return
		}
		if m.Version <= cur.Version {
			done(false, nil)
			return
		}
		p.res.Call(p.tracker, methodPeers, site, 40, p.timeout, func(resp any, err error) {
			pr, ok := resp.(peersResp)
			if err != nil || !ok {
				done(false, fmt.Errorf("webapp: tracker unreachable"))
				return
			}
			p.fetchBlobs(m, p.shuffled(pr.Seeders), func(files map[string][]byte, err error) {
				if err != nil {
					done(false, err)
					return
				}
				done(true, nil)
			})
		})
	})
}

// Fork publishes a new site owned by newOwner containing the current
// files of the source site (which this peer must have visited), recording
// provenance — Beaker's fork-and-modify flow. done receives the new
// manifest.
func (p *Peer) Fork(source cryptoutil.Hash, newOwner *cryptoutil.KeyPair, modify func(files map[string][]byte), done func(*Manifest, error)) {
	src, ok := p.sites[source]
	if !ok {
		done(nil, fmt.Errorf("webapp: cannot fork unvisited site %s", source.Short()))
		return
	}
	files := map[string][]byte{}
	for _, fe := range src.Files {
		data, ok := p.blobs[fe.ID]
		if !ok {
			done(nil, fmt.Errorf("webapp: missing blob for %s", fe.Path))
			return
		}
		files[fe.Path] = append([]byte{}, data...)
	}
	if modify != nil {
		modify(files)
	}
	p.Publish(newOwner, 1, files, source, func(m *Manifest) { done(m, nil) })
}

// Merge publishes a new version of the owner's site that absorbs the
// files of a fork this peer has visited (Beaker's merge flow). done
// receives the merged manifest.
func (p *Peer) Merge(owner *cryptoutil.KeyPair, fork cryptoutil.Hash, done func(*Manifest, error)) {
	own := owner.Fingerprint()
	cur, ok := p.sites[own]
	if !ok {
		done(nil, fmt.Errorf("webapp: owner site not present"))
		return
	}
	forkM, ok := p.sites[fork]
	if !ok {
		done(nil, fmt.Errorf("webapp: fork %s not visited", fork.Short()))
		return
	}
	files := map[string][]byte{}
	for _, fe := range cur.Files {
		if data, ok := p.blobs[fe.ID]; ok {
			files[fe.Path] = data
		}
	}
	for _, fe := range forkM.Files {
		if data, ok := p.blobs[fe.ID]; ok {
			files[fe.Path] = data // fork wins on conflicts
		}
	}
	p.Publish(owner, cur.Version+1, files, cryptoutil.Hash{}, func(m *Manifest) { done(m, nil) })
}
