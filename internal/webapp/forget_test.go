package webapp

import (
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

// TestForgetDropsSiteAndRefetches: Forget removes the local manifest and
// blobs, a re-visit goes back over the network, and the author's
// BlobBytesServed ledger grows by exactly the payload re-served. Also
// exercises the stale-seeder path: the forgetter is still registered at
// the tracker, answers not-have, and the fetcher fails over.
func TestForgetDropsSiteAndRefetches(t *testing.T) {
	nw, _, peers := webWorld(t, 21, 5)
	owner := key(t, 22)
	var site cryptoutil.Hash
	peers[0].Publish(owner, 1, sampleFiles(), cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)

	var verr error
	peers[1].Visit(site, func(_ map[string][]byte, err error) { verr = err })
	nw.Run(nw.Now() + time.Minute)
	if verr != nil {
		t.Fatal(verr)
	}
	if _, ok := peers[1].Manifest(site); !ok {
		t.Fatal("visitor has no manifest")
	}
	served := peers[0].BlobBytesServed
	m, _ := peers[0].Manifest(site)
	if served != int64(m.TotalSize()) {
		t.Errorf("author served %d bytes after one visit, want %d", served, m.TotalSize())
	}

	peers[1].Forget(site)
	if _, ok := peers[1].Manifest(site); ok {
		t.Error("manifest survived Forget")
	}
	if len(peers[1].blobs) != 0 {
		t.Errorf("%d blobs survived Forget", len(peers[1].blobs))
	}
	if _, ok := peers[1].FileContent(site, "index.html"); ok {
		t.Error("FileContent still answers after Forget")
	}

	// Re-visit: everything must come over the network again.
	peers[1].Visit(site, func(_ map[string][]byte, err error) { verr = err })
	nw.Run(nw.Now() + time.Minute)
	if verr != nil {
		t.Fatalf("re-visit after Forget: %v", verr)
	}
	if _, ok := peers[1].FileContent(site, "index.html"); !ok {
		t.Error("re-visit did not restore content")
	}
	total := peers[0].BlobBytesServed + peers[1].BlobBytesServed
	if total != 2*int64(m.TotalSize()) {
		t.Errorf("network served %d payload bytes after forget+revisit, want %d", total, 2*m.TotalSize())
	}
}

// TestForgetKeepsSharedBlobs: a blob referenced by another followed site
// survives; blobs unique to the forgotten site go.
func TestForgetKeepsSharedBlobs(t *testing.T) {
	nw, _, peers := webWorld(t, 23, 4)
	shared := []byte("the very same bytes on both sites")
	filesA := map[string][]byte{"shared.bin": shared, "only-a.txt": []byte("a")}
	filesB := map[string][]byte{"shared.bin": shared, "only-b.txt": []byte("b")}
	var siteA, siteB cryptoutil.Hash
	peers[0].Publish(key(t, 24), 1, filesA, cryptoutil.Hash{}, func(m *Manifest) { siteA = m.Site })
	peers[1].Publish(key(t, 25), 1, filesB, cryptoutil.Hash{}, func(m *Manifest) { siteB = m.Site })
	nw.Run(nw.Now() + time.Minute)

	v := peers[2]
	for _, s := range []cryptoutil.Hash{siteA, siteB} {
		var verr error
		v.Visit(s, func(_ map[string][]byte, err error) { verr = err })
		nw.Run(nw.Now() + time.Minute)
		if verr != nil {
			t.Fatal(verr)
		}
	}
	if len(v.blobs) != 3 { // shared + only-a + only-b
		t.Fatalf("visitor holds %d blobs, want 3", len(v.blobs))
	}

	v.Forget(siteA)
	if _, ok := v.blobs[cryptoutil.SumHash(shared)]; !ok {
		t.Error("shared blob dropped even though site B still references it")
	}
	if _, ok := v.blobs[cryptoutil.SumHash([]byte("a"))]; ok {
		t.Error("blob unique to forgotten site survived")
	}
	if content, ok := v.FileContent(siteB, "shared.bin"); !ok || string(content) != string(shared) {
		t.Error("site B content damaged by forgetting site A")
	}
	// Forgetting a site never followed is a no-op.
	v.Forget(cryptoutil.SumHash([]byte("ghost")))
	if len(v.blobs) != 2 {
		t.Errorf("ghost Forget changed blob store: %d blobs", len(v.blobs))
	}
}
