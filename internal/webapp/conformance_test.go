package webapp

import (
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// webappConformanceRun publishes a hostless site, lets a few early visitors
// become seeders, drives the visitor fleet through a fault scenario, and
// returns the post-recovery visit success rate. The tracker and the author
// are anchors; every visitor is fault-eligible.
func webappConformanceRun(t testing.TB, seed int64, sc fault.Scenario) float64 {
	t.Helper()
	const (
		nVisitors = 8
		horizon   = 40 * time.Minute
	)
	nw := simnet.New(seed)
	tracker := NewTracker(nw.AddNode())
	authorNode := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
	authorDHT := dht.NewPeer(authorNode, dht.Key{}, dht.Config{})
	author := NewPeer(authorNode, authorDHT, tracker.Node().ID(), 30*time.Second)
	owner, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		t.Fatal(err)
	}

	visitors := make([]*Peer, nVisitors)
	eligible := make([]simnet.NodeID, nVisitors)
	for i := range visitors {
		node := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
		d := dht.NewPeer(node, dht.Key{}, dht.Config{})
		d.Bootstrap(authorDHT.Contact(), nil)
		visitors[i] = NewPeer(node, d, tracker.Node().ID(), 30*time.Second)
		eligible[i] = node.ID()
	}
	nw.Run(2 * time.Minute) // settle DHT routing tables

	files := map[string][]byte{
		"index.html": []byte("<html><body>conformance</body></html>"),
		"app.js":     make([]byte, 2048),
	}
	var site cryptoutil.Hash
	author.Publish(owner, 1, files, cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)
	if site.IsZero() {
		t.Fatal("publish did not complete in the setup window")
	}

	// A couple of early visits so the bundle is seeded beyond the author
	// before the adversity starts.
	for _, p := range visitors[:2] {
		p.Visit(site, func(map[string][]byte, error) {})
	}
	nw.Run(nw.Now() + time.Minute)

	start := nw.Now()
	sc.Build(seed, eligible, horizon).ApplyAt(nw, start)
	// Mid-run visits keep the swarm busy during the fault window; their
	// outcome is not asserted — only recovery is.
	for i, p := range visitors {
		p := p
		nw.Schedule(start+time.Duration(i+1)*horizon/16, func() {
			p.Visit(site, func(map[string][]byte, error) {})
		})
	}
	nw.Run(start + horizon)

	// Post-recovery probe: every visitor (all back up) fetches the site.
	ok := 0
	for _, p := range visitors {
		good := false
		p.Visit(site, func(fs map[string][]byte, err error) { good = err == nil && len(fs) == len(files) })
		nw.Run(nw.Now() + time.Minute)
		if good {
			ok++
		}
	}
	return float64(ok) / float64(nVisitors)
}

// TestWebappRecoveryConformance: once faults clear, every visitor must be
// able to fetch the full site again.
func TestWebappRecoveryConformance(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if got := webappConformanceRun(t, 406, sc); got < 1.0 {
				t.Errorf("post-recovery visit success %.3f, want 1.0", got)
			}
		})
	}
}

// TestWebappConformanceDeterministic: the success rate is a pure function
// of the seed.
func TestWebappConformanceDeterministic(t *testing.T) {
	sc, _ := fault.ByName("lossy-edge")
	if a, b := webappConformanceRun(t, 66, sc), webappConformanceRun(t, 66, sc); a != b {
		t.Errorf("same seed gave different rates: %v vs %v", a, b)
	}
}

// webappMidFaultRun measures visit availability during the fault window:
// fresh, never-before-used visitors (a warm visitor would serve the site
// from its own blob cache and measure nothing) fetch the site at a fixed
// cadence while the seeder fleet is under fault, riding the resilience
// layer for manifest, tracker, and blob RPCs. A probe counts as available
// iff the full site lands within the 15s SLA.
func webappMidFaultRun(t testing.TB, seed int64, sc fault.Scenario, rcfg resil.Config) float64 {
	t.Helper()
	const (
		nSeeders = 8
		nProbes  = 8
		horizon  = 30 * time.Minute
		sla      = 15 * time.Second
	)
	nw := simnet.New(seed)
	tracker := NewTracker(nw.AddNode())
	authorNode := nw.AddNode()
	authorDHT := dht.NewPeer(authorNode, dht.Key{}, dht.Config{})
	author := NewPeer(authorNode, authorDHT, tracker.Node().ID(), 30*time.Second)
	owner, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		t.Fatal(err)
	}

	probeDHTCfg := dht.Config{Resilience: rcfg}
	seeders := make([]*Peer, nSeeders)
	eligible := make([]simnet.NodeID, nSeeders)
	for i := range seeders {
		node := nw.AddNode()
		d := dht.NewPeer(node, dht.Key{}, dht.Config{})
		d.Bootstrap(authorDHT.Contact(), nil)
		seeders[i] = NewPeer(node, d, tracker.Node().ID(), 30*time.Second)
		eligible[i] = node.ID()
	}
	// One cold visitor per probe, bootstrapped before the faults begin and
	// used exactly once.
	visitors := make([]*Peer, nProbes)
	for i := range visitors {
		node := nw.AddNode()
		d := dht.NewPeer(node, dht.Key{}, probeDHTCfg)
		d.Bootstrap(authorDHT.Contact(), nil)
		visitors[i] = NewPeerWith(node, d, tracker.Node().ID(), 30*time.Second, rcfg)
	}
	nw.Run(2 * time.Minute)

	files := map[string][]byte{
		"index.html": []byte("<html><body>midfault</body></html>"),
		"app.js":     make([]byte, 2048),
	}
	var site cryptoutil.Hash
	author.Publish(owner, 1, files, cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)
	if site.IsZero() {
		t.Fatal("publish did not complete in the setup window")
	}
	for _, p := range seeders {
		p.Visit(site, func(map[string][]byte, error) {})
	}
	nw.Run(nw.Now() + time.Minute)

	start := nw.Now()
	plan := sc.Build(seed, eligible, horizon)
	plan.ApplyAt(nw, start)
	ws, we := plan.Start(), plan.End()
	if we <= ws { // clean plan: probe the whole horizon
		ws, we = 0, horizon
	}

	ok, total := 0, 0
	for i := 0; i < nProbes; i++ {
		i := i
		total++
		nw.Schedule(start+ws+time.Duration(i)*(we-ws)/nProbes, func() {
			launched := nw.Now()
			visitors[i].Visit(site, func(fs map[string][]byte, err error) {
				if err == nil && len(fs) == len(files) && nw.Now()-launched <= sla {
					ok++
				}
			})
		})
	}
	nw.Run(start + horizon)
	return float64(ok) / float64(total)
}

// TestWebappMidFaultAvailability: with the resilience layer on, cold
// visitors must keep landing the full site at the per-scenario floor
// while the seeder swarm is actively under fault — the author and the
// tracker stay up, so blob-source failover plus adaptive timeouts decide
// the outcome.
func TestWebappMidFaultAvailability(t *testing.T) {
	floors := map[string]float64{
		"clean":           1.0,
		"lossy-edge":      0.75,
		"flash-partition": 0.5,
		"rolling-churn":   0.75,
		"corrupt-10pct":   0.75,
	}
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			got := webappMidFaultRun(t, 410, sc, resil.Defaults())
			if floor := floors[sc.Name]; got < floor {
				t.Errorf("mid-fault visit availability %.2f below floor %.2f", got, floor)
			}
			t.Logf("mid-fault availability %.2f", got)
		})
	}
}
