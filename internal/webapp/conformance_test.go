package webapp

import (
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// webappConformanceRun publishes a hostless site, lets a few early visitors
// become seeders, drives the visitor fleet through a fault scenario, and
// returns the post-recovery visit success rate. The tracker and the author
// are anchors; every visitor is fault-eligible.
func webappConformanceRun(t testing.TB, seed int64, sc fault.Scenario) float64 {
	t.Helper()
	const (
		nVisitors = 8
		horizon   = 40 * time.Minute
	)
	nw := simnet.New(seed)
	tracker := NewTracker(nw.AddNode())
	authorNode := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
	authorDHT := dht.NewPeer(authorNode, dht.Key{}, dht.Config{})
	author := NewPeer(authorNode, authorDHT, tracker.Node().ID(), 30*time.Second)
	owner, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		t.Fatal(err)
	}

	visitors := make([]*Peer, nVisitors)
	eligible := make([]simnet.NodeID, nVisitors)
	for i := range visitors {
		node := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
		d := dht.NewPeer(node, dht.Key{}, dht.Config{})
		d.Bootstrap(authorDHT.Contact(), nil)
		visitors[i] = NewPeer(node, d, tracker.Node().ID(), 30*time.Second)
		eligible[i] = node.ID()
	}
	nw.Run(2 * time.Minute) // settle DHT routing tables

	files := map[string][]byte{
		"index.html": []byte("<html><body>conformance</body></html>"),
		"app.js":     make([]byte, 2048),
	}
	var site cryptoutil.Hash
	author.Publish(owner, 1, files, cryptoutil.Hash{}, func(m *Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)
	if site.IsZero() {
		t.Fatal("publish did not complete in the setup window")
	}

	// A couple of early visits so the bundle is seeded beyond the author
	// before the adversity starts.
	for _, p := range visitors[:2] {
		p.Visit(site, func(map[string][]byte, error) {})
	}
	nw.Run(nw.Now() + time.Minute)

	start := nw.Now()
	sc.Build(seed, eligible, horizon).ApplyAt(nw, start)
	// Mid-run visits keep the swarm busy during the fault window; their
	// outcome is not asserted — only recovery is.
	for i, p := range visitors {
		p := p
		nw.Schedule(start+time.Duration(i+1)*horizon/16, func() {
			p.Visit(site, func(map[string][]byte, error) {})
		})
	}
	nw.Run(start + horizon)

	// Post-recovery probe: every visitor (all back up) fetches the site.
	ok := 0
	for _, p := range visitors {
		good := false
		p.Visit(site, func(fs map[string][]byte, err error) { good = err == nil && len(fs) == len(files) })
		nw.Run(nw.Now() + time.Minute)
		if good {
			ok++
		}
	}
	return float64(ok) / float64(nVisitors)
}

// TestWebappRecoveryConformance: once faults clear, every visitor must be
// able to fetch the full site again.
func TestWebappRecoveryConformance(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if got := webappConformanceRun(t, 406, sc); got < 1.0 {
				t.Errorf("post-recovery visit success %.3f, want 1.0", got)
			}
		})
	}
}

// TestWebappConformanceDeterministic: the success rate is a pure function
// of the seed.
func TestWebappConformanceDeterministic(t *testing.T) {
	sc, _ := fault.ByName("lossy-edge")
	if a, b := webappConformanceRun(t, 66, sc), webappConformanceRun(t, 66, sc); a != b {
		t.Errorf("same seed gave different rates: %v vs %v", a, b)
	}
}
