package webapp

import (
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/simnet"
)

// appWorld builds n app runtimes over a bootstrapped DHT.
func appWorld(t testing.TB, seed int64, n int, resolver func(string) (cryptoutil.Hash, bool)) (*simnet.Network, []*AppRuntime) {
	t.Helper()
	nw := simnet.New(seed)
	rts := make([]*AppRuntime, n)
	var seedContact dht.Contact
	for i := 0; i < n; i++ {
		node := nw.AddNode()
		d := dht.NewPeer(node, dht.Key{}, dht.Config{})
		if i == 0 {
			seedContact = d.Contact()
		} else {
			d.Bootstrap(seedContact, nil)
		}
		rts[i] = NewAppRuntime(node, d, resolver)
	}
	nw.Run(time.Minute)
	return nw, rts
}

func TestAppStorageAPI(t *testing.T) {
	nw, rts := appWorld(t, 1, 8, nil)
	stored := -1
	rts[0].StorePut("game-state", []byte(`{"score":42}`), func(n int) { stored = n })
	nw.Run(nw.Now() + time.Minute)
	if stored <= 0 {
		t.Fatalf("stored on %d nodes", stored)
	}
	var got []byte
	ok := false
	rts[5].StoreGet("game-state", func(v []byte, o bool) { got, ok = v, o })
	nw.Run(nw.Now() + time.Minute)
	if !ok || string(got) != `{"score":42}` {
		t.Fatalf("get: ok=%v %q", ok, got)
	}
	rts[5].StoreGet("missing-key", func(v []byte, o bool) { ok = o })
	nw.Run(nw.Now() + time.Minute)
	if ok {
		t.Error("missing key found")
	}
}

func TestAppIdentityAPI(t *testing.T) {
	alice := cryptoutil.SumHash([]byte("alice-key"))
	resolver := func(name string) (cryptoutil.Hash, bool) {
		if name == "alice.id" {
			return alice, true
		}
		return cryptoutil.Hash{}, false
	}
	_, rts := appWorld(t, 2, 2, resolver)
	got, ok := rts[1].LookupIdentity("alice.id")
	if !ok || got != alice {
		t.Error("identity lookup failed")
	}
	if _, ok := rts[1].LookupIdentity("nobody"); ok {
		t.Error("ghost identity resolved")
	}
	nilRT := NewAppRuntime(simnet.New(99).AddNode(), nil, nil)
	if _, ok := nilRT.LookupIdentity("x"); ok {
		t.Error("nil resolver should miss")
	}
}

func TestAppTransportAPI(t *testing.T) {
	nw, rts := appWorld(t, 3, 3, nil)
	var gotFrom simnet.NodeID
	var gotPayload []byte
	rts[1].OnMessage(func(from simnet.NodeID, payload []byte) { gotFrom, gotPayload = from, payload })
	if !rts[0].SendTo(rts[1].Node().ID(), []byte("hello app")) {
		t.Fatal("send failed")
	}
	nw.Run(nw.Now() + time.Minute)
	if string(gotPayload) != "hello app" || gotFrom != rts[0].Node().ID() {
		t.Fatalf("delivery: from=%v payload=%q", gotFrom, gotPayload)
	}
	if rts[1].MessagesReceived != 1 {
		t.Error("message count")
	}
}

// TestAppEndToEnd is the freedom.js scenario: instances rendezvous through
// the DHT, connect directly, and exchange state — no server anywhere.
func TestAppEndToEnd(t *testing.T) {
	nw, rts := appWorld(t, 4, 6, nil)
	// Instance 2 announces itself for app "p2p-chat".
	done := false
	rts[2].Rendezvous("p2p-chat", func() { done = true })
	nw.Run(nw.Now() + time.Minute)
	if !done {
		t.Fatal("rendezvous did not complete")
	}
	// Instance 4 discovers it and opens a direct channel.
	var peer simnet.NodeID
	found := false
	rts[4].FindInstance("p2p-chat", func(p simnet.NodeID, ok bool) { peer, found = p, ok })
	nw.Run(nw.Now() + time.Minute)
	if !found || peer != rts[2].Node().ID() {
		t.Fatalf("discovery: found=%v peer=%v", found, peer)
	}
	var reply []byte
	rts[4].OnMessage(func(from simnet.NodeID, payload []byte) { reply = payload })
	rts[2].OnMessage(func(from simnet.NodeID, payload []byte) {
		rts[2].SendTo(from, append([]byte("echo: "), payload...))
	})
	rts[4].SendTo(peer, []byte("ping"))
	nw.Run(nw.Now() + time.Minute)
	if string(reply) != "echo: ping" {
		t.Fatalf("reply = %q", reply)
	}
	// Unknown app discovery misses.
	found = true
	rts[4].FindInstance("no-such-app", func(p simnet.NodeID, ok bool) { found = ok })
	nw.Run(nw.Now() + time.Minute)
	if found {
		t.Error("ghost app discovered")
	}
}
