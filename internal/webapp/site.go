// Package webapp implements the hostless web architecture of the paper's
// §3.4 (ZeroNet, Beaker, freedom.js): websites are signed, versioned,
// content-addressed bundles published under the author's public key. There
// is no origin server — a site's address is its author's key fingerprint
// ("the public key is the new site address which can be looked up on
// trackers or DHTs"), manifests are resolved through the Kademlia DHT,
// file blobs are fetched from whoever seeds them, and every visitor who
// fetches a site becomes a seeder. Updates are newer signed manifests;
// forking and merging (Beaker's Git-inspired openness) create and absorb
// derived sites.
package webapp

import (
	"crypto/ed25519"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/cryptoutil"
)

// FileEntry names one file in a site bundle.
type FileEntry struct {
	Path string          `json:"path"`
	ID   cryptoutil.Hash `json:"id"`
	Size int             `json:"size"`
}

// Manifest is the signed root of a site version. Address = fingerprint of
// OwnerPub; every file is referenced by content address, so any seeder can
// serve blobs without being trusted.
type Manifest struct {
	Site     cryptoutil.Hash   `json:"site"`
	OwnerPub ed25519.PublicKey `json:"owner_pub"`
	Version  uint64            `json:"version"`
	Files    []FileEntry       `json:"files"`
	// ForkOf records the site this one was forked from (zero if original).
	ForkOf cryptoutil.Hash `json:"fork_of,omitempty"`
	Sig    []byte          `json:"sig"`
}

func (m *Manifest) signingBytes() []byte {
	clone := *m
	clone.Sig = nil
	b, err := json.Marshal(&clone)
	if err != nil {
		panic("webapp: manifest marshal cannot fail: " + err.Error())
	}
	return b
}

// Encode serializes the manifest (e.g. for DHT storage).
func (m *Manifest) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("webapp: manifest marshal cannot fail: " + err.Error())
	}
	return b
}

// DecodeManifest parses manifest bytes.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("webapp: decode manifest: %w", err)
	}
	return &m, nil
}

// Verify checks the owner binding and signature. Every visitor runs this
// before trusting a manifest — "every file of and update about the web
// application can be securely verified by verifying the corresponding
// signature."
func (m *Manifest) Verify() bool {
	if cryptoutil.PublicFingerprint(m.OwnerPub) != m.Site {
		return false
	}
	return cryptoutil.Verify(m.OwnerPub, m.signingBytes(), m.Sig)
}

// File returns the entry for a path.
func (m *Manifest) File(path string) (FileEntry, bool) {
	for _, f := range m.Files {
		if f.Path == path {
			return f, true
		}
	}
	return FileEntry{}, false
}

// TotalSize returns the bundle's payload size in bytes.
func (m *Manifest) TotalSize() int {
	total := 0
	for _, f := range m.Files {
		total += f.Size
	}
	return total
}

// SignManifest builds and signs a manifest over the given files, returning
// it together with the content-addressed blob map.
func SignManifest(owner *cryptoutil.KeyPair, version uint64, files map[string][]byte, forkOf cryptoutil.Hash) (*Manifest, map[cryptoutil.Hash][]byte) {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	m := &Manifest{
		Site:     owner.Fingerprint(),
		OwnerPub: owner.Public,
		Version:  version,
		ForkOf:   forkOf,
	}
	blobs := map[cryptoutil.Hash][]byte{}
	for _, p := range paths {
		data := files[p]
		id := cryptoutil.SumHash(data)
		m.Files = append(m.Files, FileEntry{Path: p, ID: id, Size: len(data)})
		blobs[id] = data
	}
	m.Sig = owner.Sign(m.signingBytes())
	return m, blobs
}

// manifestKey is the DHT key a site's current manifest lives under.
func manifestKey(site cryptoutil.Hash) cryptoutil.Hash {
	return cryptoutil.SumHashes([]byte("webapp-manifest"), site[:])
}
