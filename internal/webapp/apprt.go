package webapp

import (
	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/simnet"
)

// AppRuntime is the freedom.js model of §3.4: "a web application,
// including its back-end logic, runs entirely in a web browser. Three
// types of APIs, the identity, storage, and transport, are provided to
// application developers." Here the browser is a simulated node, and the
// three APIs are backed by this repository's substrates:
//
//   - Identity: a pluggable resolver (typically a naming.Index replica)
//     mapping human names to key fingerprints;
//   - Storage: the Kademlia DHT ("a reliable DHT can be selected to store
//     data globally");
//   - Transport: direct peer-to-peer datagrams between app instances
//     (standing in for WebRTC data channels).
type AppRuntime struct {
	node    *simnet.Node
	dht     *dht.Peer
	resolve func(name string) (cryptoutil.Hash, bool)
	onMsg   []func(from simnet.NodeID, payload []byte)
	// MessagesReceived counts transport deliveries.
	MessagesReceived int
}

const msgAppTransport = "webapp.app.transport"

type appDatagram struct {
	Payload []byte
}

// NewAppRuntime wires the three freedom.js APIs onto a node. resolver may
// be nil, in which case identity lookups always miss.
func NewAppRuntime(node *simnet.Node, d *dht.Peer, resolver func(string) (cryptoutil.Hash, bool)) *AppRuntime {
	rt := &AppRuntime{node: node, dht: d, resolve: resolver}
	node.Handle(msgAppTransport, func(msg simnet.Message) {
		dg, ok := msg.Payload.(appDatagram)
		if !ok {
			return
		}
		rt.MessagesReceived++
		for _, f := range rt.onMsg {
			f(msg.From, dg.Payload)
		}
	})
	return rt
}

// Node returns the runtime's simulated browser node.
func (rt *AppRuntime) Node() *simnet.Node { return rt.node }

// DHT returns the runtime's DHT participant (for bootstrapping).
func (rt *AppRuntime) DHT() *dht.Peer { return rt.dht }

// LookupIdentity is the identity API: resolve a human-meaningful name to a
// key fingerprint.
func (rt *AppRuntime) LookupIdentity(name string) (cryptoutil.Hash, bool) {
	if rt.resolve == nil {
		return cryptoutil.Hash{}, false
	}
	return rt.resolve(name)
}

// StorePut is the storage API's write: value goes into the global DHT
// under an application key. done (optional) receives the replica count.
func (rt *AppRuntime) StorePut(key string, value []byte, done func(stored int)) {
	rt.dht.Put(appStorageKey(key), value, done)
}

// StoreGet is the storage API's read.
func (rt *AppRuntime) StoreGet(key string, done func(value []byte, ok bool)) {
	rt.dht.Get(appStorageKey(key), done)
}

func appStorageKey(key string) cryptoutil.Hash {
	return cryptoutil.SumHashes([]byte("freedomjs-app-store"), []byte(key))
}

// SendTo is the transport API: a direct datagram to another app instance
// (its node ID typically comes from a DHT rendezvous or an identity
// lookup).
func (rt *AppRuntime) SendTo(peer simnet.NodeID, payload []byte) bool {
	return rt.node.Send(peer, msgAppTransport, appDatagram{Payload: payload}, len(payload)+24)
}

// OnMessage registers a transport delivery handler.
func (rt *AppRuntime) OnMessage(f func(from simnet.NodeID, payload []byte)) {
	rt.onMsg = append(rt.onMsg, f)
}

// Rendezvous publishes this instance's node address under a shared app
// key so other instances can find it — the discovery step freedom.js
// leaves to a DHT. done is optional.
func (rt *AppRuntime) Rendezvous(app string, done func()) {
	var addr [8]byte
	id := uint64(rt.node.ID())
	for i := 0; i < 8; i++ {
		addr[i] = byte(id >> (8 * i))
	}
	rt.dht.Put(rendezvousKey(app, rt.node.ID()), addr[:], func(int) {
		// Also maintain a well-known "latest instance" pointer.
		rt.dht.Put(rendezvousKey(app, -1), addr[:], func(int) {
			if done != nil {
				done()
			}
		})
	})
}

// FindInstance looks up the most recently rendezvoused instance of app.
func (rt *AppRuntime) FindInstance(app string, done func(peer simnet.NodeID, ok bool)) {
	rt.dht.Get(rendezvousKey(app, -1), func(value []byte, ok bool) {
		if !ok || len(value) != 8 {
			done(0, false)
			return
		}
		var id uint64
		for i := 0; i < 8; i++ {
			id |= uint64(value[i]) << (8 * i)
		}
		done(simnet.NodeID(id), true)
	})
}

func rendezvousKey(app string, node simnet.NodeID) cryptoutil.Hash {
	var b [8]byte
	id := uint64(node)
	for i := 0; i < 8; i++ {
		b[i] = byte(id >> (8 * i))
	}
	return cryptoutil.SumHashes([]byte("freedomjs-rendezvous"), []byte(app), b[:])
}
