package cryptoutil

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseHash: ParseHash must never panic, must reject everything that
// is not 64 hex characters, and must round-trip through Hash.String.
func FuzzParseHash(f *testing.F) {
	f.Add(strings.Repeat("0", 64))
	f.Add(strings.Repeat("Ff", 32))
	f.Add("deadbeef")
	f.Add("zz")
	f.Fuzz(func(t *testing.T, s string) {
		h, err := ParseHash(s)
		if err != nil {
			return
		}
		if len(s) != 64 {
			t.Fatalf("accepted %d-character input %q", len(s), s)
		}
		again, err := ParseHash(h.String())
		if err != nil || again != h {
			t.Fatalf("String/Parse round-trip broke: %v", err)
		}
	})
}

// FuzzParseDHPublic: ParseDHPublic must never panic and every accepted
// key must re-encode to the exact input bytes.
func FuzzParseDHPublic(f *testing.F) {
	f.Add(make([]byte, 32))
	f.Add([]byte{9})
	seed := make([]byte, 32)
	for i := range seed {
		seed[i] = byte(i + 1)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, b []byte) {
		pub, err := ParseDHPublic(b)
		if err != nil {
			return
		}
		if !bytes.Equal(pub.Bytes(), b) {
			t.Fatalf("accepted key re-encodes differently")
		}
	})
}

// FuzzSealOpen: the AEAD round-trip must hold for any key material and
// plaintext, a single flipped ciphertext bit must be rejected, and Open
// must never panic on raw garbage.
func FuzzSealOpen(f *testing.F) {
	f.Add([]byte("ikm"), []byte("nonce"), []byte("plaintext"), []byte("ad"), uint8(0))
	f.Add([]byte{}, []byte{}, []byte{}, []byte{}, uint8(255))
	f.Fuzz(func(t *testing.T, ikm, nonce, pt, ad []byte, flip uint8) {
		// Garbage in: no panic required, error expected for bad key sizes.
		_, _ = Open(ikm, nonce, pt, ad)

		key := HKDF(ikm, nil, []byte("fuzz-seal"), 32)
		ct, err := Seal(key, nonce, pt, ad)
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		got, err := Open(key, nonce, ct, ad)
		if err != nil || !bytes.Equal(got, pt) {
			t.Fatalf("round-trip failed: %v", err)
		}
		mut := append([]byte(nil), ct...)
		mut[int(flip)%len(mut)] ^= 1 << (flip % 8)
		if _, err := Open(key, nonce, mut, ad); err == nil {
			t.Fatal("tampered ciphertext opened cleanly")
		}
	})
}

// FuzzMerkleProveVerify: inclusion proofs built from fuzzed leaf sets must
// verify for the right leaf and must fail for tampered leaf data.
func FuzzMerkleProveVerify(f *testing.F) {
	f.Add([]byte("abcdefgh"), uint8(3), uint8(1))
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, uint8(15), uint8(9))
	f.Fuzz(func(t *testing.T, blob []byte, nRaw, idxRaw uint8) {
		n := 1 + int(nRaw)%16
		leaves := make([][]byte, n)
		for i := range leaves {
			lo := i * len(blob) / n
			hi := (i + 1) * len(blob) / n
			leaves[i] = blob[lo:hi]
		}
		tree, err := NewMerkleTree(leaves)
		if err != nil {
			t.Fatalf("NewMerkleTree(%d leaves): %v", n, err)
		}
		i := int(idxRaw) % n
		proof, err := tree.Prove(i)
		if err != nil {
			t.Fatalf("Prove(%d): %v", i, err)
		}
		if !VerifyProof(tree.Root(), leaves[i], proof) {
			t.Fatalf("valid proof for leaf %d/%d rejected", i, n)
		}
		tampered := append(append([]byte(nil), leaves[i]...), 'x')
		if VerifyProof(tree.Root(), tampered, proof) {
			t.Fatalf("tampered leaf %d/%d verified", i, n)
		}
		if VerifyProof(tree.Root(), leaves[i], nil) {
			t.Fatal("nil proof verified")
		}
	})
}
