package cryptoutil

import (
	"errors"
	"fmt"
)

// Domain-separation prefixes prevent a leaf hash from being replayed as an
// interior node (the classic CVE-2012-2459-style Merkle ambiguity).
var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

// MerkleTree is a binary hash tree over an ordered list of leaves. Odd
// nodes at each level are promoted unchanged (no duplication), which keeps
// proofs unambiguous for any leaf count.
type MerkleTree struct {
	levels [][]Hash // levels[0] = leaf hashes, last level has one root
}

// LeafHash computes the domain-separated hash of a leaf's content.
func LeafHash(data []byte) Hash { return SumHashes(leafPrefix, data) }

func interiorHash(l, r Hash) Hash { return SumHashes(nodePrefix, l[:], r[:]) }

// NewMerkleTree builds a tree over the given leaf contents. It returns an
// error for an empty leaf set, which has no defined root.
func NewMerkleTree(leaves [][]byte) (*MerkleTree, error) {
	if len(leaves) == 0 {
		return nil, errors.New("cryptoutil: merkle tree needs at least one leaf")
	}
	level := make([]Hash, len(leaves))
	for i, leaf := range leaves {
		level[i] = LeafHash(leaf)
	}
	t := &MerkleTree{levels: [][]Hash{level}}
	for len(level) > 1 {
		next := make([]Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, interiorHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // promote odd node
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// Root returns the tree's root hash.
func (t *MerkleTree) Root() Hash { return t.levels[len(t.levels)-1][0] }

// NumLeaves returns the number of leaves the tree was built over.
func (t *MerkleTree) NumLeaves() int { return len(t.levels[0]) }

// ProofStep is one sibling hash in an inclusion proof; Left records whether
// the sibling sits to the left of the running hash.
type ProofStep struct {
	Sibling Hash
	Left    bool
}

// MerkleProof is an inclusion proof for one leaf.
type MerkleProof struct {
	LeafIndex int
	Steps     []ProofStep
}

// Prove builds the inclusion proof for leaf index i.
func (t *MerkleTree) Prove(i int) (*MerkleProof, error) {
	if i < 0 || i >= t.NumLeaves() {
		return nil, fmt.Errorf("cryptoutil: merkle prove: index %d out of range [0,%d)", i, t.NumLeaves())
	}
	proof := &MerkleProof{LeafIndex: i}
	idx := i
	for lvl := 0; lvl < len(t.levels)-1; lvl++ {
		level := t.levels[lvl]
		var sib int
		if idx%2 == 0 {
			sib = idx + 1
		} else {
			sib = idx - 1
		}
		if sib < len(level) {
			proof.Steps = append(proof.Steps, ProofStep{Sibling: level[sib], Left: sib < idx})
		}
		// With odd-node promotion, a node with no sibling moves up unchanged,
		// so the proof simply skips that level.
		idx /= 2
	}
	return proof, nil
}

// VerifyProof checks that leafData at the proof's position hashes up to
// root.
func VerifyProof(root Hash, leafData []byte, proof *MerkleProof) bool {
	if proof == nil {
		return false
	}
	h := LeafHash(leafData)
	for _, step := range proof.Steps {
		if step.Left {
			h = interiorHash(step.Sibling, h)
		} else {
			h = interiorHash(h, step.Sibling)
		}
	}
	return h == root
}

// MerkleRoot is a convenience that builds a tree and returns only its root.
// An empty input returns the zero hash.
func MerkleRoot(leaves [][]byte) Hash {
	if len(leaves) == 0 {
		return Hash{}
	}
	t, err := NewMerkleTree(leaves)
	if err != nil {
		return Hash{}
	}
	return t.Root()
}
