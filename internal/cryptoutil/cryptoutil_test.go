package cryptoutil

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

func TestHashRoundTrip(t *testing.T) {
	h := SumHash([]byte("hello"))
	parsed, err := ParseHash(h.String())
	if err != nil {
		t.Fatalf("ParseHash: %v", err)
	}
	if parsed != h {
		t.Error("parsed hash differs from original")
	}
	if len(h.Short()) != 8 {
		t.Errorf("Short() = %q, want 8 hex chars", h.Short())
	}
}

func TestParseHashErrors(t *testing.T) {
	if _, err := ParseHash("zz"); err == nil {
		t.Error("want error for non-hex input")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Error("want error for short input")
	}
}

func TestSumHashesMatchesConcat(t *testing.T) {
	a, b := []byte("foo"), []byte("bar")
	if SumHashes(a, b) != SumHash(append(append([]byte{}, a...), b...)) {
		t.Error("SumHashes differs from hashing the concatenation")
	}
}

func TestIsZero(t *testing.T) {
	var z Hash
	if !z.IsZero() {
		t.Error("zero hash should report IsZero")
	}
	if SumHash(nil).IsZero() {
		t.Error("sha256 of empty input is not the zero hash")
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox")
	sig := kp.Sign(msg)
	if !Verify(kp.Public, msg, sig) {
		t.Error("valid signature rejected")
	}
	if Verify(kp.Public, []byte("tampered"), sig) {
		t.Error("signature over different message accepted")
	}
	other, _ := GenerateKeyPair(rand.Reader)
	if Verify(other.Public, msg, sig) {
		t.Error("signature accepted under wrong key")
	}
	if Verify(kp.Public[:10], msg, sig) {
		t.Error("truncated public key should verify false, not panic")
	}
}

func TestFingerprintStable(t *testing.T) {
	kp, _ := GenerateKeyPair(rand.Reader)
	if kp.Fingerprint() != PublicFingerprint(kp.Public) {
		t.Error("fingerprint mismatch between pair and bare public key")
	}
}

func TestDHSharedSecretAgreement(t *testing.T) {
	alice, err := GenerateDHKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := GenerateDHKeyPair(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := alice.SharedSecret(bob.Public)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := bob.SharedSecret(alice.Public)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Error("X25519 shared secrets disagree")
	}
	reparsed, err := ParseDHPublic(alice.Public.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	s3, err := bob.SharedSecret(reparsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s3) {
		t.Error("re-parsed public key yields different secret")
	}
}

func TestParseDHPublicError(t *testing.T) {
	if _, err := ParseDHPublic([]byte{1, 2, 3}); err == nil {
		t.Error("want error for malformed X25519 public key")
	}
}

func TestHKDFDeterministicAndDistinct(t *testing.T) {
	ikm := []byte("input keying material")
	a := HKDF(ikm, []byte("salt"), []byte("ctx"), 64)
	b := HKDF(ikm, []byte("salt"), []byte("ctx"), 64)
	if !bytes.Equal(a, b) {
		t.Error("HKDF not deterministic")
	}
	c := HKDF(ikm, []byte("salt"), []byte("other"), 64)
	if bytes.Equal(a, c) {
		t.Error("different info should give different output")
	}
	d := HKDF(ikm, nil, []byte("ctx"), 64)
	if bytes.Equal(a, d) {
		t.Error("nil salt should differ from explicit salt")
	}
	if len(HKDF(ikm, nil, nil, 100)) != 100 {
		t.Error("wrong output length")
	}
}

// TestHKDFRFC5869Vector checks test case 1 from RFC 5869 appendix A.
func TestHKDFRFC5869Vector(t *testing.T) {
	ikm := bytes.Repeat([]byte{0x0b}, 22)
	salt := []byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c}
	info := []byte{0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9}
	want := "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
	got := HKDF(ikm, salt, info, 42)
	if fmt.Sprintf("%x", got) != want {
		t.Errorf("HKDF RFC 5869 vector mismatch:\n got %x\nwant %s", got, want)
	}
}

func TestHKDFInvalidLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-length HKDF should panic")
		}
	}()
	HKDF([]byte("x"), nil, nil, 0)
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := HKDF([]byte("secret"), nil, nil, 32)
	nonce := []byte{1, 2, 3}
	pt := []byte("attack at dawn")
	ad := []byte("header")
	ct, err := Seal(key, nonce, pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, nonce, ct, ad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Error("round trip mismatch")
	}
	if _, err := Open(key, nonce, ct, []byte("wrong ad")); err == nil {
		t.Error("tampered AD accepted")
	}
	ct[0] ^= 0xff
	if _, err := Open(key, nonce, ct, ad); err == nil {
		t.Error("tampered ciphertext accepted")
	}
}

func TestSealRejectsBadKey(t *testing.T) {
	if _, err := Seal([]byte("short"), nil, []byte("x"), nil); err == nil {
		t.Error("want error for non-32-byte key")
	}
	if _, err := Open([]byte("short"), nil, []byte("x"), nil); err == nil {
		t.Error("want error for non-32-byte key")
	}
}

func TestMerkleTreeKnownStructure(t *testing.T) {
	leaves := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	tree, err := NewMerkleTree(leaves)
	if err != nil {
		t.Fatal(err)
	}
	// [a b c] -> [H(ab) c'] -> [H(H(ab), c')] with c promoted unchanged.
	la, lb, lc := LeafHash(leaves[0]), LeafHash(leaves[1]), LeafHash(leaves[2])
	want := interiorHash(interiorHash(la, lb), lc)
	if tree.Root() != want {
		t.Error("root does not match hand-computed structure")
	}
	if tree.NumLeaves() != 3 {
		t.Errorf("NumLeaves = %d, want 3", tree.NumLeaves())
	}
}

func TestMerkleEmptyError(t *testing.T) {
	if _, err := NewMerkleTree(nil); err == nil {
		t.Error("want error for empty leaf set")
	}
	if !MerkleRoot(nil).IsZero() {
		t.Error("MerkleRoot of empty input should be zero hash")
	}
}

func TestMerkleSingleLeaf(t *testing.T) {
	tree, err := NewMerkleTree([][]byte{[]byte("solo")})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root() != LeafHash([]byte("solo")) {
		t.Error("single-leaf root should be the leaf hash")
	}
	proof, err := tree.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyProof(tree.Root(), []byte("solo"), proof) {
		t.Error("single-leaf proof rejected")
	}
}

func TestMerkleProofsAllLeavesVariousSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100} {
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = []byte(fmt.Sprintf("leaf-%d", i))
		}
		tree, err := NewMerkleTree(leaves)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			proof, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !VerifyProof(tree.Root(), leaves[i], proof) {
				t.Errorf("n=%d: valid proof for leaf %d rejected", n, i)
			}
			if VerifyProof(tree.Root(), []byte("forged"), proof) {
				t.Errorf("n=%d: forged leaf accepted at %d", n, i)
			}
		}
	}
}

func TestMerkleProveOutOfRange(t *testing.T) {
	tree, _ := NewMerkleTree([][]byte{[]byte("a")})
	if _, err := tree.Prove(1); err == nil {
		t.Error("want error for out-of-range index")
	}
	if _, err := tree.Prove(-1); err == nil {
		t.Error("want error for negative index")
	}
}

func TestVerifyProofNil(t *testing.T) {
	if VerifyProof(Hash{}, []byte("x"), nil) {
		t.Error("nil proof must not verify")
	}
}

func TestMerkleLeafInteriorDomainSeparation(t *testing.T) {
	// A two-leaf tree's root must not equal the leaf hash of the
	// concatenated interior encoding — the prefixes must differ.
	l, r := LeafHash([]byte("a")), LeafHash([]byte("b"))
	root := interiorHash(l, r)
	asLeaf := LeafHash(append(append([]byte{}, l[:]...), r[:]...))
	if root == asLeaf {
		t.Error("interior and leaf hashing are not domain separated")
	}
}

// Property: every leaf of a randomly sized tree proves against the root,
// and proofs do not verify against a different root.
func TestMerkleProofProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := mrand.New(mrand.NewSource(seed))
		n := 1 + rng.Intn(40)
		leaves := make([][]byte, n)
		for i := range leaves {
			leaves[i] = make([]byte, 1+rng.Intn(32))
			rng.Read(leaves[i])
		}
		tree, err := NewMerkleTree(leaves)
		if err != nil {
			return false
		}
		i := rng.Intn(n)
		proof, err := tree.Prove(i)
		if err != nil {
			return false
		}
		if !VerifyProof(tree.Root(), leaves[i], proof) {
			return false
		}
		var wrong Hash
		rng.Read(wrong[:])
		return !VerifyProof(wrong, leaves[i], proof)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: HKDF output length is always exactly as requested for lengths
// in (0, 8160].
func TestHKDFLengthProperty(t *testing.T) {
	f := func(ikm []byte, n uint16) bool {
		length := int(n)%1024 + 1
		return len(HKDF(ikm, nil, nil, length)) == length
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMerkleBuild1k(b *testing.B) {
	leaves := make([][]byte, 1024)
	for i := range leaves {
		leaves[i] = big.NewInt(int64(i)).Bytes()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewMerkleTree(leaves); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHKDF(b *testing.B) {
	ikm := []byte("benchmark input keying material")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HKDF(ikm, nil, []byte("bench"), 64)
	}
}
