package cryptoutil

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
)

// HKDF derives length bytes of key material from the input keying material
// ikm, an optional salt, and a context info string, following RFC 5869 with
// HMAC-SHA256. It is hand-implemented because golang.org/x/crypto is
// unavailable in this offline, stdlib-only build.
func HKDF(ikm, salt, info []byte, length int) []byte {
	if length <= 0 || length > 255*sha256.Size {
		panic("cryptoutil: invalid HKDF output length")
	}
	// Extract
	if salt == nil {
		salt = make([]byte, sha256.Size)
	}
	ext := hmac.New(sha256.New, salt)
	ext.Write(ikm)
	prk := ext.Sum(nil)
	// Expand
	out := make([]byte, 0, length)
	var t []byte
	for counter := byte(1); len(out) < length; counter++ {
		exp := hmac.New(sha256.New, prk)
		exp.Write(t)
		exp.Write(info)
		exp.Write([]byte{counter})
		t = exp.Sum(nil)
		out = append(out, t...)
	}
	return out[:length]
}

// HMAC256 computes HMAC-SHA256 of msg under key.
func HMAC256(key, msg []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(msg)
	return m.Sum(nil)
}

// Seal encrypts plaintext with AES-256-GCM under a 32-byte key, binding the
// additional data ad. The nonce must be unique per (key, message); ratchet
// protocols derive a fresh key per message and may pass a zero nonce.
func Seal(key, nonce, plaintext, ad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	n := make([]byte, aead.NonceSize())
	copy(n, nonce)
	return aead.Seal(nil, n, plaintext, ad), nil
}

// Open decrypts a Seal-produced ciphertext, authenticating ad.
func Open(key, nonce, ciphertext, ad []byte) ([]byte, error) {
	aead, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	n := make([]byte, aead.NonceSize())
	copy(n, nonce)
	pt, err := aead.Open(nil, n, ciphertext, ad)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: open: %w", err)
	}
	return pt, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("cryptoutil: AES-256 key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: aes: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: gcm: %w", err)
	}
	return aead, nil
}
