// Package cryptoutil provides the cryptographic building blocks shared by
// every subsystem in this repository: ed25519 signing identities, X25519
// Diffie-Hellman agreement, an HMAC-SHA256-based HKDF, AES-GCM authenticated
// encryption, and Merkle trees with logarithmic inclusion proofs.
//
// Everything here is built from the Go standard library only. The package
// deliberately exposes small, composable primitives rather than protocol
// logic; protocols (double ratchet, proof-of-storage challenges, chain
// validation) live in their own packages.
package cryptoutil

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// Hash is a SHA-256 digest, the canonical content address and identifier
// format throughout the repository.
type Hash [32]byte

// SumHash returns the SHA-256 digest of data.
func SumHash(data []byte) Hash { return sha256.Sum256(data) }

// SumHashes hashes the concatenation of several byte slices without
// building an intermediate buffer.
func SumHashes(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short returns the first 8 hex characters, for logs and tables.
func (h Hash) Short() string { return hex.EncodeToString(h[:4]) }

// IsZero reports whether the hash is all zero bytes.
func (h Hash) IsZero() bool { return h == Hash{} }

// ParseHash decodes a 64-character hex string into a Hash.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("cryptoutil: parse hash: %w", err)
	}
	if len(b) != len(h) {
		return h, fmt.Errorf("cryptoutil: parse hash: got %d bytes, want %d", len(b), len(h))
	}
	copy(h[:], b)
	return h, nil
}

// KeyPair is an ed25519 signing identity. The public key doubles as a node
// or user identifier across the naming, storage, and communication layers.
type KeyPair struct {
	Public  ed25519.PublicKey
	Private ed25519.PrivateKey
}

// GenerateKeyPair creates a new ed25519 key pair from the given entropy
// source (pass a seeded deterministic reader in simulations, or
// crypto/rand.Reader for real entropy).
func GenerateKeyPair(rand io.Reader) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: generate key: %w", err)
	}
	return &KeyPair{Public: pub, Private: priv}, nil
}

// Sign signs msg with the private key.
func (kp *KeyPair) Sign(msg []byte) []byte { return ed25519.Sign(kp.Private, msg) }

// Verify reports whether sig is a valid signature of msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// Fingerprint returns the SHA-256 digest of the public key; it is the
// stable identifier for the key holder.
func (kp *KeyPair) Fingerprint() Hash { return SumHash(kp.Public) }

// PublicFingerprint returns the identifier for a bare public key.
func PublicFingerprint(pub ed25519.PublicKey) Hash { return SumHash(pub) }

// DHKeyPair is an X25519 key agreement pair used by the double ratchet and
// any other protocol needing ephemeral shared secrets.
type DHKeyPair struct {
	Public  *ecdh.PublicKey
	Private *ecdh.PrivateKey
}

// GenerateDHKeyPair creates a new X25519 pair from rand.
func GenerateDHKeyPair(rand io.Reader) (*DHKeyPair, error) {
	priv, err := ecdh.X25519().GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: generate dh key: %w", err)
	}
	return &DHKeyPair{Public: priv.PublicKey(), Private: priv}, nil
}

// SharedSecret computes the X25519 shared secret with the peer's public key.
func (d *DHKeyPair) SharedSecret(peer *ecdh.PublicKey) ([]byte, error) {
	s, err := d.Private.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: ecdh: %w", err)
	}
	return s, nil
}

// ParseDHPublic rebuilds an X25519 public key from its 32-byte encoding.
func ParseDHPublic(b []byte) (*ecdh.PublicKey, error) {
	pub, err := ecdh.X25519().NewPublicKey(b)
	if err != nil {
		return nil, fmt.Errorf("cryptoutil: parse dh public: %w", err)
	}
	return pub, nil
}
