package groupcomm

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/gossip"
	"repro/internal/simnet"
)

func TestModerationPolicy(t *testing.T) {
	p := &ModerationPolicy{
		BannedWords: []string{"spam"},
		BannedUsers: map[UserID]bool{"troll": true},
	}
	ok := NewPost("r", "alice", []byte("hello"), 0)
	if !p.Allows(ok) {
		t.Error("benign post blocked")
	}
	if p.Allows(NewPost("r", "alice", []byte("buy SPAM now"), 0)) {
		t.Error("banned word passed (case-insensitivity broken)")
	}
	if p.Allows(NewPost("r", "troll", []byte("hello"), 0)) {
		t.Error("banned user passed")
	}
	var nilPolicy *ModerationPolicy
	if !nilPolicy.Allows(ok) {
		t.Error("nil policy should allow everything")
	}
}

func TestPostIDsUnique(t *testing.T) {
	a := NewPost("r", "u", []byte("x"), 1)
	b := NewPost("r", "u", []byte("x"), 2)
	if a.ID == b.ID {
		t.Error("posts at different times should have different IDs")
	}
	if a.WireSize() <= 0 {
		t.Error("wire size")
	}
}

func TestExposuresOrdering(t *testing.T) {
	exp := Exposures()
	if len(exp) != 4 {
		t.Fatalf("models = %d", len(exp))
	}
	byModel := map[string]MetadataExposure{}
	for _, e := range exp {
		byModel[e.Model] = e
		if e.Note == "" {
			t.Errorf("%s missing note", e.Model)
		}
	}
	if byModel["centralized"].ObserverCount(10) != 1 {
		t.Error("centralized should expose to exactly the platform")
	}
	if byModel["federated-home"].ObserverCount(10) != 2 {
		t.Error("federated-home should expose to both instances")
	}
	if byModel["federated-replicated"].ObserverCount(10) != 10 {
		t.Error("federated-replicated should expose to all participating servers")
	}
	if byModel["federated-replicated"].ObserverCount(0) != 1 {
		t.Error("degenerate server count should clamp to 1")
	}
	if byModel["social-p2p"].ObserverCount(10) != 0 {
		t.Error("social-p2p should expose to no operators")
	}
}

func TestCentralizedPostFetchModeration(t *testing.T) {
	nw := simnet.New(1)
	srv := NewCentralServer(nw.AddNode(), &ModerationPolicy{BannedWords: []string{"forbidden"}})
	alice := NewCentralClient(nw.AddNode(), srv.Node().ID(), "alice", time.Minute)
	bob := NewCentralClient(nw.AddNode(), srv.Node().ID(), "bob", time.Minute)

	var ok1, ok2 bool
	alice.Post("town-square", []byte("hello world"), func(ok bool) { ok1 = ok })
	alice.Post("town-square", []byte("forbidden words"), func(ok bool) { ok2 = ok })
	nw.RunAll()
	if !ok1 {
		t.Fatal("benign post rejected")
	}
	if ok2 {
		t.Fatal("moderated post accepted")
	}
	if srv.Moderated != 1 {
		t.Errorf("moderated = %d", srv.Moderated)
	}
	var posts []Post
	bob.Fetch("town-square", func(ps []Post, ok bool) { posts = ps })
	nw.RunAll()
	if len(posts) != 1 || posts[0].Author != "alice" {
		t.Fatalf("fetch got %d posts", len(posts))
	}
	if srv.RoomLen("town-square") != 1 {
		t.Error("server room length")
	}
}

func TestCentralizedTotalOutage(t *testing.T) {
	nw := simnet.New(2)
	srv := NewCentralServer(nw.AddNode(), nil)
	alice := NewCentralClient(nw.AddNode(), srv.Node().ID(), "alice", 5*time.Second)
	srv.Node().Crash()
	posted, fetched := true, true
	alice.Post("r", []byte("x"), func(ok bool) { posted = ok })
	alice.Fetch("r", func(ps []Post, ok bool) { fetched = ok })
	nw.RunAll()
	if posted || fetched {
		t.Error("centralized platform should be completely unavailable when down")
	}
}

// fedWorld builds n federated-home instances, each with one user
// ("user<i>"), fully peered, everyone following everyone.
func fedWorld(t testing.TB, seed int64, n int) (*simnet.Network, []*FedInstance, []*FedClient) {
	t.Helper()
	nw := simnet.New(seed)
	insts := make([]*FedInstance, n)
	for i := range insts {
		insts[i] = NewFedInstance(nw.AddNode(), instName(i), nil)
	}
	for i, a := range insts {
		for j, b := range insts {
			if i != j {
				a.AddPeer(b.Name(), b.Node().ID())
			}
		}
	}
	clients := make([]*FedClient, n)
	for i := range clients {
		u := userName(i)
		insts[i].AddUser(u)
		clients[i] = NewFedClient(nw.AddNode(), insts[i].Node().ID(), u, 10*time.Second)
	}
	for i, inst := range insts {
		for j := range insts {
			if i != j {
				inst.Follow(userName(i), userName(j), instName(j))
			}
		}
		// Users see their own posts, too.
		inst.Follow(userName(i), userName(i), instName(i))
	}
	nw.RunAll() // settle follow subscriptions
	return nw, insts, clients
}

func instName(i int) string { return "inst" + string(rune('A'+i)) }
func userName(i int) UserID { return UserID("user" + string(rune('A'+i))) }

func TestFederatedHomeDelivery(t *testing.T) {
	nw, _, clients := fedWorld(t, 3, 3)
	var posted bool
	clients[0].Post("town", []byte("hello fediverse"), func(ok bool) { posted = ok })
	nw.RunAll()
	if !posted {
		t.Fatal("post rejected")
	}
	for i, c := range clients {
		var got []Post
		okRead := false
		c.Read(func(ps []Post, ok bool) { got, okRead = ps, ok })
		nw.RunAll()
		if !okRead {
			t.Fatalf("reader %d could not read", i)
		}
		found := false
		for _, p := range got {
			if p.Author == "userA" {
				found = true
			}
		}
		if !found {
			t.Errorf("reader %d missed the federated post", i)
		}
	}
}

func TestFederatedHomeInstanceDeathLosesReaders(t *testing.T) {
	nw, insts, clients := fedWorld(t, 4, 3)
	// Kill instance B: its user can neither post nor read.
	insts[1].Node().Crash()
	posted, read := true, true
	clients[1].Post("town", []byte("x"), func(ok bool) { posted = ok })
	clients[1].Read(func(ps []Post, ok bool) { read = ok })
	nw.RunAll()
	if posted || read {
		t.Error("user on dead instance should be fully cut off (OStatus bottleneck)")
	}
	// Users on other instances continue among themselves.
	var ok0 bool
	clients[0].Post("town", []byte("still here"), func(ok bool) { ok0 = ok })
	nw.RunAll()
	if !ok0 {
		t.Error("survivor could not post")
	}
	var cGot []Post
	clients[2].Read(func(ps []Post, ok bool) { cGot = ps })
	nw.RunAll()
	found := false
	for _, p := range cGot {
		if string(p.Body) == "still here" {
			found = true
		}
	}
	if !found {
		t.Error("survivor-to-survivor delivery failed")
	}
}

func TestFederatedHomeMissedPushNotRepaired(t *testing.T) {
	nw, insts, clients := fedWorld(t, 5, 2)
	// Reader's instance down during the push; it never recovers the post.
	insts[1].Node().Crash()
	clients[0].Post("town", []byte("missed"), func(bool) {})
	nw.RunAll()
	insts[1].Node().Restart()
	nw.Run(nw.Now() + time.Hour)
	var got []Post
	clients[1].Read(func(ps []Post, ok bool) { got = ps })
	nw.RunAll()
	for _, p := range got {
		if string(p.Body) == "missed" {
			t.Fatal("OStatus model unexpectedly repaired a missed push")
		}
	}
}

func TestFederatedHomeDefederationAndPolicy(t *testing.T) {
	nw, insts, clients := fedWorld(t, 6, 2)
	insts[1].Defederate(instName(0))
	clients[0].Post("town", []byte("blocked content"), func(bool) {})
	nw.RunAll()
	var got []Post
	clients[1].Read(func(ps []Post, ok bool) { got = ps })
	nw.RunAll()
	for _, p := range got {
		if p.Author == userName(0) {
			t.Fatal("defederated instance's post leaked through")
		}
	}

	// Per-instance word policy.
	nw2 := simnet.New(7)
	strict := NewFedInstance(nw2.AddNode(), "strict", &ModerationPolicy{BannedWords: []string{"rude"}})
	strict.AddUser("u")
	cl := NewFedClient(nw2.AddNode(), strict.Node().ID(), "u", time.Minute)
	var ok bool
	cl.Post("town", []byte("rude text"), func(o bool) { ok = o })
	nw2.RunAll()
	if ok || strict.Moderated != 1 {
		t.Error("instance policy did not moderate")
	}
}

// replWorld builds n Matrix-style servers in a gossip mesh with one client
// each.
func replWorld(t testing.TB, seed int64, n int) (*simnet.Network, []*ReplServer, []*ReplClient) {
	t.Helper()
	nw := simnet.New(seed)
	servers := make([]*ReplServer, n)
	ids := make([]simnet.NodeID, n)
	for i := range servers {
		servers[i] = NewReplServer(nw.AddNode(), "hs"+string(rune('A'+i)), nil,
			gossip.Config{Fanout: 3, AntiEntropyInterval: 30 * time.Second})
		ids[i] = servers[i].Node().ID()
	}
	for i, s := range servers {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		s.SetPeers(peers)
	}
	clients := make([]*ReplClient, n)
	for i := range clients {
		clients[i] = NewReplClient(nw.AddNode(), ids[i], ids, userName(i), 5*time.Second)
	}
	return nw, servers, clients
}

func TestReplicatedDeliveryEverywhere(t *testing.T) {
	nw, servers, clients := replWorld(t, 8, 5)
	var posted bool
	clients[0].Post("room", []byte("replicate me"), func(ok bool) { posted = ok })
	nw.Run(nw.Now() + 5*time.Minute)
	if !posted {
		t.Fatal("post failed")
	}
	for i, s := range servers {
		if s.RoomLen("room") != 1 {
			t.Errorf("server %d has %d posts, want 1", i, s.RoomLen("room"))
		}
	}
}

func TestReplicatedReadFailover(t *testing.T) {
	nw, servers, clients := replWorld(t, 9, 4)
	clients[0].Post("room", []byte("survives"), func(bool) {})
	nw.Run(nw.Now() + 5*time.Minute)
	// Kill the reader's home server; read must fail over.
	servers[1].Node().Crash()
	var got []Post
	okRead := false
	clients[1].Fetch("room", func(ps []Post, ok bool) { got, okRead = ps, ok })
	nw.Run(nw.Now() + time.Minute)
	if !okRead || len(got) != 1 {
		t.Errorf("failover read: ok=%v posts=%d", okRead, len(got))
	}
	// Posting through a dead home still fails (accounts are homed).
	var posted bool
	clients[1].Post("room", []byte("nope"), func(ok bool) { posted = ok })
	nw.Run(nw.Now() + time.Minute)
	if posted {
		t.Error("post through dead home server should fail")
	}
}

func TestReplicatedRepairAfterRestart(t *testing.T) {
	nw, servers, clients := replWorld(t, 10, 4)
	servers[3].Node().Crash()
	clients[0].Post("room", []byte("while you were out"), func(bool) {})
	nw.Run(nw.Now() + time.Minute)
	servers[3].Node().Restart()
	nw.Run(nw.Now() + 10*time.Minute) // anti-entropy repairs
	if servers[3].RoomLen("room") != 1 {
		t.Error("restarted server did not repair history (anti-entropy)")
	}
}

func TestSocialP2PFriendDelivery(t *testing.T) {
	nw := simnet.New(11)
	a := NewSocialPeer(nw.AddNode(), "alice", 0)
	b := NewSocialPeer(nw.AddNode(), "bob", 0)
	c := NewSocialPeer(nw.AddNode(), "carol", 0)
	// alice↔bob friends; carol is a stranger who somehow knows the address.
	a.Befriend("bob", b.Node().ID())
	b.Befriend("alice", a.Node().ID())
	c.Befriend("alice", a.Node().ID()) // carol considers alice a friend; not mutual

	post := a.Publish("wall", []byte("friends only"))
	nw.RunAll()
	if !b.Has(post.ID) {
		t.Error("friend did not receive post")
	}
	if c.Has(post.ID) {
		t.Error("non-friend received post")
	}
	if len(b.PostsBy("alice")) != 1 {
		t.Error("PostsBy wrong")
	}
	if a.NumFriends() != 1 || !a.IsFriend("bob") {
		t.Error("friend bookkeeping")
	}
}

func TestSocialP2PNonFriendRefused(t *testing.T) {
	nw := simnet.New(12)
	a := NewSocialPeer(nw.AddNode(), "alice", 0)
	m := NewSocialPeer(nw.AddNode(), "mallory", 0)
	// Mallory declares friendship unilaterally and pushes.
	m.Befriend("alice", a.Node().ID())
	post := m.Publish("wall", []byte("spam"))
	nw.RunAll()
	if a.Has(post.ID) {
		t.Error("unilateral 'friend' injected a post")
	}
	if a.RefusedNonFriend == 0 {
		t.Error("refusal not counted")
	}
}

func TestSocialP2PAntiEntropyBridgesDowntime(t *testing.T) {
	nw := simnet.New(13)
	a := NewSocialPeer(nw.AddNode(), "alice", 30*time.Second)
	b := NewSocialPeer(nw.AddNode(), "bob", 30*time.Second)
	c := NewSocialPeer(nw.AddNode(), "carol", 30*time.Second)
	// Triangle of mutual friends.
	a.Befriend("bob", b.Node().ID())
	a.Befriend("carol", c.Node().ID())
	b.Befriend("alice", a.Node().ID())
	b.Befriend("carol", c.Node().ID())
	c.Befriend("alice", a.Node().ID())
	c.Befriend("bob", b.Node().ID())

	// Carol is down during the push, alice goes down after, but bob stays
	// up and syncs the post to carol later.
	c.Node().Crash()
	post := a.Publish("wall", []byte("offline carol"))
	nw.Run(nw.Now() + time.Minute)
	a.Node().Crash()
	c.Node().Restart()
	nw.Run(nw.Now() + 10*time.Minute)
	if !c.Has(post.ID) {
		t.Error("anti-entropy via mutual friend failed")
	}
}

func TestSocialP2PNoOverlapNoDelivery(t *testing.T) {
	nw := simnet.New(14)
	a := NewSocialPeer(nw.AddNode(), "alice", 30*time.Second)
	b := NewSocialPeer(nw.AddNode(), "bob", 30*time.Second)
	a.Befriend("bob", b.Node().ID())
	b.Befriend("alice", a.Node().ID())
	b.Node().Crash()
	post := a.Publish("wall", []byte("ships in the night"))
	nw.Run(nw.Now() + time.Minute)
	a.Node().Crash()
	b.Node().Restart()
	nw.Run(nw.Now() + 10*time.Minute)
	if b.Has(post.ID) {
		t.Error("delivery without uptime overlap or common friend should fail — that's the availability cost")
	}
}

func TestSocialP2PEncryptedDM(t *testing.T) {
	nw := simnet.New(15)
	a := NewSocialPeer(nw.AddNode(), "alice", 0)
	b := NewSocialPeer(nw.AddNode(), "bob", 0)
	a.Befriend("bob", b.Node().ID())
	b.Befriend("alice", a.Node().ID())

	rng := rand.New(rand.NewSource(16))
	secret := cryptoutil.HKDF([]byte("a-b dm"), nil, nil, 32)
	bobDH, _ := cryptoutil.GenerateDHKeyPair(rng)
	ar, err := NewRatchetInitiator(rng, secret, bobDH.Public)
	if err != nil {
		t.Fatal(err)
	}
	a.SetSession("bob", ar)
	b.SetSession("alice", NewRatchetResponder(rng, secret, bobDH))

	if !a.SendDM("bob", []byte("secret plan")) {
		t.Fatal("send failed")
	}
	nw.RunAll()
	inbox := b.Inbox()
	if len(inbox) != 1 || string(inbox[0].Body) != "secret plan" {
		t.Fatalf("inbox = %v", inbox)
	}
	// No session / no friendship cases.
	if a.SendDM("carol", []byte("x")) {
		t.Error("DM to stranger should fail")
	}
}
