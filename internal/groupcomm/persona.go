package groupcomm

import (
	"crypto/ecdh"
	"errors"
	"fmt"
	"io"

	"repro/internal/cryptoutil"
)

// Persona-style attribute groups (§3.2: Persona lets "users define access
// levels, i.e., some users (trusted nodes or 'friends') are allowed to
// access private data while others only have access to public data").
// The owner mints a symmetric group key per access level ("friends",
// "family", "coworkers"), wraps it individually for each member using an
// X25519 agreement, and encrypts posts under the group key. Storage
// providers and non-members relay only ciphertext; revocation rotates the
// group key and re-wraps for the surviving members.

// AccessGroup is one access level of one owner.
type AccessGroup struct {
	Name  string
	owner *cryptoutil.DHKeyPair
	key   []byte // current group key
	// wrapped[member] holds the member's encrypted copy of the group key.
	wrapped map[UserID][]byte
	// memberPubs retains member keys so revocation can re-wrap.
	memberPubs map[UserID]*ecdh.PublicKey
	generation int
}

// NewAccessGroup mints a group with a fresh key. ownerDH is the owner's
// long-term X25519 pair; rand supplies key material.
func NewAccessGroup(rand io.Reader, name string, ownerDH *cryptoutil.DHKeyPair) (*AccessGroup, error) {
	g := &AccessGroup{
		Name:       name,
		owner:      ownerDH,
		wrapped:    map[UserID][]byte{},
		memberPubs: map[UserID]*ecdh.PublicKey{},
	}
	if err := g.rotate(rand); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *AccessGroup) rotate(rand io.Reader) error {
	key := make([]byte, 32)
	if _, err := io.ReadFull(rand, key); err != nil {
		return err
	}
	g.key = key
	g.generation++
	// Re-wrap for every current member.
	for member, pub := range g.memberPubs {
		w, err := g.wrapFor(pub)
		if err != nil {
			return err
		}
		g.wrapped[member] = w
	}
	return nil
}

// wrapFor encrypts the group key to a member's X25519 public key.
func (g *AccessGroup) wrapFor(memberPub *ecdh.PublicKey) ([]byte, error) {
	shared, err := g.owner.SharedSecret(memberPub)
	if err != nil {
		return nil, err
	}
	kek := cryptoutil.HKDF(shared, nil, []byte("persona-group-kek"), 32)
	var gen [8]byte
	for i := 0; i < 8; i++ {
		gen[i] = byte(g.generation >> (8 * i))
	}
	return cryptoutil.Seal(kek, gen[:], g.key, []byte(g.Name))
}

// AddMember wraps the current group key for a member.
func (g *AccessGroup) AddMember(member UserID, memberPub *ecdh.PublicKey) error {
	w, err := g.wrapFor(memberPub)
	if err != nil {
		return err
	}
	g.memberPubs[member] = memberPub
	g.wrapped[member] = w
	return nil
}

// Remove revokes a member and rotates the group key so future posts are
// unreadable to them. (Posts encrypted under earlier generations remain
// readable to anyone who held that generation's key — the standard
// forward-only revocation caveat, documented here deliberately.)
func (g *AccessGroup) Remove(rand io.Reader, member UserID) error {
	if _, ok := g.memberPubs[member]; !ok {
		return fmt.Errorf("groupcomm: %q is not a member of %q", member, g.Name)
	}
	delete(g.memberPubs, member)
	delete(g.wrapped, member)
	return g.rotate(rand)
}

// Members lists current member IDs.
func (g *AccessGroup) Members() int { return len(g.memberPubs) }

// Generation returns the key generation (increments on every rotation).
func (g *AccessGroup) Generation() int { return g.generation }

// WrappedKeyFor returns the member's encrypted group-key copy for
// distribution (e.g. alongside posts or via the DHT).
func (g *AccessGroup) WrappedKeyFor(member UserID) ([]byte, bool) {
	w, ok := g.wrapped[member]
	return w, ok
}

// OwnerPub returns the owner's X25519 public key (members need it to
// unwrap).
func (g *AccessGroup) OwnerPub() *ecdh.PublicKey { return g.owner.Public }

// UnwrapGroupKey recovers the group key from a wrapped copy using the
// member's private key and the owner's public key.
func UnwrapGroupKey(memberDH *cryptoutil.DHKeyPair, ownerPub *ecdh.PublicKey, groupName string, generation int, wrapped []byte) ([]byte, error) {
	shared, err := memberDH.SharedSecret(ownerPub)
	if err != nil {
		return nil, err
	}
	kek := cryptoutil.HKDF(shared, nil, []byte("persona-group-kek"), 32)
	var gen [8]byte
	for i := 0; i < 8; i++ {
		gen[i] = byte(generation >> (8 * i))
	}
	key, err := cryptoutil.Open(kek, gen[:], wrapped, []byte(groupName))
	if err != nil {
		return nil, errors.New("groupcomm: group key unwrap failed (not a member?)")
	}
	return key, nil
}

// PrivatePost is a group-encrypted post body with its key generation.
type PrivatePost struct {
	Generation int
	Nonce      []byte
	Ciphertext []byte
}

// EncryptPost seals a post body under the group's current key.
func (g *AccessGroup) EncryptPost(rand io.Reader, plaintext []byte) (*PrivatePost, error) {
	nonce := make([]byte, 12)
	if _, err := io.ReadFull(rand, nonce); err != nil {
		return nil, err
	}
	ct, err := cryptoutil.Seal(g.key, nonce, plaintext, []byte(g.Name))
	if err != nil {
		return nil, err
	}
	return &PrivatePost{Generation: g.generation, Nonce: nonce, Ciphertext: ct}, nil
}

// DecryptPost opens a group-encrypted post with an unwrapped group key.
func DecryptPost(groupKey []byte, groupName string, p *PrivatePost) ([]byte, error) {
	if p == nil {
		return nil, errors.New("groupcomm: nil private post")
	}
	return cryptoutil.Open(groupKey, p.Nonce, p.Ciphertext, []byte(groupName))
}
