package groupcomm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cryptoutil"
)

// newSessionPair wires an initiator/responder ratchet pair sharing a
// secret.
func newSessionPair(t testing.TB, seed int64) (alice, bob *Ratchet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	secret := cryptoutil.HKDF([]byte("session secret"), nil, nil, 32)
	bobDH, err := cryptoutil.GenerateDHKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	alice, err = NewRatchetInitiator(rng, secret, bobDH.Public)
	if err != nil {
		t.Fatal(err)
	}
	bob = NewRatchetResponder(rng, secret, bobDH)
	return alice, bob
}

func TestRatchetBasicExchange(t *testing.T) {
	alice, bob := newSessionPair(t, 1)
	ad := []byte("header")
	msg, err := alice.Encrypt([]byte("hi bob"), ad)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bob.Decrypt(msg, ad)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "hi bob" {
		t.Errorf("pt = %q", pt)
	}
	// Bob replies (triggers his first sending chain via DH step already
	// done in Decrypt).
	reply, err := bob.Encrypt([]byte("hi alice"), ad)
	if err != nil {
		t.Fatal(err)
	}
	pt, err = alice.Decrypt(reply, ad)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "hi alice" {
		t.Errorf("pt = %q", pt)
	}
}

func TestResponderCannotSendFirst(t *testing.T) {
	_, bob := newSessionPair(t, 2)
	if _, err := bob.Encrypt([]byte("premature"), nil); err == nil {
		t.Error("responder encrypted before receiving; sending chain should not exist")
	}
}

func TestRatchetLongConversation(t *testing.T) {
	alice, bob := newSessionPair(t, 3)
	for i := 0; i < 50; i++ {
		m := []byte(fmt.Sprintf("a->b %d", i))
		enc, err := alice.Encrypt(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bob.Decrypt(enc, nil)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !bytes.Equal(got, m) {
			t.Fatalf("round %d mismatch", i)
		}
		// Alternate direction every third round to force DH steps.
		if i%3 == 0 {
			m2 := []byte(fmt.Sprintf("b->a %d", i))
			enc2, err := bob.Encrypt(m2, nil)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := alice.Decrypt(enc2, nil)
			if err != nil {
				t.Fatalf("reply %d: %v", i, err)
			}
			if !bytes.Equal(got2, m2) {
				t.Fatalf("reply %d mismatch", i)
			}
		}
	}
}

func TestRatchetOutOfOrderDelivery(t *testing.T) {
	alice, bob := newSessionPair(t, 4)
	var msgs []*RatchetMsg
	for i := 0; i < 5; i++ {
		m, err := alice.Encrypt([]byte(fmt.Sprintf("m%d", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, m)
	}
	// Deliver in reverse.
	for i := 4; i >= 0; i-- {
		pt, err := bob.Decrypt(msgs[i], nil)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if string(pt) != fmt.Sprintf("m%d", i) {
			t.Fatalf("msg %d wrong plaintext %q", i, pt)
		}
	}
	// Replay must fail (skipped key consumed).
	if _, err := bob.Decrypt(msgs[2], nil); err == nil {
		t.Error("replayed message decrypted twice")
	}
}

func TestRatchetCrossEpochOutOfOrder(t *testing.T) {
	alice, bob := newSessionPair(t, 5)
	// Epoch 1: alice sends two; bob receives only the second later.
	m0, _ := alice.Encrypt([]byte("early"), nil)
	m1, _ := alice.Encrypt([]byte("late"), nil)
	if _, err := bob.Decrypt(m1, nil); err != nil {
		t.Fatal(err)
	}
	// Bob replies → DH step on alice when she receives.
	r0, _ := bob.Encrypt([]byte("reply"), nil)
	if _, err := alice.Decrypt(r0, nil); err != nil {
		t.Fatal(err)
	}
	// New epoch from alice.
	m2, _ := alice.Encrypt([]byte("new epoch"), nil)
	if pt, err := bob.Decrypt(m2, nil); err != nil || string(pt) != "new epoch" {
		t.Fatalf("new epoch: %v %q", err, pt)
	}
	// The old epoch-1 message finally arrives; its skipped key must still work.
	if pt, err := bob.Decrypt(m0, nil); err != nil || string(pt) != "early" {
		t.Fatalf("stale message: %v %q", err, pt)
	}
}

func TestRatchetTamperDetection(t *testing.T) {
	alice, bob := newSessionPair(t, 6)
	msg, _ := alice.Encrypt([]byte("integrity"), []byte("ad"))
	msg.Ciphertext[0] ^= 0xff
	if _, err := bob.Decrypt(msg, []byte("ad")); err == nil {
		t.Error("tampered ciphertext accepted")
	}
	msg2, _ := alice.Encrypt([]byte("ad test"), []byte("ad"))
	if _, err := bob.Decrypt(msg2, []byte("other ad")); err == nil {
		t.Error("wrong associated data accepted")
	}
}

func TestRatchetWrongSecretFails(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bobDH, _ := cryptoutil.GenerateDHKeyPair(rng)
	alice, _ := NewRatchetInitiator(rng, []byte("secret-a"), bobDH.Public)
	bob := NewRatchetResponder(rng, []byte("secret-b"), bobDH)
	msg, _ := alice.Encrypt([]byte("x"), nil)
	if _, err := bob.Decrypt(msg, nil); err == nil {
		t.Error("mismatched session secrets should not decrypt")
	}
}

func TestRatchetSkipBound(t *testing.T) {
	alice, bob := newSessionPair(t, 8)
	// First message establishes bob's receiving chain.
	m, _ := alice.Encrypt([]byte("first"), nil)
	if _, err := bob.Decrypt(m, nil); err != nil {
		t.Fatal(err)
	}
	// Fabricate a huge gap.
	for i := 0; i < maxSkippedKeys+2; i++ {
		m, _ = alice.Encrypt([]byte("skip"), nil)
	}
	if _, err := bob.Decrypt(m, nil); err == nil {
		t.Error("gap beyond skipped-key bound accepted")
	}
}

func TestRatchetForwardSecrecyKeysDiffer(t *testing.T) {
	alice, bob := newSessionPair(t, 9)
	m1, _ := alice.Encrypt([]byte("one"), nil)
	m2, _ := alice.Encrypt([]byte("one"), nil) // same plaintext
	if bytes.Equal(m1.Ciphertext, m2.Ciphertext) {
		t.Error("identical plaintexts encrypted identically; chain not ratcheting")
	}
	if _, err := bob.Decrypt(m1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Decrypt(m2, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRatchetEncryptDecrypt(b *testing.B) {
	alice, bob := newSessionPair(b, 10)
	payload := bytes.Repeat([]byte("x"), 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := alice.Encrypt(payload, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bob.Decrypt(m, nil); err != nil {
			b.Fatal(err)
		}
	}
}
