package groupcomm

import (
	"crypto/ed25519"
	"encoding/binary"
	"time"

	"repro/internal/cryptoutil"
)

// Lockr-style relationship credentials (§3.2: Persona and Lockr "allow
// users to define relationships with other users and ensur[e] that
// relationships are not exploited"). A Relationship is a signed statement
// by a data owner that a specific key holder stands in a named relation
// ("friend", "family", …) to them, with an expiry. Access to the owner's
// content is granted only to a party that (a) presents a verifiable
// credential and (b) proves possession of the holder key by signing a
// fresh challenge — so a leaked or stolen credential is useless, which is
// exactly the "not exploited" property.

// Relationship is one signed social-relationship credential.
type Relationship struct {
	// Issuer is the data owner's key fingerprint.
	Issuer cryptoutil.Hash
	// HolderPub is the public key of the befriended party; access requires
	// proving possession of the matching private key.
	HolderPub ed25519.PublicKey
	// Relation names the access class this credential grants.
	Relation string
	// Expires is the simulation time after which the credential is void.
	Expires time.Duration
	Sig     []byte
}

func (r *Relationship) signingBytes() []byte {
	buf := make([]byte, 0, 64+len(r.HolderPub)+len(r.Relation)+8)
	buf = append(buf, []byte("lockr-rel|")...)
	buf = append(buf, r.Issuer[:]...)
	buf = append(buf, r.HolderPub...)
	buf = append(buf, []byte(r.Relation)...)
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(r.Expires))
	buf = append(buf, e[:]...)
	return buf
}

// IssueRelationship signs a credential binding holderPub into relation with
// the issuer until expires.
func IssueRelationship(issuer *cryptoutil.KeyPair, holderPub ed25519.PublicKey, relation string, expires time.Duration) *Relationship {
	r := &Relationship{
		Issuer:    issuer.Fingerprint(),
		HolderPub: append(ed25519.PublicKey{}, holderPub...),
		Relation:  relation,
		Expires:   expires,
	}
	r.Sig = issuer.Sign(r.signingBytes())
	return r
}

// Verify checks the credential's signature, issuer binding, and expiry.
func (r *Relationship) Verify(issuerPub ed25519.PublicKey, now time.Duration) bool {
	if r == nil || cryptoutil.PublicFingerprint(issuerPub) != r.Issuer {
		return false
	}
	if now >= r.Expires {
		return false
	}
	return cryptoutil.Verify(issuerPub, r.signingBytes(), r.Sig)
}

// ProveHolder signs an access challenge with the holder key.
func ProveHolder(holder *cryptoutil.KeyPair, challenge []byte) []byte {
	return holder.Sign(append([]byte("lockr-challenge|"), challenge...))
}

// VerifyHolder checks a challenge signature against the credential's
// holder key — the possession proof that stops credential theft.
func VerifyHolder(r *Relationship, challenge, sig []byte) bool {
	if r == nil {
		return false
	}
	return cryptoutil.Verify(r.HolderPub, append([]byte("lockr-challenge|"), challenge...), sig)
}

// ContentGuard gates access to one owner's content by relation class, with
// per-credential revocation.
type ContentGuard struct {
	ownerPub ed25519.PublicKey
	// required is the relation class the guarded content demands.
	required string
	revoked  map[string]bool // fingerprint of revoked holder keys
	// Granted/Denied count access decisions.
	Granted, Denied int
}

// NewContentGuard guards content owned by ownerPub requiring the given
// relation.
func NewContentGuard(ownerPub ed25519.PublicKey, requiredRelation string) *ContentGuard {
	return &ContentGuard{
		ownerPub: append(ed25519.PublicKey{}, ownerPub...),
		required: requiredRelation,
		revoked:  map[string]bool{},
	}
}

// Revoke blocks a specific holder key even while its credential is
// otherwise valid (the owner changed their mind — relationship revocation).
func (g *ContentGuard) Revoke(holderPub ed25519.PublicKey) {
	g.revoked[cryptoutil.PublicFingerprint(holderPub).String()] = true
}

// Access decides one request: credential valid, relation sufficient,
// holder possession proven, and not revoked.
func (g *ContentGuard) Access(r *Relationship, challenge, holderSig []byte, now time.Duration) bool {
	ok := r.Verify(g.ownerPub, now) &&
		r.Relation == g.required &&
		VerifyHolder(r, challenge, holderSig) &&
		!g.revoked[cryptoutil.PublicFingerprint(r.HolderPub).String()]
	if ok {
		g.Granted++
	} else {
		g.Denied++
	}
	return ok
}
