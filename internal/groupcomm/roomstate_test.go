package groupcomm

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/gossip"
	"repro/internal/simnet"
)

// evBuilder produces room events with increasing timestamps.
type evBuilder struct {
	room string
	t    time.Duration
}

func (b *evBuilder) next(typ string, sender UserID, mutate func(*RoomEvent)) RoomEvent {
	b.t += time.Second
	return NewRoomEvent(b.room, typ, sender, mutate, b.t)
}

func TestRoomStateBasicFlow(t *testing.T) {
	b := &evBuilder{room: "r"}
	events := []RoomEvent{
		b.next(EvCreate, "alice", nil),
		b.next(EvMember, "bob", func(e *RoomEvent) { e.Target = "bob"; e.Membership = MemberJoin }),
		b.next(EvMessage, "bob", func(e *RoomEvent) { e.Body = []byte("hi") }),
		b.next(EvMessage, "alice", func(e *RoomEvent) { e.Body = []byte("welcome") }),
	}
	st := ComputeRoomState(events)
	if st.Creator != "alice" || !st.Joined("alice") || !st.Joined("bob") {
		t.Fatalf("state: %+v", st)
	}
	if st.powerOf("alice") != 100 || st.powerOf("bob") != 0 {
		t.Error("power defaults wrong")
	}
	msgs := VisibleMessages(events)
	if len(msgs) != 2 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if st.Rejected != 0 {
		t.Errorf("rejected = %d", st.Rejected)
	}
}

func TestRoomStateOrderIndependent(t *testing.T) {
	b := &evBuilder{room: "r"}
	events := []RoomEvent{
		b.next(EvCreate, "alice", nil),
		b.next(EvMember, "bob", func(e *RoomEvent) { e.Target = "bob"; e.Membership = MemberJoin }),
		b.next(EvMessage, "bob", func(e *RoomEvent) { e.Body = []byte("1") }),
		b.next(EvPower, "alice", func(e *RoomEvent) { e.Target = "bob"; e.Power = 50 }),
		b.next(EvMember, "bob", func(e *RoomEvent) { e.Target = "carol"; e.Membership = MemberBan }),
	}
	want := fmt.Sprintf("%+v", ComputeRoomState(events))
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]RoomEvent{}, events...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := fmt.Sprintf("%+v", ComputeRoomState(shuffled)); got != want {
			t.Fatalf("state depends on arrival order:\n got %s\nwant %s", got, want)
		}
	}
}

func TestRoomModerationRules(t *testing.T) {
	b := &evBuilder{room: "r"}
	events := []RoomEvent{
		b.next(EvCreate, "alice", nil),
		b.next(EvMember, "troll", func(e *RoomEvent) { e.Target = "troll"; e.Membership = MemberJoin }),
		b.next(EvMember, "bob", func(e *RoomEvent) { e.Target = "bob"; e.Membership = MemberJoin }),
		// Troll (power 0) tries to ban bob: rejected.
		b.next(EvMember, "troll", func(e *RoomEvent) { e.Target = "bob"; e.Membership = MemberBan }),
		// Alice promotes bob to moderator.
		b.next(EvPower, "alice", func(e *RoomEvent) { e.Target = "bob"; e.Power = 50 }),
		// Bob bans the troll.
		b.next(EvMember, "bob", func(e *RoomEvent) { e.Target = "troll"; e.Membership = MemberBan }),
		// Banned troll keeps talking: messages rejected.
		b.next(EvMessage, "troll", func(e *RoomEvent) { e.Body = []byte("spam") }),
		// Banned troll cannot rejoin.
		b.next(EvMember, "troll", func(e *RoomEvent) { e.Target = "troll"; e.Membership = MemberJoin }),
		// Bob cannot promote himself above his own level.
		b.next(EvPower, "bob", func(e *RoomEvent) { e.Target = "bob"; e.Power = 100 }),
		// Bob cannot ban alice (she outranks him).
		b.next(EvMember, "bob", func(e *RoomEvent) { e.Target = "alice"; e.Membership = MemberBan }),
	}
	st := ComputeRoomState(events)
	if st.Members["troll"] != MemberBan {
		t.Error("troll not banned")
	}
	if !st.Joined("alice") {
		t.Error("alice banned by subordinate")
	}
	if st.powerOf("bob") != 50 {
		t.Errorf("bob power = %d", st.powerOf("bob"))
	}
	if st.Rejected != 5 {
		t.Errorf("rejected = %d, want 5", st.Rejected)
	}
	if msgs := VisibleMessages(events); len(msgs) != 0 {
		t.Errorf("troll messages visible: %d", len(msgs))
	}
}

func TestRoomRedaction(t *testing.T) {
	b := &evBuilder{room: "r"}
	create := b.next(EvCreate, "alice", nil)
	join := b.next(EvMember, "bob", func(e *RoomEvent) { e.Target = "bob"; e.Membership = MemberJoin })
	bad := b.next(EvMessage, "bob", func(e *RoomEvent) { e.Body = []byte("regrettable") })
	fine := b.next(EvMessage, "bob", func(e *RoomEvent) { e.Body = []byte("fine") })
	redact := b.next(EvRedact, "alice", func(e *RoomEvent) { e.Redacts = bad.ID })
	// A powerless member cannot redact.
	evil := b.next(EvRedact, "bob", func(e *RoomEvent) { e.Redacts = fine.ID })

	events := []RoomEvent{create, join, bad, fine, redact, evil}
	msgs := VisibleMessages(events)
	if len(msgs) != 1 || string(msgs[0].Body) != "fine" {
		t.Fatalf("visible = %d", len(msgs))
	}
	if st := ComputeRoomState(events); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1 (bob's redaction)", st.Rejected)
	}
}

func TestRoomDuplicateCreateIgnored(t *testing.T) {
	b := &evBuilder{room: "r"}
	events := []RoomEvent{
		b.next(EvCreate, "alice", nil),
		b.next(EvCreate, "mallory", nil),
	}
	st := ComputeRoomState(events)
	if st.Creator != "alice" {
		t.Error("creator hijacked")
	}
	if st.Rejected != 1 {
		t.Errorf("rejected = %d", st.Rejected)
	}
}

// TestReplRoomConvergesAcrossServers feeds a room through three gossiping
// servers — including one that is down during the action — and checks
// every replica derives identical state after anti-entropy repair.
func TestReplRoomConvergesAcrossServers(t *testing.T) {
	nw := simnet.New(31)
	rooms := make([]*ReplRoom, 3)
	ids := make([]simnet.NodeID, 3)
	members := make([]*gossip.Member, 3)
	for i := range rooms {
		members[i] = gossip.NewMember(nw.AddNode(), gossip.Config{Fanout: 2, AntiEntropyInterval: 10 * time.Second})
		ids[i] = members[i].Node().ID()
		rooms[i] = NewReplRoom(members[i], "lobby")
	}
	for i, m := range members {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
	}

	rooms[2].Node().Crash() // one server misses the action live
	rooms[0].Emit(EvCreate, "alice", nil)
	nw.Run(nw.Now() + time.Second)
	rooms[0].Emit(EvMember, "bob", func(e *RoomEvent) { e.Target = "bob"; e.Membership = MemberJoin })
	nw.Run(nw.Now() + time.Second)
	rooms[1].Emit(EvMessage, "bob", func(e *RoomEvent) { e.Body = []byte("via server 1") })
	nw.Run(nw.Now() + time.Second)
	rooms[0].Emit(EvPower, "alice", func(e *RoomEvent) { e.Target = "bob"; e.Power = 50 })
	nw.Run(nw.Now() + time.Minute)
	rooms[2].Node().Restart()
	nw.Run(nw.Now() + 5*time.Minute) // anti-entropy catches the third server up

	want := fmt.Sprintf("%+v", rooms[0].State())
	for i, r := range rooms {
		if r.NumEvents() != 4 {
			t.Errorf("server %d has %d events", i, r.NumEvents())
		}
		if got := fmt.Sprintf("%+v", r.State()); got != want {
			t.Errorf("server %d state diverged:\n got %s\nwant %s", i, got, want)
		}
		if msgs := r.Messages(); len(msgs) != 1 {
			t.Errorf("server %d messages = %d", i, len(msgs))
		}
	}
}
