// Package groupcomm implements the group-communication systems of the
// paper's §3.2 — group messaging and online social networking — under four
// deployment models that span the centralized↔democratized axis:
//
//   - Centralized: one platform server (the feudal baseline: Twitter,
//     Reddit). Highest convenience and global moderation; total outage and
//     total metadata exposure when the operator fails or misbehaves.
//   - FederatedHome: OStatus/Mastodon/GNU-social style. Each user homes on
//     an instance; posts push to followers' instances. "OStatus-based
//     applications are bottlenecked by single servers that can cause
//     entire instances to be inaccessible if they fail."
//   - FederatedReplicated: Matrix/Riot style. Room history replicates
//     across every participating server via gossip; any surviving server
//     can serve reads. "Matrix provides high availability by replicating
//     data over the entire network" — while "metadata is still accessible
//     and readable by the Matrix server that stores it."
//   - SocialP2P: PrPl/Persona/Lockr style. No servers; data flows only
//     along socially trusted edges. Best privacy, availability limited by
//     friends' uptime.
//
// All four expose posting and reading so experiment X3/X4 can measure
// deliverability under failure, and each reports its per-message metadata
// exposure (which third parties learn who talked to whom).
package groupcomm

import (
	"strings"
	"time"

	"repro/internal/cryptoutil"
)

// UserID names a user. User identity/key management is orthogonal here;
// the naming and identity packages provide it for the full system.
type UserID string

// Post is one message in a room or timeline. Body may be plaintext or
// ratchet ciphertext; the transport does not care.
type Post struct {
	ID     cryptoutil.Hash
	Room   string
	Author UserID
	Body   []byte
	SentAt time.Duration
}

// NewPost builds a post with a content-derived unique ID.
func NewPost(room string, author UserID, body []byte, now time.Duration) Post {
	var ts [8]byte
	for i := 0; i < 8; i++ {
		ts[i] = byte(uint64(now) >> (8 * i))
	}
	return Post{
		ID:     cryptoutil.SumHashes([]byte(room), []byte(author), body, ts[:]),
		Room:   room,
		Author: author,
		Body:   body,
		SentAt: now,
	}
}

// WireSize returns the simulated size of the post in bytes.
func (p Post) WireSize() int { return 64 + len(p.Room) + len(p.Author) + len(p.Body) }

// ModerationPolicy is the abuse-prevention hook (§3.2 "Abuse Prevention").
// Centralized platforms apply one policy globally; federated instances each
// apply their own; P2P users can only filter what they themselves see.
type ModerationPolicy struct {
	BannedWords []string
	BannedUsers map[UserID]bool
}

// Allows reports whether the policy admits the post.
func (mp *ModerationPolicy) Allows(p Post) bool {
	if mp == nil {
		return true
	}
	if mp.BannedUsers[p.Author] {
		return false
	}
	body := strings.ToLower(string(p.Body))
	for _, w := range mp.BannedWords {
		if w != "" && strings.Contains(body, strings.ToLower(w)) {
			return false
		}
	}
	return true
}

// MetadataExposure describes who, besides the intended readers, observes a
// message's metadata (sender, recipient/room, timing) under each model —
// §3.2's privacy axis quantified.
type MetadataExposure struct {
	Model string
	// ObserverCount is how many non-participant operator entities see the
	// metadata of a typical message (for federated-replicated, per room
	// with s participating servers, this is s).
	ObserverCount func(servers int) int
	// BodyVisible reports whether those observers also see plaintext
	// bodies when users do not use end-to-end encryption.
	BodyVisible bool
	Note        string
}

// Exposures returns the metadata-exposure assessment for all four models.
func Exposures() []MetadataExposure {
	return []MetadataExposure{
		{
			Model:         "centralized",
			ObserverCount: func(servers int) int { return 1 },
			BodyVisible:   true,
			Note:          "platform operator sees everything; monetization of metadata is the business model",
		},
		{
			Model:         "federated-home",
			ObserverCount: func(servers int) int { return 2 },
			BodyVisible:   true,
			Note:          "author's and reader's instances see bodies and metadata; OStatus has no intrinsic privacy mechanism",
		},
		{
			Model: "federated-replicated",
			ObserverCount: func(servers int) int {
				if servers < 1 {
					return 1
				}
				return servers
			},
			BodyVisible: false, // E2E for bodies, but...
			Note:        "bodies can be end-to-end encrypted, yet every participating server reads metadata (the Matrix caveat)",
		},
		{
			Model:         "social-p2p",
			ObserverCount: func(servers int) int { return 0 },
			BodyVisible:   false,
			Note:          "no operator exists; only socially trusted peers handle the data",
		},
	}
}
