package groupcomm

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cryptoutil"
)

func lockrKeys(t *testing.T) (owner, friend, mallory *cryptoutil.KeyPair) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	mk := func() *cryptoutil.KeyPair {
		kp, err := cryptoutil.GenerateKeyPair(rng)
		if err != nil {
			t.Fatal(err)
		}
		return kp
	}
	return mk(), mk(), mk()
}

func TestLockrCredentialGrantsAccess(t *testing.T) {
	owner, friend, _ := lockrKeys(t)
	cred := IssueRelationship(owner, friend.Public, "friend", time.Hour)
	guard := NewContentGuard(owner.Public, "friend")

	challenge := []byte("nonce-1")
	sig := ProveHolder(friend, challenge)
	if !guard.Access(cred, challenge, sig, 30*time.Minute) {
		t.Fatal("valid friend denied")
	}
	if guard.Granted != 1 {
		t.Error("grant not counted")
	}
}

func TestLockrStolenCredentialUseless(t *testing.T) {
	owner, friend, mallory := lockrKeys(t)
	cred := IssueRelationship(owner, friend.Public, "friend", time.Hour)
	guard := NewContentGuard(owner.Public, "friend")

	// Mallory has the credential bytes but not the friend's key: her
	// challenge signature cannot verify against HolderPub.
	challenge := []byte("nonce-2")
	sig := ProveHolder(mallory, challenge)
	if guard.Access(cred, challenge, sig, time.Minute) {
		t.Fatal("stolen credential granted access — 'relationships exploited'")
	}
	// Replaying the friend's old signature on a new challenge also fails.
	oldSig := ProveHolder(friend, []byte("nonce-2-old"))
	if guard.Access(cred, []byte("nonce-3"), oldSig, time.Minute) {
		t.Fatal("replayed possession proof accepted")
	}
}

func TestLockrExpiryRelationAndForgery(t *testing.T) {
	owner, friend, mallory := lockrKeys(t)
	guard := NewContentGuard(owner.Public, "friend")
	challenge := []byte("nonce-4")

	// Expired credential.
	expired := IssueRelationship(owner, friend.Public, "friend", time.Minute)
	if guard.Access(expired, challenge, ProveHolder(friend, challenge), 2*time.Minute) {
		t.Error("expired credential accepted")
	}
	// Wrong relation class.
	acquaintance := IssueRelationship(owner, friend.Public, "acquaintance", time.Hour)
	if guard.Access(acquaintance, challenge, ProveHolder(friend, challenge), time.Minute) {
		t.Error("insufficient relation accepted")
	}
	// Forged credential (signed by mallory, claiming the owner).
	forged := IssueRelationship(mallory, mallory.Public, "friend", time.Hour)
	forged.Issuer = owner.Fingerprint()
	if guard.Access(forged, challenge, ProveHolder(mallory, challenge), time.Minute) {
		t.Error("forged credential accepted")
	}
	// Tampered relation on a real credential.
	real := IssueRelationship(owner, friend.Public, "acquaintance", time.Hour)
	real.Relation = "friend"
	if guard.Access(real, challenge, ProveHolder(friend, challenge), time.Minute) {
		t.Error("tampered credential accepted")
	}
	if guard.Denied != 4 {
		t.Errorf("denied = %d, want 4", guard.Denied)
	}
	// Nil safety.
	if (&Relationship{}).Verify(owner.Public, 0) {
		t.Error("zero credential verified")
	}
	if VerifyHolder(nil, challenge, nil) {
		t.Error("nil credential holder-verified")
	}
}

func TestLockrRevocation(t *testing.T) {
	owner, friend, _ := lockrKeys(t)
	cred := IssueRelationship(owner, friend.Public, "friend", time.Hour)
	guard := NewContentGuard(owner.Public, "friend")
	challenge := []byte("nonce-5")
	sig := ProveHolder(friend, challenge)
	if !guard.Access(cred, challenge, sig, time.Minute) {
		t.Fatal("pre-revocation access denied")
	}
	guard.Revoke(friend.Public)
	if guard.Access(cred, challenge, sig, time.Minute) {
		t.Fatal("revoked holder still granted access")
	}
}
