package groupcomm

import (
	"time"

	"repro/internal/gossip"
	"repro/internal/resil"
	"repro/internal/simnet"
)

// FederatedReplicated is the Matrix model: every server participating in a
// room replicates its full history via gossip with anti-entropy, so the
// room survives any minority of server failures. Users still home on one
// server for writes, but reads can fail over to any surviving server.
// Each server applies its own moderation policy to what it accepts and
// relays (application-level moderation, as Matrix allows).

// ReplServer is one Matrix-style homeserver.
type ReplServer struct {
	rpc    *simnet.RPCNode
	name   string
	member *gossip.Member
	rooms  map[string][]Post
	policy *ModerationPolicy
	// Moderated counts posts this server refused to accept from clients.
	Moderated int
}

// RPC methods for the replicated-federation model.
const (
	methodReplPost  = "gc.repl.post"
	methodReplFetch = "gc.repl.fetch"
)

// NewReplServer starts a homeserver. The gossip config controls
// replication fan-out and anti-entropy repair.
func NewReplServer(node *simnet.Node, name string, policy *ModerationPolicy, gcfg gossip.Config) *ReplServer {
	s := &ReplServer{
		rpc:    simnet.NewRPCNode(node),
		name:   name,
		member: gossip.NewMember(node, gcfg),
		rooms:  map[string][]Post{},
		policy: policy,
	}
	s.member.OnDeliver(func(it gossip.Item) {
		if p, ok := it.Data.(Post); ok {
			s.rooms[p.Room] = append(s.rooms[p.Room], p)
		}
	})
	s.rpc.Serve(methodReplPost, s.onPost)
	s.rpc.Serve(methodReplFetch, s.onFetch)
	return s
}

// Name returns the server name.
func (s *ReplServer) Name() string { return s.name }

// Node returns the server's simnet node.
func (s *ReplServer) Node() *simnet.Node { return s.rpc.Node() }

// SetPeers wires the replication mesh (other servers in the federation).
func (s *ReplServer) SetPeers(peers []simnet.NodeID) { s.member.SetPeers(peers) }

// RoomLen returns how many posts of a room this server has replicated.
func (s *ReplServer) RoomLen(room string) int { return len(s.rooms[room]) }

func (s *ReplServer) onPost(from simnet.NodeID, req any) (any, int) {
	p, ok := req.(Post)
	if !ok {
		return false, 8
	}
	if !s.policy.Allows(p) {
		s.Moderated++
		return false, 8
	}
	s.member.Publish(gossip.Item{ID: p.ID, Data: p, Size: p.WireSize()})
	return true, 8
}

func (s *ReplServer) onFetch(from simnet.NodeID, req any) (any, int) {
	room, ok := req.(string)
	if !ok {
		return fetchResp{}, 8
	}
	posts := s.rooms[room]
	size := 16
	for _, p := range posts {
		size += p.WireSize()
	}
	return fetchResp{Posts: posts}, size
}

// ReplClient is a user of the replicated federation. Writes go to the home
// server; reads try the home server first and fail over through the known
// server list.
type ReplClient struct {
	rpc     *simnet.RPCNode
	res     *resil.Client
	home    simnet.NodeID
	servers []simnet.NodeID // failover order for reads
	user    UserID
	timeout time.Duration
}

// NewReplClient creates a client homed on home, aware of the full server
// list for read failover, on the historical fixed-timeout transport.
func NewReplClient(node *simnet.Node, home simnet.NodeID, servers []simnet.NodeID, user UserID, timeout time.Duration) *ReplClient {
	return NewReplClientWith(node, home, servers, user, timeout, resil.Config{})
}

// NewReplClientWith is NewReplClient with an explicit resilience
// configuration: posts and fetch failover legs ride the adaptive
// retry/breaker layer, so a crashed homeserver is suspected instead of
// eating a full timeout on every read.
func NewReplClientWith(node *simnet.Node, home simnet.NodeID, servers []simnet.NodeID, user UserID, timeout time.Duration, rcfg resil.Config) *ReplClient {
	rpc := simnet.NewRPCNode(node)
	return &ReplClient{rpc: rpc, res: resil.New(rpc, rcfg), home: home, servers: servers, user: user, timeout: timeout}
}

// Post publishes through the user's home server; it fails if the home
// server is down (accounts are not portable across homeservers — the
// residual centralization in Matrix).
func (c *ReplClient) Post(room string, body []byte, done func(ok bool)) {
	p := NewPost(room, c.user, body, c.rpc.Node().Now())
	c.res.Call(c.home, methodReplPost, p, p.WireSize(), c.timeout, func(resp any, err error) {
		ok, _ := resp.(bool)
		done(err == nil && ok)
	})
}

// Fetch reads a room, failing over across servers until one answers.
func (c *ReplClient) Fetch(room string, done func(posts []Post, ok bool)) {
	order := append([]simnet.NodeID{c.home}, c.servers...)
	c.tryFetch(room, order, 0, done)
}

func (c *ReplClient) tryFetch(room string, order []simnet.NodeID, i int, done func([]Post, bool)) {
	if i >= len(order) {
		done(nil, false)
		return
	}
	c.res.Call(order[i], methodReplFetch, room, 32, c.timeout, func(resp any, err error) {
		if err != nil {
			c.tryFetch(room, order, i+1, done)
			return
		}
		fr, ok := resp.(fetchResp)
		if !ok {
			c.tryFetch(room, order, i+1, done)
			return
		}
		done(fr.Posts, true)
	})
}
