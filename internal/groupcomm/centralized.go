package groupcomm

import (
	"time"

	"repro/internal/simnet"
)

// CentralServer is the feudal baseline: one platform holding every room,
// applying one global moderation policy, able to ban any user. When it is
// down, the service does not exist.
type CentralServer struct {
	rpc    *simnet.RPCNode
	rooms  map[string][]Post
	policy *ModerationPolicy
	// Moderated counts posts refused by policy.
	Moderated int
}

// RPC methods for the centralized model.
const (
	methodCentralPost  = "gc.central.post"
	methodCentralFetch = "gc.central.fetch"
)

type fetchResp struct {
	Posts []Post
}

// NewCentralServer starts the platform on a node.
func NewCentralServer(node *simnet.Node, policy *ModerationPolicy) *CentralServer {
	s := &CentralServer{rpc: simnet.NewRPCNode(node), rooms: map[string][]Post{}, policy: policy}
	s.rpc.Serve(methodCentralPost, s.onPost)
	s.rpc.Serve(methodCentralFetch, s.onFetch)
	return s
}

// Node returns the server's simnet node.
func (s *CentralServer) Node() *simnet.Node { return s.rpc.Node() }

// SetPolicy swaps the global moderation policy — unilaterally, as the
// paper notes: "the norms for 'good behavior' … are dictated by platform
// operators."
func (s *CentralServer) SetPolicy(p *ModerationPolicy) { s.policy = p }

// RoomLen returns how many posts a room holds.
func (s *CentralServer) RoomLen(room string) int { return len(s.rooms[room]) }

func (s *CentralServer) onPost(from simnet.NodeID, req any) (any, int) {
	p, ok := req.(Post)
	if !ok {
		return false, 8
	}
	if !s.policy.Allows(p) {
		s.Moderated++
		return false, 8
	}
	s.rooms[p.Room] = append(s.rooms[p.Room], p)
	return true, 8
}

func (s *CentralServer) onFetch(from simnet.NodeID, req any) (any, int) {
	room, ok := req.(string)
	if !ok {
		return fetchResp{}, 8
	}
	posts := s.rooms[room]
	size := 16
	for _, p := range posts {
		size += p.WireSize()
	}
	return fetchResp{Posts: posts}, size
}

// CentralClient is a user of the centralized platform.
type CentralClient struct {
	rpc     *simnet.RPCNode
	server  simnet.NodeID
	user    UserID
	timeout time.Duration
}

// NewCentralClient creates a client for user on node, homed on server.
func NewCentralClient(node *simnet.Node, server simnet.NodeID, user UserID, timeout time.Duration) *CentralClient {
	return &CentralClient{rpc: simnet.NewRPCNode(node), server: server, user: user, timeout: timeout}
}

// User returns the client's user ID.
func (c *CentralClient) User() UserID { return c.user }

// Node returns the client's simnet node.
func (c *CentralClient) Node() *simnet.Node { return c.rpc.Node() }

// Post publishes body into room. done reports acceptance (false on
// moderation, timeout, or server failure).
func (c *CentralClient) Post(room string, body []byte, done func(ok bool)) {
	p := NewPost(room, c.user, body, c.rpc.Node().Now())
	c.rpc.Call(c.server, methodCentralPost, p, p.WireSize(), c.timeout, func(resp any, err error) {
		ok, _ := resp.(bool)
		done(err == nil && ok)
	})
}

// Fetch reads a room's history. ok is false when the platform is
// unreachable.
func (c *CentralClient) Fetch(room string, done func(posts []Post, ok bool)) {
	c.rpc.Call(c.server, methodCentralFetch, room, 32, c.timeout, func(resp any, err error) {
		if err != nil {
			done(nil, false)
			return
		}
		fr, ok := resp.(fetchResp)
		done(fr.Posts, ok)
	})
}
