package groupcomm

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cryptoutil"
)

// OTR-style messaging (§3.2: "OTR introduces the concepts of repudiability
// and forgeability to the discussion"). Where the double ratchet aims for
// strong authentication, OTR deliberately weakens *after-the-fact*
// attribution:
//
//   - messages are encrypted with a malleable stream cipher (AES-CTR) and
//     authenticated with HMAC — good enough online, unattributable later;
//   - when a session re-keys, the sender REVEALS the retired MAC key in
//     the next message. From then on anyone holding the transcript can
//     forge validly-MACed messages for old epochs, so a transcript proves
//     nothing about who said what: repudiability by design.
//
// OTRForge demonstrates the forgeability property explicitly.

// OTRMessage is one message on the wire.
type OTRMessage struct {
	Epoch      int
	IV         []byte
	Ciphertext []byte
	MAC        []byte
	// RevealedMACKeys carries retired MAC keys (one per re-key since the
	// last message), enabling third-party forgery of earlier epochs.
	RevealedMACKeys [][]byte
}

// WireSize returns the simulated size in bytes.
func (m *OTRMessage) WireSize() int {
	n := 8 + len(m.IV) + len(m.Ciphertext) + len(m.MAC)
	for _, k := range m.RevealedMACKeys {
		n += len(k)
	}
	return n
}

// OTRSession is one endpoint of an OTR-style session. Both endpoints share
// symmetric epoch keys (in full OTR these come from a DH ratchet; the key
// schedule here is an HKDF chain, which preserves the properties under
// study: per-epoch keys, retirement, and reveal).
type OTRSession struct {
	encKey  []byte
	macKey  []byte
	epoch   int
	rand    io.Reader
	counter uint64
	// pendingReveal holds retired MAC keys to disclose on the next send.
	pendingReveal [][]byte
	// revealed collects all retired keys seen (ours and the peer's) —
	// the public forgery material.
	revealed map[int][]byte
	// oldMACs/oldEncs let late messages from previous epochs still verify
	// and decrypt.
	oldMACs map[int][]byte
	oldEncs map[int][]byte
}

// NewOTRPair derives two synchronized session endpoints from a shared
// secret (obtained out of band, e.g. a DH handshake).
func NewOTRPair(rand io.Reader, secret []byte) (*OTRSession, *OTRSession) {
	mk := func() *OTRSession {
		keys := cryptoutil.HKDF(secret, nil, []byte("otr-epoch-0"), 64)
		return &OTRSession{
			encKey:   keys[:32],
			macKey:   keys[32:],
			rand:     rand,
			revealed: map[int][]byte{},
			oldMACs:  map[int][]byte{},
			oldEncs:  map[int][]byte{},
		}
	}
	return mk(), mk()
}

// Epoch returns the session's current key epoch.
func (s *OTRSession) Epoch() int { return s.epoch }

// RevealedMACKey returns the retired MAC key for an epoch, if it has been
// disclosed — the material a transcript holder needs to forge.
func (s *OTRSession) RevealedMACKey(epoch int) ([]byte, bool) {
	k, ok := s.revealed[epoch]
	return k, ok
}

func otrMAC(macKey []byte, epoch int, iv, ct []byte) []byte {
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(epoch))
	msg := append(append(append([]byte{}, e[:]...), iv...), ct...)
	return cryptoutil.HMAC256(macKey, msg)
}

func otrStream(encKey, iv, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	cipher.NewCTR(block, iv).XORKeyStream(out, data)
	return out, nil
}

// Send encrypts and MACs a message in the current epoch, attaching any
// MAC keys retired since the last send.
func (s *OTRSession) Send(plaintext []byte) (*OTRMessage, error) {
	iv := make([]byte, aes.BlockSize)
	binary.BigEndian.PutUint64(iv[:8], uint64(s.epoch))
	s.counter++
	binary.BigEndian.PutUint64(iv[8:], s.counter)
	ct, err := otrStream(s.encKey, iv, plaintext)
	if err != nil {
		return nil, err
	}
	m := &OTRMessage{
		Epoch:           s.epoch,
		IV:              iv,
		Ciphertext:      ct,
		MAC:             otrMAC(s.macKey, s.epoch, iv, ct),
		RevealedMACKeys: s.pendingReveal,
	}
	s.pendingReveal = nil
	return m, nil
}

// Receive verifies and decrypts a message (current epoch or a retained
// previous epoch), and records any MAC keys the peer revealed.
func (s *OTRSession) Receive(m *OTRMessage) ([]byte, error) {
	if m == nil {
		return nil, errors.New("groupcomm: nil OTR message")
	}
	for i, k := range m.RevealedMACKeys {
		// Keys are revealed oldest-first for the epochs before the current.
		s.revealed[m.Epoch-len(m.RevealedMACKeys)+i] = k
	}
	macKey := s.macKey
	switch {
	case m.Epoch == s.epoch:
	case m.Epoch < s.epoch:
		old, ok := s.oldMACs[m.Epoch]
		if !ok {
			return nil, fmt.Errorf("groupcomm: OTR epoch %d no longer verifiable", m.Epoch)
		}
		macKey = old
	default:
		return nil, fmt.Errorf("groupcomm: OTR message from future epoch %d", m.Epoch)
	}
	if !bytes.Equal(m.MAC, otrMAC(macKey, m.Epoch, m.IV, m.Ciphertext)) {
		return nil, errors.New("groupcomm: OTR MAC mismatch")
	}
	encKey := s.encKey
	if m.Epoch < s.epoch {
		encKey = s.oldEncKey(m.Epoch)
	}
	return otrStream(encKey, m.IV, m.Ciphertext)
}

func (s *OTRSession) oldEncKey(epoch int) []byte {
	if k, ok := s.oldEncs[epoch]; ok {
		return k
	}
	return s.encKey
}

// Rekey advances both endpoints' epoch (call on each in the same order):
// new keys derive from the old via HKDF, the retired MAC key is queued for
// public reveal on the next send, and the previous epoch stays verifiable
// for stragglers.
func (s *OTRSession) Rekey() {
	s.oldMACs[s.epoch] = s.macKey
	s.oldEncs[s.epoch] = s.encKey
	s.pendingReveal = append(s.pendingReveal, s.macKey)
	seed := append(append([]byte{}, s.encKey...), s.macKey...)
	keys := cryptoutil.HKDF(seed, nil, []byte("otr-rekey"), 64)
	s.encKey = keys[:32]
	s.macKey = keys[32:]
	s.epoch++
	s.counter = 0
}

// OTRForge constructs a message for a retired epoch using a revealed MAC
// key: it carries attacker-chosen ciphertext yet passes MAC verification
// for that epoch. Its existence is the repudiability argument — once keys
// are revealed, a transcript cannot prove authorship.
func OTRForge(epoch int, revealedMACKey, fakeCiphertext, iv []byte) *OTRMessage {
	return &OTRMessage{
		Epoch:      epoch,
		IV:         iv,
		Ciphertext: fakeCiphertext,
		MAC:        otrMAC(revealedMACKey, epoch, iv, fakeCiphertext),
	}
}

// VerifyTranscriptMessage is what a third party (judge) can check given a
// transcript message and a MAC key: whether the MAC validates. After
// reveal, forgeries validate too, so a positive answer attributes nothing.
func VerifyTranscriptMessage(m *OTRMessage, macKey []byte) bool {
	return m != nil && bytes.Equal(m.MAC, otrMAC(macKey, m.Epoch, m.IV, m.Ciphertext))
}
