package groupcomm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
)

func usenetMesh(t *testing.T, seed int64, n int) (*simnet.Network, []*UsenetServer) {
	t.Helper()
	nw := simnet.New(seed)
	srvs := make([]*UsenetServer, n)
	ids := make([]simnet.NodeID, n)
	for i := range srvs {
		srvs[i] = NewUsenetServer(nw.AddNode(), fmt.Sprintf("news%d", i))
		ids[i] = srvs[i].Node().ID()
	}
	for i, s := range srvs {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		s.SetPeers(peers)
	}
	return nw, srvs
}

func TestUsenetFullReplication(t *testing.T) {
	nw, srvs := usenetMesh(t, 1, 6)
	post := srvs[0].PostLocal("comp.misc", "alice", []byte("hello usenet"))
	nw.Run(time.Minute)
	for i, s := range srvs {
		if !s.Has(post.ID) {
			t.Errorf("server %d missing the article (flooding broken)", i)
		}
		if s.NumArticles() != 1 {
			t.Errorf("server %d has %d articles", i, s.NumArticles())
		}
	}
	// Any-server read works.
	if got := srvs[5].Group("comp.misc"); len(got) != 1 || got[0].Author != "alice" {
		t.Error("remote read failed")
	}
	if got := srvs[5].Group("other.group"); len(got) != 0 {
		t.Error("group filter leaked")
	}
}

func TestUsenetDedupAndRelayAccounting(t *testing.T) {
	nw, srvs := usenetMesh(t, 2, 4)
	post := srvs[0].PostLocal("g", "a", []byte("once"))
	nw.Run(time.Minute)
	// Duplicate reinjection must not double-store.
	srvs[1].accept(post, -1)
	if srvs[1].NumArticles() != 1 {
		t.Error("duplicate stored twice")
	}
	// Everyone stored exactly the wire size once.
	for i, s := range srvs {
		if s.BytesStored != int64(post.WireSize()) {
			t.Errorf("server %d stored %d bytes, want %d", i, s.BytesStored, post.WireSize())
		}
	}
	// The origin relayed to all 3 peers; receivers relay to everyone but
	// the sender (dedup suppresses the rest at delivery).
	if srvs[0].BytesRelayed != int64(3*post.WireSize()) {
		t.Errorf("origin relayed %d bytes", srvs[0].BytesRelayed)
	}
}

// TestUsenetCostScalesWithGlobalVolume pins the §3.2 collapse mechanism:
// per-server storage grows with total network activity even though each
// server's own users did nothing.
func TestUsenetCostScalesWithGlobalVolume(t *testing.T) {
	perServer := func(n int) int64 {
		nw, srvs := usenetMesh(t, 3, n)
		for i, s := range srvs {
			s.PostLocal("g", UserID(fmt.Sprintf("u%d", i)), []byte(fmt.Sprintf("unique body %d", i)))
		}
		nw.Run(time.Minute)
		return srvs[0].BytesStored // the idle observer pays too
	}
	small, large := perServer(4), perServer(16)
	if large < 3*small {
		t.Errorf("per-server cost should scale ~linearly with network size: %d vs %d", small, large)
	}
}

func TestUsenetPartitionedServerMissesTraffic(t *testing.T) {
	nw, srvs := usenetMesh(t, 4, 3)
	srvs[2].Node().Crash()
	post := srvs[0].PostLocal("g", "a", []byte("gone"))
	nw.Run(time.Minute)
	srvs[2].Node().Restart()
	nw.Run(time.Minute)
	if srvs[2].Has(post.ID) {
		t.Error("dead server should have missed the flood (no NNTP backfill modelled)")
	}
}
