package groupcomm

import (
	"sort"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// SocialPeer is one user in the socially-aware P2P model (PrPl, Persona,
// Lockr): there are no servers, every user runs a node, and data moves only
// along declared friendship edges. A peer accepts a post only if its author
// is a friend — the social-trust admission control that buys privacy at the
// cost of availability ("this comes at a price of reduced availability
// since nodes accept connections only from socially-trusted peers", §3.2).
//
// Propagation is push-to-friends at post time plus periodic anti-entropy
// with a random online friend, so two friends whose uptime never overlaps
// with the original push can still converge — if and when they are online
// together.
type SocialPeer struct {
	node    *simnet.Node
	rpc     *simnet.RPCNode
	user    UserID
	friends map[UserID]bool
	addrs   map[UserID]simnet.NodeID
	// posts[author] holds accepted posts, author ∈ friends ∪ {self}.
	posts map[UserID][]Post
	seen  map[cryptoutil.Hash]bool
	// sessions holds established double-ratchet sessions per peer for DMs.
	sessions map[UserID]*Ratchet
	inbox    []Post // decrypted DMs
	// RefusedNonFriend counts posts rejected by the trust check.
	RefusedNonFriend int
	syncEvery        time.Duration
}

// Wire kinds for the social P2P model.
const (
	msgSocialPost = "gc.social.post"
	msgSocialSync = "gc.social.sync" // anti-entropy digest
	msgSocialWant = "gc.social.want"
	msgSocialDM   = "gc.social.dm"
)

type socialPostMsg struct {
	From UserID
	Post Post
}

type socialSyncMsg struct {
	From UserID
	IDs  []cryptoutil.Hash
}

type socialWantMsg struct {
	From  UserID
	Posts []Post
}

type socialDM struct {
	From UserID
	Msg  *RatchetMsg
}

// NewSocialPeer creates a peer for user on node. syncEvery sets the
// anti-entropy period (0 disables).
func NewSocialPeer(node *simnet.Node, user UserID, syncEvery time.Duration) *SocialPeer {
	p := &SocialPeer{
		node:      node,
		rpc:       simnet.NewRPCNode(node),
		user:      user,
		friends:   map[UserID]bool{},
		addrs:     map[UserID]simnet.NodeID{},
		posts:     map[UserID][]Post{},
		seen:      map[cryptoutil.Hash]bool{},
		sessions:  map[UserID]*Ratchet{},
		syncEvery: syncEvery,
	}
	node.Handle(msgSocialPost, p.onPost)
	node.Handle(msgSocialSync, p.onSync)
	node.Handle(msgSocialWant, p.onWant)
	node.Handle(msgSocialDM, p.onDM)
	if syncEvery > 0 {
		p.scheduleSync()
	}
	return p
}

// User returns the peer's user ID.
func (p *SocialPeer) User() UserID { return p.user }

// Node returns the peer's simnet node.
func (p *SocialPeer) Node() *simnet.Node { return p.node }

// Befriend declares a (unidirectional) friend edge toward other; call on
// both peers for mutual friendship.
func (p *SocialPeer) Befriend(other UserID, addr simnet.NodeID) {
	p.friends[other] = true
	p.addrs[other] = addr
}

// IsFriend reports whether u is a declared friend.
func (p *SocialPeer) IsFriend(u UserID) bool { return p.friends[u] }

// NumFriends returns the friend count.
func (p *SocialPeer) NumFriends() int { return len(p.friends) }

// Publish stores a post locally and pushes it to all friends (in sorted
// order, so simulation runs stay deterministic despite map storage).
func (p *SocialPeer) Publish(room string, body []byte) Post {
	post := NewPost(room, p.user, body, p.node.Now())
	p.accept(post)
	for _, friend := range p.sortedFriends() {
		p.node.Send(p.addrs[friend], msgSocialPost, socialPostMsg{From: p.user, Post: post}, post.WireSize()+32)
	}
	return post
}

// sortedFriends returns friend IDs in stable order.
func (p *SocialPeer) sortedFriends() []UserID {
	out := make([]UserID, 0, len(p.addrs))
	for u := range p.addrs {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PostsBy returns accepted posts authored by u.
func (p *SocialPeer) PostsBy(u UserID) []Post { return p.posts[u] }

// Has reports whether the peer holds the post.
func (p *SocialPeer) Has(id cryptoutil.Hash) bool { return p.seen[id] }

// accept stores a post if it passes the trust check.
func (p *SocialPeer) accept(post Post) bool {
	if post.Author != p.user && !p.friends[post.Author] {
		p.RefusedNonFriend++
		return false
	}
	if p.seen[post.ID] {
		return false
	}
	p.seen[post.ID] = true
	p.posts[post.Author] = append(p.posts[post.Author], post)
	return true
}

func (p *SocialPeer) onPost(msg simnet.Message) {
	m, ok := msg.Payload.(socialPostMsg)
	if !ok {
		return
	}
	// Admission control: the *sender* must be a friend, and accept()
	// re-checks the author.
	if !p.friends[m.From] {
		p.RefusedNonFriend++
		return
	}
	p.accept(m.Post)
}

func (p *SocialPeer) scheduleSync() {
	// Node-local timer, so a skewed device clock syncs early or late.
	period := p.syncEvery
	jit := time.Duration(p.node.Rand().Int63n(int64(period)/2)) - period/4
	p.node.After(period+jit, func() {
		if p.node.Up() && len(p.addrs) > 0 {
			// Pick one random friend (from a sorted list, for determinism)
			// and exchange digests.
			keys := p.sortedFriends()
			friend := keys[p.node.Rand().Intn(len(keys))]
			ids := make([]cryptoutil.Hash, 0, len(p.seen))
			for id := range p.seen {
				ids = append(ids, id)
			}
			p.node.Send(p.addrs[friend], msgSocialSync, socialSyncMsg{From: p.user, IDs: ids}, 32+32*len(ids))
		}
		p.scheduleSync()
	})
}

func (p *SocialPeer) onSync(msg simnet.Message) {
	m, ok := msg.Payload.(socialSyncMsg)
	if !ok || !p.friends[m.From] {
		return
	}
	theirs := make(map[cryptoutil.Hash]bool, len(m.IDs))
	for _, id := range m.IDs {
		theirs[id] = true
	}
	// Send posts they lack. We cannot know the requester's friend list, so
	// we send everything we hold and let their trust check filter; we only
	// hold friend-authored posts ourselves, so the overshare is bounded.
	var missing []Post
	size := 32
	authors := make([]UserID, 0, len(p.posts))
	for a := range p.posts {
		authors = append(authors, a)
	}
	sort.Slice(authors, func(i, j int) bool { return authors[i] < authors[j] })
	for _, a := range authors {
		for _, post := range p.posts[a] {
			if !theirs[post.ID] {
				missing = append(missing, post)
				size += post.WireSize()
			}
		}
	}
	if len(missing) > 0 {
		p.node.Send(msg.From, msgSocialWant, socialWantMsg{From: p.user, Posts: missing}, size)
	}
}

func (p *SocialPeer) onWant(msg simnet.Message) {
	m, ok := msg.Payload.(socialWantMsg)
	if !ok || !p.friends[m.From] {
		return
	}
	for _, post := range m.Posts {
		p.accept(post)
	}
}

// SetSession installs an established double-ratchet session for DMs with
// peer (session establishment — key exchange — happens out of band via the
// identity/naming layers).
func (p *SocialPeer) SetSession(peer UserID, r *Ratchet) { p.sessions[peer] = r }

// SendDM encrypts plaintext to friend and sends it directly. Returns false
// if there is no session or no friendship.
func (p *SocialPeer) SendDM(friend UserID, plaintext []byte) bool {
	sess, ok := p.sessions[friend]
	if !ok || !p.friends[friend] {
		return false
	}
	msg, err := sess.Encrypt(plaintext, []byte(p.user))
	if err != nil {
		return false
	}
	return p.node.Send(p.addrs[friend], msgSocialDM, socialDM{From: p.user, Msg: msg}, msg.WireSize()+16)
}

func (p *SocialPeer) onDM(msg simnet.Message) {
	m, ok := msg.Payload.(socialDM)
	if !ok || !p.friends[m.From] {
		return
	}
	sess, ok := p.sessions[m.From]
	if !ok {
		return
	}
	pt, err := sess.Decrypt(m.Msg, []byte(m.From))
	if err != nil {
		return
	}
	p.inbox = append(p.inbox, NewPost("dm", m.From, pt, p.node.Now()))
}

// Inbox returns decrypted direct messages received so far.
func (p *SocialPeer) Inbox() []Post { return p.inbox }
