package groupcomm

import (
	"sort"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/gossip"
	"repro/internal/simnet"
)

// Matrix-style replicated room state. §3.2: "every application built on
// Matrix can define its own abuse moderation policies and implement them
// on the application level." Rooms are event logs replicated across
// participating servers; membership, power levels, redactions, and
// messages are all events, and every server derives the same room state
// from the same event set by deterministic resolution (sort by timestamp,
// then event ID) — so moderation decisions replicate exactly like content.

// Room event types.
const (
	EvCreate  = "m.create"  // fixes the creator; first event of the room
	EvMember  = "m.member"  // Target joins/leaves/banned (Membership)
	EvPower   = "m.power"   // set Target's power level
	EvMessage = "m.message" // ordinary message (Body)
	EvRedact  = "m.redact"  // strike an earlier event (Redacts)
)

// Membership values.
const (
	MemberJoin  = "join"
	MemberLeave = "leave"
	MemberBan   = "ban"
)

// RoomEvent is one entry in a room's replicated log.
type RoomEvent struct {
	ID         cryptoutil.Hash
	Room       string
	Type       string
	Sender     UserID
	Target     UserID
	Membership string
	Power      int
	Body       []byte
	Redacts    cryptoutil.Hash
	Time       time.Duration
}

// NewRoomEvent builds an event with a content-derived ID.
func NewRoomEvent(room, typ string, sender UserID, mutate func(*RoomEvent), now time.Duration) RoomEvent {
	ev := RoomEvent{Room: room, Type: typ, Sender: sender, Time: now}
	if mutate != nil {
		mutate(&ev)
	}
	var ts [8]byte
	for i := 0; i < 8; i++ {
		ts[i] = byte(uint64(now) >> (8 * i))
	}
	ev.ID = cryptoutil.SumHashes([]byte(room), []byte(typ), []byte(sender), []byte(ev.Target),
		[]byte(ev.Membership), ev.Body, ev.Redacts[:], ts[:], []byte{byte(ev.Power)})
	return ev
}

// WireSize returns the simulated size in bytes.
func (ev RoomEvent) WireSize() int {
	return 96 + len(ev.Room) + len(ev.Sender) + len(ev.Target) + len(ev.Body)
}

// RoomState is the deterministic fold of a room's events.
type RoomState struct {
	Creator  UserID
	Members  map[UserID]string // user -> join/leave/ban
	Power    map[UserID]int
	Redacted map[cryptoutil.Hash]bool
	// Rejected counts events that violated the room's rules.
	Rejected int
}

// powerOf returns a user's power (creator defaults to 100, members to 0).
func (st *RoomState) powerOf(u UserID) int {
	if p, ok := st.Power[u]; ok {
		return p
	}
	if u == st.Creator {
		return 100
	}
	return 0
}

// Joined reports whether u is currently a joined member.
func (st *RoomState) Joined(u UserID) bool { return st.Members[u] == MemberJoin }

// modPower is the power level required to ban, set power, or redact
// others' events (Matrix's default moderator level).
const modPower = 50

// ComputeRoomState folds events (any order) into room state. Resolution is
// deterministic: events sort by (Time, ID) before replay, so every server
// holding the same event set derives identical state.
func ComputeRoomState(events []RoomEvent) *RoomState {
	sorted := append([]RoomEvent{}, events...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return lessHash32(sorted[i].ID, sorted[j].ID)
	})
	st := &RoomState{
		Members:  map[UserID]string{},
		Power:    map[UserID]int{},
		Redacted: map[cryptoutil.Hash]bool{},
	}
	for _, ev := range sorted {
		if !st.apply(ev) {
			st.Rejected++
		}
	}
	return st
}

func (st *RoomState) apply(ev RoomEvent) bool {
	switch ev.Type {
	case EvCreate:
		if st.Creator != "" {
			return false // only the first create counts
		}
		st.Creator = ev.Sender
		st.Members[ev.Sender] = MemberJoin
		st.Power[ev.Sender] = 100
		return true

	case EvMember:
		switch ev.Membership {
		case MemberJoin:
			// Public room: anyone not banned may join themselves.
			if ev.Sender != ev.Target || st.Members[ev.Target] == MemberBan {
				return false
			}
			st.Members[ev.Target] = MemberJoin
			return true
		case MemberLeave:
			if ev.Sender != ev.Target || !st.Joined(ev.Target) {
				return false
			}
			st.Members[ev.Target] = MemberLeave
			return true
		case MemberBan:
			// Moderation: requires mod power and strictly more power than
			// the target ("define their own rules on abuse").
			if st.powerOf(ev.Sender) < modPower || st.powerOf(ev.Sender) <= st.powerOf(ev.Target) {
				return false
			}
			st.Members[ev.Target] = MemberBan
			return true
		}
		return false

	case EvPower:
		// Only strictly more powerful members may set another's level, and
		// never above their own.
		if !st.Joined(ev.Sender) || st.powerOf(ev.Sender) < modPower {
			return false
		}
		if ev.Power > st.powerOf(ev.Sender) || st.powerOf(ev.Target) >= st.powerOf(ev.Sender) && ev.Sender != ev.Target {
			return false
		}
		st.Power[ev.Target] = ev.Power
		return true

	case EvMessage:
		return st.Joined(ev.Sender)

	case EvRedact:
		// Moderators may redact anything; authors their own messages —
		// but author lookup needs the event log, so the fold only enforces
		// the moderator path; VisibleMessages honours author self-redaction.
		if st.powerOf(ev.Sender) < modPower {
			return false
		}
		st.Redacted[ev.Redacts] = true
		return true
	}
	return false
}

func lessHash32(a, b cryptoutil.Hash) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// VisibleMessages returns the room's messages after state resolution:
// only messages from users who were accepted members, minus redactions,
// in deterministic order.
func VisibleMessages(events []RoomEvent) []RoomEvent {
	st := ComputeRoomState(events)
	sorted := append([]RoomEvent{}, events...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return lessHash32(sorted[i].ID, sorted[j].ID)
	})
	var out []RoomEvent
	// Replay memberships alongside to honour join/leave timing.
	replay := &RoomState{Members: map[UserID]string{}, Power: map[UserID]int{}, Redacted: map[cryptoutil.Hash]bool{}}
	for _, ev := range sorted {
		ok := replay.apply(ev)
		if ev.Type == EvMessage && ok && !st.Redacted[ev.ID] {
			out = append(out, ev)
		}
	}
	return out
}

// ReplRoom binds the room log to a gossip member so every participating
// server replicates events and derives identical state.
type ReplRoom struct {
	room   string
	member *gossip.Member
	events []RoomEvent
}

// NewReplRoom joins a server's gossip member to a room log.
func NewReplRoom(member *gossip.Member, room string) *ReplRoom {
	r := &ReplRoom{room: room, member: member}
	member.OnDeliver(func(it gossip.Item) {
		if ev, ok := it.Data.(RoomEvent); ok && ev.Room == room {
			r.events = append(r.events, ev)
		}
	})
	return r
}

// Emit publishes an event into the replicated log.
func (r *ReplRoom) Emit(typ string, sender UserID, mutate func(*RoomEvent)) RoomEvent {
	ev := NewRoomEvent(r.room, typ, sender, mutate, r.member.Node().Now())
	r.member.Publish(gossip.Item{ID: ev.ID, Data: ev, Size: ev.WireSize()})
	return ev
}

// State derives the current room state from replicated events.
func (r *ReplRoom) State() *RoomState { return ComputeRoomState(r.events) }

// Messages derives the visible message log.
func (r *ReplRoom) Messages() []RoomEvent { return VisibleMessages(r.events) }

// NumEvents returns how many room events this server has replicated.
func (r *ReplRoom) NumEvents() int { return len(r.events) }

// Node returns the underlying simnet node (for failure injection).
func (r *ReplRoom) Node() *simnet.Node { return r.member.Node() }
