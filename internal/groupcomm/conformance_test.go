package groupcomm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// socialConformanceRun drives a fully-befriended social mesh through one
// fault scenario while the anchor keeps posting, and returns the fraction
// of (peer, post) pairs delivered by the end. Periodic friend-sync is the
// repair path: peers that were down or cut off must pull missed posts.
func socialConformanceRun(t testing.TB, seed int64, sc fault.Scenario) float64 {
	t.Helper()
	const (
		nPeers  = 10
		nPosts  = 8
		horizon = 30 * time.Minute
	)
	nw := simnet.New(seed)
	peers := make([]*SocialPeer, nPeers)
	for i := range peers {
		peers[i] = NewSocialPeer(nw.AddNode(), userName(i), 30*time.Second)
	}
	for i, p := range peers {
		for j, q := range peers {
			if i != j {
				p.Befriend(q.User(), q.Node().ID())
			}
		}
	}

	// Peer 0 is the anchor author; the rest are fault-eligible.
	eligible := make([]simnet.NodeID, 0, nPeers-1)
	for _, p := range peers[1:] {
		eligible = append(eligible, p.Node().ID())
	}
	sc.Build(seed, eligible, horizon).Apply(nw)

	for i := 0; i < nPosts; i++ {
		i := i
		nw.Schedule(time.Duration(i)*horizon/(2*nPosts), func() {
			peers[0].Publish("lobby", []byte(fmt.Sprintf("post %d", i)))
		})
	}
	nw.Run(horizon)

	author := peers[0].User()
	have, total := 0, 0
	for _, p := range peers[1:] {
		total += nPosts
		have += len(p.PostsBy(author))
	}
	return float64(have) / float64(total)
}

// TestSocialRecoveryConformance: posts published while friends were down,
// partitioned, or on garbage links must all be delivered by the end of the
// run — eventual delivery via sync is the invariant.
func TestSocialRecoveryConformance(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if got := socialConformanceRun(t, 404, sc); got < 1.0 {
				t.Errorf("post delivery ratio %.3f after recovery window, want 1.0", got)
			}
		})
	}
}

// TestSocialConformanceDeterministic: the delivery ratio is a pure function
// of the seed.
func TestSocialConformanceDeterministic(t *testing.T) {
	sc, _ := fault.ByName("flash-partition")
	if a, b := socialConformanceRun(t, 99, sc), socialConformanceRun(t, 99, sc); a != b {
		t.Errorf("same seed gave different ratios: %v vs %v", a, b)
	}
}
