package groupcomm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/gossip"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// socialConformanceRun drives a fully-befriended social mesh through one
// fault scenario while the anchor keeps posting, and returns the fraction
// of (peer, post) pairs delivered by the end. Periodic friend-sync is the
// repair path: peers that were down or cut off must pull missed posts.
func socialConformanceRun(t testing.TB, seed int64, sc fault.Scenario) float64 {
	t.Helper()
	const (
		nPeers  = 10
		nPosts  = 8
		horizon = 30 * time.Minute
	)
	nw := simnet.New(seed)
	peers := make([]*SocialPeer, nPeers)
	for i := range peers {
		peers[i] = NewSocialPeer(nw.AddNode(), userName(i), 30*time.Second)
	}
	for i, p := range peers {
		for j, q := range peers {
			if i != j {
				p.Befriend(q.User(), q.Node().ID())
			}
		}
	}

	// Peer 0 is the anchor author; the rest are fault-eligible.
	eligible := make([]simnet.NodeID, 0, nPeers-1)
	for _, p := range peers[1:] {
		eligible = append(eligible, p.Node().ID())
	}
	sc.Build(seed, eligible, horizon).Apply(nw)

	for i := 0; i < nPosts; i++ {
		i := i
		nw.Schedule(time.Duration(i)*horizon/(2*nPosts), func() {
			peers[0].Publish("lobby", []byte(fmt.Sprintf("post %d", i)))
		})
	}
	nw.Run(horizon)

	author := peers[0].User()
	have, total := 0, 0
	for _, p := range peers[1:] {
		total += nPosts
		have += len(p.PostsBy(author))
	}
	return float64(have) / float64(total)
}

// TestSocialRecoveryConformance: posts published while friends were down,
// partitioned, or on garbage links must all be delivered by the end of the
// run — eventual delivery via sync is the invariant.
func TestSocialRecoveryConformance(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if got := socialConformanceRun(t, 404, sc); got < 1.0 {
				t.Errorf("post delivery ratio %.3f after recovery window, want 1.0", got)
			}
		})
	}
}

// TestSocialConformanceDeterministic: the delivery ratio is a pure function
// of the seed.
func TestSocialConformanceDeterministic(t *testing.T) {
	sc, _ := fault.ByName("flash-partition")
	if a, b := socialConformanceRun(t, 99, sc), socialConformanceRun(t, 99, sc); a != b {
		t.Errorf("same seed gave different ratios: %v vs %v", a, b)
	}
}

// replMidFaultRun measures federation availability during the fault
// window: a resilient failover client fetches the room timeline at a
// fixed cadence while every replica server is fault-eligible, and a probe
// counts as available iff the fetch returns the pre-fault posts within
// the 8s SLA.
func replMidFaultRun(t testing.TB, seed int64, sc fault.Scenario, rcfg resil.Config) float64 {
	t.Helper()
	const (
		nServers = 6
		nProbes  = 8
		horizon  = 30 * time.Minute
		sla      = 8 * time.Second
	)
	nw := simnet.New(seed)
	servers := make([]*ReplServer, nServers)
	ids := make([]simnet.NodeID, nServers)
	for i := range servers {
		servers[i] = NewReplServer(nw.AddNode(), fmt.Sprintf("srv%d", i), nil,
			gossip.Config{Fanout: 3, AntiEntropyInterval: 30 * time.Second})
		ids[i] = servers[i].Node().ID()
	}
	for i, s := range servers {
		peers := make([]simnet.NodeID, 0, nServers-1)
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		s.SetPeers(peers)
	}
	client := NewReplClientWith(nw.AddNode(), ids[0], ids[1:], "alice", 10*time.Second, rcfg)
	for i := 0; i < 4; i++ {
		i := i
		nw.After(time.Duration(i+1)*10*time.Second, func() {
			client.Post("lobby", []byte(fmt.Sprintf("pre-fault %d", i)), func(bool) {})
		})
	}
	nw.Run(2 * time.Minute)

	start := nw.Now()
	plan := sc.Build(seed, ids, horizon)
	plan.ApplyAt(nw, start)
	ws, we := plan.Start(), plan.End()
	if we <= ws { // clean plan: probe the whole horizon
		ws, we = 0, horizon
	}

	ok, total := 0, 0
	for i := 0; i < nProbes; i++ {
		total++
		nw.Schedule(start+ws+time.Duration(i)*(we-ws)/nProbes, func() {
			launched := nw.Now()
			client.Fetch("lobby", func(posts []Post, good bool) {
				if good && len(posts) > 0 && nw.Now()-launched <= sla {
					ok++
				}
			})
		})
	}
	nw.Run(start + horizon)
	return float64(ok) / float64(total)
}

// TestReplMidFaultAvailability: with the resilience layer on, timeline
// reads must keep succeeding at the per-scenario floor while the replica
// fleet is actively under fault — server-list failover and transport
// retries together are the mechanism under test.
func TestReplMidFaultAvailability(t *testing.T) {
	floors := map[string]float64{
		"clean":           1.0,
		"lossy-edge":      0.75,
		"flash-partition": 0.5,
		"rolling-churn":   0.75,
		"corrupt-10pct":   0.75,
	}
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			got := replMidFaultRun(t, 409, sc, resil.Defaults())
			if floor := floors[sc.Name]; got < floor {
				t.Errorf("mid-fault fetch availability %.2f below floor %.2f", got, floor)
			}
			t.Logf("mid-fault availability %.2f", got)
		})
	}
}
