package groupcomm

import (
	"math/rand"
	"testing"

	"repro/internal/cryptoutil"
)

func personaSetup(t *testing.T) (*rand.Rand, *AccessGroup, map[UserID]*cryptoutil.DHKeyPair) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	ownerDH, err := cryptoutil.GenerateDHKeyPair(rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewAccessGroup(rng, "friends", ownerDH)
	if err != nil {
		t.Fatal(err)
	}
	members := map[UserID]*cryptoutil.DHKeyPair{}
	for _, u := range []UserID{"bob", "carol"} {
		kp, err := cryptoutil.GenerateDHKeyPair(rng)
		if err != nil {
			t.Fatal(err)
		}
		members[u] = kp
		if err := g.AddMember(u, kp.Public); err != nil {
			t.Fatal(err)
		}
	}
	return rng, g, members
}

func TestPersonaMemberReadsPrivatePost(t *testing.T) {
	rng, g, members := personaSetup(t)
	post, err := g.EncryptPost(rng, []byte("friends only: party saturday"))
	if err != nil {
		t.Fatal(err)
	}
	wrapped, ok := g.WrappedKeyFor("bob")
	if !ok {
		t.Fatal("no wrapped key for member")
	}
	key, err := UnwrapGroupKey(members["bob"], g.OwnerPub(), g.Name, g.Generation(), wrapped)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := DecryptPost(key, g.Name, post)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "friends only: party saturday" {
		t.Errorf("pt = %q", pt)
	}
	if g.Members() != 2 {
		t.Errorf("members = %d", g.Members())
	}
}

func TestPersonaNonMemberCannotRead(t *testing.T) {
	rng, g, _ := personaSetup(t)
	post, _ := g.EncryptPost(rng, []byte("secret"))
	mallory, _ := cryptoutil.GenerateDHKeyPair(rng)
	// Mallory grabs bob's wrapped key from the wire but has her own DH key.
	wrapped, _ := g.WrappedKeyFor("bob")
	if _, err := UnwrapGroupKey(mallory, g.OwnerPub(), g.Name, g.Generation(), wrapped); err == nil {
		t.Fatal("non-member unwrapped the group key")
	}
	// Guessing a key fails to decrypt.
	junk := make([]byte, 32)
	if _, err := DecryptPost(junk, g.Name, post); err == nil {
		t.Fatal("junk key decrypted the post")
	}
	if _, err := DecryptPost(junk, g.Name, nil); err == nil {
		t.Fatal("nil post accepted")
	}
}

func TestPersonaRevocationRotatesKey(t *testing.T) {
	rng, g, members := personaSetup(t)
	// Bob reads generation-1 content.
	oldPost, _ := g.EncryptPost(rng, []byte("old news"))
	oldWrapped, _ := g.WrappedKeyFor("bob")
	oldGen := g.Generation()
	oldKey, err := UnwrapGroupKey(members["bob"], g.OwnerPub(), g.Name, oldGen, oldWrapped)
	if err != nil {
		t.Fatal(err)
	}

	// Bob is removed: key rotates, carol gets re-wrapped, bob does not.
	if err := g.Remove(rng, "bob"); err != nil {
		t.Fatal(err)
	}
	if g.Generation() != oldGen+1 || g.Members() != 1 {
		t.Fatalf("generation=%d members=%d", g.Generation(), g.Members())
	}
	if _, ok := g.WrappedKeyFor("bob"); ok {
		t.Fatal("revoked member still has a wrapped key")
	}
	newPost, _ := g.EncryptPost(rng, []byte("bob-free zone"))

	// Bob's old key cannot open new posts.
	if _, err := DecryptPost(oldKey, g.Name, newPost); err == nil {
		t.Fatal("revoked member read a post-revocation post")
	}
	// The documented caveat: old content stays readable with the old key.
	if pt, err := DecryptPost(oldKey, g.Name, oldPost); err != nil || string(pt) != "old news" {
		t.Fatalf("old-generation read: %v %q", err, pt)
	}
	// Carol reads the new generation fine.
	carolWrapped, _ := g.WrappedKeyFor("carol")
	carolKey, err := UnwrapGroupKey(members["carol"], g.OwnerPub(), g.Name, g.Generation(), carolWrapped)
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := DecryptPost(carolKey, g.Name, newPost); err != nil || string(pt) != "bob-free zone" {
		t.Fatalf("surviving member read: %v %q", err, pt)
	}
	// Removing a non-member errors.
	if err := g.Remove(rng, "nobody"); err == nil {
		t.Fatal("removing non-member succeeded")
	}
}

func TestPersonaDistinctGroupsDistinctKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	ownerDH, _ := cryptoutil.GenerateDHKeyPair(rng)
	friends, _ := NewAccessGroup(rng, "friends", ownerDH)
	family, _ := NewAccessGroup(rng, "family", ownerDH)
	memberDH, _ := cryptoutil.GenerateDHKeyPair(rng)
	friends.AddMember("bob", memberDH.Public)
	family.AddMember("bob", memberDH.Public)

	post, _ := friends.EncryptPost(rng, []byte("friends message"))
	famWrapped, _ := family.WrappedKeyFor("bob")
	famKey, err := UnwrapGroupKey(memberDH, family.OwnerPub(), "family", family.Generation(), famWrapped)
	if err != nil {
		t.Fatal(err)
	}
	// A family key must not open friends content (AD binds group name and
	// keys differ).
	if _, err := DecryptPost(famKey, "friends", post); err == nil {
		t.Fatal("cross-group decryption succeeded")
	}
}
