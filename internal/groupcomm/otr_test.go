package groupcomm

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/cryptoutil"
)

func otrPair(t testing.TB, seed int64) (*OTRSession, *OTRSession) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	secret := cryptoutil.HKDF([]byte("otr shared"), nil, nil, 32)
	return NewOTRPairHelper(rng, secret)
}

// NewOTRPairHelper mirrors NewOTRPair for tests (kept separate so the test
// reads as the API consumer would).
func NewOTRPairHelper(rng *rand.Rand, secret []byte) (*OTRSession, *OTRSession) {
	return NewOTRPair(rng, secret)
}

func TestOTRBasicExchange(t *testing.T) {
	alice, bob := otrPair(t, 1)
	m, err := alice.Send([]byte("off the record"))
	if err != nil {
		t.Fatal(err)
	}
	if m.WireSize() <= 0 {
		t.Error("wire size")
	}
	pt, err := bob.Receive(m)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "off the record" {
		t.Errorf("pt = %q", pt)
	}
	// Reply in the other direction.
	r, _ := bob.Send([]byte("understood"))
	pt, err = alice.Receive(r)
	if err != nil || string(pt) != "understood" {
		t.Fatalf("reply: %v %q", err, pt)
	}
}

func TestOTRTamperDetectedOnline(t *testing.T) {
	alice, bob := otrPair(t, 2)
	m, _ := alice.Send([]byte("authentic"))
	m.Ciphertext[0] ^= 0xff
	if _, err := bob.Receive(m); err == nil {
		t.Error("online tampering accepted")
	}
	if _, err := bob.Receive(nil); err == nil {
		t.Error("nil message accepted")
	}
	// Future epoch rejected.
	m2, _ := alice.Send([]byte("x"))
	m2.Epoch = 9
	if _, err := bob.Receive(m2); err == nil {
		t.Error("future epoch accepted")
	}
}

func TestOTRRekeyRevealsAndOldEpochStillReadable(t *testing.T) {
	alice, bob := otrPair(t, 3)
	m0, _ := alice.Send([]byte("epoch zero"))
	if _, err := bob.Receive(m0); err != nil {
		t.Fatal(err)
	}

	// Both sides re-key (the protocol driver coordinates this).
	alice.Rekey()
	bob.Rekey()
	if alice.Epoch() != 1 || bob.Epoch() != 1 {
		t.Fatal("epochs did not advance")
	}
	m1, _ := alice.Send([]byte("epoch one"))
	if len(m1.RevealedMACKeys) != 1 {
		t.Fatalf("revealed %d keys, want 1", len(m1.RevealedMACKeys))
	}
	if _, err := bob.Receive(m1); err != nil {
		t.Fatal(err)
	}
	// Bob now publicly knows epoch 0's MAC key.
	if _, ok := bob.RevealedMACKey(0); !ok {
		t.Fatal("revealed key not recorded")
	}
	// A straggler message from epoch 0 still decrypts.
	late, _ := func() (*OTRMessage, error) {
		// craft from alice's old keys via a second pair is complex; instead
		// send before rekey in a fresh pair to simulate reordering:
		a2, b2 := otrPair(t, 3)
		m, err := a2.Send([]byte("late epoch zero"))
		_ = b2
		return m, err
	}()
	if pt, err := bob.Receive(late); err != nil || string(pt) != "late epoch zero" {
		t.Fatalf("late message: %v %q", err, pt)
	}
}

// TestOTRForgeabilityMakesTranscriptsDeniable is the §3.2 property: after
// key reveal, a judge cannot distinguish authentic transcript messages
// from forgeries.
func TestOTRForgeabilityMakesTranscriptsDeniable(t *testing.T) {
	alice, bob := otrPair(t, 4)
	authentic, _ := alice.Send([]byte("I said this"))
	if _, err := bob.Receive(authentic); err != nil {
		t.Fatal(err)
	}
	alice.Rekey()
	bob.Rekey()
	m1, _ := alice.Send([]byte("new epoch"))
	if _, err := bob.Receive(m1); err != nil {
		t.Fatal(err)
	}
	revealed, ok := bob.RevealedMACKey(0)
	if !ok {
		t.Fatal("no revealed key")
	}

	// The judge validates the authentic message... and the forgery.
	if !VerifyTranscriptMessage(authentic, revealed) {
		t.Fatal("authentic message fails judge verification")
	}
	forged := OTRForge(0, revealed, []byte("totally different ciphertext"), authentic.IV)
	if !VerifyTranscriptMessage(forged, revealed) {
		t.Fatal("forgery fails judge verification — repudiability broken")
	}
	// Hence a passing MAC attributes nothing: both validate identically.
}

func TestOTRMultipleRekeysRevealAllRetiredKeys(t *testing.T) {
	alice, bob := otrPair(t, 5)
	for i := 0; i < 3; i++ {
		alice.Rekey()
		bob.Rekey()
	}
	m, _ := alice.Send([]byte("after three rekeys"))
	if len(m.RevealedMACKeys) != 3 {
		t.Fatalf("revealed %d, want 3", len(m.RevealedMACKeys))
	}
	if _, err := bob.Receive(m); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if _, ok := bob.RevealedMACKey(e); !ok {
			t.Errorf("epoch %d key not revealed", e)
		}
	}
	// Distinct epochs must have distinct keys.
	k0, _ := bob.RevealedMACKey(0)
	k1, _ := bob.RevealedMACKey(1)
	if bytes.Equal(k0, k1) {
		t.Error("epoch keys identical")
	}
}

func TestOTRCiphertextsDifferAcrossMessages(t *testing.T) {
	alice, _ := otrPair(t, 6)
	a, _ := alice.Send([]byte("same plaintext"))
	b, _ := alice.Send([]byte("same plaintext"))
	if bytes.Equal(a.Ciphertext, b.Ciphertext) {
		t.Error("CTR counter not advancing")
	}
}
