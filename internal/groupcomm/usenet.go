package groupcomm

import (
	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// UsenetServer models the §3.2 historical baseline: "Usenet, one of the
// oldest messaging platforms on the Internet, offered a decentralized
// (federated), distributed online forum … Usenet eventually collapsed
// under its own traffic load." The defining property is full flooding:
// every article posted anywhere is relayed to and stored by every server,
// so each operator's storage and transit cost scales with *global* volume
// rather than local interest. Experiment X8 measures exactly that growth
// against the follower-scoped federated-home model.
type UsenetServer struct {
	node     *simnet.Node
	name     string
	peers    []simnet.NodeID
	articles map[cryptoutil.Hash]Post
	// BytesStored accumulates the payload bytes this server retains.
	BytesStored int64
	// BytesRelayed accumulates the payload bytes this server forwarded.
	BytesRelayed int64
}

const msgUsenetArticle = "gc.usenet.article"

// NewUsenetServer starts a news server on node.
func NewUsenetServer(node *simnet.Node, name string) *UsenetServer {
	s := &UsenetServer{
		node:     node,
		name:     name,
		articles: map[cryptoutil.Hash]Post{},
	}
	node.Handle(msgUsenetArticle, s.onArticle)
	return s
}

// Name returns the server name.
func (s *UsenetServer) Name() string { return s.name }

// Node returns the underlying simnet node.
func (s *UsenetServer) Node() *simnet.Node { return s.node }

// SetPeers wires the NNTP feed topology (typically a dense mesh).
func (s *UsenetServer) SetPeers(peers []simnet.NodeID) { s.peers = peers }

// NumArticles returns how many articles this server carries.
func (s *UsenetServer) NumArticles() int { return len(s.articles) }

// Has reports whether an article is present.
func (s *UsenetServer) Has(id cryptoutil.Hash) bool { _, ok := s.articles[id]; return ok }

// PostLocal accepts an article from a locally connected user and floods it
// to every peer.
func (s *UsenetServer) PostLocal(group string, author UserID, body []byte) Post {
	p := NewPost(group, author, body, s.node.Now())
	s.accept(p, -1)
	return p
}

// accept stores a new article and relays it everywhere except where it
// came from.
func (s *UsenetServer) accept(p Post, from simnet.NodeID) bool {
	if _, ok := s.articles[p.ID]; ok {
		return false
	}
	s.articles[p.ID] = p
	s.BytesStored += int64(p.WireSize())
	for _, peer := range s.peers {
		if peer == from || peer == s.node.ID() {
			continue
		}
		if s.node.Send(peer, msgUsenetArticle, p, p.WireSize()) {
			s.BytesRelayed += int64(p.WireSize())
		}
	}
	return true
}

func (s *UsenetServer) onArticle(msg simnet.Message) {
	p, ok := msg.Payload.(Post)
	if !ok {
		return
	}
	s.accept(p, msg.From)
}

// Group returns the stored articles of one newsgroup, any-server read —
// the upside of full replication.
func (s *UsenetServer) Group(group string) []Post {
	var out []Post
	for _, p := range s.articles {
		if p.Room == group {
			out = append(out, p)
		}
	}
	return out
}
