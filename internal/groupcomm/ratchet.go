package groupcomm

import (
	"crypto/ecdh"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cryptoutil"
)

// Double ratchet (Perrin & Marlinspike) built on X25519 + HMAC-SHA256 +
// AES-256-GCM, stdlib only. §3.2: "Matrix … ensures privacy by using
// end-to-end encryption techniques like the double ratchet algorithm."
// Sessions provide forward secrecy (old keys are destroyed each step) and
// post-compromise security (a DH ratchet step heals a leaked state), and
// tolerate out-of-order delivery via bounded skipped-key storage.

const maxSkippedKeys = 256

// RatchetMsg is one encrypted message: the ratchet header plus ciphertext.
type RatchetMsg struct {
	DHPub      []byte // sender's current ratchet public key (32 bytes)
	PN         uint32 // length of sender's previous sending chain
	N          uint32 // message number in current sending chain
	Ciphertext []byte
}

// WireSize returns the simulated size in bytes.
func (m *RatchetMsg) WireSize() int { return 32 + 8 + len(m.Ciphertext) }

func (m *RatchetMsg) header() []byte {
	buf := make([]byte, 0, 40)
	buf = append(buf, m.DHPub...)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], m.PN)
	buf = append(buf, n[:]...)
	binary.BigEndian.PutUint32(n[:], m.N)
	buf = append(buf, n[:]...)
	return buf
}

type skippedKey struct {
	dhPub string
	n     uint32
}

// Ratchet is one endpoint of a double-ratchet session.
type Ratchet struct {
	rand    io.Reader
	rk      []byte // root key
	dhs     *cryptoutil.DHKeyPair
	dhr     *ecdh.PublicKey
	cks     []byte // sending chain key
	ckr     []byte // receiving chain key
	ns, nr  uint32
	pn      uint32
	skipped map[skippedKey][]byte
}

func kdfRK(rk, dhOut []byte) (newRK, ck []byte) {
	out := cryptoutil.HKDF(dhOut, rk, []byte("double-ratchet-rk"), 64)
	return out[:32], out[32:]
}

func kdfCK(ck []byte) (newCK, mk []byte) {
	return cryptoutil.HMAC256(ck, []byte{0x02}), cryptoutil.HMAC256(ck, []byte{0x01})
}

// NewRatchetInitiator creates the session opener's state. sharedSecret is
// the out-of-band session secret (in the full system: derived from an
// X3DH-style handshake or the naming layer); remoteDH is the responder's
// published ratchet key.
func NewRatchetInitiator(rand io.Reader, sharedSecret []byte, remoteDH *ecdh.PublicKey) (*Ratchet, error) {
	dhs, err := cryptoutil.GenerateDHKeyPair(rand)
	if err != nil {
		return nil, err
	}
	dhOut, err := dhs.SharedSecret(remoteDH)
	if err != nil {
		return nil, err
	}
	rk, cks := kdfRK(sharedSecret, dhOut)
	return &Ratchet{
		rand:    rand,
		rk:      rk,
		dhs:     dhs,
		dhr:     remoteDH,
		cks:     cks,
		skipped: map[skippedKey][]byte{},
	}, nil
}

// NewRatchetResponder creates the responder's state from the same shared
// secret and its own pre-published ratchet pair.
func NewRatchetResponder(rand io.Reader, sharedSecret []byte, ownDH *cryptoutil.DHKeyPair) *Ratchet {
	return &Ratchet{
		rand:    rand,
		rk:      append([]byte{}, sharedSecret...),
		dhs:     ownDH,
		skipped: map[skippedKey][]byte{},
	}
}

// Encrypt advances the sending chain and encrypts plaintext, binding ad.
func (r *Ratchet) Encrypt(plaintext, ad []byte) (*RatchetMsg, error) {
	if r.cks == nil {
		return nil, errors.New("groupcomm: ratchet cannot send before receiving the first message")
	}
	var mk []byte
	r.cks, mk = kdfCK(r.cks)
	msg := &RatchetMsg{DHPub: r.dhs.Public.Bytes(), PN: r.pn, N: r.ns}
	r.ns++
	fullAD := append(append([]byte{}, ad...), msg.header()...)
	ct, err := cryptoutil.Seal(mk, nil, plaintext, fullAD)
	if err != nil {
		return nil, err
	}
	msg.Ciphertext = ct
	return msg, nil
}

// Decrypt processes a received message, performing DH ratchet steps and
// skipped-key handling as needed. As in the reference algorithm, chain
// state may advance past a message that later fails authentication; its
// stored skipped key allows a legitimate retransmission to still decrypt.
func (r *Ratchet) Decrypt(msg *RatchetMsg, ad []byte) ([]byte, error) {
	fullAD := append(append([]byte{}, ad...), msg.header()...)
	// 1. Try skipped message keys.
	sk := skippedKey{dhPub: string(msg.DHPub), n: msg.N}
	if mk, ok := r.skipped[sk]; ok {
		pt, err := cryptoutil.Open(mk, nil, msg.Ciphertext, fullAD)
		if err != nil {
			return nil, err
		}
		delete(r.skipped, sk)
		return pt, nil
	}
	// 2. New remote ratchet key → skip remainder of old chain, DH step.
	if r.dhr == nil || string(msg.DHPub) != string(r.dhr.Bytes()) {
		if err := r.skipKeys(msg.PN); err != nil {
			return nil, err
		}
		if err := r.dhStep(msg.DHPub); err != nil {
			return nil, err
		}
	}
	// 3. Skip forward within the current receiving chain.
	if err := r.skipKeys(msg.N); err != nil {
		return nil, err
	}
	var mk []byte
	r.ckr, mk = kdfCK(r.ckr)
	r.nr++
	return cryptoutil.Open(mk, nil, msg.Ciphertext, fullAD)
}

// skipKeys advances the receiving chain to message number until, storing
// the intermediate keys for out-of-order arrivals.
func (r *Ratchet) skipKeys(until uint32) error {
	if r.ckr == nil {
		return nil
	}
	if until > r.nr+maxSkippedKeys {
		return fmt.Errorf("groupcomm: ratchet gap of %d exceeds skipped-key bound", until-r.nr)
	}
	for r.nr < until {
		var mk []byte
		r.ckr, mk = kdfCK(r.ckr)
		if len(r.skipped) >= maxSkippedKeys {
			return errors.New("groupcomm: skipped-key store full")
		}
		r.skipped[skippedKey{dhPub: string(r.dhr.Bytes()), n: r.nr}] = mk
		r.nr++
	}
	return nil
}

// dhStep performs a full DH ratchet step on receiving a new remote key.
func (r *Ratchet) dhStep(remotePub []byte) error {
	pub, err := cryptoutil.ParseDHPublic(remotePub)
	if err != nil {
		return err
	}
	r.pn = r.ns
	r.ns, r.nr = 0, 0
	r.dhr = pub
	dhOut, err := r.dhs.SharedSecret(r.dhr)
	if err != nil {
		return err
	}
	r.rk, r.ckr = kdfRK(r.rk, dhOut)
	r.dhs, err = cryptoutil.GenerateDHKeyPair(r.rand)
	if err != nil {
		return err
	}
	dhOut, err = r.dhs.SharedSecret(r.dhr)
	if err != nil {
		return err
	}
	r.rk, r.cks = kdfRK(r.rk, dhOut)
	return nil
}
