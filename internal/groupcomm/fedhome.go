package groupcomm

import (
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// FederatedHome is the OStatus/Mastodon/GNU-social model: every user homes
// on exactly one instance; a post is accepted by the author's home
// instance, which pushes copies to each follower's instance. Reads are
// served only by the reader's own instance. There is no replication of an
// instance's authoritative state and no repair of missed pushes — if
// either endpoint instance is down at the wrong moment, the post is
// silently lost to that reader. Instances set their own moderation policies
// and may block ("defederate") other instances.

// FedInstance is one federation server.
type FedInstance struct {
	rpc  *simnet.RPCNode
	name string
	// users homed here.
	users map[UserID]bool
	// followers[author] lists instance names that asked for author's posts.
	followers map[UserID]map[string]bool
	// follows[user] lists who the user follows (for fan-in on reads).
	follows map[UserID]map[UserID]bool
	// received[author] caches posts pushed from remote instances.
	received map[UserID][]Post
	peers    map[string]simnet.NodeID
	policy   *ModerationPolicy
	blocked  map[string]bool // defederated instance names
	// Moderated counts posts this instance refused.
	Moderated int

	// Observability: federation-wide post/push/moderation totals.
	obsStored    *obs.Counter
	obsPushes    *obs.Counter
	obsModerated *obs.Counter
}

// RPC methods for the federated-home model.
const (
	methodFedPost   = "gc.fed.post"   // client -> home instance
	methodFedPush   = "gc.fed.push"   // instance -> follower instance
	methodFedRead   = "gc.fed.read"   // client -> own instance (timeline)
	methodFedFollow = "gc.fed.follow" // instance -> instance subscribe
)

type fedPostReq struct {
	Post Post
}

type fedPushReq struct {
	FromInstance string
	Post         Post
}

type fedFollowReq struct {
	FromInstance string
	Author       UserID
}

// NewFedInstance starts an instance with the given name and policy.
func NewFedInstance(node *simnet.Node, name string, policy *ModerationPolicy) *FedInstance {
	inst := &FedInstance{
		rpc:       simnet.NewRPCNode(node),
		name:      name,
		users:     map[UserID]bool{},
		followers: map[UserID]map[string]bool{},
		follows:   map[UserID]map[UserID]bool{},
		received:  map[UserID][]Post{},
		peers:     map[string]simnet.NodeID{},
		blocked:   map[string]bool{},
		policy:    policy,
	}
	inst.obsStored = node.Obs().Counter("groupcomm.fed.post.stored")
	inst.obsPushes = node.Obs().Counter("groupcomm.fed.push.sent")
	inst.obsModerated = node.Obs().Counter("groupcomm.fed.post.moderated")
	inst.rpc.Serve(methodFedPost, inst.onPost)
	inst.rpc.Serve(methodFedPush, inst.onPush)
	inst.rpc.Serve(methodFedRead, inst.onRead)
	inst.rpc.Serve(methodFedFollow, inst.onFollow)
	return inst
}

// Name returns the instance name.
func (fi *FedInstance) Name() string { return fi.name }

// Node returns the instance's simnet node.
func (fi *FedInstance) Node() *simnet.Node { return fi.rpc.Node() }

// AddPeer registers another instance's address.
func (fi *FedInstance) AddPeer(name string, addr simnet.NodeID) { fi.peers[name] = addr }

// AddUser homes a user on this instance.
func (fi *FedInstance) AddUser(u UserID) { fi.users[u] = true }

// Defederate blocks an entire remote instance — Mastodon-style
// instance-level moderation (§3.2: federations "define their own rules").
func (fi *FedInstance) Defederate(instance string) { fi.blocked[instance] = true }

// Follow records that local user u follows author (possibly remote, in
// which case a subscription is sent to the author's home instance).
func (fi *FedInstance) Follow(u UserID, author UserID, authorHome string) {
	if fi.follows[u] == nil {
		fi.follows[u] = map[UserID]bool{}
	}
	fi.follows[u][author] = true
	if authorHome == fi.name {
		if fi.followers[author] == nil {
			fi.followers[author] = map[string]bool{}
		}
		fi.followers[author][fi.name] = true
		return
	}
	if addr, ok := fi.peers[authorHome]; ok {
		req := fedFollowReq{FromInstance: fi.name, Author: author}
		fi.rpc.Call(addr, methodFedFollow, req, 64, 10*time.Second, func(any, error) {})
	}
}

func (fi *FedInstance) onFollow(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(fedFollowReq)
	if !ok || fi.blocked[r.FromInstance] {
		return false, 8
	}
	if fi.followers[r.Author] == nil {
		fi.followers[r.Author] = map[string]bool{}
	}
	fi.followers[r.Author][r.FromInstance] = true
	return true, 8
}

func (fi *FedInstance) onPost(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(fedPostReq)
	if !ok || !fi.users[r.Post.Author] {
		return false, 8
	}
	if !fi.policy.Allows(r.Post) {
		fi.Moderated++
		fi.obsModerated.Inc()
		return false, 8
	}
	fi.received[r.Post.Author] = append(fi.received[r.Post.Author], r.Post)
	fi.obsStored.Inc()
	// Push to every follower instance (sorted for determinism). A follower
	// instance that is down right now simply misses the post — the OStatus
	// weakness.
	names := make([]string, 0, len(fi.followers[r.Post.Author]))
	for n := range fi.followers[r.Post.Author] {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, instName := range names {
		if instName == fi.name || fi.blocked[instName] {
			continue
		}
		if addr, ok := fi.peers[instName]; ok {
			push := fedPushReq{FromInstance: fi.name, Post: r.Post}
			fi.obsPushes.Inc()
			fi.rpc.Call(addr, methodFedPush, push, r.Post.WireSize()+32, 10*time.Second, func(any, error) {})
		}
	}
	return true, 8
}

func (fi *FedInstance) onPush(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(fedPushReq)
	if !ok || fi.blocked[r.FromInstance] {
		return false, 8
	}
	if !fi.policy.Allows(r.Post) {
		fi.Moderated++
		fi.obsModerated.Inc()
		return false, 8
	}
	fi.received[r.Post.Author] = append(fi.received[r.Post.Author], r.Post)
	fi.obsStored.Inc()
	return true, 8
}

// onRead assembles a user's timeline from the local cache: the posts of
// everyone they follow, as far as this instance has received them.
func (fi *FedInstance) onRead(from simnet.NodeID, req any) (any, int) {
	u, ok := req.(UserID)
	if !ok || !fi.users[u] {
		return fetchResp{}, 8
	}
	var posts []Post
	size := 16
	authors := make([]UserID, 0, len(fi.follows[u]))
	for a := range fi.follows[u] {
		authors = append(authors, a)
	}
	sort.Slice(authors, func(i, j int) bool { return authors[i] < authors[j] })
	for _, author := range authors {
		for _, p := range fi.received[author] {
			posts = append(posts, p)
			size += p.WireSize()
		}
	}
	return fetchResp{Posts: posts}, size
}

// FedClient is a user of a federated-home instance.
type FedClient struct {
	rpc     *simnet.RPCNode
	home    simnet.NodeID
	user    UserID
	timeout time.Duration
}

// NewFedClient creates a client for user homed on the given instance node.
func NewFedClient(node *simnet.Node, home simnet.NodeID, user UserID, timeout time.Duration) *FedClient {
	return &FedClient{rpc: simnet.NewRPCNode(node), home: home, user: user, timeout: timeout}
}

// Post publishes to the user's home instance.
func (c *FedClient) Post(room string, body []byte, done func(ok bool)) {
	p := NewPost(room, c.user, body, c.rpc.Node().Now())
	c.rpc.Call(c.home, methodFedPost, fedPostReq{Post: p}, p.WireSize(), c.timeout, func(resp any, err error) {
		ok, _ := resp.(bool)
		done(err == nil && ok)
	})
}

// Read fetches the user's timeline from their home instance; ok is false
// when the instance is unreachable ("entire instances … inaccessible if
// they fail").
func (c *FedClient) Read(done func(posts []Post, ok bool)) {
	c.rpc.Call(c.home, methodFedRead, c.user, 32, c.timeout, func(resp any, err error) {
		if err != nil {
			done(nil, false)
			return
		}
		fr, ok := resp.(fetchResp)
		done(fr.Posts, ok)
	})
}

// StoredBytes returns the payload bytes this instance retains across all
// cached author timelines — the per-operator storage cost experiment X8
// compares against Usenet's full flooding.
func (fi *FedInstance) StoredBytes() int64 {
	var total int64
	for _, posts := range fi.received {
		for _, p := range posts {
			total += int64(p.WireSize())
		}
	}
	return total
}
