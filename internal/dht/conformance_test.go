package dht

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// dhtConformanceRun builds a 16-peer Kademlia network, publishes keys from
// a stable anchor, drives the network through one fault scenario, and
// returns the post-recovery lookup success rate.
func dhtConformanceRun(t testing.TB, seed int64, sc fault.Scenario) float64 {
	t.Helper()
	const (
		nPeers  = 16
		nKeys   = 15
		horizon = 40 * time.Minute
	)
	nw := simnet.New(seed)
	cfg := Config{K: 4, RequestTimeout: 3 * time.Second, RepublishInterval: 5 * time.Minute}
	peers := make([]*Peer, nPeers)
	for i := range peers {
		peers[i] = NewPeer(nw.AddNode(), Key{}, cfg)
	}
	for i := 1; i < nPeers; i++ {
		i := i
		nw.After(time.Duration(i)*200*time.Millisecond, func() {
			peers[i].Bootstrap(peers[0].Contact(), nil)
		})
	}
	nw.Run(time.Duration(nPeers) * 400 * time.Millisecond)

	keys := make([]Key, nKeys)
	for i := range keys {
		keys[i] = cryptoutil.SumHash([]byte(fmt.Sprintf("conformance-%d", i)))
		peers[0].Put(keys[i], []byte{byte(i)}, nil)
	}
	nw.Run(nw.Now() + 2*time.Minute)

	// The publisher (peer 0) is the anchor: it stays eligible for network-
	// wide faults (partitions, corruption) but is never crashed or degraded,
	// so republish keeps running — the question is whether readers recover.
	eligible := make([]simnet.NodeID, 0, nPeers-1)
	for _, p := range peers[1:] {
		eligible = append(eligible, p.Node().ID())
	}
	start := nw.Now()
	sc.Build(seed, eligible, horizon).ApplyAt(nw, start)
	nw.Run(start + horizon)

	// Recovery probe: every peer (all back up by now) looks up every key.
	ok, total := 0, 0
	for _, reader := range peers[1:] {
		for _, k := range keys {
			total++
			found := false
			reader.Get(k, func(_ []byte, f bool) { found = f })
			nw.Run(nw.Now() + 30*time.Second)
			if found {
				ok++
			}
		}
	}
	return float64(ok) / float64(total)
}

// TestDHTRecoveryConformance: post-recovery lookup success must meet the
// per-scenario floor. Clean is the 100% ceiling; faulted scenarios must
// stay above 90% — republish and routing-table self-healing are the
// mechanisms under test.
func TestDHTRecoveryConformance(t *testing.T) {
	floors := map[string]float64{
		"clean":           1.0,
		"lossy-edge":      0.9,
		"flash-partition": 0.9,
		"rolling-churn":   0.9,
		"corrupt-10pct":   0.9,
	}
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			got := dhtConformanceRun(t, 402, sc)
			if floor := floors[sc.Name]; got < floor {
				t.Errorf("post-recovery lookup success %.2f below floor %.2f", got, floor)
			}
		})
	}
}

// TestDHTConformanceDeterministic: the recovery metric is a pure function
// of the seed.
func TestDHTConformanceDeterministic(t *testing.T) {
	sc, _ := fault.ByName("rolling-churn")
	if a, b := dhtConformanceRun(t, 77, sc), dhtConformanceRun(t, 77, sc); a != b {
		t.Errorf("same seed gave different success rates: %v vs %v", a, b)
	}
}

// dhtMidFaultRun measures availability *during* the fault window rather
// than after it: a resilient probe peer issues a PUT of a fresh key at a
// fixed cadence while the scenario is active, and a probe counts as
// available iff the store round completes with at least one replica
// within the 2s SLA. A PUT is the honest probe here — a FIND_VALUE's
// α-parallel first-found-wins lookup hides individual peer timeouts.
func dhtMidFaultRun(t testing.TB, seed int64, sc fault.Scenario, rcfg resil.Config) float64 {
	t.Helper()
	const (
		nPeers  = 16
		nProbes = 8
		horizon = 30 * time.Minute
		sla     = 2 * time.Second
	)
	nw := simnet.New(seed)
	base := Config{K: 4, RequestTimeout: 3 * time.Second, RepublishInterval: 5 * time.Minute}
	proberCfg := base
	proberCfg.Resilience = rcfg
	proberCfg.RepublishInterval = 0 // probe keys are one-shot; no republish chatter
	peers := make([]*Peer, nPeers)
	for i := range peers {
		cfg := base
		if i == 1 {
			cfg = proberCfg
		}
		peers[i] = NewPeer(nw.AddNode(), Key{}, cfg)
	}
	for i := 1; i < nPeers; i++ {
		i := i
		nw.After(time.Duration(i)*200*time.Millisecond, func() {
			peers[i].Bootstrap(peers[0].Contact(), nil)
		})
	}
	nw.Run(time.Duration(nPeers) * 400 * time.Millisecond)

	// Anchors: the bootstrap peer and the prober stay healthy; everyone
	// else is fault-eligible.
	eligible := make([]simnet.NodeID, 0, nPeers-2)
	for _, p := range peers[2:] {
		eligible = append(eligible, p.Node().ID())
	}
	start := nw.Now()
	plan := sc.Build(seed, eligible, horizon)
	plan.ApplyAt(nw, start)
	ws, we := plan.Start(), plan.End()
	if we <= ws { // clean plan: probe the whole horizon
		ws, we = 0, horizon
	}

	ok, total := 0, 0
	for i := 0; i < nProbes; i++ {
		i := i
		total++
		nw.Schedule(start+ws+time.Duration(i)*(we-ws)/nProbes, func() {
			launched := nw.Now()
			k := cryptoutil.SumHash([]byte(fmt.Sprintf("midfault-%d", i)))
			peers[1].Put(k, []byte{byte(i)}, func(stored int) {
				if stored > 0 && nw.Now()-launched <= sla {
					ok++
				}
			})
		})
	}
	nw.Run(start + horizon)
	return float64(ok) / float64(total)
}

// TestDHTMidFaultAvailability: with the resilience layer on, publishes
// issued while the scenario is actively crashing, partitioning, and
// degrading peers must still land within the interactive SLA at the
// per-scenario floor — availability during adversity, not just recovery
// after it, is the conformance bar.
func TestDHTMidFaultAvailability(t *testing.T) {
	// flash-partition's floor is deliberately low: while a partition pulse
	// actively separates the prober from a key's replica set, no transport
	// adaptation can complete the store — the floor only pins that probes
	// landing between pulses still succeed.
	floors := map[string]float64{
		"clean":           1.0,
		"lossy-edge":      0.5,
		"flash-partition": 0.1,
		"rolling-churn":   0.5,
		"corrupt-10pct":   0.5,
	}
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			got := dhtMidFaultRun(t, 407, sc, resil.Defaults())
			if floor := floors[sc.Name]; got < floor {
				t.Errorf("mid-fault put availability %.2f below floor %.2f", got, floor)
			}
			t.Logf("mid-fault availability %.2f", got)
		})
	}
}
