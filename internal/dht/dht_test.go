package dht

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

func key(s string) Key { return cryptoutil.SumHash([]byte(s)) }

func TestXorMetricProperties(t *testing.T) {
	f := func(a, b, c [32]byte) bool {
		ka, kb, kc := Key(a), Key(b), Key(c)
		// d(a,a) = 0
		if XorDistance(ka, ka) != (Key{}) {
			return false
		}
		// symmetry
		if XorDistance(ka, kb) != XorDistance(kb, ka) {
			return false
		}
		// XOR triangle equality property: d(a,b) ^ d(b,c) == d(a,c)
		dab, dbc, dac := XorDistance(ka, kb), XorDistance(kb, kc), XorDistance(ka, kc)
		return XorDistance(dab, dbc) == dac
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceLess(t *testing.T) {
	target := Key{}
	a := Key{0, 1}
	b := Key{0, 2}
	if !DistanceLess(target, a, b) {
		t.Error("a should be closer")
	}
	if DistanceLess(target, b, a) {
		t.Error("b should not be closer")
	}
	if DistanceLess(target, a, a) {
		t.Error("equal distance is not less")
	}
}

func TestBucketIndex(t *testing.T) {
	self := Key{}
	if BucketIndex(self, self) != -1 {
		t.Error("self should map to -1")
	}
	// MSB difference -> bucket 255.
	far := Key{0x80}
	if got := BucketIndex(self, far); got != 255 {
		t.Errorf("msb bucket = %d, want 255", got)
	}
	// Lowest bit difference -> bucket 0.
	var near Key
	near[31] = 1
	if got := BucketIndex(self, near); got != 0 {
		t.Errorf("lsb bucket = %d, want 0", got)
	}
}

func TestRoutingTableInsertAndClosest(t *testing.T) {
	self := key("self")
	rt := newRoutingTable(self, 20)
	var contacts []Contact
	for i := 0; i < 100; i++ {
		c := Contact{ID: key(fmt.Sprintf("n%d", i)), Addr: simnet.NodeID(i)}
		contacts = append(contacts, c)
		rt.observe(c)
	}
	if rt.size() == 0 {
		t.Fatal("table empty")
	}
	target := key("target")
	got := rt.closest(target, 5)
	if len(got) != 5 {
		t.Fatalf("closest returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if DistanceLess(target, got[i].ID, got[i-1].ID) {
			t.Error("closest not sorted by distance")
		}
	}
	// Re-observing an existing contact must not grow the table.
	before := rt.size()
	rt.observe(contacts[0])
	if rt.size() != before {
		t.Error("duplicate observe grew table")
	}
}

func TestRoutingTableEvictKeep(t *testing.T) {
	self := Key{} // zero self makes bucket targeting easy
	rt := newRoutingTable(self, 2)
	// Three contacts in the same top bucket (MSB set).
	mk := func(b byte) Contact {
		var k Key
		k[0] = 0x80
		k[31] = b
		return Contact{ID: k, Addr: simnet.NodeID(b)}
	}
	c1, c2, c3 := mk(1), mk(2), mk(3)
	if rt.observe(c1) != nil || rt.observe(c2) != nil {
		t.Fatal("inserts into non-full bucket should not return candidates")
	}
	cand := rt.observe(c3)
	if cand == nil || cand.ID != c1.ID {
		t.Fatal("full bucket should nominate the least-recently-seen occupant")
	}
	// Liveness check failed: evict and insert newcomer.
	rt.evict(*cand, c3)
	if got := rt.closest(self, 10); len(got) != 2 {
		t.Fatalf("table size %d after evict, want 2", len(got))
	}
	for _, c := range rt.closest(self, 10) {
		if c.ID == c1.ID {
			t.Error("evicted contact still present")
		}
	}
	// refresh moves to tail: observe c2 then check candidate rotation.
	rt.refresh(c2.ID)
	cand = rt.observe(mk(4))
	if cand == nil || cand.ID != c3.ID {
		t.Errorf("after refresh, LRS should be c3")
	}
	rt.remove(c3.ID)
	if rt.size() != 1 {
		t.Errorf("size after remove = %d", rt.size())
	}
}

// buildNetwork creates n bootstrapped DHT peers on a fresh simnet.
func buildNetwork(t testing.TB, seed int64, n int, cfg Config) (*simnet.Network, []*Peer) {
	t.Helper()
	nw := simnet.New(seed)
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = NewPeer(nw.AddNode(), Key{}, cfg)
	}
	// Bootstrap everyone through peer 0, staggered to avoid thundering herd.
	for i := 1; i < n; i++ {
		i := i
		nw.After(time.Duration(i)*100*time.Millisecond, func() {
			peers[i].Bootstrap(peers[0].Contact(), nil)
		})
	}
	nw.Run(time.Duration(n) * 200 * time.Millisecond)
	return nw, peers
}

func TestPutGetAcrossNetwork(t *testing.T) {
	nw, peers := buildNetwork(t, 21, 50, Config{})
	k := key("the answer")
	val := []byte("42")

	stored := -1
	peers[7].Put(k, val, func(n int) { stored = n })
	nw.Run(nw.Now() + 30*time.Second)
	if stored <= 0 {
		t.Fatalf("put acked by %d nodes", stored)
	}

	// Every peer must be able to find it.
	misses := 0
	for i, p := range peers {
		var got []byte
		found := false
		p.Get(k, func(v []byte, ok bool) { got, found = v, ok })
		nw.Run(nw.Now() + 30*time.Second)
		if !found || !bytes.Equal(got, val) {
			misses++
			t.Errorf("peer %d: get failed (found=%v)", i, found)
		}
	}
	if misses > 0 {
		t.Errorf("%d/%d peers missed the value", misses, len(peers))
	}
}

func TestGetMissingKey(t *testing.T) {
	nw, peers := buildNetwork(t, 22, 20, Config{})
	found := true
	peers[3].Get(key("never stored"), func(v []byte, ok bool) { found = ok })
	nw.Run(nw.Now() + 30*time.Second)
	if found {
		t.Error("lookup of missing key reported found")
	}
}

func TestLookupNodeReturnsClosest(t *testing.T) {
	nw, peers := buildNetwork(t, 23, 40, Config{})
	target := key("lookup target")
	var got []Contact
	peers[5].LookupNode(target, func(cs []Contact) { got = cs })
	nw.Run(nw.Now() + 30*time.Second)
	if len(got) == 0 {
		t.Fatal("lookup returned nothing")
	}
	// Verify the first result is the globally closest live peer.
	var best Key
	first := true
	for _, p := range peers {
		if p.ID() == peers[5].ID() {
			continue
		}
		if first || DistanceLess(target, p.ID(), best) {
			best = p.ID()
			first = false
		}
	}
	if got[0].ID != best {
		t.Errorf("lookup best = %s, want %s", got[0].ID.Short(), best.Short())
	}
}

func TestValueSurvivesOriginatorCrash(t *testing.T) {
	nw, peers := buildNetwork(t, 24, 30, Config{})
	k := key("durable")
	peers[2].Put(k, []byte("v"), nil)
	nw.Run(nw.Now() + 30*time.Second)
	peers[2].Node().Crash()

	found := false
	peers[9].Get(k, func(v []byte, ok bool) { found = ok })
	nw.Run(nw.Now() + 30*time.Second)
	if !found {
		t.Error("value lost when originator crashed (should be replicated on K nodes)")
	}
}

func TestTTLExpiry(t *testing.T) {
	nw, peers := buildNetwork(t, 25, 15, Config{TTL: time.Minute})
	k := key("ephemeral")
	peers[1].Put(k, []byte("v"), nil)
	nw.Run(nw.Now() + 10*time.Second)

	found := false
	peers[4].Get(k, func(v []byte, ok bool) { found = ok })
	nw.Run(nw.Now() + 10*time.Second)
	if !found {
		t.Fatal("value should be fresh before TTL")
	}

	nw.Run(nw.Now() + 2*time.Minute) // let it expire
	found = false
	peers[4].Get(k, func(v []byte, ok bool) { found = ok })
	nw.Run(nw.Now() + 10*time.Second)
	if found {
		t.Error("value served after TTL expiry")
	}
}

func TestRepublishKeepsValueAliveUnderChurn(t *testing.T) {
	cfg := Config{TTL: 2 * time.Minute, RepublishInterval: time.Minute}
	nw, peers := buildNetwork(t, 26, 30, cfg)
	k := key("churn survivor")
	peers[0].Put(k, []byte("v"), nil)
	nw.Run(nw.Now() + 5*time.Second)

	// Churn everyone except the publisher and one reader.
	for _, p := range peers[2:] {
		simnet.Churn{MTTF: 3 * time.Minute, MTTR: time.Minute}.Apply(p.Node())
	}
	nw.Run(nw.Now() + 20*time.Minute)

	found := false
	peers[1].Get(k, func(v []byte, ok bool) { found = ok })
	nw.Run(nw.Now() + 30*time.Second)
	if !found {
		t.Error("republished value lost under churn")
	}
}

func TestStatsAccumulate(t *testing.T) {
	nw, peers := buildNetwork(t, 27, 20, Config{})
	peers[0].Put(key("x"), []byte("y"), nil)
	nw.Run(nw.Now() + 30*time.Second)
	st := peers[0].Stats()
	if st.LookupsStarted == 0 || st.StoresSent == 0 {
		t.Errorf("stats not accumulating: %+v", st)
	}
	if peers[0].TableSize() == 0 {
		t.Error("routing table empty after activity")
	}
}

func TestDerivedIDStable(t *testing.T) {
	nw := simnet.New(1)
	n := nw.AddNode()
	p1 := NewPeer(n, Key{}, Config{})
	if p1.ID().IsZero() {
		t.Error("derived ID should be nonzero")
	}
	explicit := key("explicit")
	p2 := NewPeer(nw.AddNode(), explicit, Config{})
	if p2.ID() != explicit {
		t.Error("explicit ID not respected")
	}
}

func BenchmarkLookup100Nodes(b *testing.B) {
	nw, peers := buildNetwork(b, 30, 100, Config{})
	k := key("bench")
	peers[0].Put(k, []byte("v"), nil)
	nw.Run(nw.Now() + 30*time.Second)
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := peers[rng.Intn(len(peers))]
		done := false
		p.Get(k, func(v []byte, ok bool) { done = ok })
		nw.Run(nw.Now() + 30*time.Second)
		if !done {
			b.Fatal("lookup failed")
		}
	}
}
