package dht

// Iterative Kademlia lookup: query the α closest unqueried contacts in
// parallel, fold their replies into a distance-sorted shortlist, and stop
// when the K best contacts have all been queried (or a value is found in
// FIND_VALUE mode). Runs entirely on simnet callbacks — no goroutines.

import "repro/internal/obs"

type lookupState struct {
	p         *Peer
	target    Key
	wantValue bool
	shortlist []Contact
	queried   map[Key]bool
	failed    map[Key]bool
	inflight  int
	finished  bool
	span      obs.Span
	done      func(closest []Contact, value []byte, found bool)
}

func (p *Peer) lookup(target Key, wantValue bool, done func([]Contact, []byte, bool)) {
	p.stats.LookupsStarted++
	p.m.lookups.Inc()
	ls := &lookupState{
		p:         p,
		target:    target,
		wantValue: wantValue,
		queried:   map[Key]bool{},
		failed:    map[Key]bool{},
		span:      p.Node().Obs().StartSpan("dht.lookup.duration_s", p.Node().Now()),
		done:      done,
	}
	ls.merge(p.rt.closest(target, p.cfg.K))
	ls.step()
}

// merge folds contacts into the shortlist, keeping it sorted by distance
// and trimmed to K entries plus already-queried stragglers.
func (ls *lookupState) merge(cs []Contact) {
	for _, c := range cs {
		if c.ID == ls.p.id {
			continue
		}
		dup := false
		for _, have := range ls.shortlist {
			if have.ID == c.ID {
				dup = true
				break
			}
		}
		if !dup {
			ls.shortlist = append(ls.shortlist, c)
		}
	}
	sortByDistance(ls.target, ls.shortlist)
	if len(ls.shortlist) > ls.p.cfg.K*2 {
		ls.shortlist = ls.shortlist[:ls.p.cfg.K*2]
	}
}

// step issues queries until α are in flight or the lookup converges.
func (ls *lookupState) step() {
	if ls.finished {
		return
	}
	ls.p.stats.LookupHops++
	ls.p.m.hops.Inc()
	launched := 0
	for _, c := range ls.shortlist {
		if ls.inflight >= ls.p.cfg.Alpha {
			break
		}
		if ls.queried[c.ID] || ls.failed[c.ID] {
			continue
		}
		ls.queried[c.ID] = true
		ls.inflight++
		launched++
		ls.query(c)
	}
	if launched == 0 && ls.inflight == 0 {
		ls.finish(nil, false)
	}
}

func (ls *lookupState) query(c Contact) {
	method := methodFindNode
	if ls.wantValue {
		method = methodFindValue
	}
	req := findNodeReq{From: ls.p.Contact(), Target: ls.target}
	ls.p.res.Call(c.Addr, method, req, 80, ls.p.cfg.RequestTimeout, func(resp any, err error) {
		ls.inflight--
		if ls.finished {
			return
		}
		if err != nil {
			ls.failed[c.ID] = true
			ls.p.rt.remove(c.ID)
			ls.step()
			return
		}
		ls.p.observe(c)
		switch r := resp.(type) {
		case findValueResp:
			if r.Found {
				ls.finish(r.Value, true)
				return
			}
			ls.merge(r.Contacts)
		case findNodeResp:
			ls.merge(r.Contacts)
		}
		if ls.converged() {
			ls.finish(nil, false)
			return
		}
		ls.step()
	})
}

// converged reports whether the K closest shortlist entries have all been
// queried (or failed) and nothing is in flight.
func (ls *lookupState) converged() bool {
	if ls.inflight > 0 {
		return false
	}
	checked := 0
	for _, c := range ls.shortlist {
		if checked >= ls.p.cfg.K {
			break
		}
		if !ls.queried[c.ID] && !ls.failed[c.ID] {
			return false
		}
		checked++
	}
	return true
}

func (ls *lookupState) finish(value []byte, found bool) {
	if ls.finished {
		return
	}
	ls.finished = true
	ls.span.End(ls.p.Node().Now())
	// Result: the K closest live contacts.
	var out []Contact
	for _, c := range ls.shortlist {
		if ls.failed[c.ID] {
			continue
		}
		out = append(out, c)
		if len(out) == ls.p.cfg.K {
			break
		}
	}
	ls.done(out, value, found)
}
