// Package dht implements a Kademlia distributed hash table over
// internal/simnet: 256-bit XOR metric, k-buckets with ping-before-evict
// liveness checks, iterative α-parallel lookups, STORE/FIND_VALUE, and
// periodic republish.
//
// The DHT is the discovery substrate for the decentralized storage layer
// (§3.3: IPFS-style content routing) and the hostless web layer (§3.4:
// "The public key is the new site address which can be looked up on
// trackers or DHTs").
package dht

import (
	"math/bits"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// Key is a 256-bit DHT identifier; node IDs and content keys share the
// space.
type Key = cryptoutil.Hash

// Contact is a (node ID, network address) pair.
type Contact struct {
	ID   Key
	Addr simnet.NodeID
}

// XorDistance returns the Kademlia distance a⊕b.
func XorDistance(a, b Key) Key {
	var d Key
	for i := range a {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// DistanceLess reports whether a is strictly closer to target than b.
func DistanceLess(target, a, b Key) bool {
	for i := range target {
		da, db := a[i]^target[i], b[i]^target[i]
		if da != db {
			return da < db
		}
	}
	return false
}

// BucketIndex returns the index of the k-bucket for a peer at the given
// XOR distance: 255 for the far half of the space down to 0 for the
// nearest non-equal IDs. Returns -1 for distance zero (self).
func BucketIndex(self, other Key) int {
	d := XorDistance(self, other)
	for i, b := range d {
		if b != 0 {
			return 255 - (i*8 + bits.LeadingZeros8(b))
		}
	}
	return -1
}

// bucketEntry tracks one contact with recency ordering.
type bucketEntry struct {
	c Contact
}

// bucket is one k-bucket: least-recently-seen first, most-recently-seen
// last (classic Kademlia ordering).
type bucket struct {
	entries []bucketEntry
}

func (b *bucket) indexOf(id Key) int {
	for i, e := range b.entries {
		if e.c.ID == id {
			return i
		}
	}
	return -1
}

// routingTable is a 256-bucket Kademlia table.
type routingTable struct {
	self Key
	k    int
	b    [256]bucket
}

func newRoutingTable(self Key, k int) *routingTable {
	return &routingTable{self: self, k: k}
}

// observe records contact activity. If the bucket is full it returns the
// least-recently-seen occupant as the eviction candidate (the caller pings
// it and calls evict or keep); otherwise it inserts/refreshes and returns
// nil.
func (rt *routingTable) observe(c Contact) *Contact {
	idx := BucketIndex(rt.self, c.ID)
	if idx < 0 {
		return nil // self
	}
	bk := &rt.b[idx]
	if i := bk.indexOf(c.ID); i >= 0 {
		// Move to tail (most recently seen).
		e := bk.entries[i]
		bk.entries = append(append(bk.entries[:i:i], bk.entries[i+1:]...), e)
		return nil
	}
	if len(bk.entries) < rt.k {
		bk.entries = append(bk.entries, bucketEntry{c: c})
		return nil
	}
	oldest := bk.entries[0].c
	return &oldest
}

// evict removes old from its bucket and inserts repl at the tail. Used when
// the ping-before-evict liveness check on old fails.
func (rt *routingTable) evict(old Contact, repl Contact) {
	idx := BucketIndex(rt.self, old.ID)
	if idx < 0 {
		return
	}
	bk := &rt.b[idx]
	if i := bk.indexOf(old.ID); i >= 0 {
		bk.entries = append(bk.entries[:i], bk.entries[i+1:]...)
	}
	if len(bk.entries) < rt.k && bk.indexOf(repl.ID) < 0 {
		bk.entries = append(bk.entries, bucketEntry{c: repl})
	}
}

// refresh moves a contact to most-recently-seen if present (used after a
// successful ping of an eviction candidate).
func (rt *routingTable) refresh(id Key) {
	idx := BucketIndex(rt.self, id)
	if idx < 0 {
		return
	}
	bk := &rt.b[idx]
	if i := bk.indexOf(id); i >= 0 {
		e := bk.entries[i]
		bk.entries = append(append(bk.entries[:i:i], bk.entries[i+1:]...), e)
	}
}

// remove drops a contact entirely (used when requests to it fail).
func (rt *routingTable) remove(id Key) {
	idx := BucketIndex(rt.self, id)
	if idx < 0 {
		return
	}
	bk := &rt.b[idx]
	if i := bk.indexOf(id); i >= 0 {
		bk.entries = append(bk.entries[:i], bk.entries[i+1:]...)
	}
}

// closest returns up to n contacts nearest to target, sorted by XOR
// distance ascending.
func (rt *routingTable) closest(target Key, n int) []Contact {
	var all []Contact
	for i := range rt.b {
		for _, e := range rt.b[i].entries {
			all = append(all, e.c)
		}
	}
	// Insertion-sort-ish selection is fine at table scale; use full sort.
	sortByDistance(target, all)
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// size returns the number of contacts in the table.
func (rt *routingTable) size() int {
	total := 0
	for i := range rt.b {
		total += len(rt.b[i].entries)
	}
	return total
}

func sortByDistance(target Key, cs []Contact) {
	// Simple insertion sort: contact lists are short (≤ a few hundred).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && DistanceLess(target, cs[j].ID, cs[j-1].ID); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
