// Package dht implements a Kademlia distributed hash table over
// internal/simnet: 256-bit XOR metric, k-buckets with ping-before-evict
// liveness checks, iterative α-parallel lookups, STORE/FIND_VALUE, and
// periodic republish.
//
// The DHT is the discovery substrate for the decentralized storage layer
// (§3.3: IPFS-style content routing) and the hostless web layer (§3.4:
// "The public key is the new site address which can be looked up on
// trackers or DHTs").
package dht

import (
	"math/bits"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// Key is a 256-bit DHT identifier; node IDs and content keys share the
// space.
type Key = cryptoutil.Hash

// Contact is a (node ID, network address) pair.
type Contact struct {
	ID   Key
	Addr simnet.NodeID
}

// XorDistance returns the Kademlia distance a⊕b.
func XorDistance(a, b Key) Key {
	var d Key
	for i := range a {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// DistanceLess reports whether a is strictly closer to target than b.
func DistanceLess(target, a, b Key) bool {
	for i := range target {
		da, db := a[i]^target[i], b[i]^target[i]
		if da != db {
			return da < db
		}
	}
	return false
}

// BucketIndex returns the index of the k-bucket for a peer at the given
// XOR distance: 255 for the far half of the space down to 0 for the
// nearest non-equal IDs. Returns -1 for distance zero (self).
func BucketIndex(self, other Key) int {
	d := XorDistance(self, other)
	for i, b := range d {
		if b != 0 {
			return 255 - (i*8 + bits.LeadingZeros8(b))
		}
	}
	return -1
}

// bucketEntry tracks one contact with recency ordering.
type bucketEntry struct {
	c Contact
}

// bucket is one k-bucket: least-recently-seen first, most-recently-seen
// last (classic Kademlia ordering).
type bucket struct {
	entries []bucketEntry
}

func (b *bucket) indexOf(id Key) int {
	for i, e := range b.entries {
		if e.c.ID == id {
			return i
		}
	}
	return -1
}

// moveToTail promotes entry i to most-recently-seen by rotating in place —
// no reallocation, so steady-state observe() of known contacts is
// allocation-free.
func (b *bucket) moveToTail(i int) {
	e := b.entries[i]
	copy(b.entries[i:], b.entries[i+1:])
	b.entries[len(b.entries)-1] = e
}

// routingTable is a 256-bucket Kademlia table. Two indexes keep table
// maintenance off the O(buckets) and O(contacts) scans that dominate at
// 10k-node populations: occ is an occupancy bitset over the 256 buckets
// (closest walks only non-empty ones), and n counts contacts so size() is
// O(1).
type routingTable struct {
	self Key
	k    int
	b    [256]bucket
	occ  [4]uint64
	n    int
	// sel is the reusable selection heap for closest(); results are copied
	// out because callers retain them (RPC responses alias the slice).
	sel []Contact
}

func newRoutingTable(self Key, k int) *routingTable {
	return &routingTable{self: self, k: k}
}

func (rt *routingTable) markOccupied(idx int) { rt.occ[idx>>6] |= 1 << (idx & 63) }

// syncOccupied clears the bucket's occupancy bit if it has drained.
func (rt *routingTable) syncOccupied(idx int) {
	if len(rt.b[idx].entries) == 0 {
		rt.occ[idx>>6] &^= 1 << (idx & 63)
	}
}

// observe records contact activity. If the bucket is full it returns the
// least-recently-seen occupant as the eviction candidate (the caller pings
// it and calls evict or keep); otherwise it inserts/refreshes and returns
// nil.
func (rt *routingTable) observe(c Contact) *Contact {
	idx := BucketIndex(rt.self, c.ID)
	if idx < 0 {
		return nil // self
	}
	bk := &rt.b[idx]
	if i := bk.indexOf(c.ID); i >= 0 {
		bk.moveToTail(i)
		return nil
	}
	if len(bk.entries) < rt.k {
		bk.entries = append(bk.entries, bucketEntry{c: c})
		rt.markOccupied(idx)
		rt.n++
		return nil
	}
	oldest := bk.entries[0].c
	return &oldest
}

// evict removes old from its bucket and inserts repl at the tail. Used when
// the ping-before-evict liveness check on old fails.
func (rt *routingTable) evict(old Contact, repl Contact) {
	idx := BucketIndex(rt.self, old.ID)
	if idx < 0 {
		return
	}
	bk := &rt.b[idx]
	if i := bk.indexOf(old.ID); i >= 0 {
		bk.entries = append(bk.entries[:i], bk.entries[i+1:]...)
		rt.n--
	}
	if len(bk.entries) < rt.k && bk.indexOf(repl.ID) < 0 {
		bk.entries = append(bk.entries, bucketEntry{c: repl})
		rt.markOccupied(idx)
		rt.n++
	}
	rt.syncOccupied(idx)
}

// refresh moves a contact to most-recently-seen if present (used after a
// successful ping of an eviction candidate).
func (rt *routingTable) refresh(id Key) {
	idx := BucketIndex(rt.self, id)
	if idx < 0 {
		return
	}
	bk := &rt.b[idx]
	if i := bk.indexOf(id); i >= 0 {
		bk.moveToTail(i)
	}
}

// remove drops a contact entirely (used when requests to it fail).
func (rt *routingTable) remove(id Key) {
	idx := BucketIndex(rt.self, id)
	if idx < 0 {
		return
	}
	bk := &rt.b[idx]
	if i := bk.indexOf(id); i >= 0 {
		bk.entries = append(bk.entries[:i], bk.entries[i+1:]...)
		rt.n--
		rt.syncOccupied(idx)
	}
}

// closest returns up to n contacts nearest to target, sorted by XOR
// distance ascending. It walks only occupied buckets (via the occupancy
// bitset) and keeps the n best seen so far in a bounded max-heap, so the
// cost is O(contacts·log n) instead of sorting the whole table; XOR
// distances are unique per pair, so the selection is exactly the prefix the
// full sort would produce. The returned slice is freshly allocated — RPC
// responses retain it past this call.
func (rt *routingTable) closest(target Key, n int) []Contact {
	if n <= 0 || rt.n == 0 {
		return nil
	}
	h := rt.sel[:0]
	for w, word := range rt.occ {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			word &^= 1 << bit
			for _, e := range rt.b[w<<6|bit].entries {
				if len(h) < n {
					h = append(h, e.c)
					siftUpFarthest(target, h, len(h)-1)
				} else if DistanceLess(target, e.c.ID, h[0].ID) {
					h[0] = e.c
					siftDownFarthest(target, h, 0)
				}
			}
		}
	}
	out := make([]Contact, len(h))
	copy(out, h)
	rt.sel = h[:0]
	sortByDistance(target, out)
	return out
}

// siftUpFarthest restores the max-heap (farthest-from-target at the root)
// after appending at index i.
func siftUpFarthest(target Key, h []Contact, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !DistanceLess(target, h[p].ID, h[i].ID) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// siftDownFarthest restores the max-heap after replacing the root.
func siftDownFarthest(target Key, h []Contact, i int) {
	for {
		far := i
		if l := 2*i + 1; l < len(h) && DistanceLess(target, h[far].ID, h[l].ID) {
			far = l
		}
		if r := 2*i + 2; r < len(h) && DistanceLess(target, h[far].ID, h[r].ID) {
			far = r
		}
		if far == i {
			return
		}
		h[i], h[far] = h[far], h[i]
		i = far
	}
}

// size returns the number of contacts in the table.
func (rt *routingTable) size() int { return rt.n }

func sortByDistance(target Key, cs []Contact) {
	// Simple insertion sort: contact lists are short (≤ a few hundred).
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && DistanceLess(target, cs[j].ID, cs[j-1].ID); j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
