package dht

import (
	"sort"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/resil"
	"repro/internal/simnet"
)

// Config tunes a DHT peer. The zero value is replaced by defaults matching
// the Kademlia paper (k=20, α=3).
type Config struct {
	K              int           // bucket size and lookup result width
	Alpha          int           // lookup parallelism
	RequestTimeout time.Duration // per-RPC timeout
	TTL            time.Duration // stored value lifetime; 0 = no expiry
	// RepublishInterval re-stores locally published values; 0 disables.
	RepublishInterval time.Duration
	// Resilience tunes the adaptive retry/hedging layer on every client
	// RPC (lookup queries, stores, refresh pings). The zero value keeps
	// the historical fixed-RequestTimeout behaviour.
	Resilience resil.Config
	// Overload, when enabled, puts the value-carrying server paths
	// (find_value, find_node, store) behind server-side overload control
	// while pings ride the priority control lane — liveness probing keeps
	// working on a saturated peer. The zero value is a pure passthrough.
	Overload overload.Config
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 20
	}
	if c.Alpha == 0 {
		c.Alpha = 3
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 2 * time.Second
	}
	return c
}

// RPC method names.
const (
	methodPing      = "dht.ping"
	methodFindNode  = "dht.find_node"
	methodFindValue = "dht.find_value"
	methodStore     = "dht.store"
)

type findNodeReq struct {
	From   Contact
	Target Key
}

type findNodeResp struct {
	Contacts []Contact
}

type findValueResp struct {
	Value    []byte // nil if not found
	Found    bool
	Contacts []Contact
}

type storeReq struct {
	From  Contact
	Key   Key
	Value []byte
}

type storedValue struct {
	data      []byte
	expiresAt time.Duration // zero means never
}

// Peer is one DHT participant bound to a simnet node.
type Peer struct {
	cfg   Config
	rpc   *simnet.RPCNode
	res   *resil.Client // client-path RPCs go through the resilience layer
	id    Key
	rt    *routingTable
	store map[Key]storedValue
	// published tracks keys this peer originated, for republishing.
	published map[Key][]byte
	stats     Stats

	// Observability: network-wide DHT metrics. The bundle is resolved once
	// per registry via Memo and shared by every peer on the network, so
	// constructing a 10k-peer population does 4 map lookups, not 40k (see
	// DESIGN.md metric naming conventions).
	m *dhtMetrics
}

// dhtMetrics is the package's network-scoped counter bundle.
type dhtMetrics struct {
	lookups *obs.Counter
	hops    *obs.Counter
	served  *obs.Counter
	stores  *obs.Counter
}

func metricsFor(r *obs.Registry) *dhtMetrics {
	return r.Memo("dht", func() any {
		return &dhtMetrics{
			lookups: r.Counter("dht.lookup.started"),
			hops:    r.Counter("dht.lookup.hops"),
			served:  r.Counter("dht.value.served"),
			stores:  r.Counter("dht.store.sent"),
		}
	}).(*dhtMetrics)
}

// Stats counts DHT operations for experiments.
type Stats struct {
	LookupsStarted int
	LookupHops     int // total query rounds across lookups
	StoresSent     int
	ValuesServed   int
}

// NewPeer creates a DHT peer on the given simnet node. The peer's DHT ID is
// derived from the node ID unless a nonzero id is supplied.
func NewPeer(node *simnet.Node, id Key, cfg Config) *Peer {
	if id.IsZero() {
		id = cryptoutil.SumHash([]byte{byte(node.ID()), byte(node.ID() >> 8), 0xD7})
	}
	p := &Peer{
		cfg:       cfg.withDefaults(),
		rpc:       simnet.NewRPCNode(node),
		id:        id,
		store:     map[Key]storedValue{},
		published: map[Key][]byte{},
		m:         metricsFor(node.Obs()),
	}
	p.res = resil.New(p.rpc, p.cfg.Resilience)
	p.rt = newRoutingTable(id, p.cfg.K)
	// Pings are pure liveness control — they must keep answering while the
	// lookup paths queue, or a merely-busy peer gets evicted as dead.
	ov := overload.New(p.rpc, p.cfg.Overload)
	ov.Control(methodPing, p.onPing)
	ov.Protect(methodFindNode, p.onFindNode)
	ov.Protect(methodFindValue, p.onFindValue)
	ov.Protect(methodStore, p.onStore)
	if p.cfg.RepublishInterval > 0 {
		p.scheduleRepublish()
	}
	return p
}

// ID returns the peer's DHT identifier.
func (p *Peer) ID() Key { return p.id }

// Contact returns this peer's own contact record.
func (p *Peer) Contact() Contact { return Contact{ID: p.id, Addr: p.rpc.Node().ID()} }

// Node returns the underlying simnet node.
func (p *Peer) Node() *simnet.Node { return p.rpc.Node() }

// Stats returns operation counters.
func (p *Peer) Stats() Stats { return p.stats }

// TableSize returns the number of contacts in the routing table.
func (p *Peer) TableSize() int { return p.rt.size() }

// observe records a contact, running the ping-before-evict protocol when a
// bucket is full.
func (p *Peer) observe(c Contact) {
	if c.ID == p.id {
		return
	}
	candidate := p.rt.observe(c)
	if candidate == nil {
		return
	}
	old := *candidate
	p.res.Call(old.Addr, methodPing, p.Contact(), 40, p.cfg.RequestTimeout, func(_ any, err error) {
		if err != nil {
			p.rt.evict(old, c) // stale occupant: newcomer takes the slot
		} else {
			p.rt.refresh(old.ID) // occupant alive: newcomer is dropped
		}
	})
}

func (p *Peer) onPing(from simnet.NodeID, req any) (any, int) {
	if c, ok := req.(Contact); ok {
		p.observe(c)
	}
	return true, 8
}

func (p *Peer) onFindNode(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(findNodeReq)
	if !ok {
		return findNodeResp{}, 8
	}
	p.observe(r.From)
	cs := p.rt.closest(r.Target, p.cfg.K)
	return findNodeResp{Contacts: cs}, 8 + len(cs)*40
}

func (p *Peer) onFindValue(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(findNodeReq)
	if !ok {
		return findValueResp{}, 8
	}
	p.observe(r.From)
	if sv, ok := p.store[r.Target]; ok && p.fresh(sv) {
		p.stats.ValuesServed++
		p.m.served.Inc()
		return findValueResp{Value: sv.data, Found: true}, 8 + len(sv.data)
	}
	cs := p.rt.closest(r.Target, p.cfg.K)
	return findValueResp{Contacts: cs}, 8 + len(cs)*40
}

func (p *Peer) onStore(from simnet.NodeID, req any) (any, int) {
	r, ok := req.(storeReq)
	if !ok {
		return false, 8
	}
	p.observe(r.From)
	var exp time.Duration
	if p.cfg.TTL > 0 {
		exp = p.Node().Now() + p.cfg.TTL
	}
	p.store[r.Key] = storedValue{data: r.Value, expiresAt: exp}
	return true, 8
}

func (p *Peer) fresh(sv storedValue) bool {
	return sv.expiresAt == 0 || p.Node().Now() < sv.expiresAt
}

// Bootstrap joins the network through a seed contact: it inserts the seed
// and runs a self-lookup to populate the routing table, invoking done when
// finished.
func (p *Peer) Bootstrap(seed Contact, done func()) {
	p.observe(seed)
	p.lookup(p.id, false, func(_ []Contact, _ []byte, _ bool) {
		if done != nil {
			done()
		}
	})
}

// Put stores value under key on the K closest peers. done (optional)
// receives the number of nodes that acknowledged the store.
func (p *Peer) Put(key Key, value []byte, done func(stored int)) {
	p.published[key] = value
	p.putOnce(key, value, done)
}

func (p *Peer) putOnce(key Key, value []byte, done func(stored int)) {
	p.lookup(key, false, func(closest []Contact, _ []byte, _ bool) {
		// Store locally if we are among the closest (or the network is tiny).
		acked := 0
		pending := len(closest)
		p.storeLocal(key, value)
		if pending == 0 {
			if done != nil {
				done(0)
			}
			return
		}
		for _, c := range closest {
			req := storeReq{From: p.Contact(), Key: key, Value: value}
			p.stats.StoresSent++
			p.m.stores.Inc()
			p.res.Call(c.Addr, methodStore, req, 48+len(value), p.cfg.RequestTimeout, func(resp any, err error) {
				pending--
				if err == nil {
					if okResp, ok := resp.(bool); ok && okResp {
						acked++
					}
				}
				if pending == 0 && done != nil {
					done(acked)
				}
			})
		}
	})
}

func (p *Peer) storeLocal(key Key, value []byte) {
	var exp time.Duration
	if p.cfg.TTL > 0 {
		exp = p.Node().Now() + p.cfg.TTL
	}
	p.store[key] = storedValue{data: value, expiresAt: exp}
}

// Get retrieves the value for key, first locally then via an iterative
// FIND_VALUE lookup.
func (p *Peer) Get(key Key, done func(value []byte, ok bool)) {
	if sv, ok := p.store[key]; ok && p.fresh(sv) {
		done(sv.data, true)
		return
	}
	p.lookup(key, true, func(_ []Contact, value []byte, found bool) {
		done(value, found)
	})
}

// LookupNode runs an iterative FIND_NODE and returns the K closest
// contacts to target.
func (p *Peer) LookupNode(target Key, done func([]Contact)) {
	p.lookup(target, false, func(cs []Contact, _ []byte, _ bool) { done(cs) })
}

func (p *Peer) scheduleRepublish() {
	// Node-local timer: a skewed device clock republishes early or late.
	p.Node().After(p.cfg.RepublishInterval, func() {
		if p.Node().Up() {
			keys := make([]Key, 0, len(p.published))
			for key := range p.published {
				keys = append(keys, key)
			}
			sort.Slice(keys, func(i, j int) bool {
				return DistanceLess(Key{}, keys[i], keys[j])
			})
			for _, key := range keys {
				p.putOnce(key, p.published[key], nil)
			}
		}
		p.scheduleRepublish()
	})
}
