package resil

import (
	"testing"
	"time"
)

func boCfg() BackoffConfig {
	return Config{Enabled: true}.withDefaults().Backoff
}

func TestBackoffDeterministic(t *testing.T) {
	a := NewBackoff(boCfg(), 42, 7)
	b := NewBackoff(boCfg(), 42, 7)
	for call := uint64(1); call <= 5; call++ {
		for attempt := 1; attempt <= 4; attempt++ {
			if a.Delay(call, attempt) != b.Delay(call, attempt) {
				t.Fatalf("same (seed, node, call, attempt) produced different delays")
			}
		}
	}
	// Different node or seed must decorrelate the jitter.
	c := NewBackoff(boCfg(), 42, 8)
	d := NewBackoff(boCfg(), 43, 7)
	same := 0
	for call := uint64(1); call <= 8; call++ {
		if a.Delay(call, 1) == c.Delay(call, 1) {
			same++
		}
		if a.Delay(call, 1) == d.Delay(call, 1) {
			same++
		}
	}
	if same == 16 {
		t.Fatal("jitter identical across different nodes and seeds")
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	cfg := boCfg()
	bo := NewBackoff(cfg, 1, 1)
	for call := uint64(1); call <= 3; call++ {
		prev := time.Duration(0)
		for attempt := 1; attempt <= 10; attempt++ {
			d := bo.Delay(call, attempt)
			lo := time.Duration(float64(cfg.Base) * (1 - cfg.Jitter))
			hi := time.Duration(float64(cfg.Cap) * (1 + cfg.Jitter))
			if d < lo || d > hi {
				t.Fatalf("delay %v outside jittered envelope [%v, %v]", d, lo, hi)
			}
			// The un-jittered base doubles, so the envelope midpoints grow
			// until the cap; only spot-check monotone growth of the bounds.
			if attempt > 6 && prev > 0 {
				if d > hi {
					t.Fatalf("capped delay %v exceeds %v", d, hi)
				}
			}
			prev = d
		}
	}
	if got := bo.Delay(1, 0); got != bo.Delay(1, 1) {
		t.Fatalf("attempt 0 should clamp to 1: %v vs %v", got, bo.Delay(1, 1))
	}
}
