// Package resil is the shared resilience layer for RPC client paths: an
// adaptive Jacobson/Karels RTO estimator fed from per-call round-trip
// times, capped exponential retry backoff with deterministic jitter, a
// per-peer failure detector (circuit breaker) that suspects dead peers
// instead of burning full timeouts on them, and tail-latency hedging in
// the Dean & Barroso style (a second attempt launched at the estimated
// p95, first response wins, loser cancelled).
//
// Everything is seed-deterministic. The layer draws no wall clock and no
// global randomness: RTO state is a pure function of the observed sample
// sequence, backoff jitter is a pure hash of (network seed, node id, call,
// attempt) from the same SplitMix64 family that seeds Node.Rand(), and the
// breaker runs on virtual time. Two trials with the same seed — at any
// worker count — make identical retry, hedge, and fast-fail decisions.
//
// A zero Config is the off switch: Client.Call degrades to exactly one
// simnet RPC with the caller's legacy fixed timeout, issuing no extra
// events and consuming no randomness, so wiring the layer through a
// subsystem behind a disabled-by-default config field leaves existing
// goldens byte-identical.
//
// Metric names (network-scoped, see DESIGN.md §6):
//
//	resil.rto_s         histogram of the RTO each attempt was issued with (s)
//	resil.hedge.fired   hedged second attempts launched
//	resil.hedge.won     hedged attempts that beat the primary
//	resil.breaker.open  breaker transitions into the open state
//	resil.retry.count   timeout-driven retransmits
//	resil.fastfail.count calls refused locally by an open breaker
package resil

import "time"

// Config tunes a resilient RPC client. The zero value disables the layer
// entirely (fixed-timeout passthrough); Defaults() returns the enabled
// configuration the X16 resilient mode runs with.
type Config struct {
	// Enabled turns the layer on. When false every other field is ignored
	// and Call passes straight through to the raw RPC with its fallback
	// timeout.
	Enabled bool
	// MaxAttempts bounds the total timeout-driven tries per operation,
	// including the first (hedges are not counted). Default 3.
	MaxAttempts int
	RTO         RTOConfig
	Backoff     BackoffConfig
	Breaker     BreakerConfig
	Hedge       HedgeConfig
	// Classify, when non-nil, inspects each successful response payload
	// for an application-level refusal (e.g. overload.Shed, via
	// overload.Classify). A non-nil classification is an explicitly
	// retryable outcome from a live peer, handled unlike a failure: the
	// breaker records a success (a server deliberately shedding load is
	// alive — shed storms must never trip breakers and amplify the
	// outage), no RTT sample is fed (sheds return in near-zero service
	// time and would drag the estimator below real service RTTs), and the
	// retry waits for the server's RetryAfterHint() — when the error
	// carries one — or the backoff, whichever is longer. When attempts are
	// exhausted the operation fails with the classified error. Nil keeps
	// historical behaviour bit for bit.
	Classify func(resp any) error
}

// RTOConfig clamps the Jacobson/Karels estimator.
type RTOConfig struct {
	Initial time.Duration // RTO before the first sample (default 1s)
	Min     time.Duration // lower clamp (default 200ms)
	Max     time.Duration // upper clamp, also caps timeout doubling (default 10s)
}

// BackoffConfig shapes the retry delay sequence.
type BackoffConfig struct {
	Base time.Duration // first retry delay before jitter (default 100ms)
	Cap  time.Duration // exponential growth ceiling (default 5s)
	// Jitter is the ± fraction applied to each delay (default 0.25). The
	// draw is a pure hash of (seed, node, call, attempt) — see Backoff.
	Jitter float64
}

// BreakerConfig tunes the per-peer failure detector.
type BreakerConfig struct {
	// Disabled turns the breaker off while the rest of the layer stays on.
	Disabled bool
	// Trip opens the breaker after this many consecutive failures
	// (default 3).
	Trip int
	// MinSamples gates the decayed-rate trip path: the success-rate test
	// only applies once this many outcomes were observed (default 8).
	MinSamples int
	// SuccessFloor opens the breaker when the decayed success rate falls
	// below it (default 0.2).
	SuccessFloor float64
	Cooldown     time.Duration // first open duration (default 5s)
	MaxCooldown  time.Duration // cooldown doubling ceiling (default 60s)
}

// HedgeConfig tunes tail-latency hedging.
type HedgeConfig struct {
	// Disabled turns hedging off while the rest of the layer stays on.
	Disabled bool
	// MinSamples is how many RTT samples a peer's estimator needs before
	// hedging against it (default 4) — hedging blind would double traffic
	// for nothing.
	MinSamples int
	// MinDelay floors the hedge launch delay (default 50ms) so a
	// microsecond-scale p95 estimate cannot degenerate into always-hedge.
	MinDelay time.Duration
}

// Defaults returns the enabled configuration used by X16's resilient mode.
func Defaults() Config {
	return Config{Enabled: true}.withDefaults()
}

func (c Config) withDefaults() Config {
	if !c.Enabled {
		return c
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.RTO.Initial == 0 {
		c.RTO.Initial = time.Second
	}
	if c.RTO.Min == 0 {
		c.RTO.Min = 200 * time.Millisecond
	}
	if c.RTO.Max == 0 {
		c.RTO.Max = 10 * time.Second
	}
	if c.Backoff.Base == 0 {
		c.Backoff.Base = 100 * time.Millisecond
	}
	if c.Backoff.Cap == 0 {
		c.Backoff.Cap = 5 * time.Second
	}
	if c.Backoff.Jitter == 0 {
		c.Backoff.Jitter = 0.25
	}
	if c.Breaker.Trip == 0 {
		c.Breaker.Trip = 3
	}
	if c.Breaker.MinSamples == 0 {
		c.Breaker.MinSamples = 8
	}
	if c.Breaker.SuccessFloor == 0 {
		c.Breaker.SuccessFloor = 0.2
	}
	if c.Breaker.Cooldown == 0 {
		c.Breaker.Cooldown = 5 * time.Second
	}
	if c.Breaker.MaxCooldown == 0 {
		c.Breaker.MaxCooldown = 60 * time.Second
	}
	if c.Hedge.MinSamples == 0 {
		c.Hedge.MinSamples = 4
	}
	if c.Hedge.MinDelay == 0 {
		c.Hedge.MinDelay = 50 * time.Millisecond
	}
	return c
}
