package resil

import (
	"testing"
	"time"
)

func rtoCfg() RTOConfig {
	return Config{Enabled: true}.withDefaults().RTO
}

func TestEstimatorFirstSample(t *testing.T) {
	e := NewEstimator(rtoCfg())
	if got := e.RTO(); got != time.Second {
		t.Fatalf("initial RTO = %v, want the 1s default", got)
	}
	if e.Samples() != 0 || e.SRTT() != 0 {
		t.Fatalf("fresh estimator has state: samples=%d srtt=%v", e.Samples(), e.SRTT())
	}
	e.Sample(400 * time.Millisecond)
	// First sample: SRTT = R, RTTVAR = R/2, RTO = R + 4·(R/2) = 3R.
	if got := e.SRTT(); got != 400*time.Millisecond {
		t.Fatalf("SRTT after first sample = %v, want 400ms", got)
	}
	if got := e.RTO(); got != 1200*time.Millisecond {
		t.Fatalf("RTO after first sample = %v, want 1.2s", got)
	}
}

func TestEstimatorSmoothing(t *testing.T) {
	e := NewEstimator(rtoCfg())
	e.Sample(100 * time.Millisecond)
	e.Sample(100 * time.Millisecond)
	// Identical samples shrink the variance; the RTO must decrease toward
	// SRTT + floor while staying clamped at Min.
	first := e.RTO()
	for i := 0; i < 20; i++ {
		e.Sample(100 * time.Millisecond)
	}
	if got := e.RTO(); got >= first {
		t.Fatalf("RTO did not shrink on a steady link: %v -> %v", first, got)
	}
	if got := e.RTO(); got < rtoCfg().Min {
		t.Fatalf("RTO %v below Min %v", got, rtoCfg().Min)
	}
}

func TestEstimatorClampAndNegative(t *testing.T) {
	e := NewEstimator(rtoCfg())
	e.Sample(time.Hour) // absurd sample clamps at Max
	if got := e.RTO(); got != rtoCfg().Max {
		t.Fatalf("RTO = %v, want clamp at Max %v", got, rtoCfg().Max)
	}
	e2 := NewEstimator(rtoCfg())
	e2.Sample(-time.Second) // negative RTT treated as zero
	if got := e2.RTO(); got != rtoCfg().Min {
		t.Fatalf("RTO after negative sample = %v, want Min %v", got, rtoCfg().Min)
	}
}

func TestEstimatorKarnBackoff(t *testing.T) {
	e := NewEstimator(rtoCfg())
	e.Sample(100 * time.Millisecond) // RTO = 300ms
	r0 := e.RTO()
	e.OnTimeout()
	if got := e.RTO(); got != 2*r0 {
		t.Fatalf("RTO after timeout = %v, want doubled %v", got, 2*r0)
	}
	for i := 0; i < 10; i++ {
		e.OnTimeout()
	}
	if got := e.RTO(); got != rtoCfg().Max {
		t.Fatalf("RTO after repeated timeouts = %v, want Max %v", got, rtoCfg().Max)
	}
	// The next valid sample drops the boost entirely.
	e.Sample(100 * time.Millisecond)
	if got := e.RTO(); got >= rtoCfg().Max {
		t.Fatalf("sample did not clear the timeout boost: RTO = %v", got)
	}
}

func TestEstimatorP95(t *testing.T) {
	e := NewEstimator(rtoCfg())
	if got := e.P95(); got != e.RTO() {
		t.Fatalf("pre-sample P95 = %v, want RTO fallback %v", got, e.RTO())
	}
	e.Sample(100 * time.Millisecond)
	if got := e.P95(); got > e.RTO() {
		t.Fatalf("P95 %v exceeds RTO %v", got, e.RTO())
	}
	if got := e.P95(); got <= 0 {
		t.Fatalf("P95 = %v, want positive", got)
	}
}

func TestEstimatorSeedPrior(t *testing.T) {
	e := NewEstimator(rtoCfg())
	e.SeedPrior(300 * time.Millisecond)
	if got := e.RTO(); got != 300*time.Millisecond {
		t.Fatalf("seeded RTO = %v, want 300ms", got)
	}
	e.SeedPrior(time.Hour) // prior is clamped like everything else
	if got := e.RTO(); got != rtoCfg().Max {
		t.Fatalf("seeded RTO = %v, want clamp at Max", got)
	}
	e.Sample(100 * time.Millisecond)
	before := e.RTO()
	e.SeedPrior(5 * time.Second) // no effect once sampled
	if got := e.RTO(); got != before {
		t.Fatalf("SeedPrior after a sample moved RTO %v -> %v", before, got)
	}
}
