package resil

import "time"

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState int

const (
	// BreakerClosed: traffic flows; outcomes are being scored.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer is suspected dead; calls fail fast until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe call is in flight; its outcome decides
	// between closing and re-opening with a doubled cooldown.
	BreakerHalfOpen
)

// Breaker is a per-peer failure detector. It opens on either of two
// signals: a run of consecutive failures (a dead peer times out every
// attempt), or a decayed success rate sinking below the floor (a flaky
// peer that still answers occasionally — consecutive counting alone never
// catches it). Time is the caller's virtual clock, passed in explicitly,
// so the breaker itself holds no clock and stays deterministic.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	consec   int     // consecutive failures
	rate     float64 // decayed success rate, starts optimistic at 1
	samples  int
	cooldown time.Duration
	openedAt time.Duration // virtual time the current open period started
	opens    int
}

// rateDecay is the EWMA factor for the success rate: each outcome carries
// 20% weight, so ~8 outcomes dominate the estimate — matched to the
// default MinSamples gate.
const rateDecay = 0.8

// NewBreaker returns a closed breaker with an optimistic history.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg, rate: 1, cooldown: cfg.Cooldown}
}

// Allow reports whether a new call to the peer may be issued at virtual
// time now. An open breaker whose cooldown has elapsed admits exactly one
// probe (transitioning to half-open); further calls fail fast until the
// probe's outcome arrives.
func (b *Breaker) Allow(now time.Duration) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now-b.openedAt >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // BreakerHalfOpen: probe outstanding
		return false
	}
}

// Success records a completed call. A half-open probe success closes the
// breaker and resets the cooldown ladder.
func (b *Breaker) Success() {
	b.consec = 0
	b.observe(1)
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.cooldown = b.cfg.Cooldown
	}
}

// Failure records a failed call at virtual time now, opening the breaker
// when a trip condition holds. A half-open probe failure re-opens with a
// doubled cooldown (capped at MaxCooldown). Reports whether this failure
// transitioned the breaker into the open state.
func (b *Breaker) Failure(now time.Duration) bool {
	b.consec++
	b.observe(0)
	switch b.state {
	case BreakerHalfOpen:
		b.cooldown *= 2
		if b.cooldown > b.cfg.MaxCooldown {
			b.cooldown = b.cfg.MaxCooldown
		}
		b.state = BreakerOpen
		b.openedAt = now
		b.opens++
		return true
	case BreakerClosed:
		if b.consec >= b.cfg.Trip ||
			(b.samples >= b.cfg.MinSamples && b.rate < b.cfg.SuccessFloor) {
			b.state = BreakerOpen
			b.openedAt = now
			b.opens++
			return true
		}
	}
	return false
}

func (b *Breaker) observe(outcome float64) {
	b.rate = rateDecay*b.rate + (1-rateDecay)*outcome
	b.samples++
}

// State returns the current machine state.
func (b *Breaker) State() BreakerState { return b.state }

// Opens counts transitions into the open state over the breaker's life.
func (b *Breaker) Opens() int { return b.opens }
