package resil

import (
	"testing"
	"time"
)

func brkCfg() BreakerConfig {
	return Config{Enabled: true}.withDefaults().Breaker
}

func TestBreakerConsecutiveTrip(t *testing.T) {
	b := NewBreaker(brkCfg())
	now := time.Duration(0)
	if !b.Allow(now) {
		t.Fatal("fresh breaker refused a call")
	}
	for i := 0; i < brkCfg().Trip-1; i++ {
		if b.Failure(now) {
			t.Fatalf("breaker opened after %d failures, trip is %d", i+1, brkCfg().Trip)
		}
	}
	if !b.Failure(now) {
		t.Fatal("breaker did not open at the trip threshold")
	}
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state=%v opens=%d after trip", b.State(), b.Opens())
	}
	if b.Allow(now + brkCfg().Cooldown/2) {
		t.Fatal("open breaker admitted a call before cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	cfg := brkCfg()
	b := NewBreaker(cfg)
	now := time.Duration(0)
	for i := 0; i < cfg.Trip; i++ {
		b.Failure(now)
	}
	probeAt := now + cfg.Cooldown
	if !b.Allow(probeAt) {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", b.State())
	}
	if b.Allow(probeAt) {
		t.Fatal("second call admitted while probe outstanding")
	}
	// Probe failure: re-open with doubled cooldown.
	if !b.Failure(probeAt) {
		t.Fatal("half-open probe failure did not re-open")
	}
	if b.Allow(probeAt + cfg.Cooldown) {
		t.Fatal("re-opened breaker ignored the doubled cooldown")
	}
	if !b.Allow(probeAt + 2*cfg.Cooldown) {
		t.Fatal("doubled cooldown elapsed but no probe admitted")
	}
	// Probe success: closed, ladder reset.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if b.cooldown != cfg.Cooldown {
		t.Fatalf("cooldown ladder not reset: %v", b.cooldown)
	}
}

func TestBreakerCooldownCap(t *testing.T) {
	cfg := brkCfg()
	b := NewBreaker(cfg)
	now := time.Duration(0)
	for i := 0; i < cfg.Trip; i++ {
		b.Failure(now)
	}
	// Fail every probe; the cooldown must stop doubling at MaxCooldown.
	for i := 0; i < 8; i++ {
		now += b.cooldown
		if !b.Allow(now) {
			t.Fatalf("probe %d not admitted after cooldown", i)
		}
		b.Failure(now)
	}
	if b.cooldown != cfg.MaxCooldown {
		t.Fatalf("cooldown = %v, want capped at %v", b.cooldown, cfg.MaxCooldown)
	}
}

func TestBreakerRateTrip(t *testing.T) {
	// Isolate the decayed-rate path: a huge Trip keeps the consecutive
	// counter out of play, so only the EWMA success rate can open.
	cfg := brkCfg()
	cfg.Trip = 100
	b := NewBreaker(cfg)
	now := time.Duration(0)
	// A 2:1 failure ratio decays the rate toward ~1/3, above the 0.2
	// floor: the breaker must stay closed however long it runs.
	for i := 0; i < 40; i++ {
		b.Success()
		b.Failure(now)
		b.Failure(now)
	}
	if b.State() != BreakerClosed {
		t.Fatal("rate path tripped at a ~33% success rate, floor is 20%")
	}
	// An 8:1 ratio sinks the rate well under the floor; the rate path must
	// open the breaker long before 100 consecutive failures.
	opened := false
	for i := 0; i < 10 && !opened; i++ {
		b.Success()
		for j := 0; j < 8; j++ {
			if b.Failure(now) {
				opened = true
				break
			}
		}
	}
	if !opened || b.consec >= cfg.Trip {
		t.Fatalf("decayed-rate trip: opened=%v consec=%d", opened, b.consec)
	}
}

func TestBreakerMinSamplesGate(t *testing.T) {
	cfg := brkCfg()
	cfg.Trip = 100
	b := NewBreaker(cfg)
	// Fewer outcomes than MinSamples: the rate path must hold fire even at
	// a 0% success rate.
	for i := 0; i < cfg.MinSamples-1; i++ {
		if b.Failure(0) {
			t.Fatalf("rate path tripped on outcome %d, MinSamples is %d", i+1, cfg.MinSamples)
		}
	}
}
