package resil

import (
	"time"

	"repro/internal/simnet"
)

// Backoff computes capped exponential retry delays with deterministic
// jitter. The jitter is not consumed from the node's shared RNG stream —
// that would make retry timing perturb every later draw on the node and
// couple unrelated subsystems through the fault schedule. Instead each
// delay hashes (network seed, node id, call sequence, attempt) through the
// same SplitMix64 finalizer that whitens the per-node streams, so the
// sequence is a pure function of those four values: bit-identical across
// trials, worker counts, and replays, which the repo-root property test
// pins.
type Backoff struct {
	cfg BackoffConfig
	key uint64 // seed and node id, pre-mixed
}

// NewBackoff derives the delay generator for one (network seed, node)
// pair.
func NewBackoff(cfg BackoffConfig, seed int64, node simnet.NodeID) Backoff {
	return Backoff{
		cfg: cfg,
		key: simnet.Mix64(simnet.Mix64(uint64(seed)) ^ (uint64(node)+1)*0x9E3779B97F4A7C15),
	}
}

// Delay returns the pause before retry `attempt` (1 = first retry) of the
// call-th operation issued by this client: Base·2^(attempt−1) capped at
// Cap, jittered by ±Jitter.
func (b Backoff) Delay(call uint64, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	base := b.cfg.Base
	for i := 1; i < attempt && base < b.cfg.Cap; i++ {
		base *= 2
	}
	if base > b.cfg.Cap {
		base = b.cfg.Cap
	}
	h := simnet.Mix64(b.key ^ call*0x9E3779B97F4A7C15 ^ uint64(attempt))
	// Map the top 53 bits to a uniform [0,1), then to [−Jitter, +Jitter].
	u := float64(h>>11) / (1 << 53)
	d := time.Duration(float64(base) * (1 + b.cfg.Jitter*(2*u-1)))
	if d < 0 {
		d = 0
	}
	return d
}
