package resil

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simnet"
)

// shed mirrors overload.Shed at test scale (resil must not import the
// overload package — the Classify hook is the only coupling).
type shed struct{ retryAfter time.Duration }

// shedErr mirrors *overload.ErrOverloaded: classified error with a hint.
type shedErr struct{ after time.Duration }

func (e *shedErr) Error() string                 { return "overloaded" }
func (e *shedErr) RetryAfterHint() time.Duration { return e.after }
func classifyShed(resp any) error {
	if s, ok := resp.(shed); ok {
		return &shedErr{after: s.retryAfter}
	}
	return nil
}

// shedWorld: the caller's Client classifies sheds; the server sheds the
// first n requests to "load" and then serves.
func shedWorld(t *testing.T, cfg Config, shedFirst int, hint time.Duration) (*clientWorld, *int) {
	t.Helper()
	cfg.Classify = classifyShed
	w := newClientWorld(t, cfg)
	srv := simnet.NewRPCNode(w.server)
	seen := new(int)
	srv.Serve("load", func(from simnet.NodeID, req any) (any, int) {
		*seen++
		if *seen <= shedFirst {
			return shed{retryAfter: hint}, 16
		}
		return req, 16
	})
	return w, seen
}

// TestShedStormKeepsBreakerClosed is the satellite regression: a storm of
// deliberate server sheds must never trip the caller's circuit breaker —
// a shedding server is alive, and breaking on sheds would turn graceful
// degradation into a self-inflicted outage.
func TestShedStormKeepsBreakerClosed(t *testing.T) {
	cfg := Defaults()
	cfg.MaxAttempts = 1 // every shed fails its operation immediately
	w, _ := shedWorld(t, cfg, 1<<30, 10*time.Millisecond)
	for i := 0; i < 50; i++ {
		_, err := w.call(t, "load", time.Second)
		var se *shedErr
		if !errors.As(err, &se) {
			t.Fatalf("shed %d classified as %v", i, err)
		}
	}
	b := w.res.breaker(w.server.ID())
	if !b.Allow(w.nw.Now()) {
		t.Fatal("breaker opened under a 50-shed storm")
	}
	if got := w.caller.Obs().Counter("resil.shed.count").Value(); got != 50 {
		t.Fatalf("resil.shed.count = %d, want 50", got)
	}
	if open := w.caller.Obs().Counter("resil.breaker.open").Value(); open != 0 {
		t.Fatalf("resil.breaker.open = %d, want 0", open)
	}
}

// TestShedRetryHonorsHint: a shed with a RetryAfter hint farther out than
// the backoff delays the retry to the hint; the retry then succeeds.
func TestShedRetryHonorsHint(t *testing.T) {
	const hint = 2 * time.Second
	w, seen := shedWorld(t, Defaults(), 1, hint)
	start := w.nw.Now()
	resp, err := w.call(t, "load", time.Second)
	if err != nil || resp != "ping" {
		t.Fatalf("hinted retry: resp=%v err=%v", resp, err)
	}
	if *seen != 2 {
		t.Fatalf("server saw %d requests, want shed+retry", *seen)
	}
	// The retry may not be issued before the hint elapses (backoff base is
	// 100ms±25%, so the 2s hint dominates).
	if elapsed := w.nw.Now() - start; elapsed < hint {
		t.Fatalf("operation completed at %v, before the %v hint", elapsed, hint)
	}
}

// TestShedDoesNotFeedEstimator: sheds return in near-zero service time;
// sampling them would drag the RTO below real service RTTs.
func TestShedDoesNotFeedEstimator(t *testing.T) {
	w, _ := shedWorld(t, Defaults(), 1, 10*time.Millisecond)
	if resp, err := w.call(t, "load", time.Second); err != nil || resp != "ping" {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	// Two round trips completed (shed + served) but only the served one
	// may contribute a sample.
	if got := w.res.estimator(w.server.ID()).Samples(); got != 1 {
		t.Fatalf("estimator samples = %d, want 1 (shed must not sample)", got)
	}
}

// TestShedExhaustionFailsWithClassifiedError: when every attempt sheds,
// the operation fails with the classified error so callers can fail over
// to another replica.
func TestShedExhaustionFailsWithClassifiedError(t *testing.T) {
	cfg := Defaults()
	cfg.MaxAttempts = 3
	w, seen := shedWorld(t, cfg, 1<<30, 5*time.Millisecond)
	_, err := w.call(t, "load", time.Second)
	var se *shedErr
	if !errors.As(err, &se) {
		t.Fatalf("exhausted shed err = %v, want classified", err)
	}
	if *seen != 3 {
		t.Fatalf("server saw %d attempts, want MaxAttempts=3", *seen)
	}
}
