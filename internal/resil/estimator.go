package resil

import "time"

// Estimator is a Jacobson/Karels retransmission-timeout estimator
// (RFC 6298 constants): on each round-trip sample R,
//
//	RTTVAR ← (1−β)·RTTVAR + β·|SRTT − R|   (β = 1/4)
//	SRTT   ← (1−α)·SRTT + α·R              (α = 1/8)
//	RTO    ← clamp(SRTT + max(G, 4·RTTVAR), Min, Max)
//
// with the first sample initializing SRTT = R, RTTVAR = R/2, and a
// granularity floor G of 10ms on the variance term. A timeout doubles the
// RTO (Karn's backoff), clamped at Max; the next valid sample recomputes
// it from SRTT/RTTVAR, dropping the boost. Karn's rule on sampling is the
// caller's side of the contract: Client feeds no samples from operations
// that retransmitted (see client.go for why hedged completions still
// sample).
//
// The estimator state is a pure function of the call sequence made on it —
// no clock, no randomness — which the repo-root property test pins.
type Estimator struct {
	cfg     RTOConfig
	srtt    float64 // seconds
	rttvar  float64 // seconds
	samples int
	rto     time.Duration
}

// rtoGranularity is the variance floor G: below it the 4·RTTVAR term of a
// nearly jitter-free link would collapse the RTO onto SRTT and every
// on-time reply would race its own timeout.
const rtoGranularity = 10 * time.Millisecond

// NewEstimator returns an estimator clamped by cfg, starting at the
// clamped initial RTO.
func NewEstimator(cfg RTOConfig) *Estimator {
	e := &Estimator{cfg: cfg}
	e.rto = e.clamp(cfg.Initial)
	return e
}

// Sample feeds one measured round trip and recomputes the RTO, clearing
// any timeout backoff.
func (e *Estimator) Sample(rtt time.Duration) {
	r := rtt.Seconds()
	if r < 0 {
		r = 0
	}
	if e.samples == 0 {
		e.srtt = r
		e.rttvar = r / 2
	} else {
		d := e.srtt - r
		if d < 0 {
			d = -d
		}
		e.rttvar = 0.75*e.rttvar + 0.25*d
		e.srtt = 0.875*e.srtt + 0.125*r
	}
	e.samples++
	v := 4 * e.rttvar
	if g := rtoGranularity.Seconds(); v < g {
		v = g
	}
	e.rto = e.clamp(time.Duration((e.srtt + v) * float64(time.Second)))
}

// SeedPrior warms a fresh estimator with a prior RTO — the Client passes
// its cross-peer estimate so a never-contacted peer does not pay the
// cold-start Initial (and then Karn-double it) on its first attempts.
// Only effective before the first sample; the first real sample replaces
// it entirely per the first-sample rule.
func (e *Estimator) SeedPrior(rto time.Duration) {
	if e.samples == 0 {
		e.rto = e.clamp(rto)
	}
}

// OnTimeout doubles the RTO (Karn's exponential timeout backoff), clamped
// at Max. The boost persists until the next valid sample.
func (e *Estimator) OnTimeout() {
	e.rto = e.clamp(e.rto * 2)
}

// RTO returns the current retransmission timeout, always within
// [Min, Max].
func (e *Estimator) RTO() time.Duration { return e.rto }

// Samples returns how many round trips have been fed in.
func (e *Estimator) Samples() int { return e.samples }

// SRTT returns the smoothed round-trip estimate (zero before the first
// sample).
func (e *Estimator) SRTT() time.Duration {
	return time.Duration(e.srtt * float64(time.Second))
}

// P95 estimates the 95th-percentile round trip as SRTT + 2·RTTVAR — the
// hedge launch point. Before any sample it falls back to the current RTO,
// and it never exceeds the RTO (hedging after the retransmit fires would
// be pure waste).
func (e *Estimator) P95() time.Duration {
	if e.samples == 0 {
		return e.rto
	}
	p := time.Duration((e.srtt + 2*e.rttvar) * float64(time.Second))
	if p > e.rto {
		p = e.rto
	}
	if p < 0 {
		p = 0
	}
	return p
}

func (e *Estimator) clamp(d time.Duration) time.Duration {
	if d < e.cfg.Min {
		return e.cfg.Min
	}
	if d > e.cfg.Max {
		return e.cfg.Max
	}
	return d
}
