package resil

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simnet"
)

// clientWorld is the two-node harness behind the Client tests: node 0
// calls, node 1 serves "echo" (synchronously) and "slow" (asynchronously,
// with a per-request delay the test scripts through delays).
type clientWorld struct {
	nw     *simnet.Network
	caller *simnet.Node
	server *simnet.Node
	res    *Client
	delays []time.Duration // consumed per "slow" request, in arrival order
}

func newClientWorld(t *testing.T, cfg Config) *clientWorld {
	t.Helper()
	w := &clientWorld{nw: simnet.New(7)}
	w.caller = w.nw.AddNode()
	w.server = w.nw.AddNode()
	srv := simnet.NewRPCNode(w.server)
	srv.Serve("echo", func(from simnet.NodeID, req any) (any, int) {
		return req, 16
	})
	srv.ServeAsync("slow", func(from simnet.NodeID, req any, reply func(resp any, respSize int)) {
		d := time.Duration(0)
		if len(w.delays) > 0 {
			d, w.delays = w.delays[0], w.delays[1:]
		}
		w.server.After(d, func() { reply(req, 16) })
	})
	w.res = New(simnet.NewRPCNode(w.caller), cfg)
	return w
}

// call issues one resilient call and runs the network until it completes.
func (w *clientWorld) call(t *testing.T, method string, fallback time.Duration) (any, error) {
	t.Helper()
	var gotResp any
	var gotErr error
	calls := 0
	w.res.Call(w.server.ID(), method, "ping", 16, fallback, func(resp any, err error) {
		calls++
		gotResp, gotErr = resp, err
	})
	// RunAll is safe here: the harness schedules no recurring timers, so
	// the queue drains once the operation (and any late replies) settle —
	// and the clock stays at the last real event, which the timing
	// assertions below rely on.
	w.nw.RunAll()
	if calls != 1 {
		t.Fatalf("done invoked %d times, want exactly once", calls)
	}
	return gotResp, gotErr
}

func TestClientDisabledPassthrough(t *testing.T) {
	w := newClientWorld(t, Config{})
	if w.res.Enabled() {
		t.Fatal("zero Config reported enabled")
	}
	if resp, err := w.call(t, "echo", time.Second); err != nil || resp != "ping" {
		t.Fatalf("passthrough echo: resp=%v err=%v", resp, err)
	}
	// With the server down, the only attempt times out at the caller's
	// legacy fallback — no retry, no breaker, no state.
	w.server.Crash()
	start := w.nw.Now()
	if _, err := w.call(t, "echo", 700*time.Millisecond); !errors.Is(err, simnet.ErrRPCTimeout) {
		t.Fatalf("passthrough timeout err = %v", err)
	}
	if got := w.nw.Now() - start; got != 700*time.Millisecond {
		t.Fatalf("passthrough gave up after %v, want the 700ms fallback", got)
	}
}

func TestClientSuccessFeedsEstimator(t *testing.T) {
	w := newClientWorld(t, Defaults())
	if resp, err := w.call(t, "echo", time.Second); err != nil || resp != "ping" {
		t.Fatalf("echo: resp=%v err=%v", resp, err)
	}
	e := w.res.estimator(w.server.ID())
	if e.Samples() != 1 {
		t.Fatalf("peer estimator samples = %d, want 1", e.Samples())
	}
	if w.res.global.Samples() != 1 {
		t.Fatalf("global estimator samples = %d, want 1", w.res.global.Samples())
	}
	// A fresh peer now inherits the measured global prior, not the 1s
	// cold-start Initial.
	fresh := w.res.estimator(w.server.ID() + 100)
	if fresh.RTO() != w.res.global.RTO() {
		t.Fatalf("fresh peer RTO %v, want seeded global %v", fresh.RTO(), w.res.global.RTO())
	}
}

func TestClientRetryAfterTimeout(t *testing.T) {
	w := newClientWorld(t, Defaults())
	w.server.Crash()
	// Primary times out at the 1s initial RTO; the first backoff delay is
	// 100ms±25%, so the server is back up before the retry is issued.
	w.caller.After(1050*time.Millisecond, w.server.Restart)
	if resp, err := w.call(t, "echo", time.Second); err != nil || resp != "ping" {
		t.Fatalf("retried echo: resp=%v err=%v", resp, err)
	}
	if got := w.res.m.retries.Value(); got != 1 {
		t.Fatalf("resil.retry.count = %d, want 1", got)
	}
	// Karn's rule: the retried operation's completion fed no RTT sample.
	if got := w.res.estimator(w.server.ID()).Samples(); got != 0 {
		t.Fatalf("retransmitted op fed %d samples, want 0", got)
	}
}

func TestClientExhaustionOpensBreaker(t *testing.T) {
	w := newClientWorld(t, Defaults())
	w.server.Crash()
	_, err := w.call(t, "echo", time.Second)
	if !errors.Is(err, simnet.ErrRPCTimeout) {
		t.Fatalf("exhausted op err = %v, want timeout", err)
	}
	if got := w.res.m.retries.Value(); got != int64(w.res.cfg.MaxAttempts-1) {
		t.Fatalf("retries = %d, want %d", got, w.res.cfg.MaxAttempts-1)
	}
	// Three timeouts tripped the per-peer breaker; the next call is
	// refused locally without touching the network.
	if got := w.res.m.breakerOpen.Value(); got != 1 {
		t.Fatalf("resil.breaker.open = %d, want 1", got)
	}
	sentBefore := w.nw.Trace().Sent
	if _, err := w.call(t, "echo", time.Second); !errors.Is(err, ErrSuspected) {
		t.Fatalf("fast-fail err = %v, want ErrSuspected", err)
	}
	if w.nw.Trace().Sent != sentBefore {
		t.Fatal("fast-failed call still sent traffic")
	}
	if got := w.res.m.fastfail.Value(); got != 1 {
		t.Fatalf("resil.fastfail.count = %d, want 1", got)
	}
}

func TestClientHedgeWins(t *testing.T) {
	w := newClientWorld(t, Defaults())
	// Four fast completions warm the peer estimator past Hedge.MinSamples
	// and shrink the RTO toward the 200ms Min clamp.
	for i := 0; i < 4; i++ {
		if _, err := w.call(t, "slow", time.Second); err != nil {
			t.Fatalf("warm-up %d: %v", i, err)
		}
	}
	if got := w.res.estimator(w.server.ID()).Samples(); got < w.res.cfg.Hedge.MinSamples {
		t.Fatalf("warm-up left %d samples, need %d", got, w.res.cfg.Hedge.MinSamples)
	}
	// Fifth op: the primary's reply is held for 150ms — past the ~50ms
	// hedge point but inside the RTO — while the hedge's reply is
	// immediate, so the hedge fires, wins, and the primary is cancelled.
	w.delays = []time.Duration{150 * time.Millisecond, 0}
	if resp, err := w.call(t, "slow", time.Second); err != nil || resp != "ping" {
		t.Fatalf("hedged call: resp=%v err=%v", resp, err)
	}
	if got := w.res.m.hedgeFired.Value(); got != 1 {
		t.Fatalf("resil.hedge.fired = %d, want 1", got)
	}
	if got := w.res.m.hedgeWon.Value(); got != 1 {
		t.Fatalf("resil.hedge.won = %d, want 1", got)
	}
	if got := w.res.m.retries.Value(); got != 0 {
		t.Fatalf("hedged op also retried: retries = %d", got)
	}
}

func TestClientRefusalNotRetried(t *testing.T) {
	w := newClientWorld(t, Defaults())
	_, err := w.call(t, "nosuch", time.Second)
	if !errors.Is(err, simnet.ErrNotServed) {
		t.Fatalf("unserved method err = %v, want ErrNotServed", err)
	}
	if got := w.res.m.retries.Value(); got != 0 {
		t.Fatalf("refusal was retried: retries = %d", got)
	}
}
