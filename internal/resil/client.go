package resil

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// ErrSuspected is the fast-fail cause reported when an open breaker
// refuses a call locally instead of burning a timeout on a suspected-dead
// peer. Matchable with errors.Is.
var ErrSuspected = errors.New("resil: peer suspected down")

// Client wraps a simnet RPC endpoint with the resilience layer: adaptive
// per-peer RTO, bounded retries with deterministic backoff, per-peer
// circuit breaking, and hedged requests. One Client serves one caller
// node; peer state (estimator, breaker) is keyed by target node id.
type Client struct {
	rpc *simnet.RPCNode
	cfg Config
	bo  Backoff
	est map[simnet.NodeID]*Estimator
	brk map[simnet.NodeID]*Breaker
	// global aggregates every sample across peers; it seeds fresh per-peer
	// estimators so a never-contacted peer starts from the client's measured
	// reality instead of the cold-start Initial.
	global *Estimator
	m      *resilMetrics
	// mShed counts classified sheds. Created lazily on the first shed —
	// not in the eager Memo bundle — so runs that never see a shed (every
	// pre-X20 golden) keep their exported metric set unchanged.
	mShed *obs.Counter
	seq   uint64 // per-client operation counter, keys backoff jitter
}

// resilMetrics is the package's network-scoped metric bundle, resolved
// once per registry via Memo (see DESIGN.md §6 for the name table).
type resilMetrics struct {
	rto         *obs.Histogram
	hedgeFired  *obs.Counter
	hedgeWon    *obs.Counter
	breakerOpen *obs.Counter
	retries     *obs.Counter
	fastfail    *obs.Counter
}

func metricsFor(r *obs.Registry) *resilMetrics {
	return r.Memo("resil", func() any {
		return &resilMetrics{
			rto:         r.Histogram("resil.rto_s"),
			hedgeFired:  r.Counter("resil.hedge.fired"),
			hedgeWon:    r.Counter("resil.hedge.won"),
			breakerOpen: r.Counter("resil.breaker.open"),
			retries:     r.Counter("resil.retry.count"),
			fastfail:    r.Counter("resil.fastfail.count"),
		}
	}).(*resilMetrics)
}

// New wraps rpc with the layer configured by cfg. A disabled config makes
// the Client a pure passthrough: no metrics are registered, no state is
// allocated, and Call forwards verbatim — so construction alone cannot
// perturb an existing golden run.
func New(rpc *simnet.RPCNode, cfg Config) *Client {
	c := &Client{rpc: rpc, cfg: cfg.withDefaults()}
	if c.cfg.Enabled {
		node := rpc.Node()
		c.bo = NewBackoff(c.cfg.Backoff, node.Network().Seed(), node.ID())
		c.est = map[simnet.NodeID]*Estimator{}
		c.brk = map[simnet.NodeID]*Breaker{}
		c.global = NewEstimator(c.cfg.RTO)
		c.m = metricsFor(node.Obs())
	}
	return c
}

// Enabled reports whether the layer is active (false means fixed-timeout
// passthrough).
func (c *Client) Enabled() bool { return c.cfg.Enabled }

// RPC returns the wrapped endpoint.
func (c *Client) RPC() *simnet.RPCNode { return c.rpc }

func (c *Client) estimator(id simnet.NodeID) *Estimator {
	e, ok := c.est[id]
	if !ok {
		e = NewEstimator(c.cfg.RTO)
		if c.global.Samples() > 0 {
			e.SeedPrior(c.global.RTO())
		}
		c.est[id] = e
	}
	return e
}

func (c *Client) breaker(id simnet.NodeID) *Breaker {
	b, ok := c.brk[id]
	if !ok {
		b = NewBreaker(c.cfg.Breaker)
		c.brk[id] = b
	}
	return b
}

// PeerSRTT returns the smoothed round-trip estimate for a peer, and
// whether one exists: false when the layer is disabled or the peer has
// never contributed a sample (the cold-start Initial is a guess, not a
// measurement, so it is not reported). Nearest-replica routing in
// internal/replic ranks holders on exactly this.
func (c *Client) PeerSRTT(id simnet.NodeID) (time.Duration, bool) {
	if !c.cfg.Enabled {
		return 0, false
	}
	e, ok := c.est[id]
	if !ok || e.Samples() == 0 {
		return 0, false
	}
	return e.SRTT(), true
}

// Call issues a resilient request to the target's method; the signature
// mirrors RPCNode.Call so subsystems swap it in without restructuring.
// done is invoked exactly once. fallback is the caller's legacy fixed
// timeout: it is the per-attempt timeout when the layer is disabled, and
// is ignored when enabled (the adaptive RTO takes over entirely).
//
// Enabled behaviour per operation: an open breaker fails fast (still
// asynchronously, preserving callback ordering); otherwise attempts are
// issued with the peer's current RTO as timeout, a timeout schedules the
// next attempt after a jittered backoff up to MaxAttempts, and on the
// first attempt a single hedge may be launched at the estimated p95 —
// first response wins and the loser is cancelled through its CallRef so
// its callback never runs.
func (c *Client) Call(to simnet.NodeID, method string, req any, reqSize int, fallback time.Duration, done func(resp any, err error)) {
	if !c.cfg.Enabled {
		c.rpc.Call(to, method, req, reqSize, fallback, done)
		return
	}
	node := c.rpc.Node()
	if !c.cfg.Breaker.Disabled && !c.breaker(to).Allow(node.Now()) {
		c.m.fastfail.Inc()
		err := fmt.Errorf("resil: call %s to node %d refused: %w", method, to, ErrSuspected)
		node.After(0, func() { done(nil, err) })
		return
	}
	c.seq++
	o := &op{c: c, to: to, method: method, req: req, reqSize: reqSize, done: done, id: c.seq}
	o.launch(false)
}

// op is one resilient operation: up to MaxAttempts timeout-driven
// attempts plus at most one hedge, sharing a single done callback.
type op struct {
	c       *Client
	to      simnet.NodeID
	method  string
	req     any
	reqSize int
	done    func(resp any, err error)
	id      uint64

	attempts     int  // timeout-driven attempts launched (1 = primary)
	hedged       bool // hedge launched
	retrans      bool // Karn: some attempt was retransmitted
	retryPending bool // a backoff timer is armed
	finished     bool
	inflight     int
	primary      simnet.CallRef // newest timeout-driven attempt
	hedge        simnet.CallRef
	hedgeTimer   simnet.Timer
	retryTimer   simnet.Timer
	lastErr      error
}

func (o *op) launch(isHedge bool) {
	c := o.c
	est := c.estimator(o.to)
	rto := est.RTO()
	c.m.rto.Observe(rto.Seconds())
	o.inflight++
	if !isHedge {
		o.attempts++
	}
	ref := c.rpc.CallEx(o.to, o.method, o.req, o.reqSize, rto, func(resp any, rtt time.Duration, err error) {
		o.complete(isHedge, resp, rtt, err)
	})
	if isHedge {
		o.hedge = ref
		return
	}
	o.primary = ref
	if o.attempts == 1 && !c.cfg.Hedge.Disabled && est.Samples() >= c.cfg.Hedge.MinSamples {
		delay := est.P95()
		if delay < c.cfg.Hedge.MinDelay {
			delay = c.cfg.Hedge.MinDelay
		}
		// A hedge at or past the RTO is pointless: the retransmit path
		// already covers that region.
		if delay < rto {
			o.hedgeTimer = c.rpc.Node().AfterTimer(delay, o.fireHedge)
		}
	}
}

func (o *op) fireHedge() {
	if o.finished || o.hedged {
		return
	}
	o.hedged = true
	o.c.m.hedgeFired.Inc()
	o.launch(true)
}

func (o *op) fireRetry() {
	if o.finished {
		return
	}
	o.retryPending = false
	o.launch(false)
}

func (o *op) complete(isHedge bool, resp any, rtt time.Duration, err error) {
	o.inflight--
	if o.finished {
		return
	}
	c := o.c
	if err == nil {
		if c.cfg.Classify != nil {
			if cerr := c.cfg.Classify(resp); cerr != nil {
				o.completeShed(cerr)
				return
			}
		}
		if !c.cfg.Breaker.Disabled {
			c.breaker(o.to).Success()
		}
		// Karn's rule: an operation that retransmitted feeds no sample —
		// with a doubled RTO in force, locking in samples measured under
		// backoff would keep the estimator self-confirming. A hedge
		// completion does sample: call ids make the reply-to-attempt
		// mapping unambiguous, and the p95 estimate needs exactly these
		// tail data points.
		if !o.retrans {
			c.estimator(o.to).Sample(rtt)
			c.global.Sample(rtt)
		}
		if isHedge {
			c.m.hedgeWon.Inc()
		}
		o.finish(resp, nil)
		return
	}
	o.lastErr = err
	now := c.rpc.Node().Now()
	if !c.cfg.Breaker.Disabled && c.breaker(o.to).Failure(now) {
		c.m.breakerOpen.Inc()
	}
	if !errors.Is(err, simnet.ErrRPCTimeout) {
		// A refusal (ErrNotServed) is the peer's deterministic answer and a
		// caller crash (ErrCallerCrashed) voids the whole operation:
		// neither is worth retrying. Any sibling attempt still in flight
		// gets to finish first.
		if o.inflight == 0 && !o.retryPending {
			o.finish(nil, err)
		}
		return
	}
	c.estimator(o.to).OnTimeout()
	if o.attempts < c.cfg.MaxAttempts && !o.retryPending {
		o.retryPending = true
		o.retrans = true
		c.m.retries.Inc()
		o.retryTimer = c.rpc.Node().AfterTimer(c.bo.Delay(o.id, o.attempts), o.fireRetry)
		return
	}
	if o.inflight == 0 && !o.retryPending {
		o.finish(nil, o.lastErr)
	}
}

// retryAfterHinter is the structural contract a classified error may
// implement to pace the retry; *overload.ErrOverloaded satisfies it. The
// interface lives here (and is matched structurally) so resil and
// overload need not import each other.
type retryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// completeShed handles a classified server shed: a deliberate,
// explicitly-retryable refusal from a live peer. The breaker records a
// success, the estimator is left alone (Karn's retrans flag stays clear
// too — the eventual data reply is an unambiguous, clean sample), and the
// next attempt waits max(server hint, backoff). Exhausted attempts fail
// the operation with the classified error so callers can fail over.
func (o *op) completeShed(cerr error) {
	c := o.c
	if !c.cfg.Breaker.Disabled {
		c.breaker(o.to).Success()
	}
	if c.mShed == nil {
		c.mShed = c.rpc.Node().Obs().Counter("resil.shed.count")
	}
	c.mShed.Inc()
	o.lastErr = cerr
	if o.attempts < c.cfg.MaxAttempts && !o.retryPending {
		delay := c.bo.Delay(o.id, o.attempts)
		if h, ok := cerr.(retryAfterHinter); ok {
			if hint := h.RetryAfterHint(); hint > delay {
				delay = hint
			}
		}
		o.retryPending = true
		c.m.retries.Inc()
		o.retryTimer = c.rpc.Node().AfterTimer(delay, o.fireRetry)
		return
	}
	if o.inflight == 0 && !o.retryPending {
		o.finish(nil, o.lastErr)
	}
}

// finish completes the operation exactly once: pending timers are
// cancelled, the losing attempt (if any) is cancelled through its CallRef
// so its callback never fires, and only then does the caller's done run —
// it may re-enter the Client immediately.
func (o *op) finish(resp any, err error) {
	o.finished = true
	o.hedgeTimer.Cancel()
	o.retryTimer.Cancel()
	o.primary.Cancel()
	o.hedge.Cancel()
	o.done(resp, err)
}
