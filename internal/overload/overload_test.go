package overload

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

// world is one server node plus nc client nodes. The server sits on a
// home-broadband uplink (1 Mbps up) so a handful of sizeable replies
// saturate it, exactly the X18 failure shape.
func world(seed int64, nc int) (*simnet.Network, *simnet.RPCNode, []*simnet.RPCNode) {
	nw := simnet.New(seed)
	srv := simnet.NewRPCNode(nw.AddNodeWithProfile(simnet.HomeBroadbandProfile()))
	clients := make([]*simnet.RPCNode, nc)
	for i := range clients {
		clients[i] = simnet.NewRPCNode(nw.AddNode())
	}
	return nw, srv, clients
}

func enabledCfg() Config {
	return Config{Enabled: true, QueueLen: 16, Target: 200 * time.Millisecond,
		SLO: 500 * time.Millisecond, MinLimit: 1, MaxLimit: 8}
}

func TestPassthroughIsPlainServe(t *testing.T) {
	nw, srv, clients := world(1, 1)
	s := New(srv, Config{})
	if s.Enabled() {
		t.Fatal("zero Config must build a passthrough Server")
	}
	if s.Limit() != 0 {
		t.Fatalf("passthrough Limit = %v, want 0", s.Limit())
	}
	s.Protect("echo", func(from simnet.NodeID, req any) (any, int) { return req, 8 })
	s.Control("ping", func(from simnet.NodeID, req any) (any, int) { return "pong", 8 })
	var got any
	clients[0].Call(srv.Node().ID(), "echo", "hi", 8, 5*time.Second, func(resp any, err error) {
		if err != nil {
			t.Fatalf("echo: %v", err)
		}
		got = resp
	})
	var pong any
	clients[0].Call(srv.Node().ID(), "ping", nil, 8, 5*time.Second, func(resp any, err error) {
		if err != nil {
			t.Fatalf("ping: %v", err)
		}
		pong = resp
	})
	nw.RunAll()
	if got != "hi" || pong != "pong" {
		t.Fatalf("passthrough replies = %v/%v", got, pong)
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	c := Config{Enabled: true}.withDefaults()
	if c.QueueLen != 64 || c.MinLimit != 1 || c.MaxLimit != 32 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Target != 100*time.Millisecond || c.SLO != 500*time.Millisecond || c.RetryAfterBase != 500*time.Millisecond {
		t.Fatalf("duration defaults wrong: %+v", c)
	}
	for _, bad := range []Config{
		{Enabled: true, QueueLen: -1},
		{Enabled: true, MinLimit: -2},
		{Enabled: true, MinLimit: 8, MaxLimit: 2},
		{Enabled: true, Target: -time.Second},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Config %+v did not panic", bad)
				}
			}()
			bad.withDefaults()
		}()
	}
}

func TestClassifyAndHint(t *testing.T) {
	if err := Classify("not a shed"); err != nil {
		t.Fatalf("Classify(non-shed) = %v", err)
	}
	err := Classify(Shed{RetryAfter: 2 * time.Second})
	oerr, ok := err.(*ErrOverloaded)
	if !ok {
		t.Fatalf("Classify(Shed) = %T", err)
	}
	if oerr.RetryAfterHint() != 2*time.Second {
		t.Fatalf("hint = %v", oerr.RetryAfterHint())
	}
	if oerr.Error() == "" {
		t.Fatal("empty error string")
	}
	if !IsShed(Shed{}) || IsShed(42) {
		t.Fatal("IsShed misclassifies")
	}
}

// TestSaturationShedsAndBoundsQueue floods a 1 Mbps origin with far more
// work than it can serialize and checks the control loop's invariants:
// some requests are shed with hints, every offered request is accounted
// for, the queue never exceeds its bound, and the AIMD limit stays within
// [MinLimit, MaxLimit] at every decision point.
func TestSaturationShedsAndBoundsQueue(t *testing.T) {
	nw, srv, clients := world(7, 40)
	s := New(srv, enabledCfg())
	blob := make([]byte, 16<<10)
	s.Protect("blob.get", func(from simnet.NodeID, req any) (any, int) { return blob, len(blob) })

	served, shed, failed := 0, 0, 0
	for round := 0; round < 5; round++ {
		at := time.Duration(round) * 100 * time.Millisecond
		for _, c := range clients {
			c := c
			nw.Schedule(at, func() {
				c.Call(srv.Node().ID(), "blob.get", nil, 64, 30*time.Second, func(resp any, err error) {
					switch {
					case err != nil:
						failed++
					case IsShed(resp):
						shed++
						if resp.(Shed).RetryAfter <= 0 {
							t.Error("shed with non-positive hint")
						}
					default:
						served++
					}
				})
				if s.Depth() > enabledCfg().QueueLen {
					t.Errorf("queue depth %d exceeds bound %d", s.Depth(), enabledCfg().QueueLen)
				}
				if l := s.Limit(); l < float64(enabledCfg().MinLimit) || l > float64(enabledCfg().MaxLimit) {
					t.Errorf("AIMD limit %v outside [%d, %d]", l, enabledCfg().MinLimit, enabledCfg().MaxLimit)
				}
			})
		}
	}
	nw.Run(2 * time.Minute)
	if shed == 0 {
		t.Fatalf("saturated origin shed nothing (served=%d failed=%d)", served, failed)
	}
	if served == 0 {
		t.Fatalf("saturated origin served nothing (shed=%d failed=%d)", shed, failed)
	}
	r := srv.Node().Obs()
	offered := r.Counter("overload.offered").Value()
	admitted := r.Counter("overload.admitted").Value()
	shedC := r.Counter("overload.shed").Value()
	if offered == 0 || admitted+shedC+int64(s.Depth()) != offered {
		t.Fatalf("accounting: offered=%d admitted=%d shed=%d depth=%d", offered, admitted, shedC, s.Depth())
	}
}

// TestPerSenderFIFOSurvives checks the CoDel discipline's ordering
// contract: whatever is shed from the front, the requests that *are*
// served leave in global arrival order — so per-sender FIFO order of
// survivors is preserved.
func TestPerSenderFIFOSurvives(t *testing.T) {
	nw, srv, clients := world(11, 6)
	cfg := enabledCfg()
	cfg.Target = 50 * time.Millisecond // aggressive: force front drops
	s := New(srv, cfg)
	blob := make([]byte, 32<<10)
	type tag struct{ sender, seq int }
	var servedOrder []tag
	s.Protect("blob.get", func(from simnet.NodeID, req any) (any, int) {
		servedOrder = append(servedOrder, req.(tag))
		return blob, len(blob)
	})
	for seq := 0; seq < 10; seq++ {
		for ci, c := range clients {
			ci, c, seq := ci, c, seq
			nw.Schedule(time.Duration(seq*30)*time.Millisecond, func() {
				c.Call(srv.Node().ID(), "blob.get", tag{ci, seq}, 64, time.Minute, func(any, error) {})
			})
		}
	}
	nw.Run(3 * time.Minute)
	last := map[int]int{}
	for _, tg := range servedOrder {
		if prev, ok := last[tg.sender]; ok && tg.seq <= prev {
			t.Fatalf("per-sender FIFO violated for sender %d: seq %d after %d", tg.sender, tg.seq, prev)
		}
		last[tg.sender] = tg.seq
	}
	if srv.Node().Obs().Counter("overload.codel.dropped").Value() == 0 {
		t.Fatal("expected CoDel front drops under the aggressive target")
	}
}

// TestControlLaneStaysFast saturates the bulk plane and checks the
// tentpole's core claim at unit scale: control-plane RPCs on the priority
// lane keep RTTs near the unloaded baseline while bulk replies queue.
func TestControlLaneStaysFast(t *testing.T) {
	nw, srv, clients := world(13, 20)
	s := New(srv, Config{Enabled: true, QueueLen: 64, Target: 5 * time.Second,
		SLO: 10 * time.Second, MinLimit: 4, MaxLimit: 64})
	blob := make([]byte, 64<<10)
	s.Protect("blob.get", func(from simnet.NodeID, req any) (any, int) { return blob, len(blob) })
	s.Control("ctl.ping", func(from simnet.NodeID, req any) (any, int) { return "pong", 8 })

	for round := 0; round < 10; round++ {
		at := time.Duration(round) * 50 * time.Millisecond
		for _, c := range clients[1:] {
			c := c
			nw.Schedule(at, func() {
				c.Call(srv.Node().ID(), "blob.get", nil, 64, 5*time.Minute, func(any, error) {})
			})
		}
	}
	var ctlRTTs []time.Duration
	pinger := clients[0]
	for i := 1; i <= 20; i++ {
		at := time.Duration(i) * 500 * time.Millisecond
		nw.Schedule(at, func() {
			pinger.CallEx(srv.Node().ID(), "ctl.ping", nil, 16, time.Minute, func(resp any, rtt time.Duration, err error) {
				if err == nil {
					ctlRTTs = append(ctlRTTs, rtt)
				}
			})
		})
	}
	nw.Run(10 * time.Minute)
	if len(ctlRTTs) < 15 {
		t.Fatalf("only %d control pings completed", len(ctlRTTs))
	}
	var worst time.Duration
	for _, r := range ctlRTTs {
		if r > worst {
			worst = r
		}
	}
	// Unloaded RTT is ~2×(25ms+1ms)+jitter+loss-retry headroom; the bulk
	// backlog at 64 KiB × dozens over 1 Mbps is tens of seconds. Control
	// staying under 1s means the lane, not luck, carried it.
	if worst > time.Second {
		t.Fatalf("control-plane RTT reached %v under bulk saturation; lane not isolating", worst)
	}
}

// TestDecisionsDeterministic replays an identical saturated world twice
// and requires the full decision sequence — admitted/queued/shed/codel
// counters and the wait histogram mass — to be bit-for-bit identical.
func TestDecisionsDeterministic(t *testing.T) {
	run := func() (int64, int64, int64, int64, float64) {
		nw, srv, clients := world(99, 25)
		s := New(srv, enabledCfg())
		blob := make([]byte, 24<<10)
		s.Protect("blob.get", func(from simnet.NodeID, req any) (any, int) { return blob, len(blob) })
		for round := 0; round < 6; round++ {
			at := time.Duration(round) * 80 * time.Millisecond
			for _, c := range clients {
				c := c
				nw.Schedule(at, func() {
					c.Call(srv.Node().ID(), "blob.get", nil, 64, time.Minute, func(any, error) {})
				})
			}
		}
		nw.Run(2 * time.Minute)
		r := srv.Node().Obs()
		return r.Counter("overload.admitted").Value(), r.Counter("overload.queued").Value(),
			r.Counter("overload.shed").Value(), r.Counter("overload.codel.dropped").Value(),
			r.Histogram("overload.queue.wait_s").Sum()
	}
	a1, q1, s1, c1, w1 := run()
	a2, q2, s2, c2, w2 := run()
	if a1 != a2 || q1 != q2 || s1 != s2 || c1 != c2 || w1 != w2 {
		t.Fatalf("decision sequence not deterministic: (%d,%d,%d,%d,%v) vs (%d,%d,%d,%d,%v)",
			a1, q1, s1, c1, w1, a2, q2, s2, c2, w2)
	}
}

// TestHintLadderScalesWithPressure drives the queue from empty to full
// and checks that shed hints are drawn from the pressure ladder: deeper
// queue, larger RetryAfter.
func TestHintLadderScalesWithPressure(t *testing.T) {
	nw, srv, clients := world(5, 64)
	cfg := enabledCfg()
	cfg.QueueLen = 8
	cfg.RetryAfterBase = 250 * time.Millisecond
	s := New(srv, cfg)
	blob := make([]byte, 48<<10)
	s.Protect("blob.get", func(from simnet.NodeID, req any) (any, int) { return blob, len(blob) })
	var hints []time.Duration
	for i, c := range clients {
		c := c
		nw.Schedule(time.Duration(i)*time.Millisecond, func() {
			c.Call(srv.Node().ID(), "blob.get", nil, 64, 5*time.Minute, func(resp any, err error) {
				if err == nil && IsShed(resp) {
					hints = append(hints, resp.(Shed).RetryAfter)
				}
			})
		})
	}
	nw.Run(5 * time.Minute)
	if len(hints) == 0 {
		t.Fatal("no sheds at 8× oversubscription")
	}
	min, max := hints[0], hints[0]
	for _, h := range hints {
		if h < min {
			min = h
		}
		if h > max {
			max = h
		}
	}
	if min < cfg.RetryAfterBase || max > cfg.RetryAfterBase<<5 {
		t.Fatalf("hints [%v, %v] escape the ladder [%v, %v]", min, max, cfg.RetryAfterBase, cfg.RetryAfterBase<<5)
	}
	if max == min {
		t.Fatalf("hints never scaled with pressure (all %v)", min)
	}
}

// TestRingQueue pins the ring's FIFO and bound behaviour directly.
func TestRingQueue(t *testing.T) {
	q := newRing(3)
	if !q.empty() || q.full() || q.depth() != 0 {
		t.Fatal("fresh ring state wrong")
	}
	for i := 0; i < 3; i++ {
		if !q.push(qItem{req: i}) {
			t.Fatalf("push %d refused", i)
		}
	}
	if !q.full() || q.push(qItem{req: 3}) {
		t.Fatal("overfull push accepted")
	}
	for i := 0; i < 3; i++ {
		it, ok := q.pop()
		if !ok || it.req.(int) != i {
			t.Fatalf("pop %d = %v, %v", i, it.req, ok)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	// Wrap-around keeps FIFO order.
	q.push(qItem{req: 10})
	q.push(qItem{req: 11})
	q.pop()
	q.push(qItem{req: 12})
	q.push(qItem{req: 13})
	for _, want := range []int{11, 12, 13} {
		it, _ := q.pop()
		if it.req.(int) != want {
			t.Fatalf("wrap pop = %v, want %d", it.req, want)
		}
	}
}
