package overload

import (
	"time"

	"repro/internal/simnet"
)

// qItem is one parked request: the deferred-reply token, the request
// payload, and the enqueue time the CoDel discipline judges sojourn by.
// Items are plain values living in the ring's preallocated buffer, so
// parking and unparking a request allocates nothing.
type qItem struct {
	tok simnet.ReplyToken
	req any
	enq time.Duration
}

// ring is a fixed-capacity FIFO over a preallocated buffer. Push appends
// at the tail, pop removes at the head; survivors therefore leave in
// arrival order — the global FIFO that makes per-sender FIFO order of
// survivors a structural invariant rather than a scheduling accident.
type ring struct {
	buf  []qItem
	head int
	n    int
}

func newRing(cap int) ring { return ring{buf: make([]qItem, cap)} }

func (q *ring) empty() bool { return q.n == 0 }
func (q *ring) full() bool  { return q.n == len(q.buf) }
func (q *ring) depth() int  { return q.n }

// push appends an item; reports false when the ring is full.
func (q *ring) push(it qItem) bool {
	if q.n == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = it
	q.n++
	return true
}

// pop removes and returns the head item; ok is false when empty. The
// vacated slot is zeroed so parked payloads do not outlive their stay.
func (q *ring) pop() (qItem, bool) {
	if q.n == 0 {
		return qItem{}, false
	}
	it := q.buf[q.head]
	q.buf[q.head] = qItem{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return it, true
}
