// Package overload is the server-side mirror of internal/resil: where
// resil makes clients survive flaky servers (adaptive retries, hedging,
// circuit breakers), overload makes servers survive their clients. X18
// showed why both halves are needed — the feudal origin collapsed to ~50%
// availability not because it crashed but because its unbounded uplink
// FIFO outlived the flash spike, and PR 9's tuning lesson ("a saturated
// origin loses its own control plane") showed that the collapse takes the
// control plane down with the data plane.
//
// A Server bolts three disciplines onto a simnet RPC node:
//
//   - A bounded service queue with a CoDel-style discipline: requests that
//     already waited longer than Target when their turn comes are shed
//     from the *front* of the queue (serving them stale helps nobody — the
//     caller's timeout has likely fired), which keeps queue sojourn near
//     the target instead of letting the backlog outlive the burst.
//   - Two priority lanes: methods registered via Control ride the uplink's
//     strict-priority control lane (Node.SetPriorityUplink), so directory
//     ops, adverts and pings serialize ahead of queued bulk replies and a
//     saturated server keeps answering its control plane.
//   - Adaptive admission: an AIMD concurrency limit driven by observed
//     queue wait against an SLO. Completions that waited within the SLO
//     additively raise the limit; waits beyond it multiplicatively cut it
//     (at most once per SLO window, so one burst is one cut). Requests
//     that cannot meet the SLO are rejected *early* with a deterministic
//     Shed{RetryAfter} hint instead of joining a doomed queue.
//
// Clients recognize sheds through resil's Classify hook (see Classify):
// a shed is a deliberate, explicitly-retryable answer from a live peer —
// it never trips the circuit breaker, and the RetryAfter hint paces the
// retry.
//
// Determinism: the package draws no randomness and reads no wall clock.
// Every decision (admit, queue, shed, hint level, AIMD step) is a pure
// function of the request arrival order and virtual time, so for a fixed
// seed the decision sequence is bit-for-bit reproducible — including on
// the sharded engine, where all state is owned by the server's node.
//
// Metrics (registered only when a Server is enabled, so historical
// experiment snapshots are untouched):
//
//	overload.offered          counter  requests reaching admission
//	overload.admitted         counter  requests served (direct or dequeued)
//	overload.queued           counter  requests that waited in the queue
//	overload.shed             counter  requests rejected with a hint
//	overload.codel.dropped    counter  sheds from the front at dequeue time
//	overload.queue.wait_s     histogram queue wait of served requests
//	overload.limit            gauge    current AIMD concurrency limit
package overload

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Config tunes one server's overload control. The zero value (Enabled
// false) is a strict passthrough: Protect and Control degrade to plain
// RPC registration, no lanes are enabled, no metrics are registered, and
// the node's behaviour is byte-identical to a server without the package —
// the guarantee the pre-X20 experiment goldens rely on.
type Config struct {
	// Enabled switches overload control on. All other fields are ignored
	// (and need not be set) when false.
	Enabled bool
	// QueueLen bounds the service queue. A request arriving to a full
	// queue is shed immediately. Default 64.
	QueueLen int
	// Target is the CoDel-style sojourn target: a request whose queue wait
	// already exceeds Target when a service slot frees is shed from the
	// front instead of served stale. Default 100ms.
	Target time.Duration
	// SLO is the queue-wait objective the AIMD limit tracks: dequeue waits
	// within the SLO raise the limit additively, waits beyond it cut the
	// limit multiplicatively. Admission also sheds early when the
	// estimated wait (queue depth × smoothed service time) exceeds the
	// SLO. Default 500ms.
	SLO time.Duration
	// MinLimit and MaxLimit bound the AIMD concurrency limit (simultaneous
	// in-service replies). Defaults 1 and 32.
	MinLimit, MaxLimit int
	// RetryAfterBase is the smallest shed hint. Hints grow with queue
	// pressure in powers of two: RetryAfterBase << level, level in [0, 5].
	// Default 500ms.
	RetryAfterBase time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueLen == 0 {
		c.QueueLen = 64
	}
	if c.Target == 0 {
		c.Target = 100 * time.Millisecond
	}
	if c.SLO == 0 {
		c.SLO = 500 * time.Millisecond
	}
	if c.MinLimit == 0 {
		c.MinLimit = 1
	}
	if c.MaxLimit == 0 {
		c.MaxLimit = 32
	}
	if c.RetryAfterBase == 0 {
		c.RetryAfterBase = 500 * time.Millisecond
	}
	c.validate()
	return c
}

func (c Config) validate() {
	if c.QueueLen < 0 {
		panic(fmt.Sprintf("overload: QueueLen %d < 0", c.QueueLen))
	}
	if c.Target < 0 || c.SLO < 0 || c.RetryAfterBase < 0 {
		panic("overload: negative duration in Config")
	}
	if c.MinLimit < 1 {
		panic(fmt.Sprintf("overload: MinLimit %d < 1", c.MinLimit))
	}
	if c.MaxLimit < c.MinLimit {
		panic(fmt.Sprintf("overload: MaxLimit %d < MinLimit %d", c.MaxLimit, c.MinLimit))
	}
}

// Shed is the response payload of a rejected request: the server is alive
// but declines the work, and RetryAfter is its deterministic pacing hint.
// Protocol clients either treat a Shed like a miss (and fail over) or
// route it through resil's Classify hook for hinted retry.
type Shed struct {
	RetryAfter time.Duration
}

// shedRespSize is the simulated wire size of a Shed reply — a status byte
// and a hint, far below any data reply. Small sheds are the point: the
// server spends near-zero uplink telling clients to go away.
const shedRespSize = 16

// ErrOverloaded is the typed error a shed response classifies to. It
// implements the resil retryable-hint contract (RetryAfterHint), so the
// resilience layer backs off for the hinted interval — without tripping
// the circuit breaker — instead of treating the shed as a peer failure.
type ErrOverloaded struct {
	RetryAfter time.Duration
}

func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("server overloaded; retry after %v", e.RetryAfter)
}

// RetryAfterHint returns the server's pacing hint. resil discovers this
// method structurally, so neither package imports the other.
func (e *ErrOverloaded) RetryAfterHint() time.Duration { return e.RetryAfter }

// Classify is a ready-made resil.Config.Classify hook: it maps a Shed
// response to *ErrOverloaded and leaves every other payload untouched.
func Classify(resp any) error {
	if s, ok := resp.(Shed); ok {
		return &ErrOverloaded{RetryAfter: s.RetryAfter}
	}
	return nil
}

// IsShed reports whether an RPC response payload is a shed marker.
func IsShed(resp any) bool {
	_, ok := resp.(Shed)
	return ok
}

// metricsBundle is the package's network-scoped metric set, resolved once
// per registry via Memo (see DESIGN.md metric naming conventions).
type metricsBundle struct {
	offered  *obs.Counter
	admitted *obs.Counter
	queued   *obs.Counter
	shed     *obs.Counter
	codel    *obs.Counter
	wait     *obs.Histogram
	limit    *obs.Gauge
}

func metricsFor(r *obs.Registry) *metricsBundle {
	return r.Memo("overload", func() any {
		return &metricsBundle{
			offered:  r.Counter("overload.offered"),
			admitted: r.Counter("overload.admitted"),
			queued:   r.Counter("overload.queued"),
			shed:     r.Counter("overload.shed"),
			codel:    r.Counter("overload.codel.dropped"),
			wait:     r.Histogram("overload.queue.wait_s"),
			limit:    r.Gauge("overload.limit"),
		}
	}).(*metricsBundle)
}
