package overload

import (
	"time"

	"repro/internal/simnet"
)

// Server wraps one node's RPC layer with overload control. Bulk methods go
// through Protect (bounded queue + admission); control-plane methods go
// through Control (always admitted, control lane). A Server built from a
// zero Config is a passthrough: both registrations degrade to plain
// RPCNode.Serve and nothing else changes on the node.
//
// The admission hot path is allocation-free in steady state: requests park
// in a preallocated ring as plain values, service-completion timers run
// through the engine's closure-free AfterCall path with the Server itself
// as the argument, and shed replies reuse pre-boxed hint payloads.
type Server struct {
	cfg Config
	rpc *simnet.RPCNode
	n   *simnet.Node
	m   *metricsBundle

	handlers map[string]simnet.RPCHandler
	q        ring

	// AIMD state. limit is the concurrency limit as a float so additive
	// increase can accumulate sub-integer credit (+1/limit per in-SLO
	// completion ≈ +1 per round of the current window, the classic TCP
	// shape); lastCut rate-limits multiplicative decrease to once per SLO
	// window so a single burst costs a single halving.
	limit     float64
	inService int
	lastCut   time.Duration

	// svcEWMA is the smoothed per-reply service (uplink serialization)
	// time in seconds, feeding the early-rejection estimate.
	svcEWMA float64

	// shedHints holds pre-boxed Shed payloads, one per hint level, so a
	// shed reply costs no allocation.
	shedHints [6]any
}

// New builds overload control for r. The zero Config returns a passthrough
// Server; an enabled Config turns on the node's priority uplink and
// registers the overload.* metric bundle.
func New(r *simnet.RPCNode, cfg Config) *Server {
	s := &Server{rpc: r, n: r.Node()}
	if !cfg.Enabled {
		return s
	}
	s.cfg = cfg.withDefaults()
	s.m = metricsFor(s.n.Obs())
	s.handlers = map[string]simnet.RPCHandler{}
	s.q = newRing(s.cfg.QueueLen)
	s.limit = float64(s.cfg.MinLimit)
	s.lastCut = -s.cfg.SLO
	for i := range s.shedHints {
		s.shedHints[i] = Shed{RetryAfter: s.cfg.RetryAfterBase << i}
	}
	s.n.SetPriorityUplink(true)
	s.m.limit.Set(s.limit)
	return s
}

// Enabled reports whether the Server is active (false = passthrough).
func (s *Server) Enabled() bool { return s.m != nil }

// Limit returns the current AIMD concurrency limit (0 when passthrough).
func (s *Server) Limit() float64 {
	if s.m == nil {
		return 0
	}
	return s.limit
}

// Depth returns the current service-queue depth.
func (s *Server) Depth() int { return s.q.depth() }

// InService returns the number of replies currently being serviced.
func (s *Server) InService() int { return s.inService }

// Protect registers a bulk-lane method behind the overload queue. The
// inner handler h runs when the request is admitted — immediately when a
// service slot is free, after a queue wait otherwise — and its reply is
// sent through the usual RPC path. On a passthrough Server this is
// exactly RPCNode.Serve.
func (s *Server) Protect(method string, h simnet.RPCHandler) {
	if s.m == nil {
		s.rpc.Serve(method, h)
		return
	}
	s.handlers[method] = h
	s.rpc.ServeDeferred(method, s.admit)
}

// Control registers a control-plane method: always admitted (never queued
// or shed) and stamped onto the uplink's strict-priority control lane, so
// its replies overtake queued bulk replies. On a passthrough Server this
// is exactly RPCNode.Serve.
func (s *Server) Control(method string, h simnet.RPCHandler) {
	s.rpc.Serve(method, h)
	if s.m == nil {
		return
	}
	s.rpc.SetMethodLane(method, simnet.LaneCtrl)
}

// MarkControl stamps an outbound method (one this node *calls*, e.g. a
// provider's adverts to the directory) onto the control lane without
// registering a handler, so a saturated server's own control requests
// overtake its queued bulk replies. No-op on a passthrough Server.
func (s *Server) MarkControl(method string) {
	if s.m == nil {
		return
	}
	s.rpc.SetMethodLane(method, simnet.LaneCtrl)
}

// admit is the shared deferred handler behind every protected method: the
// admission decision for one arriving request.
func (s *Server) admit(from simnet.NodeID, req any, tok simnet.ReplyToken) {
	s.m.offered.Inc()
	now := s.n.Now()
	if s.inService < s.limitInt() && s.q.empty() {
		s.m.wait.Observe(0)
		s.observeWait(0, now)
		s.startService(tok, req)
		return
	}
	// Early rejection: a full queue, or an estimated wait (depth × smoothed
	// service time) already past the SLO, means this request cannot be
	// served within the objective — tell the caller now, while the hint is
	// cheap, instead of after a doomed queue wait.
	if s.q.full() || s.estWait(s.q.depth()+1) > s.cfg.SLO {
		s.shed(tok)
		return
	}
	s.q.push(qItem{tok: tok, req: req, enq: now})
	s.m.queued.Inc()
}

// limitInt is the AIMD limit as an integer floor, never below MinLimit.
func (s *Server) limitInt() int {
	l := int(s.limit)
	if l < s.cfg.MinLimit {
		l = s.cfg.MinLimit
	}
	return l
}

// estWait estimates the queue wait of a request entering at depth d.
func (s *Server) estWait(d int) time.Duration {
	per := s.svcEWMA / float64(s.limitInt())
	return time.Duration(float64(d) * per * float64(time.Second))
}

// startService runs the inner handler and occupies a service slot until
// the reply's bytes have actually left the uplink — the backlog the reply
// joined, not just its own serialization time. Tying the slot to the
// link's real cursor is what closes the control loop: when the uplink
// falls behind, slots stay occupied longer, the AIMD limit stops
// admitting, queue sojourns grow past the target, and shedding engages —
// whereas a fixed own-size slot would let admission race arbitrarily far
// ahead of the link and never feel the congestion it is creating.
func (s *Server) startService(tok simnet.ReplyToken, req any) {
	s.m.admitted.Inc()
	h := s.handlers[tok.Method()]
	resp, respSize := h(tok.From(), req)
	tok.Reply(resp, respSize)
	s.inService++
	ser := s.n.UplinkBacklog()
	if ser == 0 && s.n.Profile().UplinkBps > 0 {
		// Crashed-sender edge: the reply was dropped before serializing.
		// Charge the frame's nominal time so the slot still cycles.
		ser = time.Duration(float64((respSize+64)*8) / s.n.Profile().UplinkBps * float64(time.Second))
	}
	// Smooth the observed service time (α = 1/8, split into statements so
	// no FMA contraction can perturb cross-platform determinism).
	d := ser.Seconds() - s.svcEWMA
	s.svcEWMA += d * 0.125
	s.n.AfterCall(ser, serviceDoneEvent, s)
}

// serviceDoneEvent fires when a reply's serialization window closes; arg
// is the Server itself, so completion allocates nothing.
func serviceDoneEvent(arg any) {
	s := arg.(*Server)
	s.inService--
	s.drain()
}

// drain admits queued work into freed service slots, shedding from the
// front any request whose sojourn already exceeds the CoDel target.
func (s *Server) drain() {
	for s.inService < s.limitInt() {
		it, ok := s.q.pop()
		if !ok {
			return
		}
		now := s.n.Now()
		wait := now - it.enq
		s.observeWait(wait, now)
		if wait > s.cfg.Target {
			// Drop-from-front: the caller has waited past the target; a
			// stale reply would race its timeout. Shed with a hint instead.
			s.m.codel.Inc()
			s.shedItem(it.tok)
			continue
		}
		s.m.wait.Observe(wait.Seconds())
		s.startService(it.tok, it.req)
	}
}

// observeWait feeds one dequeue wait into the AIMD controller.
func (s *Server) observeWait(wait time.Duration, now time.Duration) {
	if wait <= s.cfg.SLO {
		if s.limit < float64(s.cfg.MaxLimit) {
			s.limit += 1 / s.limit
			if s.limit > float64(s.cfg.MaxLimit) {
				s.limit = float64(s.cfg.MaxLimit)
			}
		}
	} else if now-s.lastCut >= s.cfg.SLO {
		s.lastCut = now
		s.limit *= 0.5
		if s.limit < float64(s.cfg.MinLimit) {
			s.limit = float64(s.cfg.MinLimit)
		}
	}
	s.m.limit.Set(s.limit)
}

// shed rejects an arriving request with a pressure-scaled hint.
func (s *Server) shed(tok simnet.ReplyToken) {
	s.shedItem(tok)
}

// shedItem sends the pre-boxed Shed reply whose RetryAfter level tracks
// queue pressure: an empty queue sheds the base hint, a full one the top
// of the ladder — so the busier the server, the wider its callers spread.
func (s *Server) shedItem(tok simnet.ReplyToken) {
	lvl := 0
	if s.cfg.QueueLen > 0 {
		lvl = s.q.depth() * (len(s.shedHints) - 1) / s.cfg.QueueLen
		if lvl >= len(s.shedHints) {
			lvl = len(s.shedHints) - 1
		}
	}
	s.m.shed.Inc()
	tok.Reply(s.shedHints[lvl], shedRespSize)
}
