package simnet

import (
	"testing"
	"time"
)

// BenchmarkSimnetSend measures the message hot path: Send scheduling plus
// event-loop delivery, amortized over batches so the queue stays shallow.
func BenchmarkSimnetSend(b *testing.B) {
	nw := New(1)
	src := nw.AddNode()
	dst := nw.AddNode()
	dst.Handle("bench", func(m Message) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Send(dst.ID(), "bench", nil, 256)
		if i%256 == 255 {
			nw.RunAll()
		}
	}
	nw.RunAll()
}

// BenchmarkSimnetTimer measures schedule/cancel churn typical of protocol
// retry patterns: every scheduled timeout is cancelled before it fires.
func BenchmarkSimnetTimer(b *testing.B) {
	nw := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.After(time.Duration(i%1000)*time.Millisecond, func() {})
		if i%1024 == 1023 {
			nw.RunAll()
		}
	}
	nw.RunAll()
}
