package simnet

import "math/rand"

// Per-node randomness: every node owns a deterministic RNG stream derived
// from (network seed, node id) with SplitMix64. Because a node's draws come
// only from its own stream, its stochastic behaviour (mining delays, gossip
// peer choices, churn timing, …) depends on the seed and on what *that
// node* does — not on how events from unrelated nodes happen to interleave
// in the global queue. That is what makes trial-level parallelism and
// targeted protocol changes reproducible: touching one node's schedule no
// longer perturbs every other node's random choices.
//
// Seeding scheme (documented for reproducibility):
//
//	networkStream = SplitMix64(mix64(seed))
//	nodeStream(i) = SplitMix64(mix64(mix64(seed) + (i+1)·0x9E3779B97F4A7C15))
//
// where mix64 is one stateless SplitMix64 output step. The outer mix64 is
// load-bearing: SplitMix64 walks its state in golden-ratio increments, so
// seeding node i at base + (i+1)·golden64 directly would make node i+1's
// stream exactly node i's stream shifted by one draw — perfectly correlated
// neighbours. Whitening the combined value scatters the starting states off
// that lattice, so distinct node ids get effectively independent streams.

const golden64 = 0x9E3779B97F4A7C15

// SplitMix64 is the tiny, fast, well-distributed PRNG from Steele et al.,
// "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014). It
// implements rand.Source64, so it can back a math/rand.Rand.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a source whose stream is determined entirely by
// seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += golden64
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// Mix64 is one stateless SplitMix64 output step, used to whiten raw seeds
// before they pick a stream. Derived packages (e.g. simnet/fault) use it to
// split one user-facing seed into independent sub-streams without landing
// on SplitMix64's golden-ratio lattice.
func Mix64(x uint64) uint64 { return mix64(x) }

// mix64 is one stateless SplitMix64 output step, used to whiten raw seeds
// before they pick a stream.
func mix64(x uint64) uint64 {
	x += golden64
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// networkRand returns the network-level stream (stream 0): substrate draws
// such as loss and jitter, plus harness-level workload generation.
func networkRand(seed int64) *rand.Rand {
	return rand.New(NewSplitMix64(mix64(uint64(seed))))
}

// nodeRand returns node id's private stream for the given network seed.
func nodeRand(seed int64, id NodeID) *rand.Rand {
	return rand.New(NewSplitMix64(mix64(mix64(uint64(seed)) + (uint64(id)+1)*golden64)))
}

// substrateRand returns node id's *substrate* stream for the sharded
// engine: loss, jitter, and fault draws for messages the node sends. The
// single-heap engine serves those draws from the shared network stream in
// global send order; under parallel shards there is no global order, so
// each sender draws from a private stream whose consumption follows the
// node's own deterministic event order. The salt (a second whitening pass
// XORed with an arbitrary constant) keeps the stream disjoint from both
// nodeRand and networkRand for the same seed and id.
func substrateRand(seed int64, id NodeID) *rand.Rand {
	base := mix64(mix64(uint64(seed))^0x5EEDFACE0FCAFE01) + (uint64(id)+1)*golden64
	return rand.New(NewSplitMix64(mix64(base)))
}
