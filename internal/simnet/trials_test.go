package simnet

import (
	"reflect"
	"runtime"
	"testing"
	"time"
)

// trialResult is a small per-seed summary exercising clock, traffic, and
// RNG state — enough surface that any cross-trial interference shows up.
type trialResult struct {
	End       time.Duration
	Delivered int64
	Draw      float64
}

func runOneTrial(seed int64) trialResult {
	nw := New(seed)
	nw.SetDefaultProfile(HomeBroadbandProfile())
	nodes := make([]*Node, 8)
	for i := range nodes {
		nodes[i] = nw.AddNode()
		nodes[i].HandleDefault(func(m Message) {})
	}
	for i := 0; i < 100; i++ {
		from := nodes[i%8]
		to := nodes[(i*3+1)%8]
		if from.ID() != to.ID() {
			from.Send(to.ID(), "x", i, 500+i)
		}
	}
	end := nw.Run(time.Hour)
	return trialResult{End: end, Delivered: nw.Trace().Delivered, Draw: nodes[0].Rand().Float64()}
}

// TestTrialsDeterministicAcrossWorkerCounts is the acceptance property of
// the runner: results are bit-identical whether trials run serially, on
// GOMAXPROCS workers, or anything in between, and arrive in seed order.
func TestTrialsDeterministicAcrossWorkerCounts(t *testing.T) {
	seeds := Seeds(42, 24)
	serial := Trials(seeds, 1, runOneTrial)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0), 0} {
		got := Trials(seeds, workers, runOneTrial)
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d: results differ from serial run", workers)
		}
	}
}

func TestTrialsSeedOrder(t *testing.T) {
	seeds := []int64{5, 1, 9, 3}
	got := Trials(seeds, 0, func(seed int64) int64 { return seed })
	if !reflect.DeepEqual(got, seeds) {
		t.Errorf("results %v not in seed order %v", got, seeds)
	}
}

func TestTrialsEmpty(t *testing.T) {
	if out := Trials(nil, 4, func(seed int64) int { return 1 }); len(out) != 0 {
		t.Errorf("empty seeds produced %d results", len(out))
	}
}

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a := Seeds(7, 100)
	b := Seeds(7, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Seeds is not deterministic")
	}
	seen := map[int64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	c := Seeds(8, 100)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("bases 7 and 8 share %d seeds position-wise", same)
	}
}

// TestNodeStreamsDecorrelated guards the seeding scheme: node i+1's stream
// must not be node i's stream shifted by one draw, which is exactly what a
// naive golden-ratio-offset SplitMix64 seeding produces.
func TestNodeStreamsDecorrelated(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := nodeRand(seed, 0)
		b := nodeRand(seed, 1)
		// Draw a window from each; b's window must not appear verbatim
		// inside a's (shift-correlation).
		aw := make([]uint64, 16)
		for i := range aw {
			aw[i] = a.Uint64()
		}
		b0 := b.Uint64()
		for _, v := range aw {
			if v == b0 {
				t.Fatalf("seed %d: node 1's first draw appears in node 0's stream window", seed)
			}
		}
	}
}
