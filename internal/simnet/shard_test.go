package simnet

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// shardSnapshot serializes everything observable about a finished network:
// end time, merged trace, per-kind latency histograms, and every node's
// counters and liveness. Layout-invariance tests compare these byte for
// byte.
func shardSnapshot(nw *Network, end time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "end=%v trace=%+v\n", end, *nw.Trace())
	for _, k := range nw.LatencyKinds() {
		h := nw.LatencyHistogram(k)
		fmt.Fprintf(&b, "lat[%s] n=%d p50=%.9f p95=%.9f\n", k, h.Count(), h.Quantile(0.5), h.Quantile(0.95))
	}
	for _, n := range nw.Nodes() {
		fmt.Fprintf(&b, "node%d=%+v up=%v crashes=%d downtime=%v\n",
			n.ID(), n.trace, n.Up(), n.Crashes(), n.Downtime())
	}
	return b.String()
}

// runShardWorkload drives a deliberately messy mixed workload — periodic
// sends, RPC request/response, churn, fault injection, a mid-run partition
// and heal scheduled as control events, plus timer cancellation — and
// returns its snapshot. Every source of nondeterminism the sharded engine
// must tame is in here.
func runShardWorkload(cfg NetworkConfig, n int) string {
	nw := NewWithConfig(cfg)
	nw.SetDefaultProfile(HomeBroadbandProfile())
	nw.SetLinkFault(LinkFault{Corrupt: 0.01, Duplicate: 0.02, Reorder: 0.05})
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = nw.AddNode()
	}
	for i, node := range nodes {
		node.Handle("ping", func(m Message) {
			if _, bad := m.Payload.(Corrupted); bad {
				return
			}
			nodes[m.To].Send(m.From, "pong", nil, 120)
		})
		node.Handle("pong", func(m Message) {})
		r := NewRPCNode(node)
		if i%2 == 0 {
			r.Serve("work", func(from NodeID, req any) (any, int) { return req, 64 })
		}
	}
	// Periodic pings: each node pumps 12 rounds on its own timer chain.
	var pump func(node *Node, k int)
	pump = func(node *Node, k int) {
		if k >= 12 {
			return
		}
		to := NodeID((int(node.ID()) + k*7 + 1) % n)
		if to != node.ID() {
			node.Send(to, "ping", k, 300)
		}
		node.After(97*time.Millisecond, func() { pump(node, k+1) })
	}
	for _, node := range nodes {
		node := node
		node.After(time.Duration(int(node.ID())%17)*time.Millisecond, func() { pump(node, 0) })
	}
	// RPC traffic from odd nodes into even servers.
	for i, node := range nodes {
		if i%2 == 0 {
			continue
		}
		r := node.rpc
		target := NodeID((i + 1) % n)
		var call func(k int)
		call = func(k int) {
			if k >= 8 {
				return
			}
			r.Call(target, "work", k, 200, 400*time.Millisecond, func(resp any, err error) {})
			r.n.After(150*time.Millisecond, func() { call(k + 1) })
		}
		call(0)
	}
	// Churn on every fifth node (draws come from the node's own stream).
	for i, node := range nodes {
		if i%5 == 0 {
			Churn{MTTF: 900 * time.Millisecond, MTTR: 200 * time.Millisecond}.Apply(node)
		}
	}
	// Timer cancel/reschedule exercise on each node.
	for _, node := range nodes {
		node := node
		tm := node.AfterTimer(time.Second, func() { node.Send(NodeID(0), "ping", -1, 50) })
		if int(node.ID())%3 == 0 {
			node.After(600*time.Millisecond, func() { tm.Cancel() })
		} else {
			node.After(500*time.Millisecond, func() { tm.Reschedule(nw.Now() + 700*time.Millisecond) })
		}
	}
	// Control events: a partition appears mid-run and heals later.
	half := make([]NodeID, 0, n/2)
	rest := make([]NodeID, 0, n-n/2)
	for i := range nodes {
		if i < n/2 {
			half = append(half, NodeID(i))
		} else {
			rest = append(rest, NodeID(i))
		}
	}
	nw.Schedule(500*time.Millisecond, func() { nw.Partition(half, rest) })
	nw.Schedule(1100*time.Millisecond, func() { nw.Heal() })
	end := nw.Run(3 * time.Second)
	return shardSnapshot(nw, end)
}

// TestShardLayoutInvariance is the core determinism claim: the same seed
// produces byte-identical results at every (Shards, Workers) combination.
func TestShardLayoutInvariance(t *testing.T) {
	layouts := []NetworkConfig{
		{Seed: 7, Shards: 1, Workers: 1},
		{Seed: 7, Shards: 2, Workers: 1},
		{Seed: 7, Shards: 4, Workers: 1},
		{Seed: 7, Shards: 4, Workers: 4},
		{Seed: 7, Shards: 8, Workers: 3},
		{Seed: 7, Shards: 16, Workers: 8},
	}
	want := runShardWorkload(layouts[0], 48)
	for _, cfg := range layouts[1:] {
		if got := runShardWorkload(cfg, 48); got != want {
			t.Errorf("snapshot diverged at shards=%d workers=%d:\nbaseline:\n%s\ngot:\n%s",
				cfg.Shards, cfg.Workers, want, got)
		}
	}
}

// TestShardedMatchesLegacyWhenDeterministic pins the sharded engine to the
// single-heap engine on a workload with no randomness (no loss, jitter,
// faults, or crashes) and no bandwidth queueing: there the two engines'
// semantics coincide exactly, so snapshots must match byte for byte.
func TestShardedMatchesLegacyWhenDeterministic(t *testing.T) {
	run := func(cfg NetworkConfig) string {
		nw := NewWithConfig(cfg)
		nw.SetDefaultProfile(LinkProfile{Latency: 5 * time.Millisecond})
		const n = 24
		nodes := make([]*Node, n)
		for i := range nodes {
			nodes[i] = nw.AddNode()
			nodes[i].HandleDefault(func(m Message) {})
		}
		for i := 0; i < 400; i++ {
			from := nodes[i%n]
			to := NodeID((i*7 + 3) % n)
			if from.ID() != to {
				from.Send(to, "x", i, 1000)
			}
		}
		end := nw.Run(time.Second)
		return shardSnapshot(nw, end)
	}
	legacy := run(NetworkConfig{Seed: 11})
	for _, shards := range []int{1, 4, 16} {
		if got := run(NetworkConfig{Seed: 11, Shards: shards, Workers: 2}); got != legacy {
			t.Errorf("sharded (shards=%d) diverged from legacy on deterministic workload:\n%s\nvs\n%s",
				shards, got, legacy)
		}
	}
}

func TestShardedRunUntilAndRunAll(t *testing.T) {
	nw := NewWithConfig(NetworkConfig{Seed: 1, Shards: 4, Workers: 2})
	nw.SetDefaultProfile(LinkProfile{Latency: 10 * time.Millisecond})
	a := nw.AddNode()
	b := nw.AddNode()
	got := 0
	b.Handle("x", func(m Message) { got++ })
	a.After(100*time.Millisecond, func() { a.Send(b.ID(), "x", nil, 10) })
	if end := nw.Run(50 * time.Millisecond); end != 50*time.Millisecond {
		t.Fatalf("Run stopped at %v, want 50ms", end)
	}
	if got != 0 {
		t.Fatalf("event beyond the horizon ran early")
	}
	if nw.Now() != 50*time.Millisecond {
		t.Fatalf("clock at %v, want 50ms", nw.Now())
	}
	nw.RunAll()
	if got != 1 {
		t.Fatalf("pending event did not run under RunAll; got %d deliveries", got)
	}
	if nw.Now() < 120*time.Millisecond {
		t.Fatalf("clock did not advance through delivery: %v", nw.Now())
	}
}

func TestShardedTimerSemantics(t *testing.T) {
	nw := NewWithConfig(NetworkConfig{Seed: 3, Shards: 2, Workers: 1})
	nw.SetDefaultProfile(LinkProfile{Latency: time.Millisecond})
	n := nw.AddNode()
	fired := []string{}
	tm := n.AfterTimer(20*time.Millisecond, func() { fired = append(fired, "cancelled") })
	if !tm.Active() {
		t.Fatal("fresh timer not active")
	}
	if !tm.Cancel() {
		t.Fatal("cancel of pending timer failed")
	}
	if tm.Cancel() {
		t.Fatal("double cancel succeeded")
	}
	tm2 := n.AfterTimer(20*time.Millisecond, func() { fired = append(fired, "moved") })
	if !tm2.Reschedule(60 * time.Millisecond) {
		t.Fatal("reschedule failed")
	}
	n.After(40*time.Millisecond, func() { fired = append(fired, "mid") })
	nw.RunAll()
	if len(fired) != 2 || fired[0] != "mid" || fired[1] != "moved" {
		t.Fatalf("fired = %v, want [mid moved]", fired)
	}
	if tm2.Active() {
		t.Fatal("fired timer still active")
	}
}

func TestShardedRPCTimeoutOnCrashedServer(t *testing.T) {
	nw := NewWithConfig(NetworkConfig{Seed: 5, Shards: 4, Workers: 2})
	nw.SetDefaultProfile(LinkProfile{Latency: 2 * time.Millisecond})
	a := nw.AddNode()
	b := nw.AddNode()
	ra := NewRPCNode(a)
	rb := NewRPCNode(b)
	rb.Serve("echo", func(from NodeID, req any) (any, int) { return req, 10 })
	var okResp, timeouts int
	ra.Call(b.ID(), "echo", "hi", 10, 100*time.Millisecond, func(resp any, err error) {
		if err == nil && resp == "hi" {
			okResp++
		}
	})
	nw.RunAll()
	b.Crash()
	ra.Call(b.ID(), "echo", "again", 10, 100*time.Millisecond, func(resp any, err error) {
		if err != nil {
			timeouts++
		}
	})
	nw.RunAll()
	if okResp != 1 || timeouts != 1 {
		t.Fatalf("okResp=%d timeouts=%d, want 1 and 1", okResp, timeouts)
	}
}

func TestShardedZeroLatencyPanics(t *testing.T) {
	nw := NewWithConfig(NetworkConfig{Seed: 1, Shards: 2, Workers: 1})
	nw.SetDefaultProfile(LinkProfile{}) // zero latency: no conservative lookahead exists
	nw.AddNode()
	defer func() {
		if recover() == nil {
			t.Fatal("sharded Run with a zero-latency profile did not panic")
		}
	}()
	nw.Run(time.Second)
}

func TestShardedAccessors(t *testing.T) {
	legacy := New(1)
	if legacy.Sharded() || legacy.NumShards() != 1 || legacy.Workers() != 1 {
		t.Fatalf("legacy accessors: sharded=%v shards=%d workers=%d",
			legacy.Sharded(), legacy.NumShards(), legacy.Workers())
	}
	sh := NewWithConfig(NetworkConfig{Seed: 1, Shards: 6, Workers: 2})
	if !sh.Sharded() || sh.NumShards() != 6 || sh.Workers() != 2 {
		t.Fatalf("sharded accessors: sharded=%v shards=%d workers=%d",
			sh.Sharded(), sh.NumShards(), sh.Workers())
	}
	// Workers cap at the shard count.
	capped := NewWithConfig(NetworkConfig{Seed: 1, Shards: 2, Workers: 64})
	if capped.Workers() != 2 {
		t.Fatalf("workers not capped at shards: %d", capped.Workers())
	}
	n := sh.AddNode()
	if n.Obs() == sh.Obs() {
		t.Fatal("sharded node should use its shard registry, not the root registry")
	}
}
