package simnet

import (
	"math"
	"testing"
	"time"
)

// TestLossComposition: with loss at both endpoints the drop probability must
// compose as independent events, 1-(1-pa)(1-pb) — not the sum, which
// overstates the rate.
func TestLossComposition(t *testing.T) {
	nw := New(7)
	src := nw.AddNodeWithProfile(LinkProfile{Loss: 0.2})
	dst := nw.AddNodeWithProfile(LinkProfile{Loss: 0.2})
	dst.HandleDefault(func(m Message) {})
	const n = 20000
	for i := 0; i < n; i++ {
		src.Send(dst.ID(), "x", nil, 1)
	}
	nw.RunAll()
	want := (1 - 0.2) * (1 - 0.2) // 0.64 delivery rate
	rate := nw.Trace().DeliveryRate()
	if math.Abs(rate-want) > 0.02 {
		t.Errorf("delivery rate = %.4f, want ≈%.2f (independent composition)", rate, want)
	}
	// Summing the losses would predict 0.6 delivery; make sure we are
	// measurably above that.
	if rate < 0.62 {
		t.Errorf("delivery rate = %.4f suggests losses were summed, not composed", rate)
	}
}

// TestLostMessageDoesNotOccupyUplink: a dropped message must not serialize
// onto the sender's uplink, so it cannot delay traffic behind it.
func TestLostMessageDoesNotOccupyUplink(t *testing.T) {
	nw := New(1)
	// Loss = 1: every send is dropped. 1 MB at 8 Mbps would charge 1 s of
	// uplink per message if the implementation (wrongly) serialized drops.
	src := nw.AddNodeWithProfile(LinkProfile{UplinkBps: 8e6, Loss: 1})
	dst := nw.AddNodeWithProfile(LinkProfile{})
	dst.HandleDefault(func(m Message) {})
	for i := 0; i < 10; i++ {
		src.Send(dst.ID(), "x", nil, 1_000_000)
	}
	// Re-open the link and send one message: it must serialize immediately,
	// not queue behind ten phantom transfers.
	src.SetProfile(LinkProfile{UplinkBps: 8e6})
	var at time.Duration
	dst.Handle("y", func(m Message) { at = nw.Now() })
	src.Send(dst.ID(), "y", nil, 1_000_000)
	nw.RunAll()
	if at != time.Second {
		t.Errorf("delivery at %v, want 1s: lost messages occupied the uplink", at)
	}
}
