package simnet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// This file is the sharded half of the event engine: an opt-in execution
// mode (NetworkConfig{Shards, Workers}) that partitions nodes across
// per-shard indexed event heaps and runs independent shards on parallel
// workers inside a conservative virtual-time window, while keeping the
// merged execution bit-for-bit reproducible across every (Shards, Workers)
// setting. The single-heap engine (scheduler.go) remains the default and
// is untouched by anything here.
//
// # Why the merged execution is deterministic
//
// Three disciplines combine, each independent of the shard layout:
//
//  1. Ordering keys instead of insertion order. Every sharded event is
//     keyed (at, origin, oseq): the virtual time, the scheduling entity
//     (node id + 1; 0 is reserved for barrier-synced control events), and
//     that entity's private monotone counter. A shard always pops its heap
//     in key order, so the sequence of events *each node* observes is a
//     pure function of the seed — the key never encodes which shard or
//     worker produced it. (The Trials runner proves this merge discipline
//     at trial granularity; the key is what lets us apply it within one.)
//
//  2. A conservative synchronization window. Any message between two nodes
//     takes at least lookahead = 2·min(profile latency) of virtual time
//     (both endpoints' latencies are summed; uplink serialization, region
//     matrices, jitter, and reorder hold-back only add). A window runs
//     every event with at < W = min(heap) + lookahead, so nothing executed
//     during the window can schedule work that another shard should have
//     run *within* the same window: all arrivals land at ≥ W. Cross-shard
//     sends are staged in per-(src,dst) outboxes and merged into the
//     destination heap at the window barrier; because heaps order by key,
//     merge timing and outbox traversal order are immaterial.
//
//  3. No shared draws or shared mutable state between barriers. Substrate
//     randomness (loss, jitter, fault draws) comes from the *sender's*
//     dedicated substrate stream, not the network stream, so draw order
//     per node equals that node's deterministic event order. Traffic
//     counters and latency histograms are per-shard and merge by
//     commutative sums. Global state (partitions, the fault model, link
//     profiles, clock skew) may only change through control events —
//     Network.Schedule/After and fault.Plan land there — which execute
//     with every shard synchronized at the same virtual instant.
//
// Two intentional semantic differences from the single-heap engine (both
// consistent across all sharded configurations): a message to a crashed
// destination is dropped at delivery time on the destination shard rather
// than at send time (the sender cannot read remote liveness without a
// race), and receiver downlink serialization queues messages in arrival
// order at the destination rather than in global send order.

// shard owns the event heap, clock, traffic counters, latency histograms,
// and observability registry for the nodes assigned to it (node id mod
// NumShards). All of a node's events — its timers and the deliveries
// addressed to it — execute on its shard, single-threaded.
type shard struct {
	idx int
	nw  *Network
	now time.Duration
	// heap is an indexed binary heap ordered by (at, origin, oseq).
	heap []*event
	// outbox[d] holds events this shard scheduled onto shard d during the
	// current window; the barrier merge (drainInboxes) moves them into d's
	// heap. Only shard d touches outbox[d] during the merge phase, so the
	// two phases never race.
	outbox  [][]*event
	trace   Trace
	latency map[string]*metrics.Histogram
	// lastKind/lastLatency memoize the per-delivery histogram lookup,
	// mirroring the single-heap engine's optimization.
	lastKind    string
	lastLatency *metrics.Histogram
	// obs is the shard's private registry: protocol layers on this shard's
	// nodes annotate it without cross-shard contention; MergeRegistries
	// folds all shard registries together order-independently at export.
	obs *obs.Registry
}

// shardEventPool recycles sharded events. It is distinct from the
// single-heap engine's pool: the two event kinds use different key fields
// and must never intermix. sync.Pool is safe under worker parallelism and
// pooling affects only allocation, never ordering.
var shardEventPool = sync.Pool{New: func() any { return new(event) }}

func (sh *shard) alloc() *event {
	return shardEventPool.Get().(*event)
}

// free recycles a dequeued shard event. The generation bump invalidates
// every outstanding Timer handle pointing at it, exactly as in the
// single-heap engine.
func (sh *shard) free(e *event) {
	e.gen++
	e.fn, e.h, e.arg, e.sh = nil, nil, nil, nil
	shardEventPool.Put(e)
}

// schedule queues an event on this shard under the deterministic key
// (at, origin, oseq). Callers must be the shard's own execution context or
// the single-threaded harness/control context.
func (sh *shard) schedule(at time.Duration, origin, oseq uint64, fn func(), h EventFunc, arg any) *event {
	if at < sh.now {
		at = sh.now
	}
	e := sh.alloc()
	e.at, e.origin, e.oseq = at, origin, oseq
	e.fn, e.h, e.arg = fn, h, arg
	e.sh = sh
	sh.push(e)
	return e
}

// enqueue routes an already-built event to its destination shard. Within a
// parallel window, cross-shard events are staged in the outbox (and must
// respect the lookahead, or parallel execution would have needed them
// mid-window); outside a window — harness code and barrier-synced control
// events — the destination heap is safe to push into directly.
func (sh *shard) enqueue(dst *shard, e *event) {
	if dst == sh || !sh.nw.inWindow {
		dst.push(e)
		return
	}
	if e.at < sh.nw.winEnd {
		panic(fmt.Sprintf("simnet: lookahead violation: cross-shard event at %v inside window ending %v", e.at, sh.nw.winEnd))
	}
	sh.outbox[dst.idx] = append(sh.outbox[dst.idx], e)
}

// runWindow executes every queued event with at < w in key order,
// advancing the shard clock. New same-shard events landing inside the
// window (zero-delay timers and the like) are picked up by the same loop.
func (sh *shard) runWindow(w time.Duration) {
	for len(sh.heap) > 0 {
		e := sh.heap[0]
		if e.at >= w {
			return
		}
		sh.pop()
		sh.now = e.at
		fn, h, arg := e.fn, e.h, e.arg
		sh.free(e) // recycle before invoking: the handler may schedule again
		if h != nil {
			h(arg)
		} else if fn != nil {
			fn()
		}
	}
}

// drainInboxes is the window-barrier merge point: it moves every event the
// other shards staged for this shard into the local heap. Insertion order
// is immaterial — the heap orders by (at, origin, oseq) — so traversing
// sources in index order is a convenience, not a correctness requirement.
func (sh *shard) drainInboxes() {
	for _, src := range sh.nw.shards {
		box := src.outbox[sh.idx]
		if len(box) == 0 {
			continue
		}
		for i, e := range box {
			sh.push(e)
			box[i] = nil
		}
		src.outbox[sh.idx] = box[:0]
	}
}

// observeLatency records a delivery latency into this shard's histogram
// set (bounds identical to the single-heap engine's, so shard merges are
// bucket-aligned).
func (sh *shard) observeLatency(kind string, lat time.Duration) {
	if kind == sh.lastKind && sh.lastLatency != nil {
		sh.lastLatency.Observe(lat.Seconds())
		return
	}
	h, ok := sh.latency[kind]
	if !ok {
		h = metrics.NewHistogram(0, 30, 3000)
		sh.latency[kind] = h
	}
	sh.lastKind, sh.lastLatency = kind, h
	h.Observe(lat.Seconds())
}

// --- indexed binary heap keyed by (at, origin, oseq) ---------------------

func (sh *shard) less(i, j int) bool {
	a, b := sh.heap[i], sh.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.oseq < b.oseq
}

func (sh *shard) swap(i, j int) {
	h := sh.heap
	h[i], h[j] = h[j], h[i]
	h[i].pos, h[j].pos = i, j
}

func (sh *shard) push(e *event) {
	e.pos = len(sh.heap)
	sh.heap = append(sh.heap, e)
	sh.up(e.pos)
}

func (sh *shard) pop() *event {
	e := sh.heap[0]
	last := len(sh.heap) - 1
	sh.swap(0, last)
	sh.heap[last] = nil
	sh.heap = sh.heap[:last]
	if last > 0 {
		sh.down(0)
	}
	e.pos = -1
	return e
}

func (sh *shard) remove(e *event) {
	i := e.pos
	last := len(sh.heap) - 1
	if i != last {
		sh.swap(i, last)
	}
	sh.heap[last] = nil
	sh.heap = sh.heap[:last]
	if i != last {
		if !sh.up(i) {
			sh.down(i)
		}
	}
	e.pos = -1
}

func (sh *shard) fix(e *event) {
	if !sh.up(e.pos) {
		sh.down(e.pos)
	}
}

func (sh *shard) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !sh.less(i, parent) {
			break
		}
		sh.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (sh *shard) down(i int) {
	n := len(sh.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && sh.less(right, left) {
			least = right
		}
		if !sh.less(least, i) {
			return
		}
		sh.swap(i, least)
		i = least
	}
}

// --- sharded message path ------------------------------------------------

// arrival carries an in-flight sharded message: built on the sender's
// shard, consumed on the receiver's.
type arrival struct {
	nw     *Network
	msg    Message
	sentAt time.Duration
}

var arrivalPool = sync.Pool{New: func() any { return new(arrival) }}

// sendSharded is Send in sharded mode. The sender-side half (uplink
// serialization, loss, jitter, fault draws) runs here, with randomness
// from the sender's substrate stream; the receiver-side half (downlink
// serialization, liveness re-check, delivery) runs on the destination
// shard via shardArriveEvent.
func (nw *Network) sendSharded(msg Message) bool {
	src := nw.Node(msg.From)
	dst := nw.Node(msg.To)
	if src == nil || dst == nil {
		panic(fmt.Sprintf("simnet: send between unknown nodes %d -> %d", msg.From, msg.To))
	}
	ssh := src.sh
	ssh.trace.Sent++
	ssh.trace.BytesSent += int64(msg.Size)
	src.trace.Sent++
	src.trace.BytesSent += int64(msg.Size)
	// The partition map only changes at barriers, so reading it from a
	// parallel window is stable; the sender's own liveness is shard-local.
	// The *destination's* liveness is not readable here — it is re-checked
	// at delivery time on the destination shard.
	if !src.up || !nw.samePartition(msg.From, msg.To) {
		ssh.trace.Dropped++
		src.trace.Dropped++
		return false
	}
	if pa, pb := src.profile.Loss, dst.profile.Loss; pa > 0 || pb > 0 {
		if p := 1 - (1-pa)*(1-pb); src.srng.Float64() < p {
			ssh.trace.Dropped++
			src.trace.Dropped++
			return false
		}
	}

	// Uplink serialization mirrors the single-heap path exactly: lane-aware
	// on priority-enabled nodes, plain FIFO otherwise. The cursors and the
	// queue-metric state are sender-owned, so touching them from the
	// sender's shard is race-free.
	now := ssh.now
	depart := now
	if src.profile.UplinkBps > 0 {
		ser := secondsToDuration(float64(msg.Size*8) / src.profile.UplinkBps)
		depart = src.serialize(msg.Lane, now, ser)
		if nw.queueMetrics {
			src.noteQueue(now, depart)
		}
	}
	delay := src.profile.Latency + dst.profile.Latency
	if nw.regionOf != nil {
		delay += nw.regionExtra[nw.regionOf[msg.From]][nw.regionOf[msg.To]]
	}
	if j := src.profile.Jitter + dst.profile.Jitter; j > 0 {
		delay += time.Duration(src.srng.Int63n(int64(j)))
	}
	arrive := depart + delay

	if f := nw.fault; f.active() {
		if f.Corrupt > 0 && src.srng.Float64() < f.Corrupt {
			msg.Payload = Corrupted{Original: msg.Payload}
		}
		if f.Reorder > 0 && src.srng.Float64() < f.Reorder {
			arrive += time.Duration(src.srng.Int63n(int64(f.holdBack())))
			ssh.trace.Reordered++
		}
		if f.Duplicate > 0 && src.srng.Float64() < f.Duplicate {
			ssh.trace.Duplicated++
			extra := time.Duration(src.srng.Int63n(int64(f.holdBack())))
			nw.scheduleArrival(src, dst, msg, now, arrive+extra)
		}
	}
	nw.scheduleArrival(src, dst, msg, now, arrive)
	return true
}

// scheduleArrival builds the pooled arrival event, keyed by the sender so
// equal-time arrivals at the destination order deterministically.
func (nw *Network) scheduleArrival(src, dst *Node, msg Message, sentAt, at time.Duration) {
	a := arrivalPool.Get().(*arrival)
	a.nw, a.msg, a.sentAt = nw, msg, sentAt
	ssh := src.sh
	e := ssh.alloc()
	e.at, e.origin, e.oseq = at, src.origin, src.nextOseq()
	e.fn, e.h, e.arg = nil, shardArriveEvent, a
	e.sh = dst.sh
	ssh.enqueue(dst.sh, e)
}

// shardArriveEvent runs on the destination shard when a message reaches
// the receiving host's link. Downlink serialization happens here, in
// arrival order on the destination's own clock; if the downlink delays the
// message, the final delivery is rescheduled under the receiver's key.
func shardArriveEvent(arg any) {
	a := arg.(*arrival)
	dst := a.nw.nodes[a.msg.To]
	sh := dst.sh
	if dst.profile.DownlinkBps > 0 {
		start := sh.now
		if dst.downlinkFree > start {
			start = dst.downlinkFree
		}
		deliverAt := start + secondsToDuration(float64(a.msg.Size*8)/dst.profile.DownlinkBps)
		dst.downlinkFree = deliverAt
		if deliverAt > sh.now {
			sh.schedule(deliverAt, dst.origin, dst.nextOseq(), nil, shardDeliverEvent, a)
			return
		}
	}
	shardDeliver(a)
}

// shardDeliverEvent is the post-serialization delivery hop.
func shardDeliverEvent(arg any) { shardDeliver(arg.(*arrival)) }

func shardDeliver(a *arrival) {
	nw, msg, sentAt := a.nw, a.msg, a.sentAt
	*a = arrival{}
	arrivalPool.Put(a)

	dst := nw.nodes[msg.To]
	sh := dst.sh
	// Delivery-time re-check: the receiver may have crashed, or a partition
	// appeared, while the message was in flight. In sharded mode this is
	// also where messages to already-down destinations drop — the sender
	// cannot observe remote liveness without racing the destination shard.
	if !dst.up || !nw.samePartition(msg.From, msg.To) {
		sh.trace.Dropped++
		dst.trace.Dropped++
		return
	}
	if _, garbled := msg.Payload.(Corrupted); garbled {
		sh.trace.Corrupted++
		dst.trace.Corrupted++
	}
	sh.trace.Delivered++
	sh.trace.BytesDelivered += int64(msg.Size)
	dst.trace.Delivered++
	dst.trace.BytesDelivered += int64(msg.Size)
	sh.observeLatency(msg.Kind, sh.now-sentAt)
	if h, ok := dst.handlers[msg.Kind]; ok {
		h(msg)
	} else if dst.defaultHandler != nil {
		dst.defaultHandler(msg)
	} else {
		sh.trace.Unhandled++
		dst.trace.Unhandled++
	}
}

// --- conservative window runner ------------------------------------------

// Job modes for the worker pool. The mode is written by the coordinator
// before dispatch and read by workers after the channel receive, so the
// channel's happens-before edge publishes it.
const (
	jobWindow = iota
	jobMerge
)

// runAllHorizon is the "no time bound" sentinel for RunAll in sharded
// mode: ~73 years of virtual nanoseconds, far beyond any workload.
const runAllHorizon = time.Duration(1) << 61

// runSharded is the sharded Run/RunAll loop: alternate barrier-synced
// control events with parallel conservative windows until the queues empty
// or virtual time passes until.
func (nw *Network) runSharded(until time.Duration, runAll bool) time.Duration {
	if nw.running {
		panic("simnet: re-entrant Run")
	}
	la := nw.shardLookahead()
	nw.running = true
	defer func() { nw.running = false }()
	stop := nw.startWorkers()
	defer stop()

	for {
		shardMin, haveNode := nw.earliestShardEvent()
		ctrlT, haveCtrl := nw.peekTime()
		if !haveNode && !haveCtrl {
			break
		}
		next := shardMin
		if !haveNode || (haveCtrl && ctrlT < next) {
			next = ctrlT
		}
		if !runAll && next > until {
			break
		}
		if haveCtrl && (!haveNode || ctrlT <= shardMin) {
			// Control events (harness Schedule/After, fault plans) execute
			// with every shard synchronized at ctrlT and run before any
			// node event at the same instant — the global-state mutation
			// point the window protocol relies on.
			nw.syncClocks(ctrlT)
			for {
				t, ok := nw.peekTime()
				if !ok || t > ctrlT {
					break
				}
				nw.step()
			}
			continue
		}
		w := shardMin + la
		if haveCtrl && ctrlT < w {
			w = ctrlT
		}
		if !runAll && w > until {
			w = until + 1 // the window is half-open; events at exactly `until` still run
		}
		nw.winEnd = w
		nw.inWindow = true
		nw.jobMode = jobWindow
		nw.dispatch()
		nw.jobMode = jobMerge
		nw.dispatch()
		nw.inWindow = false
	}
	if runAll {
		// Settle on the furthest shard clock (not the horizon sentinel), so
		// RunAll leaves Now at the last executed event, like the legacy path.
		var last time.Duration
		for _, sh := range nw.shards {
			if sh.now > last {
				last = sh.now
			}
		}
		nw.syncClocks(last)
	} else {
		nw.syncClocks(until)
	}
	return nw.now
}

// shardLookahead returns the conservative window size: twice the minimum
// link-profile latency ever attached to a node. Every message spends at
// least the sum of both endpoints' latencies in flight, and everything
// else in the delay model (uplink queueing, jitter, region matrices,
// reorder hold-back, downlink queueing) only adds — so no event executed
// inside a window can require delivery within that same window.
func (nw *Network) shardLookahead() time.Duration {
	if !nw.minLatSet {
		// No nodes yet: only control events can exist, and those run at
		// barriers; any positive lookahead is correct.
		return time.Second
	}
	if nw.minLat <= 0 {
		panic("simnet: sharded mode requires a positive Latency on every link profile (zero latency makes the conservative lookahead vanish)")
	}
	return 2 * nw.minLat
}

func (nw *Network) earliestShardEvent() (time.Duration, bool) {
	var best time.Duration
	have := false
	for _, sh := range nw.shards {
		if len(sh.heap) == 0 {
			continue
		}
		if t := sh.heap[0].at; !have || t < best {
			best, have = t, true
		}
	}
	return best, have
}

// syncClocks advances (never rewinds) the global and per-shard clocks to t.
func (nw *Network) syncClocks(t time.Duration) {
	if t > nw.now {
		nw.now = t
	}
	for _, sh := range nw.shards {
		if t > sh.now {
			sh.now = t
		}
	}
}

// startWorkers spawns the window worker pool for one Run invocation and
// returns its shutdown function. With one worker (or one shard) the
// dispatch loop runs inline — no goroutines, no synchronization — which is
// also what makes 1-worker timing runs clean baselines.
func (nw *Network) startWorkers() func() {
	k := nw.workers
	if k > len(nw.shards) {
		k = len(nw.shards)
	}
	if k <= 1 {
		return func() {}
	}
	jobs := make(chan int, len(nw.shards))
	nw.jobs = jobs
	var exit sync.WaitGroup
	for i := 0; i < k; i++ {
		exit.Add(1)
		go func() {
			defer exit.Done()
			for idx := range jobs {
				nw.runJob(idx)
				nw.jobsWG.Done()
			}
		}()
	}
	return func() {
		close(jobs)
		nw.jobs = nil
		exit.Wait()
	}
}

// dispatch fans the current job mode across every shard and waits for the
// batch — the barrier between window execution and outbox merging.
func (nw *Network) dispatch() {
	if nw.jobs == nil {
		for i := range nw.shards {
			nw.runJob(i)
		}
		return
	}
	nw.jobsWG.Add(len(nw.shards))
	for i := range nw.shards {
		nw.jobs <- i
	}
	nw.jobsWG.Wait()
}

func (nw *Network) runJob(idx int) {
	sh := nw.shards[idx]
	switch nw.jobMode {
	case jobWindow:
		sh.runWindow(nw.winEnd)
	case jobMerge:
		sh.drainInboxes()
	}
}
