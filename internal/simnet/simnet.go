// Package simnet is a deterministic discrete-event network simulator. It is
// the substrate every distributed system in this repository runs on: the
// blockchain miners, the Kademlia DHT, the federated and P2P group
// communication models, the storage network, and the hostless web layer.
//
// The paper this repository reproduces argues about *structural* properties
// of systems — replication, single points of failure, trust topology,
// device-grade versus datacenter-grade infrastructure (§4 "quality vs
// quantity") — so the simulator models exactly those knobs:
//
//   - per-link propagation latency with seeded jitter,
//   - per-node uplink/downlink bandwidth with serialization queueing
//     (a 1 Mbps home uplink behaves very differently from a datacenter NIC),
//   - message loss,
//   - node up/down state, crash/restart, and exponential churn processes,
//   - network partitions.
//
// Everything runs on one goroutine from a single seeded RNG, so a run is
// reproducible bit-for-bit given the same seed and workload.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// NodeID identifies a node within one Network.
type NodeID int

// Message is a simulated datagram. Payload is an arbitrary value passed by
// reference (the simulator never copies or serializes it); Size is the
// simulated wire size in bytes and is what bandwidth modelling charges for.
type Message struct {
	From, To NodeID
	Kind     string
	Payload  any
	Size     int
}

// Handler processes a delivered message on the receiving node.
type Handler func(msg Message)

// event is one scheduled occurrence in the simulation.
type event struct {
	at  time.Duration
	seq uint64 // tie-break so equal-time events run FIFO and deterministically
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }
func (q eventQueue) Peek() *event  { return q[0] }

// LinkProfile describes the network attachment of a node (or the default
// for the whole network). The zero value is replaced by DatacenterProfile.
type LinkProfile struct {
	// Latency is the one-way propagation delay added to every message the
	// node sends. The effective delay between two nodes is the sum of both
	// endpoints' latencies (a crude but monotone RTT model).
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) to each message.
	Jitter time.Duration
	// UplinkBps and DownlinkBps are the serialization rates in bits/sec.
	// Zero means infinite (no serialization delay).
	UplinkBps   float64
	DownlinkBps float64
	// Loss is the independent drop probability per message in [0, 1).
	Loss float64
}

// DatacenterProfile approximates an intra/inter-datacenter attachment: low
// latency, 10 Gbps symmetric, lossless.
func DatacenterProfile() LinkProfile {
	return LinkProfile{Latency: 1 * time.Millisecond, Jitter: 500 * time.Microsecond, UplinkBps: 10e9, DownlinkBps: 10e9}
}

// HomeBroadbandProfile approximates the paper's §4 "slow broadband"
// user-device attachment: 25 ms latency, 20 Mbps down / 1 Mbps up, 0.5 %
// loss.
func HomeBroadbandProfile() LinkProfile {
	return LinkProfile{Latency: 25 * time.Millisecond, Jitter: 10 * time.Millisecond, UplinkBps: 1e6, DownlinkBps: 20e6, Loss: 0.005}
}

// MobileProfile approximates the paper's "slow 3G" mobile attachment:
// 80 ms latency, 4 Mbps down / 1 Mbps up, 2 % loss.
func MobileProfile() LinkProfile {
	return LinkProfile{Latency: 80 * time.Millisecond, Jitter: 40 * time.Millisecond, UplinkBps: 1e6, DownlinkBps: 4e6, Loss: 0.02}
}

// Network is a simulated network of nodes sharing one virtual clock.
type Network struct {
	rng     *rand.Rand
	now     time.Duration
	seq     uint64
	queue   eventQueue
	nodes   []*Node
	defProf LinkProfile
	// partition maps node -> group id; nodes in different groups cannot
	// exchange messages. Empty map means no partition.
	partition map[NodeID]int
	trace     Trace
	running   bool
}

// New creates a network whose randomness derives entirely from seed.
// Nodes added later default to DatacenterProfile.
func New(seed int64) *Network {
	return &Network{
		rng:       rand.New(rand.NewSource(seed)),
		defProf:   DatacenterProfile(),
		partition: map[NodeID]int{},
	}
}

// SetDefaultProfile changes the link profile assigned to nodes added after
// this call.
func (nw *Network) SetDefaultProfile(p LinkProfile) { nw.defProf = p }

// Rand exposes the simulation RNG so protocols draw from the same seeded
// stream and stay deterministic.
func (nw *Network) Rand() *rand.Rand { return nw.rng }

// Now returns the current virtual time.
func (nw *Network) Now() time.Duration { return nw.now }

// Trace returns the accumulated traffic counters.
func (nw *Network) Trace() *Trace { return &nw.trace }

// AddNode creates a node with the current default link profile.
func (nw *Network) AddNode() *Node {
	return nw.AddNodeWithProfile(nw.defProf)
}

// AddNodeWithProfile creates a node with an explicit link profile.
func (nw *Network) AddNodeWithProfile(p LinkProfile) *Node {
	n := &Node{
		id:       NodeID(len(nw.nodes)),
		nw:       nw,
		profile:  p,
		up:       true,
		handlers: map[string]Handler{},
	}
	nw.nodes = append(nw.nodes, n)
	return n
}

// Node returns the node with the given id, or nil if out of range.
func (nw *Network) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(nw.nodes) {
		return nil
	}
	return nw.nodes[id]
}

// NumNodes returns how many nodes have been added.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// Nodes returns the live slice of all nodes (do not mutate).
func (nw *Network) Nodes() []*Node { return nw.nodes }

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) runs the function at the current time, preserving order.
func (nw *Network) Schedule(at time.Duration, fn func()) {
	if at < nw.now {
		at = nw.now
	}
	nw.seq++
	heap.Push(&nw.queue, &event{at: at, seq: nw.seq, fn: fn})
}

// After runs fn after delay d of virtual time.
func (nw *Network) After(d time.Duration, fn func()) { nw.Schedule(nw.now+d, fn) }

// Run executes events until the queue empties or virtual time reaches
// until. It returns the virtual time at which it stopped.
func (nw *Network) Run(until time.Duration) time.Duration {
	if nw.running {
		panic("simnet: re-entrant Run")
	}
	nw.running = true
	defer func() { nw.running = false }()
	for len(nw.queue) > 0 {
		e := nw.queue.Peek()
		if e.at > until {
			nw.now = until
			return nw.now
		}
		heap.Pop(&nw.queue)
		nw.now = e.at
		e.fn()
	}
	if nw.now < until {
		nw.now = until
	}
	return nw.now
}

// RunAll executes every queued event regardless of time. Useful for tests;
// panics if the queue keeps growing beyond a large safety bound.
func (nw *Network) RunAll() {
	const maxEvents = 50_000_000
	count := 0
	for len(nw.queue) > 0 {
		e := heap.Pop(&nw.queue).(*event)
		nw.now = e.at
		e.fn()
		if count++; count > maxEvents {
			panic("simnet: RunAll exceeded event safety bound; runaway schedule?")
		}
	}
}

// Partition splits the network into groups; messages only flow within a
// group. Nodes not listed fall into group 0 alongside the first group.
func (nw *Network) Partition(groups ...[]NodeID) {
	nw.partition = map[NodeID]int{}
	for gi, g := range groups {
		for _, id := range g {
			nw.partition[id] = gi
		}
	}
}

// Heal removes any partition.
func (nw *Network) Heal() { nw.partition = map[NodeID]int{} }

func (nw *Network) samePartition(a, b NodeID) bool {
	if len(nw.partition) == 0 {
		return true
	}
	return nw.partition[a] == nw.partition[b]
}

// Send transmits a message. Delivery is scheduled according to both
// endpoints' link profiles; the message is silently dropped (and counted in
// the trace) if either endpoint is down, the endpoints are partitioned, or
// the loss draw fires. Send reports whether delivery was scheduled.
func (nw *Network) Send(msg Message) bool {
	nw.trace.Sent++
	nw.trace.BytesSent += int64(msg.Size)
	src := nw.Node(msg.From)
	dst := nw.Node(msg.To)
	if src == nil || dst == nil {
		panic(fmt.Sprintf("simnet: send between unknown nodes %d -> %d", msg.From, msg.To))
	}
	if !src.up || !dst.up || !nw.samePartition(msg.From, msg.To) {
		nw.trace.Dropped++
		return false
	}
	if p := src.profile.Loss + dst.profile.Loss; p > 0 && nw.rng.Float64() < p {
		nw.trace.Dropped++
		return false
	}

	// Serialization on the sender's uplink: the message waits for the
	// uplink to free, then occupies it for size/rate.
	depart := nw.now
	if src.profile.UplinkBps > 0 {
		if src.uplinkFree > depart {
			depart = src.uplinkFree
		}
		ser := secondsToDuration(float64(msg.Size*8) / src.profile.UplinkBps)
		depart += ser
		src.uplinkFree = depart
	}
	// Propagation + jitter.
	delay := src.profile.Latency + dst.profile.Latency
	if j := src.profile.Jitter + dst.profile.Jitter; j > 0 {
		delay += time.Duration(nw.rng.Int63n(int64(j)))
	}
	arrive := depart + delay
	// Serialization on the receiver's downlink.
	if dst.profile.DownlinkBps > 0 {
		if dst.downlinkFree > arrive {
			arrive = dst.downlinkFree
		}
		ser := secondsToDuration(float64(msg.Size*8) / dst.profile.DownlinkBps)
		arrive += ser
		dst.downlinkFree = arrive
	}

	nw.Schedule(arrive, func() {
		// Re-check state at delivery time: the receiver may have crashed,
		// or a partition may have appeared, while the message was in
		// flight.
		if !dst.up || !nw.samePartition(msg.From, msg.To) {
			nw.trace.Dropped++
			return
		}
		nw.trace.Delivered++
		nw.trace.BytesDelivered += int64(msg.Size)
		if h, ok := dst.handlers[msg.Kind]; ok {
			h(msg)
		} else if dst.defaultHandler != nil {
			dst.defaultHandler(msg)
		} else {
			nw.trace.Unhandled++
		}
	})
	return true
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Trace accumulates network-wide traffic statistics.
type Trace struct {
	Sent           int64
	Delivered      int64
	Dropped        int64
	Unhandled      int64
	BytesSent      int64
	BytesDelivered int64
}

// DeliveryRate returns Delivered/Sent, or 0 when nothing was sent.
func (t *Trace) DeliveryRate() float64 {
	if t.Sent == 0 {
		return 0
	}
	return float64(t.Delivered) / float64(t.Sent)
}

// Reset zeroes all counters.
func (t *Trace) Reset() { *t = Trace{} }
