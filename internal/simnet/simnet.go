// Package simnet is a deterministic discrete-event network simulator. It is
// the substrate every distributed system in this repository runs on: the
// blockchain miners, the Kademlia DHT, the federated and P2P group
// communication models, the storage network, and the hostless web layer.
//
// The package is split into an engine and a substrate:
//
//   - The engine (scheduler.go) is a pure discrete-event scheduler: an
//     indexed-heap event queue with cancellable, reschedulable Timer
//     handles and a pooled, closure-free hot path (events carry an
//     EventFunc handler plus argument, recycled through a sync.Pool, so
//     steady-state message traffic allocates nothing). Protocols program
//     against the Scheduler interface.
//   - The substrate (this file, node.go, rpc.go) models the network the
//     paper argues about — §4 "quality vs quantity": per-link propagation
//     latency with seeded jitter, per-node uplink/downlink bandwidth with
//     serialization queueing, message loss, node crash/restart and
//     exponential churn, and partitions.
//
// Determinism and randomness. A simulation runs on one goroutine; given the
// same seed and workload it is reproducible bit for bit. Randomness is
// split into per-node streams: node i draws from a SplitMix64 stream seeded
// with mix64(mix64(seed) + (i+1)·golden64) (see splitmix.go for the exact
// scheme and why the outer whitening step matters),
// so one node's stochastic behaviour does not depend on how other nodes'
// events interleave. The network-level stream (Network.Rand) serves
// substrate draws — loss, jitter — and harness-level workload generation.
//
// Scale-out. Independent trials parallelize across cores with Trials
// (trials.go): each trial owns its whole Network, so parallelism is
// trial-level and per-seed results are identical at any worker count.
// Traffic is accounted per node (Node.Trace) and network-wide
// (Network.Trace), with per-kind delivery-latency histograms available via
// Network.LatencyHistogram.
package simnet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
)

// NodeID identifies a node within one Network.
type NodeID int

// Message is a simulated datagram. Payload is an arbitrary value passed by
// reference (the simulator never copies or serializes it); Size is the
// simulated wire size in bytes and is what bandwidth modelling charges for.
type Message struct {
	From, To NodeID
	Kind     string
	Payload  any
	Size     int
	// Lane selects the sender's uplink serialization class. The zero value
	// is the bulk lane, and lanes only matter on nodes that opted into the
	// priority uplink (Node.SetPriorityUplink), so historical traffic is
	// untouched.
	Lane Lane
}

// Lane identifies an uplink serialization class (see Node.SetPriorityUplink).
type Lane uint8

const (
	// LaneBulk is the default best-effort lane; all traffic historically
	// travelled here.
	LaneBulk Lane = iota
	// LaneCtrl is the strict-priority control lane: on a priority-enabled
	// uplink, control frames serialize ahead of any queued bulk backlog, so
	// a saturated server keeps its control plane (adverts, directory ops,
	// pings) responsive. On a default uplink LaneCtrl behaves exactly like
	// LaneBulk.
	LaneCtrl
)

// Handler processes a delivered message on the receiving node.
type Handler func(msg Message)

// LinkProfile describes the network attachment of a node (or the default
// for the whole network). The zero value is replaced by DatacenterProfile.
type LinkProfile struct {
	// Latency is the one-way propagation delay added to every message the
	// node sends. The effective delay between two nodes is the sum of both
	// endpoints' latencies (a crude but monotone RTT model).
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) to each message.
	Jitter time.Duration
	// UplinkBps and DownlinkBps are the serialization rates in bits/sec.
	// Zero means infinite (no serialization delay).
	UplinkBps   float64
	DownlinkBps float64
	// Loss is the independent drop probability per message in [0, 1).
	Loss float64
}

// DatacenterProfile approximates an intra/inter-datacenter attachment: low
// latency, 10 Gbps symmetric, lossless.
func DatacenterProfile() LinkProfile {
	return LinkProfile{Latency: 1 * time.Millisecond, Jitter: 500 * time.Microsecond, UplinkBps: 10e9, DownlinkBps: 10e9}
}

// HomeBroadbandProfile approximates the paper's §4 "slow broadband"
// user-device attachment: 25 ms latency, 20 Mbps down / 1 Mbps up, 0.5 %
// loss.
func HomeBroadbandProfile() LinkProfile {
	return LinkProfile{Latency: 25 * time.Millisecond, Jitter: 10 * time.Millisecond, UplinkBps: 1e6, DownlinkBps: 20e6, Loss: 0.005}
}

// MobileProfile approximates the paper's "slow 3G" mobile attachment:
// 80 ms latency, 4 Mbps down / 1 Mbps up, 2 % loss.
func MobileProfile() LinkProfile {
	return LinkProfile{Latency: 80 * time.Millisecond, Jitter: 40 * time.Millisecond, UplinkBps: 1e6, DownlinkBps: 4e6, Loss: 0.02}
}

// LinkFault describes in-flight message mangling applied network-wide, on
// top of the per-node LinkProfile loss model. The zero value injects
// nothing and costs nothing (no RNG draws), so networks that never set a
// fault keep their historical event streams bit for bit.
//
// Faults are decided per message at send time from the network-level RNG
// stream:
//
//   - Corrupt: with this probability the payload arrives wrapped in
//     Corrupted, so receivers' type assertions fail the way a
//     checksum-mangled frame would fail to parse. Handlers must tolerate
//     (not panic on) such garbage; the conformance suite asserts they do.
//   - Duplicate: with this probability a second copy of the message is
//     delivered HoldBack-uniform later, exercising at-most-once and
//     idempotency handling.
//   - Reorder: with this probability the message is held back an extra
//     uniform [0, HoldBack) beyond its computed arrival, letting later
//     sends overtake it.
type LinkFault struct {
	Corrupt   float64
	Duplicate float64
	Reorder   float64
	// HoldBack bounds the extra delay for reordered messages and duplicate
	// copies. Zero defaults to 50ms — enough to invert delivery order
	// against datacenter RTTs.
	HoldBack time.Duration
}

func (f LinkFault) active() bool { return f.Corrupt > 0 || f.Duplicate > 0 || f.Reorder > 0 }

func (f LinkFault) holdBack() time.Duration {
	if f.HoldBack <= 0 {
		return 50 * time.Millisecond
	}
	return f.HoldBack
}

// Corrupted wraps the payload of a message garbled in flight by a LinkFault.
// Receivers that type-assert their expected payload type see the assertion
// fail and should discard the message; protocol code must never assume
// payloads are well-formed once faults are in play.
type Corrupted struct {
	// Original is the payload the sender transmitted, kept for debugging
	// and tests; handlers should treat the message as unparseable garbage.
	Original any
}

// Network is a simulated network of nodes sharing one virtual clock. It
// embeds the event engine, so it satisfies Scheduler.
type Network struct {
	engine
	seed    int64
	rng     *rand.Rand
	nodes   []*Node
	defProf LinkProfile
	// partition maps node -> group id; nodes in different groups cannot
	// exchange messages. Empty map means no partition.
	partition map[NodeID]int
	fault     LinkFault
	// regionOf/regionExtra implement the opt-in inter-region delay matrix
	// (SetRegionMatrix). Both stay nil unless a geography is installed, so
	// the default send path is untouched.
	regionOf    map[NodeID]int
	regionExtra [][]time.Duration
	// queueMetrics opts the send path into recording uplink queue
	// depth/sojourn observations (EnableQueueMetrics). Off by default: the
	// observations create new registry entries, which would perturb the
	// exported snapshots of historical experiments.
	queueMetrics bool
	trace        Trace
	// latency holds per-message-kind delivery latency histograms, created
	// lazily on first delivery of each kind. lastKind/lastLatency memoize
	// the most recent lookup: large-population traffic arrives in long runs
	// of one kind (every DHT RPC shares "simnet.rpc"), so the per-delivery
	// map lookup collapses to a string compare on the hot path.
	latency      map[string]*metrics.Histogram
	lastKind     string
	lastLatency  *metrics.Histogram
	deliveryPool sync.Pool
	running      bool
	// obs is the network's observability registry: protocol subsystems
	// annotate it live (via Node.Obs) and the substrate mirrors its Trace
	// and latency quantiles into it at snapshot time.
	obs *obs.Registry

	// Sharded-mode state (see shard.go); all nil/zero in the default
	// single-heap mode, which keeps that path byte-identical to history.
	shards  []*shard
	workers int
	// minLat tracks the smallest profile Latency ever attached to a node;
	// it bounds the conservative lookahead (2·minLat) in sharded mode.
	minLat    time.Duration
	minLatSet bool
	// winEnd/inWindow/jobMode are the window coordinator's state: written
	// only between worker barriers, read by workers during a phase.
	winEnd   time.Duration
	inWindow bool
	jobMode  int
	jobs     chan int
	jobsWG   sync.WaitGroup
}

var _ Scheduler = (*Network)(nil)

// New creates a network whose randomness derives entirely from seed.
// Nodes added later default to DatacenterProfile.
func New(seed int64) *Network {
	return NewWithConfig(NetworkConfig{Seed: seed})
}

// NetworkConfig selects the engine layout. The zero value (plus a Seed) is
// the classic single-heap engine; Shards >= 1 opts into the sharded engine
// (shard.go), which partitions nodes across per-shard event heaps and runs
// them on Workers parallel goroutines inside conservative virtual-time
// windows. For a fixed Seed, sharded results are byte-identical at every
// (Shards, Workers) setting — Shards: 1 uses the same sharded semantics on
// a single heap, which is what makes it the honest baseline for the
// determinism suite and for speedup measurements.
type NetworkConfig struct {
	Seed int64
	// Shards partitions nodes (id mod Shards) across independent event
	// heaps. 0 selects the default single-heap engine; >= 1 the sharded
	// engine.
	Shards int
	// Workers is the parallel worker count for sharded execution; 0 means
	// GOMAXPROCS, and it is capped at Shards. Ignored in single-heap mode.
	Workers int
}

// NewWithConfig creates a network with an explicit engine layout; see
// NetworkConfig.
func NewWithConfig(cfg NetworkConfig) *Network {
	nw := &Network{
		seed:      cfg.Seed,
		rng:       networkRand(cfg.Seed),
		defProf:   DatacenterProfile(),
		partition: map[NodeID]int{},
		latency:   map[string]*metrics.Histogram{},
		obs:       obs.NewRegistry(),
	}
	// The label orders registries during cross-trial merges; the publish
	// hook keeps the per-message hot path free of registry work by copying
	// Trace totals and latency quantiles in only when a snapshot is taken.
	nw.obs.SetLabel(fmt.Sprintf("seed:%d", cfg.Seed))
	nw.obs.OnPublish(nw.publishObs)
	obs.AttachCurrent(nw.obs)
	if cfg.Shards >= 1 {
		w := cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > cfg.Shards {
			w = cfg.Shards
		}
		nw.workers = w
		nw.shards = make([]*shard, cfg.Shards)
		for i := range nw.shards {
			sh := &shard{
				idx:     i,
				nw:      nw,
				outbox:  make([][]*event, cfg.Shards),
				latency: map[string]*metrics.Histogram{},
				obs:     obs.NewRegistry(),
			}
			// Shard labels sort after the root "seed:N" label, keeping
			// merged exports stable regardless of shard count.
			sh.obs.SetLabel(fmt.Sprintf("seed:%d/shard:%03d", cfg.Seed, i))
			obs.AttachCurrent(sh.obs)
			nw.shards[i] = sh
		}
	}
	return nw
}

// Sharded reports whether the network runs on the sharded engine.
func (nw *Network) Sharded() bool { return nw.shards != nil }

// NumShards returns the shard count (1 in single-heap mode).
func (nw *Network) NumShards() int {
	if nw.shards == nil {
		return 1
	}
	return len(nw.shards)
}

// Workers returns the sharded engine's worker count (1 in single-heap mode).
func (nw *Network) Workers() int {
	if nw.shards == nil {
		return 1
	}
	return nw.workers
}

// Obs returns the network's observability registry. Protocol layers
// resolve their named metrics once at construction (see Node.Obs) and
// update them live; Snapshot/merge export happens through internal/obs.
func (nw *Network) Obs() *obs.Registry { return nw.obs }

// publishObs mirrors the substrate's accumulated state into the registry.
// Runs on every Registry.Snapshot, so Set (not Add) keeps it idempotent.
func (nw *Network) publishObs(r *obs.Registry) {
	t := nw.Trace() // materializes the shard merge in sharded mode
	r.Counter("net.msg.sent").Set(t.Sent)
	r.Counter("net.msg.delivered").Set(t.Delivered)
	r.Counter("net.msg.dropped").Set(t.Dropped)
	r.Counter("net.msg.unhandled").Set(t.Unhandled)
	r.Counter("net.bytes.sent").Set(t.BytesSent)
	r.Counter("net.bytes.delivered").Set(t.BytesDelivered)
	r.Counter("net.fault.corrupted").Set(t.Corrupted)
	r.Counter("net.fault.duplicated").Set(t.Duplicated)
	r.Counter("net.fault.reordered").Set(t.Reordered)
	r.Gauge("net.nodes").Set(float64(len(nw.nodes)))
	var crashes int64
	var downtime time.Duration
	for _, n := range nw.nodes {
		crashes += int64(n.crashes)
		downtime += n.downtime
	}
	r.Counter("net.node.crashes").Set(crashes)
	r.Gauge("net.node.downtime_s").Set(downtime.Seconds())
	// Map-iteration order is harmless here: each kind Sets independently
	// named values, and the registry export sorts by name.
	for kind, h := range nw.latencySnapshot() { //determinism:ok snapshot export, keys independent
		r.Counter("net.latency." + kind + ".count").Set(h.Count())
		r.Gauge("net.latency." + kind + ".p50_s").Set(h.Quantile(0.5))
		r.Gauge("net.latency." + kind + ".p95_s").Set(h.Quantile(0.95))
	}
}

// latencySnapshot returns the per-kind latency histograms, merging the
// per-shard sets (bucket-by-bucket sums, so shard layout cannot leak into
// the result) in sharded mode.
func (nw *Network) latencySnapshot() map[string]*metrics.Histogram {
	if nw.shards == nil {
		return nw.latency
	}
	out := map[string]*metrics.Histogram{}
	for _, sh := range nw.shards {
		for kind, h := range sh.latency { //determinism:ok merge is commutative per kind
			dst, ok := out[kind]
			if !ok {
				dst = metrics.NewHistogram(0, 30, 3000)
				out[kind] = dst
			}
			dst.Merge(h)
		}
	}
	return out
}

// SetDefaultProfile changes the link profile assigned to nodes added after
// this call.
func (nw *Network) SetDefaultProfile(p LinkProfile) { nw.defProf = p }

// Rand exposes the network-level RNG stream: substrate draws (loss,
// jitter) and harness-level workload generation. Protocol code running on
// a node should use Node.Rand instead, so the node's behaviour stays
// independent of global event interleaving.
func (nw *Network) Rand() *rand.Rand { return nw.rng }

// Seed returns the seed this network was created with.
func (nw *Network) Seed() int64 { return nw.seed }

// Trace returns the accumulated network-wide traffic counters. In sharded
// mode the per-shard counters are re-summed on every call (field sums are
// commutative, so the result is independent of shard layout); the returned
// pointer stays valid and is refreshed by subsequent calls.
func (nw *Network) Trace() *Trace {
	if nw.shards != nil {
		var t Trace
		for _, sh := range nw.shards {
			t.add(&sh.trace)
		}
		nw.trace = t
	}
	return &nw.trace
}

// LatencyHistogram returns the delivery-latency histogram (in seconds) for
// a message kind, or nil if nothing of that kind has been delivered.
// Buckets are 10 ms wide over [0, 30s). In sharded mode the per-shard
// histograms are merged into a fresh histogram on every call.
func (nw *Network) LatencyHistogram(kind string) *metrics.Histogram {
	if nw.shards != nil {
		var merged *metrics.Histogram
		for _, sh := range nw.shards {
			if h := sh.latency[kind]; h != nil {
				if merged == nil {
					merged = metrics.NewHistogram(0, 30, 3000)
				}
				merged.Merge(h)
			}
		}
		return merged
	}
	return nw.latency[kind]
}

// LatencyKinds returns the message kinds with recorded delivery latencies.
// In sharded mode the union across shards is returned sorted, so the
// result cannot depend on shard layout.
func (nw *Network) LatencyKinds() []string {
	if nw.shards != nil {
		seen := map[string]bool{}
		kinds := []string{}
		for _, sh := range nw.shards {
			for k := range sh.latency { //determinism:ok union is sorted below
				if !seen[k] {
					seen[k] = true
					kinds = append(kinds, k)
				}
			}
		}
		sort.Strings(kinds)
		return kinds
	}
	kinds := make([]string, 0, len(nw.latency))
	for k := range nw.latency { //determinism:ok result is sorted below
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// AddNode creates a node with the current default link profile.
func (nw *Network) AddNode() *Node {
	return nw.AddNodeWithProfile(nw.defProf)
}

// AddNodeWithProfile creates a node with an explicit link profile. The
// node receives its own deterministic RNG stream derived from (network
// seed, node id); see Node.Rand.
func (nw *Network) AddNodeWithProfile(p LinkProfile) *Node {
	id := NodeID(len(nw.nodes))
	n := &Node{
		id:       id,
		nw:       nw,
		profile:  p,
		rng:      nodeRand(nw.seed, id),
		up:       true,
		handlers: map[string]Handler{},
	}
	nw.noteLatency(p.Latency)
	if nw.shards != nil {
		n.sh = nw.shards[int(id)%len(nw.shards)]
		n.origin = uint64(id) + 1
		n.srng = substrateRand(nw.seed, id)
	}
	nw.nodes = append(nw.nodes, n)
	return n
}

// noteLatency records a profile latency for the sharded engine's lookahead
// bound: the minimum over every profile ever attached is monotone
// non-increasing, so tracking the min at attach time is safe even when
// profiles change mid-run.
func (nw *Network) noteLatency(l time.Duration) {
	if !nw.minLatSet || l < nw.minLat {
		nw.minLat, nw.minLatSet = l, true
	}
}

// Node returns the node with the given id, or nil if out of range.
func (nw *Network) Node(id NodeID) *Node {
	if int(id) < 0 || int(id) >= len(nw.nodes) {
		return nil
	}
	return nw.nodes[id]
}

// NumNodes returns how many nodes have been added.
func (nw *Network) NumNodes() int { return len(nw.nodes) }

// Nodes returns the live slice of all nodes (do not mutate).
func (nw *Network) Nodes() []*Node { return nw.nodes }

// Run executes events until the queue empties or virtual time reaches
// until. It returns the virtual time at which it stopped.
func (nw *Network) Run(until time.Duration) time.Duration {
	if nw.shards != nil {
		return nw.runSharded(until, false)
	}
	if nw.running {
		panic("simnet: re-entrant Run")
	}
	nw.running = true
	defer func() { nw.running = false }()
	for {
		at, ok := nw.peekTime()
		if !ok {
			break
		}
		if at > until {
			nw.now = until
			return nw.now
		}
		nw.step()
	}
	if nw.now < until {
		nw.now = until
	}
	return nw.now
}

// RunAll executes every queued event regardless of time. Useful for tests;
// panics if the queue keeps growing beyond a large safety bound.
func (nw *Network) RunAll() {
	if nw.shards != nil {
		nw.runSharded(runAllHorizon, true)
		return
	}
	const maxEvents = 50_000_000
	count := 0
	for nw.step() {
		if count++; count > maxEvents {
			panic("simnet: RunAll exceeded event safety bound; runaway schedule?")
		}
	}
}

// Partition splits the network into groups; messages only flow within a
// group. Nodes not listed fall into group 0 alongside the first group.
//
// Drop semantics: a message sent across a partition boundary is dropped at
// send time (Send returns false) and never enters the event queue, so
// healing cannot revive it — senders must retry after the heal. A message
// that was already in flight when the partition appeared is re-checked at
// delivery time: it is dropped if its endpoints are then in different
// groups, and delivered normally if the partition has healed (or never
// separated them) by its arrival. Both kinds of drop are counted in the
// Trace.
func (nw *Network) Partition(groups ...[]NodeID) {
	nw.partition = map[NodeID]int{}
	for gi, g := range groups {
		for _, id := range g {
			nw.partition[id] = gi
		}
	}
}

// Heal removes any partition. Messages sent after the heal flow normally,
// and messages still in flight across the former boundary deliver; messages
// dropped at send time while partitioned stay lost (see Partition).
func (nw *Network) Heal() { nw.partition = map[NodeID]int{} }

// SetRegionMatrix installs an opt-in inter-region propagation-delay
// matrix: a message from a node in region a to a node in region b gains
// extra[a][b] of one-way delay on top of both endpoints' profile latency.
// Nodes absent from the assignment default to region 0. Passing an empty
// assignment (or empty matrix) removes the hook.
//
// The hook is default-off and draws no randomness either way, so a
// network that never installs a geography keeps its historical event
// stream bit for bit — the guarantee the pre-X18 experiment goldens rely
// on. internal/workload.RegionSet.Apply is the intended caller.
func (nw *Network) SetRegionMatrix(region map[NodeID]int, extra [][]time.Duration) {
	if len(region) == 0 || len(extra) == 0 {
		nw.regionOf, nw.regionExtra = nil, nil
		return
	}
	for _, row := range extra {
		if len(row) != len(extra) {
			panic("simnet: region matrix must be square")
		}
	}
	for id, r := range region { //determinism:ok validation only, no ordering effect
		if r < 0 || r >= len(extra) {
			panic(fmt.Sprintf("simnet: node %d assigned to region %d outside matrix [0, %d)", id, r, len(extra)))
		}
	}
	nw.regionOf, nw.regionExtra = region, extra
}

// EnableQueueMetrics starts recording per-send uplink queue observations
// into each sender's registry: a net.queue.depth gauge+histogram (messages
// queued on the uplink, including the one being recorded) and a
// net.queue.sojourn_s histogram (queueing plus serialization delay until
// the message departs). Like SetRegionMatrix, the hook is default-off and
// draws no randomness either way, so networks that never enable it keep
// their exported snapshots bit for bit — the guarantee the pre-X20
// experiment goldens rely on.
func (nw *Network) EnableQueueMetrics() { nw.queueMetrics = true }

// SetLinkFault installs f as the network-wide in-flight fault model;
// the zero LinkFault turns injection off.
func (nw *Network) SetLinkFault(f LinkFault) { nw.fault = f }

// LinkFault returns the current fault model.
func (nw *Network) LinkFault() LinkFault { return nw.fault }

func (nw *Network) samePartition(a, b NodeID) bool {
	if len(nw.partition) == 0 {
		return true
	}
	return nw.partition[a] == nw.partition[b]
}

// delivery carries an in-flight message through the pooled, closure-free
// event path.
type delivery struct {
	nw     *Network
	msg    Message
	sentAt time.Duration
}

// deliverEvent is the EventFunc for message arrival; arg is a pooled
// *delivery.
func deliverEvent(arg any) {
	d := arg.(*delivery)
	nw, msg := d.nw, d.msg
	sentAt := d.sentAt
	*d = delivery{}
	nw.deliveryPool.Put(d)

	dst := nw.nodes[msg.To]
	// Re-check state at delivery time: the receiver may have crashed, or a
	// partition may have appeared, while the message was in flight.
	if !dst.up || !nw.samePartition(msg.From, msg.To) {
		nw.trace.Dropped++
		dst.trace.Dropped++
		return
	}
	if _, garbled := msg.Payload.(Corrupted); garbled {
		nw.trace.Corrupted++
		dst.trace.Corrupted++
	}
	nw.trace.Delivered++
	nw.trace.BytesDelivered += int64(msg.Size)
	dst.trace.Delivered++
	dst.trace.BytesDelivered += int64(msg.Size)
	nw.observeLatency(msg.Kind, nw.now-sentAt)
	if h, ok := dst.handlers[msg.Kind]; ok {
		h(msg)
	} else if dst.defaultHandler != nil {
		dst.defaultHandler(msg)
	} else {
		nw.trace.Unhandled++
		dst.trace.Unhandled++
	}
}

func (nw *Network) observeLatency(kind string, lat time.Duration) {
	if kind == nw.lastKind && nw.lastLatency != nil {
		nw.lastLatency.Observe(lat.Seconds())
		return
	}
	h, ok := nw.latency[kind]
	if !ok {
		// 10 ms buckets over [0, 30s): fine enough for RTT-scale traffic,
		// wide enough that bandwidth-bound transfers rarely overflow.
		h = metrics.NewHistogram(0, 30, 3000)
		nw.latency[kind] = h
	}
	nw.lastKind, nw.lastLatency = kind, h
	h.Observe(lat.Seconds())
}

// Send transmits a message. Delivery is scheduled according to both
// endpoints' link profiles; the message is silently dropped (and counted in
// the trace) if either endpoint is down, the endpoints are partitioned, or
// the loss draw fires. Send reports whether delivery was scheduled.
//
// Accounting: Sent/BytesSent and send-time drops are charged to the
// sending node's Trace; Delivered/BytesDelivered/Unhandled and in-flight
// drops to the receiving node's. The network-wide Trace sees everything.
func (nw *Network) Send(msg Message) bool {
	if nw.shards != nil {
		return nw.sendSharded(msg)
	}
	src := nw.Node(msg.From)
	dst := nw.Node(msg.To)
	if src == nil || dst == nil {
		panic(fmt.Sprintf("simnet: send between unknown nodes %d -> %d", msg.From, msg.To))
	}
	nw.trace.Sent++
	nw.trace.BytesSent += int64(msg.Size)
	src.trace.Sent++
	src.trace.BytesSent += int64(msg.Size)
	if !src.up || !dst.up || !nw.samePartition(msg.From, msg.To) {
		nw.trace.Dropped++
		src.trace.Dropped++
		return false
	}
	// Loss at either endpoint is an independent drop, so the combined
	// probability composes as 1-(1-pa)(1-pb) — summing would overstate the
	// rate (and can exceed 1). The draw happens before the uplink is
	// charged: a lost message never occupies the sender's uplink, so it
	// cannot delay later traffic.
	if pa, pb := src.profile.Loss, dst.profile.Loss; pa > 0 || pb > 0 {
		if p := 1 - (1-pa)*(1-pb); nw.rng.Float64() < p {
			nw.trace.Dropped++
			src.trace.Dropped++
			return false
		}
	}

	// Serialization on the sender's uplink: the message waits for the
	// uplink to free, then occupies it for size/rate. Lane-aware on nodes
	// that enabled the priority uplink; plain FIFO otherwise.
	depart := nw.now
	if src.profile.UplinkBps > 0 {
		ser := secondsToDuration(float64(msg.Size*8) / src.profile.UplinkBps)
		depart = src.serialize(msg.Lane, nw.now, ser)
		if nw.queueMetrics {
			src.noteQueue(nw.now, depart)
		}
	}
	// Propagation + jitter. An installed region matrix (opt-in; see
	// SetRegionMatrix) adds its pairwise inter-region delay.
	delay := src.profile.Latency + dst.profile.Latency
	if nw.regionOf != nil {
		delay += nw.regionExtra[nw.regionOf[msg.From]][nw.regionOf[msg.To]]
	}
	if j := src.profile.Jitter + dst.profile.Jitter; j > 0 {
		delay += time.Duration(nw.rng.Int63n(int64(j)))
	}
	arrive := depart + delay
	// Serialization on the receiver's downlink.
	if dst.profile.DownlinkBps > 0 {
		if dst.downlinkFree > arrive {
			arrive = dst.downlinkFree
		}
		ser := secondsToDuration(float64(msg.Size*8) / dst.profile.DownlinkBps)
		arrive += ser
		dst.downlinkFree = arrive
	}

	// In-flight fault injection. All draws are guarded by their probability,
	// so a zero LinkFault consumes no randomness and perturbs nothing.
	if f := nw.fault; f.active() {
		if f.Corrupt > 0 && nw.rng.Float64() < f.Corrupt {
			msg.Payload = Corrupted{Original: msg.Payload}
		}
		if f.Reorder > 0 && nw.rng.Float64() < f.Reorder {
			arrive += time.Duration(nw.rng.Int63n(int64(f.holdBack())))
			nw.trace.Reordered++
		}
		if f.Duplicate > 0 && nw.rng.Float64() < f.Duplicate {
			// The duplicate is a fault artifact, not a retransmission: it
			// skips link accounting and lands an extra hold-back later.
			nw.trace.Duplicated++
			dup, ok := nw.deliveryPool.Get().(*delivery)
			if !ok {
				dup = new(delivery)
			}
			dup.nw, dup.msg, dup.sentAt = nw, msg, nw.now
			nw.ScheduleCall(arrive+time.Duration(nw.rng.Int63n(int64(f.holdBack()))), deliverEvent, dup)
		}
	}

	d, ok := nw.deliveryPool.Get().(*delivery)
	if !ok {
		d = new(delivery)
	}
	d.nw, d.msg, d.sentAt = nw, msg, nw.now
	nw.ScheduleCall(arrive, deliverEvent, d)
	return true
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Trace accumulates traffic statistics; the Network holds a network-wide
// instance and every Node holds its own.
type Trace struct {
	Sent           int64
	Delivered      int64
	Dropped        int64
	Unhandled      int64
	BytesSent      int64
	BytesDelivered int64
	// Fault-injection counters (see LinkFault). Corrupted and Duplicated
	// deliveries are also counted in Delivered; Reordered counts messages
	// held back, which still deliver exactly once.
	Corrupted  int64
	Duplicated int64
	Reordered  int64
}

// DeliveryRate returns Delivered/Sent, or 0 when nothing was sent.
func (t *Trace) DeliveryRate() float64 {
	if t.Sent == 0 {
		return 0
	}
	return float64(t.Delivered) / float64(t.Sent)
}

// Reset zeroes all counters.
func (t *Trace) Reset() { *t = Trace{} }

// add accumulates o's counters into t (the shard-merge primitive; field
// sums are commutative, so merge order never matters).
func (t *Trace) add(o *Trace) {
	t.Sent += o.Sent
	t.Delivered += o.Delivered
	t.Dropped += o.Dropped
	t.Unhandled += o.Unhandled
	t.BytesSent += o.BytesSent
	t.BytesDelivered += o.BytesDelivered
	t.Corrupted += o.Corrupted
	t.Duplicated += o.Duplicated
	t.Reordered += o.Reordered
}
