package simnet

import (
	"testing"
	"time"
)

// hookReleases installs envReleaseHook for the test's duration and returns
// a counter of envelopes actually returned to the pool.
func hookReleases(t *testing.T) *int {
	t.Helper()
	n := new(int)
	envReleaseHook = func(*rpcEnvelope) { *n++ }
	t.Cleanup(func() { envReleaseHook = nil })
	return n
}

// TestRPCCancelledLoserReleasesOnce pins the envelope-accounting invariant
// the resilience layer's hedging depends on: when two concurrent calls
// race and the loser is cancelled through its CallRef, the loser's reply
// envelope still comes home through the late-reply path and is returned to
// the pool exactly once — and the cancelled callback never runs.
func TestRPCCancelledLoserReleasesOnce(t *testing.T) {
	nw := New(11)
	caller, server := nw.AddNode(), nw.AddNode()
	srv := NewRPCNode(server)
	srv.ServeAsync("get", func(from NodeID, req any, reply func(resp any, respSize int)) {
		d := time.Duration(0)
		if req == "slow" {
			d = 100 * time.Millisecond
		}
		server.After(d, func() { reply(req, 16) })
	})
	releases := hookReleases(t)
	rpc := NewRPCNode(caller)

	wins, loserRan := 0, false
	var loser CallRef
	loser = rpc.CallEx(server.ID(), "get", "slow", 16, time.Second, func(resp any, rtt time.Duration, err error) {
		loserRan = true
	})
	rpc.CallEx(server.ID(), "get", "fast", 16, time.Second, func(resp any, rtt time.Duration, err error) {
		if err != nil {
			t.Errorf("winner failed: %v", err)
		}
		wins++
		if !loser.Cancel() {
			t.Error("losing call was not outstanding at cancellation")
		}
		if loser.Cancel() {
			t.Error("second Cancel on the same ref reported success")
		}
	})
	nw.RunAll()

	if wins != 1 || loserRan {
		t.Fatalf("wins=%d loserRan=%v, want exactly one winner and a silent loser", wins, loserRan)
	}
	// Four envelopes recycle, each exactly once: both request envelopes on
	// receipt at the async server, the winner's reply consumed normally,
	// and the loser's reply dropped by the late-reply path — cancellation
	// must not leak that last one, nor release it twice.
	if *releases != 4 {
		t.Fatalf("envelope releases = %d, want 4", *releases)
	}
}

// TestRPCDuplicateFaultSkipsRecycling is the counterpart: while a
// duplicate fault is in force a delivered envelope may be delivered again
// off the same pointer, so none of the involved envelopes may go back to
// the pool — a recycled duplicate would alias a zeroed struct.
func TestRPCDuplicateFaultSkipsRecycling(t *testing.T) {
	nw := New(12)
	caller, server := nw.AddNode(), nw.AddNode()
	srv := NewRPCNode(server)
	srv.Serve("echo", func(from NodeID, req any) (any, int) { return req, 16 })
	nw.SetLinkFault(LinkFault{Duplicate: 1})
	releases := hookReleases(t)
	rpc := NewRPCNode(caller)

	done := 0
	rpc.Call(server.ID(), "echo", "x", 16, time.Second, func(resp any, err error) {
		if err != nil {
			t.Errorf("call under duplicate fault failed: %v", err)
		}
		done++
	})
	nw.RunAll()

	if done != 1 {
		t.Fatalf("done ran %d times, want once despite duplicated delivery", done)
	}
	if *releases != 0 {
		t.Fatalf("envelope releases = %d under duplicate fault, want 0", *releases)
	}
}
