package simnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// RPC layers a request/response discipline over raw messages. A node that
// serves RPCs registers a Server handler per method; a caller uses Call and
// receives either the response payload or a timeout. Request and response
// each traverse the network as ordinary messages, so they inherit latency,
// bandwidth, loss, crash, and partition behaviour.
//
// The hot path is allocation-free in steady state: envelopes and pending
// call records recycle through sync.Pools (alongside the engine's event
// pool), and the per-call timeout is scheduled through the closure-free
// AfterCall path with the pending record itself as the argument. At
// 10k-node populations the RPC layer carries millions of messages per
// simulated minute, so a single capture or wrapper allocation per call
// shows up directly in the scale sweep (X15).

// rpcEnvelope wraps a request or response on the wire. Envelopes are
// pooled: the consuming side releases them back after extracting the
// payload, except when the network's duplicate-fault model may deliver the
// same envelope again (see newEnvelope).
type rpcEnvelope struct {
	id      uint64
	method  string
	payload any
	isReply bool
	ok      bool // server found a handler and produced a reply
	// recycle records, at send time, whether this envelope is safe to
	// return to the pool once consumed. A message sent while the network's
	// LinkFault duplicates traffic may be delivered twice sharing one
	// envelope pointer, so such envelopes are left to the GC instead.
	recycle bool
}

var envPool = sync.Pool{New: func() any { return new(rpcEnvelope) }}

// envReleaseHook, when non-nil, observes every envelope actually returned
// to the pool (it still sees the envelope's fields — it runs before the
// zeroing). Tests use it to pin the exactly-once recycle invariant across
// the reply, late-reply, and cancellation paths; it is nil in production.
var envReleaseHook func(*rpcEnvelope)

// Sentinel RPC failure causes, matchable with errors.Is. The resilience
// layer (internal/resil) keys retry decisions off them: a timeout may be a
// lost message and is worth retrying, while a refusal is the callee's
// deterministic answer and a caller crash invalidates the whole operation.
var (
	ErrRPCTimeout    = errors.New("rpc timeout")
	ErrNotServed     = errors.New("method not served")
	ErrCallerCrashed = errors.New("caller crashed")
)

// newEnvelope returns a pooled envelope stamped with its recycling
// eligibility under the network's current fault model. Duplication is
// decided per message at send time, so an envelope sent while Duplicate is
// zero can never be delivered twice, no matter what faults appear later.
func newEnvelope(nw *Network) *rpcEnvelope {
	env := envPool.Get().(*rpcEnvelope)
	env.recycle = nw.fault.Duplicate <= 0
	return env
}

// releaseEnvelope recycles a consumed envelope when it is safe to do so.
func releaseEnvelope(env *rpcEnvelope) {
	if !env.recycle {
		return
	}
	if envReleaseHook != nil {
		envReleaseHook(env)
	}
	*env = rpcEnvelope{}
	envPool.Put(env)
}

const rpcKind = "simnet.rpc"

// RPCNode augments a Node with request/response plumbing. Create one per
// node that participates in RPC traffic.
type RPCNode struct {
	n               *Node
	nextID          uint64
	pending         map[uint64]*pendingCall
	servers         map[string]RPCHandler
	asyncServers    map[string]RPCAsyncHandler
	deferredServers map[string]RPCDeferredHandler
	// laneOf assigns uplink lanes per method: both the request and the
	// reply of a lane-stamped method travel on that lane. nil (the default)
	// means every method rides the bulk lane, with no per-message lookup.
	laneOf map[string]Lane
}

// pendingCall is one outstanding request on the caller. It doubles as the
// argument of the closure-free timeout event, so it carries everything the
// timeout handler needs; records recycle through a pool once finished.
type pendingCall struct {
	r      *RPCNode
	id     uint64
	method string
	to     NodeID
	wait   time.Duration
	sentAt time.Duration // global virtual time at issue, for RTT reporting
	done   func(resp any, err error)
	// doneEx, when non-nil, is the RTT-reporting completion callback issued
	// through CallEx; exactly one of done/doneEx is set per call.
	doneEx  func(resp any, rtt time.Duration, err error)
	timeout Timer // cancelled when the reply lands, so no dead event lingers
	// finished guards against double completion (reply after timeout, crash
	// after reply); it is reset when the record is reused.
	finished bool
}

var pendingPool = sync.Pool{New: func() any { return new(pendingCall) }}

// finish marks the call complete and cancels its timeout. The caller is
// responsible for removing it from the pending map and releasing it.
func (pc *pendingCall) finish() {
	pc.finished = true
	pc.timeout.Cancel()
}

// releasePending recycles a finished call record. Callers must have
// extracted the done callback first: release happens before the callback
// runs so a re-entrant Call can reuse the record immediately.
func releasePending(pc *pendingCall) {
	*pc = pendingCall{}
	pendingPool.Put(pc)
}

// rpcTimeoutEvent is the EventFunc behind every call timeout; arg is the
// *pendingCall itself, so scheduling it allocates nothing.
func rpcTimeoutEvent(arg any) {
	pc := arg.(*pendingCall)
	if pc.finished {
		return
	}
	pc.finished = true
	delete(pc.r.pending, pc.id)
	done, doneEx := pc.done, pc.doneEx
	err := fmt.Errorf("simnet: call %s to node %d timed out after %v: %w", pc.method, pc.to, pc.wait, ErrRPCTimeout)
	releasePending(pc)
	if doneEx != nil {
		doneEx(nil, 0, err)
		return
	}
	done(nil, err)
}

// RPCHandler serves one method: it receives the caller's node ID and request
// payload and returns the response payload and its simulated size in bytes.
type RPCHandler func(from NodeID, req any) (resp any, respSize int)

// RPCAsyncHandler serves one method whose reply depends on further network
// activity (e.g. a nested RPC to another node). The handler must invoke
// reply exactly once, possibly from a later event; the reply then travels
// back to the caller as usual, inheriting all accrued virtual time.
type RPCAsyncHandler func(from NodeID, req any, reply func(resp any, respSize int))

// NewRPCNode wires RPC handling onto n. Multiple protocol layers on the
// same node share one RPCNode: repeated calls return the existing
// instance, so each layer can register its own methods without clobbering
// the others' transport.
func NewRPCNode(n *Node) *RPCNode {
	if n.rpc != nil {
		return n.rpc
	}
	r := &RPCNode{
		n:               n,
		pending:         map[uint64]*pendingCall{},
		servers:         map[string]RPCHandler{},
		asyncServers:    map[string]RPCAsyncHandler{},
		deferredServers: map[string]RPCDeferredHandler{},
	}
	n.rpc = r
	n.Handle(rpcKind, r.onMessage)
	// A crash fails all outstanding calls: the caller's state is lost. The
	// drain runs in ascending call id order — map iteration order is not
	// deterministic, and the failure callbacks can schedule follow-up
	// traffic whose event ordering must be a function of the seed alone.
	n.OnDown(func() {
		if len(r.pending) == 0 {
			return
		}
		ids := make([]uint64, 0, len(r.pending))
		for id := range r.pending { //determinism:ok drained in sorted call-id order below
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			pc := r.pending[id]
			delete(r.pending, id)
			if pc.finished {
				continue
			}
			pc.finish()
			done, doneEx := pc.done, pc.doneEx
			releasePending(pc)
			err := fmt.Errorf("simnet: node %d crashed with call in flight: %w", n.ID(), ErrCallerCrashed)
			if doneEx != nil {
				doneEx(nil, 0, err)
				continue
			}
			done(nil, err)
		}
	})
	return r
}

// Node returns the underlying simulated node.
func (r *RPCNode) Node() *Node { return r.n }

// Serve registers the handler for method.
func (r *RPCNode) Serve(method string, h RPCHandler) { r.servers[method] = h }

// ServeAsync registers an asynchronous handler for method; it takes
// precedence over a synchronous handler of the same name.
func (r *RPCNode) ServeAsync(method string, h RPCAsyncHandler) { r.asyncServers[method] = h }

// RPCDeferredHandler serves a method by completing a ReplyToken, possibly
// from a later event. Unlike RPCAsyncHandler the token is a plain value —
// no closure is allocated per request — which is what lets a server queue
// thousands of requests (internal/overload) without touching the heap in
// steady state. The handler (or whatever it hands the token to) must call
// Reply exactly once per token.
type RPCDeferredHandler func(from NodeID, req any, tok ReplyToken)

// ReplyToken identifies one outstanding deferred request. The zero value
// is inert; tokens are plain values and may be copied freely.
type ReplyToken struct {
	r      *RPCNode
	id     uint64
	from   NodeID
	method string
}

// From returns the calling node's ID.
func (t ReplyToken) From() NodeID { return t.from }

// Method returns the requested method name.
func (t ReplyToken) Method() string { return t.method }

// Reply sends the response back to the caller. It must be called exactly
// once per token; calling it on a zero token is a no-op.
func (t ReplyToken) Reply(resp any, respSize int) {
	if t.r == nil {
		return
	}
	reply := newEnvelope(t.r.n.nw)
	reply.id, reply.method, reply.isReply = t.id, t.method, true
	reply.payload, reply.ok = resp, true
	t.r.sendEnvelope(t.from, reply, respSize+64)
}

// ServeDeferred registers a deferred handler for method; it takes
// precedence over both async and synchronous handlers of the same name.
func (r *RPCNode) ServeDeferred(method string, h RPCDeferredHandler) {
	r.deferredServers[method] = h
}

// SetMethodLane assigns an uplink lane to a method: requests and replies
// of that method are sent with the lane stamped, so on priority-enabled
// uplinks (Node.SetPriorityUplink) they serialize on the control cursor.
// Methods default to LaneBulk; stamping LaneBulk removes an assignment.
func (r *RPCNode) SetMethodLane(method string, lane Lane) {
	if lane == LaneBulk {
		if r.laneOf != nil {
			delete(r.laneOf, method)
		}
		return
	}
	if r.laneOf == nil {
		r.laneOf = map[string]Lane{}
	}
	r.laneOf[method] = lane
}

// sendEnvelope transmits an RPC envelope on its method's assigned lane.
func (r *RPCNode) sendEnvelope(to NodeID, env *rpcEnvelope, size int) {
	var lane Lane
	if r.laneOf != nil {
		lane = r.laneOf[env.method]
	}
	r.n.SendLane(to, rpcKind, env, size, lane)
}

// Call issues an asynchronous request to the target's method. done is
// invoked exactly once: with the response payload on success, or with a
// non-nil error on timeout, crash, or if the callee does not serve the
// method. The timeout is a cancellable timer: a reply (or caller crash)
// removes it from the event queue instead of leaving it to fire dead.
func (r *RPCNode) Call(to NodeID, method string, req any, reqSize int, timeout time.Duration, done func(resp any, err error)) {
	r.start(to, method, req, reqSize, timeout, done, nil)
}

// CallRef is a cancellable handle on an outstanding call issued through
// CallEx. The zero value is inert.
type CallRef struct {
	r  *RPCNode
	id uint64
}

// Cancel abandons the referenced call if it is still outstanding: the
// timeout timer is removed, the pending record is recycled, and the
// completion callback is never invoked. A reply arriving later for the
// cancelled id is dropped by the usual late-reply path, which still
// releases its envelope exactly once. Call ids are never reused, so a
// stale ref (the call completed, its record repooled) is a no-op. Reports
// whether an outstanding call was actually cancelled.
func (cr CallRef) Cancel() bool {
	if cr.r == nil {
		return false
	}
	pc, ok := cr.r.pending[cr.id]
	if !ok || pc.finished {
		return false
	}
	pc.finish()
	delete(cr.r.pending, cr.id)
	releasePending(pc)
	return true
}

// CallEx is Call with per-call RTT reporting and a cancellable handle:
// done additionally receives the measured round-trip time on the global
// virtual clock (meaningful only when err is nil), and the returned
// CallRef can abandon the call — the hook the resilience layer's hedged
// requests use to cancel the losing attempt.
func (r *RPCNode) CallEx(to NodeID, method string, req any, reqSize int, timeout time.Duration, done func(resp any, rtt time.Duration, err error)) CallRef {
	return r.start(to, method, req, reqSize, timeout, nil, done)
}

// start is the shared issue path behind Call and CallEx.
func (r *RPCNode) start(to NodeID, method string, req any, reqSize int, timeout time.Duration, done func(resp any, err error), doneEx func(resp any, rtt time.Duration, err error)) CallRef {
	r.nextID++
	id := r.nextID
	pc := pendingPool.Get().(*pendingCall)
	pc.r, pc.id, pc.method, pc.to, pc.wait = r, id, method, to, timeout
	pc.done, pc.doneEx = done, doneEx
	pc.sentAt = r.n.Now()
	pc.finished = false
	r.pending[id] = pc
	env := newEnvelope(r.n.nw)
	env.id, env.method, env.payload = id, method, req
	r.sendEnvelope(to, env, reqSize+64)
	// The timeout runs on the caller's local clock: a fast-skewed node
	// gives up on its peers early, a slow one hangs on.
	pc.timeout = r.n.AfterCall(timeout, rpcTimeoutEvent, pc)
	return CallRef{r: r, id: id}
}

func (r *RPCNode) onMessage(msg Message) {
	env, ok := msg.Payload.(*rpcEnvelope)
	if !ok {
		return
	}
	if env.isReply {
		id, method, payload, served := env.id, env.method, env.payload, env.ok
		releaseEnvelope(env)
		pc, ok := r.pending[id]
		if !ok || pc.finished {
			return // late reply after timeout or cancellation; drop
		}
		pc.finish()
		delete(r.pending, id)
		done, doneEx := pc.done, pc.doneEx
		rtt := r.n.Now() - pc.sentAt
		releasePending(pc)
		if !served {
			err := fmt.Errorf("simnet: node %d does not serve %s: %w", msg.From, method, ErrNotServed)
			if doneEx != nil {
				doneEx(nil, rtt, err)
				return
			}
			done(nil, err)
			return
		}
		if doneEx != nil {
			doneEx(payload, rtt, nil)
			return
		}
		done(payload, nil)
		return
	}
	// Incoming request. Extract the fields before dispatch: a recyclable
	// envelope is reused in place for the synchronous reply, and the async
	// path must not alias an envelope whose struct may be repooled.
	id, method, payload := env.id, env.method, env.payload
	if ah, served := r.asyncServers[method]; served {
		releaseEnvelope(env)
		from := msg.From
		replied := false
		ah(from, payload, func(resp any, respSize int) {
			if replied {
				panic("simnet: async RPC handler replied twice")
			}
			replied = true
			reply := newEnvelope(r.n.nw)
			reply.id, reply.method, reply.isReply = id, method, true
			reply.payload, reply.ok = resp, true
			r.sendEnvelope(from, reply, respSize+64)
		})
		return
	}
	if dh, served := r.deferredServers[method]; served {
		releaseEnvelope(env)
		dh(msg.From, payload, ReplyToken{r: r, id: id, from: msg.From, method: method})
		return
	}
	h, served := r.servers[method]
	respSize := 0
	var resp any
	if served {
		resp, respSize = h(msg.From, payload)
	}
	reply := env
	if !env.recycle {
		// The request envelope may still be delivered again by a duplicate
		// fault; leave it untouched and build the reply on a fresh one.
		reply = newEnvelope(r.n.nw)
		reply.id, reply.method = id, method
	} else {
		// Reusing the request envelope for the reply: re-evaluate recycling
		// under the fault model in force for the reply's own send.
		reply.recycle = r.n.nw.fault.Duplicate <= 0
	}
	reply.isReply, reply.payload, reply.ok = true, resp, served
	r.sendEnvelope(msg.From, reply, respSize+64)
}
