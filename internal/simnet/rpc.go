package simnet

import (
	"fmt"
	"time"
)

// RPC layers a request/response discipline over raw messages. A node that
// serves RPCs registers a Server handler per method; a caller uses Call and
// receives either the response payload or a timeout. Request and response
// each traverse the network as ordinary messages, so they inherit latency,
// bandwidth, loss, crash, and partition behaviour.

// rpcEnvelope wraps a request or response on the wire.
type rpcEnvelope struct {
	id      uint64
	method  string
	payload any
	isReply bool
	ok      bool // server found a handler and produced a reply
}

const rpcKind = "simnet.rpc"

// RPCNode augments a Node with request/response plumbing. Create one per
// node that participates in RPC traffic.
type RPCNode struct {
	n            *Node
	nextID       uint64
	pending      map[uint64]*pendingCall
	servers      map[string]RPCHandler
	asyncServers map[string]RPCAsyncHandler
}

type pendingCall struct {
	done     func(resp any, err error)
	timeout  Timer // cancelled when the reply lands, so no dead event lingers
	finished bool
}

func (pc *pendingCall) finish() {
	pc.finished = true
	pc.timeout.Cancel()
}

// RPCHandler serves one method: it receives the caller's node ID and request
// payload and returns the response payload and its simulated size in bytes.
type RPCHandler func(from NodeID, req any) (resp any, respSize int)

// RPCAsyncHandler serves one method whose reply depends on further network
// activity (e.g. a nested RPC to another node). The handler must invoke
// reply exactly once, possibly from a later event; the reply then travels
// back to the caller as usual, inheriting all accrued virtual time.
type RPCAsyncHandler func(from NodeID, req any, reply func(resp any, respSize int))

// NewRPCNode wires RPC handling onto n. Multiple protocol layers on the
// same node share one RPCNode: repeated calls return the existing
// instance, so each layer can register its own methods without clobbering
// the others' transport.
func NewRPCNode(n *Node) *RPCNode {
	if n.rpc != nil {
		return n.rpc
	}
	r := &RPCNode{
		n:            n,
		pending:      map[uint64]*pendingCall{},
		servers:      map[string]RPCHandler{},
		asyncServers: map[string]RPCAsyncHandler{},
	}
	n.rpc = r
	n.Handle(rpcKind, r.onMessage)
	// A crash fails all outstanding calls: the caller's state is lost.
	n.OnDown(func() {
		for id, pc := range r.pending {
			delete(r.pending, id)
			if !pc.finished {
				pc.finish()
				pc.done(nil, fmt.Errorf("simnet: node %d crashed with call in flight", n.ID()))
			}
		}
	})
	return r
}

// Node returns the underlying simulated node.
func (r *RPCNode) Node() *Node { return r.n }

// Serve registers the handler for method.
func (r *RPCNode) Serve(method string, h RPCHandler) { r.servers[method] = h }

// ServeAsync registers an asynchronous handler for method; it takes
// precedence over a synchronous handler of the same name.
func (r *RPCNode) ServeAsync(method string, h RPCAsyncHandler) { r.asyncServers[method] = h }

// Call issues an asynchronous request to the target's method. done is
// invoked exactly once: with the response payload on success, or with a
// non-nil error on timeout, crash, or if the callee does not serve the
// method. The timeout is a cancellable timer: a reply (or caller crash)
// removes it from the event queue instead of leaving it to fire dead.
func (r *RPCNode) Call(to NodeID, method string, req any, reqSize int, timeout time.Duration, done func(resp any, err error)) {
	r.nextID++
	id := r.nextID
	pc := &pendingCall{done: done}
	r.pending[id] = pc
	r.n.Send(to, rpcKind, &rpcEnvelope{id: id, method: method, payload: req}, reqSize+64)
	// The timeout runs on the caller's local clock: a fast-skewed node
	// gives up on its peers early, a slow one hangs on.
	pc.timeout = r.n.AfterTimer(timeout, func() {
		if pc.finished {
			return
		}
		pc.finished = true
		delete(r.pending, id)
		done(nil, fmt.Errorf("simnet: call %s to node %d timed out after %v", method, to, timeout))
	})
}

func (r *RPCNode) onMessage(msg Message) {
	env, ok := msg.Payload.(*rpcEnvelope)
	if !ok {
		return
	}
	if env.isReply {
		pc, ok := r.pending[env.id]
		if !ok || pc.finished {
			return // late reply after timeout; drop
		}
		pc.finish()
		delete(r.pending, env.id)
		if !env.ok {
			pc.done(nil, fmt.Errorf("simnet: node %d does not serve %s", msg.From, env.method))
			return
		}
		pc.done(env.payload, nil)
		return
	}
	// Incoming request.
	if ah, served := r.asyncServers[env.method]; served {
		replied := false
		ah(msg.From, env.payload, func(resp any, respSize int) {
			if replied {
				panic("simnet: async RPC handler replied twice")
			}
			replied = true
			reply := &rpcEnvelope{id: env.id, method: env.method, isReply: true, payload: resp, ok: true}
			r.n.Send(msg.From, rpcKind, reply, respSize+64)
		})
		return
	}
	h, served := r.servers[env.method]
	reply := &rpcEnvelope{id: env.id, method: env.method, isReply: true}
	respSize := 0
	if served {
		var resp any
		resp, respSize = h(msg.From, env.payload)
		reply.payload = resp
		reply.ok = true
	}
	r.n.Send(msg.From, rpcKind, reply, respSize+64)
}
