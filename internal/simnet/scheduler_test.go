package simnet

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// refEvent mirrors one scheduled event for the reference implementation:
// a plain sorted list, the simplest possible correct scheduler.
type refEvent struct {
	at  time.Duration
	seq int
	id  int
}

// TestSchedulerMatchesReferenceOrder is the property test for the indexed
// heap: any batch of events, scheduled in any order at any (possibly equal)
// times, must run in exactly the order a sort by (time, schedule order)
// produces.
func TestSchedulerMatchesReferenceOrder(t *testing.T) {
	prop := func(delays []uint16) bool {
		var en engine
		var got []int
		ref := make([]refEvent, len(delays))
		for i, d := range delays {
			at := time.Duration(d) * time.Millisecond
			i := i
			en.Schedule(at, func() { got = append(got, i) })
			ref[i] = refEvent{at: at, seq: i, id: i}
		}
		for en.step() {
		}
		sort.SliceStable(ref, func(a, b int) bool { return ref[a].at < ref[b].at })
		if len(got) != len(ref) {
			return false
		}
		for i, r := range ref {
			if got[i] != r.id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSchedulerCancelProperty: from a random batch of timers, cancel a
// random subset before running. Cancelled timers must never fire and the
// survivors must all fire exactly once, still in (time, seq) order.
func TestSchedulerCancelProperty(t *testing.T) {
	prop := func(delays []uint16, cancelMask []bool) bool {
		var en engine
		fired := make([]int, len(delays))
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = en.AfterTimer(time.Duration(d)*time.Millisecond, func() { fired[i]++ })
		}
		cancelled := make([]bool, len(delays))
		for i := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				if !timers[i].Cancel() {
					return false // a pending timer must report cancellation
				}
				cancelled[i] = true
				if timers[i].Cancel() {
					return false // double cancel must be a no-op
				}
			}
		}
		for en.step() {
		}
		for i := range fired {
			want := 1
			if cancelled[i] {
				want = 0
			}
			if fired[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSchedulerRescheduleProperty: rescheduled timers fire exactly once, at
// the new time, never the old one.
func TestSchedulerRescheduleProperty(t *testing.T) {
	prop := func(delays []uint16, moves []uint16) bool {
		var en engine
		n := len(delays)
		if n > len(moves) {
			n = len(moves)
		}
		fired := make([]time.Duration, len(delays))
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = en.AfterTimer(time.Duration(d)*time.Millisecond, func() { fired[i] = en.now })
		}
		want := make([]time.Duration, len(delays))
		for i, d := range delays {
			want[i] = time.Duration(d) * time.Millisecond
		}
		for i := 0; i < n; i++ {
			at := time.Duration(moves[i]) * time.Millisecond
			if !timers[i].Reschedule(at) {
				return false
			}
			want[i] = at
		}
		for en.step() {
		}
		for i := range fired {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTimerStaleAfterFire: once a timer fires, its handle is inert even
// though the pooled event struct is recycled for later schedules.
func TestTimerStaleAfterFire(t *testing.T) {
	var en engine
	ran := 0
	tm := en.AfterTimer(time.Millisecond, func() { ran++ })
	for en.step() {
	}
	if ran != 1 {
		t.Fatalf("timer ran %d times", ran)
	}
	if tm.Active() {
		t.Error("fired timer still active")
	}
	if tm.Cancel() {
		t.Error("cancelling a fired timer should report false")
	}
	// Recycle the event struct for an unrelated schedule; the stale handle
	// must not be able to cancel it.
	other := 0
	en.AfterTimer(time.Millisecond, func() { other++ })
	tm.Cancel()
	for en.step() {
	}
	if other != 1 {
		t.Error("stale handle cancelled an unrelated recycled event")
	}
}

// TestTimerZeroValueInert: the zero Timer is safe to cancel, reschedule,
// and query.
func TestTimerZeroValueInert(t *testing.T) {
	var tm Timer
	if tm.Active() {
		t.Error("zero timer active")
	}
	if tm.Cancel() {
		t.Error("zero timer cancelled")
	}
	if tm.Reschedule(time.Second) {
		t.Error("zero timer rescheduled")
	}
	if tm.When() != 0 {
		t.Error("zero timer has a fire time")
	}
}

// TestSchedulerStressRandomOps drives the heap through a long random mix of
// schedule/cancel/reschedule/step operations, cross-checking every firing
// against the reference list implementation.
func TestSchedulerStressRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var en engine
	type live struct {
		tm Timer
		id int
	}
	var pendingRef []refEvent // reference queue, kept sorted lazily
	var handles []live
	var got, want []int
	nextID := 0
	fire := func(id int) func() { return func() { got = append(got, id) } }
	popRef := func() {
		sort.SliceStable(pendingRef, func(a, b int) bool {
			if pendingRef[a].at != pendingRef[b].at {
				return pendingRef[a].at < pendingRef[b].at
			}
			return pendingRef[a].seq < pendingRef[b].seq
		})
		want = append(want, pendingRef[0].id)
		pendingRef = pendingRef[1:]
	}
	refSeq := 0
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // schedule
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			id := nextID
			nextID++
			tm := en.AfterTimer(d, fire(id))
			handles = append(handles, live{tm: tm, id: id})
			pendingRef = append(pendingRef, refEvent{at: en.now + d, seq: refSeq, id: id})
			refSeq++
		case r < 7: // cancel a random handle (may already be fired/cancelled)
			if len(handles) == 0 {
				continue
			}
			h := handles[rng.Intn(len(handles))]
			if h.tm.Cancel() {
				for i, e := range pendingRef {
					if e.id == h.id {
						pendingRef = append(pendingRef[:i], pendingRef[i+1:]...)
						break
					}
				}
			}
		case r < 8: // reschedule a random handle
			if len(handles) == 0 {
				continue
			}
			h := handles[rng.Intn(len(handles))]
			at := en.now + time.Duration(rng.Intn(1000))*time.Millisecond
			if h.tm.Reschedule(at) {
				for i := range pendingRef {
					if pendingRef[i].id == h.id {
						pendingRef[i].at = at
						pendingRef[i].seq = refSeq
						refSeq++
						break
					}
				}
			}
		default: // step
			if en.pending() > 0 {
				popRef()
				en.step()
			}
		}
	}
	for en.pending() > 0 {
		popRef()
		en.step()
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, reference fired %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("firing %d: got event %d, reference says %d", i, got[i], want[i])
		}
	}
}
