package simnet

import (
	"math/rand"
	"time"

	"repro/internal/obs"
)

// Node is one simulated host. All methods must be called from within the
// simulation goroutine (i.e. from handlers or scheduled functions, or
// before Run starts).
type Node struct {
	id      NodeID
	nw      *Network
	profile LinkProfile
	rng     *rand.Rand
	up      bool
	// clockRate skews the node's local timers: rate r means the node's
	// clock runs r× virtual time, so a local timer of d fires after d/r of
	// network time. Zero means 1 (no skew).
	clockRate float64

	uplinkFree   time.Duration
	downlinkFree time.Duration
	// uplinkCtrlFree is the control lane's serialization cursor, consulted
	// only when prioUplink is set (SetPriorityUplink).
	uplinkCtrlFree time.Duration
	prioUplink     bool
	// qDeparts/qHead approximate the uplink queue occupancy when the
	// network's queue metrics are on: departure times of recent sends,
	// drained from the front as virtual time passes them.
	qDeparts []time.Duration
	qHead    int

	handlers       map[string]Handler
	defaultHandler Handler
	// rpc is the node's shared request/response layer, created lazily by
	// NewRPCNode.
	rpc *RPCNode

	// onUp/onDown observers, used by protocol layers to re-join or
	// re-announce after a restart.
	onUp   []func()
	onDown []func()

	trace    Trace
	crashes  int
	downtime time.Duration
	downAt   time.Duration

	// Sharded-mode fields (nil/zero on the default single-heap engine).
	// sh is the shard that executes this node's events; origin (id+1) and
	// oseq form the deterministic event key; srng is the node's substrate
	// randomness stream (loss/jitter/fault draws for messages it sends),
	// which replaces the shared network stream so draw order tracks the
	// node's own deterministic event order.
	sh     *shard
	origin uint64
	oseq   uint64
	srng   *rand.Rand
}

// nextOseq returns the node's next event sequence number — the per-origin
// half of the sharded engine's (at, origin, oseq) ordering key.
func (n *Node) nextOseq() uint64 {
	n.oseq++
	return n.oseq
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Network returns the network this node belongs to.
func (n *Node) Network() *Network { return n.nw }

// Rand returns the node's private deterministic RNG stream, seeded from
// (network seed, node id) via SplitMix64. Protocol code on a node must
// draw from this stream — never from Network.Rand — so the node's
// stochastic behaviour is a function of the seed and its own actions, not
// of how unrelated nodes' events interleave.
func (n *Node) Rand() *rand.Rand { return n.rng }

// Trace returns this node's traffic counters: Sent/BytesSent and send-time
// drops for messages it originated; Delivered/BytesDelivered/Unhandled and
// in-flight drops for messages addressed to it.
func (n *Node) Trace() *Trace { return &n.trace }

// Obs returns the observability registry protocol layers on this node
// should annotate. On the single-heap engine that is the network-wide
// registry; on the sharded engine it is the node's shard-private registry
// (safe to update from parallel windows), and exports merge all shard
// registries order-independently — counters sum, so network-wide totals
// come out identical either way.
func (n *Node) Obs() *obs.Registry {
	if n.sh != nil {
		return n.sh.obs
	}
	return n.nw.obs
}

// Now returns the node's current virtual time: the shard clock in sharded
// mode (shards advance independently inside a window), the global clock
// otherwise. Protocol code on a node should prefer this over Network.Now.
func (n *Node) Now() time.Duration {
	if n.sh != nil {
		return n.sh.now
	}
	return n.nw.now
}

// schedule queues an event for this node at absolute time at: on the
// node's shard under its deterministic key in sharded mode, or on the
// global heap otherwise (where it is byte-identical to the historical
// Network.schedule path).
func (n *Node) schedule(at time.Duration, fn func(), h EventFunc, arg any) *event {
	if n.sh != nil {
		return n.sh.schedule(at, n.origin, n.nextOseq(), fn, h, arg)
	}
	return n.nw.schedule(at, fn, h, arg)
}

// Profile returns the node's link profile.
func (n *Node) Profile() LinkProfile { return n.profile }

// SetProfile replaces the node's link profile (takes effect for messages
// sent or received after the call).
func (n *Node) SetProfile(p LinkProfile) {
	n.profile = p
	n.nw.noteLatency(p.Latency)
}

// Up reports whether the node is currently alive.
func (n *Node) Up() bool { return n.up }

// SetClockSkew sets the node's clock-rate multiplier: rate 1 is a perfect
// clock, 1.1 runs 10% fast (local timers fire early in network time), 0.9
// runs 10% slow. Rates <= 0 reset to 1. Protocol layers that schedule
// periodic work through Node.After / Node.AfterTimer inherit the skew;
// fault plans use this to model drifting device clocks.
func (n *Node) SetClockSkew(rate float64) {
	if rate <= 0 {
		rate = 1
	}
	n.clockRate = rate
}

// ClockSkew returns the node's clock-rate multiplier (1 when unset).
func (n *Node) ClockSkew() float64 {
	if n.clockRate == 0 {
		return 1
	}
	return n.clockRate
}

// skewed converts a duration on the node's local clock into network time.
func (n *Node) skewed(d time.Duration) time.Duration {
	if r := n.clockRate; r != 0 && r != 1 {
		return time.Duration(float64(d) / r)
	}
	return d
}

// After runs fn after d of the node's *local* clock time — network time
// d/rate under clock skew. Protocol timers (republish intervals, gossip
// rounds, audit epochs, RPC timeouts) must be scheduled through the node,
// not the network, so fault plans can skew them.
func (n *Node) After(d time.Duration, fn func()) { n.schedule(n.Now()+n.skewed(d), fn, nil, nil) }

// AfterTimer is After returning a cancellable Timer handle.
func (n *Node) AfterTimer(d time.Duration, fn func()) Timer {
	e := n.schedule(n.Now()+n.skewed(d), fn, nil, nil)
	return Timer{e: e, gen: e.gen}
}

// AfterCall is the closure-free variant of After: h runs with arg after d
// of the node's local clock time. Per-message and per-call paths (RPC
// timeouts, periodic protocol rounds) should prefer this over After so
// steady-state traffic does not allocate a capture per event.
func (n *Node) AfterCall(d time.Duration, h EventFunc, arg any) Timer {
	e := n.schedule(n.Now()+n.skewed(d), nil, h, arg)
	return Timer{e: e, gen: e.gen}
}

// Handle registers a handler for messages of the given kind, replacing any
// existing one.
func (n *Node) Handle(kind string, h Handler) { n.handlers[kind] = h }

// HandleDefault registers a catch-all handler for kinds with no specific
// handler.
func (n *Node) HandleDefault(h Handler) { n.defaultHandler = h }

// Send transmits a message from this node on the bulk lane.
func (n *Node) Send(to NodeID, kind string, payload any, size int) bool {
	return n.nw.Send(Message{From: n.id, To: to, Kind: kind, Payload: payload, Size: size})
}

// SendLane transmits a message on an explicit uplink lane. Lanes only
// change scheduling on nodes that enabled the priority uplink.
func (n *Node) SendLane(to NodeID, kind string, payload any, size int, lane Lane) bool {
	return n.nw.Send(Message{From: n.id, To: to, Kind: kind, Payload: payload, Size: size, Lane: lane})
}

// SetPriorityUplink switches the node's uplink between plain FIFO
// serialization (the historical model, default) and a two-lane strict
// priority discipline: LaneCtrl frames serialize among themselves from the
// control cursor and push any queued bulk backlog back by their own
// serialization time, so control traffic sees only other control traffic
// ahead of it — the approximation of a priority queue expressible with
// per-lane cursors. With the flag off the ctrl cursor is never consulted
// and the send path is byte-identical to history.
func (n *Node) SetPriorityUplink(on bool) { n.prioUplink = on }

// serialize charges ser of uplink serialization to the node at virtual
// time now and returns the message's departure time. Bulk frames wait for
// both cursors (a control frame in flight occupies the physical link);
// control frames wait only for earlier control frames.
func (n *Node) serialize(lane Lane, now, ser time.Duration) time.Duration {
	if n.prioUplink && lane == LaneCtrl {
		start := now
		if n.uplinkCtrlFree > start {
			start = n.uplinkCtrlFree
		}
		depart := start + ser
		n.uplinkCtrlFree = depart
		// Control preempts: queued bulk bytes lose the link for ser.
		if n.uplinkFree > now {
			n.uplinkFree += ser
		} else if n.uplinkFree < depart {
			n.uplinkFree = depart
		}
		return depart
	}
	start := now
	if n.uplinkFree > start {
		start = n.uplinkFree
	}
	if n.prioUplink && n.uplinkCtrlFree > start {
		start = n.uplinkCtrlFree
	}
	depart := start + ser
	n.uplinkFree = depart
	return depart
}

// UplinkBacklog reports how far the node's bulk uplink cursor is already
// committed past the node's current virtual time: the serialization wait
// a bulk frame sent right now would see before its first byte leaves.
// Zero on an idle (or unbounded-bandwidth) link. Server-side overload
// control reads this as its ground-truth congestion signal — a reply
// "in service" until the backlog it joined has drained is a reply whose
// service time includes the queueing the link is actually doing.
func (n *Node) UplinkBacklog() time.Duration {
	if b := n.uplinkFree - n.Now(); b > 0 {
		return b
	}
	return 0
}

// noteQueue records one uplink queue observation (depth including this
// message, and this message's sojourn until departure). Only called when
// Network.EnableQueueMetrics is set, so default runs never touch it.
func (n *Node) noteQueue(now, depart time.Duration) {
	for n.qHead < len(n.qDeparts) && n.qDeparts[n.qHead] <= now {
		n.qHead++
	}
	if n.qHead == len(n.qDeparts) {
		n.qDeparts, n.qHead = n.qDeparts[:0], 0
	} else if n.qHead > 1024 {
		n.qDeparts = append(n.qDeparts[:0], n.qDeparts[n.qHead:]...)
		n.qHead = 0
	}
	n.qDeparts = append(n.qDeparts, depart)
	depth := float64(len(n.qDeparts) - n.qHead)
	m := queueMetricsFor(n.Obs())
	m.depthGauge.Set(depth)
	m.depth.Observe(depth)
	m.sojourn.Observe((depart - now).Seconds())
}

// netQueueMetrics is the per-registry bundle behind EnableQueueMetrics,
// resolved once per registry via Memo (shard registries each get their
// own; histogram merges and gauge averaging keep exports layout-stable).
type netQueueMetrics struct {
	depthGauge     *obs.Gauge
	depth, sojourn *obs.Histogram
}

func queueMetricsFor(r *obs.Registry) *netQueueMetrics {
	return r.Memo("netqueue", func() any {
		return &netQueueMetrics{
			depthGauge: r.Gauge("net.queue.depth"),
			depth:      r.Histogram("net.queue.depth"),
			sojourn:    r.Histogram("net.queue.sojourn_s"),
		}
	}).(*netQueueMetrics)
}

// Crash takes the node down: in-flight messages to it will be dropped at
// delivery time and new sends to or from it fail until Restart.
func (n *Node) Crash() {
	if !n.up {
		return
	}
	n.up = false
	n.crashes++
	n.downAt = n.Now()
	for _, f := range n.onDown {
		f()
	}
}

// Restart brings a crashed node back up and fires the registered OnUp
// observers (protocol layers use these to rejoin rings, re-announce
// content, etc.).
func (n *Node) Restart() {
	if n.up {
		return
	}
	n.up = true
	n.downtime += n.Now() - n.downAt
	for _, f := range n.onUp {
		f()
	}
}

// OnUp registers an observer called every time the node restarts.
func (n *Node) OnUp(f func()) { n.onUp = append(n.onUp, f) }

// OnDown registers an observer called every time the node crashes.
func (n *Node) OnDown(f func()) { n.onDown = append(n.onDown, f) }

// Crashes returns how many times the node has crashed.
func (n *Node) Crashes() int { return n.crashes }

// Downtime returns the cumulative time the node has spent down (not
// counting an in-progress outage).
func (n *Node) Downtime() time.Duration { return n.downtime }

// Availability returns the fraction of elapsed virtual time the node has
// been up, in [0, 1]. Returns 1 when no time has elapsed.
func (n *Node) Availability() float64 {
	elapsed := n.Now()
	if elapsed == 0 {
		return 1
	}
	down := n.downtime
	if !n.up {
		down += elapsed - n.downAt
	}
	return 1 - float64(down)/float64(elapsed)
}

// Churn drives a node through an alternating up/down renewal process with
// exponentially distributed time-to-failure and time-to-repair. It models
// the paper's §5.2 point that user-device infrastructure has "intermittency
// [and] higher failure rates" than datacenters. Draws come from the node's
// own RNG stream, so one node's outage schedule is independent of every
// other node's.
type Churn struct {
	// MTTF is the mean time between a restart and the next crash.
	MTTF time.Duration
	// MTTR is the mean outage length.
	MTTR time.Duration
}

// Apply starts the churn process on node n. The first failure is scheduled
// an exponential draw from now. Passing a zero MTTF disables churn.
func (c Churn) Apply(n *Node) {
	if c.MTTF <= 0 {
		return
	}
	var scheduleFail func()
	var scheduleRepair func()
	scheduleFail = func() {
		d := expDraw(n, c.MTTF)
		// Scheduled through the node, not the network, so the renewal
		// process runs on the node's shard in sharded mode (the draws
		// already come from the node's own stream either way).
		n.schedule(n.Now()+d, func() {
			if !n.up {
				return // already down (e.g. manual crash); wait for restart path
			}
			n.Crash()
			scheduleRepair()
		}, nil, nil)
	}
	scheduleRepair = func() {
		d := expDraw(n, c.MTTR)
		n.schedule(n.Now()+d, func() {
			if n.up {
				return
			}
			n.Restart()
			scheduleFail()
		}, nil, nil)
	}
	scheduleFail()
}

func expDraw(n *Node, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	d := time.Duration(n.rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}
