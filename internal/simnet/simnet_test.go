package simnet

import (
	"testing"
	"time"
)

func TestDeliveryAndOrdering(t *testing.T) {
	nw := New(1)
	a := nw.AddNode()
	b := nw.AddNode()
	var got []string
	b.Handle("msg", func(m Message) { got = append(got, m.Payload.(string)) })
	a.Send(b.ID(), "msg", "first", 100)
	a.Send(b.ID(), "msg", "second", 100)
	nw.RunAll()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("got %v, want [first second]", got)
	}
	tr := nw.Trace()
	if tr.Sent != 2 || tr.Delivered != 2 || tr.Dropped != 0 {
		t.Errorf("trace = %+v", tr)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (time.Duration, int64) {
		nw := New(42)
		nw.SetDefaultProfile(HomeBroadbandProfile())
		nodes := make([]*Node, 10)
		for i := range nodes {
			nodes[i] = nw.AddNode()
			nodes[i].HandleDefault(func(m Message) {})
		}
		for i := 0; i < 200; i++ {
			from := nodes[i%10]
			to := nodes[(i*7+3)%10]
			if from.ID() != to.ID() {
				from.Send(to.ID(), "x", i, 1000+i)
			}
		}
		end := nw.Run(time.Hour)
		return end, nw.Trace().Delivered
	}
	e1, d1 := run()
	e2, d2 := run()
	if e1 != e2 || d1 != d2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", e1, d1, e2, d2)
	}
}

func TestLatencyModel(t *testing.T) {
	nw := New(1)
	p := LinkProfile{Latency: 10 * time.Millisecond} // no jitter, infinite bw
	a := nw.AddNodeWithProfile(p)
	b := nw.AddNodeWithProfile(p)
	var at time.Duration
	b.Handle("x", func(m Message) { at = nw.Now() })
	a.Send(b.ID(), "x", nil, 100)
	nw.RunAll()
	if at != 20*time.Millisecond { // sum of both endpoint latencies
		t.Errorf("delivered at %v, want 20ms", at)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	nw := New(1)
	// 1 Mbps uplink, no latency: a 1,000,000-byte message takes 8 s to serialize.
	src := nw.AddNodeWithProfile(LinkProfile{UplinkBps: 1e6})
	dst := nw.AddNodeWithProfile(LinkProfile{})
	var at time.Duration
	dst.Handle("x", func(m Message) { at = nw.Now() })
	src.Send(dst.ID(), "x", nil, 1_000_000)
	nw.RunAll()
	if at != 8*time.Second {
		t.Errorf("delivered at %v, want 8s", at)
	}
}

func TestUplinkQueueing(t *testing.T) {
	nw := New(1)
	src := nw.AddNodeWithProfile(LinkProfile{UplinkBps: 8e6}) // 1 MB/s
	dst := nw.AddNodeWithProfile(LinkProfile{})
	var times []time.Duration
	dst.Handle("x", func(m Message) { times = append(times, nw.Now()) })
	// Two back-to-back 1 MB messages: second must queue behind the first.
	src.Send(dst.ID(), "x", nil, 1_000_000)
	src.Send(dst.ID(), "x", nil, 1_000_000)
	nw.RunAll()
	if len(times) != 2 {
		t.Fatalf("delivered %d, want 2", len(times))
	}
	if times[0] != time.Second || times[1] != 2*time.Second {
		t.Errorf("deliveries at %v, want [1s 2s]", times)
	}
}

func TestCrashDropsInFlight(t *testing.T) {
	nw := New(1)
	p := LinkProfile{Latency: 10 * time.Millisecond}
	a := nw.AddNodeWithProfile(p)
	b := nw.AddNodeWithProfile(p)
	delivered := false
	b.Handle("x", func(m Message) { delivered = true })
	a.Send(b.ID(), "x", nil, 10)
	nw.After(5*time.Millisecond, func() { b.Crash() })
	nw.RunAll()
	if delivered {
		t.Error("message delivered to node that crashed while it was in flight")
	}
	if nw.Trace().Dropped != 1 {
		t.Errorf("dropped = %d, want 1", nw.Trace().Dropped)
	}
}

func TestSendFromDownNodeFails(t *testing.T) {
	nw := New(1)
	a := nw.AddNode()
	b := nw.AddNode()
	a.Crash()
	if a.Send(b.ID(), "x", nil, 10) {
		t.Error("send from crashed node should fail")
	}
}

func TestRestartObserversAndAvailability(t *testing.T) {
	nw := New(1)
	n := nw.AddNode()
	ups, downs := 0, 0
	n.OnUp(func() { ups++ })
	n.OnDown(func() { downs++ })
	nw.After(time.Second, func() { n.Crash() })
	nw.After(3*time.Second, func() { n.Restart() })
	nw.Schedule(4*time.Second, func() {})
	nw.RunAll()
	if ups != 1 || downs != 1 {
		t.Errorf("ups/downs = %d/%d, want 1/1", ups, downs)
	}
	if n.Crashes() != 1 {
		t.Errorf("crashes = %d", n.Crashes())
	}
	if n.Downtime() != 2*time.Second {
		t.Errorf("downtime = %v, want 2s", n.Downtime())
	}
	if av := n.Availability(); av != 0.5 {
		t.Errorf("availability = %v, want 0.5", av)
	}
}

func TestDoubleCrashAndRestartIdempotent(t *testing.T) {
	nw := New(1)
	n := nw.AddNode()
	n.Crash()
	n.Crash()
	if n.Crashes() != 1 {
		t.Errorf("double crash counted twice")
	}
	n.Restart()
	n.Restart()
	if !n.Up() {
		t.Error("node should be up")
	}
}

func TestPartitionBlocksTrafficAndHeals(t *testing.T) {
	nw := New(1)
	a, b, c := nw.AddNode(), nw.AddNode(), nw.AddNode()
	var got []NodeID
	h := func(m Message) { got = append(got, m.To) }
	a.HandleDefault(h)
	b.HandleDefault(h)
	c.HandleDefault(h)
	nw.Partition([]NodeID{a.ID(), b.ID()}, []NodeID{c.ID()})
	a.Send(b.ID(), "x", nil, 1) // same side: ok
	a.Send(c.ID(), "x", nil, 1) // cross-partition: dropped
	nw.RunAll()
	if len(got) != 1 || got[0] != b.ID() {
		t.Fatalf("partition leak: deliveries %v", got)
	}
	nw.Heal()
	a.Send(c.ID(), "x", nil, 1)
	nw.RunAll()
	if len(got) != 2 {
		t.Error("message not delivered after heal")
	}
}

func TestLossRate(t *testing.T) {
	nw := New(7)
	src := nw.AddNodeWithProfile(LinkProfile{Loss: 0.25})
	dst := nw.AddNodeWithProfile(LinkProfile{})
	dst.HandleDefault(func(m Message) {})
	const n = 10000
	for i := 0; i < n; i++ {
		src.Send(dst.ID(), "x", nil, 1)
	}
	nw.RunAll()
	rate := nw.Trace().DeliveryRate()
	if rate < 0.72 || rate > 0.78 {
		t.Errorf("delivery rate = %v, want ~0.75", rate)
	}
}

func TestChurnProcess(t *testing.T) {
	nw := New(3)
	n := nw.AddNode()
	Churn{MTTF: 10 * time.Second, MTTR: 10 * time.Second}.Apply(n)
	nw.Run(1000 * time.Second)
	if n.Crashes() == 0 {
		t.Fatal("churn never crashed the node")
	}
	// With MTTF == MTTR the long-run availability should hover near 0.5.
	if av := n.Availability(); av < 0.3 || av > 0.7 {
		t.Errorf("availability = %v, want ≈0.5", av)
	}
}

func TestChurnDisabled(t *testing.T) {
	nw := New(3)
	n := nw.AddNode()
	Churn{}.Apply(n)
	nw.Run(100 * time.Second)
	if n.Crashes() != 0 {
		t.Error("zero-MTTF churn should be inert")
	}
}

func TestScheduleInPastRunsNow(t *testing.T) {
	nw := New(1)
	order := []int{}
	nw.After(time.Second, func() {
		nw.Schedule(0, func() { order = append(order, 2) }) // in the past
		order = append(order, 1)
	})
	nw.RunAll()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v", order)
	}
	if nw.Now() != time.Second {
		t.Errorf("now = %v", nw.Now())
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	nw := New(1)
	fired := false
	nw.After(10*time.Second, func() { fired = true })
	end := nw.Run(time.Second)
	if fired {
		t.Error("event past deadline ran")
	}
	if end != time.Second {
		t.Errorf("end = %v, want 1s", end)
	}
	nw.Run(time.Minute)
	if !fired {
		t.Error("event did not run after extending deadline")
	}
}

func TestUnhandledCounted(t *testing.T) {
	nw := New(1)
	a, b := nw.AddNode(), nw.AddNode()
	a.Send(b.ID(), "nobody-listens", nil, 1)
	nw.RunAll()
	if nw.Trace().Unhandled != 1 {
		t.Errorf("unhandled = %d, want 1", nw.Trace().Unhandled)
	}
}

func TestRPCCallResponse(t *testing.T) {
	nw := New(1)
	client := NewRPCNode(nw.AddNode())
	server := NewRPCNode(nw.AddNode())
	server.Serve("echo", func(from NodeID, req any) (any, int) {
		return "echo:" + req.(string), 32
	})
	var resp any
	var callErr error
	client.Call(server.Node().ID(), "echo", "hi", 16, time.Minute, func(r any, err error) {
		resp, callErr = r, err
	})
	nw.RunAll()
	if callErr != nil {
		t.Fatal(callErr)
	}
	if resp != "echo:hi" {
		t.Errorf("resp = %v", resp)
	}
}

func TestRPCTimeout(t *testing.T) {
	nw := New(1)
	client := NewRPCNode(nw.AddNode())
	server := NewRPCNode(nw.AddNode())
	server.Node().Crash()
	var callErr error
	client.Call(server.Node().ID(), "echo", "hi", 16, time.Second, func(r any, err error) { callErr = err })
	nw.RunAll()
	if callErr == nil {
		t.Error("want timeout error calling crashed node")
	}
}

func TestRPCUnknownMethod(t *testing.T) {
	nw := New(1)
	client := NewRPCNode(nw.AddNode())
	server := NewRPCNode(nw.AddNode())
	_ = server
	var callErr error
	client.Call(server.Node().ID(), "nope", nil, 1, time.Minute, func(r any, err error) { callErr = err })
	nw.RunAll()
	if callErr == nil {
		t.Error("want error for unserved method")
	}
}

func TestRPCCallerCrashFailsPending(t *testing.T) {
	nw := New(1)
	client := NewRPCNode(nw.AddNode())
	server := NewRPCNode(nw.AddNode())
	server.Serve("slow", func(from NodeID, req any) (any, int) { return nil, 1 })
	var callErr error
	calls := 0
	client.Call(server.Node().ID(), "slow", nil, 1, time.Hour, func(r any, err error) {
		calls++
		callErr = err
	})
	client.Node().Crash()
	nw.RunAll()
	if calls != 1 {
		t.Fatalf("done invoked %d times, want exactly 1", calls)
	}
	if callErr == nil {
		t.Error("want error after caller crash")
	}
}

func TestNodeLookup(t *testing.T) {
	nw := New(1)
	n := nw.AddNode()
	if nw.Node(n.ID()) != n {
		t.Error("lookup failed")
	}
	if nw.Node(99) != nil || nw.Node(-1) != nil {
		t.Error("out-of-range lookup should return nil")
	}
	if nw.NumNodes() != 1 || len(nw.Nodes()) != 1 {
		t.Error("node count wrong")
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	nw := New(1)
	src := nw.AddNode()
	dst := nw.AddNode()
	dst.HandleDefault(func(m Message) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Send(dst.ID(), "x", nil, 100)
		if i%1024 == 0 {
			nw.RunAll()
		}
	}
	nw.RunAll()
}

func TestRPCAsyncHandler(t *testing.T) {
	nw := New(20)
	client := NewRPCNode(nw.AddNode())
	front := NewRPCNode(nw.AddNode())
	backend := NewRPCNode(nw.AddNode())
	backend.Serve("backend.work", func(from NodeID, req any) (any, int) {
		return req.(int) * 2, 8
	})
	// The front node proxies to the backend before replying — a nested RPC
	// inside an async handler.
	front.ServeAsync("front.work", func(from NodeID, req any, reply func(any, int)) {
		front.Call(backend.Node().ID(), "backend.work", req, 8, time.Minute, func(resp any, err error) {
			if err != nil {
				reply(-1, 8)
				return
			}
			reply(resp.(int)+1, 8)
		})
	})
	var got any
	client.Call(front.Node().ID(), "front.work", 20, 8, time.Minute, func(resp any, err error) {
		if err != nil {
			t.Errorf("call failed: %v", err)
		}
		got = resp
	})
	nw.RunAll()
	if got != 41 {
		t.Errorf("got %v, want 41", got)
	}
}

func TestRPCAsyncDoubleReplyPanics(t *testing.T) {
	nw := New(21)
	client := NewRPCNode(nw.AddNode())
	server := NewRPCNode(nw.AddNode())
	server.ServeAsync("bad", func(from NodeID, req any, reply func(any, int)) {
		reply(1, 8)
		defer func() {
			if recover() == nil {
				t.Error("second reply should panic")
			}
		}()
		reply(2, 8)
	})
	client.Call(server.Node().ID(), "bad", nil, 8, time.Minute, func(any, error) {})
	nw.RunAll()
}

func TestSharedRPCNodePerNode(t *testing.T) {
	nw := New(22)
	n := nw.AddNode()
	a := NewRPCNode(n)
	b := NewRPCNode(n)
	if a != b {
		t.Fatal("NewRPCNode should return the shared instance per node")
	}
}
