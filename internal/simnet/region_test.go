package simnet

import (
	"testing"
	"time"
)

// deliverAt sends one zero-size message a→b and returns the virtual
// delivery instant relative to the send.
func deliverAt(t *testing.T, nw *Network, a, b *Node) time.Duration {
	t.Helper()
	start := nw.Now()
	var at time.Duration
	b.Handle("probe", func(Message) { at = nw.Now() - start })
	if !a.Send(b.ID(), "probe", nil, 0) {
		t.Fatal("send refused")
	}
	nw.RunAll()
	return at
}

// TestRegionMatrixDefaultOff: a network that never installs a geography
// produces exactly the same event stream as one that installs and then
// removes it — the byte-identity guarantee the pre-X18 goldens rely on.
func TestRegionMatrixDefaultOff(t *testing.T) {
	p := LinkProfile{Latency: 5 * time.Millisecond}
	nw := New(1)
	a, b := nw.AddNodeWithProfile(p), nw.AddNodeWithProfile(p)
	if got := deliverAt(t, nw, a, b); got != 10*time.Millisecond {
		t.Fatalf("baseline delay %v, want 10ms", got)
	}
	nw.SetRegionMatrix(
		map[NodeID]int{a.ID(): 0, b.ID(): 1},
		[][]time.Duration{{0, 40 * time.Millisecond}, {40 * time.Millisecond, 0}},
	)
	if got := deliverAt(t, nw, a, b); got != 50*time.Millisecond {
		t.Fatalf("matrix delay %v, want 50ms", got)
	}
	nw.SetRegionMatrix(nil, nil) // empty assignment removes the hook
	if got := deliverAt(t, nw, a, b); got != 10*time.Millisecond {
		t.Fatalf("delay after removal %v, want baseline 10ms", got)
	}
}

// TestRegionMatrixAsymmetricAndDefaultRegion: extra[a][b] need not equal
// extra[b][a], and unassigned nodes fall into region 0.
func TestRegionMatrixAsymmetricAndDefaultRegion(t *testing.T) {
	p := LinkProfile{Latency: 5 * time.Millisecond}
	nw := New(1)
	a, b, c := nw.AddNodeWithProfile(p), nw.AddNodeWithProfile(p), nw.AddNodeWithProfile(p)
	nw.SetRegionMatrix(
		map[NodeID]int{a.ID(): 0, b.ID(): 1}, // c unassigned → region 0
		[][]time.Duration{{0, 30 * time.Millisecond}, {70 * time.Millisecond, 0}},
	)
	if got := deliverAt(t, nw, a, b); got != 40*time.Millisecond {
		t.Errorf("0→1 delay %v, want 40ms", got)
	}
	if got := deliverAt(t, nw, b, a); got != 80*time.Millisecond {
		t.Errorf("1→0 delay %v, want 80ms", got)
	}
	if got := deliverAt(t, nw, c, a); got != 10*time.Millisecond {
		t.Errorf("unassigned→0 delay %v, want free same-region 10ms", got)
	}
	if got := deliverAt(t, nw, c, b); got != 40*time.Millisecond {
		t.Errorf("unassigned→1 delay %v, want 40ms", got)
	}
}

// TestRegionMatrixValidation: non-square matrices and out-of-range region
// assignments are configuration bugs and panic.
func TestRegionMatrixValidation(t *testing.T) {
	nw := New(1)
	a := nw.AddNode()
	for name, f := range map[string]func(){
		"ragged matrix": func() {
			nw.SetRegionMatrix(map[NodeID]int{a.ID(): 0},
				[][]time.Duration{{0, 0}, {0}})
		},
		"region out of range": func() {
			nw.SetRegionMatrix(map[NodeID]int{a.ID(): 1},
				[][]time.Duration{{0}})
		},
		"negative region": func() {
			nw.SetRegionMatrix(map[NodeID]int{a.ID(): -1},
				[][]time.Duration{{0}})
		},
	} {
		f := f
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
