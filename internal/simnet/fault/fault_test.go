package fault

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/simnet"
)

func ids(n int) []simnet.NodeID {
	out := make([]simnet.NodeID, n)
	for i := range out {
		out[i] = simnet.NodeID(i)
	}
	return out
}

// TestScenariosDeterministicPlans: the same (seed, nodes, horizon) must
// yield an identical plan for every scenario in the battery, and a
// different seed must change at least one randomized scenario's plan.
func TestScenariosDeterministicPlans(t *testing.T) {
	nodes := ids(10)
	for _, sc := range Scenarios() {
		a := sc.Build(42, nodes, time.Hour).String()
		b := sc.Build(42, nodes, time.Hour).String()
		if a != b {
			t.Errorf("%s: same seed built different plans:\n%s\nvs\n%s", sc.Name, a, b)
		}
	}
	changed := false
	for _, sc := range Scenarios() {
		if sc.Name == "clean" || sc.Name == "corrupt-10pct" {
			continue // no randomized choices
		}
		if sc.Build(1, nodes, time.Hour).String() != sc.Build(2, nodes, time.Hour).String() {
			changed = true
		}
	}
	if !changed {
		t.Error("no randomized scenario changed its plan across seeds")
	}
}

// TestScenarioFaultsClearByRecoveryPoint: every step of every scenario must
// be scheduled at or before RecoveryPoint(horizon), so the final fifth of
// the run is fault-free.
func TestScenarioFaultsClearByRecoveryPoint(t *testing.T) {
	const horizon = time.Hour
	for _, sc := range Scenarios() {
		for seed := int64(0); seed < 5; seed++ {
			p := sc.Build(seed, ids(9), horizon)
			if end := p.End(); end > RecoveryPoint(horizon) {
				t.Errorf("%s seed %d: last step at %v is after recovery point %v",
					sc.Name, seed, end, RecoveryPoint(horizon))
			}
		}
	}
}

// TestScenariosOnlyTouchEligibleNodes: node-targeted faults must stay
// inside the eligible set, so callers can protect anchors.
func TestScenariosOnlyTouchEligibleNodes(t *testing.T) {
	nw := simnet.New(7)
	for i := 0; i < 12; i++ {
		nw.AddNode()
	}
	anchor := nw.Node(0)
	eligible := ids(12)[1:] // node 0 excluded
	for _, sc := range Scenarios() {
		plan := sc.Build(99, eligible, 10*time.Minute)
		plan.Apply(nw)
	}
	nw.Run(10 * time.Minute)
	if anchor.Crashes() != 0 {
		t.Errorf("anchor node crashed %d times despite being ineligible", anchor.Crashes())
	}
	if anchor.ClockSkew() != 1 {
		t.Errorf("anchor clock skewed to %v", anchor.ClockSkew())
	}
}

// TestPlanCrashRestart: crash/restart steps fire at their scheduled times.
func TestPlanCrashRestart(t *testing.T) {
	nw := simnet.New(1)
	n := nw.AddNode()
	NewPlan().
		CrashAt(time.Minute, n.ID()).
		RestartAt(2*time.Minute, n.ID()).
		Apply(nw)
	nw.Run(30 * time.Second)
	if !n.Up() {
		t.Fatal("node down before plan's crash time")
	}
	nw.Run(90 * time.Second)
	if n.Up() {
		t.Fatal("node up during planned outage")
	}
	nw.Run(3 * time.Minute)
	if !n.Up() {
		t.Fatal("node not restarted by plan")
	}
	if n.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", n.Crashes())
	}
}

// TestPlanPartitionHeal: a planned partition blocks cross-group traffic and
// the planned heal restores it.
func TestPlanPartitionHeal(t *testing.T) {
	nw := simnet.New(2)
	a, b := nw.AddNode(), nw.AddNode()
	got := 0
	b.Handle("ping", func(simnet.Message) { got++ })
	NewPlan().
		PartitionAt(time.Minute, nil, []simnet.NodeID{b.ID()}).
		HealAt(2 * time.Minute).
		Apply(nw)

	// One send per phase: before partition, during, after heal.
	nw.Schedule(30*time.Second, func() { a.Send(b.ID(), "ping", nil, 16) })
	nw.Schedule(90*time.Second, func() { a.Send(b.ID(), "ping", nil, 16) })
	nw.Schedule(150*time.Second, func() { a.Send(b.ID(), "ping", nil, 16) })
	nw.Run(4 * time.Minute)
	if got != 2 {
		t.Fatalf("delivered %d pings, want 2 (partitioned send dropped)", got)
	}
}

// TestDegradeRestoreRoundTrips: RestoreLinksAt reinstates the exact
// pre-degradation profile, and a second Apply starts from fresh scratch
// state.
func TestDegradeRestoreRoundTrips(t *testing.T) {
	plan := NewPlan().
		DegradeLinksAt(time.Minute, 0.3, 10*time.Millisecond, 5*time.Millisecond, 0).
		RestoreLinksAt(2*time.Minute, 0)
	for trial := 0; trial < 2; trial++ {
		nw := simnet.New(3)
		n := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
		want := n.Profile()
		plan.Apply(nw)
		nw.Run(90 * time.Second)
		mid := n.Profile()
		if mid.Loss != 0.3 || mid.Latency != want.Latency+10*time.Millisecond {
			t.Fatalf("trial %d: degraded profile = %+v", trial, mid)
		}
		nw.Run(3 * time.Minute)
		if got := n.Profile(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: profile after restore = %+v, want %+v", trial, got, want)
		}
	}
}

// TestPlanStringListsStepsInOrder: steps render sorted by time regardless
// of insertion order.
func TestPlanStringListsStepsInOrder(t *testing.T) {
	p := NewPlan().
		HealAt(2*time.Minute).
		CrashAt(time.Minute, 0)
	steps := p.Steps()
	if len(steps) != 2 || steps[0].At != time.Minute || steps[1].At != 2*time.Minute {
		t.Fatalf("steps out of order: %+v", steps)
	}
}

// TestScenarioRunDeterminism: applying the same scenario to two identical
// networks with identical workloads must produce identical traces — the
// seed-reproducibility contract the conformance suite depends on.
func TestScenarioRunDeterminism(t *testing.T) {
	for _, sc := range Scenarios() {
		run := func() simnet.Trace {
			nw := simnet.New(1234)
			n := 8
			nodes := make([]*simnet.Node, n)
			for i := range nodes {
				nodes[i] = nw.AddNode()
				nodes[i].HandleDefault(func(simnet.Message) {})
			}
			sc.Build(1234, ids(n), 20*time.Minute).Apply(nw)
			// Workload: every node pings its ring successor every second.
			for i, src := range nodes {
				src, dst := src, nodes[(i+1)%n]
				var tick func()
				tick = func() {
					if src.Up() {
						src.Send(dst.ID(), "tick", nil, 128)
					}
					src.After(time.Second, tick)
				}
				src.After(time.Second, tick)
			}
			nw.Run(20 * time.Minute)
			return *nw.Trace()
		}
		a, b := run(), run()
		if a != b {
			t.Errorf("%s: traces differ across identical runs:\n%+v\nvs\n%+v", sc.Name, a, b)
		}
		if a.Sent == 0 || a.Delivered == 0 {
			t.Errorf("%s: workload did not run (trace %+v)", sc.Name, a)
		}
	}
}

// TestCorruptScenarioManglesTraffic: under corrupt-10pct the trace must
// show corrupted, duplicated, and reordered messages — and none under
// clean.
func TestCorruptScenarioManglesTraffic(t *testing.T) {
	run := func(sc Scenario) simnet.Trace {
		nw := simnet.New(5)
		a, b := nw.AddNode(), nw.AddNode()
		b.HandleDefault(func(simnet.Message) {})
		sc.Build(5, []simnet.NodeID{a.ID(), b.ID()}, 10*time.Minute).Apply(nw)
		for i := 0; i < 600; i++ {
			i := i
			nw.Schedule(time.Duration(i)*time.Second, func() { a.Send(b.ID(), "x", nil, 64) })
		}
		nw.Run(10 * time.Minute)
		return *nw.Trace()
	}
	corrupt := run(CorruptTenPct())
	if corrupt.Corrupted == 0 || corrupt.Duplicated == 0 || corrupt.Reordered == 0 {
		t.Errorf("corrupt-10pct injected nothing: %+v", corrupt)
	}
	clean := run(Clean())
	if clean.Corrupted != 0 || clean.Duplicated != 0 || clean.Reordered != 0 {
		t.Errorf("clean scenario mangled traffic: %+v", clean)
	}
}

// TestSustainedChurnContract: the non-healing stressor must be
// deterministic per seed, stay inside the eligible set, keep crashing
// past the battery's RecoveryPoint (violating that contract is its whole
// purpose), and produce an empty plan for an empty population.
func TestSustainedChurnContract(t *testing.T) {
	sc := SustainedChurn()
	const horizon = time.Hour
	nodes := ids(12)[1:]
	if a, b := sc.Build(42, nodes, horizon).String(), sc.Build(42, nodes, horizon).String(); a != b {
		t.Errorf("same seed built different plans:\n%s\nvs\n%s", a, b)
	}
	if sc.Build(1, nodes, horizon).String() == sc.Build(2, nodes, horizon).String() {
		t.Error("different seeds built identical churn plans")
	}
	p := sc.Build(7, nodes, horizon)
	if end := p.End(); end <= RecoveryPoint(horizon) {
		t.Errorf("sustained churn ends at %v, before the recovery point %v — it must not heal", end, RecoveryPoint(horizon))
	}
	if got := len(sc.Build(7, nil, horizon).steps); got != 0 {
		t.Errorf("empty population produced %d steps", got)
	}

	// Applied to a real network, waves must only ever crash eligible nodes
	// and every crashed node must be restarted by the plan's own steps.
	nw := simnet.New(9)
	for i := 0; i < 12; i++ {
		nw.AddNode()
	}
	sc.Build(99, nodes, 10*time.Minute).Apply(nw)
	nw.Run(10 * time.Minute)
	if nw.Node(0).Crashes() != 0 {
		t.Error("anchor node crashed despite being ineligible")
	}
	churned := 0
	for _, id := range nodes {
		if nw.Node(id).Crashes() > 0 {
			churned++
		}
	}
	if churned == 0 {
		t.Error("no eligible node was churned")
	}
	for _, id := range nodes {
		if !nw.Node(id).Up() {
			t.Errorf("node %d still down at the end: every crash carries a restart", id)
		}
	}
}

// TestPlanStartEnd: Start/End bracket the plan's active window and both
// report zero for an empty plan.
func TestPlanStartEnd(t *testing.T) {
	empty := NewPlan()
	if empty.Start() != 0 || empty.End() != 0 {
		t.Errorf("empty plan window = [%v, %v], want [0, 0]", empty.Start(), empty.End())
	}
	p := NewPlan().
		CrashAt(3*time.Minute, 1).
		RestartAt(5*time.Minute, 1).
		PartitionAt(time.Minute, []simnet.NodeID{1}, []simnet.NodeID{2}).
		HealAt(7 * time.Minute)
	if p.Start() != time.Minute {
		t.Errorf("Start = %v, want 1m", p.Start())
	}
	if p.End() != 7*time.Minute {
		t.Errorf("End = %v, want 7m", p.End())
	}
}
