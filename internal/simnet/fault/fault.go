// Package fault provides deterministic, seed-reproducible fault-injection
// plans for simnet networks. A Plan is a timed script of adversities —
// partitions and heals, node crashes and restarts, link degradation,
// in-flight message mangling (corruption, duplication, reordering), and
// clock skew — scheduled on the simulation's own event engine, so a plan
// perturbs a run exactly the same way every time for a given seed.
//
// The package exists because the paper's hard problems (§5.3) are exactly
// the failure modes the happy path never exercises: nodes on flaky home
// links, partitions, churned and misbehaving peers. The Scenario battery
// (scenarios.go) packages the canonical adversities every subsystem must
// survive; each subsystem's conformance_test.go drives its protocols
// through the battery and asserts recovery invariants, and experiment X14
// aggregates the same runs into a recovery matrix.
//
// Plans inject faults only before RecoveryPoint(horizon); the tail of the
// run is a guaranteed fault-free window in which recovery is measured.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/simnet"
)

// Step is one scheduled fault action.
type Step struct {
	At   time.Duration
	Desc string
	do   func(nw *simnet.Network, st *applyState)
}

// applyState is per-Apply scratch shared by paired steps (degrade/restore),
// so one Plan can be applied to any number of networks independently.
type applyState struct {
	savedProfiles map[simnet.NodeID]simnet.LinkProfile
}

// Plan is a deterministic schedule of fault steps. Build one with the
// typed At-helpers (or the raw At), then Apply it to a network before Run.
// The zero Plan is valid and injects nothing.
type Plan struct {
	steps []Step
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// At appends a raw step running do at virtual time at. Prefer the typed
// helpers; At is the escape hatch for scenario-specific actions.
func (p *Plan) At(at time.Duration, desc string, do func(nw *simnet.Network)) *Plan {
	return p.add(at, desc, func(nw *simnet.Network, _ *applyState) { do(nw) })
}

func (p *Plan) add(at time.Duration, desc string, do func(nw *simnet.Network, st *applyState)) *Plan {
	p.steps = append(p.steps, Step{At: at, Desc: desc, do: do})
	return p
}

// PartitionAt splits the network into groups at time at (see
// simnet.Network.Partition for drop semantics).
func (p *Plan) PartitionAt(at time.Duration, groups ...[]simnet.NodeID) *Plan {
	return p.add(at, fmt.Sprintf("partition %v", groups), func(nw *simnet.Network, _ *applyState) {
		nw.Partition(groups...)
	})
}

// HealAt removes any partition at time at.
func (p *Plan) HealAt(at time.Duration) *Plan {
	return p.add(at, "heal", func(nw *simnet.Network, _ *applyState) { nw.Heal() })
}

// CrashAt crashes the given nodes at time at (no-op for already-down nodes).
func (p *Plan) CrashAt(at time.Duration, ids ...simnet.NodeID) *Plan {
	return p.add(at, fmt.Sprintf("crash %v", ids), func(nw *simnet.Network, _ *applyState) {
		for _, id := range ids {
			nw.Node(id).Crash()
		}
	})
}

// RestartAt restarts the given nodes at time at (no-op for up nodes).
func (p *Plan) RestartAt(at time.Duration, ids ...simnet.NodeID) *Plan {
	return p.add(at, fmt.Sprintf("restart %v", ids), func(nw *simnet.Network, _ *applyState) {
		for _, id := range ids {
			nw.Node(id).Restart()
		}
	})
}

// LinkFaultAt installs the network-wide in-flight fault model at time at.
func (p *Plan) LinkFaultAt(at time.Duration, f simnet.LinkFault) *Plan {
	desc := fmt.Sprintf("linkfault corrupt=%.0f%% dup=%.0f%% reorder=%.0f%%",
		f.Corrupt*100, f.Duplicate*100, f.Reorder*100)
	return p.add(at, desc, func(nw *simnet.Network, _ *applyState) { nw.SetLinkFault(f) })
}

// ClearLinkFaultAt removes in-flight fault injection at time at.
func (p *Plan) ClearLinkFaultAt(at time.Duration) *Plan {
	return p.add(at, "clear linkfault", func(nw *simnet.Network, _ *applyState) {
		nw.SetLinkFault(simnet.LinkFault{})
	})
}

// SkewAt sets the clock-rate multiplier of a node at time at (1 = perfect
// clock; see simnet.Node.SetClockSkew).
func (p *Plan) SkewAt(at time.Duration, id simnet.NodeID, rate float64) *Plan {
	return p.add(at, fmt.Sprintf("skew node %d ×%.2f", id, rate), func(nw *simnet.Network, _ *applyState) {
		nw.Node(id).SetClockSkew(rate)
	})
}

// DegradeLinksAt moves the given nodes onto a flaky edge at time at: their
// profiles gain the given loss probability (if higher than current), extra
// one-way latency, and extra jitter. The pre-degradation profiles are
// remembered so RestoreLinksAt can undo exactly this step.
func (p *Plan) DegradeLinksAt(at time.Duration, loss float64, extraLatency, extraJitter time.Duration, ids ...simnet.NodeID) *Plan {
	desc := fmt.Sprintf("degrade %v loss=%.0f%% +%v", ids, loss*100, extraLatency)
	return p.add(at, desc, func(nw *simnet.Network, st *applyState) {
		for _, id := range ids {
			n := nw.Node(id)
			prof := n.Profile()
			if _, saved := st.savedProfiles[id]; !saved {
				st.savedProfiles[id] = prof
			}
			if loss > prof.Loss {
				prof.Loss = loss
			}
			prof.Latency += extraLatency
			prof.Jitter += extraJitter
			n.SetProfile(prof)
		}
	})
}

// RestoreLinksAt undoes DegradeLinksAt for the given nodes at time at,
// reinstating the profile each node had when it was first degraded. Nodes
// that were never degraded are left untouched.
func (p *Plan) RestoreLinksAt(at time.Duration, ids ...simnet.NodeID) *Plan {
	return p.add(at, fmt.Sprintf("restore links %v", ids), func(nw *simnet.Network, st *applyState) {
		for _, id := range ids {
			if prof, saved := st.savedProfiles[id]; saved {
				nw.Node(id).SetProfile(prof)
				delete(st.savedProfiles, id)
			}
		}
	})
}

// Steps returns the plan's steps in execution order.
func (p *Plan) Steps() []Step {
	out := append([]Step(nil), p.steps...)
	sortSteps(out)
	return out
}

// Start returns the time of the earliest scheduled step (0 for an empty
// plan): the point at which the plan first perturbs the network.
func (p *Plan) Start() time.Duration {
	var start time.Duration
	for i, s := range p.steps {
		if i == 0 || s.At < start {
			start = s.At
		}
	}
	return start
}

// End returns the time of the last scheduled step (0 for an empty plan):
// the point after which the plan injects nothing further.
func (p *Plan) End() time.Duration {
	var end time.Duration
	for _, s := range p.steps {
		if s.At > end {
			end = s.At
		}
	}
	return end
}

// Apply schedules every step on the network's event engine. A plan may be
// applied to several networks (or the same network under several seeds);
// each Apply gets independent scratch state, so paired degrade/restore
// steps never leak between runs.
func (p *Plan) Apply(nw *simnet.Network) { p.ApplyAt(nw, 0) }

// ApplyAt is Apply with every step time shifted by base. Use it when the
// workload needs fault-free setup time (bootstrap, initial publishes)
// before the scenario clock starts: build the plan against the horizon of
// the measured window and apply it at base = nw.Now().
func (p *Plan) ApplyAt(nw *simnet.Network, base time.Duration) {
	st := &applyState{savedProfiles: map[simnet.NodeID]simnet.LinkProfile{}}
	for _, s := range p.Steps() {
		s := s
		nw.Schedule(base+s.At, func() { s.do(nw, st) })
	}
}

// String renders the schedule, one step per line, in execution order.
func (p *Plan) String() string {
	var b strings.Builder
	for _, s := range p.Steps() {
		fmt.Fprintf(&b, "t=%v %s\n", s.At, s.Desc)
	}
	return b.String()
}

// sortSteps orders by time, ties broken by insertion order (sort.SliceStable
// over the already-insertion-ordered slice).
func sortSteps(steps []Step) {
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
}

// Rand returns a deterministic RNG stream for fault-plan construction,
// derived from (seed, salt) by SplitMix64 whitening. The stream is
// independent of the network's own substrate and node streams, so the
// choice of victims never perturbs protocol randomness.
func Rand(seed int64, salt uint64) *rand.Rand {
	return rand.New(simnet.NewSplitMix64(simnet.Mix64(simnet.Mix64(uint64(seed)) ^ salt)))
}
