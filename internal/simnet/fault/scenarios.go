package fault

import (
	"math/rand"
	"time"

	"repro/internal/simnet"
)

// A Scenario is a named, parameterized adversity: given a seed, the set of
// fault-eligible nodes, and the run horizon, Build derives the concrete
// Plan. All randomness (which nodes are victims, when exactly they fail)
// comes from the seed through Rand, so the same (seed, nodes, horizon)
// always yields the same plan — and therefore the same run.
//
// Scenario contracts, relied on by the conformance suite and X14:
//
//   - Every fault a scenario injects is cleared (healed, restored,
//     restarted, link fault removed) by RecoveryPoint(horizon).
//   - Nodes outside the eligible set are never crashed, degraded, or
//     skewed — callers exclude anchors such as trackers or bootstrap
//     peers. (Network-wide knobs — partitions and link faults — still
//     affect traffic to and from anchors.)
type Scenario struct {
	Name string
	Desc string
	// Build derives the plan for this scenario.
	Build func(seed int64, nodes []simnet.NodeID, horizon time.Duration) *Plan
}

// RecoveryPoint returns the virtual time by which every scenario's faults
// have cleared: the final fifth of the horizon is guaranteed fault-free,
// and recovery invariants are asserted against it.
func RecoveryPoint(horizon time.Duration) time.Duration { return horizon * 4 / 5 }

// Per-scenario salts for Rand, so scenarios sharing a seed draw
// independent victim sets.
const (
	saltLossyEdge      = 0x10551
	saltFlashPartition = 0xF1A5
	saltRollingChurn   = 0xC4024
	saltCorrupt        = 0xC0442
	saltSustained      = 0x5C402
)

// frac returns fraction num/den of the horizon.
func frac(horizon time.Duration, num, den int64) time.Duration {
	return horizon * time.Duration(num) / time.Duration(den)
}

// Clean is the baseline scenario: no faults at all. Recovery metrics under
// Clean are the ceiling the faulted scenarios are compared against.
func Clean() Scenario {
	return Scenario{
		Name: "clean",
		Desc: "no faults; baseline ceiling",
		Build: func(int64, []simnet.NodeID, time.Duration) *Plan {
			return NewPlan()
		},
	}
}

// LossyEdge models §5.2 device-grade reality: from 10% to 75% of the run, a
// random half of the eligible nodes sit on flaky home links (15% loss,
// +30ms latency, +20ms jitter) with drifting clocks (rate uniform in
// [0.9, 1.1]).
func LossyEdge() Scenario {
	return Scenario{
		Name: "lossy-edge",
		Desc: "half the nodes on flaky, clock-skewed home links for the middle of the run",
		Build: func(seed int64, nodes []simnet.NodeID, horizon time.Duration) *Plan {
			rng := Rand(seed, saltLossyEdge)
			victims := pick(rng, nodes, (len(nodes)+1)/2)
			p := NewPlan()
			start, stop := frac(horizon, 1, 10), frac(horizon, 3, 4)
			p.DegradeLinksAt(start, 0.15, 30*time.Millisecond, 20*time.Millisecond, victims...)
			for _, id := range victims {
				rate := 0.9 + 0.2*rng.Float64()
				p.SkewAt(start, id, rate)
				p.SkewAt(stop, id, 1)
			}
			p.RestoreLinksAt(stop, victims...)
			return p
		},
	}
}

// FlashPartition splits the network in two from 30% to 55% of the run: a
// random half of the eligible nodes is torn away from everyone else, then
// the partition heals.
func FlashPartition() Scenario {
	return Scenario{
		Name: "flash-partition",
		Desc: "half the nodes partitioned away mid-run, then healed",
		Build: func(seed int64, nodes []simnet.NodeID, horizon time.Duration) *Plan {
			rng := Rand(seed, saltFlashPartition)
			island := pick(rng, nodes, len(nodes)/2)
			// The island must be a non-zero group: unlisted nodes default
			// into group 0 alongside the first group passed.
			return NewPlan().
				PartitionAt(frac(horizon, 3, 10), nil, island).
				HealAt(frac(horizon, 11, 20))
		},
	}
}

// RollingChurn crashes every eligible node once, staggered across
// [15%, 55%] of the run, with outages of 5–15% of the horizon each, so the
// membership is in constant flux but never fully down.
func RollingChurn() Scenario {
	return Scenario{
		Name: "rolling-churn",
		Desc: "every node crashes once in a staggered wave and restarts",
		Build: func(seed int64, nodes []simnet.NodeID, horizon time.Duration) *Plan {
			rng := Rand(seed, saltRollingChurn)
			p := NewPlan()
			if len(nodes) == 0 {
				return p
			}
			order := pick(rng, nodes, len(nodes))
			window := frac(horizon, 2, 5) // crashes spread over [0.15H, 0.55H]
			for k, id := range order {
				crash := frac(horizon, 3, 20) + window*time.Duration(k)/time.Duration(len(order))
				outage := frac(horizon, 1, 20) + time.Duration(rng.Int63n(int64(frac(horizon, 1, 10))+1))
				p.CrashAt(crash, id)
				p.RestartAt(crash+outage, id)
			}
			return p
		},
	}
}

// CorruptTenPct turns on in-flight message mangling from 15% to 75% of the
// run: 10% of messages arrive as unparseable garbage, 5% are duplicated,
// and 25% are held back out of order.
func CorruptTenPct() Scenario {
	return Scenario{
		Name: "corrupt-10pct",
		Desc: "10% corruption, 5% duplication, 25% reordering mid-run",
		Build: func(seed int64, nodes []simnet.NodeID, horizon time.Duration) *Plan {
			return NewPlan().
				LinkFaultAt(frac(horizon, 3, 20), simnet.LinkFault{
					Corrupt:   0.10,
					Duplicate: 0.05,
					Reorder:   0.25,
					HoldBack:  200 * time.Millisecond,
				}).
				ClearLinkFaultAt(frac(horizon, 3, 4))
		},
	}
}

// SustainedChurn is the X16 stress scenario: eligible nodes crash and
// restart in repeated staggered waves from 10% of the run until just shy
// of the horizon, with no healed tail. It deliberately violates the
// battery contract above (faults cleared by RecoveryPoint), so it is NOT
// part of Scenarios() — recovery invariants cannot be asserted against
// it. X16 appends it explicitly to measure behaviour under faults that
// never stop.
func SustainedChurn() Scenario {
	return Scenario{
		Name: "sustained-churn",
		Desc: "repeated staggered crash/restart waves with no healed tail",
		Build: func(seed int64, nodes []simnet.NodeID, horizon time.Duration) *Plan {
			rng := Rand(seed, saltSustained)
			p := NewPlan()
			if len(nodes) == 0 {
				return p
			}
			start, stop := frac(horizon, 1, 10), frac(horizon, 19, 20)
			wave := frac(horizon, 1, 4)
			for waveStart := start; waveStart < stop; waveStart += wave {
				order := pick(rng, nodes, (len(nodes)+2)/3)
				for k, id := range order {
					crash := waveStart + wave*time.Duration(k)/time.Duration(len(order)+1)
					outage := frac(horizon, 1, 25) + time.Duration(rng.Int63n(int64(frac(horizon, 1, 12))+1))
					if crash >= stop {
						break
					}
					restart := crash + outage
					if restart > stop {
						restart = stop
					}
					p.CrashAt(crash, id)
					p.RestartAt(restart, id)
				}
			}
			return p
		},
	}
}

// Scenarios returns the canonical battery in stable order. Every subsystem's
// conformance suite and the X14 recovery matrix iterate exactly this list.
func Scenarios() []Scenario {
	return []Scenario{Clean(), LossyEdge(), FlashPartition(), RollingChurn(), CorruptTenPct()}
}

// ByName returns the named scenario from the battery.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// pick returns k distinct nodes drawn without replacement, in a
// deterministic shuffled order.
func pick(rng *rand.Rand, nodes []simnet.NodeID, k int) []simnet.NodeID {
	if k > len(nodes) {
		k = len(nodes)
	}
	perm := rng.Perm(len(nodes))
	out := make([]simnet.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = nodes[perm[i]]
	}
	return out
}
