package simnet

import (
	"testing"
	"time"
)

// Regression tests pinning the Partition/Heal drop semantics documented on
// Network.Partition: sends while partitioned are dropped at send time and
// are not revived by a heal, sends after a heal deliver, and an in-flight
// message outlives a partition that appears and heals before its arrival.

// TestPostHealSendsDeliver: after Heal, traffic flows again — nothing about
// the partition lingers in the delivery path.
func TestPostHealSendsDeliver(t *testing.T) {
	nw := New(11)
	a, b := nw.AddNode(), nw.AddNode()
	got := 0
	b.Handle("m", func(Message) { got++ })

	nw.Partition(nil, []NodeID{b.ID()})
	if a.Send(b.ID(), "m", nil, 8) {
		t.Fatal("send across partition claimed to schedule delivery")
	}
	nw.RunAll()
	if got != 0 {
		t.Fatalf("partitioned send delivered (%d)", got)
	}

	nw.Heal()
	if !a.Send(b.ID(), "m", nil, 8) {
		t.Fatal("post-heal send failed to schedule")
	}
	nw.RunAll()
	if got != 1 {
		t.Fatalf("post-heal deliveries = %d, want 1", got)
	}
	// The send dropped while partitioned stays lost: senders must retry.
	if nw.Trace().Dropped != 1 {
		t.Fatalf("dropped = %d, want exactly the partitioned send", nw.Trace().Dropped)
	}
}

// TestInFlightMessageSurvivesHealedPartition: a message launched before a
// partition appears, whose partition heals before the arrival time, must
// deliver — only the partition state at delivery time matters.
func TestInFlightMessageSurvivesHealedPartition(t *testing.T) {
	nw := New(12)
	// 100ms one-way latency each side gives the message 200ms in flight.
	p := LinkProfile{Latency: 100 * time.Millisecond}
	a, b := nw.AddNodeWithProfile(p), nw.AddNodeWithProfile(p)
	got := 0
	b.Handle("m", func(Message) { got++ })

	if !a.Send(b.ID(), "m", nil, 8) {
		t.Fatal("send failed")
	}
	nw.Schedule(50*time.Millisecond, func() { nw.Partition(nil, []NodeID{b.ID()}) })
	nw.Schedule(150*time.Millisecond, func() { nw.Heal() })
	nw.RunAll()
	if got != 1 {
		t.Fatalf("in-flight message dropped despite heal before arrival (got %d)", got)
	}
}

// TestInFlightMessageDroppedWhilePartitioned: the same message is dropped
// at delivery time when the partition still stands at its arrival.
func TestInFlightMessageDroppedWhilePartitioned(t *testing.T) {
	nw := New(13)
	p := LinkProfile{Latency: 100 * time.Millisecond}
	a, b := nw.AddNodeWithProfile(p), nw.AddNodeWithProfile(p)
	got := 0
	b.Handle("m", func(Message) { got++ })

	if !a.Send(b.ID(), "m", nil, 8) {
		t.Fatal("send failed")
	}
	nw.Schedule(50*time.Millisecond, func() { nw.Partition(nil, []NodeID{b.ID()}) })
	nw.RunAll()
	if got != 0 {
		t.Fatalf("message delivered across a standing partition")
	}
	if nw.Trace().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 in-flight drop", nw.Trace().Dropped)
	}
}
