package simnet

import (
	"testing"
	"time"
)

// TestLinkFaultCorruptWrapsPayload: corrupted messages arrive with the
// payload wrapped in Corrupted, so the receiver's type assertion fails the
// way an unparseable frame would.
func TestLinkFaultCorruptWrapsPayload(t *testing.T) {
	nw := New(21)
	a, b := nw.AddNode(), nw.AddNode()
	nw.SetLinkFault(LinkFault{Corrupt: 1})
	var got Message
	b.Handle("m", func(m Message) { got = m })
	a.Send(b.ID(), "m", "hello", 8)
	nw.RunAll()
	c, ok := got.Payload.(Corrupted)
	if !ok {
		t.Fatalf("payload = %#v, want Corrupted wrapper", got.Payload)
	}
	if c.Original != "hello" {
		t.Fatalf("Corrupted.Original = %v, want original payload", c.Original)
	}
	if nw.Trace().Corrupted != 1 || b.Trace().Corrupted != 1 {
		t.Fatalf("corrupted counters: net=%d node=%d, want 1/1", nw.Trace().Corrupted, b.Trace().Corrupted)
	}
}

// TestLinkFaultDuplicateDeliversTwice: a duplicated message reaches the
// handler twice and is counted once as Duplicated.
func TestLinkFaultDuplicateDeliversTwice(t *testing.T) {
	nw := New(22)
	a, b := nw.AddNode(), nw.AddNode()
	nw.SetLinkFault(LinkFault{Duplicate: 1})
	got := 0
	b.Handle("m", func(Message) { got++ })
	a.Send(b.ID(), "m", nil, 8)
	nw.RunAll()
	if got != 2 {
		t.Fatalf("deliveries = %d, want 2", got)
	}
	tr := nw.Trace()
	if tr.Duplicated != 1 || tr.Delivered != 2 || tr.Sent != 1 {
		t.Fatalf("trace = %+v, want Duplicated=1 Delivered=2 Sent=1", tr)
	}
}

// TestLinkFaultReorderInvertsOrder: with reordering forced on the first
// message only, a later send can overtake it.
func TestLinkFaultReorderInvertsOrder(t *testing.T) {
	nw := New(23)
	a, b := nw.AddNode(), nw.AddNode()
	var order []string
	b.HandleDefault(func(m Message) { order = append(order, m.Kind) })

	nw.SetLinkFault(LinkFault{Reorder: 1, HoldBack: time.Second})
	a.Send(b.ID(), "first", nil, 8)
	nw.SetLinkFault(LinkFault{})
	a.Send(b.ID(), "second", nil, 8)
	nw.RunAll()
	if len(order) != 2 || order[0] != "second" || order[1] != "first" {
		t.Fatalf("delivery order = %v, want [second first]", order)
	}
	if nw.Trace().Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", nw.Trace().Reordered)
	}
}

// TestZeroLinkFaultPreservesEventStream: installing and clearing a zero
// fault must not consume RNG draws — the event stream with the zero fault
// must be identical to one that never touched the knob.
func TestZeroLinkFaultPreservesEventStream(t *testing.T) {
	run := func(touch bool) Trace {
		nw := New(99)
		a, b := nw.AddNodeWithProfile(HomeBroadbandProfile()), nw.AddNodeWithProfile(HomeBroadbandProfile())
		b.HandleDefault(func(Message) {})
		if touch {
			nw.SetLinkFault(LinkFault{})
		}
		for i := 0; i < 500; i++ {
			i := i
			nw.Schedule(time.Duration(i)*100*time.Millisecond, func() { a.Send(b.ID(), "x", nil, 256) })
		}
		nw.RunAll()
		return *nw.Trace()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("zero LinkFault changed the run: %+v vs %+v", a, b)
	}
}

// TestClockSkewScalesNodeTimers: a node running 2× fast fires its local
// timers in half the network time; a slow node fires late; the network
// clock is unaffected.
func TestClockSkewScalesNodeTimers(t *testing.T) {
	nw := New(31)
	fast, slow, exact := nw.AddNode(), nw.AddNode(), nw.AddNode()
	fast.SetClockSkew(2)
	slow.SetClockSkew(0.5)
	var fastAt, slowAt, exactAt time.Duration
	fast.After(time.Minute, func() { fastAt = nw.Now() })
	slow.After(time.Minute, func() { slowAt = nw.Now() })
	exact.After(time.Minute, func() { exactAt = nw.Now() })
	nw.RunAll()
	if fastAt != 30*time.Second {
		t.Errorf("fast timer fired at %v, want 30s", fastAt)
	}
	if slowAt != 2*time.Minute {
		t.Errorf("slow timer fired at %v, want 2m", slowAt)
	}
	if exactAt != time.Minute {
		t.Errorf("unskewed timer fired at %v, want 1m", exactAt)
	}
}

// TestClockSkewResets: rates <= 0 reset to a perfect clock.
func TestClockSkewResets(t *testing.T) {
	nw := New(32)
	n := nw.AddNode()
	n.SetClockSkew(1.5)
	if n.ClockSkew() != 1.5 {
		t.Fatalf("skew = %v, want 1.5", n.ClockSkew())
	}
	n.SetClockSkew(0)
	if n.ClockSkew() != 1 {
		t.Fatalf("skew after reset = %v, want 1", n.ClockSkew())
	}
}

// TestSkewedRPCTimeout: RPC timeouts run on the caller's clock — a 2×-fast
// caller gives up twice as early in network time.
func TestSkewedRPCTimeout(t *testing.T) {
	nw := New(33)
	caller := NewRPCNode(nw.AddNode())
	// The callee exists but serves nothing, so the call can only time out.
	callee := NewRPCNode(nw.AddNode())
	_ = callee
	caller.Node().SetClockSkew(2)
	var timedOutAt time.Duration
	caller.Call(callee.Node().ID(), "missing-method-timeout", nil, 8, time.Minute, func(_ any, err error) {
		if err != nil {
			timedOutAt = nw.Now()
		}
	})
	// Crash the callee first so the "does not serve" error reply never
	// arrives and the timeout path is what fires.
	callee.Node().Crash()
	nw.RunAll()
	if timedOutAt != 30*time.Second {
		t.Fatalf("skewed RPC timeout fired at %v, want 30s", timedOutAt)
	}
}
