package simnet

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Multi-trial runner: experiments stop being single-seed, single-core by
// fanning N independent seeds across worker goroutines. Parallelism is
// strictly trial-level — each trial constructs and owns its entire Network,
// so no simulation state is shared between goroutines and every per-seed
// result is bit-for-bit identical no matter how many workers run or how
// the OS schedules them.

// Trials runs one trial per seed, at most workers at a time, and returns
// the results in seed order. workers <= 0 means GOMAXPROCS. run must be
// self-contained: it builds its own Network from the seed and returns a
// value derived only from that simulation.
func Trials[T any](seeds []int64, workers int, run func(seed int64) T) []T {
	results := make([]T, len(seeds))
	if len(seeds) == 0 {
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	if workers == 1 {
		for i, s := range seeds {
			results[i] = run(s)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(seeds) {
					return
				}
				results[i] = run(seeds[i])
			}
		}()
	}
	wg.Wait()
	return results
}

// Seeds derives n deterministic, well-spread trial seeds from base using
// SplitMix64. Distinct bases yield unrelated seed lists; the same base
// always yields the same list.
func Seeds(base int64, n int) []int64 {
	src := NewSplitMix64(mix64(uint64(base)))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(src.Uint64())
	}
	return out
}
