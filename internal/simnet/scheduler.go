package simnet

import (
	"sync"
	"time"
)

// This file is the *engine* half of simnet's engine/substrate split: a
// discrete-event scheduler that knows nothing about nodes, links, or
// messages. The substrate (Network, Node) layers network semantics on top.
//
// Design points:
//
//   - Events live in an indexed binary heap: each event records its heap
//     position, so cancellation and rescheduling are O(log n) instead of
//     requiring lazy tombstones that bloat the queue.
//   - Events are recycled through a sync.Pool and carry a handler+argument
//     pair (EventFunc + arg) instead of a captured closure, so the message
//     hot path allocates nothing in steady state.
//   - Timer handles are generation-checked: a Timer that already fired or
//     was cancelled becomes an inert no-op even after its event struct has
//     been recycled for an unrelated schedule.

// EventFunc is a closure-free event callback: the scheduler invokes it with
// the argument it was registered with. Hot paths should prefer EventFunc
// over closures to avoid a capture allocation per event.
type EventFunc func(arg any)

// Scheduler is the engine interface protocols program against: virtual
// time, fire-and-forget scheduling, and cancellable timers. *Network
// implements it.
type Scheduler interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Schedule runs fn at absolute virtual time at (clamped to Now).
	Schedule(at time.Duration, fn func())
	// After runs fn after d of virtual time.
	After(d time.Duration, fn func())
	// ScheduleCall is the closure-free variant of Schedule; it returns a
	// Timer that can cancel or reschedule the event before it fires.
	ScheduleCall(at time.Duration, h EventFunc, arg any) Timer
	// AfterCall is the closure-free variant of After.
	AfterCall(d time.Duration, h EventFunc, arg any) Timer
}

// event is one scheduled occurrence. Events are pooled; gen disambiguates
// successive uses of the same struct so stale Timer handles stay inert.
//
// An event lives in exactly one of two queue kinds: the single-heap
// engine's queue (eng set, ordered by (at, seq)) or a shard's queue
// (sh set, ordered by the shard-count-independent key (at, origin, oseq);
// see shard.go). The fields for the unused kind stay zero.
type event struct {
	at  time.Duration
	seq uint64 // single-heap tie-break: equal-time events run in schedule order
	gen uint64 // bumped every time the event fires or is cancelled
	pos int    // index in the heap, -1 when not queued
	eng *engine
	// origin/oseq are the sharded engine's deterministic tie-break: the
	// scheduling entity (node id + 1, or 0 for control events) and its
	// private monotone sequence number. The pair is independent of the
	// shard layout and worker count, which is what makes sharded execution
	// reproducible across NetworkConfig{Shards, Workers} settings.
	origin uint64
	oseq   uint64
	sh     *shard // owning shard queue, nil for single-heap events
	fn     func() // closure path (convenience API)
	h      EventFunc
	arg    any
}

// engine is the concrete scheduler: virtual clock plus indexed event heap.
type engine struct {
	now  time.Duration
	seq  uint64
	heap []*event
	pool sync.Pool
}

// Timer is a handle on a scheduled event. The zero Timer is inert. Timers
// are values; copying one copies the handle, not the event.
type Timer struct {
	e   *event
	gen uint64
}

// Active reports whether the timer is still pending (not fired, not
// cancelled, not rescheduled away by another handle).
func (t Timer) Active() bool {
	return t.e != nil && t.e.gen == t.gen && t.e.pos >= 0
}

// When returns the virtual time the timer will fire at, or 0 if inactive.
func (t Timer) When() time.Duration {
	if !t.Active() {
		return 0
	}
	return t.e.at
}

// Now implements Scheduler.
func (en *engine) Now() time.Duration { return en.now }

func (en *engine) alloc() *event {
	if e, ok := en.pool.Get().(*event); ok {
		return e
	}
	return &event{eng: en}
}

// free recycles a dequeued event. The generation bump invalidates every
// outstanding Timer handle pointing at it.
func (en *engine) free(e *event) {
	e.gen++
	e.fn, e.h, e.arg = nil, nil, nil
	en.pool.Put(e)
}

func (en *engine) schedule(at time.Duration, fn func(), h EventFunc, arg any) *event {
	if at < en.now {
		at = en.now
	}
	e := en.alloc()
	en.seq++
	e.at, e.seq, e.fn, e.h, e.arg = at, en.seq, fn, h, arg
	en.push(e)
	return e
}

// Schedule implements Scheduler (fire-and-forget closure form).
func (en *engine) Schedule(at time.Duration, fn func()) { en.schedule(at, fn, nil, nil) }

// After implements Scheduler.
func (en *engine) After(d time.Duration, fn func()) { en.schedule(en.now+d, fn, nil, nil) }

// ScheduleCall implements Scheduler.
func (en *engine) ScheduleCall(at time.Duration, h EventFunc, arg any) Timer {
	e := en.schedule(at, nil, h, arg)
	return Timer{e: e, gen: e.gen}
}

// AfterCall implements Scheduler.
func (en *engine) AfterCall(d time.Duration, h EventFunc, arg any) Timer {
	return en.ScheduleCall(en.now+d, h, arg)
}

// AfterTimer schedules a closure and returns a cancellable Timer for it.
// Protocol retry/timeout patterns use this to cancel the timeout when the
// awaited reply arrives instead of leaving a dead event in the queue.
func (en *engine) AfterTimer(d time.Duration, fn func()) Timer {
	e := en.schedule(en.now+d, fn, nil, nil)
	return Timer{e: e, gen: e.gen}
}

// Cancel removes the event from the queue so it never fires. It reports
// whether the timer was still pending; cancelling an already-fired,
// already-cancelled, or zero Timer is a safe no-op.
func (t Timer) Cancel() bool {
	if !t.Active() {
		return false
	}
	if sh := t.e.sh; sh != nil {
		sh.remove(t.e)
		sh.free(t.e)
		return true
	}
	en := t.e.eng
	en.remove(t.e)
	en.free(t.e)
	return true
}

// Reschedule moves a still-pending timer to fire at absolute time at
// (clamped to Now), as if it had been freshly scheduled there: among
// equal-time events it runs after those already queued. It reports whether
// the timer was pending; a fired or cancelled timer cannot be revived.
func (t Timer) Reschedule(at time.Duration) bool {
	if !t.Active() {
		return false
	}
	if sh := t.e.sh; sh != nil {
		// A shard timer's origin is always a node (deliveries never hand
		// out Timer handles), so re-keying draws the node's next sequence
		// number — exactly as if the owner had scheduled it afresh.
		if at < sh.now {
			at = sh.now
		}
		n := sh.nw.nodes[t.e.origin-1]
		t.e.at, t.e.oseq = at, n.nextOseq()
		sh.fix(t.e)
		return true
	}
	en := t.e.eng
	if at < en.now {
		at = en.now
	}
	en.seq++
	t.e.at, t.e.seq = at, en.seq
	en.fix(t.e)
	return true
}

// step pops and runs the earliest event, advancing the clock. It reports
// whether an event ran.
func (en *engine) step() bool {
	if len(en.heap) == 0 {
		return false
	}
	e := en.pop()
	en.now = e.at
	fn, h, arg := e.fn, e.h, e.arg
	en.free(e) // recycle before invoking: the handler may schedule again
	if h != nil {
		h(arg)
	} else if fn != nil {
		fn()
	}
	return true
}

// peekTime returns the time of the earliest pending event.
func (en *engine) peekTime() (time.Duration, bool) {
	if len(en.heap) == 0 {
		return 0, false
	}
	return en.heap[0].at, true
}

// pending returns how many events are queued.
func (en *engine) pending() int { return len(en.heap) }

// --- indexed binary heap -------------------------------------------------
//
// A hand-rolled heap (rather than container/heap) keeps events' positions
// up to date without interface boxing on every operation.

func (en *engine) less(i, j int) bool {
	a, b := en.heap[i], en.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (en *engine) swap(i, j int) {
	h := en.heap
	h[i], h[j] = h[j], h[i]
	h[i].pos, h[j].pos = i, j
}

func (en *engine) push(e *event) {
	e.pos = len(en.heap)
	en.heap = append(en.heap, e)
	en.up(e.pos)
}

func (en *engine) pop() *event {
	e := en.heap[0]
	last := len(en.heap) - 1
	en.swap(0, last)
	en.heap[last] = nil
	en.heap = en.heap[:last]
	if last > 0 {
		en.down(0)
	}
	e.pos = -1
	return e
}

// remove unlinks an arbitrary queued event (timer cancellation).
func (en *engine) remove(e *event) {
	i := e.pos
	last := len(en.heap) - 1
	if i != last {
		en.swap(i, last)
	}
	en.heap[last] = nil
	en.heap = en.heap[:last]
	if i != last {
		if !en.up(i) {
			en.down(i)
		}
	}
	e.pos = -1
}

// fix restores heap order after e's time changed (timer rescheduling).
func (en *engine) fix(e *event) {
	if !en.up(e.pos) {
		en.down(e.pos)
	}
}

func (en *engine) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !en.less(i, parent) {
			break
		}
		en.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

func (en *engine) down(i int) {
	n := len(en.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && en.less(right, left) {
			least = right
		}
		if !en.less(least, i) {
			return
		}
		en.swap(i, least)
		i = least
	}
}
