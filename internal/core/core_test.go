package core

import "testing"

func TestProfilesSpanTheQuadrants(t *testing.T) {
	ps := Profiles()
	if len(ps) < 4 {
		t.Fatalf("profiles = %d", len(ps))
	}
	// The paper's diagnosis: today's Internet is distributed + feudal.
	foundFeudalDistributed := false
	// The paper's goal: distributed + democratic.
	foundDemocraticDistributed := false
	for _, p := range ps {
		if p.Distribution == DistDistributed && p.Control == CtrlFeudal {
			foundFeudalDistributed = true
		}
		if p.Distribution == DistDistributed && p.Control == CtrlDemocratic {
			foundDemocraticDistributed = true
		}
		if p.Implementation == "" {
			t.Errorf("%s has no implementation link", p.Name)
		}
	}
	if !foundFeudalDistributed {
		t.Error("missing the distributed+feudal quadrant (today's Internet)")
	}
	if !foundDemocraticDistributed {
		t.Error("missing the distributed+democratic quadrant (the goal)")
	}
}

func TestCentralizedWinsConvenienceP2PWinsPrivacy(t *testing.T) {
	ps := Profiles()
	var central, p2p *SystemProfile
	for i := range ps {
		switch ps[i].Name {
		case "centralized-platform":
			central = &ps[i]
		case "peer-to-peer":
			p2p = &ps[i]
		}
	}
	if central == nil || p2p == nil {
		t.Fatal("expected profiles missing")
	}
	if central.Features.Convenience <= p2p.Features.Convenience {
		t.Error("§2.1: centralized should beat P2P on convenience")
	}
	if central.Features.Privacy >= p2p.Features.Privacy {
		t.Error("§3.2: P2P should beat centralized on privacy")
	}
}

func TestStringers(t *testing.T) {
	for _, d := range []Distribution{DistCentralized, DistFederated, DistDistributed} {
		if d.String() == "unknown" {
			t.Errorf("distribution %d unnamed", d)
		}
	}
	if Distribution(99).String() != "unknown" {
		t.Error("unknown distribution")
	}
	for _, c := range []Control{CtrlFeudal, CtrlSemiDemocratic, CtrlDemocratic} {
		if c.String() == "unknown" {
			t.Errorf("control %d unnamed", c)
		}
	}
	if Control(99).String() != "unknown" {
		t.Error("unknown control")
	}
	for _, s := range []Score{Poor, Partial, Good} {
		if s.String() == "unknown" {
			t.Errorf("score %d unnamed", s)
		}
	}
	if Score(99).String() != "unknown" {
		t.Error("unknown score")
	}
	for _, i := range []IncentiveID{IncentiveBitswap, IncentiveProofOfStorage, IncentiveProofOfRetrievability, IncentiveProofOfReplication, IncentiveNone} {
		if i.String() == "unknown" {
			t.Errorf("incentive %d unnamed", i)
		}
	}
	if IncentiveID(99).String() != "unknown" {
		t.Error("unknown incentive")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	wantProjects := map[string]int{
		"Naming":              3,
		"Group Communication": 8,
		"Data storage":        9,
		"Web applications":    3,
	}
	for _, r := range rows {
		want, ok := wantProjects[r.Problem]
		if !ok {
			t.Errorf("unexpected problem %q", r.Problem)
			continue
		}
		if len(r.Projects) != want {
			t.Errorf("%s: %d projects, want %d", r.Problem, len(r.Projects), want)
		}
		if r.Implementation == "" {
			t.Errorf("%s: no implementation", r.Problem)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	want := map[string]string{
		"IPFS":       "None",
		"MaidSafe":   "None",
		"Sia":        "Blockchain-based contract",
		"Storj":      "Facilitate payments (storjcoin)",
		"Swarm":      "Ethereum blockchain for domain name resolution, payments, and content availability insurance",
		"Filecoin":   "Facilitate payments (filecoin)",
		"Blockstack": "Bind domain name, public key and zone file hash",
	}
	for _, r := range rows {
		usage, ok := want[r.System]
		if !ok {
			t.Errorf("unexpected system %q", r.System)
			continue
		}
		if r.BlockchainUsage != usage {
			t.Errorf("%s: usage %q, want %q", r.System, r.BlockchainUsage, usage)
		}
		if r.IncentiveScheme == "" || r.Implementation == "" {
			t.Errorf("%s: incomplete row", r.System)
		}
	}
	// Only Blockstack has no incentive scheme.
	for _, r := range rows {
		if (r.Incentive == IncentiveNone) != (r.System == "Blockstack") {
			t.Errorf("%s: incentive-none mismatch", r.System)
		}
	}
}
