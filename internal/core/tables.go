package core

// Table 1 and Table 2 registries. The survey content is the paper's; the
// Implementation column is ours, tying each surveyed mechanism class to
// the package that realizes it in this repository.

// Table1Row is one row of the paper's Table 1: a decentralization problem
// and the recent projects tackling it.
type Table1Row struct {
	Problem  string
	Projects []string
	// Implementation names the model in this repository that reproduces
	// the problem's mechanism class.
	Implementation string
}

// Table1 returns the paper's Table 1 rows.
func Table1() []Table1Row {
	return []Table1Row{
		{
			Problem:        "Naming",
			Projects:       []string{"Namecoin", "Emercoin", "Blockstack"},
			Implementation: "naming.Index over chain.Chain (preorder/register virtualchain)",
		},
		{
			Problem: "Group Communication",
			Projects: []string{
				"Matrix", "Riot", "Ring", "Nextcloud", "GNU social",
				"Mastodon", "Friendica", "Identi.ca",
			},
			Implementation: "groupcomm.{CentralServer,FedInstance,ReplServer,SocialPeer} + double ratchet",
		},
		{
			Problem: "Data storage",
			Projects: []string{
				"IPFS", "Blockstack", "Maidsafe", "Secure-scuttlebutt",
				"Nextcloud", "Sia", "Storj", "Swarm", "Filecoin",
			},
			Implementation: "storage.{Provider,Client,Contract,BitswapNode} + erasure coding + proofs",
		},
		{
			Problem:        "Web applications",
			Projects:       []string{"Beaker", "ZeroNet", "Freedom.js"},
			Implementation: "webapp.{Peer,Tracker} signed site bundles over dht.Peer",
		},
	}
}

// IncentiveID selects which implemented incentive mechanism a Table 2 row
// is backed by; internal/experiments executes each against live providers.
type IncentiveID int

const (
	// IncentiveBitswap is pairwise reciprocity accounting (IPFS).
	IncentiveBitswap IncentiveID = iota
	// IncentiveProofOfStorage is the Merkle challenge-response audit
	// (Sia, Swarm's SWEAR).
	IncentiveProofOfStorage
	// IncentiveProofOfRetrievability is the precomputed-sentinel audit
	// (Storj; closest implemented analogue for MaidSafe's
	// proof-of-resource).
	IncentiveProofOfRetrievability
	// IncentiveProofOfReplication is sealed-replica auditing (Filecoin).
	IncentiveProofOfReplication
	// IncentiveNone marks rows using the chain only for name binding
	// (Blockstack).
	IncentiveNone
)

// String names the incentive mechanism.
func (i IncentiveID) String() string {
	switch i {
	case IncentiveBitswap:
		return "bitswap-ledgers"
	case IncentiveProofOfStorage:
		return "proof-of-storage"
	case IncentiveProofOfRetrievability:
		return "proof-of-retrievability"
	case IncentiveProofOfReplication:
		return "proof-of-replication"
	case IncentiveNone:
		return "none"
	}
	return "unknown"
}

// Table2Row is one row of the paper's Table 2: a surveyed decentralized
// storage system, how it uses blockchains, and its incentive scheme.
type Table2Row struct {
	System          string
	BlockchainUsage string
	IncentiveScheme string
	// Incentive is the implemented mechanism this row is demonstrated
	// with; Implementation names the concrete code.
	Incentive      IncentiveID
	Implementation string
}

// Table2 returns the paper's Table 2 rows, each mapped to the implemented
// mechanism that demonstrates it.
func Table2() []Table2Row {
	return []Table2Row{
		{
			System:          "IPFS",
			BlockchainUsage: "None",
			IncentiveScheme: "Bitswap Ledgers",
			Incentive:       IncentiveBitswap,
			Implementation:  "storage.BitswapNode (debt-ratio reciprocity)",
		},
		{
			System:          "MaidSafe",
			BlockchainUsage: "None",
			IncentiveScheme: "Proof-of-resource / Distributed transaction",
			Incentive:       IncentiveProofOfRetrievability,
			Implementation:  "storage.RetAudit (sentinel audits; closest implemented analogue)",
		},
		{
			System:          "Sia",
			BlockchainUsage: "Blockchain-based contract",
			IncentiveScheme: "Proof-of-storage",
			Incentive:       IncentiveProofOfStorage,
			Implementation:  "storage.Contract on chain.Chain + storage.Client.Audit",
		},
		{
			System:          "Storj",
			BlockchainUsage: "Facilitate payments (storjcoin)",
			IncentiveScheme: "Proof-of-retrievability",
			Incentive:       IncentiveProofOfRetrievability,
			Implementation:  "storage.Contract.PaymentTx + storage.MakeSentinels/RetAudit",
		},
		{
			System:          "Swarm",
			BlockchainUsage: "Ethereum blockchain for domain name resolution, payments, and content availability insurance",
			IncentiveScheme: "Proof-of-storage: SWEAR",
			Incentive:       IncentiveProofOfStorage,
			Implementation:  "naming.Index (name resolution) + storage.Contract + Client.Audit",
		},
		{
			System:          "Filecoin",
			BlockchainUsage: "Facilitate payments (filecoin)",
			IncentiveScheme: "Proof-of-replication / Proof-of-spacetime / Proof-of-work",
			Incentive:       IncentiveProofOfReplication,
			Implementation:  "storage.Seal/PutSealed/RepAudit + chain proof-of-work",
		},
		{
			System:          "Blockstack",
			BlockchainUsage: "Bind domain name, public key and zone file hash",
			IncentiveScheme: "N/A",
			Incentive:       IncentiveNone,
			Implementation:  "naming.Client ops anchoring zone-file hashes on chain.Chain",
		},
	}
}
