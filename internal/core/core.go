// Package core encodes the paper's conceptual model as code: the two-axis
// taxonomy of Internet service structure (§2 — distribution × control),
// the feature set that makes centralized services attractive (§2.1), and
// the survey registries behind Table 1 (decentralization problems ×
// projects) and Table 2 (storage systems × blockchain usage × incentive
// scheme). Every registry row is cross-linked to the package in this
// repository that implements the row's mechanism, so the tables are
// regenerated from a codebase that actually runs them.
package core

// Distribution is the paper's first axis: "whether the physical resources
// being accessed for some service are located at a single machine … or
// dispersed across many machines all over the planet."
type Distribution int

const (
	// DistCentralized means the resources sit with one machine/site.
	DistCentralized Distribution = iota
	// DistFederated means resources spread over multiple coordinating
	// administrative domains.
	DistFederated
	// DistDistributed means resources disperse across many machines.
	DistDistributed
)

// String names the distribution level.
func (d Distribution) String() string {
	switch d {
	case DistCentralized:
		return "centralized"
	case DistFederated:
		return "federated"
	case DistDistributed:
		return "distributed"
	}
	return "unknown"
}

// Control is the second axis: "whether the authority over the service and
// the machines providing a service is spread across many individuals or
// organizations or held by a few."
type Control int

const (
	// CtrlFeudal concentrates authority in a few operators.
	CtrlFeudal Control = iota
	// CtrlSemiDemocratic spreads authority over many medium-sized
	// operators (the 1990s ISP model the paper calls semi-democratized).
	CtrlSemiDemocratic
	// CtrlDemocratic spreads authority to the users themselves.
	CtrlDemocratic
)

// String names the control level.
func (c Control) String() string {
	switch c {
	case CtrlFeudal:
		return "feudal"
	case CtrlSemiDemocratic:
		return "semi-democratic"
	case CtrlDemocratic:
		return "democratic"
	}
	return "unknown"
}

// Score grades how well a system provides a feature.
type Score int

const (
	// Poor means the feature is essentially absent.
	Poor Score = iota
	// Partial means the feature is provided with significant caveats.
	Partial
	// Good means the feature is a strength of the design.
	Good
)

// String names the score.
func (s Score) String() string {
	switch s {
	case Poor:
		return "poor"
	case Partial:
		return "partial"
	case Good:
		return "good"
	}
	return "unknown"
}

// Features grades a system on the paper's §2.1 axes (why centralized
// systems win users and operators) plus the §3.2 communication-specific
// axes. Communication axes are meaningful only for group-communication
// systems and default to Poor elsewhere.
type Features struct {
	// User-facing (§2.1): Convenience, Homogeneity, Cost.
	Convenience Score
	Homogeneity Score
	Cost        Score
	// Operator-facing (§2.1): Performance, Security, Financing.
	Performance Score
	Security    Score
	Financing   Score
	// Communication-specific (§3.2).
	Connectedness   Score
	AbusePrevention Score
	Privacy         Score
}

// SystemProfile positions one deployment model in the taxonomy.
type SystemProfile struct {
	Name         string
	Distribution Distribution
	Control      Control
	Features     Features
	// Implementation is the package/type in this repository that realizes
	// the model.
	Implementation string
}

// Profiles returns the taxonomy positions of the deployment models this
// repository implements, spanning the §2 quadrants the paper describes:
// today's Internet is "distributed and feudal"; the goal is "distributed
// and democratic".
func Profiles() []SystemProfile {
	return []SystemProfile{
		{
			Name:         "centralized-platform",
			Distribution: DistCentralized,
			Control:      CtrlFeudal,
			Features: Features{
				Convenience: Good, Homogeneity: Good, Cost: Good,
				Performance: Good, Security: Good, Financing: Good,
				Connectedness: Good, AbusePrevention: Good, Privacy: Poor,
			},
			Implementation: "groupcomm.CentralServer, naming.CentralizedRegistrar",
		},
		{
			Name:         "hyperscale-cloud",
			Distribution: DistDistributed,
			Control:      CtrlFeudal,
			Features: Features{
				Convenience: Good, Homogeneity: Good, Cost: Good,
				Performance: Good, Security: Good, Financing: Good,
				Connectedness: Good, AbusePrevention: Good, Privacy: Poor,
			},
			Implementation: "feasibility.CloudParams (capacity model)",
		},
		{
			Name:         "federated",
			Distribution: DistFederated,
			Control:      CtrlSemiDemocratic,
			Features: Features{
				Convenience: Partial, Homogeneity: Partial, Cost: Good,
				Performance: Partial, Security: Partial, Financing: Partial,
				Connectedness: Partial, AbusePrevention: Partial, Privacy: Partial,
			},
			Implementation: "groupcomm.FedInstance, groupcomm.ReplServer",
		},
		{
			Name:         "peer-to-peer",
			Distribution: DistDistributed,
			Control:      CtrlDemocratic,
			Features: Features{
				Convenience: Poor, Homogeneity: Poor, Cost: Good,
				Performance: Poor, Security: Partial, Financing: Poor,
				Connectedness: Poor, AbusePrevention: Poor, Privacy: Good,
			},
			Implementation: "groupcomm.SocialPeer, storage.Provider, webapp.Peer, dht.Peer, chain.Miner",
		},
	}
}
