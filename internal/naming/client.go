package naming

import (
	"io"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// Client builds signed name-operation transactions for one identity. It
// tracks the account nonce locally; callers submit the transactions
// through a miner or wallet.
type Client struct {
	cfg   Config
	key   *cryptoutil.KeyPair
	nonce uint64
	rand  io.Reader
	// salts remembers the salt used for each pending preorder so Register
	// can reveal it.
	salts map[string][]byte
}

// NewClient creates a transaction builder for the key pair. rand supplies
// preorder salts; nonce must match the account's current chain nonce.
func NewClient(key *cryptoutil.KeyPair, cfg Config, rand io.Reader, nonce uint64) *Client {
	return &Client{cfg: cfg, key: key, rand: rand, nonce: nonce, salts: map[string][]byte{}}
}

// Address returns the client's account address.
func (cl *Client) Address() chain.Address { return cl.key.Fingerprint() }

// SetNonce resynchronizes the local nonce with chain state.
func (cl *Client) SetNonce(n uint64) { cl.nonce = n }

func (cl *Client) sign(op *Op, fee uint64) *chain.Tx {
	tx := &chain.Tx{
		Kind:    chain.KindNameOp,
		Fee:     fee,
		Nonce:   cl.nonce,
		Payload: op.Encode(),
	}
	tx.Sign(cl.key)
	cl.nonce++
	return tx
}

// Preorder builds the commitment transaction for a name. The salt is drawn
// from the client's entropy source and retained for the later Register.
func (cl *Client) Preorder(name string) (*chain.Tx, error) {
	salt := make([]byte, 16)
	if _, err := io.ReadFull(cl.rand, salt); err != nil {
		return nil, err
	}
	cl.salts[name] = salt
	op := &Op{Op: OpPreorder, Commitment: Commitment(name, salt, cl.Address())}
	return cl.sign(op, 1), nil
}

// Register builds the reveal transaction, paying the default length-based
// fee. It must follow a Preorder for the same name from this client. For
// names inside a custom namespace, whose fee differs, use RegisterWithFee
// with the fee obtained from an Index.
func (cl *Client) Register(name string, value []byte) *chain.Tx {
	return cl.RegisterWithFee(name, value, cl.cfg.RequiredFee(name))
}

// RegisterWithFee builds the reveal transaction with an explicit fee
// (namespace pricing is defined on-chain, so clients consult an Index for
// the effective fee before registering).
func (cl *Client) RegisterWithFee(name string, value []byte, fee uint64) *chain.Tx {
	op := &Op{Op: OpRegister, Name: name, Salt: cl.salts[name], Value: value}
	return cl.sign(op, fee)
}

// Update builds a value-update transaction for an owned name.
func (cl *Client) Update(name string, value []byte) *chain.Tx {
	return cl.sign(&Op{Op: OpUpdate, Name: name, Value: value}, 1)
}

// Transfer builds an ownership-transfer transaction.
func (cl *Client) Transfer(name string, newOwner chain.Address) *chain.Tx {
	return cl.sign(&Op{Op: OpTransfer, Name: name, NewOwner: newOwner}, 1)
}

// Renew builds a renewal transaction, paying the fee again.
func (cl *Client) Renew(name string) *chain.Tx {
	return cl.sign(&Op{Op: OpRenew, Name: name}, cl.cfg.RequiredFee(name))
}
