package naming

import (
	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// Event records one accepted operation in a name's history.
type Event struct {
	Height uint64
	Op     string
	Owner  chain.Address
	Value  []byte
}

// Record is the current state of one name.
type Record struct {
	Name         string
	Owner        chain.Address
	Value        []byte
	RegisteredAt uint64
	ExpiresAt    uint64 // block height at which the name lapses
	History      []Event
}

// preorderEntry tracks an unconsumed preorder commitment.
type preorderEntry struct {
	sender chain.Address
	height uint64
}

// Index is the deterministic replay of all name operations along a chain's
// best branch — Blockstack's "virtualchain" state. Rebuild after head
// changes; replay is deterministic, so all replicas agree.
type Index struct {
	cfg         Config
	height      uint64
	names       map[string]*Record
	preorders   map[cryptoutil.Hash]preorderEntry
	namespaces  map[string]*Namespace
	nsPreorders map[cryptoutil.Hash]preorderEntry
	// rejected counts ops that were syntactically valid but violated the
	// naming rules (useful in attack experiments).
	rejected int
}

// BuildIndex replays the best chain of c under the given rules.
func BuildIndex(c *chain.Chain, cfg Config) *Index {
	idx := &Index{
		cfg:         cfg,
		names:       map[string]*Record{},
		preorders:   map[cryptoutil.Hash]preorderEntry{},
		namespaces:  map[string]*Namespace{},
		nsPreorders: map[cryptoutil.Hash]preorderEntry{},
	}
	for _, b := range c.BestBlocks() {
		idx.applyBlock(b)
	}
	return idx
}

// Height returns the height of the last applied block.
func (idx *Index) Height() uint64 { return idx.height }

// Rejected returns how many rule-violating ops were ignored.
func (idx *Index) Rejected() int { return idx.rejected }

// NumNames returns how many names are currently registered (including
// expired but not yet re-registered ones).
func (idx *Index) NumNames() int { return len(idx.names) }

func (idx *Index) applyBlock(b *chain.Block) {
	h := b.Header.Height
	idx.height = h
	for _, tx := range b.Txs {
		if tx.Kind != chain.KindNameOp || tx.IsCoinbase() {
			continue
		}
		op, err := DecodeOp(tx.Payload)
		if err != nil {
			idx.rejected++
			continue
		}
		if !idx.applyOp(op, tx, h) {
			idx.rejected++
		}
	}
}

func (idx *Index) applyOp(op *Op, tx *chain.Tx, height uint64) bool {
	switch op.Op {
	case OpNamespacePreorder, OpNamespaceReveal, OpNamespaceReady:
		return idx.applyNamespaceOp(op, tx, height)
	case OpPreorder:
		if op.Commitment.IsZero() {
			return false
		}
		if _, exists := idx.preorders[op.Commitment]; exists {
			return false // first preorder wins
		}
		idx.preorders[op.Commitment] = preorderEntry{sender: tx.From, height: height}
		return true

	case OpRegister:
		if !ValidName(op.Name) {
			return false
		}
		com := Commitment(op.Name, op.Salt, tx.From)
		pre, ok := idx.preorders[com]
		if !ok || pre.sender != tx.From {
			return false
		}
		age := height - pre.height
		if age < idx.cfg.MinPreorderAge || age > idx.cfg.PreorderTTL {
			return false
		}
		if rec, exists := idx.names[op.Name]; exists && height < rec.ExpiresAt {
			return false // name taken and unexpired
		}
		fee, period, ok := idx.effectiveRules(op.Name)
		if !ok || tx.Fee < fee {
			return false
		}
		delete(idx.preorders, com)
		rec := &Record{
			Name:         op.Name,
			Owner:        tx.From,
			Value:        op.Value,
			RegisteredAt: height,
			ExpiresAt:    height + period,
		}
		rec.History = append(rec.History, Event{Height: height, Op: OpRegister, Owner: tx.From, Value: op.Value})
		idx.names[op.Name] = rec
		return true

	case OpUpdate:
		rec := idx.ownedBy(op.Name, tx.From, height)
		if rec == nil {
			return false
		}
		rec.Value = op.Value
		rec.History = append(rec.History, Event{Height: height, Op: OpUpdate, Owner: tx.From, Value: op.Value})
		return true

	case OpTransfer:
		rec := idx.ownedBy(op.Name, tx.From, height)
		if rec == nil || op.NewOwner.IsZero() {
			return false
		}
		rec.Owner = op.NewOwner
		rec.History = append(rec.History, Event{Height: height, Op: OpTransfer, Owner: op.NewOwner, Value: rec.Value})
		return true

	case OpRenew:
		rec := idx.ownedBy(op.Name, tx.From, height)
		if rec == nil {
			return false
		}
		fee, period, ok := idx.effectiveRules(op.Name)
		if !ok || tx.Fee < fee {
			return false
		}
		rec.ExpiresAt = height + period
		rec.History = append(rec.History, Event{Height: height, Op: OpRenew, Owner: tx.From, Value: rec.Value})
		return true
	}
	return false
}

// ownedBy returns the record if name exists, is unexpired at height, and is
// owned by addr.
func (idx *Index) ownedBy(name string, addr chain.Address, height uint64) *Record {
	rec, ok := idx.names[name]
	if !ok || rec.Owner != addr || height >= rec.ExpiresAt {
		return nil
	}
	return rec
}

// Resolve returns the record for a name if it is registered and unexpired
// at the index height.
func (idx *Index) Resolve(name string) (*Record, bool) {
	rec, ok := idx.names[name]
	if !ok || idx.height >= rec.ExpiresAt {
		return nil, false
	}
	return rec, true
}

// ResolveOwner is a convenience returning just the owner address.
func (idx *Index) ResolveOwner(name string) (chain.Address, bool) {
	rec, ok := idx.Resolve(name)
	if !ok {
		return chain.Address{}, false
	}
	return rec.Owner, true
}

// Names returns all currently resolvable names.
func (idx *Index) Names() []string {
	var out []string
	for n, rec := range idx.names {
		if idx.height < rec.ExpiresAt {
			out = append(out, n)
		}
	}
	return out
}
