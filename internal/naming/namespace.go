package naming

import (
	"io"
	"strings"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// Namespaces, Blockstack-style: the virtualchain supports user-created
// namespaces (".id", ".app", …) with their own pricing and lifetime rules.
// A namespace goes through the same commit/reveal discipline as a name —
// NAMESPACE_PREORDER (salted commitment), NAMESPACE_REVEAL (rules), and
// NAMESPACE_READY (opens for registrations) — so namespace identifiers
// cannot be front-run either. Names of the form "label.ns" require the
// "ns" namespace to be ready and are priced by its rules; bare names use
// the chain-wide defaults.

// Namespace op types (continuing the Op.Op vocabulary).
const (
	OpNamespacePreorder = "ns_preorder"
	OpNamespaceReveal   = "ns_reveal"
	OpNamespaceReady    = "ns_ready"
)

// Namespace is the revealed rule set of one namespace.
type Namespace struct {
	ID      string
	Creator chain.Address
	// BaseFee replaces Config.BaseFee for names in this namespace.
	BaseFee uint64
	// RegistrationPeriod replaces Config.RegistrationPeriod.
	RegistrationPeriod uint64
	RevealedAt         uint64
	Ready              bool
}

// NamespaceFee returns the cost of revealing a namespace: namespaces are
// scarcer than names, priced like the shortest names.
func (c Config) NamespaceFee() uint64 { return c.BaseFee * 256 }

// namespaceCommitment computes H(ns | salt | sender).
func namespaceCommitment(ns string, salt []byte, sender chain.Address) cryptoutil.Hash {
	return cryptoutil.SumHashes([]byte("ns:"), []byte(ns), salt, sender[:])
}

// ValidNamespaceID reports whether an identifier can name a namespace:
// 1–16 lowercase letters/digits, no separators.
func ValidNamespaceID(ns string) bool {
	if len(ns) == 0 || len(ns) > 16 {
		return false
	}
	for _, r := range ns {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		default:
			return false
		}
	}
	return true
}

// SplitName separates "label.ns" into (label, ns); names without a dot
// return ns == "".
func SplitName(name string) (label, ns string) {
	i := strings.LastIndex(name, ".")
	if i < 0 {
		return name, ""
	}
	return name[:i], name[i+1:]
}

// NamespacePreorder builds the namespace commitment transaction.
func (cl *Client) NamespacePreorder(ns string) (*chain.Tx, error) {
	salt := make([]byte, 16)
	if _, err := io.ReadFull(cl.rand, salt); err != nil {
		return nil, err
	}
	cl.salts["ns:"+ns] = salt
	op := &Op{Op: OpNamespacePreorder, Commitment: namespaceCommitment(ns, salt, cl.Address())}
	return cl.sign(op, 1), nil
}

// NamespaceReveal builds the reveal transaction carrying the namespace's
// pricing rules; it pays the namespace fee.
func (cl *Client) NamespaceReveal(ns string, baseFee, registrationPeriod uint64) *chain.Tx {
	op := &Op{
		Op:       OpNamespaceReveal,
		Name:     ns,
		Salt:     cl.salts["ns:"+ns],
		NSFee:    baseFee,
		NSPeriod: registrationPeriod,
	}
	return cl.sign(op, cl.cfg.NamespaceFee())
}

// NamespaceReady builds the launch transaction opening the namespace.
func (cl *Client) NamespaceReady(ns string) *chain.Tx {
	return cl.sign(&Op{Op: OpNamespaceReady, Name: ns}, 1)
}

// Namespace returns a revealed namespace's rules, if present.
func (idx *Index) Namespace(ns string) (*Namespace, bool) {
	n, ok := idx.namespaces[ns]
	return n, ok
}

// Namespaces lists ready namespace IDs.
func (idx *Index) Namespaces() []string {
	var out []string
	for id, n := range idx.namespaces {
		if n.Ready {
			out = append(out, id)
		}
	}
	return out
}

// effectiveRules returns the fee and registration period applying to a
// name, looking through its namespace (if any). ok is false when the name
// references a namespace that is not ready.
func (idx *Index) effectiveRules(name string) (fee uint64, period uint64, ok bool) {
	_, ns := SplitName(name)
	if ns == "" {
		return idx.cfg.RequiredFee(name), idx.cfg.RegistrationPeriod, true
	}
	n, exists := idx.namespaces[ns]
	if !exists {
		// Unclaimed suffix: the name is an ordinary dotted name under the
		// chain-wide default rules (backwards compatible — namespaces only
		// change the rules once someone registers them).
		return idx.cfg.RequiredFee(name), idx.cfg.RegistrationPeriod, true
	}
	if !n.Ready {
		return 0, 0, false
	}
	// Apply the namespace's base fee through the same length curve, using
	// the label length (the namespace suffix is fixed cost).
	label, _ := SplitName(name)
	scaled := Config{BaseFee: n.BaseFee}
	return scaled.RequiredFee(label), n.RegistrationPeriod, true
}

func (idx *Index) applyNamespaceOp(op *Op, tx *chain.Tx, height uint64) bool {
	switch op.Op {
	case OpNamespacePreorder:
		if op.Commitment.IsZero() {
			return false
		}
		if _, exists := idx.nsPreorders[op.Commitment]; exists {
			return false
		}
		idx.nsPreorders[op.Commitment] = preorderEntry{sender: tx.From, height: height}
		return true

	case OpNamespaceReveal:
		if !ValidNamespaceID(op.Name) || op.NSFee == 0 || op.NSPeriod == 0 {
			return false
		}
		com := namespaceCommitment(op.Name, op.Salt, tx.From)
		pre, ok := idx.nsPreorders[com]
		if !ok || pre.sender != tx.From {
			return false
		}
		age := height - pre.height
		if age < idx.cfg.MinPreorderAge || age > idx.cfg.PreorderTTL {
			return false
		}
		if _, taken := idx.namespaces[op.Name]; taken {
			return false
		}
		if tx.Fee < idx.cfg.NamespaceFee() {
			return false
		}
		delete(idx.nsPreorders, com)
		idx.namespaces[op.Name] = &Namespace{
			ID:                 op.Name,
			Creator:            tx.From,
			BaseFee:            op.NSFee,
			RegistrationPeriod: op.NSPeriod,
			RevealedAt:         height,
		}
		return true

	case OpNamespaceReady:
		n, ok := idx.namespaces[op.Name]
		if !ok || n.Creator != tx.From || n.Ready {
			return false
		}
		n.Ready = true
		return true
	}
	return false
}
