package naming

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

func key(t testing.TB, seed int64) *cryptoutil.KeyPair {
	t.Helper()
	kp, err := cryptoutil.GenerateKeyPair(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

// world bundles a chain and mining helper for virtualchain tests.
type world struct {
	t   *testing.T
	c   *chain.Chain
	cfg Config
}

func newWorld(t *testing.T, alloc map[chain.Address]uint64) *world {
	return &world{
		t: t,
		c: chain.NewChain(chain.Config{
			InitialDifficulty: 4,
			GenesisAlloc:      alloc,
		}),
		cfg: DefaultConfig(),
	}
}

// mine puts txs in one new block on the head.
func (w *world) mine(txs ...*chain.Tx) {
	w.t.Helper()
	ts := time.Duration(w.c.Head().Header.Time) + time.Second
	b, err := w.c.NewBlock(w.c.HeadHash(), txs, ts, chain.Address{0xEE})
	if err != nil {
		w.t.Fatal(err)
	}
	if err := w.c.AddBlock(b); err != nil {
		w.t.Fatal(err)
	}
}

func (w *world) index() *Index { return BuildIndex(w.c, w.cfg) }

func TestValidName(t *testing.T) {
	valid := []string{"alice", "a", "bob-42", "sub.domain", "x123"}
	invalid := []string{"", "Alice", "under_score", "-lead", "trail-", ".lead", "trail.", "sp ace",
		"waaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaytoolong"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("%q should be valid", n)
		}
	}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("%q should be invalid", n)
		}
	}
}

func TestRequiredFeeSchedule(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.RequiredFee("eightchr") != cfg.BaseFee {
		t.Error("8-char name should cost base fee")
	}
	if cfg.RequiredFee("abcdefg") != 2*cfg.BaseFee {
		t.Error("7-char name should cost 2x")
	}
	if cfg.RequiredFee("a") != 128*cfg.BaseFee {
		t.Error("1-char name should cost 128x")
	}
	if cfg.RequiredFee("a-very-long-name") != cfg.BaseFee {
		t.Error("long names cost base fee")
	}
}

func TestOpEncodeDecodeRoundTrip(t *testing.T) {
	op := &Op{Op: OpRegister, Name: "alice", Salt: []byte{1, 2}, Value: []byte("zone")}
	got, err := DecodeOp(op.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != op.Op || got.Name != op.Name || string(got.Value) != "zone" {
		t.Error("round trip mismatch")
	}
	if _, err := DecodeOp([]byte("{not json")); err == nil {
		t.Error("malformed payload accepted")
	}
}

func TestPreorderRegisterResolve(t *testing.T) {
	kp := key(t, 1)
	w := newWorld(t, map[chain.Address]uint64{kp.Fingerprint(): 10_000})
	cl := NewClient(kp, w.cfg, rand.New(rand.NewSource(2)), 0)

	pre, err := cl.Preorder("alice.id")
	if err != nil {
		t.Fatal(err)
	}
	w.mine(pre)
	w.mine(cl.Register("alice.id", []byte("zonefile-hash")))

	idx := w.index()
	rec, ok := idx.Resolve("alice.id")
	if !ok {
		t.Fatal("name did not resolve")
	}
	if rec.Owner != kp.Fingerprint() {
		t.Error("wrong owner")
	}
	if string(rec.Value) != "zonefile-hash" {
		t.Error("wrong value")
	}
	if owner, ok := idx.ResolveOwner("alice.id"); !ok || owner != kp.Fingerprint() {
		t.Error("ResolveOwner mismatch")
	}
	if len(idx.Names()) != 1 || idx.NumNames() != 1 {
		t.Error("names listing wrong")
	}
	if len(rec.History) != 1 || rec.History[0].Op != OpRegister {
		t.Error("history wrong")
	}
}

func TestRegisterWithoutPreorderRejected(t *testing.T) {
	kp := key(t, 1)
	w := newWorld(t, map[chain.Address]uint64{kp.Fingerprint(): 10_000})
	cl := NewClient(kp, w.cfg, rand.New(rand.NewSource(2)), 0)
	w.mine(cl.Register("alice.id", nil)) // no preorder (salt empty)
	idx := w.index()
	if _, ok := idx.Resolve("alice.id"); ok {
		t.Error("register without preorder accepted")
	}
	if idx.Rejected() == 0 {
		t.Error("rejection not counted")
	}
}

func TestRegisterSameBlockAsPreorderRejected(t *testing.T) {
	kp := key(t, 1)
	w := newWorld(t, map[chain.Address]uint64{kp.Fingerprint(): 10_000})
	cl := NewClient(kp, w.cfg, rand.New(rand.NewSource(2)), 0)
	pre, _ := cl.Preorder("alice.id")
	reg := cl.Register("alice.id", nil)
	w.mine(pre, reg) // same block: age 0 < MinPreorderAge
	if _, ok := w.index().Resolve("alice.id"); ok {
		t.Error("zero-age register accepted; front-running protection broken")
	}
}

func TestFrontRunningFailsWithoutSalt(t *testing.T) {
	// The attacker sees the victim's preorder commitment but cannot derive
	// the name; seeing the later register reveal, the attacker's own
	// register for the same name fails without a matching preorder.
	victim, attacker := key(t, 1), key(t, 2)
	w := newWorld(t, map[chain.Address]uint64{
		victim.Fingerprint():   10_000,
		attacker.Fingerprint(): 10_000,
	})
	vcl := NewClient(victim, w.cfg, rand.New(rand.NewSource(3)), 0)
	acl := NewClient(attacker, w.cfg, rand.New(rand.NewSource(4)), 0)

	pre, _ := vcl.Preorder("scarce")
	w.mine(pre)
	// Attacker races the reveal block with a register for the same name.
	w.mine(acl.Register("scarce", []byte("stolen")), vcl.Register("scarce", []byte("legit")))

	rec, ok := w.index().Resolve("scarce")
	if !ok {
		t.Fatal("name did not resolve")
	}
	if rec.Owner != victim.Fingerprint() {
		t.Error("attacker stole the name despite commitment scheme")
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	a, b := key(t, 1), key(t, 2)
	w := newWorld(t, map[chain.Address]uint64{a.Fingerprint(): 10_000, b.Fingerprint(): 10_000})
	acl := NewClient(a, w.cfg, rand.New(rand.NewSource(3)), 0)
	bcl := NewClient(b, w.cfg, rand.New(rand.NewSource(4)), 0)

	preA, _ := acl.Preorder("taken")
	preB, _ := bcl.Preorder("taken")
	w.mine(preA, preB)
	w.mine(acl.Register("taken", []byte("a")))
	w.mine(bcl.Register("taken", []byte("b")))

	rec, _ := w.index().Resolve("taken")
	if rec == nil || rec.Owner != a.Fingerprint() {
		t.Error("second registrant displaced the first")
	}
}

func TestInsufficientFeeRejected(t *testing.T) {
	kp := key(t, 1)
	w := newWorld(t, map[chain.Address]uint64{kp.Fingerprint(): 100_000})
	cl := NewClient(kp, w.cfg, rand.New(rand.NewSource(2)), 0)
	pre, _ := cl.Preorder("ab") // 2-char name: fee 64x base
	w.mine(pre)
	// Build a register with a too-small fee by hand.
	op := &Op{Op: OpRegister, Name: "ab", Salt: cl.salts["ab"], Value: nil}
	tx := &chain.Tx{Kind: chain.KindNameOp, Fee: w.cfg.BaseFee, Nonce: 1, Payload: op.Encode()}
	tx.Sign(kp)
	w.mine(tx)
	if _, ok := w.index().Resolve("ab"); ok {
		t.Error("underpaid short-name registration accepted")
	}
}

func TestUpdateTransferRenew(t *testing.T) {
	a, b := key(t, 1), key(t, 2)
	w := newWorld(t, map[chain.Address]uint64{a.Fingerprint(): 10_000, b.Fingerprint(): 10_000})
	acl := NewClient(a, w.cfg, rand.New(rand.NewSource(3)), 0)

	pre, _ := acl.Preorder("mutable")
	w.mine(pre)
	w.mine(acl.Register("mutable", []byte("v1")))
	w.mine(acl.Update("mutable", []byte("v2")))

	idx := w.index()
	rec, _ := idx.Resolve("mutable")
	if string(rec.Value) != "v2" {
		t.Fatalf("value = %q, want v2", rec.Value)
	}

	// Non-owner update must be ignored.
	bcl := NewClient(b, w.cfg, rand.New(rand.NewSource(4)), 0)
	w.mine(bcl.Update("mutable", []byte("evil")))
	rec, _ = w.index().Resolve("mutable")
	if string(rec.Value) != "v2" {
		t.Fatal("non-owner update applied")
	}

	// Transfer to b; then b can update, a cannot.
	w.mine(acl.Transfer("mutable", b.Fingerprint()))
	bcl.SetNonce(w.c.State().Nonce(b.Fingerprint()))
	w.mine(bcl.Update("mutable", []byte("v3")))
	rec, _ = w.index().Resolve("mutable")
	if rec.Owner != b.Fingerprint() || string(rec.Value) != "v3" {
		t.Fatal("transfer did not convey control")
	}
	w.mine(acl.Update("mutable", []byte("late")))
	rec, _ = w.index().Resolve("mutable")
	if string(rec.Value) != "v3" {
		t.Fatal("old owner still controls name after transfer")
	}

	// Renew extends expiry.
	before := rec.ExpiresAt
	w.mine(bcl.Renew("mutable"))
	rec, _ = w.index().Resolve("mutable")
	if rec.ExpiresAt <= before {
		t.Error("renew did not extend expiry")
	}
	if len(rec.History) < 4 {
		t.Errorf("history has %d events", len(rec.History))
	}
}

func TestExpiryAndReRegistration(t *testing.T) {
	a, b := key(t, 1), key(t, 2)
	w := newWorld(t, map[chain.Address]uint64{a.Fingerprint(): 10_000, b.Fingerprint(): 10_000})
	w.cfg.RegistrationPeriod = 3 // expire fast
	acl := NewClient(a, w.cfg, rand.New(rand.NewSource(3)), 0)

	pre, _ := acl.Preorder("fleeting")
	w.mine(pre)
	w.mine(acl.Register("fleeting", nil))
	if _, ok := w.index().Resolve("fleeting"); !ok {
		t.Fatal("fresh name should resolve")
	}
	for i := 0; i < 4; i++ {
		w.mine()
	}
	if _, ok := w.index().Resolve("fleeting"); ok {
		t.Fatal("expired name still resolves")
	}
	// b can now claim it.
	bcl := NewClient(b, w.cfg, rand.New(rand.NewSource(4)), 0)
	pre2, _ := bcl.Preorder("fleeting")
	w.mine(pre2)
	w.mine(bcl.Register("fleeting", []byte("reclaimed")))
	rec, ok := w.index().Resolve("fleeting")
	if !ok || rec.Owner != b.Fingerprint() {
		t.Error("expired name could not be re-registered")
	}
}

func TestPreorderTTL(t *testing.T) {
	kp := key(t, 1)
	w := newWorld(t, map[chain.Address]uint64{kp.Fingerprint(): 10_000})
	w.cfg.PreorderTTL = 2
	cl := NewClient(kp, w.cfg, rand.New(rand.NewSource(2)), 0)
	pre, _ := cl.Preorder("stale")
	w.mine(pre)
	for i := 0; i < 3; i++ {
		w.mine()
	}
	w.mine(cl.Register("stale", nil))
	if _, ok := w.index().Resolve("stale"); ok {
		t.Error("register accepted after preorder TTL")
	}
}

func TestIndexDeterministicAcrossReplicas(t *testing.T) {
	kp := key(t, 1)
	w := newWorld(t, map[chain.Address]uint64{kp.Fingerprint(): 10_000})
	cl := NewClient(kp, w.cfg, rand.New(rand.NewSource(2)), 0)
	pre, _ := cl.Preorder("stable")
	w.mine(pre)
	w.mine(cl.Register("stable", []byte("v")))

	i1 := BuildIndex(w.c, w.cfg)
	i2 := BuildIndex(w.c, w.cfg)
	r1, _ := i1.Resolve("stable")
	r2, _ := i2.Resolve("stable")
	if r1 == nil || r2 == nil || r1.Owner != r2.Owner || string(r1.Value) != string(r2.Value) {
		t.Error("replayed indexes disagree")
	}
}

func TestCentralizedRegistrarHappyPath(t *testing.T) {
	nw := simnet.New(1)
	reg := NewCentralizedRegistrar(nw.AddNode())
	client := NewRegistrarClient(nw.AddNode(), reg.Node().ID(), time.Minute)

	owner := chain.Address{7}
	var okReg bool
	client.Register("alice", owner, []byte("v"), func(ok bool) { okReg = ok })
	nw.RunAll()
	if !okReg {
		t.Fatal("register failed")
	}
	var rec *Record
	client.Resolve("alice", func(r *Record, found bool) { rec = r })
	nw.RunAll()
	if rec == nil || rec.Owner != owner {
		t.Fatal("resolve failed")
	}
	// Duplicate registration fails.
	client.Register("alice", chain.Address{8}, nil, func(ok bool) { okReg = ok })
	nw.RunAll()
	if okReg {
		t.Error("duplicate registration accepted")
	}
	if reg.NumNames() != 1 {
		t.Errorf("names = %d", reg.NumNames())
	}
}

func TestCentralizedRegistrarCensorshipAndSeizure(t *testing.T) {
	nw := simnet.New(2)
	reg := NewCentralizedRegistrar(nw.AddNode())
	client := NewRegistrarClient(nw.AddNode(), reg.Node().ID(), time.Minute)

	client.Register("dissident", chain.Address{1}, nil, func(bool) {})
	nw.RunAll()
	reg.Seize("dissident", chain.Address{66})
	var rec *Record
	client.Resolve("dissident", func(r *Record, found bool) { rec = r })
	nw.RunAll()
	if rec == nil || rec.Owner != (chain.Address{66}) {
		t.Error("seizure did not take effect")
	}
	reg.Ban("dissident")
	found := true
	client.Resolve("dissident", func(r *Record, f bool) { found = f })
	nw.RunAll()
	if found {
		t.Error("banned name still resolves")
	}
	var okReg bool
	client.Register("dissident", chain.Address{1}, nil, func(ok bool) { okReg = ok })
	nw.RunAll()
	if okReg {
		t.Error("banned name re-registered")
	}
}

func TestCentralizedRegistrarSPOF(t *testing.T) {
	nw := simnet.New(3)
	reg := NewCentralizedRegistrar(nw.AddNode())
	client := NewRegistrarClient(nw.AddNode(), reg.Node().ID(), 5*time.Second)
	client.Register("x", chain.Address{1}, nil, func(bool) {})
	nw.RunAll()
	reg.Node().Crash()
	found := true
	client.Resolve("x", func(r *Record, f bool) { found = f })
	nw.RunAll()
	if found {
		t.Error("resolution succeeded with registrar down — no SPOF?")
	}
}

func TestZookoTriangleScores(t *testing.T) {
	scores := TriangleScores()
	if len(scores) != 5 {
		t.Fatalf("got %d schemes", len(scores))
	}
	all := 0
	for _, s := range scores {
		if s.Caveat == "" {
			t.Errorf("%s has no caveat", s.Scheme)
		}
		if s.All() {
			all++
			if s.Scheme != "blockchain" {
				t.Errorf("%s claims all three corners; only blockchain should", s.Scheme)
			}
		}
	}
	if all != 1 {
		t.Errorf("%d schemes claim all corners, want exactly 1", all)
	}
}

// TestIndexInvariantsProperty applies random operation sequences from
// random actors and checks structural invariants: a resolvable name has
// exactly one owner, its history heights ascend, expiry is in the future,
// and replaying the chain twice produces identical state.
func TestIndexInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		actors := make([]*cryptoutil.KeyPair, 3)
		clients := make([]*Client, 3)
		alloc := map[chain.Address]uint64{}
		cfg := DefaultConfig()
		cfg.RegistrationPeriod = 6 + uint64(rng.Intn(10))
		for i := range actors {
			kp, err := cryptoutil.GenerateKeyPair(rng)
			if err != nil {
				return false
			}
			actors[i] = kp
			alloc[kp.Fingerprint()] = 1 << 30
		}
		c := chain.NewChain(chain.Config{InitialDifficulty: 4, GenesisAlloc: alloc})
		for i := range clients {
			clients[i] = NewClient(actors[i], cfg, rng, 0)
		}
		names := []string{"aa", "bb.name", "cc-long-name"}
		mine := func(txs []*chain.Tx) bool {
			ts := time.Duration(c.Head().Header.Time) + time.Second
			b, err := c.NewBlock(c.HeadHash(), txs, ts, chain.Address{1})
			if err != nil {
				return false
			}
			return c.AddBlock(b) == nil
		}
		for round := 0; round < 12; round++ {
			var txs []*chain.Tx
			for a := 0; a < 3; a++ {
				if rng.Intn(2) == 0 {
					continue
				}
				cl := clients[a]
				name := names[rng.Intn(len(names))]
				switch rng.Intn(5) {
				case 0:
					if tx, err := cl.Preorder(name); err == nil {
						txs = append(txs, tx)
					}
				case 1:
					txs = append(txs, cl.Register(name, []byte{byte(round)}))
				case 2:
					txs = append(txs, cl.Update(name, []byte{byte(round), 1}))
				case 3:
					txs = append(txs, cl.Transfer(name, actors[rng.Intn(3)].Fingerprint()))
				case 4:
					txs = append(txs, cl.Renew(name))
				}
			}
			if !mine(txs) {
				return false
			}
		}
		i1 := BuildIndex(c, cfg)
		i2 := BuildIndex(c, cfg)
		for _, n := range names {
			r1, ok1 := i1.Resolve(n)
			r2, ok2 := i2.Resolve(n)
			if ok1 != ok2 {
				return false
			}
			if !ok1 {
				continue
			}
			// Deterministic replay.
			if r1.Owner != r2.Owner || string(r1.Value) != string(r2.Value) || r1.ExpiresAt != r2.ExpiresAt {
				return false
			}
			// Unexpired and with ascending history.
			if i1.Height() >= r1.ExpiresAt {
				return false
			}
			for k := 1; k < len(r1.History); k++ {
				if r1.History[k].Height < r1.History[k-1].Height {
					return false
				}
			}
			// The current owner must appear in the history (registered or
			// received a transfer).
			found := false
			for _, ev := range r1.History {
				if ev.Owner == r1.Owner {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
