package naming

// Zooko's triangle (§3.1): a naming scheme would like names that are
// simultaneously human-meaningful, secure (the binding cannot be forged),
// and decentralized (no single authority controls the namespace).
// Pre-blockchain schemes achieve at most two; "these blockchain-based
// naming schemes manage to resolve Zooko's Triangle by providing,
// simultaneously, human-meaningful, secure, and decentralized names."

// TriangleScore is a scheme's position on Zooko's triangle.
type TriangleScore struct {
	Scheme          string
	HumanMeaningful bool
	Secure          bool
	Decentralized   bool
	// Caveat summarizes the price paid or weakness retained.
	Caveat string
}

// All reports whether the scheme achieves all three corners.
func (s TriangleScore) All() bool { return s.HumanMeaningful && s.Secure && s.Decentralized }

// TriangleScores returns the assessment of every naming scheme implemented
// in this repository. Each row is backed by executable behaviour:
//   - centralized-registrar: CentralizedRegistrar.Seize/Ban demonstrate the
//     missing decentralization.
//   - ca-pki: identity.TestCACompromiseForgesTrustedCerts demonstrates
//     centralized trust.
//   - web-of-trust: identity.WebOfTrust Sybil amplification demonstrates
//     the missing security.
//   - self-certifying: cryptoutil key fingerprints are secure and
//     decentralized but opaque.
//   - blockchain: this package's Index achieves all three, paying with
//     confirmation latency and ledger growth (experiment X1/X2).
func TriangleScores() []TriangleScore {
	return []TriangleScore{
		{
			Scheme: "centralized-registrar", HumanMeaningful: true, Secure: true, Decentralized: false,
			Caveat: "operator can seize, censor, or lose every name",
		},
		{
			Scheme: "ca-pki", HumanMeaningful: true, Secure: true, Decentralized: false,
			Caveat: "CA compromise forges any binding; revocation depends on CRL freshness",
		},
		{
			Scheme: "web-of-trust", HumanMeaningful: true, Secure: false, Decentralized: true,
			Caveat: "Sybil rings amplify one careless endorsement into full trust",
		},
		{
			Scheme: "self-certifying-key", HumanMeaningful: false, Secure: true, Decentralized: true,
			Caveat: "names are opaque fingerprints; unusable by humans",
		},
		{
			Scheme: "blockchain", HumanMeaningful: true, Secure: true, Decentralized: true,
			Caveat: "pays with confirmation latency, ledger growth, and 51% exposure",
		},
	}
}
