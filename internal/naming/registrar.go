package naming

import (
	"time"

	"repro/internal/chain"
	"repro/internal/simnet"
)

// CentralizedRegistrar is the baseline the paper's feudal Internet uses: a
// single authoritative server that registers and resolves names instantly.
// It is fast and convenient — and a single point of failure and control.
// The registrar can censor (refuse) names and seize (rewrite) them, which
// no client can detect or prevent; experiment X1 contrasts its latency and
// availability with the blockchain scheme.
type CentralizedRegistrar struct {
	rpc    *simnet.RPCNode
	names  map[string]*Record
	banned map[string]bool
	// ops counts successful registrations and resolutions.
	Registrations int
	Resolutions   int
}

// Registrar RPC methods.
const (
	MethodRegister = "registrar.register"
	MethodResolve  = "registrar.resolve"
)

type registerReq struct {
	Name  string
	Owner chain.Address
	Value []byte
}

type resolveResp struct {
	Rec   *Record
	Found bool
}

// NewCentralizedRegistrar starts a registrar service on the given node.
func NewCentralizedRegistrar(node *simnet.Node) *CentralizedRegistrar {
	r := &CentralizedRegistrar{
		rpc:    simnet.NewRPCNode(node),
		names:  map[string]*Record{},
		banned: map[string]bool{},
	}
	r.rpc.Serve(MethodRegister, r.onRegister)
	r.rpc.Serve(MethodResolve, r.onResolve)
	return r
}

// Node returns the registrar's simnet node.
func (r *CentralizedRegistrar) Node() *simnet.Node { return r.rpc.Node() }

// Ban censors a name: future registrations and resolutions fail. This is
// the unilateral control the paper's §2 describes ("access to the platform
// can be unequivocally revoked").
func (r *CentralizedRegistrar) Ban(name string) {
	r.banned[name] = true
	delete(r.names, name)
}

// Seize rewrites a name's owner — the registrar needs no one's consent.
func (r *CentralizedRegistrar) Seize(name string, newOwner chain.Address) {
	if rec, ok := r.names[name]; ok {
		rec.Owner = newOwner
	}
}

// NumNames returns the number of registered names.
func (r *CentralizedRegistrar) NumNames() int { return len(r.names) }

func (r *CentralizedRegistrar) onRegister(from simnet.NodeID, req any) (any, int) {
	rr, ok := req.(registerReq)
	if !ok || !ValidName(rr.Name) || r.banned[rr.Name] {
		return false, 8
	}
	if _, taken := r.names[rr.Name]; taken {
		return false, 8
	}
	r.names[rr.Name] = &Record{Name: rr.Name, Owner: rr.Owner, Value: rr.Value}
	r.Registrations++
	return true, 8
}

func (r *CentralizedRegistrar) onResolve(from simnet.NodeID, req any) (any, int) {
	name, ok := req.(string)
	if !ok || r.banned[name] {
		return resolveResp{}, 8
	}
	rec, found := r.names[name]
	r.Resolutions++
	return resolveResp{Rec: rec, Found: found}, 8 + 64
}

// RegistrarClient calls a CentralizedRegistrar over the simulated network.
type RegistrarClient struct {
	rpc     *simnet.RPCNode
	server  simnet.NodeID
	timeout time.Duration
}

// NewRegistrarClient creates a client on node targeting the registrar.
func NewRegistrarClient(node *simnet.Node, server simnet.NodeID, timeout time.Duration) *RegistrarClient {
	return &RegistrarClient{rpc: simnet.NewRPCNode(node), server: server, timeout: timeout}
}

// Register asks the registrar to bind name→owner. done receives success.
func (c *RegistrarClient) Register(name string, owner chain.Address, value []byte, done func(ok bool)) {
	req := registerReq{Name: name, Owner: owner, Value: value}
	c.rpc.Call(c.server, MethodRegister, req, 64+len(name)+len(value), c.timeout, func(resp any, err error) {
		ok, _ := resp.(bool)
		done(err == nil && ok)
	})
}

// Resolve looks a name up. done receives the record or found=false (also
// on timeout — an unreachable registrar resolves nothing, which is the
// availability experiment's point).
func (c *RegistrarClient) Resolve(name string, done func(rec *Record, found bool)) {
	c.rpc.Call(c.server, MethodResolve, name, 32+len(name), c.timeout, func(resp any, err error) {
		if err != nil {
			done(nil, false)
			return
		}
		rr, ok := resp.(resolveResp)
		if !ok || !rr.Found {
			done(nil, false)
			return
		}
		done(rr.Rec, true)
	})
}
