package naming

import (
	"math/rand"
	"testing"

	"repro/internal/chain"
)

func TestValidNamespaceID(t *testing.T) {
	for _, ok := range []string{"id", "app", "x1", "abcdefghijklmnop"} {
		if !ValidNamespaceID(ok) {
			t.Errorf("%q should be valid", ok)
		}
	}
	for _, bad := range []string{"", "Id", "a-b", "a.b", "abcdefghijklmnopq"} {
		if ValidNamespaceID(bad) {
			t.Errorf("%q should be invalid", bad)
		}
	}
}

func TestSplitName(t *testing.T) {
	if l, ns := SplitName("alice.id"); l != "alice" || ns != "id" {
		t.Errorf("split = %q %q", l, ns)
	}
	if l, ns := SplitName("bare"); l != "bare" || ns != "" {
		t.Errorf("split = %q %q", l, ns)
	}
	if l, ns := SplitName("a.b.c"); l != "a.b" || ns != "c" {
		t.Errorf("split = %q %q", l, ns)
	}
}

// nsWorld funds one creator and one registrant.
func nsWorld(t *testing.T) (*world, *Client, *Client) {
	t.Helper()
	creator, user := key(t, 1), key(t, 2)
	w := newWorld(t, map[chain.Address]uint64{
		creator.Fingerprint(): 1 << 30,
		user.Fingerprint():    1 << 30,
	})
	ccl := NewClient(creator, w.cfg, rand.New(rand.NewSource(3)), 0)
	ucl := NewClient(user, w.cfg, rand.New(rand.NewSource(4)), 0)
	return w, ccl, ucl
}

// launchNamespace runs preorder→reveal→ready for ns.
func launchNamespace(t *testing.T, w *world, cl *Client, ns string, baseFee, period uint64) {
	t.Helper()
	pre, err := cl.NamespacePreorder(ns)
	if err != nil {
		t.Fatal(err)
	}
	w.mine(pre)
	w.mine(cl.NamespaceReveal(ns, baseFee, period))
	w.mine(cl.NamespaceReady(ns))
}

func TestNamespaceLifecycleAndPricing(t *testing.T) {
	w, ccl, ucl := nsWorld(t)
	launchNamespace(t, w, ccl, "cheap", 1, 50)

	idx := w.index()
	ns, ok := idx.Namespace("cheap")
	if !ok || !ns.Ready || ns.BaseFee != 1 || ns.RegistrationPeriod != 50 {
		t.Fatalf("namespace state: %+v", ns)
	}
	if len(idx.Namespaces()) != 1 {
		t.Errorf("namespaces = %v", idx.Namespaces())
	}

	// Register a short label in the cheap namespace: fee follows the
	// namespace's base fee (1<<6 = 64 for a 2-char label), far below the
	// default schedule (10*64 = 640).
	pre, err := ucl.Preorder("ab.cheap")
	if err != nil {
		t.Fatal(err)
	}
	w.mine(pre)
	w.mine(ucl.RegisterWithFee("ab.cheap", []byte("v"), 64))
	rec, ok := w.index().Resolve("ab.cheap")
	if !ok {
		t.Fatal("namespace name did not resolve")
	}
	// Expiry follows the namespace's period, not the default 1000.
	if rec.ExpiresAt-rec.RegisteredAt != 50 {
		t.Errorf("period = %d, want 50", rec.ExpiresAt-rec.RegisteredAt)
	}
}

func TestNamespaceNotReadyRejectsNames(t *testing.T) {
	w, ccl, ucl := nsWorld(t)
	pre, _ := ccl.NamespacePreorder("pending")
	w.mine(pre)
	w.mine(ccl.NamespaceReveal("pending", 10, 100))
	// No ready yet: registrations in it must fail.
	npre, _ := ucl.Preorder("x.pending")
	w.mine(npre)
	w.mine(ucl.RegisterWithFee("x.pending", nil, 1<<20))
	if _, ok := w.index().Resolve("x.pending"); ok {
		t.Error("name registered in a namespace that is not ready")
	}
}

func TestNamespaceRevealRules(t *testing.T) {
	w, ccl, ucl := nsWorld(t)

	// Reveal without preorder fails.
	w.mine(ccl.NamespaceReveal("ghost", 10, 100))
	if _, ok := w.index().Namespace("ghost"); ok {
		t.Error("reveal without preorder accepted")
	}

	// Underpaid reveal fails.
	pre, _ := ccl.NamespacePreorder("under")
	w.mine(pre)
	op := &Op{Op: OpNamespaceReveal, Name: "under", Salt: ccl.salts["ns:under"], NSFee: 10, NSPeriod: 100}
	tx := &chain.Tx{Kind: chain.KindNameOp, Fee: 1, Nonce: ccl.nonce, Payload: op.Encode()}
	tx.Sign(ccl.key)
	ccl.SetNonce(ccl.nonce + 1) // the hand-built tx consumed this nonce
	w.mine(tx)
	if _, ok := w.index().Namespace("under"); ok {
		t.Error("underpaid namespace reveal accepted")
	}

	// Zero fee/period rules are invalid.
	pre2, _ := ccl.NamespacePreorder("zero")
	w.mine(pre2)
	w.mine(ccl.NamespaceReveal("zero", 0, 0))
	if _, ok := w.index().Namespace("zero"); ok {
		t.Error("zero-rule namespace accepted")
	}

	// Ready by a non-creator fails.
	launchNamespaceNoReady := func(ns string) {
		p, _ := ccl.NamespacePreorder(ns)
		w.mine(p)
		w.mine(ccl.NamespaceReveal(ns, 5, 100))
	}
	launchNamespaceNoReady("mine")
	w.mine(ucl.NamespaceReady("mine"))
	if n, _ := w.index().Namespace("mine"); n != nil && n.Ready {
		t.Error("non-creator launched the namespace")
	}
	// Creator succeeds; double-ready rejected.
	w.mine(ccl.NamespaceReady("mine"))
	w.mine(ccl.NamespaceReady("mine"))
	idx := w.index()
	if n, _ := idx.Namespace("mine"); n == nil || !n.Ready {
		t.Error("creator could not launch")
	}
}

func TestNamespaceSquattingPrevented(t *testing.T) {
	w, ccl, ucl := nsWorld(t)
	// Two parties preorder the same namespace; first reveal wins.
	preA, _ := ccl.NamespacePreorder("scarce")
	preB, _ := ucl.NamespacePreorder("scarce")
	w.mine(preA, preB)
	w.mine(ccl.NamespaceReveal("scarce", 10, 100))
	w.mine(ucl.NamespaceReveal("scarce", 99, 1))
	n, ok := w.index().Namespace("scarce")
	if !ok || n.Creator != ccl.Address() || n.BaseFee != 10 {
		t.Error("second revealer displaced the first")
	}
}

func TestUnclaimedSuffixUsesDefaults(t *testing.T) {
	// Names with dots whose suffix is not a registered namespace behave as
	// before namespaces existed (backwards compatibility).
	kp := key(t, 1)
	w := newWorld(t, map[chain.Address]uint64{kp.Fingerprint(): 10_000})
	cl := NewClient(kp, w.cfg, rand.New(rand.NewSource(2)), 0)
	pre, _ := cl.Preorder("alice.anything")
	w.mine(pre)
	w.mine(cl.Register("alice.anything", []byte("v")))
	rec, ok := w.index().Resolve("alice.anything")
	if !ok {
		t.Fatal("plain dotted name broken by namespace support")
	}
	if rec.ExpiresAt-rec.RegisteredAt != w.cfg.RegistrationPeriod {
		t.Error("default period not applied")
	}
}
