// Package naming implements blockchain-based name registration in the
// style the paper surveys in §3.1 (Namecoin, Emercoin, Blockstack): a
// preorder/register commitment scheme against front-running, updates,
// transfers, renewals with expiry, and length-based registration fees.
//
// Architecturally it follows Blockstack's "virtualchain" design: the
// blockchain (internal/chain) stores opaque, signed name operations; this
// package deterministically replays the best chain into a name index, so
// every replica derives the same name→key→value bindings. Consensus on
// names is exactly consensus on the chain.
//
// The package also contains the baselines the paper compares against: a
// centralized registrar (single server over simnet) and the Zooko-triangle
// property scores for all surveyed schemes.
package naming

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
)

// Op types.
const (
	OpPreorder = "preorder"
	OpRegister = "register"
	OpUpdate   = "update"
	OpTransfer = "transfer"
	OpRenew    = "renew"
)

// Op is one name operation, carried as the payload of a chain.Tx with
// Kind == chain.KindNameOp. The transaction signature covers the payload,
// so ops inherit the sender's authentication.
type Op struct {
	Op string `json:"op"`
	// Commitment is H(name | salt | sender) for preorders.
	Commitment cryptoutil.Hash `json:"commitment,omitempty"`
	// Name/Salt reveal the preorder on register; Name alone identifies the
	// target for update/transfer/renew.
	Name string `json:"name,omitempty"`
	Salt []byte `json:"salt,omitempty"`
	// Value is the name's bound data: conventionally the hash of a zone
	// file kept off-chain (Blockstack) or a small record (Namecoin).
	Value []byte `json:"value,omitempty"`
	// NewOwner receives the name on transfer.
	NewOwner chain.Address `json:"new_owner,omitempty"`
	// NSFee and NSPeriod carry a namespace's pricing rules on reveal.
	NSFee    uint64 `json:"ns_fee,omitempty"`
	NSPeriod uint64 `json:"ns_period,omitempty"`
}

// Encode serializes the op for a transaction payload.
func (o *Op) Encode() []byte {
	b, err := json.Marshal(o)
	if err != nil {
		panic("naming: op marshal cannot fail: " + err.Error())
	}
	return b
}

// DecodeOp parses an op payload; it returns an error for malformed bytes
// (such payloads are ignored by the index).
func DecodeOp(payload []byte) (*Op, error) {
	var o Op
	if err := json.Unmarshal(payload, &o); err != nil {
		return nil, fmt.Errorf("naming: decode op: %w", err)
	}
	return &o, nil
}

// Commitment computes the preorder commitment H(name | salt | sender).
func Commitment(name string, salt []byte, sender chain.Address) cryptoutil.Hash {
	return cryptoutil.SumHashes([]byte(name), salt, sender[:])
}

// ValidName reports whether a name is well-formed: 1–63 characters of
// lowercase letters, digits, hyphens, or dots, not beginning or ending
// with a separator.
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > 63 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= '0' && r <= '9':
		case r == '-' || r == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(name, "-") && !strings.HasSuffix(name, "-") &&
		!strings.HasPrefix(name, ".") && !strings.HasSuffix(name, ".")
}

// Config sets the virtualchain rules.
type Config struct {
	// MinPreorderAge is how many blocks a preorder must age before the
	// matching register is accepted (anti-front-running).
	MinPreorderAge uint64
	// PreorderTTL is how many blocks a preorder stays claimable.
	PreorderTTL uint64
	// RegistrationPeriod is the name lifetime in blocks; renewals extend
	// by the same amount.
	RegistrationPeriod uint64
	// BaseFee is the registration fee for long names; shorter names cost
	// exponentially more (squatting deterrent, as deployed systems do).
	BaseFee uint64
}

// DefaultConfig returns the rules used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		MinPreorderAge:     1,
		PreorderTTL:        144,
		RegistrationPeriod: 1000,
		BaseFee:            10,
	}
}

// RequiredFee returns the registration/renewal fee for a name: BaseFee for
// names of 8+ characters, doubling for each character shorter.
func (c Config) RequiredFee(name string) uint64 {
	n := len(name)
	if n >= 8 {
		return c.BaseFee
	}
	fee := c.BaseFee
	for i := n; i < 8; i++ {
		fee *= 2
	}
	return fee
}
