package experiments

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// LedgerGrowth is experiment X13: it quantifies §3.1's "endless ledger
// problem" and the two mitigations this repository implements. A chain
// runs under a steady transaction load; at checkpoints we record the full
// ledger size, the footprint of an SPV light client following the same
// chain (headers only), and the full node's retained state count with
// checkpoint compaction. The ledger grows without bound; the mitigations
// stay (nearly) flat.
func LedgerGrowth(seed int64, hours int, txPerBlock int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X13: endless-ledger growth under load (%d tx/block, 10s blocks)", txPerBlock),
		Headers: []string{"Elapsed", "Blocks", "Full Ledger", "SPV Client (headers)", "States Held (compact=100)"},
	}
	nw := simnet.New(seed)
	kp, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		panic(err)
	}
	spacing := 10 * time.Second
	cfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{kp.Fingerprint(): 1 << 50},
	}
	miner := chain.NewMiner(nw.AddNode(), chain.NewChain(cfg), cryptoutil.SumHash([]byte("m")),
		float64(cfg.InitialDifficulty)/spacing.Seconds())
	light := chain.NewHeaderChain(cfg)
	wallet := chain.NewWallet(kp, 0)
	miner.Start()

	// Steady tx load: refill the mempool on every new block.
	miner.Chain().OnHead(func(b *chain.Block) {
		for i := 0; i < txPerBlock; i++ {
			miner.Pool().Add(wallet.Pay(chain.Address{byte(i)}, 1, 1))
		}
	})

	checkEvery := time.Hour
	for h := 1; h <= hours; h++ {
		nw.Run(time.Duration(h) * checkEvery)
		c := miner.Chain()
		light.Sync(c)
		c.Compact(100)
		t.Add(fmt.Sprintf("%dh", h),
			c.Height(),
			byteCount(c.TotalBytes()),
			byteCount(light.HeaderBytes()),
			c.StatesHeld())
	}
	miner.Stop()
	return t
}
