package experiments

import (
	"strings"

	"repro/internal/core"
	"repro/internal/feasibility"
	"repro/internal/naming"
)

// Table1 regenerates the paper's Table 1 (decentralization problems ×
// recent projects) from the core registry, adding the column mapping each
// row to this repository's implementation (experiment E1).
func Table1() *Table {
	t := &Table{
		Title:   "Table 1: Decentralization problems and examples of recent projects",
		Headers: []string{"Decentralization Problem", "Recent Projects", "Implemented By"},
	}
	for _, r := range core.Table1() {
		t.Add(r.Problem, strings.Join(r.Projects, ", "), r.Implementation)
	}
	return t
}

// Table2 regenerates the paper's Table 2 (surveyed storage systems) from
// the core registry (experiment E2). The incentive mechanism of every row
// is executed against live providers by RunIncentiveDemos.
func Table2() *Table {
	t := &Table{
		Title:   "Table 2: Comparison of Surveyed Storage Systems",
		Headers: []string{"System", "Blockchain Usage", "Incentive Scheme", "Implemented By"},
	}
	for _, r := range core.Table2() {
		t.Add(r.System, r.BlockchainUsage, r.IncentiveScheme, r.Implementation)
	}
	return t
}

// Table3 regenerates the paper's Table 3 (estimated capacity of global
// cloud infrastructure versus unused user-device resources) from the
// feasibility model with the paper's constants (experiment E3).
func Table3() *Table {
	t := &Table{
		Title:   "Table 3: Estimated capacity of global cloud infrastructure and unused user resources",
		Headers: []string{"Resource", "Cloud Infrastructure", "User Devices", "Sufficient"},
	}
	for _, r := range feasibility.Table3(feasibility.PaperCloud(), feasibility.PaperDevices()) {
		t.Add(r.Resource, r.Cloud, r.Devices, r.Sufficient)
	}
	return t
}

// ZookoTable renders the Zooko-triangle scores of every implemented naming
// scheme (§3.1).
func ZookoTable() *Table {
	t := &Table{
		Title:   "Zooko's triangle: which corners each naming scheme achieves",
		Headers: []string{"Scheme", "Human-Meaningful", "Secure", "Decentralized", "Caveat"},
	}
	for _, s := range naming.TriangleScores() {
		t.Add(s.Scheme, s.HumanMeaningful, s.Secure, s.Decentralized, s.Caveat)
	}
	return t
}
