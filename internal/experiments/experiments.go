// Package experiments contains the runnable harnesses behind every table
// and claim-backed experiment in EXPERIMENTS.md: the paper's three tables
// (E1–E3) and the quantitative extensions X1–X7 that measure the §3
// qualitative claims on this repository's implementations. Each experiment
// is deterministic given its seed and returns printable row structures;
// cmd/feudalism and the root benchmark suite drive them.
package experiments

import (
	"fmt"
	"strings"
)

// Table renders rows of columns as an aligned text table with a header —
// the common output format of every experiment.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
