package experiments

import (
	"fmt"
	"time"
)

// Experiment is one registered, runnable experiment. Run produces the
// single-seed table; Multi, when non-nil, is the multi-seed aggregated
// variant (deterministic experiments leave it nil); Tiny is a scaled-down
// run used by the test suite to exercise every entry quickly.
type Experiment struct {
	ID   string
	Desc string
	Run  func(seed int64) fmt.Stringer
	// Multi aggregates over a batch of seeds on `workers` parallel trial
	// runners; nil means the experiment is deterministic and -trials is
	// ignored.
	Multi func(seeds []int64, workers int) fmt.Stringer
	// Tiny is the same experiment at test scale. Never nil.
	Tiny func(seed int64) fmt.Stringer
}

// Registry returns every experiment in presentation order. cmd/feudalism
// drives Run/Multi; the registry tests drive Tiny.
func Registry() []Experiment {
	return []Experiment{
		{
			ID: "naming-throughput", Desc: "X1: registration latency/throughput, centralized vs blockchain",
			Run:  func(seed int64) fmt.Stringer { return NamingSchemes(seed, 20) },
			Tiny: func(seed int64) fmt.Stringer { return NamingSchemes(seed, 3) },
		},
		{
			ID: "fifty-one", Desc: "X2: private-branch (51%) attack success vs hashrate share",
			Run: func(seed int64) fmt.Stringer { return FiftyOnePercent(seed, 20, 18) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return FiftyOnePercentMulti(seeds, workers, 20, 18)
			},
			Tiny: func(seed int64) fmt.Stringer { return FiftyOnePercent(seed, 2, 6) },
		},
		{
			ID: "comm-availability", Desc: "X3: message deliverability vs failed servers, four models",
			Run: func(seed int64) fmt.Stringer {
				return CommAvailability(seed, 10, []float64{0, 0.1, 0.2, 0.3, 0.5})
			},
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return CommAvailabilityMulti(seeds, workers, 10, []float64{0, 0.1, 0.2, 0.3, 0.5})
			},
			Tiny: func(seed int64) fmt.Stringer { return CommAvailability(seed, 3, []float64{0, 0.5}) },
		},
		{
			ID: "social-p2p", Desc: "X4: social-P2P delivery vs friend degree and uptime",
			Run: func(seed int64) fmt.Stringer {
				return SocialP2P(seed, 30, []int{2, 4, 8}, []float64{0.5, 0.75, 0.95})
			},
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return SocialP2PMulti(seeds, workers, 30, []int{2, 4, 8}, []float64{0.5, 0.75, 0.95})
			},
			Tiny: func(seed int64) fmt.Stringer { return SocialP2P(seed, 6, []int{2}, []float64{0.75}) },
		},
		{
			ID: "metadata", Desc: "X4b: per-message metadata exposure by model",
			Run:  func(seed int64) fmt.Stringer { return MetadataExposureTable(10) },
			Tiny: func(seed int64) fmt.Stringer { return MetadataExposureTable(3) },
		},
		{
			ID: "storage-durability", Desc: "X5: object survival under permanent provider failures",
			Run: func(seed int64) fmt.Stringer {
				return StorageDurability(seed, 20, 30, 6*time.Hour, 0.5)
			},
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return StorageDurabilityMulti(seeds, workers, 20, 30, 6*time.Hour, 0.5)
			},
			Tiny: func(seed int64) fmt.Stringer { return StorageDurability(seed, 3, 8, time.Hour, 0.5) },
		},
		{
			ID: "storage-attacks", Desc: "X6: proof mechanisms vs provider attacks",
			Run:  func(seed int64) fmt.Stringer { return StorageAttacks(seed) },
			Tiny: func(seed int64) fmt.Stringer { return StorageAttacks(seed) },
		},
		{
			ID: "incentives", Desc: "E2 demo: every Table 2 incentive scheme executed",
			Run:  func(seed int64) fmt.Stringer { return RunIncentiveDemos(seed) },
			Tiny: func(seed int64) fmt.Stringer { return RunIncentiveDemos(seed) },
		},
		{
			ID: "hostless-web", Desc: "X7: website availability, client-server vs hostless",
			Run: func(seed int64) fmt.Stringer { return HostlessWeb(seed, 40) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return HostlessWebMulti(seeds, workers, 40)
			},
			Tiny: func(seed int64) fmt.Stringer { return HostlessWeb(seed, 5) },
		},
		{
			ID: "usenet-load", Desc: "X8: per-server cost growth, Usenet flood vs federated-home",
			Run: func(seed int64) fmt.Stringer {
				return UsenetLoad(seed, []int{5, 10, 20, 40}, 20, 512)
			},
			Tiny: func(seed int64) fmt.Stringer { return UsenetLoad(seed, []int{3}, 4, 128) },
		},
		{
			ID: "abuse", Desc: "X9: spam exposure vs moderation coverage, three models",
			Run: func(seed int64) fmt.Stringer {
				return AbuseContainment(seed, 20, []float64{0, 0.25, 0.5, 0.75, 1})
			},
			Tiny: func(seed int64) fmt.Stringer { return AbuseContainment(seed, 5, []float64{0, 1}) },
		},
		{
			ID: "selfish-mining", Desc: "X10: revenue share, honest vs selfish withholding strategy",
			Run: func(seed int64) fmt.Stringer { return SelfishMining(seed, 12, 150) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return SelfishMiningMulti(seeds, workers, 12, 150)
			},
			Tiny: func(seed int64) fmt.Stringer { return SelfishMining(seed, 2, 20) },
		},
		{
			ID: "dht-quality", Desc: "X11: DHT lookups on device-grade vs datacenter infrastructure",
			Run: func(seed int64) fmt.Stringer { return DHTQuality(seed, 40, 40) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return DHTQualityMulti(seeds, workers, 40, 40)
			},
			Tiny: func(seed int64) fmt.Stringer { return DHTQuality(seed, 8, 6) },
		},
		{
			ID: "wot-sybil", Desc: "X12: web-of-trust Sybil amplification vs ring size",
			Run: func(seed int64) fmt.Stringer {
				return WoTSybil(seed, 12, []int{10, 50, 200, 1000})
			},
			Tiny: func(seed int64) fmt.Stringer { return WoTSybil(seed, 4, []int{10}) },
		},
		{
			ID: "ledger-growth", Desc: "X13: endless-ledger growth vs SPV and compaction",
			Run:  func(seed int64) fmt.Stringer { return LedgerGrowth(seed, 6, 20) },
			Tiny: func(seed int64) fmt.Stringer { return LedgerGrowth(seed, 2, 5) },
		},
		{
			ID: "sensitivity", Desc: "E3 sensitivity: perturbing the §4 feasibility constants",
			Run:  func(seed int64) fmt.Stringer { return FeasibilitySensitivity() },
			Tiny: func(seed int64) fmt.Stringer { return FeasibilitySensitivity() },
		},
		{
			ID: "x14", Desc: "X14: recovery matrix, subsystem × fault scenario",
			Run: func(seed int64) fmt.Stringer { return RecoveryMatrix(seed) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return RecoveryMatrixMulti(seeds, workers)
			},
			Tiny: func(seed int64) fmt.Stringer { return RecoveryMatrixTiny(seed) },
		},
		{
			ID: "x15", Desc: "X15: scale sweep, subsystem × population up to 10k nodes",
			Run: func(seed int64) fmt.Stringer { return ScaleSweep(seed, false) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return ScaleSweepMulti(seeds, workers, false)
			},
			Tiny: func(seed int64) fmt.Stringer { return ScaleSweep(seed, true) },
		},
		{
			ID: "x16", Desc: "X16: resilience matrix, subsystem × fault scenario, naive vs adaptive transport",
			Run: func(seed int64) fmt.Stringer { return ResilienceMatrix(seed) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return ResilienceMatrixMulti(seeds, workers)
			},
			Tiny: func(seed int64) fmt.Stringer { return ResilienceMatrixTiny(seed) },
		},
		{
			ID: "x17", Desc: "X17: overlapping-upload dedup and storage tiering, fixed vs content-defined chunking",
			Run: func(seed int64) fmt.Stringer { return DedupTiering(seed) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return DedupTieringMulti(seeds, workers)
			},
			Tiny: func(seed int64) fmt.Stringer { return DedupTieringTiny(seed) },
		},
		{
			ID: "x18", Desc: "X18: flash-crowd workload, feudal single server vs replicated federation vs p2p webapp",
			Run: func(seed int64) fmt.Stringer { return WorkloadContention(seed, "flash") },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return WorkloadContentionMulti(seeds, workers)
			},
			Tiny: func(seed int64) fmt.Stringer { return WorkloadContentionTiny(seed) },
		},
		{
			ID: "x19", Desc: "X19: flash-crowd replay, static-K vs adaptive popularity-driven replication with nearest-replica routing",
			Run: func(seed int64) fmt.Stringer { return AdaptiveReplication(seed) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return AdaptiveReplicationMulti(seeds, workers)
			},
			Tiny: func(seed int64) fmt.Stringer { return AdaptiveReplicationTiny(seed) },
		},
		{
			ID: "x20", Desc: "X20: flash-crowd saturation, naive vs overload-controlled serving on feudal origin and replic swarm",
			Run: func(seed int64) fmt.Stringer { return OverloadControl(seed) },
			Multi: func(seeds []int64, workers int) fmt.Stringer {
				return OverloadControlMulti(seeds, workers)
			},
			Tiny: func(seed int64) fmt.Stringer { return OverloadControlTiny(seed) },
		},
	}
}

// Find returns the registered experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
