package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// x17Bench runs the X17 dedup/tiering matrix as a multi-trial bench entry
// at the tiny world sizes and returns the snapshot JSON.
func x17Bench(t *testing.T, workers int) []byte {
	t.Helper()
	e := Experiment{
		ID:  "x17",
		Run: func(seed int64) fmt.Stringer { return DedupTieringTiny(seed) },
		Multi: func(seeds []int64, workers int) fmt.Stringer {
			agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
				return dedupMatrix(seed, true)
			})
			return agg.Table("X17 (tiny multi)", "Workload/chunking", "%.2f")
		},
		Tiny: func(seed int64) fmt.Stringer { return DedupTieringTiny(seed) },
	}
	entry := runBenchEntry(e, BenchOptions{Seed: 1717, Trials: 3, Workers: workers, Scale: "full"}.withDefaults())
	var buf bytes.Buffer
	if err := entry.Metrics.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestX17BenchGolden pins the fixed-seed X17 observability snapshot —
// including the storage.tier.* hit counters, storage.dedup.ratio gauges
// and storage.gc.reclaimed_bytes, which encode every tiering decision the
// stores made — byte for byte: identical across repeated runs, across
// trial worker counts, and against the checked-in golden file. Regenerate
// with `go test ./internal/experiments -run X17BenchGolden -update` after
// an intentional behaviour change.
func TestX17BenchGolden(t *testing.T) {
	serial := x17Bench(t, 1)
	parallel := x17Bench(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("X17 snapshot differs between 1 and 4 trial workers")
	}

	golden := filepath.Join("testdata", "x17_bench_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("X17 snapshot drifted from %s; if intentional, rerun with -update\ngot:\n%s", golden, serial)
	}
}

// TestX17CDCBeatsFixed pins the experiment's headline claim: on the
// edited-document population — where insertions shift chunk alignment —
// content-defined chunking deduplicates more than 1.5× better than
// fixed-size chunking, while on the alignment-preserving shared-prefix
// population both modes dedup substantially (ratio > 1.5 absolute).
func TestX17CDCBeatsFixed(t *testing.T) {
	m := dedupMatrix(4217, true)
	row := func(name string) int {
		for r, rn := range m.Rows {
			if rn == name {
				return r
			}
		}
		t.Fatalf("row %s not found", name)
		return -1
	}
	fixed := m.Vals[row("edited-doc fixed")][0]
	cdc := m.Vals[row("edited-doc cdc")][0]
	if !(cdc > 1.5*fixed) {
		t.Errorf("edited-doc: CDC dedup ratio %.2f not >1.5× fixed %.2f", cdc, fixed)
	}
	for _, name := range []string{"shared-prefix fixed", "shared-prefix cdc"} {
		if v := m.Vals[row(name)][0]; v <= 1.5 {
			t.Errorf("%s: dedup ratio %.2f, want > 1.5 (aligned prefixes should dedup in both modes)", name, v)
		}
	}
	// Tiering and GC must actually have engaged: every row saw memory-tier
	// hits, and the release+filler phase reclaimed disk in every world.
	for r, name := range m.Rows {
		if m.Vals[r][1] <= 0 {
			t.Errorf("%s: no memory-tier hits recorded", name)
		}
		if m.Vals[r][3] <= 0 {
			t.Errorf("%s: GC reclaimed nothing under capacity pressure", name)
		}
	}
}
