package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/gossip"
	"repro/internal/simnet"
)

// X15: the scale sweep. The paper's thesis is population-dependent — the
// IPFS measurement literature shows DHT and gossip behaviour only becomes
// interesting at thousands of peers, and the ROADMAP north-star demands
// runs "as fast as the hardware allows" — so this experiment drives each
// substrate subsystem across N ∈ {100, 1k, 5k, 10k} and reports, per cell,
// the convergence rate (did the protocol still do its job at that
// population?) and the delivered message volume, plus wall time and
// allocations when timing is enabled. The convergence and traffic numbers
// are seed-deterministic and flow into the bench gate; the timing columns
// are machine-dependent and therefore opt-in (cmd/feudalism -timing).

// wallClock supplies monotonic wall-clock nanoseconds for X15's timing
// columns. It is nil by default so everything under internal/ stays free of
// time.Now (the determinism lint enforces this); cmd/feudalism injects the
// real clock behind its -timing flag.
var wallClock func() int64

// SetWallClock installs the wall-clock source used by the X15 table's
// timing columns (nil disables them). The injected clock affects only the
// rendered text, never the exported metrics, so bench output stays
// byte-reproducible regardless.
func SetWallClock(f func() int64) { wallClock = f }

// ScaleTiers returns the sweep's population axis: the full experiment runs
// 100 → 10,000 nodes, the tiny variant keeps the same shape at test scale.
func ScaleTiers(tiny bool) []int {
	if tiny {
		return []int{30, 60}
	}
	return []int{100, 1000, 5000, 10000}
}

// ScaleSubsystems returns the sweep's subsystem axis, in presentation
// order: the raw RPC substrate, then the two discovery/dissemination
// protocols built on it.
func ScaleSubsystems() []string { return []string{"simnet", "dht", "gossip"} }

// ScaleCell is one (subsystem, N) measurement.
type ScaleCell struct {
	N         int
	Converged float64 // fraction of probes satisfied, in [0, 1]
	Messages  int64   // substrate messages delivered during the run
	WallNS    int64   // wall time; -1 when timing is disabled
	Allocs    uint64  // heap allocations; meaningful only with timing
}

// ScaleCellRun executes one cell of the sweep. Exported so the scale-test
// matrix drives exactly the experiment's workloads.
func ScaleCellRun(subsystem string, seed int64, n int) ScaleCell {
	return scaleCellOn(subsystem, n, func() *simnet.Network { return simnet.New(seed) })
}

// ScaleCellRunSharded is ScaleCellRun on the sharded engine: the same
// workloads on a network built with NetworkConfig{Shards, Workers}. The
// huge tiers (ScaleHugeTiers) run through this path; results are identical
// at every (Shards, Workers) setting but differ from the single-heap
// engine's (substrate draws come from per-node streams there — see
// simnet/shard.go), so sharded and unsharded cells are never compared.
func ScaleCellRunSharded(subsystem string, seed int64, n, shards, workers int) ScaleCell {
	return scaleCellOn(subsystem, n, func() *simnet.Network {
		return simnet.NewWithConfig(simnet.NetworkConfig{Seed: seed, Shards: shards, Workers: workers})
	})
}

func scaleCellOn(subsystem string, n int, mk func() *simnet.Network) ScaleCell {
	switch subsystem {
	case "simnet":
		return timedCell(n, func() (float64, int64) { return scaleSimnet(mk(), n) })
	case "dht":
		return timedCell(n, func() (float64, int64) { return scaleDHT(mk(), n) })
	case "gossip":
		return timedCell(n, func() (float64, int64) { return scaleGossip(mk(), n) })
	}
	panic("x15: unknown subsystem " + subsystem)
}

// timedCell wraps one cell workload with the opt-in wall/alloc measurement.
func timedCell(n int, run func() (float64, int64)) ScaleCell {
	cell := ScaleCell{N: n, WallNS: -1}
	var before runtime.MemStats
	var start int64
	if wallClock != nil {
		runtime.ReadMemStats(&before)
		start = wallClock()
	}
	cell.Converged, cell.Messages = run()
	if wallClock != nil {
		cell.WallNS = wallClock() - start
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		cell.Allocs = after.Mallocs - before.Mallocs
	}
	return cell
}

// scaleSimnet exercises the raw RPC hot path: every node echoes a few
// calls off its ring neighbour. Convergence is the fraction of calls that
// complete; at any population the substrate should be lossless.
func scaleSimnet(nw *simnet.Network, n int) (float64, int64) {
	const callsPerNode = 3
	rpcs := make([]*simnet.RPCNode, n)
	for i := range rpcs {
		rpcs[i] = simnet.NewRPCNode(nw.AddNode())
		rpcs[i].Serve("x15.echo", func(from simnet.NodeID, req any) (any, int) {
			return req, 8
		})
	}
	ok := 0
	for i, r := range rpcs {
		to := rpcs[(i+1)%n].Node().ID()
		for c := 0; c < callsPerNode; c++ {
			r.Call(to, "x15.echo", c, 16, 5*time.Second, func(_ any, err error) {
				if err == nil {
					ok++
				}
			})
		}
	}
	nw.RunAll()
	return float64(ok) / float64(n*callsPerNode), delivered(nw)
}

// scaleDHT grows a Kademlia population to N, stores a key set, and probes
// whether distant readers can still resolve every key. Small k keeps the
// per-node state realistic for device-grade participants.
func scaleDHT(nw *simnet.Network, n int) (float64, int64) {
	const (
		nKeys    = 12
		nReaders = 24
	)
	cfg := dht.Config{K: 8, Alpha: 3, RequestTimeout: 2 * time.Second}
	peers := make([]*dht.Peer, n)
	for i := range peers {
		peers[i] = dht.NewPeer(nw.AddNode(), dht.Key{}, cfg)
	}
	// Staggered joins through the anchor: 20 ms apart keeps concurrent
	// bootstrap traffic bounded while the virtual clock absorbs the rest.
	for i := 1; i < len(peers); i++ {
		p := peers[i]
		nw.After(time.Duration(i)*20*time.Millisecond, func() {
			p.Bootstrap(peers[0].Contact(), nil)
		})
	}
	nw.RunAll()
	keys := make([]dht.Key, nKeys)
	for i := range keys {
		keys[i] = cryptoutil.SumHash([]byte(fmt.Sprintf("x15-key-%d", i)))
		peers[0].Put(keys[i], []byte{byte(i)}, nil)
	}
	nw.RunAll()

	ok, total := 0, 0
	stride := n / nReaders
	if stride == 0 {
		stride = 1
	}
	for r := 1; r < n && total < nReaders*nKeys; r += stride {
		for _, k := range keys {
			total++
			peers[r].Get(k, func(_ []byte, found bool) {
				if found {
					ok++
				}
			})
		}
	}
	nw.RunAll()
	return float64(ok) / float64(total), delivered(nw)
}

// scaleGossip floods items over a chord-style overlay (ring + power-of-two
// long links, out-degree ≤ 8, so diameter stays O(log N)) with anti-entropy
// repair, and measures the fraction of (member, item) pairs delivered.
func scaleGossip(nw *simnet.Network, n int) (float64, int64) {
	const nItems = 8
	members := make([]*gossip.Member, n)
	ids := make([]simnet.NodeID, n)
	for i := range members {
		node := nw.AddNode()
		ids[i] = node.ID()
		members[i] = gossip.NewMember(node, gossip.Config{Fanout: 3, AntiEntropyInterval: 30 * time.Second})
	}
	offsets := chordOffsets(n)
	for i, m := range members {
		peers := make([]simnet.NodeID, 0, len(offsets))
		for _, off := range offsets {
			peers = append(peers, ids[(i+off)%n])
		}
		m.SetPeers(peers)
	}
	items := make([]gossip.Item, nItems)
	for i := range items {
		data := fmt.Sprintf("x15-item-%d", i)
		items[i] = gossip.Item{ID: cryptoutil.SumHash([]byte(data)), Data: data, Size: len(data)}
		it := items[i]
		src := members[(i*n)/nItems]
		nw.Schedule(time.Duration(i)*15*time.Second, func() { src.Publish(it) })
	}
	nw.Run(5 * time.Minute)

	have, total := 0, 0
	for _, m := range members {
		for _, it := range items {
			total++
			if m.Has(it.ID) {
				have++
			}
		}
	}
	return float64(have) / float64(total), delivered(nw)
}

// chordOffsets returns ring steps {1, 2, 4, ...} capped at 8 links and at
// the population size, giving every member a deterministic small-world
// out-neighbourhood.
func chordOffsets(n int) []int {
	var offs []int
	for off := 1; off < n && len(offs) < 8; off *= 2 {
		offs = append(offs, off)
	}
	if len(offs) == 0 {
		offs = []int{0}
	}
	return offs
}

// delivered reads the substrate's delivered-message total for the run.
func delivered(nw *simnet.Network) int64 { return nw.Trace().Delivered }

// scaleMatrix is the numeric core of X15: rows are subsystems, columns
// alternate "N=<tier> conv%" and "N=<tier> msg/node" so one Matrix carries
// both measures through AggregateSeeds. Timing never enters the matrix —
// it is machine-dependent and would poison the multi-seed aggregates.
func scaleMatrix(seed int64, tiny bool) Matrix {
	tiers := ScaleTiers(tiny)
	subs := ScaleSubsystems()
	cols := make([]string, 0, 2*len(tiers))
	for _, n := range tiers {
		cols = append(cols, fmt.Sprintf("N=%d conv%%", n), fmt.Sprintf("N=%d msg/node", n))
	}
	m := NewMatrix(subs, cols)
	for r, sub := range subs {
		for c, n := range tiers {
			cell := ScaleCellRun(sub, seed, n)
			m.Vals[r][2*c] = cell.Converged * 100
			m.Vals[r][2*c+1] = float64(cell.Messages) / float64(n)
		}
	}
	return m
}

// ScaleSweep renders the single-seed X15 table. With a wall clock installed
// (cmd/feudalism -timing) each cell also shows wall seconds and heap
// allocations; without one the output is a pure function of the seed.
func ScaleSweep(seed int64, tiny bool) *Table {
	tiers := ScaleTiers(tiny)
	subs := ScaleSubsystems()
	headers := []string{"Subsystem"}
	for _, n := range tiers {
		headers = append(headers, fmt.Sprintf("N=%d", n))
	}
	title := "X15: scale sweep — convergence %, messages/node per subsystem × population"
	if tiny {
		title = "X15 (tiny): scale sweep"
	}
	t := &Table{Title: title, Headers: headers}
	for _, sub := range subs {
		row := []any{sub}
		for _, n := range tiers {
			cell := ScaleCellRun(sub, seed, n)
			text := fmt.Sprintf("%.1f%% %.0fm/n", cell.Converged*100, float64(cell.Messages)/float64(n))
			if cell.WallNS >= 0 {
				text += fmt.Sprintf(" %.2fs %s", float64(cell.WallNS)/1e9, humanCount(cell.Allocs))
			}
			row = append(row, text)
		}
		t.Add(row...)
	}
	return t
}

// ScaleSweepMulti is X15 aggregated over a batch of seeds on `workers`
// parallel trial runners (0 = GOMAXPROCS).
func ScaleSweepMulti(seeds []int64, workers int, tiny bool) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return scaleMatrix(seed, tiny)
	})
	formats := make([]string, 0, len(agg.Cols))
	for range ScaleTiers(tiny) {
		formats = append(formats, "%.1f%%", "%.0f")
	}
	return agg.Table(
		"X15: scale sweep — convergence %, messages/node per subsystem × population",
		"Subsystem", formats...)
}

// humanCount renders an allocation count compactly (12.3k, 4.5M).
func humanCount(v uint64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fMalloc", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fkalloc", float64(v)/1e3)
	}
	return fmt.Sprintf("%dalloc", v)
}
