package experiments

import (
	"testing"
	"time"

	"repro/internal/replic"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// TestX18P2PWorkloadUnderFaults drives the X18 p2p-webapp arm — under
// the full flash-crowd workload — through the canonical five-scenario
// fault battery, with the client population fault-eligible (author and
// tracker are anchors, as in the X14/X16 conventions). Two invariants
// per scenario:
//
//   - a mid-fault availability floor: even with clients crashing,
//     partitioned, or on degraded links *while the flash crowd is
//     arriving*, the swarm keeps answering a bounded fraction of
//     requests within the SLA
//   - post-heal recovery: requests scheduled after the canonical
//     recovery point (horizon·4/5, after every battery plan has healed)
//     succeed at near-clean rates
//
// Floors carry margin below the measured values (seed 42: mid-fault
// 40–64% by scenario, post-heal ≥ 96%) so they gate regressions, not
// noise; the runs are fully deterministic, so any movement is a real
// behaviour change.
func TestX18P2PWorkloadUnderFaults(t *testing.T) {
	const seed = 42
	sp := x18SpecFor(true)
	reqs, rs := x18Stream(seed, sp, "flash")
	midFloor := map[string]float64{
		"clean":           0, // no fault window; overall gate below covers it
		"lossy-edge":      45,
		"flash-partition": 25,
		"rolling-churn":   40,
		"corrupt-10pct":   45,
	}
	recPoint := fault.RecoveryPoint(sp.horizon)
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cell, outcomes := x18P2P(seed, sp, reqs, rs, &sc)
			if len(outcomes) == 0 {
				t.Fatal("arm setup failed")
			}
			// The battery's step times are fixed fractions of the horizon,
			// so a plan built over any non-empty population has the same
			// active window as the one applied inside the arm.
			plan := sc.Build(seed, []simnet.NodeID{1, 2, 3, 4}, sp.horizon)
			ws, we := plan.Start(), plan.End()
			share := func(from, to time.Duration) (float64, int) {
				var total, ok float64
				for _, o := range outcomes {
					if o.at >= from && o.at < to {
						total++
						if o.ok {
							ok++
						}
					}
				}
				if total == 0 {
					return 0, 0
				}
				return 100 * ok / total, int(total)
			}
			if we > ws {
				mid, n := share(ws, we)
				if mid < midFloor[sc.Name] {
					t.Errorf("mid-fault availability %.1f%% over %d requests, floor %.0f%%",
						mid, n, midFloor[sc.Name])
				}
			}
			post, n := share(recPoint, sp.horizon)
			if post < 90 {
				t.Errorf("post-heal availability %.1f%% over %d requests, want ≥ 90%%", post, n)
			}
			if sc.Name == "clean" && cell.avail < 0.95 {
				t.Errorf("clean-scenario availability %.1f%%, want ≥ 95%%", cell.avail*100)
			}
		})
	}
}

// TestX19AdaptiveUnderFaults drives the X19 adaptive-replication arm —
// under the full flash-crowd schedule — through the canonical
// five-scenario battery plus the sustained-churn stressor, with every
// provider and client fault-eligible (the directory is the only anchor,
// the tracker convention X18 set). Four invariants per scenario:
//
//   - a mid-fault availability floor while the fault window overlaps the
//     flash crowd; flash-partition is the exception — it cuts the
//     clients from the directory rendezvous during the spike itself, and
//     with no holder resolution there is nothing to route to, so the arm
//     only owes recovery, not a mid-partition floor (measured ≈1%: the
//     directory is a tracker-style single point while partitioned)
//   - post-heal recovery: requests after the canonical recovery point
//     succeed at near-clean rates (sustained-churn never heals, so its
//     bar is lower)
//   - the replica floor holds everywhere: no timeline sample ever dips
//     below objects×K registrations, whatever crashes
//   - the set garbage-collects: once the spike decays, the final
//     (post-grace) sample is back at exactly the objects×K floor, and
//     every provider still holds at least its pinned origins
//
// Floors carry margin below the measured values (seed 42: mid-fault
// 58–85% by scenario, post-heal 96–100%, sustained-churn 69/89%) so they
// gate regressions, not noise; the runs are fully deterministic.
func TestX19AdaptiveUnderFaults(t *testing.T) {
	const seed = 42
	sp := x19SpecFor(true)
	reqs, rs := x18Stream(seed, sp.x18Spec, "flash")
	floorRepl := sp.objects * sp.k
	type floors struct{ mid, post float64 }
	want := map[string]floors{
		"clean":           {0, 90},
		"lossy-edge":      {65, 90},
		"flash-partition": {0, 90}, // no mid floor: the rendezvous itself is cut
		"rolling-churn":   {45, 90},
		"corrupt-10pct":   {70, 90},
		"sustained-churn": {55, 75},
	}
	recPoint := fault.RecoveryPoint(sp.horizon)
	for _, sc := range append(fault.Scenarios(), fault.SustainedChurn()) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := x19Arm(seed, sp, x19Cfg(sp), reqs, rs, &sc, simnet.NetworkConfig{}, false)
			if len(res.outcomes) == 0 {
				t.Fatal("arm setup failed")
			}
			plan := sc.Build(seed, []simnet.NodeID{1, 2, 3, 4}, sp.horizon)
			ws, we := plan.Start(), plan.End()
			share := func(from, to time.Duration) (float64, int) {
				var total, ok float64
				for _, o := range res.outcomes {
					if o.at >= from && o.at < to {
						total++
						if o.ok {
							ok++
						}
					}
				}
				if total == 0 {
					return 0, 0
				}
				return 100 * ok / total, int(total)
			}
			f := want[sc.Name]
			if we > ws && f.mid > 0 {
				mid, n := share(ws, we)
				if mid < f.mid {
					t.Errorf("mid-fault availability %.1f%% over %d requests, floor %.0f%%", mid, n, f.mid)
				}
			}
			post, n := share(recPoint, sp.horizon)
			if post < f.post {
				t.Errorf("post-heal availability %.1f%% over %d requests, floor %.0f%%", post, n, f.post)
			}
			for i, v := range res.timeline {
				if v < floorRepl {
					t.Errorf("timeline[%d] = %d registrations, below the %d floor", i, v, floorRepl)
				}
			}
			if final := res.timeline[len(res.timeline)-1]; final != floorRepl {
				t.Errorf("final replica count %d, want decay back to the %d floor", final, floorRepl)
			}
			// Pinned origins ride out every scenario: each provider owns
			// objects/providers origins it must still hold at the end.
			origins := sp.objects / sp.providers
			for i, held := range res.provHeld {
				if held < origins {
					t.Errorf("provider %d ends holding %d objects, fewer than its %d pinned origins", i, held, origins)
				}
			}
			if sc.Name == "clean" && res.cell.avail < 0.85 {
				t.Errorf("clean-scenario availability %.1f%%, want ≥ 85%%", res.cell.avail*100)
			}
		})
	}
}

// TestX19AnchorExemptLikeX18Tracker pins the anchor convention X18
// established for its tracker, as X19 inherits it for the replica
// directory: the rendezvous node is excluded from every fault scenario's
// eligible set — it must never crash, even under the sustained-churn
// stressor that cycles the whole provider and client population — and
// its role as replica-floor authority is likewise exempt from demand
// decay: pinned origin registrations survive every scenario (the
// directory refuses origin releases, providers never offer them). A
// regression that adds the directory to the eligible ids, or lets decay
// release a pinned origin, fails here.
func TestX19AnchorExemptLikeX18Tracker(t *testing.T) {
	const seed = 42
	sp := x19SpecFor(true)
	reqs, rs := x18Stream(seed, sp.x18Spec, "flash")
	for _, sc := range []fault.Scenario{fault.RollingChurn(), fault.SustainedChurn()} {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			checked := false
			x19DebugHook = func(nw *simnet.Network, dir *replic.Directory, provs []*replic.Provider) {
				checked = true
				anchor := dir.Node()
				if anchor.Crashes() != 0 || anchor.Downtime() != 0 {
					t.Errorf("directory anchor crashed %d times (downtime %v); anchors are exempt from fault scenarios",
						anchor.Crashes(), anchor.Downtime())
				}
				others := 0
				for _, n := range nw.Nodes() {
					if n.ID() != anchor.ID() {
						others += n.Crashes()
					}
				}
				if others == 0 {
					t.Errorf("no non-anchor node crashed under %s; the battery did not run", sc.Name)
				}
				// Every pinned origin is still held and still pinned: decay
				// never touched an anchor registration.
				for i, p := range provs {
					pinnedHeld := 0
					for _, obj := range p.HeldObjects() {
						if p.Pinned(obj) {
							pinnedHeld++
						}
					}
					if want := sp.objects / sp.providers; pinnedHeld != want {
						t.Errorf("provider %d holds %d pinned origins, want %d", i, pinnedHeld, want)
					}
				}
			}
			defer func() { x19DebugHook = nil }()
			x19Arm(seed, sp, x19Cfg(sp), reqs, rs, &sc, simnet.NetworkConfig{}, false)
			if !checked {
				t.Fatal("debug hook never ran")
			}
		})
	}
}

// TestX20ProtectedArmsUnderFaults drives both overload-protected X20
// arms — the feudal origin and the replic swarm, under the full
// flash-crowd schedule — through the canonical five-scenario battery
// plus the sustained-churn stressor. The point being pinned: overload
// control composes with every fault the battery throws. Shedding under
// saturation must not make crashes, loss, partitions, or corruption
// worse — the breaker-neutral shed classification means a client that
// sees sheds from a live server and timeouts from a dead one still
// fails over correctly — so each scenario keeps a mid-fault
// availability floor and recovers to near-clean rates after healing.
//
// Floors carry margin below the measured values (seed 42 tiny scale:
// feudal mid-fault 42–55% by scenario, replic 57–86%, post-heal ≥ 87%
// everywhere) so they gate regressions, not noise; the runs are fully
// deterministic. Flash-partition is the known exception on the replic
// arm (measured ≈1%: the rendezvous directory is unreachable during
// the spike, X19's documented single-point window), so only recovery is
// gated there.
func TestX20ProtectedArmsUnderFaults(t *testing.T) {
	const seed = 42
	sp := x20SpecFor(true)
	reqs, rs := x18Stream(seed, sp.x18Spec, "flash")
	recPoint := fault.RecoveryPoint(sp.horizon)
	type floors struct{ mid, post float64 }
	arms := []struct {
		name string
		run  func(sc *fault.Scenario) x20Result
		want map[string]floors
	}{
		{
			name: "feudal-ovld",
			run: func(sc *fault.Scenario) x20Result {
				return x20Feudal(seed, sp, true, reqs, rs, sc, simnet.NetworkConfig{}, false)
			},
			want: map[string]floors{
				"clean":           {0, 90},
				"lossy-edge":      {35, 90},
				"flash-partition": {25, 90},
				"rolling-churn":   {25, 90},
				"corrupt-10pct":   {25, 90},
				"sustained-churn": {40, 70},
			},
		},
		{
			name: "replic-ovld",
			run: func(sc *fault.Scenario) x20Result {
				return x20Replic(seed, sp, true, reqs, rs, sc, simnet.NetworkConfig{}, false)
			},
			want: map[string]floors{
				"clean":           {0, 90},
				"lossy-edge":      {70, 90},
				"flash-partition": {0, 90}, // no mid floor: the rendezvous itself is cut
				"rolling-churn":   {40, 90},
				"corrupt-10pct":   {70, 90},
				"sustained-churn": {55, 75},
			},
		},
	}
	for _, arm := range arms {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			for _, sc := range append(fault.Scenarios(), fault.SustainedChurn()) {
				sc := sc
				t.Run(sc.Name, func(t *testing.T) {
					res := arm.run(&sc)
					if len(res.outcomes) == 0 {
						t.Fatal("arm setup failed")
					}
					plan := sc.Build(seed, []simnet.NodeID{1, 2, 3, 4}, sp.horizon)
					ws, we := plan.Start(), plan.End()
					share := func(from, to time.Duration) (float64, int) {
						var total, ok float64
						for _, o := range res.outcomes {
							if o.at >= from && o.at < to {
								total++
								if o.ok {
									ok++
								}
							}
						}
						if total == 0 {
							return 0, 0
						}
						return 100 * ok / total, int(total)
					}
					f := arm.want[sc.Name]
					if we > ws && f.mid > 0 {
						mid, n := share(ws, we)
						if mid < f.mid {
							t.Errorf("mid-fault availability %.1f%% over %d requests, floor %.0f%%", mid, n, f.mid)
						}
					}
					post, n := share(recPoint, sp.horizon)
					if post < f.post {
						t.Errorf("post-heal availability %.1f%% over %d requests, floor %.0f%%", post, n, f.post)
					}
					// The flash saturates the protected servers in every
					// scenario that lets flash traffic reach them, so
					// admission control must actually have engaged.
					if sc.Name != "flash-partition" && res.cell.shed == 0 {
						t.Error("no server-side sheds recorded — overload control never engaged under the flash")
					}
				})
			}
		})
	}
}
