package experiments

import (
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// TestX18P2PWorkloadUnderFaults drives the X18 p2p-webapp arm — under
// the full flash-crowd workload — through the canonical five-scenario
// fault battery, with the client population fault-eligible (author and
// tracker are anchors, as in the X14/X16 conventions). Two invariants
// per scenario:
//
//   - a mid-fault availability floor: even with clients crashing,
//     partitioned, or on degraded links *while the flash crowd is
//     arriving*, the swarm keeps answering a bounded fraction of
//     requests within the SLA
//   - post-heal recovery: requests scheduled after the canonical
//     recovery point (horizon·4/5, after every battery plan has healed)
//     succeed at near-clean rates
//
// Floors carry margin below the measured values (seed 42: mid-fault
// 40–64% by scenario, post-heal ≥ 96%) so they gate regressions, not
// noise; the runs are fully deterministic, so any movement is a real
// behaviour change.
func TestX18P2PWorkloadUnderFaults(t *testing.T) {
	const seed = 42
	sp := x18SpecFor(true)
	reqs, rs := x18Stream(seed, sp, "flash")
	midFloor := map[string]float64{
		"clean":           0, // no fault window; overall gate below covers it
		"lossy-edge":      45,
		"flash-partition": 25,
		"rolling-churn":   40,
		"corrupt-10pct":   45,
	}
	recPoint := fault.RecoveryPoint(sp.horizon)
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			cell, outcomes := x18P2P(seed, sp, reqs, rs, &sc)
			if len(outcomes) == 0 {
				t.Fatal("arm setup failed")
			}
			// The battery's step times are fixed fractions of the horizon,
			// so a plan built over any non-empty population has the same
			// active window as the one applied inside the arm.
			plan := sc.Build(seed, []simnet.NodeID{1, 2, 3, 4}, sp.horizon)
			ws, we := plan.Start(), plan.End()
			share := func(from, to time.Duration) (float64, int) {
				var total, ok float64
				for _, o := range outcomes {
					if o.at >= from && o.at < to {
						total++
						if o.ok {
							ok++
						}
					}
				}
				if total == 0 {
					return 0, 0
				}
				return 100 * ok / total, int(total)
			}
			if we > ws {
				mid, n := share(ws, we)
				if mid < midFloor[sc.Name] {
					t.Errorf("mid-fault availability %.1f%% over %d requests, floor %.0f%%",
						mid, n, midFloor[sc.Name])
				}
			}
			post, n := share(recPoint, sp.horizon)
			if post < 90 {
				t.Errorf("post-heal availability %.1f%% over %d requests, want ≥ 90%%", post, n)
			}
			if sc.Name == "clean" && cell.avail < 0.95 {
				t.Errorf("clean-scenario availability %.1f%%, want ≥ 95%%", cell.avail*100)
			}
		})
	}
}
