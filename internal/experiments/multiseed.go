package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Multi-seed aggregation. Every stochastic experiment in this package has a
// numeric core — a function from one seed to a Matrix of float64 cells —
// and a single-seed Table renderer built on it. AggregateSeeds fans a batch
// of seeds over simnet.Trials workers and reduces the resulting matrices
// cell-wise, so any experiment can also report mean/p50/p95 across seeds
// instead of a single draw. Deterministic experiments (the paper tables,
// X6, X12, X13, the metadata-exposure and sensitivity tables) have no
// randomness to average over and stay single-run.

// Matrix is the numeric result of one experiment run under one seed: a
// labelled grid of float64 cells, row-major.
type Matrix struct {
	Rows []string
	Cols []string
	Vals [][]float64
}

// NewMatrix allocates a zeroed matrix with the given labels.
func NewMatrix(rows, cols []string) Matrix {
	vals := make([][]float64, len(rows))
	for i := range vals {
		vals[i] = make([]float64, len(cols))
	}
	return Matrix{Rows: rows, Cols: cols, Vals: vals}
}

// Agg holds the cell-wise aggregates of one experiment across seeds.
type Agg struct {
	Rows, Cols     []string
	Seeds          int
	Mean, P50, P95 [][]float64
}

// AggregateSeeds runs the experiment core once per seed (in parallel on
// `workers` simnet.Trials workers; 0 means GOMAXPROCS) and reduces the
// matrices cell-wise. All matrices must share the core's fixed shape.
func AggregateSeeds(seeds []int64, workers int, run func(seed int64) Matrix) Agg {
	ms := simnet.Trials(seeds, workers, run)
	if len(ms) == 0 {
		return Agg{}
	}
	rows, cols := ms[0].Rows, ms[0].Cols
	a := Agg{Rows: rows, Cols: cols, Seeds: len(ms)}
	alloc := func() [][]float64 {
		g := make([][]float64, len(rows))
		for i := range g {
			g[i] = make([]float64, len(cols))
		}
		return g
	}
	a.Mean, a.P50, a.P95 = alloc(), alloc(), alloc()
	for r := range rows {
		for c := range cols {
			var s metrics.Sample
			for _, m := range ms {
				s.Observe(m.Vals[r][c])
			}
			a.Mean[r][c] = s.Mean()
			a.P50[r][c] = s.Quantile(0.5)
			a.P95[r][c] = s.Quantile(0.95)
		}
	}
	return a
}

// Table renders the aggregate: each cell shows "mean [p50 p95]" over the
// seed batch. colFormats holds one fmt verb per column (e.g. "%.2f",
// "%.0f%%"); passing a single format applies it to every column.
func (a Agg) Table(title, rowHeader string, colFormats ...string) *Table {
	format := func(c int) string {
		if len(colFormats) == 1 {
			return colFormats[0]
		}
		return colFormats[c]
	}
	t := &Table{
		Title:   fmt.Sprintf("%s — mean [p50 p95] over %d seeds", title, a.Seeds),
		Headers: append([]string{rowHeader}, a.Cols...),
	}
	for r, name := range a.Rows {
		row := []any{name}
		for c := range a.Cols {
			f := format(c)
			row = append(row, fmt.Sprintf(f+" ["+f+" "+f+"]", a.Mean[r][c], a.P50[r][c], a.P95[r][c]))
		}
		t.Add(row...)
	}
	return t
}

// strideSeeds reproduces the historical per-trial seed derivation
// (base + i*stride) used by the single-seed tables, so converting their
// inner loops to simnet.Trials preserves every published number.
func strideSeeds(base, stride int64, n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = base + int64(i)*stride
	}
	return seeds
}
