package experiments

import (
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/simnet"
	"repro/internal/webapp"
)

// HostlessWeb is experiment X7: the same website is served (a) by a
// single origin server (client-server baseline) and (b) as a hostless
// signed bundle seeded by its visitors (§3.4). Visitors arrive throughout
// the run; halfway through, the publisher (origin server / site author)
// dies. We measure visit success before and after the death and how the
// serving load distributes. Visitors sit on home-broadband links, making
// this also a §5.2 "quality vs quantity" test: device-grade uplinks can
// still carry the site because the load spreads.
func HostlessWeb(seed int64, visitors int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X7: website availability with publisher death at T/2 (%d visitors over 2h)", visitors),
		Headers: []string{"Architecture", "Visits OK (publisher alive)", "Visits OK (publisher dead)", "Publisher Share of Bytes Served"},
	}
	m := hostlessMatrix(seed, visitors)
	for r, name := range m.Rows {
		t.Add(name,
			fmt.Sprintf("%.0f%%", m.Vals[r][0]),
			fmt.Sprintf("%.0f%%", m.Vals[r][1]),
			fmt.Sprintf("%.0f%%", m.Vals[r][2]))
	}
	return t
}

// hostlessMatrix is the numeric core of X7: one seed, visit-success and
// load-share percentages for both architectures.
func hostlessMatrix(seed int64, visitors int) Matrix {
	mx := NewMatrix(
		[]string{"client-server (single origin)", "hostless (visitor-seeded)"},
		[]string{"Visits OK (publisher alive)", "Visits OK (publisher dead)", "Publisher Share of Bytes Served"})
	beforeCS, afterCS, shareCS := clientServerRun(seed, visitors)
	mx.Vals[0][0], mx.Vals[0][1], mx.Vals[0][2] = beforeCS*100, afterCS*100, shareCS*100
	beforeHL, afterHL, shareHL := hostlessRun(seed, visitors)
	mx.Vals[1][0], mx.Vals[1][1], mx.Vals[1][2] = beforeHL*100, afterHL*100, shareHL*100
	return mx
}

// HostlessWebMulti is X7 aggregated over a batch of seeds on `workers`
// parallel trial runners (0 = GOMAXPROCS).
func HostlessWebMulti(seeds []int64, workers, visitors int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return hostlessMatrix(seed, visitors)
	})
	return agg.Table(
		fmt.Sprintf("X7: website availability with publisher death at T/2 (%d visitors over 2h)", visitors),
		"Architecture", "%.0f%%")
}

const originMethod = "origin.get"

// clientServerRun serves the site from one origin over simnet RPC.
func clientServerRun(seed int64, visitors int) (before, after, originShare float64) {
	nw := simnet.New(seed)
	origin := simnet.NewRPCNode(nw.AddNode()) // datacenter profile
	site := siteFiles()
	siteBytes := 0
	for _, d := range site {
		siteBytes += len(d)
	}
	served := 0
	origin.Serve(originMethod, func(from simnet.NodeID, req any) (any, int) {
		served++
		return site, siteBytes
	})

	okBefore, okAfter, nBefore, nAfter := 0, 0, 0, 0
	half := time.Hour
	horizon := 2 * time.Hour
	for i := 0; i < visitors; i++ {
		at := time.Duration(nw.Rand().Int63n(int64(horizon)))
		visitor := simnet.NewRPCNode(nw.AddNodeWithProfile(simnet.HomeBroadbandProfile()))
		nw.Schedule(at, func() {
			early := nw.Now() < half
			visitor.Call(origin.Node().ID(), originMethod, nil, 64, 30*time.Second, func(resp any, err error) {
				ok := err == nil && resp != nil
				if early {
					nBefore++
					if ok {
						okBefore++
					}
				} else {
					nAfter++
					if ok {
						okAfter++
					}
				}
			})
		})
	}
	nw.Schedule(half, func() { origin.Node().Crash() })
	nw.Run(horizon + time.Minute)
	return ratio(okBefore, nBefore), ratio(okAfter, nAfter), 1.0 // origin serves 100% of bytes
}

// hostlessRun serves the site as a webapp bundle over DHT + tracker with
// visitor seeding.
func hostlessRun(seed int64, visitors int) (before, after, authorShare float64) {
	nw := simnet.New(seed)
	tracker := webapp.NewTracker(nw.AddNode())
	// The author lives on a home-broadband link, like any user.
	authorNode := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
	authorDHT := dht.NewPeer(authorNode, dht.Key{}, dht.Config{})
	author := webapp.NewPeer(authorNode, authorDHT, tracker.Node().ID(), 30*time.Second)
	owner, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		panic(err)
	}

	// Visitors' DHT peers join first so the manifest replicates beyond the
	// author's own node at publish time (otherwise the author's death would
	// take the manifest with it).
	peers := make([]*webapp.Peer, visitors)
	for i := 0; i < visitors; i++ {
		node := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
		d := dht.NewPeer(node, dht.Key{}, dht.Config{})
		d.Bootstrap(authorDHT.Contact(), nil)
		peers[i] = webapp.NewPeer(node, d, tracker.Node().ID(), 30*time.Second)
	}
	nw.Run(2 * time.Minute) // settle DHT routing tables

	var siteAddr cryptoutil.Hash
	author.Publish(owner, 1, siteFiles(), cryptoutil.Hash{}, func(m *webapp.Manifest) { siteAddr = m.Site })
	nw.Run(nw.Now() + time.Minute)

	okBefore, okAfter, nBefore, nAfter := 0, 0, 0, 0
	start := nw.Now()
	half := start + time.Hour
	horizon := start + 2*time.Hour
	for i := 0; i < visitors; i++ {
		at := start + time.Duration(nw.Rand().Int63n(int64(2*time.Hour)))
		p := peers[i]
		nw.Schedule(at, func() {
			early := nw.Now() < half
			p.Visit(siteAddr, func(files map[string][]byte, err error) {
				ok := err == nil && len(files) > 0
				if early {
					nBefore++
					if ok {
						okBefore++
					}
				} else {
					nAfter++
					if ok {
						okAfter++
					}
				}
			})
		})
	}
	nw.Schedule(half, func() { author.Node().Crash() })
	nw.Run(horizon + 30*time.Minute)

	totalServes := author.BlobServes
	for _, p := range peers {
		totalServes += p.BlobServes
	}
	return ratio(okBefore, nBefore), ratio(okAfter, nAfter), ratio(author.BlobServes, totalServes)
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func siteFiles() map[string][]byte {
	files := map[string][]byte{
		"index.html": []byte("<html><body><h1>Overthrowing Internet Feudalism</h1></body></html>"),
		"app.js":     make([]byte, 4096),
		"style.css":  make([]byte, 1024),
	}
	return files
}
