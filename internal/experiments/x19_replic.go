package experiments

import (
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/replic"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
	"repro/internal/workload"
)

// X19: does demand-chasing replication buy back what X18 showed the
// static p2p arm losing? X18 proved the architecture point — a swarm
// survives a flash crowd a single home server cannot — but its p2p arm
// replicates by side effect (visitors seed what they just fetched) and
// its static arms never replicate at all. X19 isolates the replication
// policy: the same flash-crowd schedule, the same provider hardware (home
// uplinks), the same directory — the only difference between arms is
// whether internal/replic is enabled.
//
//	static-K   replication disabled: every object keeps its initial K
//	           replicas forever, clients fetch in directory order
//	           (origin first) and fail over on error — federation-style
//	           static provisioning
//	adaptive   replic enabled: exponentially-decayed demand counters,
//	           hive-style adverts between co-holders, origin-driven
//	           pushes toward the heaviest requester region, decay back
//	           to the K floor, nearest-replica routing on resil SRTT
//	           estimates with hedged fetches
//
// Both arms run clean and under the battery's rolling-churn scenario
// (every provider and client crashes once mid-run). Per arm: avail%
// (answered within the SLA, X16's user-experienced measure), p95 latency,
// origin% (share of payload bytes served by each object's pinned origin —
// the replic.origin.byte_share gauge), and the replica-count timeline's
// peak and final values, which show the set inflating under the spike and
// garbage-collecting back to the floor.
type x19Spec struct {
	x18Spec
	providers int
	k         int // initial replicas per object; also the GC floor
}

func x19SpecFor(tiny bool) x19Spec {
	sp := x19Spec{x18Spec: x18SpecFor(tiny), k: 2, providers: 8}
	if tiny {
		sp.providers = 4
	}
	return sp
}

// x19Cfg is the adaptive arm's replication config. The floor is the
// spec's K and the cap is bounded by the provider population; the
// resilience layer is on so nearest-replica ranking runs on measured
// SRTT. The reaction knobs are deliberately faster than the package
// defaults, and the reason is the experiment's central lesson: a
// saturated origin loses its own control plane — its pushes and
// directory calls queue behind the very responses that are drowning it —
// so replication must finish while the flash ramp still leaves uplink
// headroom. A 15s half-life crosses the advertise threshold within
// ~30s of the ramp starting, 10s ticks turn that into a push per 10s,
// and one replica per 0.5 req/s of swarm demand (~¼ of a home uplink's
// 64KB-object capacity) sizes the set with room for the demand the
// decayed counter has not seen yet.
func x19Cfg(sp x19Spec) replic.Config {
	cfg := replic.Defaults()
	cfg.FloorK = sp.k
	if cfg.Cap > sp.providers {
		cfg.Cap = sp.providers
	}
	cfg.HotRate = 0.25
	cfg.ColdRate = 0.1
	cfg.PerReplicaRate = 0.5
	cfg.HalfLife = 15 * time.Second
	cfg.TickEvery = 10 * time.Second
	cfg.Resilience = resil.Defaults()
	return cfg
}

// x19Timeline samples the directory's total replica count this many times
// across the horizon.
const x19Timeline = 40

// x19DebugHook, when non-nil, observes each finished arm (tests only).
var x19DebugHook func(nw *simnet.Network, dir *replic.Directory, provs []*replic.Provider)

// x19Result is one arm's full outcome: the table cell, per-request
// outcomes for the conformance suite's availability windows, and the
// replica-count timeline.
type x19Result struct {
	cell     x19Cell
	outcomes []x18Outcome
	timeline []int
	// provHeld[i] is provider i's final held-object count (the conformance
	// suite asserts pinned origins survive every scenario).
	provHeld []int
}

type x19Cell struct {
	avail       float64
	p95         float64
	originShare float64
	replPeak    float64
	replEnd     float64
}

// x19Arm runs one (replication config, fault scenario) arm over the
// shared schedule. engine selects the simulation engine layout (the
// zero value is the classic single-heap engine); det replaces every
// access link with a fixed-latency deterministic profile — no jitter, no
// loss, no bandwidth queueing — which is the regime where the legacy and
// sharded engines are event-for-event identical (see simnet's
// TestShardedMatchesLegacyWhenDeterministic), so the cross-layout golden
// test runs with det=true.
func x19Arm(seed int64, sp x19Spec, cfg replic.Config, reqs []workload.Request, rs *workload.RegionSet, sc *fault.Scenario, engine simnet.NetworkConfig, det bool) x19Result {
	engine.Seed = seed
	nw := simnet.NewWithConfig(engine)
	dirNode := nw.AddNode()
	dir := replic.NewDirectory(dirNode, sp.k)

	// Clients first in the region assignment so client i keeps the region
	// the schedule generator gave it; providers follow in the same
	// round-robin.
	clientNodes := make([]*simnet.Node, sp.clients)
	ids := make([]simnet.NodeID, 0, sp.clients+sp.providers)
	for i := range clientNodes {
		clientNodes[i] = nw.AddNode()
		ids = append(ids, clientNodes[i].ID())
	}
	provNodes := make([]*simnet.Node, sp.providers)
	provIDs := make([]simnet.NodeID, sp.providers)
	for i := range provNodes {
		provNodes[i] = nw.AddNode()
		provIDs[i] = provNodes[i].ID()
		ids = append(ids, provNodes[i].ID())
	}
	rs.Apply(nw, ids)
	regionOf := make(map[simnet.NodeID]int, len(ids))
	for i, id := range ids {
		regionOf[id] = rs.Assign(i)
	}
	if det {
		for _, n := range nw.Nodes() {
			n.SetProfile(simnet.LinkProfile{Latency: 5 * time.Millisecond})
		}
	}

	provs := make([]*replic.Provider, sp.providers)
	for i, n := range provNodes {
		provs[i] = replic.NewProvider(n, cfg, dirNode.ID(), sp.regions, regionOf)
		provs[i].SetPeers(provIDs)
	}
	clients := make([]*replic.Client, sp.clients)
	for i, n := range clientNodes {
		clients[i] = replic.NewClient(n, cfg, dirNode.ID(), regionOf[n.ID()], regionOf, rs.Extra)
	}

	// Seed the catalog: object o's origin is provider o%P (pinned), plus
	// k-1 static replicas on the following providers.
	objs := make([]cryptoutil.Hash, sp.objects)
	for o := range objs {
		payload := make([]byte, sp.objBytes)
		for i := range payload {
			payload[i] = byte(o*31 + i)
		}
		objs[o] = cryptoutil.SumHash(payload)
		origin := o % sp.providers
		provs[origin].Put(objs[o], payload, true)
		for j := 1; j < sp.k; j++ {
			provs[(origin+j)%sp.providers].Put(objs[o], payload, false)
		}
	}
	for _, p := range provs {
		p.Start()
	}
	nw.Run(nw.Now() + time.Minute) // announces settle

	base := nw.Now()
	if sc != nil {
		// Providers and clients are all fault-eligible; only the directory
		// is an anchor (the tracker convention X18 set).
		sc.Build(seed, ids, sp.horizon).ApplyAt(nw, base)
	}
	meter := newX18Meter(nw, sp.x18Spec, len(reqs))
	timeline := make([]int, 0, x19Timeline+1)
	for i := 0; i <= x19Timeline; i++ {
		at := base + sp.horizon*time.Duration(i)/time.Duration(x19Timeline)
		nw.Schedule(at, func() { timeline = append(timeline, dir.TotalReplicas()) })
	}
	for _, r := range reqs {
		r := r
		launch := base + r.At
		nw.Schedule(launch, func() {
			// The launch time and the completion clock are both taken from
			// quantities that are engine-exact: the schedule time itself and
			// the requesting node's shard clock (== the global clock on the
			// single-heap engine). Reading nw.Now() here instead would lag at
			// window granularity on the sharded engine and skew measured
			// latency across layouts.
			done := meter.doneOn(r.At, launch, clients[r.Client].Node().Now)
			clients[r.Client].Get(objs[r.Object], sp.timeout, func(data []byte, err error) {
				done(err == nil && len(data) == sp.objBytes)
			})
		})
	}
	nw.Run(base + sp.horizon + x18Grace)
	// One settle sample after the grace: the flash tail can keep swarm
	// demand above ColdRate to the very edge of the horizon (tiny scale
	// especially), so the horizon's final sample may catch the set one or
	// two releases short of the floor. The post-grace sample is the
	// garbage-collected steady state — replEnd reports this.
	timeline = append(timeline, dir.TotalReplicas())

	var total, origin int64
	held := make([]int, sp.providers)
	for i, p := range provs {
		total += p.BytesServed
		origin += p.OriginBytes
		held[i] = p.NumHeld()
	}
	share := 0.0
	if total > 0 {
		share = float64(origin) / float64(total)
	}
	peak, end := 0, 0
	for _, v := range timeline {
		if v > peak {
			peak = v
		}
		end = v
	}
	// X19-only observability: the origin-share gauge registers after every
	// pre-existing experiment's metrics are already fixed, and the replic.*
	// counters were filled in by the package as the arm ran.
	nw.Obs().Gauge("replic.origin.byte_share").Set(share)
	if x19DebugHook != nil {
		x19DebugHook(nw, dir, provs)
	}
	return x19Result{
		cell: x19Cell{
			avail:       float64(meter.ok) / float64(len(reqs)),
			p95:         meter.lat.Quantile(0.95),
			originShare: share,
			replPeak:    float64(peak),
			replEnd:     float64(end),
		},
		outcomes: meter.outcomes,
		timeline: timeline,
		provHeld: held,
	}
}

// replicationMatrix is the numeric core of X19: one shared flash-crowd
// schedule, static-K vs adaptive replication, clean vs rolling churn.
func replicationMatrix(seed int64, tiny bool, engine simnet.NetworkConfig, det bool) Matrix {
	sp := x19SpecFor(tiny)
	reqs, rs := x18Stream(seed, sp.x18Spec, "flash")
	churn := fault.RollingChurn()
	arms := []struct {
		name string
		cfg  replic.Config
		sc   *fault.Scenario
	}{
		{"static-clean", replic.Config{}, nil},
		{"static-churn", replic.Config{}, &churn},
		{"adaptive-clean", x19Cfg(sp), nil},
		{"adaptive-churn", x19Cfg(sp), &churn},
	}
	rows := make([]string, len(arms))
	for i := range arms {
		rows[i] = arms[i].name
	}
	m := NewMatrix(rows, []string{"avail%", "p95(s)", "origin%", "repl-peak", "repl-end"})
	for r, arm := range arms {
		res := x19Arm(seed, sp, arm.cfg, reqs, rs, arm.sc, engine, det)
		m.Vals[r][0] = res.cell.avail * 100
		m.Vals[r][1] = res.cell.p95
		m.Vals[r][2] = res.cell.originShare * 100
		m.Vals[r][3] = res.cell.replPeak
		m.Vals[r][4] = res.cell.replEnd
	}
	return m
}

// x19Format renders one matrix into the X19 table.
func x19Format(m Matrix, sp x19Spec, title string) *Table {
	t := &Table{
		Title:   title,
		Headers: append([]string{"Arm"}, m.Cols...),
	}
	for r, name := range m.Rows {
		t.Add(name,
			fmt.Sprintf("%.1f%%", m.Vals[r][0]),
			fmt.Sprintf("%.2fs", m.Vals[r][1]),
			fmt.Sprintf("%.1f%%", m.Vals[r][2]),
			fmt.Sprintf("%.0f", m.Vals[r][3]),
			fmt.Sprintf("%.0f", m.Vals[r][4]))
	}
	return t
}

// AdaptiveReplication renders the single-seed X19 table at full scale.
func AdaptiveReplication(seed int64) *Table {
	sp := x19SpecFor(false)
	m := replicationMatrix(seed, false, simnet.NetworkConfig{}, false)
	return x19Format(m, sp, fmt.Sprintf(
		"X19: flash-crowd replay — static K=%d vs adaptive replication (floor %d, cap %d) on %d home-link providers",
		sp.k, sp.k, x19Cfg(sp).Cap, sp.providers))
}

// AdaptiveReplicationMulti is X19 aggregated over a batch of seeds on
// `workers` parallel trial runners (0 = GOMAXPROCS).
func AdaptiveReplicationMulti(seeds []int64, workers int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return replicationMatrix(seed, false, simnet.NetworkConfig{}, false)
	})
	return agg.Table(
		"X19: flash-crowd replay — static-K vs adaptive replication with nearest-replica routing",
		"Arm", "%.1f", "%.2f", "%.1f", "%.0f", "%.0f")
}

// AdaptiveReplicationTiny is the scaled-down X19 the registry tests run.
func AdaptiveReplicationTiny(seed int64) *Table {
	sp := x19SpecFor(true)
	m := replicationMatrix(seed, true, simnet.NetworkConfig{}, false)
	return x19Format(m, sp, "X19 (tiny): flash-crowd replay, static-K vs adaptive replication")
}
