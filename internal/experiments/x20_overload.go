package experiments

import (
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/replic"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
	"repro/internal/workload"
)

// X20: what saturation does to a server that refuses to say no. X18
// showed the feudal single-origin arm collapsing under a flash crowd and
// X19 showed replication buying the capacity back — but both left the
// servers naive: every arriving request queues on the home uplink
// forever, so under the spike a reply is seconds-to-minutes stale by the
// time it serializes, the client has long timed out, and the uplink burns
// its whole budget on answers nobody is waiting for. Worse, a saturated
// origin loses its own control plane: X19's adverts and directory calls
// sit in the same FIFO as the doomed bulk replies, so the mechanism that
// could relieve the overload is itself starved by it.
//
// X20 replays the X18 flash-crowd schedule against the same two
// architectures with and without internal/overload on the serving side:
//
//	feudal   one home-uplink origin serving content.get (X18's ostatus
//	         arm, but clients carry the X16 resilient transport in every
//	         arm so only the server side varies)
//	replic   the X19 world — directory + home-uplink providers with
//	         adaptive replication at package-default cadence — with the
//	         directory and every provider protected in the ovld arms
//
// naive arms serve first-come-first-served with unbounded queueing; ovld
// arms run the bounded deadline-aware queue, AIMD admission, and the
// strict-priority control lane, shedding excess with a RetryAfter hint
// that the clients' resil.Classify hook turns into paced, non-breaking
// retries. Every arm runs clean and under the battery's rolling churn.
//
// Per arm: flash-avail% (within-SLA availability over requests launched
// inside the flash window — the gate measure, since the spike is where
// the arms differ), whole-run avail%, p95 latency, ctl-p95 (p95 of a
// 2s-cadence control ping against the hottest server, timeouts counted at
// the full timeout — the "does the control plane survive" probe), sheds
// (server-side rejections incl. CoDel front drops), and the replica-count
// peak (replic arms; the convergence the control lane is buying).
type x20Spec struct {
	x19Spec
}

func x20SpecFor(tiny bool) x20Spec { return x20Spec{x19SpecFor(tiny)} }

// x20FlashWindow is the schedule slice the gate scores: ramp start to
// decay end — exactly where demand exceeds a home uplink.
func x20FlashWindow(sp x18Spec) (time.Duration, time.Duration) {
	return sp.flash.Start, sp.flash.Start + sp.flash.Ramp + sp.flash.Decay
}

// x20OvCfg is the protected arms' overload config. The knobs follow from
// the hardware: a 64KiB reply occupies a 1Mbit/s uplink for ~0.5s, so an
// SLO of 4s admits roughly the queue the SLA (6–8s) can absorb after
// transit, the 2s CoDel target drops anything that has already waited
// half the objective, and MaxLimit 8 lets the AIMD controller explore up
// to ~8 concurrent reply serializations before sojourn feedback cuts it.
func x20OvCfg() overload.Config {
	return overload.Config{
		Enabled:        true,
		QueueLen:       32,
		Target:         2 * time.Second,
		SLO:            4 * time.Second,
		MinLimit:       1,
		MaxLimit:       8,
		RetryAfterBase: time.Second,
	}
}

// x20Resil is the client transport every arm runs: X16 defaults plus the
// shed classifier. Holding the client stack constant across naive and
// ovld arms is the experiment's control — only the serving side varies.
func x20Resil() resil.Config {
	cfg := resil.Defaults()
	cfg.Classify = overload.Classify
	return cfg
}

// x20ReplicCfg is the replic arms' configuration: package-default
// cadence (30s half-life, 15s ticks — not X19's deliberately hot tuning)
// with the spec's floor and cap. The slower control plane is the point:
// it widens the window in which a saturated origin's adverts must fight
// its bulk backlog, which is exactly what the ovld arms' priority lane
// rescues.
func x20ReplicCfg(sp x20Spec, protected bool) replic.Config {
	cfg := replic.Defaults()
	cfg.FloorK = sp.k
	if cfg.Cap > sp.providers {
		cfg.Cap = sp.providers
	}
	cfg.Resilience = x20Resil()
	if protected {
		cfg.Overload = x20OvCfg()
	}
	return cfg
}

const (
	// x20PingEvery is the control-probe cadence.
	x20PingEvery = 2 * time.Second
	// x20PingTimeout caps one probe; a timed-out probe observes this
	// value, so a starved control plane cannot hide from the percentile.
	x20PingTimeout = 10 * time.Second
)

// x20Pinger schedules the ctl.ping probe stream from monitor against
// target across the horizon and returns the latency sample.
func x20Pinger(nw *simnet.Network, monitor *simnet.RPCNode, target simnet.NodeID, base time.Duration, sp x18Spec) *metrics.Sample {
	lat := &metrics.Sample{}
	for at := x20PingEvery; at < sp.horizon; at += x20PingEvery {
		launch := base + at
		nw.Schedule(launch, func() {
			start := monitor.Node().Now()
			monitor.Call(target, "ctl.ping", nil, 32, x20PingTimeout, func(resp any, err error) {
				if err != nil {
					lat.Observe(x20PingTimeout.Seconds())
					return
				}
				lat.Observe((monitor.Node().Now() - start).Seconds())
			})
		})
	}
	return lat
}

// x20Cell is one arm's scoreboard.
type x20Cell struct {
	flashAvail float64
	avail      float64
	p95        float64
	ctlP95     float64
	shed       float64
	replPeak   float64
}

// x20Result carries the cell plus the raw outcomes for the conformance
// suite's availability windows.
type x20Result struct {
	cell     x20Cell
	outcomes []x18Outcome
}

// x20FlashAvail scores within-SLA availability over the flash window.
func x20FlashAvail(outcomes []x18Outcome, sp x18Spec) float64 {
	ws, we := x20FlashWindow(sp)
	tot, ok := 0, 0
	for _, o := range outcomes {
		if o.at >= ws && o.at <= we {
			tot++
			if o.ok {
				ok++
			}
		}
	}
	if tot == 0 {
		return 0
	}
	return float64(ok) / float64(tot)
}

// x20Sheds totals the server-side rejections an arm's network recorded.
// Reading the counters creates them at zero on naive arms, which is
// deterministic and keeps the snapshot schema identical across arms.
func x20Sheds(nw *simnet.Network) float64 {
	reg := nw.Obs()
	return float64(reg.Counter("overload.shed").Value() + reg.Counter("overload.codel.dropped").Value())
}

// x20Feudal is the single-origin arm: X18's ostatus world with resilient
// clients, a control pinger, and — when protected — the origin's
// content.get behind the overload server. engine and det select the
// simulation engine layout exactly as in x19Arm.
func x20Feudal(seed int64, sp x20Spec, protected bool, reqs []workload.Request, rs *workload.RegionSet, sc *fault.Scenario, engine simnet.NetworkConfig, det bool) x20Result {
	engine.Seed = seed
	nw := simnet.NewWithConfig(engine)
	nw.EnableQueueMetrics()
	originNode := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
	origin := simnet.NewRPCNode(originNode)
	var ovCfg overload.Config
	if protected {
		ovCfg = x20OvCfg()
	}
	ov := overload.New(origin, ovCfg)
	ov.Protect("content.get", func(from simnet.NodeID, req any) (any, int) {
		return req, 32 + sp.objBytes
	})
	ov.Control("ctl.ping", func(from simnet.NodeID, req any) (any, int) { return req, 16 })

	clients := make([]*resil.Client, sp.clients)
	ids := make([]simnet.NodeID, sp.clients)
	for i := range clients {
		n := nw.AddNode()
		clients[i] = resil.New(simnet.NewRPCNode(n), x20Resil())
		ids[i] = n.ID()
	}
	rs.Apply(nw, ids)
	monitor := simnet.NewRPCNode(nw.AddNode())
	if det {
		for _, n := range nw.Nodes() {
			n.SetProfile(simnet.LinkProfile{Latency: 5 * time.Millisecond})
		}
	}

	base := nw.Now()
	if sc != nil {
		// Clients are fault-eligible; the origin and monitor are anchors
		// (crashing the only server measures the crash, not the queue).
		sc.Build(seed, ids, sp.horizon).ApplyAt(nw, base)
	}
	meter := newX18Meter(nw, sp.x18Spec, len(reqs))
	ctl := x20Pinger(nw, monitor, origin.Node().ID(), base, sp.x18Spec)
	for _, r := range reqs {
		r := r
		launch := base + r.At
		nw.Schedule(launch, func() {
			done := meter.doneOn(r.At, launch, clients[r.Client].RPC().Node().Now)
			clients[r.Client].Call(origin.Node().ID(), "content.get", r.Object, 200, sp.timeout,
				func(resp any, err error) { done(err == nil) })
		})
	}
	nw.Run(base + sp.horizon + x18Grace)
	return x20Result{
		cell: x20Cell{
			flashAvail: x20FlashAvail(meter.outcomes, sp.x18Spec),
			avail:      float64(meter.ok) / float64(len(reqs)),
			p95:        meter.lat.Quantile(0.95),
			ctlP95:     ctl.Quantile(0.95),
			shed:       x20Sheds(nw),
		},
		outcomes: meter.outcomes,
	}
}

// x20Replic is the replicated arm: X19's world at default replication
// cadence, the control pinger aimed at the flash object's pinned origin
// provider, and — when protected — the directory and every provider
// behind overload control.
func x20Replic(seed int64, sp x20Spec, protected bool, reqs []workload.Request, rs *workload.RegionSet, sc *fault.Scenario, engine simnet.NetworkConfig, det bool) x20Result {
	cfg := x20ReplicCfg(sp, protected)
	engine.Seed = seed
	nw := simnet.NewWithConfig(engine)
	nw.EnableQueueMetrics()
	dirNode := nw.AddNode()
	dir := replic.NewDirectoryWith(dirNode, sp.k, cfg.Overload)

	clientNodes := make([]*simnet.Node, sp.clients)
	ids := make([]simnet.NodeID, 0, sp.clients+sp.providers)
	for i := range clientNodes {
		clientNodes[i] = nw.AddNode()
		ids = append(ids, clientNodes[i].ID())
	}
	provNodes := make([]*simnet.Node, sp.providers)
	provIDs := make([]simnet.NodeID, sp.providers)
	for i := range provNodes {
		provNodes[i] = nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
		provIDs[i] = provNodes[i].ID()
		ids = append(ids, provNodes[i].ID())
	}
	rs.Apply(nw, ids)
	regionOf := make(map[simnet.NodeID]int, len(ids))
	for i, id := range ids {
		regionOf[id] = rs.Assign(i)
	}
	monitor := simnet.NewRPCNode(nw.AddNode())
	if det {
		for _, n := range nw.Nodes() {
			n.SetProfile(simnet.LinkProfile{Latency: 5 * time.Millisecond})
		}
	}

	provs := make([]*replic.Provider, sp.providers)
	for i, n := range provNodes {
		provs[i] = replic.NewProvider(n, cfg, dirNode.ID(), sp.regions, regionOf)
		provs[i].SetPeers(provIDs)
	}
	clients := make([]*replic.Client, sp.clients)
	for i, n := range clientNodes {
		clients[i] = replic.NewClient(n, cfg, dirNode.ID(), regionOf[n.ID()], regionOf, rs.Extra)
	}

	objs := make([]cryptoutil.Hash, sp.objects)
	for o := range objs {
		payload := make([]byte, sp.objBytes)
		for i := range payload {
			payload[i] = byte(o*31 + i)
		}
		objs[o] = cryptoutil.SumHash(payload)
		origin := o % sp.providers
		provs[origin].Put(objs[o], payload, true)
		for j := 1; j < sp.k; j++ {
			provs[(origin+j)%sp.providers].Put(objs[o], payload, false)
		}
	}
	for _, p := range provs {
		p.Start()
	}
	// The probe target is the provider the flash spike concentrates on:
	// the flash object's pinned origin.
	hot := provs[sp.flash.Object%sp.providers]
	hot.RPC().Serve("ctl.ping", func(from simnet.NodeID, req any) (any, int) { return req, 16 })
	if protected {
		hot.RPC().SetMethodLane("ctl.ping", simnet.LaneCtrl)
	}
	nw.Run(nw.Now() + time.Minute) // announces settle

	base := nw.Now()
	if sc != nil {
		sc.Build(seed, ids, sp.horizon).ApplyAt(nw, base)
	}
	meter := newX18Meter(nw, sp.x18Spec, len(reqs))
	ctl := x20Pinger(nw, monitor, hot.Node().ID(), base, sp.x18Spec)
	replPeak := 0
	for i := 0; i <= x19Timeline; i++ {
		at := base + sp.horizon*time.Duration(i)/time.Duration(x19Timeline)
		nw.Schedule(at, func() {
			if v := dir.TotalReplicas(); v > replPeak {
				replPeak = v
			}
		})
	}
	for _, r := range reqs {
		r := r
		launch := base + r.At
		nw.Schedule(launch, func() {
			done := meter.doneOn(r.At, launch, clients[r.Client].Node().Now)
			clients[r.Client].Get(objs[r.Object], sp.timeout, func(data []byte, err error) {
				done(err == nil && len(data) == sp.objBytes)
			})
		})
	}
	nw.Run(base + sp.horizon + x18Grace)
	return x20Result{
		cell: x20Cell{
			flashAvail: x20FlashAvail(meter.outcomes, sp.x18Spec),
			avail:      float64(meter.ok) / float64(len(reqs)),
			p95:        meter.lat.Quantile(0.95),
			ctlP95:     ctl.Quantile(0.95),
			shed:       x20Sheds(nw),
			replPeak:   float64(replPeak),
		},
		outcomes: meter.outcomes,
	}
}

// x20ArmSpec names one battery cell.
type x20ArmSpec struct {
	name      string
	replic    bool
	protected bool
	churn     bool
}

// x20Arms enumerates the battery in presentation order.
func x20Arms() []x20ArmSpec {
	return []x20ArmSpec{
		{"feudal-naive-clean", false, false, false},
		{"feudal-naive-churn", false, false, true},
		{"feudal-ovld-clean", false, true, false},
		{"feudal-ovld-churn", false, true, true},
		{"replic-naive-clean", true, false, false},
		{"replic-naive-churn", true, false, true},
		{"replic-ovld-clean", true, true, false},
		{"replic-ovld-churn", true, true, true},
	}
}

// x20Run dispatches one arm.
func x20Run(seed int64, sp x20Spec, arm x20ArmSpec, reqs []workload.Request, rs *workload.RegionSet, engine simnet.NetworkConfig, det bool) x20Result {
	var sc *fault.Scenario
	if arm.churn {
		churn := fault.RollingChurn()
		sc = &churn
	}
	if arm.replic {
		return x20Replic(seed, sp, arm.protected, reqs, rs, sc, engine, det)
	}
	return x20Feudal(seed, sp, arm.protected, reqs, rs, sc, engine, det)
}

// overloadMatrix is the numeric core of X20: one shared flash schedule,
// {feudal, replic} × {naive, ovld} × {clean, churn}.
func overloadMatrix(seed int64, tiny bool, engine simnet.NetworkConfig, det bool) Matrix {
	sp := x20SpecFor(tiny)
	reqs, rs := x18Stream(seed, sp.x18Spec, "flash")
	arms := x20Arms()
	rows := make([]string, len(arms))
	for i := range arms {
		rows[i] = arms[i].name
	}
	m := NewMatrix(rows, []string{"flash-avail%", "avail%", "p95(s)", "ctl-p95(s)", "shed", "repl-peak"})
	for r, arm := range arms {
		res := x20Run(seed, sp, arm, reqs, rs, engine, det)
		m.Vals[r][0] = res.cell.flashAvail * 100
		m.Vals[r][1] = res.cell.avail * 100
		m.Vals[r][2] = res.cell.p95
		m.Vals[r][3] = res.cell.ctlP95
		m.Vals[r][4] = res.cell.shed
		m.Vals[r][5] = res.cell.replPeak
	}
	return m
}

// x20Format renders one matrix into the X20 table.
func x20Format(m Matrix, title string) *Table {
	t := &Table{
		Title:   title,
		Headers: append([]string{"Arm"}, m.Cols...),
	}
	for r, name := range m.Rows {
		t.Add(name,
			fmt.Sprintf("%.1f%%", m.Vals[r][0]),
			fmt.Sprintf("%.1f%%", m.Vals[r][1]),
			fmt.Sprintf("%.2fs", m.Vals[r][2]),
			fmt.Sprintf("%.2fs", m.Vals[r][3]),
			fmt.Sprintf("%.0f", m.Vals[r][4]),
			fmt.Sprintf("%.0f", m.Vals[r][5]))
	}
	return t
}

// OverloadControl renders the single-seed X20 table at full scale.
func OverloadControl(seed int64) *Table {
	sp := x20SpecFor(false)
	m := overloadMatrix(seed, false, simnet.NetworkConfig{}, false)
	return x20Format(m, fmt.Sprintf(
		"X20: flash-crowd saturation — naive vs overload-controlled serving, feudal origin and %d-provider replic swarm",
		sp.providers))
}

// OverloadControlMulti is X20 aggregated over a batch of seeds on
// `workers` parallel trial runners (0 = GOMAXPROCS).
func OverloadControlMulti(seeds []int64, workers int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return overloadMatrix(seed, false, simnet.NetworkConfig{}, false)
	})
	return agg.Table(
		"X20: flash-crowd saturation — naive vs overload-controlled serving",
		"Arm", "%.1f", "%.1f", "%.2f", "%.2f", "%.0f", "%.0f")
}

// OverloadControlTiny is the scaled-down X20 the registry tests run.
func OverloadControlTiny(seed int64) *Table {
	m := overloadMatrix(seed, true, simnet.NetworkConfig{}, false)
	return x20Format(m, "X20 (tiny): flash-crowd saturation, naive vs overload-controlled serving")
}
