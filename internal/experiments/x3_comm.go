package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/gossip"
	"repro/internal/groupcomm"
	"repro/internal/simnet"
)

// CommAvailability is experiment X3: with U users spread over S servers,
// kill a fraction f of the servers and measure deliverability — the share
// of ordered (author, reader) pairs where the reader obtains the author's
// fresh post. It quantifies §3.2's availability claims:
//
//   - centralized: one platform, all-or-nothing;
//   - federated-home (OStatus): "bottlenecked by single servers that can
//     cause entire instances to be inaccessible if they fail" →
//     deliverability ≈ (1-f)²;
//   - federated-replicated (Matrix): replication + read failover →
//     deliverability ≈ (1-f) (posting still needs the author's home);
//   - social-p2p: no servers; the peers are the users, so the same f is
//     applied to them directly → surviving pairs still deliver.
func CommAvailability(seed int64, servers int, failFractions []float64) *Table {
	m := commAvailabilityMatrix(seed, servers, failFractions)
	t := &Table{
		Title:   fmt.Sprintf("X3: deliverability vs fraction of failed servers (S=%d, 1 user/server)", servers),
		Headers: append([]string{"Model"}, m.Cols...),
	}
	for r, name := range m.Rows {
		row := []any{name}
		for c := range m.Cols {
			row = append(row, fmt.Sprintf("%.2f", m.Vals[r][c]))
		}
		t.Add(row...)
	}
	return t
}

// commAvailabilityMatrix is the numeric core of X3: one seed, one
// deliverability figure per (model, fail-fraction) cell.
func commAvailabilityMatrix(seed int64, servers int, failFractions []float64) Matrix {
	models := []struct {
		name string
		run  func(seed int64, servers int, f float64) float64
	}{
		{"centralized", centralizedDeliverability},
		{"federated-home", fedHomeDeliverability},
		{"federated-replicated", fedReplDeliverability},
		{"social-p2p", socialP2PDeliverability},
	}
	cols := make([]string, len(failFractions))
	for i, f := range failFractions {
		cols[i] = fmt.Sprintf("f=%.0f%%", f*100)
	}
	rows := make([]string, len(models))
	for i, m := range models {
		rows[i] = m.name
	}
	mx := NewMatrix(rows, cols)
	for r, m := range models {
		for c, f := range failFractions {
			mx.Vals[r][c] = m.run(seed, servers, f)
		}
	}
	return mx
}

// CommAvailabilityMulti is X3 aggregated over a batch of seeds on `workers`
// parallel trial runners (0 = GOMAXPROCS).
func CommAvailabilityMulti(seeds []int64, workers, servers int, failFractions []float64) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return commAvailabilityMatrix(seed, servers, failFractions)
	})
	return agg.Table(
		fmt.Sprintf("X3: deliverability vs fraction of failed servers (S=%d, 1 user/server)", servers),
		"Model", "%.2f")
}

func killCount(servers int, f float64) int {
	return int(math.Round(f * float64(servers)))
}

// centralizedDeliverability: U users on one platform server.
func centralizedDeliverability(seed int64, users int, f float64) float64 {
	nw := simnet.New(seed)
	srv := groupcomm.NewCentralServer(nw.AddNode(), nil)
	clients := make([]*groupcomm.CentralClient, users)
	for i := range clients {
		clients[i] = groupcomm.NewCentralClient(nw.AddNode(), srv.Node().ID(),
			groupcomm.UserID(fmt.Sprintf("u%d", i)), 5*time.Second)
	}
	if f > 0 { // any failure fraction kills the single platform
		srv.Node().Crash()
	}
	for _, c := range clients {
		c.Post("room", []byte("post by "+string(c.User())), func(bool) {})
	}
	nw.Run(nw.Now() + time.Minute)
	delivered, pairs := 0, 0
	for ri, reader := range clients {
		var got []groupcomm.Post
		reader.Fetch("room", func(ps []groupcomm.Post, ok bool) { got = ps })
		nw.Run(nw.Now() + time.Minute)
		seen := map[groupcomm.UserID]bool{}
		for _, p := range got {
			seen[p.Author] = true
		}
		for ai := range clients {
			if ai == ri {
				continue
			}
			pairs++
			if seen[clients[ai].User()] {
				delivered++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(delivered) / float64(pairs)
}

func fedHomeDeliverability(seed int64, servers int, f float64) float64 {
	nw := simnet.New(seed)
	insts := make([]*groupcomm.FedInstance, servers)
	for i := range insts {
		insts[i] = groupcomm.NewFedInstance(nw.AddNode(), fmt.Sprintf("inst%d", i), nil)
	}
	for i, a := range insts {
		for j, b := range insts {
			if i != j {
				a.AddPeer(b.Name(), b.Node().ID())
			}
		}
	}
	clients := make([]*groupcomm.FedClient, servers)
	users := make([]groupcomm.UserID, servers)
	for i := range clients {
		users[i] = groupcomm.UserID(fmt.Sprintf("u%d", i))
		insts[i].AddUser(users[i])
		clients[i] = groupcomm.NewFedClient(nw.AddNode(), insts[i].Node().ID(), users[i], 5*time.Second)
	}
	for i, inst := range insts {
		for j := range insts {
			inst.Follow(users[i], users[j], fmt.Sprintf("inst%d", j))
		}
	}
	nw.Run(nw.Now() + time.Minute) // settle follows

	for k := 0; k < killCount(servers, f); k++ {
		insts[k].Node().Crash()
	}
	for _, c := range clients {
		c.Post("room", []byte("hello"), func(bool) {})
	}
	nw.Run(nw.Now() + time.Minute)

	delivered, pairs := 0, 0
	for ri, reader := range clients {
		var got []groupcomm.Post
		reader.Read(func(ps []groupcomm.Post, ok bool) { got = ps })
		nw.Run(nw.Now() + time.Minute)
		seen := map[groupcomm.UserID]bool{}
		for _, p := range got {
			seen[p.Author] = true
		}
		for ai := range clients {
			if ai == ri {
				continue
			}
			pairs++
			if seen[users[ai]] {
				delivered++
			}
		}
	}
	return float64(delivered) / float64(pairs)
}

func fedReplDeliverability(seed int64, servers int, f float64) float64 {
	nw := simnet.New(seed)
	srvs := make([]*groupcomm.ReplServer, servers)
	ids := make([]simnet.NodeID, servers)
	for i := range srvs {
		srvs[i] = groupcomm.NewReplServer(nw.AddNode(), fmt.Sprintf("hs%d", i), nil,
			gossip.Config{Fanout: 3, AntiEntropyInterval: 15 * time.Second})
		ids[i] = srvs[i].Node().ID()
	}
	for i, s := range srvs {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		s.SetPeers(peers)
	}
	clients := make([]*groupcomm.ReplClient, servers)
	for i := range clients {
		clients[i] = groupcomm.NewReplClient(nw.AddNode(), ids[i], ids,
			groupcomm.UserID(fmt.Sprintf("u%d", i)), 5*time.Second)
	}
	for k := 0; k < killCount(servers, f); k++ {
		srvs[k].Node().Crash()
	}
	for _, c := range clients {
		c.Post("room", []byte("hello"), func(bool) {})
	}
	nw.Run(nw.Now() + 2*time.Minute) // replicate

	delivered, pairs := 0, 0
	for ri, reader := range clients {
		var got []groupcomm.Post
		reader.Fetch("room", func(ps []groupcomm.Post, ok bool) { got = ps })
		nw.Run(nw.Now() + 2*time.Minute)
		seen := map[groupcomm.UserID]bool{}
		for _, p := range got {
			seen[p.Author] = true
		}
		for ai := range clients {
			if ai == ri {
				continue
			}
			pairs++
			if seen[groupcomm.UserID(fmt.Sprintf("u%d", ai))] {
				delivered++
			}
		}
	}
	return float64(delivered) / float64(pairs)
}

// socialP2PDeliverability: the users themselves are the infrastructure, so
// f is applied to user nodes. All pairs are mutual friends.
func socialP2PDeliverability(seed int64, users int, f float64) float64 {
	nw := simnet.New(seed)
	peers := make([]*groupcomm.SocialPeer, users)
	for i := range peers {
		peers[i] = groupcomm.NewSocialPeer(nw.AddNode(), groupcomm.UserID(fmt.Sprintf("u%d", i)), 15*time.Second)
	}
	for i, a := range peers {
		for j, b := range peers {
			if i != j {
				a.Befriend(b.User(), b.Node().ID())
			}
		}
	}
	for k := 0; k < killCount(users, f); k++ {
		peers[k].Node().Crash()
	}
	posts := make(map[int]groupcomm.Post, users)
	for i, p := range peers {
		if p.Node().Up() {
			posts[i] = p.Publish("room", []byte("hello"))
		}
	}
	nw.Run(nw.Now() + 2*time.Minute)

	delivered, pairs := 0, 0
	for ai := range peers {
		for ri, reader := range peers {
			if ai == ri {
				continue
			}
			pairs++ // dead authors/readers count as failed pairs
			post, authored := posts[ai]
			if authored && reader.Node().Up() && reader.Has(post.ID) {
				delivered++
			}
		}
	}
	return float64(delivered) / float64(pairs)
}
