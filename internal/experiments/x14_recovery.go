package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/gossip"
	"repro/internal/groupcomm"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
	"repro/internal/storage"
	"repro/internal/webapp"
)

// RecoveryMatrix is experiment X14: every subsystem is driven through the
// canonical fault battery (internal/simnet/fault) and measured on two
// axes — how completely it recovers once faults clear (success %) and how
// long after the last fault the recovery invariant first holds again
// (recovery time). It quantifies §5.3: the hard problems of decentralized
// systems are not the happy path but churn, partitions, and garbage links,
// and a credible alternative to the feudal clouds has to self-heal from
// all of them without an operator.
func RecoveryMatrix(seed int64) *Table {
	m := recoveryMatrix(seed, false)
	scs := fault.Scenarios()
	t := &Table{
		Title:   "X14: recovery matrix — post-fault success and time-to-recover per subsystem × scenario",
		Headers: append([]string{"Subsystem"}, scenarioNames(scs)...),
	}
	for r, name := range m.Rows {
		row := []any{name}
		for c := range scs {
			row = append(row, fmt.Sprintf("%.0f%% @%.1fm", m.Vals[r][2*c], m.Vals[r][2*c+1]))
		}
		t.Add(row...)
	}
	return t
}

// RecoveryMatrixMulti is X14 aggregated over a batch of seeds on `workers`
// parallel trial runners (0 = GOMAXPROCS).
func RecoveryMatrixMulti(seeds []int64, workers int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return recoveryMatrix(seed, false)
	})
	formats := make([]string, 0, len(agg.Cols))
	for range fault.Scenarios() {
		formats = append(formats, "%.0f%%", "%.1fm")
	}
	return agg.Table(
		"X14: recovery matrix — post-fault success and time-to-recover per subsystem × scenario",
		"Subsystem", formats...)
}

// RecoveryMatrixTiny is the scaled-down X14 used by the registry tests:
// same shape, shorter horizon, smaller worlds.
func RecoveryMatrixTiny(seed int64) *Table {
	m := recoveryMatrix(seed, true)
	t := &Table{
		Title:   "X14 (tiny): recovery matrix",
		Headers: append([]string{"Subsystem"}, m.Cols...),
	}
	for r, name := range m.Rows {
		row := []any{name}
		for c := range m.Cols {
			row = append(row, fmt.Sprintf("%.1f", m.Vals[r][c]))
		}
		t.Add(row...)
	}
	return t
}

func scenarioNames(scs []fault.Scenario) []string {
	names := make([]string, len(scs))
	for i, sc := range scs {
		names[i] = sc.Name
	}
	return names
}

// recoverySpec sizes one X14 run. Tiny halves the horizon and shrinks the
// worlds so the whole matrix stays test-suite fast.
type recoverySpec struct {
	horizon time.Duration
	nodes   int
}

func spec(tiny bool, fullNodes int) recoverySpec {
	if tiny {
		n := fullNodes / 2
		if n < 3 {
			n = 3
		}
		return recoverySpec{horizon: 10 * time.Minute, nodes: n}
	}
	return recoverySpec{horizon: 20 * time.Minute, nodes: fullNodes}
}

// recoveryMatrix is the numeric core of X14: rows are subsystems, columns
// alternate "<scenario> ok%" and "<scenario> rec(m)" so one Matrix carries
// both measures through AggregateSeeds.
func recoveryMatrix(seed int64, tiny bool) Matrix {
	scs := fault.Scenarios()
	cols := make([]string, 0, 2*len(scs))
	for _, sc := range scs {
		cols = append(cols, sc.Name+" ok%", sc.Name+" rec(m)")
	}
	runners := []struct {
		name string
		run  func(seed int64, sc fault.Scenario, tiny bool) (float64, time.Duration)
	}{
		{"chain", recoveryChain},
		{"dht", recoveryDHT},
		{"gossip", recoveryGossip},
		{"groupcomm", recoverySocial},
		{"storage", recoveryStorage},
		{"webapp", recoveryWebapp},
	}
	rows := make([]string, len(runners))
	for i, r := range runners {
		rows[i] = r.name
	}
	m := NewMatrix(rows, cols)
	for r, runner := range runners {
		for c, sc := range scs {
			ok, rec := runner.run(seed, sc, tiny)
			m.Vals[r][2*c] = ok * 100
			m.Vals[r][2*c+1] = rec.Minutes()
		}
	}
	return m
}

// recTracker samples a recovery invariant at a fixed cadence from the
// moment the scenario's last fault clears, and remembers the first sample
// at which it held.
type recTracker struct {
	at  time.Duration
	set bool
}

// trackRecovery schedules probe every interval from start+faultEnd to
// start+horizon. probe reports asynchronously through its done callback;
// the tracker records the (scheduled) offset of the first success.
func trackRecovery(nw *simnet.Network, start, faultEnd, horizon, interval time.Duration, probe func(done func(bool))) *recTracker {
	tr := &recTracker{}
	for t := faultEnd; t < horizon; t += interval {
		t := t
		nw.Schedule(start+t, func() {
			probe(func(ok bool) {
				if ok && !tr.set {
					tr.set, tr.at = true, t-faultEnd
				}
			})
		})
	}
	return tr
}

// recovery returns the measured time-to-recover, capped at the fault-free
// window when the invariant never held.
func (tr *recTracker) recovery(faultEnd, horizon time.Duration) time.Duration {
	if tr.set {
		return tr.at
	}
	return horizon - faultEnd
}

func probeInterval(sp recoverySpec) time.Duration { return sp.horizon / 20 }

// recoveryChain: miners must reconverge on one head. Success is the
// fraction of miners sharing the majority head after the run; the probe
// accepts a height spread of one block for in-flight propagation.
func recoveryChain(seed int64, sc fault.Scenario, tiny bool) (float64, time.Duration) {
	sp := spec(tiny, 5)
	nw := simnet.New(seed)
	cfg := chain.Config{InitialDifficulty: 1 << 10, TargetSpacing: 10 * time.Second, Subsidy: 50}
	miners := newMinerNet(nw, sp.nodes, 100, cfg)
	eligible := make([]simnet.NodeID, len(miners))
	for i, m := range miners {
		eligible[i] = m.Node().ID()
	}
	plan := sc.Build(seed, eligible, sp.horizon)
	plan.Apply(nw)
	for _, m := range miners {
		m.Start()
	}
	tr := trackRecovery(nw, 0, plan.End(), sp.horizon, probeInterval(sp), func(done func(bool)) {
		lo, hi := miners[0].Chain().Height(), miners[0].Chain().Height()
		for _, m := range miners[1:] {
			if h := m.Chain().Height(); h < lo {
				lo = h
			} else if h > hi {
				hi = h
			}
		}
		done(hi-lo <= 1)
	})
	nw.Run(sp.horizon)
	for _, m := range miners {
		m.Stop()
	}
	nw.RunAll()
	counts := map[cryptoutil.Hash]int{}
	best := 0
	for _, m := range miners {
		h := m.Chain().HeadHash()
		counts[h]++
		if counts[h] > best {
			best = counts[h]
		}
	}
	return float64(best) / float64(len(miners)), tr.recovery(plan.End(), sp.horizon)
}

// recoveryDHT: published keys must stay findable. Success is the fraction
// of (reader, key) lookups that succeed after the run; the probe is one
// rotating lookup from the first non-anchor reader.
func recoveryDHT(seed int64, sc fault.Scenario, tiny bool) (float64, time.Duration) {
	sp := spec(tiny, 12)
	nKeys := 6
	nw := simnet.New(seed)
	cfg := dht.Config{K: 4, RequestTimeout: 3 * time.Second, RepublishInterval: 5 * time.Minute}
	peers := make([]*dht.Peer, sp.nodes)
	for i := range peers {
		peers[i] = dht.NewPeer(nw.AddNode(), dht.Key{}, cfg)
	}
	for i := 1; i < len(peers); i++ {
		i := i
		nw.After(time.Duration(i)*200*time.Millisecond, func() {
			peers[i].Bootstrap(peers[0].Contact(), nil)
		})
	}
	nw.Run(time.Duration(len(peers)) * 400 * time.Millisecond)
	keys := make([]dht.Key, nKeys)
	for i := range keys {
		keys[i] = cryptoutil.SumHash([]byte(fmt.Sprintf("x14-%d", i)))
		peers[0].Put(keys[i], []byte{byte(i)}, nil)
	}
	nw.Run(nw.Now() + time.Minute)

	eligible := make([]simnet.NodeID, 0, len(peers)-1)
	for _, p := range peers[1:] {
		eligible = append(eligible, p.Node().ID())
	}
	start := nw.Now()
	plan := sc.Build(seed, eligible, sp.horizon)
	plan.ApplyAt(nw, start)
	probeN := 0
	tr := trackRecovery(nw, start, plan.End(), sp.horizon, probeInterval(sp), func(done func(bool)) {
		probeN++
		peers[1].Get(keys[probeN%nKeys], func(_ []byte, found bool) { done(found) })
	})
	nw.Run(start + sp.horizon)

	ok, total := 0, 0
	for _, reader := range peers[1:] {
		for _, k := range keys {
			total++
			found := false
			reader.Get(k, func(_ []byte, f bool) { found = f })
			nw.Run(nw.Now() + 30*time.Second)
			if found {
				ok++
			}
		}
	}
	return float64(ok) / float64(total), tr.recovery(plan.End(), sp.horizon)
}

// recoveryGossip: every item published during the fault window must reach
// every member; anti-entropy is the repair path.
func recoveryGossip(seed int64, sc fault.Scenario, tiny bool) (float64, time.Duration) {
	sp := spec(tiny, 10)
	nItems := 6
	nw := simnet.New(seed)
	members := make([]*gossip.Member, sp.nodes)
	ids := make([]simnet.NodeID, sp.nodes)
	for i := range members {
		node := nw.AddNode()
		ids[i] = node.ID()
		members[i] = gossip.NewMember(node, gossip.Config{Fanout: 3, AntiEntropyInterval: 30 * time.Second})
	}
	for i, m := range members {
		peers := make([]simnet.NodeID, 0, sp.nodes-1)
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
	}
	plan := sc.Build(seed, ids[1:], sp.horizon)
	plan.Apply(nw)
	items := make([]gossip.Item, nItems)
	published := 0
	for i := range items {
		data := fmt.Sprintf("x14-item-%d", i)
		items[i] = gossip.Item{ID: cryptoutil.SumHash([]byte(data)), Data: data, Size: len(data)}
		it := items[i]
		nw.Schedule(time.Duration(i)*sp.horizon/(2*time.Duration(nItems)), func() {
			members[0].Publish(it)
			published++
		})
	}
	// The probe only demands items published so far, so workload completion
	// is not mistaken for slow recovery.
	allHave := func() bool {
		for _, m := range members {
			for _, it := range items[:published] {
				if !m.Has(it.ID) {
					return false
				}
			}
		}
		return true
	}
	tr := trackRecovery(nw, 0, plan.End(), sp.horizon, probeInterval(sp), func(done func(bool)) { done(allHave()) })
	nw.Run(sp.horizon)

	have, total := 0, 0
	for _, m := range members {
		for _, it := range items {
			total++
			if m.Has(it.ID) {
				have++
			}
		}
	}
	return float64(have) / float64(total), tr.recovery(plan.End(), sp.horizon)
}

// recoverySocial: posts by the anchor author must eventually reach every
// friend via periodic sync.
func recoverySocial(seed int64, sc fault.Scenario, tiny bool) (float64, time.Duration) {
	sp := spec(tiny, 8)
	nPosts := 5
	nw := simnet.New(seed)
	peers := make([]*groupcomm.SocialPeer, sp.nodes)
	for i := range peers {
		peers[i] = groupcomm.NewSocialPeer(nw.AddNode(), groupcomm.UserID(fmt.Sprintf("u%d", i)), 30*time.Second)
	}
	for i, p := range peers {
		for j, q := range peers {
			if i != j {
				p.Befriend(q.User(), q.Node().ID())
			}
		}
	}
	eligible := make([]simnet.NodeID, 0, sp.nodes-1)
	for _, p := range peers[1:] {
		eligible = append(eligible, p.Node().ID())
	}
	plan := sc.Build(seed, eligible, sp.horizon)
	plan.Apply(nw)
	published := 0
	for i := 0; i < nPosts; i++ {
		i := i
		nw.Schedule(time.Duration(i)*sp.horizon/(2*time.Duration(nPosts)), func() {
			peers[0].Publish("lobby", []byte(fmt.Sprintf("post %d", i)))
			published++
		})
	}
	author := peers[0].User()
	// Only demand posts published so far (see recoveryGossip).
	allHave := func() bool {
		for _, p := range peers[1:] {
			if len(p.PostsBy(author)) < published {
				return false
			}
		}
		return true
	}
	tr := trackRecovery(nw, 0, plan.End(), sp.horizon, probeInterval(sp), func(done func(bool)) { done(allHave()) })
	nw.Run(sp.horizon)

	have, total := 0, 0
	for _, p := range peers[1:] {
		total += nPosts
		have += len(p.PostsBy(author))
	}
	return float64(have) / float64(total), tr.recovery(plan.End(), sp.horizon)
}

// recoveryStorage: an object uploaded before the faults must still pass a
// full audit afterwards, and the bytes must round-trip.
func recoveryStorage(seed int64, sc fault.Scenario, tiny bool) (float64, time.Duration) {
	sp := spec(tiny, 6)
	nw := simnet.New(seed)
	client := storage.NewClient(nw.AddNode(), 30*time.Second)
	providers := make([]*storage.Provider, sp.nodes)
	refs := make([]storage.ProviderRef, sp.nodes)
	eligible := make([]simnet.NodeID, sp.nodes)
	for i := range providers {
		providers[i] = storage.NewProvider(nw.AddNode(), 1<<20, storage.Honest)
		refs[i] = providers[i].Ref()
		eligible[i] = providers[i].Node().ID()
	}
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 17)
	}
	var manifest *storage.Manifest
	var placement *storage.Placement
	client.Upload(data, 512, refs, 3, func(m *storage.Manifest, pl *storage.Placement, err error) {
		if err == nil {
			manifest, placement = m, pl
		}
	})
	nw.Run(nw.Now() + time.Minute)
	if manifest == nil {
		return 0, sp.horizon
	}
	start := nw.Now()
	plan := sc.Build(seed, eligible, sp.horizon)
	plan.ApplyAt(nw, start)
	tr := trackRecovery(nw, start, plan.End(), sp.horizon, probeInterval(sp), func(done func(bool)) {
		client.Audit(manifest, placement, 10*time.Second, func(r *storage.AuditReport) {
			done(r.Failed() == 0 && len(r.Results) > 0)
		})
	})
	nw.Run(start + sp.horizon)

	var report *storage.AuditReport
	client.Audit(manifest, placement, 10*time.Second, func(r *storage.AuditReport) { report = r })
	var got []byte
	client.Download(manifest, placement, func(b []byte, err error) {
		if err == nil {
			got = b
		}
	})
	nw.Run(nw.Now() + time.Minute)
	if report == nil || len(report.Results) == 0 || !bytes.Equal(got, data) {
		return 0, tr.recovery(plan.End(), sp.horizon)
	}
	return float64(report.Passed()) / float64(len(report.Results)), tr.recovery(plan.End(), sp.horizon)
}

// recoveryWebapp: a hostless site published before the faults must be
// fully visitable afterwards.
func recoveryWebapp(seed int64, sc fault.Scenario, tiny bool) (float64, time.Duration) {
	sp := spec(tiny, 6)
	nw := simnet.New(seed)
	tracker := webapp.NewTracker(nw.AddNode())
	authorNode := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
	authorDHT := dht.NewPeer(authorNode, dht.Key{}, dht.Config{})
	author := webapp.NewPeer(authorNode, authorDHT, tracker.Node().ID(), 30*time.Second)
	owner, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		return 0, sp.horizon
	}
	visitors := make([]*webapp.Peer, sp.nodes)
	eligible := make([]simnet.NodeID, sp.nodes)
	for i := range visitors {
		node := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
		d := dht.NewPeer(node, dht.Key{}, dht.Config{})
		d.Bootstrap(authorDHT.Contact(), nil)
		visitors[i] = webapp.NewPeer(node, d, tracker.Node().ID(), 30*time.Second)
		eligible[i] = node.ID()
	}
	nw.Run(2 * time.Minute)
	files := map[string][]byte{
		"index.html": []byte("<html><body>x14</body></html>"),
		"app.js":     make([]byte, 2048),
	}
	var site cryptoutil.Hash
	author.Publish(owner, 1, files, cryptoutil.Hash{}, func(m *webapp.Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)
	if site.IsZero() {
		return 0, sp.horizon
	}
	for _, p := range visitors[:2] {
		p.Visit(site, func(map[string][]byte, error) {})
	}
	nw.Run(nw.Now() + time.Minute)

	start := nw.Now()
	plan := sc.Build(seed, eligible, sp.horizon)
	plan.ApplyAt(nw, start)
	tr := trackRecovery(nw, start, plan.End(), sp.horizon, probeInterval(sp), func(done func(bool)) {
		visitors[0].Visit(site, func(fs map[string][]byte, err error) {
			done(err == nil && len(fs) == len(files))
		})
	})
	nw.Run(start + sp.horizon)

	ok := 0
	for _, p := range visitors {
		good := false
		p.Visit(site, func(fs map[string][]byte, err error) { good = err == nil && len(fs) == len(files) })
		nw.Run(nw.Now() + time.Minute)
		if good {
			ok++
		}
	}
	return float64(ok) / float64(len(visitors)), tr.recovery(plan.End(), sp.horizon)
}
