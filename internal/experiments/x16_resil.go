package experiments

import (
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/gossip"
	"repro/internal/groupcomm"
	"repro/internal/metrics"
	"repro/internal/resil"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
	"repro/internal/storage"
	"repro/internal/webapp"
)

// X16: the resilience matrix. X14 measures whether subsystems recover
// *after* faults clear; X16 measures what a user experiences *during*
// them — the paper's §5.3 argument is that self-* properties, not the
// happy path, decide whether volunteer infrastructure can displace the
// feudal clouds. Each client-facing subsystem is driven through the fault
// battery plus a sustained-churn scenario that never heals, once on the
// historical fixed-timeout transport ("naive") and once on the adaptive
// resilience layer ("resil": Jacobson/Karels RTO, backed-off retries,
// per-peer breakers, p95 hedging — internal/resil). Per cell:
//
//	avail%    fraction of probe operations launched inside the fault
//	          window that succeed within the subsystem's SLA
//	p95(s)    p95 probe-operation latency over the fault window
//	msg/node  substrate messages sent from fault start to run end, per
//	          node — the bandwidth price of the retries and hedges
//	rec(m)    minutes after the last fault step until the recovery
//	          invariant first holds (X14's measure, kept for continuity)
//
// Everything is a pure function of the seed: worlds, fault plans, probe
// schedules, and every retry/hedge decision are deterministic, so the
// matrix is byte-identical at any trial-worker count.

// resilScenarios is the X16 battery: the canonical set plus the
// non-healing sustained-churn stressor (which deliberately stays out of
// fault.Scenarios() — see its contract note).
func resilScenarios() []fault.Scenario {
	return append(fault.Scenarios(), fault.SustainedChurn())
}

// resilMode is one transport configuration under test.
type resilMode struct {
	name string
	cfg  resil.Config
}

func resilModes() []resilMode {
	return []resilMode{
		{"naive", resil.Config{}},
		{"resil", resil.Defaults()},
	}
}

// resilSpec sizes one X16 world. DHT runs at the full 1000-node
// population — adaptive timeouts only earn their keep when lookups
// traverse many hops of mixed-quality peers.
type resilSpec struct {
	horizon time.Duration
	nodes   int
	probes  int
}

func rspec(tiny bool, fullNodes, tinyNodes int) resilSpec {
	if tiny {
		return resilSpec{horizon: 8 * time.Minute, nodes: tinyNodes, probes: 8}
	}
	return resilSpec{horizon: 20 * time.Minute, nodes: fullNodes, probes: 24}
}

// resilCell is one (subsystem, mode, scenario) measurement.
type resilCell struct {
	avail      float64 // in [0, 1]
	p95        float64 // seconds
	msgPerNode float64
	rec        time.Duration
}

// availMeter launches probe operations at a fixed cadence across the
// fault window and scores each against the subsystem SLA: a probe is
// available iff its operation completes successfully within sla of
// launch. Latencies of every completed probe feed the p95.
type availMeter struct {
	nw        *simnet.Network
	sla       time.Duration
	total, ok int
	lat       metrics.Sample
}

// meterAvailability schedules probes every interval through
// [wStart, wEnd) (offsets relative to start). Probes still unanswered
// when the run ends count as unavailable.
func meterAvailability(nw *simnet.Network, start, wStart, wEnd, interval, sla time.Duration, probe func(done func(bool))) *availMeter {
	am := &availMeter{nw: nw, sla: sla}
	for t := wStart; t < wEnd; t += interval {
		am.total++
		nw.Schedule(start+t, func() {
			launched := nw.Now()
			probe(func(okResp bool) {
				l := nw.Now() - launched
				am.lat.Observe(l.Seconds())
				if okResp && l <= sla {
					am.ok++
				}
			})
		})
	}
	return am
}

func (am *availMeter) availability() float64 {
	if am.total == 0 {
		return 0
	}
	return float64(am.ok) / float64(am.total)
}

func (am *availMeter) p95() float64 { return am.lat.Quantile(0.95) }

// probeWindow returns the span probes are launched over: the plan's
// active window, or the whole horizon for an empty (clean) plan.
func probeWindow(p *fault.Plan, horizon time.Duration) (time.Duration, time.Duration) {
	ws, we := p.Start(), p.End()
	if we <= ws {
		return 0, horizon
	}
	return ws, we
}

// sentMeter snapshots the substrate's sent-message counter at a virtual
// time, so traffic can be charged to the fault window only.
func sentMeter(nw *simnet.Network, at time.Duration) *int64 {
	base := new(int64)
	nw.Schedule(at, func() { *base = nw.Trace().Sent })
	return base
}

// resilDHT: a 1000-node Kademlia population. The probe is a PUT of a
// fresh key from a dedicated probe peer: unlike a FIND_VALUE — whose
// α-parallel first-found-wins lookup hides individual timeouts — a store
// round completes only when every replica call resolves, so one crashed
// or lossy holder pins the naive client at the full fixed timeout. Only
// the probe peer carries the mode's resilience config, so the two rows
// differ in nothing but the client transport under test. The SLA is
// interactive-grade: a name publish has 2s to land.
func resilDHT(seed int64, sc fault.Scenario, rcfg resil.Config, tiny bool) resilCell {
	sp := rspec(tiny, 1000, 30)
	const nKeys = 8
	sla := 2 * time.Second
	nw := simnet.New(seed)
	base := dht.Config{K: 8, Alpha: 3, RequestTimeout: 3 * time.Second, RepublishInterval: 5 * time.Minute}
	readerCfg := base
	readerCfg.Resilience = rcfg
	readerCfg.RepublishInterval = 0 // probe keys are one-shot; no republish chatter
	peers := make([]*dht.Peer, sp.nodes)
	for i := range peers {
		cfg := base
		if i == 1 {
			cfg = readerCfg
		}
		peers[i] = dht.NewPeer(nw.AddNode(), dht.Key{}, cfg)
	}
	for i := 1; i < len(peers); i++ {
		p := peers[i]
		nw.After(time.Duration(i)*20*time.Millisecond, func() {
			p.Bootstrap(peers[0].Contact(), nil)
		})
	}
	// Bounded run: the republish timer chain never drains, so RunAll
	// would spin forever.
	nw.Run(time.Duration(sp.nodes)*20*time.Millisecond + 30*time.Second)
	keys := make([]dht.Key, nKeys)
	for i := range keys {
		keys[i] = cryptoutil.SumHash([]byte(fmt.Sprintf("x16-%d", i)))
		peers[0].Put(keys[i], []byte{byte(i)}, nil)
	}
	nw.Run(nw.Now() + time.Minute)

	// Anchors: the bootstrap/publisher peer and the reader stay up.
	eligible := make([]simnet.NodeID, 0, len(peers)-2)
	for _, p := range peers[2:] {
		eligible = append(eligible, p.Node().ID())
	}
	start := nw.Now()
	plan := sc.Build(seed, eligible, sp.horizon)
	plan.ApplyAt(nw, start)
	ws, we := probeWindow(plan, sp.horizon)
	sent := sentMeter(nw, start+ws)
	probeN := 0
	am := meterAvailability(nw, start, ws, we, (we-ws)/time.Duration(sp.probes), sla, func(done func(bool)) {
		probeN++
		k := cryptoutil.SumHash([]byte(fmt.Sprintf("x16-probe-%d", probeN)))
		peers[1].Put(k, []byte{byte(probeN)}, func(stored int) { done(stored > 0) })
	})
	recN := 0
	tr := trackRecovery(nw, start, plan.End(), sp.horizon, probeInterval(recoverySpec{horizon: sp.horizon}), func(done func(bool)) {
		recN++
		peers[1].Get(keys[recN%nKeys], func(_ []byte, found bool) { done(found) })
	})
	nw.Run(start + sp.horizon)
	return resilCell{
		avail:      am.availability(),
		p95:        am.p95(),
		msgPerNode: float64(nw.Trace().Sent-*sent) / float64(sp.nodes),
		rec:        tr.recovery(plan.End(), sp.horizon),
	}
}

// resilStorage: an object uploaded before the faults, probed by full
// downloads during them. Chunk fetches walk the replica list, so a naive
// client burns its whole fixed timeout on every crashed provider it
// tries first.
func resilStorage(seed int64, sc fault.Scenario, rcfg resil.Config, tiny bool) resilCell {
	sp := rspec(tiny, 16, 6)
	sla := 10 * time.Second
	nw := simnet.New(seed)
	client := storage.NewClientWith(nw.AddNode(), 30*time.Second, rcfg)
	providers := make([]*storage.Provider, sp.nodes)
	refs := make([]storage.ProviderRef, sp.nodes)
	eligible := make([]simnet.NodeID, sp.nodes)
	for i := range providers {
		providers[i] = storage.NewProvider(nw.AddNode(), 1<<20, storage.Honest)
		refs[i] = providers[i].Ref()
		eligible[i] = providers[i].Node().ID()
	}
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	var manifest *storage.Manifest
	var placement *storage.Placement
	client.Upload(data, 512, refs, 3, func(m *storage.Manifest, pl *storage.Placement, err error) {
		if err == nil {
			manifest, placement = m, pl
		}
	})
	nw.Run(nw.Now() + time.Minute)
	if manifest == nil {
		return resilCell{rec: sp.horizon}
	}
	start := nw.Now()
	plan := sc.Build(seed, eligible, sp.horizon)
	plan.ApplyAt(nw, start)
	ws, we := probeWindow(plan, sp.horizon)
	sent := sentMeter(nw, start+ws)
	download := func(done func(bool)) {
		client.Download(manifest, placement, func(b []byte, err error) {
			done(err == nil && len(b) == len(data))
		})
	}
	am := meterAvailability(nw, start, ws, we, (we-ws)/time.Duration(sp.probes), sla, download)
	tr := trackRecovery(nw, start, plan.End(), sp.horizon, probeInterval(recoverySpec{horizon: sp.horizon}), download)
	nw.Run(start + sp.horizon)
	return resilCell{
		avail:      am.availability(),
		p95:        am.p95(),
		msgPerNode: float64(nw.Trace().Sent-*sent) / float64(sp.nodes+1),
		rec:        tr.recovery(plan.End(), sp.horizon),
	}
}

// resilGroupcomm: a Matrix-style replicated federation read through a
// failover client. Every server is fault-eligible — failover is the
// subsystem's whole answer to a dead homeserver, so the question is how
// fast the client walks the server list.
func resilGroupcomm(seed int64, sc fault.Scenario, rcfg resil.Config, tiny bool) resilCell {
	sp := rspec(tiny, 6, 4)
	sla := 8 * time.Second
	nw := simnet.New(seed)
	servers := make([]*groupcomm.ReplServer, sp.nodes)
	ids := make([]simnet.NodeID, sp.nodes)
	for i := range servers {
		servers[i] = groupcomm.NewReplServer(nw.AddNode(), fmt.Sprintf("srv%d", i), nil,
			gossip.Config{Fanout: 3, AntiEntropyInterval: 30 * time.Second})
		ids[i] = servers[i].Node().ID()
	}
	for i, s := range servers {
		peers := make([]simnet.NodeID, 0, sp.nodes-1)
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		s.SetPeers(peers)
	}
	client := groupcomm.NewReplClientWith(nw.AddNode(), ids[0], ids[1:], "alice", 10*time.Second, rcfg)
	for i := 0; i < 4; i++ {
		i := i
		nw.After(time.Duration(i+1)*10*time.Second, func() {
			client.Post("lobby", []byte(fmt.Sprintf("pre-fault %d", i)), func(bool) {})
		})
	}
	nw.Run(2 * time.Minute)

	start := nw.Now()
	plan := sc.Build(seed, ids, sp.horizon)
	plan.ApplyAt(nw, start)
	ws, we := probeWindow(plan, sp.horizon)
	sent := sentMeter(nw, start+ws)
	fetch := func(done func(bool)) {
		client.Fetch("lobby", func(posts []groupcomm.Post, ok bool) {
			done(ok && len(posts) > 0)
		})
	}
	am := meterAvailability(nw, start, ws, we, (we-ws)/time.Duration(sp.probes), sla, fetch)
	tr := trackRecovery(nw, start, plan.End(), sp.horizon, probeInterval(recoverySpec{horizon: sp.horizon}), fetch)
	nw.Run(start + sp.horizon)
	return resilCell{
		avail:      am.availability(),
		p95:        am.p95(),
		msgPerNode: float64(nw.Trace().Sent-*sent) / float64(sp.nodes+1),
		rec:        tr.recovery(plan.End(), sp.horizon),
	}
}

// resilWebapp: a hostless site under seeder churn. Each probe is a full
// Visit by a fresh, never-before-used visitor (a warm visitor would
// serve the site from its own blob cache and measure nothing), resolving
// the manifest via DHT-with-tracker-fallback and fetching blobs from
// whatever seeders answer.
func resilWebapp(seed int64, sc fault.Scenario, rcfg resil.Config, tiny bool) resilCell {
	sp := rspec(tiny, 12, 5)
	sla := 15 * time.Second
	nw := simnet.New(seed)
	tracker := webapp.NewTracker(nw.AddNode())
	authorNode := nw.AddNode()
	dhtCfg := dht.Config{}
	authorDHT := dht.NewPeer(authorNode, dht.Key{}, dhtCfg)
	author := webapp.NewPeer(authorNode, authorDHT, tracker.Node().ID(), 30*time.Second)
	owner, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		return resilCell{rec: sp.horizon}
	}
	probeDHTCfg := dhtCfg
	probeDHTCfg.Resilience = rcfg
	seeders := make([]*webapp.Peer, sp.nodes)
	eligible := make([]simnet.NodeID, sp.nodes)
	for i := range seeders {
		node := nw.AddNode()
		d := dht.NewPeer(node, dht.Key{}, dhtCfg)
		d.Bootstrap(authorDHT.Contact(), nil)
		seeders[i] = webapp.NewPeer(node, d, tracker.Node().ID(), 30*time.Second)
		eligible[i] = node.ID()
	}
	// One cold visitor per probe (mid-fault and recovery), bootstrapped
	// before the faults, used exactly once.
	nVisitors := sp.probes + 20
	visitors := make([]*webapp.Peer, nVisitors)
	for i := range visitors {
		node := nw.AddNode()
		d := dht.NewPeer(node, dht.Key{}, probeDHTCfg)
		d.Bootstrap(authorDHT.Contact(), nil)
		visitors[i] = webapp.NewPeerWith(node, d, tracker.Node().ID(), 30*time.Second, rcfg)
	}
	nw.Run(2 * time.Minute)
	files := map[string][]byte{
		"index.html": []byte("<html><body>x16</body></html>"),
		"app.js":     make([]byte, 2048),
	}
	var site cryptoutil.Hash
	author.Publish(owner, 1, files, cryptoutil.Hash{}, func(m *webapp.Manifest) { site = m.Site })
	nw.Run(nw.Now() + time.Minute)
	if site.IsZero() {
		return resilCell{rec: sp.horizon}
	}
	for _, p := range seeders {
		p.Visit(site, func(map[string][]byte, error) {})
	}
	nw.Run(nw.Now() + time.Minute)

	start := nw.Now()
	plan := sc.Build(seed, eligible, sp.horizon)
	plan.ApplyAt(nw, start)
	ws, we := probeWindow(plan, sp.horizon)
	sent := sentMeter(nw, start+ws)
	visitN := 0
	visit := func(done func(bool)) {
		if visitN >= len(visitors) {
			done(false)
			return
		}
		v := visitors[visitN]
		visitN++
		v.Visit(site, func(fs map[string][]byte, err error) {
			done(err == nil && len(fs) == len(files))
		})
	}
	am := meterAvailability(nw, start, ws, we, (we-ws)/time.Duration(sp.probes), sla, visit)
	tr := trackRecovery(nw, start, plan.End(), sp.horizon, probeInterval(recoverySpec{horizon: sp.horizon}), visit)
	nw.Run(start + sp.horizon)
	return resilCell{
		avail:      am.availability(),
		p95:        am.p95(),
		msgPerNode: float64(nw.Trace().Sent-*sent) / float64(sp.nodes+2),
		rec:        tr.recovery(plan.End(), sp.horizon),
	}
}

// resilienceMatrix is the numeric core of X16: rows are subsystem × mode,
// columns run four measures per scenario, so one Matrix carries the whole
// grid through AggregateSeeds.
func resilienceMatrix(seed int64, tiny bool) Matrix {
	scs := resilScenarios()
	modes := resilModes()
	cols := make([]string, 0, 4*len(scs))
	for _, sc := range scs {
		cols = append(cols,
			sc.Name+" avail%", sc.Name+" p95(s)", sc.Name+" msg/node", sc.Name+" rec(m)")
	}
	runners := []struct {
		name string
		run  func(seed int64, sc fault.Scenario, rcfg resil.Config, tiny bool) resilCell
	}{
		{"dht", resilDHT},
		{"storage", resilStorage},
		{"groupcomm", resilGroupcomm},
		{"webapp", resilWebapp},
	}
	rows := make([]string, 0, len(runners)*len(modes))
	for _, r := range runners {
		for _, m := range modes {
			rows = append(rows, r.name+" "+m.name)
		}
	}
	m := NewMatrix(rows, cols)
	ri := 0
	for _, runner := range runners {
		for _, mode := range modes {
			for c, sc := range scs {
				cell := runner.run(seed, sc, mode.cfg, tiny)
				m.Vals[ri][4*c] = cell.avail * 100
				m.Vals[ri][4*c+1] = cell.p95
				m.Vals[ri][4*c+2] = cell.msgPerNode
				m.Vals[ri][4*c+3] = cell.rec.Minutes()
			}
			ri++
		}
	}
	return m
}

// ResilienceMatrix renders the single-seed X16 table.
func ResilienceMatrix(seed int64) *Table {
	m := resilienceMatrix(seed, false)
	scs := resilScenarios()
	t := &Table{
		Title:   "X16: resilience matrix — mid-fault availability, p95, traffic, recovery per subsystem×mode × scenario",
		Headers: append([]string{"Subsystem/mode"}, scenarioNames(scs)...),
	}
	for r, name := range m.Rows {
		row := []any{name}
		for c := range scs {
			row = append(row, fmt.Sprintf("%.0f%% p95=%.1fs %.0fm/n @%.1fm",
				m.Vals[r][4*c], m.Vals[r][4*c+1], m.Vals[r][4*c+2], m.Vals[r][4*c+3]))
		}
		t.Add(row...)
	}
	return t
}

// ResilienceMatrixMulti is X16 aggregated over a batch of seeds on
// `workers` parallel trial runners (0 = GOMAXPROCS).
func ResilienceMatrixMulti(seeds []int64, workers int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return resilienceMatrix(seed, false)
	})
	formats := make([]string, 0, len(agg.Cols))
	for range resilScenarios() {
		formats = append(formats, "%.0f%%", "%.2f", "%.0f", "%.1f")
	}
	return agg.Table(
		"X16: resilience matrix — mid-fault availability, p95, traffic, recovery per subsystem×mode × scenario",
		"Subsystem/mode", formats...)
}

// ResilienceMatrixTiny is the scaled-down X16 used by the registry tests:
// same shape, shorter horizon, smaller worlds.
func ResilienceMatrixTiny(seed int64) *Table {
	m := resilienceMatrix(seed, true)
	t := &Table{
		Title:   "X16 (tiny): resilience matrix",
		Headers: append([]string{"Subsystem/mode"}, m.Cols...),
	}
	for r, name := range m.Rows {
		row := []any{name}
		for c := range m.Cols {
			row = append(row, fmt.Sprintf("%.1f", m.Vals[r][c]))
		}
		t.Add(row...)
	}
	return t
}
