package experiments

import (
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/simnet/fault"
	"repro/internal/webapp"
	"repro/internal/workload"
)

// X18: the workload engine meets the architecture question. X2–X16 probe
// subsystems with synthetic fixed-cadence probes; X18 drives three whole
// architectures with the same realistic demand curve — Zipf-popular
// content, diurnal load with per-region phase offsets, and a flash crowd
// that makes the catalog's most obscure object ~10³× hotter over a few
// virtual minutes (an unknown blog hitting the global front page; the
// paper's §2 "why self-hosting dies" scenario).
//
// The three arms get identical hardware budgets — every serving machine
// is a home-broadband link (≈1 Mbit/s up) — and the exact same request
// schedule, produced once by internal/workload.Generate. Only the
// architecture differs:
//
//	ostatus-1srv    the feudal baseline a self-hoster escapes *to*: one
//	                origin box answers everything; clients time out, no
//	                retry
//	fed-replicated  a replicated federation (Matrix-style): K full
//	                replicas, clients home round-robin and fail over one
//	                hop
//	p2p-webapp      the hostless webapp: every successful visitor
//	                becomes a seeder, so the flash crowd brings its own
//	                capacity
//
// Per arm: avail% (requests answered within the SLA latency budget —
// X16's user-experienced measure), p95 latency of completed requests,
// origin% (share of served payload bytes carried by the busiest
// single machine — 100 for the feudal arm by construction), and msg/node
// substrate traffic. Everything is a pure function of the seed: the
// schedule, every keypair, and every retry come off deterministic
// streams, so the table is byte-identical at any trial-worker count.

// x18Spec sizes one X18 world.
type x18Spec struct {
	clients  int
	objects  int
	objBytes int
	servers  int // fed-replicated replica count
	regions  int
	zipfS    float64
	meanRate float64 // population-wide req/s, time-averaged
	amp      float64 // diurnal amplitude
	floor    float64 // diurnal night floor
	horizon  time.Duration
	day      time.Duration // diurnal period (virtual)
	sla      time.Duration // latency budget per request
	timeout  time.Duration // client RPC/visit timeout
	flash    workload.Flash
}

func x18SpecFor(tiny bool) x18Spec {
	if tiny {
		return x18Spec{
			clients: 12, objects: 8, objBytes: 24 << 10, servers: 3, regions: 2,
			zipfS: 1.1, meanRate: 0.25, amp: 0.6, floor: 0.5,
			horizon: 10 * time.Minute, day: 5 * time.Minute,
			sla: 6 * time.Second, timeout: 30 * time.Second,
			flash: workload.Flash{
				Object: 7, Start: 3 * time.Minute, Ramp: time.Minute,
				Peak: 1000, Decay: 90 * time.Second,
			},
		}
	}
	return x18Spec{
		clients: 36, objects: 24, objBytes: 64 << 10, servers: 4, regions: 4,
		zipfS: 1.1, meanRate: 0.3, amp: 0.6, floor: 0.5,
		horizon: 30 * time.Minute, day: 15 * time.Minute,
		sla: 8 * time.Second, timeout: 30 * time.Second,
		flash: workload.Flash{
			Object: 23, Start: 10 * time.Minute, Ramp: 2 * time.Minute,
			Peak: 1000, Decay: 3 * time.Minute,
		},
	}
}

// x18Grace is how long past the horizon an arm runs so in-flight
// requests either finish or time out before scoring.
const x18Grace = 90 * time.Second

// WorkloadVariants are the schedule shapes cmd/feudalism's -workload
// flag selects between. "flash" is the headline (registry) variant.
func WorkloadVariants() []string { return []string{"zipf", "diurnal", "flash"} }

// x18Stream builds the shared request schedule for one workload variant:
// "zipf" is steady-rate pure popularity, "diurnal" adds the day/night
// cycle, "flash" adds the spike on the least-popular object.
func x18Stream(seed int64, sp x18Spec, wl string) ([]workload.Request, *workload.RegionSet) {
	rs := workload.DefaultRegions(sp.regions, sp.day)
	cfg := workload.StreamConfig{
		Seed:    seed,
		Clients: sp.clients,
		Horizon: sp.horizon,
		Pop:     workload.NewZipf(sp.objects, sp.zipfS),
		Regions: &rs,
	}
	dc := workload.DiurnalConfig{Mean: sp.meanRate, Period: sp.day}
	switch wl {
	case "zipf":
	case "diurnal":
		dc.Amp, dc.Floor = sp.amp, sp.floor
	case "flash":
		dc.Amp, dc.Floor = sp.amp, sp.floor
		cfg.Flash = sp.flash
	default:
		panic(fmt.Sprintf("x18: unknown workload variant %q (want zipf|diurnal|flash)", wl))
	}
	cfg.Rate = workload.NewDiurnal(dc)
	return workload.Generate(cfg), &rs
}

// x18Cell is one arm's scoreboard.
type x18Cell struct {
	avail       float64 // fraction of requests answered OK within sla
	p95         float64 // seconds, over completed requests
	originShare float64 // busiest single machine's share of served payload bytes
	msgPerNode  float64
}

// x18Outcome is one request's fate — the conformance suite asserts
// availability over time windows from these.
type x18Outcome struct {
	at time.Duration // schedule time, relative to measurement start
	ok bool          // completed successfully within sla
}

// x18Meter scores requests against the SLA as their callbacks land.
type x18Meter struct {
	nw       *simnet.Network
	sla      time.Duration
	ok       int
	lat      metrics.Sample
	outcomes []x18Outcome
}

func newX18Meter(nw *simnet.Network, sp x18Spec, n int) *x18Meter {
	return &x18Meter{nw: nw, sla: sp.sla, outcomes: make([]x18Outcome, 0, n)}
}

// launch wraps one request: call start() exactly when the request fires;
// the returned func scores the response. Requests whose callback never
// arrives stay unanswered and count against availability.
func (m *x18Meter) done(at, launched time.Duration) func(okResp bool) {
	return m.doneOn(at, launched, m.nw.Now)
}

// doneOn is done with an explicit completion clock. The network's global
// clock is event-exact on the single-heap engine, but on the sharded
// engine it only advances at window barriers while the response callback
// runs on the requesting node's shard clock — so cross-engine arms (X19)
// pass the requesting node's Now to keep measured latency identical on
// both engines.
func (m *x18Meter) doneOn(at, launched time.Duration, clock func() time.Duration) func(okResp bool) {
	return func(okResp bool) {
		l := clock() - launched
		m.lat.Observe(l.Seconds())
		hit := okResp && l <= m.sla
		if hit {
			m.ok++
		}
		m.outcomes = append(m.outcomes, x18Outcome{at: at, ok: hit})
	}
}

func (m *x18Meter) cell(total int, originShare, msgPerNode float64) x18Cell {
	return x18Cell{
		avail:       float64(m.ok) / float64(total),
		p95:         m.lat.Quantile(0.95),
		originShare: originShare,
		msgPerNode:  msgPerNode,
	}
}

// x18Feudal: the single-home-server OStatus arm. One origin on a home
// link serves every object; a request is one RPC with no retry.
func x18Feudal(seed int64, sp x18Spec, reqs []workload.Request, rs *workload.RegionSet) x18Cell {
	nw := simnet.New(seed)
	origin := simnet.NewRPCNode(nw.AddNodeWithProfile(simnet.HomeBroadbandProfile()))
	origin.Serve("content.get", func(from simnet.NodeID, req any) (any, int) {
		return req, 32 + sp.objBytes
	})
	clients := make([]*simnet.RPCNode, sp.clients)
	ids := make([]simnet.NodeID, sp.clients)
	for i := range clients {
		clients[i] = simnet.NewRPCNode(nw.AddNode())
		ids[i] = clients[i].Node().ID()
	}
	rs.Apply(nw, ids)
	base := nw.Now()
	meter := newX18Meter(nw, sp, len(reqs))
	sent := sentMeter(nw, base)
	for _, r := range reqs {
		r := r
		nw.Schedule(base+r.At, func() {
			done := meter.done(r.At, nw.Now())
			clients[r.Client].Call(origin.Node().ID(), "content.get", r.Object, 200, sp.timeout,
				func(resp any, err error) { done(err == nil) })
		})
	}
	nw.Run(base + sp.horizon + x18Grace)
	return meter.cell(len(reqs), 1.0,
		float64(nw.Trace().Sent-*sent)/float64(nw.NumNodes()))
}

// x18Federated: K full replicas on home links; clients home round-robin
// and fail over exactly one hop on error.
func x18Federated(seed int64, sp x18Spec, reqs []workload.Request, rs *workload.RegionSet) x18Cell {
	nw := simnet.New(seed)
	servers := make([]*simnet.RPCNode, sp.servers)
	served := make([]float64, sp.servers)
	for i := range servers {
		i := i
		servers[i] = simnet.NewRPCNode(nw.AddNodeWithProfile(simnet.HomeBroadbandProfile()))
		servers[i].Serve("content.get", func(from simnet.NodeID, req any) (any, int) {
			served[i] += float64(32 + sp.objBytes)
			return req, 32 + sp.objBytes
		})
	}
	clients := make([]*simnet.RPCNode, sp.clients)
	ids := make([]simnet.NodeID, sp.clients)
	for i := range clients {
		clients[i] = simnet.NewRPCNode(nw.AddNode())
		ids[i] = clients[i].Node().ID()
	}
	rs.Apply(nw, ids)
	base := nw.Now()
	meter := newX18Meter(nw, sp, len(reqs))
	sent := sentMeter(nw, base)
	for _, r := range reqs {
		r := r
		nw.Schedule(base+r.At, func() {
			done := meter.done(r.At, nw.Now())
			home := r.Client % sp.servers
			clients[r.Client].Call(servers[home].Node().ID(), "content.get", r.Object, 200, sp.timeout,
				func(resp any, err error) {
					if err == nil {
						done(true)
						return
					}
					next := (home + 1) % sp.servers
					clients[r.Client].Call(servers[next].Node().ID(), "content.get", r.Object, 200, sp.timeout,
						func(resp any, err error) { done(err == nil) })
				})
		})
	}
	nw.Run(base + sp.horizon + x18Grace)
	var total, busiest float64
	for _, b := range served {
		total += b
		if b > busiest {
			busiest = b
		}
	}
	share := 0.0
	if total > 0 {
		share = busiest / total
	}
	return meter.cell(len(reqs), share,
		float64(nw.Trace().Sent-*sent)/float64(nw.NumNodes()))
}

// x18P2P: the hostless-webapp arm. One author (home link) publishes each
// object as a site; clients are webapp peers. A request Forgets any local
// copy first — each hit models a fresh user on that device — then Visits,
// so the blobs always cross the network; between its own requests a
// client keeps seeding what it last fetched, which is exactly how the
// flash crowd brings its own capacity. An optional fault scenario (the
// conformance battery) crashes/degrades client nodes mid-run.
func x18P2P(seed int64, sp x18Spec, reqs []workload.Request, rs *workload.RegionSet, sc *fault.Scenario) (x18Cell, []x18Outcome) {
	nw := simnet.New(seed)
	tracker := webapp.NewTracker(nw.AddNode())
	authorNode := nw.AddNodeWithProfile(simnet.HomeBroadbandProfile())
	authorDHT := dht.NewPeer(authorNode, dht.Key{}, dht.Config{})
	author := webapp.NewPeer(authorNode, authorDHT, tracker.Node().ID(), sp.timeout)
	clients := make([]*webapp.Peer, sp.clients)
	ids := make([]simnet.NodeID, sp.clients)
	for i := range clients {
		node := nw.AddNode()
		d := dht.NewPeer(node, dht.Key{}, dht.Config{})
		clients[i] = webapp.NewPeer(node, d, tracker.Node().ID(), sp.timeout)
		ids[i] = node.ID()
		i := i
		nw.After(time.Duration(i+1)*20*time.Millisecond, func() {
			d.Bootstrap(authorDHT.Contact(), nil)
		})
	}
	rs.Apply(nw, ids)
	nw.Run(nw.Now() + time.Minute)

	// One site per object, each under its own deterministic keypair.
	sites := make([]cryptoutil.Hash, sp.objects)
	for o := range sites {
		o := o
		owner, err := cryptoutil.GenerateKeyPair(nw.Rand())
		if err != nil {
			return x18Cell{}, nil
		}
		payload := make([]byte, sp.objBytes)
		for i := range payload {
			payload[i] = byte(o*31 + i)
		}
		author.Publish(owner, 1, map[string][]byte{"blob.bin": payload}, cryptoutil.Hash{},
			func(m *webapp.Manifest) { sites[o] = m.Site })
	}
	nw.Run(nw.Now() + time.Minute)
	for _, s := range sites {
		if s.IsZero() {
			return x18Cell{}, nil
		}
	}

	base := nw.Now()
	if sc != nil {
		sc.Build(seed, ids, sp.horizon).ApplyAt(nw, base)
	}
	meter := newX18Meter(nw, sp, len(reqs))
	sent := sentMeter(nw, base)
	flashReqs := 0
	for _, r := range reqs {
		r := r
		if sp.flash.Active() && r.Object == sp.flash.Object && r.At >= sp.flash.Start {
			flashReqs++
		}
		nw.Schedule(base+r.At, func() {
			done := meter.done(r.At, nw.Now())
			p := clients[r.Client]
			p.Forget(sites[r.Object])
			p.Visit(sites[r.Object], func(fs map[string][]byte, err error) {
				done(err == nil && len(fs) == 1)
			})
		})
	}
	nw.Run(base + sp.horizon + x18Grace)

	var swarm float64
	for _, p := range clients {
		swarm += float64(p.BlobBytesServed)
	}
	authorBytes := float64(author.BlobBytesServed)
	share := 0.0
	if authorBytes+swarm > 0 {
		share = authorBytes / (authorBytes + swarm)
	}
	// X18-only observability: these register on this arm's network alone,
	// after every pre-existing experiment's metrics are already fixed.
	reg := nw.Obs()
	reg.Counter("workload.req.launched").Set(int64(len(reqs)))
	reg.Counter("workload.req.sla_ok").Set(int64(meter.ok))
	reg.Counter("workload.req.flash").Set(int64(flashReqs))
	reg.Gauge("workload.flash.peak_x").Set(sp.flash.Peak)
	return meter.cell(len(reqs), share,
		float64(nw.Trace().Sent-*sent)/float64(nw.NumNodes())), meter.outcomes
}

// workloadMatrix is the numeric core of X18: one shared schedule, three
// architectures, four measures.
func workloadMatrix(seed int64, wl string, tiny bool) Matrix {
	sp := x18SpecFor(tiny)
	reqs, rs := x18Stream(seed, sp, wl)
	m := NewMatrix(
		[]string{"ostatus-1srv", "fed-replicated", "p2p-webapp"},
		[]string{"avail%", "p95(s)", "origin%", "msg/node"},
	)
	cells := []x18Cell{
		x18Feudal(seed, sp, reqs, rs),
		x18Federated(seed, sp, reqs, rs),
	}
	p2p, _ := x18P2P(seed, sp, reqs, rs, nil)
	cells = append(cells, p2p)
	for r, c := range cells {
		m.Vals[r][0] = c.avail * 100
		m.Vals[r][1] = c.p95
		m.Vals[r][2] = c.originShare * 100
		m.Vals[r][3] = c.msgPerNode
	}
	return m
}

// WorkloadContention renders the single-seed X18 table for one workload
// variant ("zipf", "diurnal" or "flash" — see WorkloadVariants).
func WorkloadContention(seed int64, wl string) *Table {
	m := workloadMatrix(seed, wl, false)
	sp := x18SpecFor(false)
	t := &Table{
		Title: fmt.Sprintf("X18: %s workload — %d clients, %d objects, SLA %v; feudal vs federated vs p2p on equal home links",
			wl, sp.clients, sp.objects, sp.sla),
		Headers: append([]string{"Architecture"}, m.Cols...),
	}
	for r, name := range m.Rows {
		t.Add(name,
			fmt.Sprintf("%.1f%%", m.Vals[r][0]),
			fmt.Sprintf("%.2fs", m.Vals[r][1]),
			fmt.Sprintf("%.1f%%", m.Vals[r][2]),
			fmt.Sprintf("%.0f", m.Vals[r][3]))
	}
	return t
}

// WorkloadContentionMulti is the flash-crowd X18 aggregated over a batch
// of seeds on `workers` parallel trial runners (0 = GOMAXPROCS).
func WorkloadContentionMulti(seeds []int64, workers int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return workloadMatrix(seed, "flash", false)
	})
	return agg.Table(
		"X18: flash-crowd workload — feudal vs federated vs p2p on equal home links",
		"Architecture", "%.1f", "%.2f", "%.1f", "%.0f")
}

// WorkloadContentionTiny is the scaled-down X18 the registry tests run.
func WorkloadContentionTiny(seed int64) *Table {
	m := workloadMatrix(seed, "flash", true)
	t := &Table{
		Title:   "X18 (tiny): flash-crowd workload",
		Headers: append([]string{"Architecture"}, m.Cols...),
	}
	for r, name := range m.Rows {
		row := []any{name}
		for c := range m.Cols {
			row = append(row, fmt.Sprintf("%.1f", m.Vals[r][c]))
		}
		t.Add(row...)
	}
	return t
}
