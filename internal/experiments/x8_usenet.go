package experiments

import (
	"fmt"
	"time"

	"repro/internal/groupcomm"
	"repro/internal/simnet"
)

// UsenetLoad is experiment X8: it quantifies §3.2's "Usenet eventually
// collapsed under its own traffic load." Each of S servers hosts one
// author who posts P articles of B bytes. Under Usenet's full flooding,
// every server stores every article, so per-server storage grows linearly
// with network size; under the federated-home model each instance stores
// only what its users follow (here: a fixed 4 remote authors), so
// per-server cost stays flat as the network grows. The centralized row
// shows the aggregation extreme: one operator bears everything.
func UsenetLoad(seed int64, serverCounts []int, postsPerAuthor, postBytes int) *Table {
	t := &Table{
		Title: fmt.Sprintf("X8: per-server stored bytes as the network grows (%d posts/author, %dB each, follow 4 remote authors)",
			postsPerAuthor, postBytes),
		Headers: []string{"Servers"},
	}
	models := []string{"usenet (full flood)", "federated-home (followed only)", "centralized (one operator)"}
	for _, m := range models {
		t.Headers = append(t.Headers, m)
	}
	for _, s := range serverCounts {
		u := usenetPerServerBytes(seed, s, postsPerAuthor, postBytes)
		f := fedHomePerServerBytes(seed, s, postsPerAuthor, postBytes)
		c := int64(s * postsPerAuthor * (postBytes + 64)) // one operator stores all
		t.Add(fmt.Sprintf("%d", s), byteCount(u), byteCount(f), byteCount(c))
	}
	return t
}

func byteCount(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// usenetPerServerBytes returns the mean per-server stored bytes after all
// authors post.
func usenetPerServerBytes(seed int64, servers, posts, postBytes int) int64 {
	nw := simnet.New(seed)
	srvs := make([]*groupcomm.UsenetServer, servers)
	ids := make([]simnet.NodeID, servers)
	for i := range srvs {
		srvs[i] = groupcomm.NewUsenetServer(nw.AddNode(), fmt.Sprintf("news%d", i))
		ids[i] = srvs[i].Node().ID()
	}
	for i, s := range srvs {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		s.SetPeers(peers)
	}
	for i, s := range srvs {
		for p := 0; p < posts; p++ {
			body := make([]byte, postBytes)
			copy(body, fmt.Sprintf("article %d-%d", i, p))
			s.PostLocal("alt.decentralization", groupcomm.UserID(fmt.Sprintf("u%d", i)), body)
		}
	}
	nw.Run(nw.Now() + time.Hour)
	var total int64
	for _, s := range srvs {
		total += s.BytesStored
	}
	return total / int64(servers)
}

// fedHomePerServerBytes returns the mean per-instance stored bytes in the
// federated-home model where each user follows 4 remote authors.
func fedHomePerServerBytes(seed int64, servers, posts, postBytes int) int64 {
	nw := simnet.New(seed)
	insts := make([]*groupcomm.FedInstance, servers)
	for i := range insts {
		insts[i] = groupcomm.NewFedInstance(nw.AddNode(), fmt.Sprintf("inst%d", i), nil)
	}
	for i, a := range insts {
		for j, b := range insts {
			if i != j {
				a.AddPeer(b.Name(), b.Node().ID())
			}
		}
	}
	clients := make([]*groupcomm.FedClient, servers)
	for i := range insts {
		u := groupcomm.UserID(fmt.Sprintf("u%d", i))
		insts[i].AddUser(u)
		clients[i] = groupcomm.NewFedClient(nw.AddNode(), insts[i].Node().ID(), u, 10*time.Second)
		// Follow self plus 4 remote authors (wrapping).
		insts[i].Follow(u, u, insts[i].Name())
		for k := 1; k <= 4 && k < servers; k++ {
			j := (i + k) % servers
			insts[i].Follow(u, groupcomm.UserID(fmt.Sprintf("u%d", j)), fmt.Sprintf("inst%d", j))
		}
	}
	nw.Run(nw.Now() + time.Minute) // settle follows
	for i := range clients {
		for p := 0; p < posts; p++ {
			body := make([]byte, postBytes)
			copy(body, fmt.Sprintf("article %d-%d", i, p))
			clients[i].Post("alt.decentralization", body, func(bool) {})
		}
	}
	nw.Run(nw.Now() + time.Hour)
	var total int64
	for _, inst := range insts {
		total += inst.StoredBytes()
	}
	return total / int64(servers)
}
