package experiments

import (
	"bytes"
	"fmt"
	"runtime"

	"repro/internal/obs"
)

// The huge tiers push X15 one-to-two orders of magnitude past the golden
// sweep (ScaleTiers caps at 10k): 100k nodes for the optional merge-gate
// tier and 1M for the nightly. These populations only run on the sharded
// engine (simnet.NewWithConfig), whose results are byte-identical at every
// worker count — which is what lets the harness measure a parallel speedup
// and simultaneously prove the parallelism changed nothing. The golden
// ScaleTiers stay on the single-heap engine, untouched.

// ScaleHugeTiers returns the sharded sweep's population axis.
func ScaleHugeTiers() []int { return []int{100_000, 1_000_000} }

// HugeShards is the default shard count for the huge tiers. Any value
// produces identical results (the determinism suite pins this); 64 keeps
// per-shard heaps small at 1M nodes while oversubscribing any plausible
// worker count.
const HugeShards = 64

// HugeOptions sizes one huge-tier sweep.
type HugeOptions struct {
	Seed int64
	// Tiers are the populations to run; nil means ScaleHugeTiers().
	Tiers []int
	// Subsystems to run; nil means ScaleSubsystems().
	Subsystems []string
	// Shards for the sharded engine; 0 means HugeShards.
	Shards int
	// Workers are the worker counts to run each cell at; nil means
	// {1, GOMAXPROCS} (deduplicated), i.e. the serial baseline plus the
	// parallel run whose speedup the artifact records.
	Workers []int
	// WallClock supplies monotonic wall-clock nanoseconds (injected by
	// cmd/feudalism, never read under internal/). Required: the huge tiers
	// exist to measure msgs/sec of wall time.
	WallClock func() int64
}

func (o HugeOptions) withDefaults() HugeOptions {
	if o.Tiers == nil {
		o.Tiers = ScaleHugeTiers()
	}
	if o.Subsystems == nil {
		o.Subsystems = ScaleSubsystems()
	}
	if o.Shards <= 0 {
		o.Shards = HugeShards
	}
	if o.Workers == nil {
		o.Workers = []int{1}
		if p := runtime.GOMAXPROCS(0); p > 1 {
			o.Workers = append(o.Workers, p)
		}
	}
	return o
}

// HugeCell is one (subsystem, N, workers) run of the sharded sweep.
type HugeCell struct {
	Subsystem string
	N         int
	Shards    int
	Workers   int
	Cell      ScaleCell
	// Snapshot is the deterministic merged metric state of the run; byte
	// equality across worker counts is the determinism proof the artifact
	// carries.
	Snapshot *obs.Snapshot
	Timing   *obs.Timing
	// MsgsPerSec is substrate deliveries per wall-clock second — the
	// first-class throughput metric of the huge tiers. 0 without a clock.
	MsgsPerSec float64
}

// ID returns the cell's bench-entry identifier.
func (c HugeCell) ID() string {
	return fmt.Sprintf("x15.huge.%s.n%d.w%d", c.Subsystem, c.N, c.Workers)
}

// RunScaleHuge runs every (subsystem, tier, workers) cell and returns the
// cells plus the bench artifact. It returns an error if any pair of runs
// of the same (subsystem, tier) at different worker counts diverges — the
// determinism acceptance gate for the sharded engine.
func RunScaleHuge(opts HugeOptions) ([]HugeCell, *obs.BenchFile, error) {
	opts = opts.withDefaults()
	file := &obs.BenchFile{
		Schema: obs.BenchSchema,
		Seed:   opts.Seed,
		Trials: 1,
		Scale:  "huge",
	}
	var cells []HugeCell
	for _, sub := range opts.Subsystems {
		for _, n := range opts.Tiers {
			var baseline []byte
			for _, w := range opts.Workers {
				c, err := runHugeCell(sub, n, w, opts)
				if err != nil {
					return nil, nil, err
				}
				enc, err := encodeSnapshot(c.Snapshot)
				if err != nil {
					return nil, nil, err
				}
				if baseline == nil {
					baseline = enc
				} else if !bytes.Equal(baseline, enc) {
					return nil, nil, fmt.Errorf(
						"x15.huge.%s.n%d: metric snapshot at workers=%d differs from workers=%d — sharded engine nondeterminism",
						sub, n, w, opts.Workers[0])
				}
				cells = append(cells, c)
				file.Experiments = append(file.Experiments, obs.BenchExperiment{
					ID: c.ID(), Metrics: c.Snapshot, Timing: c.Timing,
				})
			}
		}
	}
	file.Sort()
	return cells, file, nil
}

func runHugeCell(sub string, n, workers int, opts HugeOptions) (HugeCell, error) {
	col := obs.NewCollector()
	restore := obs.SetCollector(col)
	defer restore()

	var before runtime.MemStats
	var startNS int64
	if opts.WallClock != nil {
		runtime.ReadMemStats(&before)
		startNS = opts.WallClock()
	}
	cell := ScaleCellRunSharded(sub, opts.Seed, n, opts.Shards, workers)
	c := HugeCell{Subsystem: sub, N: n, Shards: opts.Shards, Workers: workers, Cell: cell, Snapshot: col.Merged()}
	if opts.WallClock != nil {
		elapsed := opts.WallClock() - startNS
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		c.Timing = &obs.Timing{
			WallNS:     elapsed,
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
		}
		if elapsed > 0 {
			c.MsgsPerSec = float64(cell.Messages) / (float64(elapsed) / 1e9)
		}
	}
	return c, nil
}

func encodeSnapshot(s *obs.Snapshot) ([]byte, error) {
	f := obs.BenchFile{Schema: obs.BenchSchema, Experiments: []obs.BenchExperiment{{ID: "snap", Metrics: s}}}
	return f.EncodeJSON()
}

// HugeSpeedup returns the msgs/sec ratio between the highest- and
// lowest-worker runs of (subsystem, n) in cells, and whether both ends
// exist with timing. The nightly gate reads this as its >1.5× check.
func HugeSpeedup(cells []HugeCell, sub string, n int) (float64, bool) {
	var lo, hi *HugeCell
	for i := range cells {
		c := &cells[i]
		if c.Subsystem != sub || c.N != n {
			continue
		}
		if lo == nil || c.Workers < lo.Workers {
			lo = c
		}
		if hi == nil || c.Workers > hi.Workers {
			hi = c
		}
	}
	if lo == nil || hi == nil || lo.Workers == hi.Workers || lo.MsgsPerSec <= 0 || hi.MsgsPerSec <= 0 {
		return 0, false
	}
	return hi.MsgsPerSec / lo.MsgsPerSec, true
}
