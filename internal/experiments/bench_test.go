package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// x14Bench runs the X14 recovery matrix (the experiment touching the most
// subsystems) as a multi-trial bench entry and returns the snapshot JSON.
func x14Bench(t *testing.T, workers int) []byte {
	t.Helper()
	e, ok := Find("x14")
	if !ok {
		t.Fatal("x14 missing from registry")
	}
	entry := runBenchEntry(e, BenchOptions{Seed: 4242, Trials: 3, Workers: workers, Scale: "full"}.withDefaults())
	var buf bytes.Buffer
	if err := entry.Metrics.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestX14BenchGolden pins the fixed-seed X14 observability snapshot byte
// for byte: identical across repeated runs, across trial worker counts,
// and against the checked-in golden file. Regenerate with
// `go test ./internal/experiments -run X14BenchGolden -update` after an
// intentional behaviour change.
func TestX14BenchGolden(t *testing.T) {
	serial := x14Bench(t, 1)
	parallel := x14Bench(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("X14 snapshot differs between 1 and 4 trial workers")
	}

	golden := filepath.Join("testdata", "x14_bench_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("X14 snapshot drifted from %s; if intentional, rerun with -update\ngot:\n%s", golden, serial)
	}
}

// TestRunBenchTinyReproducible checks that a whole-registry bench file is
// byte-identical across runs when timing is off.
func TestRunBenchTinyReproducible(t *testing.T) {
	opts := BenchOptions{Seed: 42, Scale: "tiny"}
	b1, err := RunBench(opts).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := RunBench(opts).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("tiny bench output differs between identical runs")
	}
	if len(b1) == 0 || b1[len(b1)-1] != '\n' {
		t.Fatal("bench output must end with a newline")
	}
}

// TestBaselinePerturbationFailsGate proves the CI gate actually bites: a
// copy of the committed BENCH_baseline.json with one counter perturbed
// beyond tolerance must produce a regression, while the untouched pair
// compares clean.
func TestBaselinePerturbationFailsGate(t *testing.T) {
	const path = "../../BENCH_baseline.json"
	clean, err := obs.LoadBenchFile(path)
	if err != nil {
		t.Skipf("baseline not present: %v", err)
	}
	same, err := obs.LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if probs := obs.Compare(clean, same, obs.Tolerances{}); len(probs) != 0 {
		t.Fatalf("identical baselines compare unclean: %v", probs)
	}

	perturbed, err := obs.LoadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bumped := false
	for _, e := range perturbed.Experiments {
		if e.Metrics == nil {
			continue
		}
		for name, v := range e.Metrics.Counters {
			e.Metrics.Counters[name] = v*2 + 10 // far beyond any sane tolerance
			bumped = true
			break
		}
		if bumped {
			break
		}
	}
	if !bumped {
		t.Fatal("baseline has no counters to perturb")
	}
	if probs := obs.Compare(clean, perturbed, obs.Tolerances{Metric: 0.25}); len(probs) == 0 {
		t.Fatal("perturbed baseline passed the gate")
	}
}
