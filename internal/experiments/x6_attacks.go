package experiments

import (
	"time"

	"repro/internal/simnet"
	"repro/internal/storage"
)

// StorageAttacks is experiment X6: one provider per cheating strategy
// faces each implemented proof mechanism; the table reports which proofs
// catch which attacks. §3.3: proof-of-replication and friends exist to
// defeat "Sybil Attacks … Outsourcing Attacks … Generation Attacks".
func StorageAttacks(seed int64) *Table {
	t := &Table{
		Title:   "X6: which proof mechanism catches which provider attack",
		Headers: []string{"Provider Behaviour", "Proof-of-Storage", "Proof-of-Retrievability", "Proof-of-Replication (3 replicas)"},
	}
	behaviours := []struct {
		name  string
		cheat storage.CheatMode
	}{
		{"honest", storage.Honest},
		{"drop after ack", storage.DropAfterAck},
		{"corrupt bits", storage.CorruptBits},
		{"outsource to accomplice", storage.OutsourceFetch},
		{"dedup sealed replicas", storage.DedupReplicas},
	}
	for _, b := range behaviours {
		pos, ret, rep := storageAttackRun(seed, b.cheat)
		t.Add(b.name, verdict(pos, b.cheat == storage.Honest), verdict(ret, b.cheat == storage.Honest), verdict(rep, b.cheat == storage.Honest))
	}
	return t
}

// verdict renders an audit pass/fail from the verifier's perspective.
func verdict(passed bool, honest bool) string {
	switch {
	case passed && honest:
		return "pass (correct)"
	case passed && !honest:
		return "PASS (missed!)"
	case !passed && honest:
		return "FAIL (false alarm!)"
	default:
		return "caught"
	}
}

// storageAttackRun subjects one provider to all three proof mechanisms and
// reports whether it passed each (replication = all 3 replicas pass).
func storageAttackRun(seed int64, cheat storage.CheatMode) (posPass, retPass, repPass bool) {
	nw := simnet.New(seed)
	// Slow links so the outsourcing round trip is visible to the deadline.
	nw.SetDefaultProfile(simnet.LinkProfile{Latency: 40 * time.Millisecond, UplinkBps: 20e6, DownlinkBps: 20e6})
	client := storage.NewClient(nw.AddNode(), 30*time.Second)
	provider := storage.NewProvider(nw.AddNode(), 1<<30, cheat)
	accomplice := storage.NewProvider(nw.AddNode(), 1<<30, storage.Honest)
	provider.SetAccomplice(accomplice.Node().ID())

	data := make([]byte, 2048)
	nw.Rand().Read(data)
	chunk := storage.NewChunk(data)
	sentinels, err := storage.MakeSentinels(nw.Rand(), data, 4)
	if err != nil {
		panic(err)
	}

	// Plain + accomplice copies, and sealed replicas.
	var m *storage.Manifest
	var pl *storage.Placement
	client.Upload(data, 0, []storage.ProviderRef{provider.Ref(), accomplice.Ref()}, 2,
		func(mm *storage.Manifest, pp *storage.Placement, err error) { m, pl = mm, pp })
	for r := 0; r < 3; r++ {
		client.PutSealed(chunk.ID, data, provider.Ref(), r, func(bool) {})
	}
	nw.Run(nw.Now() + time.Minute)

	// The audit deadline admits one honest round trip (~160 ms) but not the
	// outsourcer's nested fetch (~320 ms: the challenge RTT plus a hidden
	// fetch RTT to the accomplice).
	deadline := 240 * time.Millisecond

	// Proof-of-storage via the client's audit (only the suspect's results).
	client.Audit(m, pl, deadline, func(r *storage.AuditReport) {
		posPass = true
		for _, res := range r.Results {
			if res.Holder.Node == provider.Node().ID() && !res.OK {
				posPass = false
			}
		}
	})
	nw.Run(nw.Now() + time.Minute)

	// Proof-of-retrievability.
	client.RetAudit(chunk.ID, provider.Ref(), sentinels[0], deadline, func(ok bool) { retPass = ok })
	nw.Run(nw.Now() + time.Minute)

	// Proof-of-replication: all three sealed replicas must answer.
	passes := 0
	for r := 0; r < 3; r++ {
		root := storage.SealedRoot(data, provider.Node().ID(), r)
		client.RepAudit(chunk.ID, root, len(data), provider.Ref(), r, deadline, func(ok bool) {
			if ok {
				passes++
			}
		})
	}
	nw.Run(nw.Now() + time.Minute)
	repPass = passes == 3
	_ = pl
	return posPass, retPass, repPass
}
