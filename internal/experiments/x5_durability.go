package experiments

import (
	"fmt"
	"time"

	"repro/internal/simnet"
	"repro/internal/storage"
)

// StorageDurability is experiment X5: objects are stored under several
// redundancy schemes on a provider fleet whose members die permanently at
// random times; with and without a periodic audit-and-repair loop, we
// measure how many objects remain recoverable after the horizon, and the
// repair traffic paid. §3.3: "These design decisions involve inherent
// trade-offs among durability, availability, consistency, and performance
// of decentralized storage."
type durabilityScheme struct {
	name     string
	overhead float64
	upload   func(c *storage.Client, data []byte, pool []storage.ProviderRef, done func(*storage.Manifest, *storage.Placement, error))
}

// durabilitySchemes is the fixed scheme axis of the X5 matrix.
func durabilitySchemes() []durabilityScheme {
	return []durabilityScheme{
		{"replicate r=1", 1, func(c *storage.Client, d []byte, p []storage.ProviderRef, done func(*storage.Manifest, *storage.Placement, error)) {
			c.Upload(d, 0, p, 1, done)
		}},
		{"replicate r=2", 2, func(c *storage.Client, d []byte, p []storage.ProviderRef, done func(*storage.Manifest, *storage.Placement, error)) {
			c.Upload(d, 0, p, 2, done)
		}},
		{"replicate r=3", 3, func(c *storage.Client, d []byte, p []storage.ProviderRef, done func(*storage.Manifest, *storage.Placement, error)) {
			c.Upload(d, 0, p, 3, done)
		}},
		{"erasure RS(4,6)", 1.5, func(c *storage.Client, d []byte, p []storage.ProviderRef, done func(*storage.Manifest, *storage.Placement, error)) {
			c.UploadErasure(d, 4, 2, p, done)
		}},
		{"erasure RS(4,8)", 2, func(c *storage.Client, d []byte, p []storage.ProviderRef, done func(*storage.Manifest, *storage.Placement, error)) {
			c.UploadErasure(d, 4, 4, p, done)
		}},
	}
}

// StorageDurability runs the durability × repair matrix and returns the
// result table.
func StorageDurability(seed int64, objects, providers int, horizon time.Duration, deadFraction float64) *Table {
	schemes := durabilitySchemes()
	m := durabilityMatrix(seed, objects, providers, horizon, deadFraction)
	t := &Table{
		Title: fmt.Sprintf("X5: object survival after %v with %.0f%% of %d providers dying permanently (%d objects)",
			horizon, deadFraction*100, providers, objects),
		Headers: []string{"Scheme", "Overhead", "Survival (no repair)", "Survival (repair/30m)", "Repair Traffic (KB)"},
	}
	for r, s := range schemes {
		t.Add(s.name,
			fmt.Sprintf("%.1fx", s.overhead),
			fmt.Sprintf("%.0f%%", m.Vals[r][0]),
			fmt.Sprintf("%.0f%%", m.Vals[r][1]),
			fmt.Sprintf("%.0f", m.Vals[r][2]))
	}
	return t
}

// durabilityMatrix is the numeric core of X5: one seed, per scheme the
// survival percentages without and with repair plus the repair traffic.
func durabilityMatrix(seed int64, objects, providers int, horizon time.Duration, deadFraction float64) Matrix {
	schemes := durabilitySchemes()
	rows := make([]string, len(schemes))
	for i, s := range schemes {
		rows[i] = s.name
	}
	mx := NewMatrix(rows, []string{"Survival (no repair)", "Survival (repair/30m)", "Repair Traffic (KB)"})
	for r, s := range schemes {
		noRepair, _ := durabilityRun(seed, s, objects, providers, horizon, deadFraction, 0)
		withRepair, traffic := durabilityRun(seed, s, objects, providers, horizon, deadFraction, 30*time.Minute)
		mx.Vals[r][0] = noRepair * 100
		mx.Vals[r][1] = withRepair * 100
		mx.Vals[r][2] = traffic / 1024
	}
	return mx
}

// StorageDurabilityMulti is X5 aggregated over a batch of seeds on
// `workers` parallel trial runners (0 = GOMAXPROCS).
func StorageDurabilityMulti(seeds []int64, workers, objects, providers int, horizon time.Duration, deadFraction float64) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return durabilityMatrix(seed, objects, providers, horizon, deadFraction)
	})
	return agg.Table(
		fmt.Sprintf("X5: object survival after %v with %.0f%% of %d providers dying permanently (%d objects)",
			horizon, deadFraction*100, providers, objects),
		"Scheme", "%.0f%%", "%.0f%%", "%.0f")
}

func durabilityRun(seed int64, scheme durabilityScheme, objects, providers int, horizon time.Duration, deadFraction float64, repairEvery time.Duration) (survival float64, repairBytes float64) {
	nw := simnet.New(seed)
	client := storage.NewClient(nw.AddNode(), 10*time.Second)
	provs := make([]*storage.Provider, providers)
	for i := range provs {
		provs[i] = storage.NewProvider(nw.AddNode(), 1<<30, storage.Honest)
	}
	pool := make([]storage.ProviderRef, providers)
	for i, p := range provs {
		pool[i] = p.Ref()
	}

	// Upload all objects.
	type object struct {
		data []byte
		m    *storage.Manifest
		pl   *storage.Placement
	}
	objs := make([]*object, objects)
	for i := range objs {
		data := make([]byte, 2048)
		nw.Rand().Read(data)
		o := &object{data: data}
		objs[i] = o
		scheme.upload(client, data, pool, func(m *storage.Manifest, pl *storage.Placement, err error) {
			o.m, o.pl = m, pl
		})
	}
	nw.Run(nw.Now() + time.Minute)

	// Schedule permanent deaths uniformly over the horizon.
	dead := int(deadFraction * float64(providers))
	perm := nw.Rand().Perm(providers)
	start := nw.Now()
	for k := 0; k < dead; k++ {
		victim := provs[perm[k]]
		at := start + time.Duration(nw.Rand().Int63n(int64(horizon)))
		nw.Schedule(at, func() { victim.Node().Crash() })
	}

	// Optional repair loop: audit, drop dead holders, repair.
	baselineBytes := int64(0)
	if repairEvery > 0 {
		var repairLoop func()
		repairLoop = func() {
			for _, o := range objs {
				o := o
				if o.m == nil {
					continue
				}
				client.Audit(o.m, o.pl, 5*time.Second, func(r *storage.AuditReport) {
					for _, res := range r.Results {
						if !res.OK {
							o.pl.Remove(o.m.Chunks[res.ChunkIndex], res.Holder)
						}
					}
					client.Repair(o.m, o.pl, pool, func(int, error) {})
				})
			}
			if nw.Now() < start+horizon {
				nw.After(repairEvery, repairLoop)
			}
		}
		nw.After(repairEvery, repairLoop)
		baselineBytes = nw.Trace().BytesSent
	}
	nw.Run(start + horizon)

	repairBytes = float64(nw.Trace().BytesSent - baselineBytes)
	// Final check: is each object still downloadable?
	alive := 0
	pending := 0
	for _, o := range objs {
		if o.m == nil {
			continue
		}
		pending++
		client.Download(o.m, o.pl, func(data []byte, err error) {
			pending--
			if err == nil {
				alive++
			}
		})
	}
	nw.Run(nw.Now() + 5*time.Minute)
	return float64(alive) / float64(objects), repairBytes
}
