package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/identity"
)

// WoTSybil is experiment X12: in an honest web of trust (a small community
// where everyone is ≤3 endorsement hops from everyone), an attacker
// manufactures Sybil rings of growing size. Before any honest member
// endorses a ring identity, the verifier trusts none of them; after a
// single careless endorsement, the verifier transitively trusts the entire
// ring. §3.1: PKIs relying on a WoT suffer "WoT Sybil attacks" — this
// measures the amplification factor directly.
func WoTSybil(seed int64, honest int, ringSizes []int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X12: WoT Sybil amplification (%d honest members, verify depth 6)", honest),
		Headers: []string{"Sybil Ring Size", "Trusted Before Bridge", "Trusted After 1 Careless Endorsement", "Amplification"},
	}
	for _, ring := range ringSizes {
		before, after := wotSybilRun(seed, honest, ring)
		amp := "∞"
		if before > 0 {
			amp = fmt.Sprintf("%.0fx", float64(after-before))
		}
		t.Add(ring, before, after, amp)
	}
	return t
}

// wotSybilRun returns how many identities the verifier trusts before and
// after one honest member endorses one ring member. Counts exclude the
// honest community itself.
func wotSybilRun(seed int64, honest, ringSize int) (before, after int) {
	rng := rand.New(rand.NewSource(seed + int64(ringSize)))
	w := identity.NewWebOfTrust()
	members := make([]*identity.Identity, honest)
	for i := range members {
		id, err := identity.New(rng, fmt.Sprintf("honest-%d", i), identity.MechanismPseudonym)
		if err != nil {
			panic(err)
		}
		members[i] = id
		w.AddMember(id)
	}
	// Ring-of-honest topology plus a few chords: everyone reachable.
	for i := range members {
		w.Endorse(members[i], members[(i+1)%honest].Fingerprint())
		w.Endorse(members[i], members[(i+3)%honest].Fingerprint())
	}
	sybils, err := w.SybilRing(rng, ringSize)
	if err != nil {
		panic(err)
	}
	verifier := members[0].Fingerprint()
	const depth = 6

	countSybils := func() int {
		reach := w.ReachableSet(verifier, depth)
		n := 0
		for _, s := range sybils {
			if reach[s] {
				n++
			}
		}
		return n
	}
	before = countSybils()
	// One careless endorsement by a member 2 hops from the verifier.
	w.Endorse(members[2%honest], sybils[0])
	after = countSybils()
	return before, after
}
