package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/storage/chunker"
)

// X17: overlapping-upload dedup and storage tiering. The paper's §3.3
// economics need volunteer storage to beat the feudal clouds on price,
// and the cheapest byte is the one never stored twice: when many users
// upload overlapping data (the same document base, a shared corpus, a
// re-upload after an edit), content-address dedup collapses the copies —
// but only if the chunker cuts the overlap into identical chunks. X17
// drives two overlapping-upload populations through fixed-size and
// content-defined chunking against providers running the tiered
// localstore (memory cache over capacity-bounded disk, GC):
//
//	shared-prefix  every user's document = one common prefix + a unique
//	               tail. Chunk alignment is preserved, so even fixed-size
//	               chunking dedups the prefix; the workload calibrates
//	               what alignment is worth.
//	edited-doc     every user's document = one common base with a handful
//	               of random insertions. Insertions shift every later
//	               byte, so fixed-size chunks stop matching at the first
//	               edit; content-defined boundaries re-synchronise within
//	               a window and keep deduping (LBFS's founding
//	               observation).
//
// Per cell: the fleet dedup ratio (logical bytes accepted over physical
// bytes stored), the memory-tier hit rate over a re-download pass, the
// repair traffic after a provider crash (repairs run with source pinning
// so GC cannot evict a chunk mid-restore), and the disk bytes GC reclaims
// once users release their uploads and filler traffic applies capacity
// pressure. Everything is a pure function of the seed.

// dedupSpec sizes one X17 world. Dedup is a per-provider effect — a
// replica only collapses onto a copy that landed on the same provider —
// so the populations keep users-per-provider high enough that shared
// chunks actually collide, and edits sparse enough (relative to the
// chunk count) that most of an edited document is untouched content.
type dedupSpec struct {
	users     int // uploaders sharing overlapping documents
	providers int
	docBytes  int // base document size
	replicas  int
	avgChunk  int // CDC average chunk size; fixed mode uses it as the chunk size
	edits     int // random insertions per user in the edited-doc workload
}

func dedupSpecFor(tiny bool) dedupSpec {
	if tiny {
		return dedupSpec{users: 6, providers: 3, docBytes: 16 << 10, replicas: 2, avgChunk: 512, edits: 3}
	}
	return dedupSpec{users: 16, providers: 6, docBytes: 64 << 10, replicas: 2, avgChunk: 1024, edits: 6}
}

// provCapacity sizes the disk tier: twice a provider's even share of the
// logical upload volume, so uploads never contend but the filler phase
// reliably forces GC.
func (sp dedupSpec) provCapacity() int64 {
	share := int64(sp.users) * int64(sp.docBytes) * int64(sp.replicas) / int64(sp.providers)
	return 2 * share
}

// The workload generators build the per-user documents; rng must come
// from the world so the documents are a function of the seed alone.
func sharedPrefixDocs(rng *rand.Rand, sp dedupSpec) [][]byte {
	prefix := make([]byte, sp.docBytes*3/4)
	rng.Read(prefix)
	docs := make([][]byte, sp.users)
	for i := range docs {
		tail := make([]byte, sp.docBytes/4)
		rng.Read(tail)
		docs[i] = append(append([]byte{}, prefix...), tail...)
	}
	return docs
}

func editedDocs(rng *rand.Rand, sp dedupSpec) [][]byte {
	base := make([]byte, sp.docBytes)
	rng.Read(base)
	docs := make([][]byte, sp.users)
	for i := range docs {
		doc := append([]byte{}, base...)
		for e := 0; e < sp.edits; e++ {
			// Variable-length insertions: if every user inserted the same
			// byte total, the fixed-size grid would re-align past each
			// user's last edit (identical cumulative shift) and fixed
			// chunking would accidentally dedup the suffix.
			ins := make([]byte, 8+rng.Intn(25))
			rng.Read(ins)
			at := rng.Intn(len(doc) + 1)
			doc = append(doc[:at], append(ins, doc[at:]...)...)
		}
		docs[i] = doc
	}
	return docs
}

type dedupWorkload struct {
	name string
	gen  func(rng *rand.Rand, sp dedupSpec) [][]byte
}

func dedupWorkloads() []dedupWorkload {
	return []dedupWorkload{
		{"shared-prefix", sharedPrefixDocs},
		{"edited-doc", editedDocs},
	}
}

// dedupCell is one (workload, chunking mode) measurement.
type dedupCell struct {
	ratio    float64 // logical / physical bytes across the fleet, post-upload
	memHit   float64 // memory-tier share of tier hits over the download passes
	repairKB float64 // repair payload after one provider crash
	gcKB     float64 // disk bytes reclaimed by GC in the release+filler phase
}

// dedupResult carries the cell plus per-provider tier occupancy for the
// storesim -stats view.
type dedupResult struct {
	cell     dedupCell
	physB    []int64
	memB     []int64
	capacity int64
}

// dedupRun is the numeric core of one X17 cell: build the tiered world,
// upload the overlapping population, re-download it twice, crash and
// repair, then release and squeeze until GC collects.
func dedupRun(seed int64, wl dedupWorkload, cdc bool, sp dedupSpec) dedupResult {
	nw := simnet.New(seed)
	client := storage.NewClient(nw.AddNode(), 10*time.Second)
	client.EnableRepairPinning()
	capacity := sp.provCapacity()
	provs := make([]*storage.Provider, sp.providers)
	pool := make([]storage.ProviderRef, sp.providers)
	for i := range provs {
		provs[i] = storage.NewProviderWith(nw.AddNode(), storage.ProviderConfig{
			Capacity:    capacity,
			MemCapacity: capacity / 8,
			GC:          true,
			Metrics:     true,
		})
		pool[i] = provs[i].Ref()
	}
	var ck *chunker.Chunker
	if cdc {
		var err error
		if ck, err = chunker.New(chunker.Defaults(sp.avgChunk)); err != nil {
			panic(err)
		}
	}

	// Phase 1: the overlapping-upload population.
	type object struct {
		data []byte
		m    *storage.Manifest
		pl   *storage.Placement
	}
	docs := wl.gen(nw.Rand(), sp)
	objs := make([]*object, len(docs))
	for i, doc := range docs {
		o := &object{data: doc}
		objs[i] = o
		record := func(m *storage.Manifest, pl *storage.Placement, err error) {
			if err == nil {
				o.m, o.pl = m, pl
			}
		}
		if cdc {
			client.UploadCDC(doc, ck, pool, sp.replicas, record)
		} else {
			client.Upload(doc, sp.avgChunk, pool, sp.replicas, record)
		}
	}
	nw.Run(nw.Now() + time.Minute)
	var logical, physical int64
	for _, p := range provs {
		logical += p.Store().LogicalBytes()
		physical += p.Store().PhysicalBytes()
	}
	ratio := 1.0
	if physical > 0 {
		ratio = float64(logical) / float64(physical)
	}

	// Phase 2: two full re-download passes. The first pass warms the
	// memory tier beyond what the uploads left resident; the second
	// harvests it. The hit split is the tiering payoff on a read-heavy
	// population.
	for pass := 0; pass < 2; pass++ {
		for _, o := range objs {
			if o.m == nil {
				continue
			}
			client.Download(o.m, o.pl, func([]byte, error) {})
		}
		nw.Run(nw.Now() + time.Minute)
	}
	var memHits, diskHits int64
	for _, p := range provs {
		m, d := p.Store().TierHits()
		memHits += m
		diskHits += d
	}
	memHit := 0.0
	if memHits+diskHits > 0 {
		memHit = float64(memHits) / float64(memHits+diskHits)
	}

	// Phase 3: crash one provider, audit every object, repair with
	// source pinning. Repair volume is where dedup pays a second time:
	// fewer unique chunks lost means fewer bytes re-replicated.
	repairBase := client.RepairBytes()
	provs[0].Node().Crash()
	nw.Run(nw.Now() + 10*time.Second)
	for _, o := range objs {
		if o.m == nil {
			continue
		}
		o := o
		client.Audit(o.m, o.pl, 5*time.Second, func(r *storage.AuditReport) {
			for _, res := range r.Results {
				if !res.OK {
					o.pl.Remove(o.m.Chunks[res.ChunkIndex], res.Holder)
				}
			}
			client.Repair(o.m, o.pl, pool, func(int, error) {})
		})
	}
	nw.Run(nw.Now() + 2*time.Minute)
	repairKB := float64(client.RepairBytes()-repairBase) / 1024

	// Phase 4: the first object's owner keeps (and pins) it; everyone
	// else releases. Filler uploads then apply capacity pressure until
	// GC runs — it must reclaim the released chunks and spare the pinned
	// ones.
	if objs[0].m != nil {
		client.PinObject(objs[0].m, objs[0].pl, func(int) {})
	}
	for _, o := range objs[1:] {
		if o.m == nil {
			continue
		}
		client.ReleaseObject(o.m, o.pl, func(int) {})
	}
	nw.Run(nw.Now() + 30*time.Second)
	fillers := int(capacity * int64(sp.providers) / int64(sp.docBytes))
	for i := 0; i < fillers; i++ {
		filler := make([]byte, sp.docBytes)
		nw.Rand().Read(filler)
		client.Upload(filler, sp.avgChunk, pool, 1, func(*storage.Manifest, *storage.Placement, error) {})
	}
	nw.Run(nw.Now() + 2*time.Minute)

	res := dedupResult{
		cell:     dedupCell{ratio: ratio, memHit: memHit, repairKB: repairKB},
		capacity: capacity,
	}
	var gc int64
	for _, p := range provs {
		gc += p.Store().GCReclaimedBytes()
		res.physB = append(res.physB, p.Store().PhysicalBytes())
		res.memB = append(res.memB, p.Store().MemBytes())
	}
	res.cell.gcKB = float64(gc) / 1024
	return res
}

// dedupMatrix is the numeric core of X17: workload × chunking mode rows,
// four measures per row.
func dedupMatrix(seed int64, tiny bool) Matrix {
	sp := dedupSpecFor(tiny)
	wls := dedupWorkloads()
	rows := make([]string, 0, 2*len(wls))
	for _, wl := range wls {
		rows = append(rows, wl.name+" fixed", wl.name+" cdc")
	}
	m := NewMatrix(rows, []string{"dedup ratio", "mem hit%", "repair KB", "gc KB"})
	ri := 0
	for _, wl := range wls {
		for _, cdc := range []bool{false, true} {
			r := dedupRun(seed, wl, cdc, sp)
			m.Vals[ri][0] = r.cell.ratio
			m.Vals[ri][1] = r.cell.memHit * 100
			m.Vals[ri][2] = r.cell.repairKB
			m.Vals[ri][3] = r.cell.gcKB
			ri++
		}
	}
	return m
}

// DedupTiering renders the single-seed X17 table.
func DedupTiering(seed int64) *Table {
	m := dedupMatrix(seed, false)
	return dedupTable("X17: overlapping uploads — dedup ratio, tier hits, repair and GC volume per workload × chunking", m)
}

// DedupTieringTiny is the scaled-down X17 used by the registry tests.
func DedupTieringTiny(seed int64) *Table {
	m := dedupMatrix(seed, true)
	return dedupTable("X17 (tiny): overlapping-upload dedup", m)
}

func dedupTable(title string, m Matrix) *Table {
	t := &Table{
		Title:   title,
		Headers: append([]string{"Workload/chunking"}, m.Cols...),
	}
	for r, name := range m.Rows {
		t.Add(name,
			fmt.Sprintf("%.2f×", m.Vals[r][0]),
			fmt.Sprintf("%.0f%%", m.Vals[r][1]),
			fmt.Sprintf("%.0f", m.Vals[r][2]),
			fmt.Sprintf("%.0f", m.Vals[r][3]))
	}
	return t
}

// DedupTieringMulti is X17 aggregated over a batch of seeds on `workers`
// parallel trial runners (0 = GOMAXPROCS).
func DedupTieringMulti(seeds []int64, workers int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return dedupMatrix(seed, false)
	})
	return agg.Table(
		"X17: overlapping uploads — dedup ratio, tier hits, repair and GC volume per workload × chunking",
		"Workload/chunking", "%.2f", "%.0f", "%.0f", "%.0f")
}

// DedupSim is the storesim view of one X17 world: both workloads at the
// chosen chunking mode and average chunk size. stats appends per-provider
// tier occupancy rows, the operator's view of where the bytes sit.
func DedupSim(seed int64, users, providers int, cdc bool, avgChunk int, stats bool) *Table {
	sp := dedupSpecFor(false)
	if users > 0 {
		sp.users = users
	}
	if providers > 0 {
		sp.providers = providers
	}
	if avgChunk > 0 {
		sp.avgChunk = avgChunk
	}
	mode := "fixed"
	if cdc {
		mode = "cdc"
	}
	t := &Table{
		Title:   fmt.Sprintf("storesim dedup: %d users × %d providers, %s chunking @ %d B", sp.users, sp.providers, mode, sp.avgChunk),
		Headers: []string{"Workload", "dedup ratio", "mem hit%", "repair KB", "gc KB"},
	}
	var results []dedupResult
	for _, wl := range dedupWorkloads() {
		r := dedupRun(seed, wl, cdc, sp)
		results = append(results, r)
		t.Add(wl.name,
			fmt.Sprintf("%.2f×", r.cell.ratio),
			fmt.Sprintf("%.0f%%", r.cell.memHit*100),
			fmt.Sprintf("%.0f", r.cell.repairKB),
			fmt.Sprintf("%.0f", r.cell.gcKB))
	}
	if stats {
		for wi, wl := range dedupWorkloads() {
			r := results[wi]
			for p := range r.physB {
				t.Add(fmt.Sprintf("  %s provider %d", wl.name, p),
					fmt.Sprintf("disk %d/%d KB", r.physB[p]/1024, r.capacity/1024),
					fmt.Sprintf("mem %d KB", r.memB[p]/1024), "", "")
			}
		}
	}
	return t
}
