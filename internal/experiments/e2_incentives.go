package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/naming"
	"repro/internal/simnet"
	"repro/internal/storage"
)

// RunIncentiveDemos executes the incentive mechanism of every Table 2 row
// against live providers: one honest, one adversarial per mechanism. The
// resulting table shows that each implemented scheme rewards honest
// behaviour and catches (or starves) the cheater — the property §3.3 says
// these mechanisms exist to provide.
func RunIncentiveDemos(seed int64) *Table {
	t := &Table{
		Title:   "E2 demo: each surveyed incentive scheme executed against honest and cheating providers",
		Headers: []string{"System", "Mechanism", "Honest Provider", "Cheating Provider"},
	}
	for _, row := range core.Table2() {
		honest, cheater := runIncentive(seed, row.Incentive)
		t.Add(row.System, row.Incentive, honest, cheater)
	}
	return t
}

func runIncentive(seed int64, id core.IncentiveID) (honest, cheater string) {
	switch id {
	case core.IncentiveBitswap:
		return bitswapDemo(seed)
	case core.IncentiveProofOfStorage:
		return proofDemo(seed, storage.DropAfterAck, "pos")
	case core.IncentiveProofOfRetrievability:
		return proofDemo(seed, storage.DropAfterAck, "ret")
	case core.IncentiveProofOfReplication:
		return proofDemo(seed, storage.DedupReplicas, "rep")
	case core.IncentiveNone:
		return blockstackDemo(seed)
	}
	return "?", "?"
}

func bitswapDemo(seed int64) (string, string) {
	nw := simnet.New(seed)
	cfg := storage.BitswapConfig{DebtRatioLimit: 2, GraceBytes: 1024}
	server := storage.NewBitswapNode(nw.AddNode(), cfg)
	freerider := storage.NewBitswapNode(nw.AddNode(), cfg)
	good := storage.NewBitswapNode(nw.AddNode(), cfg)
	var serverBlocks, goodBlocks []cryptoutil.Hash
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 16; i++ {
		blk := make([]byte, 512)
		rng.Read(blk)
		serverBlocks = append(serverBlocks, server.Put(blk))
		blk2 := make([]byte, 512)
		rng.Read(blk2)
		goodBlocks = append(goodBlocks, good.Put(blk2))
	}
	goodOK, freeRefused := 0, 0
	for i := range serverBlocks {
		server.Want(good.Node().ID(), goodBlocks[i], time.Minute, func(bool, bool) {})
		good.Want(server.Node().ID(), serverBlocks[i], time.Minute, func(ok, refused bool) {
			if ok {
				goodOK++
			}
		})
		freerider.Want(server.Node().ID(), serverBlocks[i], time.Minute, func(ok, refused bool) {
			if refused {
				freeRefused++
			}
		})
		nw.RunAll()
	}
	return fmt.Sprintf("served %d/%d blocks", goodOK, len(serverBlocks)),
		fmt.Sprintf("refused after debt limit (%d refusals)", freeRefused)
}

func proofDemo(seed int64, cheat storage.CheatMode, proof string) (string, string) {
	nw := simnet.New(seed)
	client := storage.NewClient(nw.AddNode(), 30*time.Second)
	honest := storage.NewProvider(nw.AddNode(), 1<<30, storage.Honest)
	cheater := storage.NewProvider(nw.AddNode(), 1<<30, cheat)
	data := make([]byte, 2048)
	nw.Rand().Read(data)
	chunk := storage.NewChunk(data)

	var m *storage.Manifest
	var pl *storage.Placement
	client.Upload(data, 0, []storage.ProviderRef{honest.Ref(), cheater.Ref()}, 2,
		func(mm *storage.Manifest, pp *storage.Placement, err error) { m, pl = mm, pp })
	for r := 0; r < 2; r++ {
		client.PutSealed(chunk.ID, data, honest.Ref(), r, func(bool) {})
		client.PutSealed(chunk.ID, data, cheater.Ref(), r, func(bool) {})
	}
	nw.Run(nw.Now() + time.Minute)

	results := map[simnet.NodeID]bool{}
	switch proof {
	case "pos":
		client.Audit(m, pl, 10*time.Second, func(r *storage.AuditReport) {
			byNode := map[simnet.NodeID]bool{honest.Node().ID(): true, cheater.Node().ID(): true}
			for _, res := range r.Results {
				if !res.OK {
					byNode[res.Holder.Node] = false
				}
			}
			results = byNode
		})
	case "ret":
		sentinels, err := storage.MakeSentinels(nw.Rand(), data, 2)
		if err != nil {
			panic(err)
		}
		client.RetAudit(chunk.ID, honest.Ref(), sentinels[0], 10*time.Second, func(ok bool) { results[honest.Node().ID()] = ok })
		client.RetAudit(chunk.ID, cheater.Ref(), sentinels[1], 10*time.Second, func(ok bool) { results[cheater.Node().ID()] = ok })
	case "rep":
		passes := map[simnet.NodeID]int{}
		for _, p := range []*storage.Provider{honest, cheater} {
			for r := 0; r < 2; r++ {
				root := storage.SealedRoot(data, p.Node().ID(), r)
				node := p.Node().ID()
				client.RepAudit(chunk.ID, root, len(data), p.Ref(), r, 10*time.Second, func(ok bool) {
					if ok {
						passes[node]++
					}
				})
			}
		}
		nw.Run(nw.Now() + time.Minute)
		results[honest.Node().ID()] = passes[honest.Node().ID()] == 2
		results[cheater.Node().ID()] = passes[cheater.Node().ID()] == 2
	}
	nw.Run(nw.Now() + time.Minute)

	describe := func(pass bool) string {
		if pass {
			return "audit passed → paid"
		}
		return "audit failed → payment withheld"
	}
	return describe(results[honest.Node().ID()]), describe(results[cheater.Node().ID()])
}

// blockstackDemo shows the Table 2 Blockstack row: the chain binds a name
// to a key and zone-file hash; there is no storage incentive because the
// data lives wherever the user chooses.
func blockstackDemo(seed int64) (string, string) {
	rng := rand.New(rand.NewSource(seed))
	kp, err := cryptoutil.GenerateKeyPair(rng)
	if err != nil {
		panic(err)
	}
	c := chain.NewChain(chain.Config{
		InitialDifficulty: 4,
		GenesisAlloc:      map[chain.Address]uint64{kp.Fingerprint(): 10000},
	})
	cfg := naming.DefaultConfig()
	cl := naming.NewClient(kp, cfg, rng, 0)
	mine := func(txs ...*chain.Tx) {
		ts := time.Duration(c.Head().Header.Time) + time.Second
		b, err := c.NewBlock(c.HeadHash(), txs, ts, chain.Address{1})
		if err != nil {
			panic(err)
		}
		if err := c.AddBlock(b); err != nil {
			panic(err)
		}
	}
	zoneHash := cryptoutil.SumHash([]byte("zone file stored at user's chosen provider"))
	pre, err := cl.Preorder("alice.id")
	if err != nil {
		panic(err)
	}
	mine(pre)
	mine(cl.Register("alice.id", zoneHash[:]))
	idx := naming.BuildIndex(c, cfg)
	if rec, ok := idx.Resolve("alice.id"); ok && string(rec.Value) == string(zoneHash[:]) {
		return "name→key→zone-hash bound on chain", "n/a (no storage incentive by design)"
	}
	return "binding failed", "n/a"
}
