package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/simnet"
)

func TestAggregateSeedsReduces(t *testing.T) {
	// A toy core whose cells are linear in the seed, so the aggregates are
	// known exactly: seeds 1..5 → mean 3, p50 3, p95 4.8.
	run := func(seed int64) Matrix {
		m := NewMatrix([]string{"r"}, []string{"c0", "c1"})
		m.Vals[0][0] = float64(seed)
		m.Vals[0][1] = float64(seed) * 10
		return m
	}
	agg := AggregateSeeds([]int64{1, 2, 3, 4, 5}, 1, run)
	if agg.Seeds != 5 {
		t.Fatalf("seeds = %d", agg.Seeds)
	}
	if agg.Mean[0][0] != 3 || agg.Mean[0][1] != 30 {
		t.Errorf("means = %v", agg.Mean)
	}
	if agg.P50[0][0] != 3 {
		t.Errorf("p50 = %v", agg.P50[0][0])
	}
	if got := agg.P95[0][0]; got < 4.7 || got > 5 {
		t.Errorf("p95 = %v", got)
	}
}

func TestAggTableRendering(t *testing.T) {
	agg := AggregateSeeds([]int64{2, 4}, 1, func(seed int64) Matrix {
		m := NewMatrix([]string{"row"}, []string{"A", "B"})
		m.Vals[0][0] = float64(seed)
		m.Vals[0][1] = float64(seed) * 100
		return m
	})
	tab := agg.Table("demo", "Thing", "%.1f", "%.0f%%")
	s := tab.String()
	if !strings.Contains(s, "over 2 seeds") {
		t.Errorf("title missing seed count:\n%s", s)
	}
	if !strings.Contains(s, "3.0 [3.0 3.9]") {
		t.Errorf("mean [p50 p95] cell missing:\n%s", s)
	}
	if !strings.Contains(s, "300% [300% 390%]") {
		t.Errorf("per-column format not applied:\n%s", s)
	}
}

func TestAggregateSeedsEmpty(t *testing.T) {
	agg := AggregateSeeds(nil, 4, func(seed int64) Matrix { return NewMatrix(nil, nil) })
	if agg.Seeds != 0 || agg.Mean != nil {
		t.Errorf("empty aggregate not zero: %+v", agg)
	}
}

func TestStrideSeedsMatchesSerialDerivation(t *testing.T) {
	got := strideSeeds(7+30, 1000, 3)
	want := []int64{37, 1037, 2037}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("strideSeeds = %v, want %v", got, want)
	}
}

// TestMultiSeedDeterministicAcrossWorkers is the PR's determinism
// acceptance check at the experiments layer: fanning the X3 numeric core
// over simnet.Trials must give bit-identical matrices — and therefore
// bit-identical aggregates — whether the trials run serially or on
// GOMAXPROCS workers.
func TestMultiSeedDeterministicAcrossWorkers(t *testing.T) {
	seeds := simnet.Seeds(42, 6)
	run := func(seed int64) Matrix {
		return commAvailabilityMatrix(seed, 5, []float64{0, 0.4})
	}
	serial := simnet.Trials(seeds, 1, run)
	parallel := simnet.Trials(seeds, 0, run)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("X3 matrices differ between serial and parallel trial runs")
	}
	aggSerial := AggregateSeeds(seeds, 1, run)
	aggParallel := AggregateSeeds(seeds, 0, run)
	if !reflect.DeepEqual(aggSerial, aggParallel) {
		t.Fatal("X3 aggregates differ between serial and parallel trial runs")
	}
	// The aggregate must reflect real spread, not collapsed or copied rows:
	// centralized at f=0.4 is identically zero across seeds...
	if aggSerial.Mean[0][1] != 0 || aggSerial.P95[0][1] != 0 {
		t.Errorf("centralized at f=0.4 should be 0 across all seeds: %+v", aggSerial.Mean)
	}
	// ...while every model delivers at f=0.
	for r := range aggSerial.Rows {
		if aggSerial.Mean[r][0] < 0.9 {
			t.Errorf("%s at f=0: mean %.2f, want ≈1", aggSerial.Rows[r], aggSerial.Mean[r][0])
		}
	}
}

// TestCommAvailabilityMultiShape pins the rendered multi-seed table format.
func TestCommAvailabilityMultiShape(t *testing.T) {
	tab := CommAvailabilityMulti(simnet.Seeds(11, 3), 0, 5, []float64{0, 0.4})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	if !strings.Contains(tab.Title, "over 3 seeds") {
		t.Errorf("title missing seed count: %q", tab.Title)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if !strings.Contains(cell, "[") || !strings.Contains(cell, "]") {
				t.Errorf("cell %q missing [p50 p95] annotation:\n%s", cell, tab)
			}
		}
	}
}
