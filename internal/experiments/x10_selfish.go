package experiments

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/simnet"
)

// SelfishMining is experiment X10: beyond the outright 51 % takeover (X2),
// a withholding miner with a *minority* of the hashrate can earn more than
// its fair share of block rewards by strategically revealing a private
// branch (Eyal & Sirer). This sharpens the paper's §3.1 note that the 51 %
// attack is only one of blockchains' "well-known problems": the incentive
// mechanism itself is not incentive-compatible below 50 %.
//
// The table reports the attacker's share of best-chain block rewards when
// mining honestly (≈ its hashrate share) versus selfishly, across hashrate
// shares. With no sybil network advantage (γ=0, ties go to the honest
// incumbent), selfish mining should lose below α≈1/3 and win above.
func SelfishMining(seed int64, trials, horizonBlocks int) *Table {
	t := &Table{
		Title: fmt.Sprintf("X10: attacker revenue share, honest vs selfish strategy (γ=0, %d blocks × %d trials)",
			horizonBlocks, trials),
		Headers: []string{"Hashrate Share", "Honest Revenue", "Selfish Revenue", "Selfish Pays Off"},
	}
	for _, share := range selfishShares {
		honest := averageRevenue(seed, share, trials, horizonBlocks, false)
		selfish := averageRevenue(seed, share, trials, horizonBlocks, true)
		t.Add(fmt.Sprintf("%.0f%%", share*100),
			fmt.Sprintf("%.2f", honest),
			fmt.Sprintf("%.2f", selfish),
			selfish > honest)
	}
	return t
}

var selfishShares = []float64{0.2, 0.3, 0.35, 0.4, 0.45}

// averageRevenue fans the revenue trials over simnet.Trials; per-trial
// seeds reproduce the original serial derivation base + i·104729.
func averageRevenue(seed int64, share float64, trials, horizon int, selfish bool) float64 {
	sum := 0.0
	for _, v := range simnet.Trials(strideSeeds(seed, 104729, trials), 0, func(s int64) float64 {
		return selfishTrial(s, share, horizon, selfish)
	}) {
		sum += v
	}
	return sum / float64(trials)
}

// selfishMatrix is the numeric core of X10: one seed, honest and selfish
// revenue shares per hashrate share (each still averaging `trials` races).
func selfishMatrix(seed int64, trials, horizonBlocks int) Matrix {
	rows := make([]string, len(selfishShares))
	for i, s := range selfishShares {
		rows[i] = fmt.Sprintf("%.0f%%", s*100)
	}
	mx := NewMatrix(rows, []string{"Honest Revenue", "Selfish Revenue"})
	for r, share := range selfishShares {
		mx.Vals[r][0] = averageRevenue(seed, share, trials, horizonBlocks, false)
		mx.Vals[r][1] = averageRevenue(seed, share, trials, horizonBlocks, true)
	}
	return mx
}

// SelfishMiningMulti is X10 aggregated over a batch of seeds on `workers`
// parallel trial runners (0 = GOMAXPROCS).
func SelfishMiningMulti(seeds []int64, workers, trials, horizonBlocks int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return selfishMatrix(seed, trials, horizonBlocks)
	})
	return agg.Table(
		fmt.Sprintf("X10: attacker revenue share, honest vs selfish strategy (γ=0, %d blocks × %d trials)",
			horizonBlocks, trials),
		"Hashrate Share", "%.2f")
}

// selfishTrial runs one race and returns the attacker's fraction of
// best-chain rewards as observed by the honest node.
func selfishTrial(seed int64, share float64, horizonBlocks int, selfish bool) float64 {
	nw := simnet.New(seed)
	spacing := 10 * time.Second
	cfg := chain.Config{InitialDifficulty: 1 << 10, TargetSpacing: spacing, Subsidy: 50}
	total := float64(cfg.InitialDifficulty) / spacing.Seconds()
	miners := newMinerNet(nw, 2, 0, cfg)
	honest, attacker := miners[0], miners[1]
	honest.SetHashrate(total * (1 - share))
	attacker.SetHashrate(total * share)

	if selfish {
		attachSelfishController(attacker)
	}
	honest.Start()
	attacker.Start()
	nw.Run(time.Duration(horizonBlocks) * spacing)
	honest.Stop()
	attacker.Stop()
	nw.RunAll()
	if selfish {
		// End of the game: publish any residual lead.
		attacker.Release()
		nw.RunAll()
	}

	attackerBlocks, totalBlocks := 0, 0
	attackerAddr := attacker.Address()
	for _, b := range honest.Chain().BestBlocks() {
		if b.Header.Height == 0 {
			continue
		}
		totalBlocks++
		if b.Txs[0].To == attackerAddr {
			attackerBlocks++
		}
	}
	if totalBlocks == 0 {
		return 0
	}
	return float64(attackerBlocks) / float64(totalBlocks)
}

// attachSelfishController wires the Eyal–Sirer strategy (γ=0 simplified)
// onto a miner: withhold own blocks; when the honest chain advances,
// publish just enough of the private branch to override or race.
func attachSelfishController(m *chain.Miner) {
	m.SetWithhold(true)
	m.SetMiningTarget(m.Chain().HeadHash())
	// forkHeight is the height of the block both branches agree on.
	forkHeight := m.Chain().Head().Header.Height
	honestHeight := forkHeight

	m.OnBlockAccepted(func(b *chain.Block, mined bool) {
		if mined {
			return // private lead grew; keep withholding
		}
		// An honest block arrived.
		if b.Header.Height <= honestHeight {
			return // stale or sibling
		}
		honestHeight = b.Header.Height
		lead := int(forkHeight) + len(m.Withheld()) - int(honestHeight)
		switch {
		case len(m.Withheld()) == 0:
			// Nothing private: adopt the honest tip as the new fork point.
			forkHeight = honestHeight
			m.SetMiningTarget(b.Hash())
		case lead <= 1:
			// Honest is at or within one of our private tip: publish the
			// whole branch. At lead 1 this overrides (ours is heavier); at
			// lead 0 it is the γ race, which the honest incumbent wins on
			// its own node — we keep mining on our published tip hoping to
			// extend first.
			priv := m.Withheld()
			tip := priv[len(priv)-1]
			forkHeight = tip.Header.Height
			m.Release()
			m.SetMiningTarget(tip.Hash())
		default:
			// Comfortable lead: keep withholding.
		}
	})
}
