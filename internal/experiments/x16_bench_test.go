package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// x16Bench runs the X16 resilience matrix as a multi-trial bench entry at
// the tiny world sizes (the worker-invariance property is about merge
// ordering, not population size) and returns the snapshot JSON.
func x16Bench(t *testing.T, workers int) []byte {
	t.Helper()
	e := Experiment{
		ID:  "x16",
		Run: func(seed int64) fmt.Stringer { return ResilienceMatrixTiny(seed) },
		Multi: func(seeds []int64, workers int) fmt.Stringer {
			agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
				return resilienceMatrix(seed, true)
			})
			return agg.Table("X16 (tiny multi)", "Subsystem/mode", "%.1f")
		},
		Tiny: func(seed int64) fmt.Stringer { return ResilienceMatrixTiny(seed) },
	}
	entry := runBenchEntry(e, BenchOptions{Seed: 1616, Trials: 3, Workers: workers, Scale: "full"}.withDefaults())
	var buf bytes.Buffer
	if err := entry.Metrics.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestX16BenchGolden pins the fixed-seed X16 observability snapshot —
// including the resil.* retry/hedge/breaker counters, whose values encode
// every adaptive decision the layer made — byte for byte: identical
// across repeated runs, across trial worker counts, and against the
// checked-in golden file. Regenerate with
// `go test ./internal/experiments -run X16BenchGolden -update` after an
// intentional behaviour change.
func TestX16BenchGolden(t *testing.T) {
	serial := x16Bench(t, 1)
	parallel := x16Bench(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("X16 snapshot differs between 1 and 4 trial workers")
	}

	golden := filepath.Join("testdata", "x16_bench_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("X16 snapshot drifted from %s; if intentional, rerun with -update\ngot:\n%s", golden, serial)
	}
}

// TestX16ResilientBeatsNaive pins the experiment's headline claim: with
// the same seed, worlds, and fault plans, the adaptive transport's
// mid-fault availability is strictly higher than the naive fixed-timeout
// transport's on the lossy-edge and rolling-churn scenarios, and never
// worse on any other scenario by more than a small tolerance.
func TestX16ResilientBeatsNaive(t *testing.T) {
	m := resilienceMatrix(4242, true)
	scs := resilScenarios()
	col := func(name, measure string) int {
		for c, cn := range m.Cols {
			if cn == name+" "+measure {
				return c
			}
		}
		t.Fatalf("column %s %s not found", name, measure)
		return -1
	}
	row := func(name string) int {
		for r, rn := range m.Rows {
			if rn == name {
				return r
			}
		}
		t.Fatalf("row %s not found", name)
		return -1
	}
	subsystems := []string{"dht", "storage", "groupcomm", "webapp"}
	// Per cell, resil may trail naive by at most two of the tiny run's
	// eight probes: the layer's extra traffic shifts the shared loss/latency
	// draw stream, so individual probes land differently, but adaptation
	// must never cost real availability.
	for _, sub := range subsystems {
		naive, res := row(sub+" naive"), row(sub+" resil")
		for _, sc := range scs {
			c := col(sc.Name, "avail%")
			nv, rv := m.Vals[naive][c], m.Vals[res][c]
			if rv < nv-25 {
				t.Errorf("%s %s: resil availability %.1f%% < naive %.1f%%", sub, sc.Name, rv, nv)
			}
		}
	}
	// The headline: summed over subsystems, the resilient transport is
	// strictly more available during lossy-edge and rolling-churn faults.
	for _, scName := range []string{"lossy-edge", "rolling-churn"} {
		c := col(scName, "avail%")
		var nv, rv float64
		for _, sub := range subsystems {
			nv += m.Vals[row(sub+" naive")][c]
			rv += m.Vals[row(sub+" resil")][c]
		}
		if !(rv > nv) {
			t.Errorf("%s: aggregate resil availability %.1f does not beat naive %.1f", scName, rv, nv)
		}
	}
}
