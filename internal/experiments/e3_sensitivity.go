package experiments

import (
	"fmt"

	"repro/internal/feasibility"
)

// FeasibilitySensitivity probes how robust Table 3's "there appears to be
// sufficient capacity" conclusion is: each row perturbs one constant of
// the §4 model and reports the device-side estimate and whether it still
// covers the cloud side per resource. The paper acknowledges its numbers
// are rough extrapolations; this table shows which ones the conclusion
// actually hinges on.
func FeasibilitySensitivity() *Table {
	t := &Table{
		Title:   "E3 sensitivity: perturbing one §4 constant at a time",
		Headers: []string{"Variant", "Device Capacity", "BW ok", "Cores ok", "Storage ok"},
	}
	cloud := feasibility.PaperCloud().Estimate()
	add := func(name string, d feasibility.DeviceParams) {
		c := d.Estimate()
		t.Add(name, c.String(),
			c.BandwidthTbps >= cloud.BandwidthTbps,
			c.Cores >= cloud.Cores,
			c.StorageEB >= cloud.StorageEB)
	}
	add("paper constants", feasibility.PaperDevices())

	half := feasibility.PaperDevices()
	half.Classes[0].Count /= 2
	add("half as many PCs", half)

	lowStorage := feasibility.PaperDevices()
	lowStorage.Classes[0].FreeStorageGB = 25
	add("PCs have 25 GB free (not 100)", lowStorage)

	slowUp := feasibility.PaperDevices()
	for i := range slowUp.Classes {
		slowUp.Classes[i].UpstreamMbps = 0.25
	}
	add("0.25 Mbps uplinks", slowUp)

	weakCPU := feasibility.PaperDevices()
	weakCPU.ComputeDiscount = 16
	add("compute discount 16x (not 8x)", weakCPU)

	mobileCompute := feasibility.PaperDevices()
	for i := range mobileCompute.Classes {
		mobileCompute.Classes[i].ComputeUsable = true
	}
	add("mobile compute allowed", mobileCompute)

	// The §5.2 quality discount, applied to the paper's constants.
	derated := feasibility.QualityDiscount{Availability: 0.5, RedundancyFactor: 3}.
		Apply(feasibility.PaperDevices().Estimate())
	t.Add("50% availability + 3x redundancy", derated.String(),
		derated.BandwidthTbps >= cloud.BandwidthTbps,
		derated.Cores >= cloud.Cores,
		derated.StorageEB >= cloud.StorageEB)

	t.Add(fmt.Sprintf("(break-even redundancy for storage: %.2fx)",
		feasibility.BreakEvenRedundancy(feasibility.PaperCloud(), feasibility.PaperDevices())),
		"", "", "", "")
	return t
}
