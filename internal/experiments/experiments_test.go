package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"A", "LongHeader"}}
	tab.Add("x", 42)
	tab.Add("longer-cell", true)
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "LongHeader") || !strings.Contains(s, "longer-cell") {
		t.Errorf("render:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4+0 { // title, header, separator, 2 rows -> 5
		if len(lines) != 5 {
			t.Errorf("lines = %d", len(lines))
		}
	}
}

func TestTable1Table2Table3(t *testing.T) {
	t1 := Table1()
	if len(t1.Rows) != 4 {
		t.Errorf("table1 rows = %d", len(t1.Rows))
	}
	t2 := Table2()
	if len(t2.Rows) != 7 {
		t.Errorf("table2 rows = %d", len(t2.Rows))
	}
	t3 := Table3()
	if len(t3.Rows) != 3 {
		t.Errorf("table3 rows = %d", len(t3.Rows))
	}
	s := t3.String()
	for _, want := range []string{"200 Tbps", "5000 Tbps", "400 M", "500 M", "80 EB", "210 EB"} {
		if !strings.Contains(s, want) {
			t.Errorf("table3 missing %q:\n%s", want, s)
		}
	}
	z := ZookoTable()
	if len(z.Rows) != 5 {
		t.Errorf("zooko rows = %d", len(z.Rows))
	}
}

func TestNamingSchemesShape(t *testing.T) {
	tab := NamingSchemes(1, 8)
	if len(tab.Rows) < 3 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	// Centralized latency must be far below blockchain latency.
	centLat := parseSeconds(t, tab.Rows[0][1])
	bcLat := parseSeconds(t, tab.Rows[1][1])
	if centLat <= 0 || bcLat <= 0 {
		t.Fatalf("latencies %v %v:\n%s", centLat, bcLat, tab)
	}
	if bcLat < 10*centLat {
		t.Errorf("blockchain (%vs) should be ≫ centralized (%vs)", bcLat, centLat)
	}
	// And the slower block spacing must be slower still.
	bcSlow := parseSeconds(t, tab.Rows[2][1])
	if bcSlow <= bcLat {
		t.Errorf("30s spacing (%v) should beat 5s spacing (%v) in latency? no — it should be larger", bcSlow, bcLat)
	}
}

func parseSeconds(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFiftyOnePercentMonotone(t *testing.T) {
	tab := FiftyOnePercent(7, 6, 12)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	lowShare := parse(tab.Rows[0][1])  // 10%
	highShare := parse(tab.Rows[7][1]) // 75%
	if lowShare > 40 {
		t.Errorf("10%% attacker succeeded %v%% of the time:\n%s", lowShare, tab)
	}
	if highShare < 60 {
		t.Errorf("75%% attacker succeeded only %v%%:\n%s", highShare, tab)
	}
	if highShare <= lowShare {
		t.Errorf("success rate should grow with hash share:\n%s", tab)
	}
}

func TestDoubleSpend(t *testing.T) {
	before, after := DoubleSpend(3)
	if before != 500 {
		t.Fatalf("victim balance before attack = %d, want 500", before)
	}
	if after != 0 {
		t.Fatalf("victim balance after reorg = %d, want 0 (payment erased)", after)
	}
}

func TestCommAvailabilityShape(t *testing.T) {
	tab := CommAvailability(11, 10, []float64{0, 0.3})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	get := func(r, c int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[r][c], 64)
		if err != nil {
			t.Fatalf("parse [%d][%d]=%q", r, c, tab.Rows[r][c])
		}
		return v
	}
	// f=0: everything should deliver.
	for r := 0; r < 4; r++ {
		if got := get(r, 1); got < 0.95 {
			t.Errorf("%s at f=0: %.2f, want ≈1:\n%s", tab.Rows[r][0], got, tab)
		}
	}
	// f=0.3: centralized collapses to 0; replicated beats home-federated.
	if got := get(0, 2); got != 0 {
		t.Errorf("centralized at f=0.3 = %v, want 0", got)
	}
	fedHome, fedRepl := get(1, 2), get(2, 2)
	if fedRepl <= fedHome {
		t.Errorf("replicated federation (%.2f) should beat home federation (%.2f):\n%s", fedRepl, fedHome, tab)
	}
}

func TestSocialP2PShape(t *testing.T) {
	tab := SocialP2P(13, 20, []int{2, 8}, []float64{0.5, 1.0})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(r, c int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[r][c], 64)
		if err != nil {
			t.Fatalf("parse %q", tab.Rows[r][c])
		}
		return v
	}
	// Full uptime should deliver everything regardless of degree.
	if get(0, 2) < 0.95 || get(1, 2) < 0.95 {
		t.Errorf("full-uptime delivery below 1:\n%s", tab)
	}
	// At 50%% uptime, higher degree should not hurt.
	if get(1, 1)+0.15 < get(0, 1) {
		t.Errorf("higher degree materially hurt delivery:\n%s", tab)
	}

	exp := MetadataExposureTable(10)
	if len(exp.Rows) != 4 {
		t.Errorf("exposure rows = %d", len(exp.Rows))
	}
}

func TestStorageDurabilityShape(t *testing.T) {
	tab := StorageDurability(17, 12, 24, 4*time.Hour, 0.5)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("parse %q", s)
		}
		return v
	}
	r1NoRepair := parse(tab.Rows[0][2])
	r3NoRepair := parse(tab.Rows[2][2])
	if r3NoRepair < r1NoRepair {
		t.Errorf("r=3 (%v%%) should survive at least as well as r=1 (%v%%):\n%s", r3NoRepair, r1NoRepair, tab)
	}
	r3Repair := parse(tab.Rows[2][3])
	if r3Repair < r3NoRepair {
		t.Errorf("repair (%v%%) should not reduce survival (%v%%):\n%s", r3Repair, r3NoRepair, tab)
	}
	if r3Repair < 90 {
		t.Errorf("r=3 with repair should survive ≈100%%, got %v%%:\n%s", r3Repair, tab)
	}
}

func TestStorageAttacksMatrix(t *testing.T) {
	tab := StorageAttacks(19)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	cell := func(r, c int) string { return tab.Rows[r][c] }
	// Honest passes everything.
	for c := 1; c <= 3; c++ {
		if cell(0, c) != "pass (correct)" {
			t.Errorf("honest column %d = %q:\n%s", c, cell(0, c), tab)
		}
	}
	// Dropper caught by all three.
	for c := 1; c <= 3; c++ {
		if cell(1, c) != "caught" {
			t.Errorf("dropper column %d = %q:\n%s", c, cell(1, c), tab)
		}
	}
	// Corrupter caught by all three.
	for c := 1; c <= 3; c++ {
		if cell(2, c) != "caught" {
			t.Errorf("corrupter column %d = %q:\n%s", c, cell(2, c), tab)
		}
	}
	// Outsourcer caught by timing on PoS and PoRet.
	if cell(3, 1) != "caught" || cell(3, 2) != "caught" {
		t.Errorf("outsourcer should be caught by deadline:\n%s", tab)
	}
	// Dedup cheater passes PoS/PoRet (it stores the plain chunk!) but is
	// caught by proof-of-replication.
	if cell(4, 1) != "PASS (missed!)" || cell(4, 2) != "PASS (missed!)" {
		t.Errorf("dedup should evade plain-storage proofs:\n%s", tab)
	}
	if cell(4, 3) != "caught" {
		t.Errorf("dedup must be caught by proof-of-replication:\n%s", tab)
	}
}

func TestHostlessWebShape(t *testing.T) {
	tab := HostlessWeb(23, 24)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("parse %q", s)
		}
		return v
	}
	// Both architectures serve fine while the publisher is alive.
	if parse(tab.Rows[0][1]) < 90 || parse(tab.Rows[1][1]) < 90 {
		t.Errorf("pre-death availability too low:\n%s", tab)
	}
	// After the publisher dies: client-server collapses, hostless survives.
	if got := parse(tab.Rows[0][2]); got > 10 {
		t.Errorf("client-server after origin death = %v%%, want ≈0:\n%s", got, tab)
	}
	if got := parse(tab.Rows[1][2]); got < 80 {
		t.Errorf("hostless after author death = %v%%, want high:\n%s", got, tab)
	}
	// Hostless spreads load: the author should serve well under 100% of bytes.
	if got := parse(tab.Rows[1][3]); got >= 99 {
		t.Errorf("author share = %v%%, seeding not spreading load:\n%s", got, tab)
	}
}

func TestIncentiveDemos(t *testing.T) {
	tab := RunIncentiveDemos(29)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	for _, row := range tab.Rows {
		switch row[0] {
		case "IPFS":
			if !strings.Contains(row[2], "served") || !strings.Contains(row[3], "refused") {
				t.Errorf("bitswap row wrong: %v", row)
			}
		case "Blockstack":
			if !strings.Contains(row[2], "bound on chain") {
				t.Errorf("blockstack row wrong: %v", row)
			}
		default:
			if !strings.Contains(row[2], "passed") {
				t.Errorf("%s honest outcome wrong: %v", row[0], row)
			}
			if !strings.Contains(row[3], "failed") {
				t.Errorf("%s cheater outcome wrong: %v", row[0], row)
			}
		}
	}
}

func TestUsenetLoadShape(t *testing.T) {
	tab := UsenetLoad(5, []int{4, 16}, 10, 256)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	parseKB := func(s string) float64 {
		var v float64
		var unit string
		if _, err := fmt.Sscanf(s, "%f %s", &v, &unit); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		switch unit {
		case "MB":
			return v * 1024
		case "KB":
			return v
		case "B":
			return v / 1024
		}
		t.Fatalf("unit %q", unit)
		return 0
	}
	usenetSmall, usenetLarge := parseKB(tab.Rows[0][1]), parseKB(tab.Rows[1][1])
	fedSmall, fedLarge := parseKB(tab.Rows[0][2]), parseKB(tab.Rows[1][2])
	// Usenet per-server cost grows ~linearly with network size.
	if usenetLarge < 3*usenetSmall {
		t.Errorf("usenet cost did not scale with network size:\n%s", tab)
	}
	// Federated-home per-server cost stays ~flat.
	if fedLarge > 1.5*fedSmall {
		t.Errorf("federated-home cost should stay flat:\n%s", tab)
	}
	// At scale, flooding costs more per server than follower-scoped sync.
	if usenetLarge <= fedLarge {
		t.Errorf("usenet at 16 servers should out-cost federated-home:\n%s", tab)
	}
}

func TestFeasibilitySensitivityShape(t *testing.T) {
	tab := FeasibilitySensitivity()
	if len(tab.Rows) < 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Paper constants: everything sufficient.
	for c := 2; c <= 4; c++ {
		if tab.Rows[0][c] != "true" {
			t.Errorf("paper row column %d = %q:\n%s", c, tab.Rows[0][c], tab)
		}
	}
	// 25 GB free per PC drops device storage below the cloud's 80 EB.
	found := false
	for _, row := range tab.Rows {
		if strings.Contains(row[0], "25 GB") {
			found = true
			if row[4] != "false" {
				t.Errorf("25GB variant should break the storage conclusion:\n%s", tab)
			}
		}
	}
	if !found {
		t.Error("25 GB variant missing")
	}
	// Quality discount at 3x redundancy breaks storage too.
	for _, row := range tab.Rows {
		if strings.Contains(row[0], "3x redundancy") && row[4] != "false" {
			t.Errorf("quality-discount row should break storage:\n%s", tab)
		}
	}
}

func TestAbuseContainmentShape(t *testing.T) {
	tab := AbuseContainment(7, 12, []float64{0, 0.5, 1})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	get := func(r, c int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[r][c], 64)
		if err != nil {
			t.Fatalf("parse %q", tab.Rows[r][c])
		}
		return v
	}
	// Centralized: step function — full exposure off, zero on.
	if get(0, 1) != 1 || get(0, 3) != 0 {
		t.Errorf("centralized should be all-or-nothing:\n%s", tab)
	}
	// Federated: monotone decreasing in coverage, partial at 50%%.
	if !(get(1, 1) > get(1, 2) && get(1, 2) > get(1, 3)) {
		t.Errorf("federated exposure should fall with coverage:\n%s", tab)
	}
	if get(1, 3) != 0 {
		t.Errorf("full federated coverage should stop all spam:\n%s", tab)
	}
	// Social P2P: zero exposure from strangers; grows with befriending.
	if get(2, 1) != 0 {
		t.Errorf("stranger spam should be refused by the trust graph:\n%s", tab)
	}
	if get(2, 3) != 1 {
		t.Errorf("fully-befriended spammer reaches everyone:\n%s", tab)
	}
}

func TestSelfishMiningCrossover(t *testing.T) {
	tab := SelfishMining(11, 8, 120)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("parse %q", s)
		}
		return v
	}
	// At 20% hashrate with γ=0 selfish mining must lose.
	if parse(tab.Rows[0][2]) >= parse(tab.Rows[0][1]) {
		t.Errorf("selfish should lose at 20%%:\n%s", tab)
	}
	// At 45% it must win, and clearly exceed the fair share.
	if parse(tab.Rows[4][2]) <= parse(tab.Rows[4][1]) {
		t.Errorf("selfish should win at 45%%:\n%s", tab)
	}
	if parse(tab.Rows[4][2]) < 0.5 {
		t.Errorf("selfish at 45%% should exceed half the rewards:\n%s", tab)
	}
}

func TestDHTQualityShape(t *testing.T) {
	tab := DHTQuality(5, 30, 25)
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	parsePct := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("parse %q", s)
		}
		return v
	}
	parseMs := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		if err != nil {
			t.Fatalf("parse %q", s)
		}
		return v
	}
	// Stable networks succeed nearly always on every profile.
	for _, r := range []int{0, 3, 6} {
		if parsePct(tab.Rows[r][2]) < 85 {
			t.Errorf("%s stable success too low:\n%s", tab.Rows[r][0], tab)
		}
	}
	// Device-grade latency must dominate datacenter latency (stable rows).
	dc, bb, mob := parseMs(tab.Rows[0][3]), parseMs(tab.Rows[3][3]), parseMs(tab.Rows[6][3])
	if !(dc < bb && bb < mob) {
		t.Errorf("latency ordering dc(%v) < broadband(%v) < mobile(%v) violated:\n%s", dc, bb, mob, tab)
	}
	// Republish should not hurt success under churn (average over profiles).
	withR, withoutR := 0.0, 0.0
	for _, r := range []int{1, 4, 7} {
		withR += parsePct(tab.Rows[r][2])
	}
	for _, r := range []int{2, 5, 8} {
		withoutR += parsePct(tab.Rows[r][2])
	}
	if withR < withoutR {
		t.Errorf("republish should improve churn survival on average:\n%s", tab)
	}
}

func TestWoTSybilShape(t *testing.T) {
	tab := WoTSybil(3, 12, []int{10, 100})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	for i, ring := range []int{10, 100} {
		before, err1 := strconv.Atoi(tab.Rows[i][1])
		after, err2 := strconv.Atoi(tab.Rows[i][2])
		if err1 != nil || err2 != nil {
			t.Fatalf("parse row %d: %v", i, tab.Rows[i])
		}
		if before != 0 {
			t.Errorf("ring %d: %d sybils trusted before any bridge:\n%s", ring, before, tab)
		}
		if after != ring {
			t.Errorf("ring %d: %d trusted after bridge, want the whole ring:\n%s", ring, after, tab)
		}
	}
}

func TestLedgerGrowthShape(t *testing.T) {
	tab := LedgerGrowth(9, 2, 10)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d:\n%s", len(tab.Rows), tab)
	}
	blocks1, _ := strconv.Atoi(tab.Rows[0][1])
	blocks2, _ := strconv.Atoi(tab.Rows[1][1])
	if blocks2 <= blocks1 || blocks1 < 100 {
		t.Errorf("chain not growing: %d then %d:\n%s", blocks1, blocks2, tab)
	}
	states1, _ := strconv.Atoi(tab.Rows[0][4])
	states2, _ := strconv.Atoi(tab.Rows[1][4])
	if states1 != 101 || states2 != 101 {
		t.Errorf("compaction not holding states constant: %d, %d:\n%s", states1, states2, tab)
	}
}
