package experiments

import (
	"fmt"
	"time"

	"repro/internal/groupcomm"
	"repro/internal/simnet"
)

// AbuseContainment is experiment X9: a spammer injects banned content; a
// word-filter policy is deployed at a varying fraction of the system's
// enforcement points, and we measure the fraction of users exposed to the
// spam. It quantifies §3.2's Abuse Prevention trade-off:
//
//   - centralized: one enforcement point — moderation is all-or-nothing
//     and instant ("the norms … are dictated by platform operators");
//   - federated-home: each instance moderates independently; exposure
//     falls roughly linearly with policy coverage;
//   - social-p2p: there is no operator to deploy anything — but the trust
//     graph is its own defense: a stranger's spam is refused outright,
//     and only users who befriended the spammer are exposed.
//
// Coverage means: fraction of instances applying the filter (federated),
// operator applying it or not (centralized, so only 0%/100% differ), and
// fraction of users who befriended the spammer (social-p2p, where the
// "enforcement point" is the friendship decision itself).
func AbuseContainment(seed int64, users int, coverages []float64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X9: fraction of users exposed to spam vs policy coverage (N=%d users)", users),
		Headers: []string{"Model"},
	}
	for _, c := range coverages {
		t.Headers = append(t.Headers, fmt.Sprintf("coverage=%.0f%%", c*100))
	}
	rowCentral := []any{"centralized (global filter)"}
	rowFed := []any{"federated-home (per-instance filter)"}
	rowSocial := []any{"social-p2p (trust graph is the filter)"}
	for _, c := range coverages {
		rowCentral = append(rowCentral, fmt.Sprintf("%.2f", centralAbuseRun(seed, users, c)))
		rowFed = append(rowFed, fmt.Sprintf("%.2f", fedAbuseRun(seed, users, c)))
		rowSocial = append(rowSocial, fmt.Sprintf("%.2f", socialAbuseRun(seed, users, c)))
	}
	t.Add(rowCentral...)
	t.Add(rowFed...)
	t.Add(rowSocial...)
	return t
}

var spamPolicy = &groupcomm.ModerationPolicy{BannedWords: []string{"spam"}}

const spamBody = "buy spam now"

// centralAbuseRun: one platform; coverage ≥ 0.5 means the operator turned
// the filter on.
func centralAbuseRun(seed int64, users int, coverage float64) float64 {
	nw := simnet.New(seed)
	var policy *groupcomm.ModerationPolicy
	if coverage >= 0.5 {
		policy = spamPolicy
	}
	srv := groupcomm.NewCentralServer(nw.AddNode(), policy)
	spammer := groupcomm.NewCentralClient(nw.AddNode(), srv.Node().ID(), "spammer", time.Minute)
	readers := make([]*groupcomm.CentralClient, users)
	for i := range readers {
		readers[i] = groupcomm.NewCentralClient(nw.AddNode(), srv.Node().ID(),
			groupcomm.UserID(fmt.Sprintf("u%d", i)), time.Minute)
	}
	spammer.Post("town", []byte(spamBody), func(bool) {})
	nw.RunAll()
	exposed := 0
	for _, r := range readers {
		r.Fetch("town", func(ps []groupcomm.Post, ok bool) {
			for _, p := range ps {
				if p.Author == "spammer" {
					exposed++
				}
			}
		})
		nw.RunAll()
	}
	return float64(exposed) / float64(users)
}

// fedAbuseRun: one instance per user; coverage fraction of instances run
// the filter. The spammer homes on a filterless instance (worst case).
func fedAbuseRun(seed int64, users int, coverage float64) float64 {
	nw := simnet.New(seed)
	n := users + 1 // +1 for the spammer's instance (always lax)
	insts := make([]*groupcomm.FedInstance, n)
	filtered := int(coverage * float64(users))
	for i := range insts {
		var policy *groupcomm.ModerationPolicy
		if i > 0 && i <= filtered {
			policy = spamPolicy
		}
		insts[i] = groupcomm.NewFedInstance(nw.AddNode(), fmt.Sprintf("inst%d", i), policy)
	}
	for i, a := range insts {
		for j, b := range insts {
			if i != j {
				a.AddPeer(b.Name(), b.Node().ID())
			}
		}
	}
	insts[0].AddUser("spammer")
	spammer := groupcomm.NewFedClient(nw.AddNode(), insts[0].Node().ID(), "spammer", time.Minute)
	readers := make([]*groupcomm.FedClient, users)
	for i := 0; i < users; i++ {
		u := groupcomm.UserID(fmt.Sprintf("u%d", i))
		insts[i+1].AddUser(u)
		readers[i] = groupcomm.NewFedClient(nw.AddNode(), insts[i+1].Node().ID(), u, time.Minute)
		insts[i+1].Follow(u, "spammer", "inst0")
	}
	nw.RunAll()
	spammer.Post("town", []byte(spamBody), func(bool) {})
	nw.RunAll()
	exposed := 0
	for _, r := range readers {
		r.Read(func(ps []groupcomm.Post, ok bool) {
			for _, p := range ps {
				if p.Author == "spammer" {
					exposed++
				}
			}
		})
		nw.RunAll()
	}
	return float64(exposed) / float64(users)
}

// socialAbuseRun: coverage is the fraction of users who befriended the
// spammer; everyone else's trust check refuses the content unseen.
func socialAbuseRun(seed int64, users int, coverage float64) float64 {
	nw := simnet.New(seed)
	spammer := groupcomm.NewSocialPeer(nw.AddNode(), "spammer", 0)
	peers := make([]*groupcomm.SocialPeer, users)
	befriended := int(coverage * float64(users))
	for i := range peers {
		peers[i] = groupcomm.NewSocialPeer(nw.AddNode(), groupcomm.UserID(fmt.Sprintf("u%d", i)), 0)
		// The spammer pushes to everyone it can address.
		spammer.Befriend(peers[i].User(), peers[i].Node().ID())
		if i < befriended {
			peers[i].Befriend("spammer", spammer.Node().ID())
		}
	}
	post := spammer.Publish("wall", []byte(spamBody))
	nw.RunAll()
	exposed := 0
	for _, p := range peers {
		if p.Has(post.ID) {
			exposed++
		}
	}
	return float64(exposed) / float64(users)
}
