package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/replic"
	"repro/internal/simnet"
)

// x19Bench runs X19 as a multi-trial bench entry at the tiny world sizes
// (worker invariance is about merge ordering, not population size) and
// returns the snapshot JSON.
func x19Bench(t *testing.T, workers int) []byte {
	t.Helper()
	e := Experiment{
		ID:  "x19",
		Run: func(seed int64) fmt.Stringer { return AdaptiveReplicationTiny(seed) },
		Multi: func(seeds []int64, workers int) fmt.Stringer {
			agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
				return replicationMatrix(seed, true, simnet.NetworkConfig{}, false)
			})
			return agg.Table("X19 (tiny multi)", "Arm", "%.1f", "%.2f", "%.1f", "%.0f", "%.0f")
		},
		Tiny: func(seed int64) fmt.Stringer { return AdaptiveReplicationTiny(seed) },
	}
	entry := runBenchEntry(e, BenchOptions{Seed: 1919, Trials: 3, Workers: workers, Scale: "full"}.withDefaults())
	var buf bytes.Buffer
	if err := entry.Metrics.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestX19BenchGolden pins the fixed-seed X19 observability snapshot —
// the replic.* counters, the origin-byte-share gauge, and the resil.*
// transport metrics the adaptive arms generate — byte for byte:
// identical across repeated runs, across trial worker counts, and
// against the checked-in golden file. Any drift in the demand counters'
// decay math, the push/release arbitration, or the routing decisions
// changes these counts and fails here. Regenerate with
// `go test ./internal/experiments -run X19BenchGolden -update` after an
// intentional behaviour change.
func TestX19BenchGolden(t *testing.T) {
	serial := x19Bench(t, 1)
	parallel := x19Bench(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("X19 snapshot differs between 1 and 4 trial workers")
	}

	golden := filepath.Join("testdata", "x19_bench_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("X19 snapshot drifted from %s; if intentional, rerun with -update\ngot:\n%s", golden, serial)
	}
}

// TestX19ShardedLayoutsAgree runs the deterministic-link variant of the
// X19 clean arms on the legacy single-heap engine and on the sharded
// engine at full worker parallelism, and requires bit-identical results.
// The det variant replaces every access link with a fixed-latency
// profile — no jitter, no loss, no bandwidth queueing — and skips the
// fault scenarios, because that is exactly the regime where the two
// engines are event-for-event identical (simnet's
// TestShardedMatchesLegacyWhenDeterministic pins it; crashes are outside
// the contract). With identical event streams, every demand counter,
// push decision, and request outcome must match regardless of how many
// worker goroutines advanced the simulation.
func TestX19ShardedLayoutsAgree(t *testing.T) {
	sp := x19SpecFor(true)
	reqs, rs := x18Stream(42, sp.x18Spec, "flash")
	run := func(cfg replic.Config, engine simnet.NetworkConfig) x19Result {
		return x19Arm(42, sp, cfg, reqs, rs, nil, engine, true)
	}
	layouts := []simnet.NetworkConfig{
		{Shards: 0, Workers: 1},
		{Shards: 4, Workers: runtime.GOMAXPROCS(0)},
	}
	for _, arm := range []struct {
		name string
		cfg  replic.Config
	}{
		{"static", replic.Config{}},
		{"adaptive", x19Cfg(sp)},
	} {
		legacy := run(arm.cfg, layouts[0])
		sharded := run(arm.cfg, layouts[1])
		if legacy.cell != sharded.cell {
			t.Errorf("%s: cells diverged across layouts:\nlegacy:  %+v\nsharded: %+v",
				arm.name, legacy.cell, sharded.cell)
		}
		if !slicesEqualInt(legacy.timeline, sharded.timeline) {
			t.Errorf("%s: replica timelines diverged across layouts:\nlegacy:  %v\nsharded: %v",
				arm.name, legacy.timeline, sharded.timeline)
		}
	}
}

func slicesEqualInt(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestX19AdaptiveBeatsStatic pins the experiment's headline claim (the
// acceptance gate): under the same flash-crowd schedule, on the same
// home-uplink providers, enabling adaptive replication (a) cuts the
// origin's byte share at least 2× — the load the spike would have
// concentrated on one pinned holder spreads across the demand-sized
// replica set — and (b) brings p95 latency at or below the static arm's,
// because the set grows while the ramp still leaves the origin control
// headroom instead of queueing for minutes behind a saturated uplink.
// Measured at seed 42 tiny scale: static 94.0% origin / 48.9s p95 /
// 31.4% avail vs adaptive 21.8% / 2.1s / 89.8%.
func TestX19AdaptiveBeatsStatic(t *testing.T) {
	const (
		rStaticClean   = 0
		rAdaptiveClean = 2
		cAvail         = 0
		cP95           = 1
		cOrigin        = 2
	)
	m := replicationMatrix(42, true, simnet.NetworkConfig{}, false)
	staticOrigin := m.Vals[rStaticClean][cOrigin]
	adaptOrigin := m.Vals[rAdaptiveClean][cOrigin]
	if adaptOrigin <= 0 || staticOrigin/adaptOrigin < 2 {
		t.Errorf("origin byte share: static %.1f%% vs adaptive %.1f%%, want ≥ 2× reduction",
			staticOrigin, adaptOrigin)
	}
	staticP95 := m.Vals[rStaticClean][cP95]
	adaptP95 := m.Vals[rAdaptiveClean][cP95]
	if adaptP95 > staticP95 {
		t.Errorf("p95 under flash: adaptive %.2fs vs static %.2fs, want adaptive ≤ static", adaptP95, staticP95)
	}
	if d := m.Vals[rAdaptiveClean][cAvail] - m.Vals[rStaticClean][cAvail]; d < 20 {
		t.Errorf("adaptive beats static by only %.1f availability points, want ≥ 20", d)
	}
}
