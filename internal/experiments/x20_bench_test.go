package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/simnet"
)

// x20Bench runs X20 as a multi-trial bench entry at the tiny world sizes
// and returns the snapshot JSON.
func x20Bench(t *testing.T, workers int) []byte {
	t.Helper()
	e := Experiment{
		ID:  "x20",
		Run: func(seed int64) fmt.Stringer { return OverloadControlTiny(seed) },
		Multi: func(seeds []int64, workers int) fmt.Stringer {
			agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
				return overloadMatrix(seed, true, simnet.NetworkConfig{}, false)
			})
			return agg.Table("X20 (tiny multi)", "Arm", "%.1f", "%.1f", "%.2f", "%.2f", "%.0f", "%.0f")
		},
		Tiny: func(seed int64) fmt.Stringer { return OverloadControlTiny(seed) },
	}
	entry := runBenchEntry(e, BenchOptions{Seed: 2020, Trials: 3, Workers: workers, Scale: "full"}.withDefaults())
	var buf bytes.Buffer
	if err := entry.Metrics.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestX20BenchGolden pins the fixed-seed X20 observability snapshot —
// the overload.* admission/shed/CoDel counters, the net.queue.* uplink
// gauges and histograms, and the resil.shed.count the classified sheds
// generate — byte for byte: identical across repeated runs, across trial
// worker counts, and against the checked-in golden file. Any drift in
// the admission arithmetic, the AIMD controller, the CoDel front-drop
// rule, or the priority-lane serialization changes these counts and
// fails here. Regenerate with
// `go test ./internal/experiments -run X20BenchGolden -update` after an
// intentional behaviour change.
func TestX20BenchGolden(t *testing.T) {
	serial := x20Bench(t, 1)
	parallel := x20Bench(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("X20 snapshot differs between 1 and 4 trial workers")
	}

	golden := filepath.Join("testdata", "x20_bench_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("X20 snapshot drifted from %s; if intentional, rerun with -update\ngot:\n%s", golden, serial)
	}
}

// TestX20ShardedLayoutsAgree runs the deterministic-link variant of the
// X20 clean arms on the legacy single-heap engine and on the sharded
// engine at full worker parallelism, and requires bit-identical results.
// Deterministic links have no bandwidth model, so the overload layer
// never saturates here — what the test pins is that the deferred-reply
// dispatch, the admission bookkeeping, and the lane-stamped sends are
// event-for-event identical across engine layouts, the same contract
// TestX19ShardedLayoutsAgree pins for the replication layer.
func TestX20ShardedLayoutsAgree(t *testing.T) {
	sp := x20SpecFor(true)
	reqs, rs := x18Stream(42, sp.x18Spec, "flash")
	layouts := []simnet.NetworkConfig{
		{Shards: 0, Workers: 1},
		{Shards: 4, Workers: runtime.GOMAXPROCS(0)},
	}
	for _, arm := range x20Arms() {
		if arm.churn {
			continue // crashes are outside the sharded-determinism contract
		}
		legacy := x20Run(42, sp, arm, reqs, rs, layouts[0], true)
		sharded := x20Run(42, sp, arm, reqs, rs, layouts[1], true)
		if legacy.cell != sharded.cell {
			t.Errorf("%s: cells diverged across layouts:\nlegacy:  %+v\nsharded: %+v",
				arm.name, legacy.cell, sharded.cell)
		}
	}
}

// TestX20OverloadDegradesGracefully pins the experiment's headline claim
// (the acceptance gate): under the X18 flash schedule, at seed 42 tiny
// scale,
//
//	(a) the overload-protected feudal origin at least doubles the naive
//	    origin's within-SLA availability over the flash window — the
//	    naive uplink serves 30s-stale replies nobody is waiting for
//	    (measured: 6.6% naive vs 32.7% protected, ~5×), and
//	(b) the protected origin's control plane stays responsive through
//	    the spike: ctl-ping p95 bounded by 1s while the naive origin's
//	    probe pegs at the 10s timeout (measured: 0.12s vs 10.00s), and
//	(c) protecting the replic swarm helps too — adverts and directory
//	    calls ride the priority lane out of saturated providers, so the
//	    protected swarm's flash-window availability beats the naive
//	    swarm's (measured: 85.4% vs 69.8%) with its hot-provider
//	    control p95 likewise bounded (0.17s vs 2.84s).
func TestX20OverloadDegradesGracefully(t *testing.T) {
	const (
		rFeudalNaive = 0 // feudal-naive-clean
		rFeudalOvld  = 2 // feudal-ovld-clean
		rReplicNaive = 4 // replic-naive-clean
		rReplicOvld  = 6 // replic-ovld-clean
		cFlash       = 0
		cCtlP95      = 3
		cShed        = 4
	)
	m := overloadMatrix(42, true, simnet.NetworkConfig{}, false)

	naive := m.Vals[rFeudalNaive][cFlash]
	ovld := m.Vals[rFeudalOvld][cFlash]
	if ovld < 2*naive || ovld <= 0 {
		t.Errorf("feudal flash-window availability: naive %.1f%% vs protected %.1f%%, want ≥ 2×", naive, ovld)
	}
	if p95 := m.Vals[rFeudalOvld][cCtlP95]; p95 > 1 {
		t.Errorf("protected origin ctl-ping p95 = %.2fs through the spike, want ≤ 1s", p95)
	}
	if p95 := m.Vals[rFeudalNaive][cCtlP95]; p95 < 2 {
		t.Errorf("naive origin ctl-ping p95 = %.2fs — the spike no longer starves the naive control plane, so the comparison is vacuous", p95)
	}
	if shed := m.Vals[rFeudalOvld][cShed]; shed == 0 {
		t.Error("protected origin shed nothing under the flash — admission control never engaged")
	}

	if naive, ovld := m.Vals[rReplicNaive][cFlash], m.Vals[rReplicOvld][cFlash]; ovld <= naive {
		t.Errorf("replic flash-window availability: naive %.1f%% vs protected %.1f%%, want protected higher", naive, ovld)
	}
	if p95 := m.Vals[rReplicOvld][cCtlP95]; p95 > 1 {
		t.Errorf("protected hot provider ctl-ping p95 = %.2fs through the spike, want ≤ 1s", p95)
	}
}
