package experiments

import (
	"runtime"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// BenchOptions sizes one bench sweep over the experiment registry.
type BenchOptions struct {
	// Seed is the base seed; multi-trial experiments derive their trial
	// seeds from it with simnet.Seeds, exactly like `feudalism experiment`.
	Seed int64
	// Trials > 1 runs the Multi variant of experiments that have one.
	Trials int
	// Workers bounds trial parallelism (0 = GOMAXPROCS). The exported
	// metrics are identical at any worker count.
	Workers int
	// Scale selects "full" (the Run/Multi sizes) or "tiny" (the test-suite
	// sizes). Tiny keeps the CI gate and the determinism tests fast.
	Scale string
	// WallClock, when non-nil, supplies monotonic wall-clock nanoseconds
	// and enables the timing section (wall time + allocations) of each
	// entry. Timing is inherently machine-dependent, so it is opt-in: with
	// WallClock nil the output is a pure function of (code, options).
	// The clock is injected by cmd/feudalism rather than read here so that
	// everything under internal/ stays free of time.Now (the determinism
	// lint enforces this).
	WallClock func() int64
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if o.Scale == "" {
		o.Scale = "full"
	}
	return o
}

// RunBench executes every registered experiment under a fresh obs
// collector and returns the machine-readable bench file: per experiment,
// the deterministic merge of every metric registry the run created
// (protocol counters, substrate traffic, span histograms), plus timing
// when enabled. This is the artifact `feudalism bench -json` writes and
// scripts/ci.sh diffs against BENCH_baseline.json.
func RunBench(opts BenchOptions) *obs.BenchFile {
	opts = opts.withDefaults()
	file := &obs.BenchFile{
		Schema: obs.BenchSchema,
		Seed:   opts.Seed,
		Trials: opts.Trials,
		Scale:  opts.Scale,
	}
	for _, e := range Registry() {
		file.Experiments = append(file.Experiments, runBenchEntry(e, opts))
	}
	file.Sort()
	return file
}

func runBenchEntry(e Experiment, opts BenchOptions) obs.BenchExperiment {
	col := obs.NewCollector()
	restore := obs.SetCollector(col)
	defer restore()

	var timing *obs.Timing
	var before runtime.MemStats
	var startNS int64
	if opts.WallClock != nil {
		runtime.ReadMemStats(&before)
		startNS = opts.WallClock()
	}

	switch {
	case opts.Scale == "tiny":
		_ = e.Tiny(opts.Seed)
	case opts.Trials > 1 && e.Multi != nil:
		_ = e.Multi(simnet.Seeds(opts.Seed, opts.Trials), opts.Workers)
	default:
		_ = e.Run(opts.Seed)
	}

	if opts.WallClock != nil {
		elapsed := opts.WallClock() - startNS
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		timing = &obs.Timing{
			WallNS:     elapsed,
			Allocs:     after.Mallocs - before.Mallocs,
			AllocBytes: after.TotalAlloc - before.TotalAlloc,
		}
	}
	return obs.BenchExperiment{ID: e.ID, Metrics: col.Merged(), Timing: timing}
}
