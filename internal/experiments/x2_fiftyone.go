package experiments

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// FiftyOnePercent is experiment X2: an attacker with a fraction q of the
// network hashrate mines a private branch from genesis while honest miners
// extend the public chain; after a fixed horizon the attacker publishes.
// Success means the honest replica reorgs onto the attacker branch. The
// paper (§3.1) lists the 51 % attack among blockchains' "well-known
// problems": success probability should collapse for q < 0.5 and approach
// certainty above it.
func FiftyOnePercent(seed int64, trials int, horizonBlocks int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X2: private-branch (51%%) attack, horizon ≈%d blocks, %d trials/share", horizonBlocks, trials),
		Headers: []string{"Attacker Hashrate Share", "Reorg Success Rate", "Mean Attacker Lead (blocks)"},
	}
	for _, share := range fiftyOneShares {
		wins, meanLead := fiftyOneRow(seed, share, trials, horizonBlocks)
		t.Add(fmt.Sprintf("%.0f%%", share*100),
			fmt.Sprintf("%.0f%%", 100*wins),
			fmt.Sprintf("%+.1f", meanLead))
	}
	return t
}

var fiftyOneShares = []float64{0.1, 0.2, 0.3, 0.4, 0.45, 0.55, 0.6, 0.75}

// fiftyOneRow fans the per-share trials over simnet.Trials and reduces to
// (win rate, mean attacker lead). The per-trial seeds reproduce the
// original serial derivation base + trial·1000.
func fiftyOneRow(seed int64, share float64, trials, horizonBlocks int) (winRate, meanLead float64) {
	type outcome struct {
		won  bool
		lead int
	}
	outs := simnet.Trials(strideSeeds(seed+int64(share*100), 1000, trials), 0, func(s int64) outcome {
		won, lead := fiftyOneTrial(s, share, horizonBlocks)
		return outcome{won, lead}
	})
	wins := 0
	var leadSum float64
	for _, o := range outs {
		if o.won {
			wins++
		}
		leadSum += float64(o.lead)
	}
	return float64(wins) / float64(trials), leadSum / float64(trials)
}

// fiftyOneMatrix is the numeric core of X2: one seed, one (win rate, mean
// lead) pair per attacker share, each share still averaging `trials` races.
func fiftyOneMatrix(seed int64, trials, horizonBlocks int) Matrix {
	rows := make([]string, len(fiftyOneShares))
	for i, s := range fiftyOneShares {
		rows[i] = fmt.Sprintf("%.0f%%", s*100)
	}
	mx := NewMatrix(rows, []string{"Reorg Success Rate", "Mean Attacker Lead (blocks)"})
	for r, share := range fiftyOneShares {
		win, lead := fiftyOneRow(seed, share, trials, horizonBlocks)
		mx.Vals[r][0] = win * 100
		mx.Vals[r][1] = lead
	}
	return mx
}

// FiftyOnePercentMulti is X2 aggregated over a batch of seeds on `workers`
// parallel trial runners (0 = GOMAXPROCS).
func FiftyOnePercentMulti(seeds []int64, workers, trials, horizonBlocks int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return fiftyOneMatrix(seed, trials, horizonBlocks)
	})
	return agg.Table(
		fmt.Sprintf("X2: private-branch (51%%) attack, horizon ≈%d blocks, %d trials/share", horizonBlocks, trials),
		"Attacker Hashrate Share", "%.0f%%", "%+.1f")
}

// fiftyOneTrial runs one race and reports whether the honest node reorged
// onto the attacker branch, plus the attacker's block lead at publication.
func fiftyOneTrial(seed int64, share float64, horizonBlocks int) (bool, int) {
	nw := simnet.New(seed)
	spacing := 10 * time.Second
	cfg := chain.Config{InitialDifficulty: 1 << 10, TargetSpacing: spacing, Subsidy: 50}
	total := float64(cfg.InitialDifficulty) / spacing.Seconds() // network hashrate for 1 block/spacing

	miners := newMinerNet(nw, 2, 0, cfg)
	honest, attacker := miners[0], miners[1]
	honest.SetHashrate(total * (1 - share))
	attacker.SetHashrate(total * share)
	attacker.SetWithhold(true)
	attacker.SetMiningTarget(attacker.Chain().HeadHash()) // fork at genesis

	honest.Start()
	attacker.Start()
	nw.Run(time.Duration(horizonBlocks) * spacing)
	honest.Stop()
	attacker.Stop()
	nw.RunAll()

	lead := len(attacker.Withheld()) - int(honest.Chain().Height())
	attacker.Release()
	nw.RunAll()
	return honest.Chain().Reorgs() > 0, lead
}

// DoubleSpend demonstrates the canonical consequence of a successful
// private-branch attack: a payment confirmed on the public chain vanishes
// after the reorg. It returns the victim's observed balance before and
// after the attack branch is published.
func DoubleSpend(seed int64) (before, after uint64) {
	nw := simnet.New(seed)
	spacing := 10 * time.Second
	kp, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		panic(err)
	}
	cfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{kp.Fingerprint(): 1000},
	}
	total := float64(cfg.InitialDifficulty) / spacing.Seconds()
	miners := newMinerNet(nw, 2, 0, cfg)
	honest, attacker := miners[0], miners[1]
	honest.SetHashrate(total * 0.3)
	attacker.SetHashrate(total * 0.7)
	attacker.SetWithhold(true)
	attacker.SetMiningTarget(attacker.Chain().HeadHash())

	victim := chain.Address{0x56}
	pay := &chain.Tx{To: victim, Amount: 500, Fee: 1, Nonce: 0, Kind: chain.KindPayment}
	pay.Sign(kp)
	// The attacker (who colludes with the payer in the classic scenario)
	// seeds its private mempool with a conflicting, higher-fee spend of the
	// same nonce back to the payer, so the private branch never includes
	// the victim's payment.
	conflict := &chain.Tx{To: kp.Fingerprint(), Amount: 0, Fee: 5, Nonce: 0, Kind: chain.KindPayment}
	conflict.Sign(kp)
	attacker.Pool().Add(conflict)

	honest.Start()
	attacker.Start()
	nw.After(time.Second, func() { honest.SubmitTx(pay) })
	nw.Run(20 * spacing)
	honest.Stop()
	attacker.Stop()
	nw.RunAll()

	before = honest.Chain().State().Balance(victim)
	attacker.Release()
	nw.RunAll()
	after = honest.Chain().State().Balance(victim)
	return before, after
}
