package experiments

import (
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

// FiftyOnePercent is experiment X2: an attacker with a fraction q of the
// network hashrate mines a private branch from genesis while honest miners
// extend the public chain; after a fixed horizon the attacker publishes.
// Success means the honest replica reorgs onto the attacker branch. The
// paper (§3.1) lists the 51 % attack among blockchains' "well-known
// problems": success probability should collapse for q < 0.5 and approach
// certainty above it.
func FiftyOnePercent(seed int64, trials int, horizonBlocks int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X2: private-branch (51%%) attack, horizon ≈%d blocks, %d trials/share", horizonBlocks, trials),
		Headers: []string{"Attacker Hashrate Share", "Reorg Success Rate", "Mean Attacker Lead (blocks)"},
	}
	for _, share := range []float64{0.1, 0.2, 0.3, 0.4, 0.45, 0.55, 0.6, 0.75} {
		wins := 0
		var leadSum float64
		for trial := 0; trial < trials; trial++ {
			won, lead := fiftyOneTrial(seed+int64(trial)*1000+int64(share*100), share, horizonBlocks)
			if won {
				wins++
			}
			leadSum += float64(lead)
		}
		t.Add(fmt.Sprintf("%.0f%%", share*100),
			fmt.Sprintf("%.0f%%", 100*float64(wins)/float64(trials)),
			fmt.Sprintf("%+.1f", leadSum/float64(trials)))
	}
	return t
}

// fiftyOneTrial runs one race and reports whether the honest node reorged
// onto the attacker branch, plus the attacker's block lead at publication.
func fiftyOneTrial(seed int64, share float64, horizonBlocks int) (bool, int) {
	nw := simnet.New(seed)
	spacing := 10 * time.Second
	cfg := chain.Config{InitialDifficulty: 1 << 10, TargetSpacing: spacing, Subsidy: 50}
	total := float64(cfg.InitialDifficulty) / spacing.Seconds() // network hashrate for 1 block/spacing

	miners := newMinerNet(nw, 2, 0, cfg)
	honest, attacker := miners[0], miners[1]
	honest.SetHashrate(total * (1 - share))
	attacker.SetHashrate(total * share)
	attacker.SetWithhold(true)
	attacker.SetMiningTarget(attacker.Chain().HeadHash()) // fork at genesis

	honest.Start()
	attacker.Start()
	nw.Run(time.Duration(horizonBlocks) * spacing)
	honest.Stop()
	attacker.Stop()
	nw.RunAll()

	lead := len(attacker.Withheld()) - int(honest.Chain().Height())
	attacker.Release()
	nw.RunAll()
	return honest.Chain().Reorgs() > 0, lead
}

// DoubleSpend demonstrates the canonical consequence of a successful
// private-branch attack: a payment confirmed on the public chain vanishes
// after the reorg. It returns the victim's observed balance before and
// after the attack branch is published.
func DoubleSpend(seed int64) (before, after uint64) {
	nw := simnet.New(seed)
	spacing := 10 * time.Second
	kp, err := cryptoutil.GenerateKeyPair(nw.Rand())
	if err != nil {
		panic(err)
	}
	cfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{kp.Fingerprint(): 1000},
	}
	total := float64(cfg.InitialDifficulty) / spacing.Seconds()
	miners := newMinerNet(nw, 2, 0, cfg)
	honest, attacker := miners[0], miners[1]
	honest.SetHashrate(total * 0.3)
	attacker.SetHashrate(total * 0.7)
	attacker.SetWithhold(true)
	attacker.SetMiningTarget(attacker.Chain().HeadHash())

	victim := chain.Address{0x56}
	pay := &chain.Tx{To: victim, Amount: 500, Fee: 1, Nonce: 0, Kind: chain.KindPayment}
	pay.Sign(kp)
	// The attacker (who colludes with the payer in the classic scenario)
	// seeds its private mempool with a conflicting, higher-fee spend of the
	// same nonce back to the payer, so the private branch never includes
	// the victim's payment.
	conflict := &chain.Tx{To: kp.Fingerprint(), Amount: 0, Fee: 5, Nonce: 0, Kind: chain.KindPayment}
	conflict.Sign(kp)
	attacker.Pool().Add(conflict)

	honest.Start()
	attacker.Start()
	nw.After(time.Second, func() { honest.SubmitTx(pay) })
	nw.Run(20 * spacing)
	honest.Stop()
	attacker.Stop()
	nw.RunAll()

	before = honest.Chain().State().Balance(victim)
	attacker.Release()
	nw.RunAll()
	after = honest.Chain().State().Balance(victim)
	return before, after
}
