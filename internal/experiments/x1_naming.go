package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/metrics"
	"repro/internal/naming"
	"repro/internal/simnet"
)

// newMinerNet builds n fully meshed miners with fresh chain replicas on an
// existing network; the shared helper for every chain-backed experiment.
func newMinerNet(nw *simnet.Network, n int, hashrate float64, cfg chain.Config) []*chain.Miner {
	miners := make([]*chain.Miner, n)
	ids := make([]simnet.NodeID, n)
	for i := 0; i < n; i++ {
		node := nw.AddNode()
		ids[i] = node.ID()
		addr := cryptoutil.SumHash([]byte{byte(i), 0x4D})
		miners[i] = chain.NewMiner(node, chain.NewChain(cfg), addr, hashrate)
	}
	for i, m := range miners {
		peers := make([]simnet.NodeID, 0, n-1)
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
	}
	return miners
}

// NamingSchemes is experiment X1: it registers nNames names under the
// centralized registrar and under the blockchain scheme at two block
// spacings, and reports latency and throughput. It quantifies §3.1:
// "blockchains essentially trade scalability and performance for global
// consensus and security."
func NamingSchemes(seed int64, nNames int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X1: name registration, %d names per scheme (latency = submit→resolvable)", nNames),
		Headers: []string{"Scheme", "Mean Latency", "Max Latency", "Throughput (names/min)", "Censorable by One Party"},
	}

	// Centralized registrar baseline.
	{
		nw := simnet.New(seed)
		reg := naming.NewCentralizedRegistrar(nw.AddNode())
		client := naming.NewRegistrarClient(nw.AddNodeWithProfile(simnet.HomeBroadbandProfile()), reg.Node().ID(), time.Minute)
		var lat metrics.Sample
		start := nw.Now()
		var lastDone time.Duration
		var registerNext func(i int)
		registerNext = func(i int) {
			if i >= nNames {
				return
			}
			t0 := nw.Now()
			client.Register(fmt.Sprintf("name-%04d", i), chain.Address{byte(i)}, nil, func(ok bool) {
				if ok {
					lat.Observe(float64(nw.Now()-t0) / float64(time.Second))
					lastDone = nw.Now()
				}
				registerNext(i + 1)
			})
		}
		registerNext(0)
		nw.Run(time.Hour)
		elapsedMin := float64(lastDone-start) / float64(time.Minute)
		t.Add("centralized-registrar",
			fmt.Sprintf("%.2fs", lat.Mean()),
			fmt.Sprintf("%.2fs", lat.Quantile(1)),
			fmt.Sprintf("%.0f", metrics.Ratio(float64(lat.Count()), elapsedMin)),
			true)
	}

	// Blockchain naming at two block spacings.
	for _, spacing := range []time.Duration{5 * time.Second, 30 * time.Second} {
		mean, max, tput, n := blockchainNamingRun(seed+int64(spacing), nNames, spacing)
		t.Add(fmt.Sprintf("blockchain (block every %v)", spacing),
			fmt.Sprintf("%.0fs", mean),
			fmt.Sprintf("%.0fs", max),
			fmt.Sprintf("%.1f", tput),
			false)
		if n < nNames {
			t.Add(fmt.Sprintf("  (only %d/%d confirmed before deadline)", n, nNames), "", "", "", "")
		}
	}
	return t
}

// blockchainNamingRun registers names on a 3-miner chain and returns mean
// and max submit→resolvable latency (seconds), throughput (names/min), and
// how many names confirmed.
func blockchainNamingRun(seed int64, nNames int, spacing time.Duration) (mean, max, throughput float64, confirmed int) {
	nw := simnet.New(seed)
	key, err := cryptoutil.GenerateKeyPair(rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	cfg := chain.Config{
		InitialDifficulty: 1 << 10,
		TargetSpacing:     spacing,
		Subsidy:           50,
		GenesisAlloc:      map[chain.Address]uint64{key.Fingerprint(): 1 << 40},
	}
	// Aggregate hashrate targets the requested spacing.
	miners := newMinerNet(nw, 3, float64(cfg.InitialDifficulty)/spacing.Seconds()/3, cfg)
	for _, m := range miners {
		m.Start()
	}
	nameCfg := naming.DefaultConfig()
	client := naming.NewClient(key, nameCfg, rand.New(rand.NewSource(seed+1)), 0)

	name := func(i int) string { return fmt.Sprintf("bname-%04d", i) }
	submitAt := map[string]time.Duration{}
	resolvedAt := map[string]time.Duration{}
	preorderTx := map[string]cryptoutil.Hash{}

	// Phase 1: submit all preorders. Phase 2 (per name): once the preorder
	// is buried under one extra block (so the register necessarily lands at
	// age ≥ MinPreorderAge), submit the register. Poll the first miner's
	// chain replica.
	start := nw.Now()
	registered := map[string]bool{}
	for i := 0; i < nNames; i++ {
		tx, err := client.Preorder(name(i))
		if err != nil {
			panic(err)
		}
		submitAt[name(i)] = nw.Now()
		preorderTx[name(i)] = tx.ID()
		miners[0].SubmitTx(tx)
	}
	deadline := start + 2*time.Hour
	var poll func()
	poll = func() {
		c := miners[0].Chain()
		idx := naming.BuildIndex(c, nameCfg)
		allDone := true
		for i := 0; i < nNames; i++ {
			nm := name(i)
			if _, ok := resolvedAt[nm]; ok {
				continue
			}
			allDone = false
			if _, ok := idx.Resolve(nm); ok {
				resolvedAt[nm] = nw.Now()
				continue
			}
			if !registered[nm] {
				if _, blk := c.FindTx(preorderTx[nm]); blk != nil && c.Confirmations(blk.Hash()) >= 2 {
					registered[nm] = true
					miners[0].SubmitTx(client.Register(nm, []byte("zone")))
				}
			}
		}
		if !allDone && nw.Now() < deadline {
			nw.After(spacing/2, poll)
		}
	}
	nw.After(spacing, poll)
	nw.Run(deadline + time.Minute)
	for _, m := range miners {
		m.Stop()
	}

	var lat metrics.Sample
	var last time.Duration
	for nm, at := range resolvedAt {
		lat.Observe(float64(at-submitAt[nm]) / float64(time.Second))
		if at > last {
			last = at
		}
	}
	confirmed = lat.Count()
	if confirmed == 0 {
		return 0, 0, 0, 0
	}
	elapsedMin := float64(last-start) / float64(time.Minute)
	return lat.Mean(), lat.Quantile(1), metrics.Ratio(float64(confirmed), elapsedMin), confirmed
}
