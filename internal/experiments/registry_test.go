package experiments

import (
	"strings"
	"testing"
)

// TestRegistryIDsUniqueAndComplete: ids are unique, every entry has a
// description and both runners, and the two known deterministic-only
// lookups resolve through Find.
func TestRegistryIDsUniqueAndComplete(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if e.ID == "" || e.Desc == "" {
			t.Errorf("entry %+v missing id or description", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Tiny == nil {
			t.Errorf("%s: Run and Tiny must both be set", e.ID)
		}
	}
	for _, id := range []string{"naming-throughput", "x14", "sensitivity"} {
		if _, ok := Find(id); !ok {
			t.Errorf("Find(%q) = not found", id)
		}
	}
	if _, ok := Find("no-such-experiment"); ok {
		t.Error("Find of unknown id succeeded")
	}
}

// TestRegistryTinyRuns: every registered experiment runs at tiny scale and
// produces a rendered table with at least a header, a separator, and one
// data row.
func TestRegistryTinyRuns(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := e.Tiny(7).String()
			lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
			if len(lines) < 3 {
				t.Fatalf("tiny output too short (%d lines):\n%s", len(lines), out)
			}
			if strings.TrimSpace(out) == "" {
				t.Fatal("tiny output empty")
			}
		})
	}
}

// TestRegistryTinyDeterministic: the same seed renders byte-identical
// output for every entry — the reproducibility contract every experiment
// inherits from simnet.
func TestRegistryTinyDeterministic(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if a, b := e.Tiny(11).String(), e.Tiny(11).String(); a != b {
				t.Errorf("same seed rendered different tables:\n%s\nvs\n%s", a, b)
			}
		})
	}
}
