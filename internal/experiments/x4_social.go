package experiments

import (
	"fmt"
	"time"

	"repro/internal/groupcomm"
	"repro/internal/simnet"
)

// SocialP2P is experiment X4: in a random friend graph of N users with
// mean degree d, under churn with long-run availability a, an author
// publishes a post; after a fixed horizon we measure what fraction of the
// author's friends hold the post. §3.2: socially-aware P2P "comes at a
// price of reduced availability since nodes accept connections only from
// socially-trusted peers" — availability rises with degree (more sync
// paths) and with per-node uptime.
func SocialP2P(seed int64, users int, degrees []int, availabilities []float64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X4: social-P2P delivery to friends within 15min (N=%d, anti-entropy 60s)", users),
		Headers: []string{"Mean Degree"},
	}
	for _, a := range availabilities {
		t.Headers = append(t.Headers, fmt.Sprintf("uptime=%.0f%%", a*100))
	}
	const trials = 5
	for _, d := range degrees {
		d := d
		row := []any{fmt.Sprintf("%d", d)}
		for _, a := range availabilities {
			a := a
			sum := 0.0
			for _, v := range simnet.Trials(strideSeeds(seed, 7919, trials), 0, func(s int64) float64 {
				return socialP2PRun(s, users, d, a)
			}) {
				sum += v
			}
			row = append(row, fmt.Sprintf("%.2f", sum/trials))
		}
		t.Add(row...)
	}
	return t
}

// socialP2PMatrix is the numeric core of X4: one seed, one delivery ratio
// per (degree, availability) cell.
func socialP2PMatrix(seed int64, users int, degrees []int, availabilities []float64) Matrix {
	rows := make([]string, len(degrees))
	for i, d := range degrees {
		rows[i] = fmt.Sprintf("%d", d)
	}
	cols := make([]string, len(availabilities))
	for i, a := range availabilities {
		cols[i] = fmt.Sprintf("uptime=%.0f%%", a*100)
	}
	mx := NewMatrix(rows, cols)
	for r, d := range degrees {
		for c, a := range availabilities {
			mx.Vals[r][c] = socialP2PRun(seed, users, d, a)
		}
	}
	return mx
}

// SocialP2PMulti is X4 aggregated over a batch of seeds (one trial per
// seed) on `workers` parallel trial runners (0 = GOMAXPROCS).
func SocialP2PMulti(seeds []int64, workers, users int, degrees []int, availabilities []float64) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return socialP2PMatrix(seed, users, degrees, availabilities)
	})
	return agg.Table(
		fmt.Sprintf("X4: social-P2P delivery to friends within 15min (N=%d, anti-entropy 60s)", users),
		"Mean Degree", "%.2f")
}

func socialP2PRun(seed int64, users, degree int, availability float64) float64 {
	nw := simnet.New(seed + int64(degree*1000) + int64(availability*100))
	peers := make([]*groupcomm.SocialPeer, users)
	for i := range peers {
		peers[i] = groupcomm.NewSocialPeer(nw.AddNode(), groupcomm.UserID(fmt.Sprintf("u%d", i)), 60*time.Second)
	}
	// Random graph with ~degree mutual friends per node.
	rng := nw.Rand()
	befriend := func(i, j int) {
		peers[i].Befriend(peers[j].User(), peers[j].Node().ID())
		peers[j].Befriend(peers[i].User(), peers[i].Node().ID())
	}
	if degree >= users {
		degree = users - 1
	}
	for i := range peers {
		for attempts := 0; peers[i].NumFriends() < degree && attempts < users*20; attempts++ {
			j := rng.Intn(users)
			if j != i {
				befriend(i, j)
			}
		}
	}
	// Churn with the requested long-run availability: MTTF/(MTTF+MTTR)=a.
	// Short cycles relative to the measurement window keep the question
	// honest: was the friend reachable (directly or via a mutual friend)
	// within 15 minutes of the post?
	mttf := 10 * time.Minute
	if availability < 1 {
		mttr := time.Duration(float64(mttf) * (1 - availability) / availability)
		for _, p := range peers {
			simnet.Churn{MTTF: mttf, MTTR: mttr}.Apply(p.Node())
		}
	}
	// Warm up churn, then the author (node 0, forced up) posts.
	nw.Run(30 * time.Minute)
	author := peers[0]
	author.Node().Restart() // ensure up
	post := author.Publish("wall", []byte("to my friends"))
	nw.Run(nw.Now() + 15*time.Minute)

	friends := 0
	holding := 0
	for i, p := range peers {
		if i == 0 || !p.IsFriend(author.User()) {
			continue
		}
		friends++
		if p.Has(post.ID) {
			holding++
		}
	}
	if friends == 0 {
		return 0
	}
	return float64(holding) / float64(friends)
}

// MetadataExposureTable renders the §3.2 metadata-exposure comparison for
// a federation of the given size.
func MetadataExposureTable(servers int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X4b: metadata exposure per message (federation of %d servers)", servers),
		Headers: []string{"Model", "Operator Observers", "Body Visible To Operators", "Note"},
	}
	for _, e := range groupcomm.Exposures() {
		t.Add(e.Model, e.ObserverCount(servers), e.BodyVisible, e.Note)
	}
	return t
}
