package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// x15Bench runs the X15 scale sweep as a multi-trial bench entry at the
// tiny tier sizes (the worker-invariance property is about merge ordering,
// not population size) and returns the snapshot JSON.
func x15Bench(t *testing.T, workers int) []byte {
	t.Helper()
	e := Experiment{
		ID:  "x15",
		Run: func(seed int64) fmt.Stringer { return ScaleSweep(seed, true) },
		Multi: func(seeds []int64, workers int) fmt.Stringer {
			return ScaleSweepMulti(seeds, workers, true)
		},
		Tiny: func(seed int64) fmt.Stringer { return ScaleSweep(seed, true) },
	}
	entry := runBenchEntry(e, BenchOptions{Seed: 1515, Trials: 3, Workers: workers, Scale: "full"}.withDefaults())
	var buf bytes.Buffer
	if err := entry.Metrics.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestX15BenchGolden pins the fixed-seed X15 observability snapshot byte
// for byte: identical across repeated runs, across trial worker counts,
// and against the checked-in golden file. Regenerate with
// `go test ./internal/experiments -run X15BenchGolden -update` after an
// intentional behaviour change.
func TestX15BenchGolden(t *testing.T) {
	serial := x15Bench(t, 1)
	parallel := x15Bench(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("X15 snapshot differs between 1 and 4 trial workers")
	}

	golden := filepath.Join("testdata", "x15_bench_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("X15 snapshot drifted from %s; if intentional, rerun with -update\ngot:\n%s", golden, serial)
	}
}

// x15TimedFile builds a bench file holding one X15 entry with the given
// wall time, for exercising the time gate.
func x15TimedFile(wallNS int64) *obs.BenchFile {
	return &obs.BenchFile{
		Schema: obs.BenchSchema,
		Experiments: []obs.BenchExperiment{{
			ID:      "x15",
			Metrics: &obs.Snapshot{Counters: map[string]int64{"net.msg.delivered": 100}},
			Timing:  &obs.Timing{WallNS: wallNS, Allocs: 1000},
		}},
	}
}

// TestX15TimeGate covers the benchdiff time gate on X15 entries: growth
// beyond the tolerance is a regression, growth within it (and any
// improvement) is not, and a zero tolerance disables the gate entirely —
// the setting cross-machine comparisons rely on.
func TestX15TimeGate(t *testing.T) {
	base := x15TimedFile(10_000_000) // 10 ms

	if probs := obs.Compare(base, x15TimedFile(13_000_000), obs.Tolerances{Time: 0.2}); len(probs) == 0 {
		t.Fatal("30% wall-time growth passed a 20% time gate")
	}
	if probs := obs.Compare(base, x15TimedFile(11_000_000), obs.Tolerances{Time: 0.2}); len(probs) != 0 {
		t.Fatalf("10%% wall-time growth tripped a 20%% time gate: %v", probs)
	}
	if probs := obs.Compare(base, x15TimedFile(5_000_000), obs.Tolerances{Time: 0.2}); len(probs) != 0 {
		t.Fatalf("a wall-time improvement tripped the gate: %v", probs)
	}
	if probs := obs.Compare(base, x15TimedFile(1_000_000_000), obs.Tolerances{Time: 0}); len(probs) != 0 {
		t.Fatalf("time gate fired despite being disabled: %v", probs)
	}
}
