package experiments

import (
	"fmt"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// DHTQuality is experiment X11: the same Kademlia network is run on
// datacenter-grade, home-broadband, and mobile attachments, with and
// without churn, and we measure lookup success and latency. This makes
// §5.2's "Grappling with infrastructure quality vs quantity" concrete:
// "the quality of this infrastructure is much poorer than what a typical
// datacenter provides. As such, systems must be designed to cope with the
// intermittency, higher failure rates, and variable performance of
// user-device-based infrastructure."
func DHTQuality(seed int64, peers, lookups int) *Table {
	t := &Table{
		Title:   fmt.Sprintf("X11: DHT lookups on device-grade vs datacenter infrastructure (%d peers, %d lookups)", peers, lookups),
		Headers: []string{"Attachment", "Churn", "Lookup Success", "Mean Latency", "P99 Latency"},
	}
	profiles, variants := dhtGrid()
	const trials = 3
	for _, prof := range profiles {
		for _, v := range variants {
			prof, v := prof, v
			var success, mean, p99 float64
			for _, o := range simnet.Trials(strideSeeds(seed, 6151, trials), 0, func(s int64) dhtOutcome {
				su, m, p := dhtQualityRun(s, peers, lookups, prof.p, v.churn, v.republish)
				return dhtOutcome{su, m, p}
			}) {
				success += o.success
				mean += o.mean
				p99 += o.p99
			}
			t.Add(prof.name, v.label,
				fmt.Sprintf("%.0f%%", success/trials*100),
				fmt.Sprintf("%.0fms", mean/trials*1000),
				fmt.Sprintf("%.0fms", p99/trials*1000))
		}
	}
	return t
}

type dhtOutcome struct{ success, mean, p99 float64 }

// dhtProfiles and dhtVariants define the X11 grid shared by the single-seed
// and multi-seed renderers.
func dhtGrid() (profiles []struct {
	name string
	p    simnet.LinkProfile
}, variants []struct {
	label     string
	churn     bool
	republish bool
}) {
	profiles = []struct {
		name string
		p    simnet.LinkProfile
	}{
		{"datacenter", simnet.DatacenterProfile()},
		{"home broadband", simnet.HomeBroadbandProfile()},
		{"mobile 3G", simnet.MobileProfile()},
	}
	variants = []struct {
		label     string
		churn     bool
		republish bool
	}{
		{"none", false, true},
		{"churn + republish", true, true},
		{"churn, no republish", true, false},
	}
	return
}

// dhtQualityMatrix is the numeric core of X11: one seed, one (success %,
// mean ms, p99 ms) triple per (attachment, churn-variant) row.
func dhtQualityMatrix(seed int64, peers, lookups int) Matrix {
	profiles, variants := dhtGrid()
	var rows []string
	for _, prof := range profiles {
		for _, v := range variants {
			rows = append(rows, prof.name+" / "+v.label)
		}
	}
	mx := NewMatrix(rows, []string{"Lookup Success", "Mean Latency", "P99 Latency"})
	r := 0
	for _, prof := range profiles {
		for _, v := range variants {
			s, m, p := dhtQualityRun(seed, peers, lookups, prof.p, v.churn, v.republish)
			mx.Vals[r][0] = s * 100
			mx.Vals[r][1] = m * 1000
			mx.Vals[r][2] = p * 1000
			r++
		}
	}
	return mx
}

// DHTQualityMulti is X11 aggregated over a batch of seeds (one run per
// seed) on `workers` parallel trial runners (0 = GOMAXPROCS).
func DHTQualityMulti(seeds []int64, workers, peers, lookups int) *Table {
	agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
		return dhtQualityMatrix(seed, peers, lookups)
	})
	return agg.Table(
		fmt.Sprintf("X11: DHT lookups on device-grade vs datacenter infrastructure (%d peers, %d lookups)", peers, lookups),
		"Attachment / Churn", "%.0f%%", "%.0fms", "%.0fms")
}

func dhtQualityRun(seed int64, peerCount, lookups int, profile simnet.LinkProfile, churn, republish bool) (success, meanSec, p99Sec float64) {
	nw := simnet.New(seed)
	nw.SetDefaultProfile(profile)
	// K=4 keeps the replica set realistic relative to the 40-node network
	// (k=20 would put every value on half the network and hide churn).
	cfg := dht.Config{K: 4, RequestTimeout: 3 * time.Second, RepublishInterval: 5 * time.Minute}
	if !republish {
		cfg.RepublishInterval = 0
	}
	peers := make([]*dht.Peer, peerCount)
	for i := range peers {
		peers[i] = dht.NewPeer(nw.AddNode(), dht.Key{}, cfg)
	}
	for i := 1; i < peerCount; i++ {
		i := i
		nw.After(time.Duration(i)*200*time.Millisecond, func() {
			peers[i].Bootstrap(peers[0].Contact(), nil)
		})
	}
	nw.Run(time.Duration(peerCount) * 400 * time.Millisecond)

	// Publish values from a stable publisher (peer 0 stays up so republish
	// keeps working; the question is whether *readers* can find data).
	keys := make([]dht.Key, lookups)
	for i := range keys {
		keys[i] = keyOf(fmt.Sprintf("value-%d", i))
		peers[0].Put(keys[i], []byte{byte(i)}, nil)
	}
	nw.Run(nw.Now() + 2*time.Minute)

	if churn {
		// Device-grade reality (§5.2): temporary outages plus permanent
		// attrition — half the peers leave for good over the next hour.
		rng := nw.Rand()
		perm := rng.Perm(peerCount - 1)
		for k := 0; k < (peerCount-1)/2; k++ {
			victim := peers[1+perm[k]]
			nw.After(time.Duration(rng.Int63n(int64(time.Hour))), func() { victim.Node().Crash() })
		}
		for k := (peerCount - 1) / 2; k < peerCount-1; k++ {
			simnet.Churn{MTTF: 20 * time.Minute, MTTR: 10 * time.Minute}.Apply(peers[1+perm[k]].Node())
		}
		nw.Run(nw.Now() + 90*time.Minute) // let attrition and churn play out
	}

	var lat metrics.Sample
	ok := 0
	rng := nw.Rand()
	for i := 0; i < lookups; i++ {
		// A random live reader looks up a random key; readers are
		// interactive users, so pick one that is currently up.
		reader := peers[1+rng.Intn(peerCount-1)]
		for tries := 0; !reader.Node().Up() && tries < peerCount; tries++ {
			reader = peers[1+rng.Intn(peerCount-1)]
		}
		if !reader.Node().Up() {
			continue
		}
		t0 := nw.Now()
		found := false
		var doneAt time.Duration
		reader.Get(keys[rng.Intn(len(keys))], func(v []byte, f bool) {
			found = f
			doneAt = nw.Now()
		})
		nw.Run(nw.Now() + time.Minute)
		if found {
			ok++
			lat.Observe(float64(doneAt-t0) / float64(time.Second))
		}
	}
	return float64(ok) / float64(lookups), lat.Mean(), lat.Quantile(0.99)
}

func keyOf(s string) dht.Key {
	return cryptoutil.SumHash([]byte(s))
}
