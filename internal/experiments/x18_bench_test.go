package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// x18Bench runs X18 as a multi-trial bench entry at the tiny world sizes
// (worker invariance is about merge ordering, not population size) and
// returns the snapshot JSON.
func x18Bench(t *testing.T, workers int) []byte {
	t.Helper()
	e := Experiment{
		ID:  "x18",
		Run: func(seed int64) fmt.Stringer { return WorkloadContentionTiny(seed) },
		Multi: func(seeds []int64, workers int) fmt.Stringer {
			agg := AggregateSeeds(seeds, workers, func(seed int64) Matrix {
				return workloadMatrix(seed, "flash", true)
			})
			return agg.Table("X18 (tiny multi)", "Architecture", "%.1f")
		},
		Tiny: func(seed int64) fmt.Stringer { return WorkloadContentionTiny(seed) },
	}
	entry := runBenchEntry(e, BenchOptions{Seed: 1818, Trials: 3, Workers: workers, Scale: "full"}.withDefaults())
	var buf bytes.Buffer
	if err := entry.Metrics.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestX18BenchGolden pins the fixed-seed X18 observability snapshot —
// including the workload.* request accounting — byte for byte: identical
// across repeated runs, across trial worker counts, and against the
// checked-in golden file. The generated schedule itself is covered
// transitively: any drift in the workload engine's draws changes request
// counts and timings, which changes the snapshot. Regenerate with
// `go test ./internal/experiments -run X18BenchGolden -update` after an
// intentional behaviour change.
func TestX18BenchGolden(t *testing.T) {
	serial := x18Bench(t, 1)
	parallel := x18Bench(t, 4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("X18 snapshot differs between 1 and 4 trial workers")
	}

	golden := filepath.Join("testdata", "x18_bench_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Fatalf("X18 snapshot drifted from %s; if intentional, rerun with -update\ngot:\n%s", golden, serial)
	}
}

// TestX18P2PBeatsFeudalUnderFlashCrowd pins the experiment's headline
// claim (the acceptance gate): under the flash-crowd workload the feudal
// single-home-server arm blows its latency-budget SLA — the over-capacity
// spike queues its uplink for minutes — while the p2p arm, on an
// identical home link, keeps availability high because every visitor
// becomes a seeder. Under the steady zipf workload the same feudal server
// is fine, so it is demonstrably the flash that kills it, not the load
// level. Measured at seed 42 tiny scale: feudal 27.7% vs p2p 97.4%
// under flash; both ≥ 98% under zipf; p2p author share 10.5%.
func TestX18P2PBeatsFeudalUnderFlashCrowd(t *testing.T) {
	const (
		rFeudal = 0
		rP2P    = 2
		cAvail  = 0
		cOrigin = 2
	)
	flash := workloadMatrix(42, "flash", true)
	if got := flash.Vals[rFeudal][cAvail]; got >= 60 {
		t.Errorf("feudal availability %.1f%% under flash crowd, want SLA collapse (< 60%%)", got)
	}
	if got := flash.Vals[rP2P][cAvail]; got < 90 {
		t.Errorf("p2p availability %.1f%% under flash crowd, want ≥ 90%%", got)
	}
	if d := flash.Vals[rP2P][cAvail] - flash.Vals[rFeudal][cAvail]; d < 30 {
		t.Errorf("p2p beats feudal by only %.1f points under flash, want ≥ 30", d)
	}
	if got := flash.Vals[rP2P][cOrigin]; got >= 30 {
		t.Errorf("p2p author carries %.1f%% of served bytes, want the swarm to carry it (< 30%%)", got)
	}
	if got := flash.Vals[rFeudal][cOrigin]; got != 100 {
		t.Errorf("feudal origin share %.1f%%, must be 100%% by construction", got)
	}

	// Control: steady zipf at the same time-averaged rate — the feudal
	// box handles it, so the collapse above is the spike, not the volume.
	zipf := workloadMatrix(42, "zipf", true)
	for r, name := range zipf.Rows {
		if got := zipf.Vals[r][cAvail]; got < 90 {
			t.Errorf("%s availability %.1f%% under steady zipf, want ≥ 90%%", name, got)
		}
	}
}
