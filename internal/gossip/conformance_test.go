package gossip

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/simnet/fault"
)

// gossipConformanceRun floods items from an anchor member while a fault
// scenario runs, and returns the fraction of (member, item) pairs delivered
// by the end of the horizon. Anti-entropy is the repair mechanism under
// test: crashed or partitioned members must catch up once faults clear.
func gossipConformanceRun(t testing.TB, seed int64, sc fault.Scenario) float64 {
	t.Helper()
	const (
		nMembers = 12
		nItems   = 10
		horizon  = 30 * time.Minute
	)
	nw, members := buildGroup(t, seed, nMembers, Config{
		Fanout:              3,
		AntiEntropyInterval: 30 * time.Second,
	})

	// Member 0 is the anchor publisher, excluded from node-targeted faults
	// so the source of truth survives; everyone else is fair game.
	eligible := make([]simnet.NodeID, 0, nMembers-1)
	for _, m := range members[1:] {
		eligible = append(eligible, m.Node().ID())
	}
	sc.Build(seed, eligible, horizon).Apply(nw)

	// Publish throughout the fault window, so items land while members are
	// down, partitioned, and mangled.
	items := make([]Item, nItems)
	for i := range items {
		items[i] = item(fmt.Sprintf("conformance-item-%d", i))
		it := items[i]
		nw.Schedule(time.Duration(i)*horizon/(2*nItems), func() { members[0].Publish(it) })
	}
	nw.Run(horizon)

	have, total := 0, 0
	for _, m := range members {
		for _, it := range items {
			total++
			if m.Has(it.ID) {
				have++
			}
		}
	}
	return float64(have) / float64(total)
}

// TestGossipRecoveryConformance: every item published during the fault
// window must reach every member by the end of the run — anti-entropy must
// fully repair the set under each scenario.
func TestGossipRecoveryConformance(t *testing.T) {
	for _, sc := range fault.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if got := gossipConformanceRun(t, 403, sc); got < 1.0 {
				t.Errorf("delivery ratio %.3f after recovery window, want 1.0", got)
			}
		})
	}
}

// TestGossipConformanceDeterministic: the delivery ratio is a pure function
// of the seed.
func TestGossipConformanceDeterministic(t *testing.T) {
	sc, _ := fault.ByName("corrupt-10pct")
	if a, b := gossipConformanceRun(t, 88, sc), gossipConformanceRun(t, 88, sc); a != b {
		t.Errorf("same seed gave different ratios: %v vs %v", a, b)
	}
}
