package gossip

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

func item(s string) Item {
	return Item{ID: cryptoutil.SumHash([]byte(s)), Data: s, Size: len(s)}
}

// buildGroup creates n fully meshed gossip members.
func buildGroup(t testing.TB, seed int64, n int, cfg Config) (*simnet.Network, []*Member) {
	t.Helper()
	nw := simnet.New(seed)
	members := make([]*Member, n)
	ids := make([]simnet.NodeID, n)
	for i := range members {
		node := nw.AddNode()
		ids[i] = node.ID()
		members[i] = NewMember(node, cfg)
	}
	for i, m := range members {
		peers := make([]simnet.NodeID, 0, n-1)
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
	}
	return nw, members
}

func TestFloodReachesEveryone(t *testing.T) {
	// Push-only flood with fanout 4 is stochastic (per-node miss chance is
	// roughly e^-4); the seed is chosen so this population fully converges.
	nw, members := buildGroup(t, 2, 30, Config{Fanout: 4})
	it := item("hello world")
	members[0].Publish(it)
	nw.Run(time.Minute)
	for i, m := range members {
		if !m.Has(it.ID) {
			t.Errorf("member %d missed the item", i)
		}
	}
}

func TestDeliverFiresOncePerItem(t *testing.T) {
	nw, members := buildGroup(t, 2, 10, Config{Fanout: 5})
	count := 0
	members[3].OnDeliver(func(it Item) { count++ })
	it := item("once")
	members[0].Publish(it)
	members[1].Publish(it) // same item from two origins
	nw.Run(time.Minute)
	if count != 1 {
		t.Errorf("delivered %d times, want 1", count)
	}
	if members[3].Len() != 1 {
		t.Errorf("len = %d", members[3].Len())
	}
}

func TestPublisherReceivesOwnDelivery(t *testing.T) {
	nw, members := buildGroup(t, 3, 3, Config{})
	got := false
	members[0].OnDeliver(func(it Item) { got = true })
	members[0].Publish(item("self"))
	nw.Run(time.Second)
	if !got {
		t.Error("publisher did not observe its own item")
	}
}

func TestAntiEntropyRepairsCrashedNode(t *testing.T) {
	nw, members := buildGroup(t, 4, 10, Config{Fanout: 2, AntiEntropyInterval: 10 * time.Second})
	late := members[9]
	late.Node().Crash()
	for i := 0; i < 5; i++ {
		members[0].Publish(item(fmt.Sprintf("while-down-%d", i)))
	}
	nw.Run(time.Minute)
	if late.Len() != 0 {
		t.Fatal("crashed node received items")
	}
	late.Node().Restart()
	nw.Run(10 * time.Minute) // several anti-entropy rounds
	if late.Len() != 5 {
		t.Errorf("restarted node has %d/5 items after anti-entropy", late.Len())
	}
}

func TestPushOnlyDoesNotRepair(t *testing.T) {
	nw, members := buildGroup(t, 5, 10, Config{Fanout: 2}) // no anti-entropy
	late := members[9]
	late.Node().Crash()
	members[0].Publish(item("missed"))
	nw.Run(time.Minute)
	late.Node().Restart()
	nw.Run(10 * time.Minute)
	if late.Len() != 0 {
		t.Error("push-only gossip should not repair after restart")
	}
}

func TestAntiEntropyBidirectional(t *testing.T) {
	// Two members each hold a unique item; one sync round should leave both
	// with both items.
	nw, members := buildGroup(t, 6, 2, Config{Fanout: 0, AntiEntropyInterval: 5 * time.Second})
	// Fanout 0 defaults to 3; publish while the peer is partitioned away so
	// pushes fail, then heal.
	a, b := members[0], members[1]
	nw.Partition([]simnet.NodeID{a.Node().ID()}, []simnet.NodeID{b.Node().ID()})
	a.Publish(item("from-a"))
	b.Publish(item("from-b"))
	nw.Run(time.Second)
	nw.Heal()
	nw.Run(5 * time.Minute)
	if a.Len() != 2 || b.Len() != 2 {
		t.Errorf("after sync: a=%d b=%d items, want 2/2", a.Len(), b.Len())
	}
}

func TestLossyNetworkStillConverges(t *testing.T) {
	nw := simnet.New(7)
	nw.SetDefaultProfile(simnet.LinkProfile{Latency: 5 * time.Millisecond, Loss: 0.15})
	members := make([]*Member, 20)
	ids := make([]simnet.NodeID, 20)
	for i := range members {
		node := nw.AddNode()
		ids[i] = node.ID()
		members[i] = NewMember(node, Config{Fanout: 3, AntiEntropyInterval: 20 * time.Second})
	}
	for i, m := range members {
		var peers []simnet.NodeID
		for j, id := range ids {
			if j != i {
				peers = append(peers, id)
			}
		}
		m.SetPeers(peers)
	}
	for i := 0; i < 10; i++ {
		members[i].Publish(item(fmt.Sprintf("msg-%d", i)))
	}
	nw.Run(15 * time.Minute)
	for i, m := range members {
		if m.Len() != 10 {
			t.Errorf("member %d has %d/10 items despite anti-entropy", i, m.Len())
		}
	}
}

func TestIDsPreserveDeliveryOrder(t *testing.T) {
	nw, members := buildGroup(t, 8, 2, Config{})
	a := members[0]
	i1, i2 := item("first"), item("second")
	a.Publish(i1)
	a.Publish(i2)
	nw.Run(time.Second)
	ids := a.IDs()
	if len(ids) != 2 || ids[0] != i1.ID || ids[1] != i2.ID {
		t.Error("IDs not in delivery order")
	}
	got, ok := a.Get(i1.ID)
	if !ok || got.Data != "first" {
		t.Error("Get failed")
	}
}

func TestNoPeersPublishIsLocal(t *testing.T) {
	nw := simnet.New(9)
	m := NewMember(nw.AddNode(), Config{})
	m.Publish(item("solo"))
	nw.Run(time.Second)
	if m.Len() != 1 {
		t.Error("local publish failed with no peers")
	}
	if nw.Trace().Sent != 0 {
		t.Error("peerless member sent traffic")
	}
}

func BenchmarkFlood50(b *testing.B) {
	nw, members := buildGroup(b, 10, 50, Config{Fanout: 3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		members[i%50].Publish(item(fmt.Sprintf("bench-%d", i)))
		nw.Run(nw.Now() + time.Minute)
	}
}
