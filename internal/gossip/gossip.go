// Package gossip implements epidemic broadcast with anti-entropy repair
// over internal/simnet. New items flood to a random fanout of peers with
// duplicate suppression; a periodic push-pull digest exchange repairs holes
// left by message loss and downtime.
//
// The federated group-communication model (§3.2: Matrix "provides high
// availability by replicating data over the entire network") and the
// hostless-web seeding layer (§3.4) are built on this package.
package gossip

import (
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Item is one gossiped datum. ID must be unique (typically a content
// hash); Size is the simulated wire size of Data.
type Item struct {
	ID   cryptoutil.Hash
	Data any
	Size int
}

// Config tunes a gossip member. Zero values select: fanout 3, anti-entropy
// every 30 s.
type Config struct {
	// Fanout is how many random peers each new item is pushed to.
	Fanout int
	// AntiEntropyInterval is the period of digest exchanges with a random
	// peer. Zero disables anti-entropy (push-only gossip).
	AntiEntropyInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Fanout == 0 {
		c.Fanout = 3
	}
	return c
}

// Wire kinds.
const (
	msgPush  = "gossip.push"  // payload Item
	msgSync  = "gossip.sync"  // payload syncDigest
	msgDelta = "gossip.delta" // payload syncDelta
)

type syncDigest struct {
	from simnet.NodeID
	ids  []cryptoutil.Hash
}

type syncDelta struct {
	items []Item            // items the receiver was missing
	want  []cryptoutil.Hash // items the sender is missing and requests back
}

// Member is one gossip participant.
type Member struct {
	node  *simnet.Node
	cfg   Config
	peers []simnet.NodeID
	items map[cryptoutil.Hash]Item
	order []cryptoutil.Hash // delivery order, for digesting and inspection
	// onDeliver observers fire once per item on first receipt.
	onDeliver []func(Item)

	// Observability: network-wide gossip metrics (push fan-out volume,
	// first-time deliveries, anti-entropy rounds, holes repaired by digest
	// exchange), resolved once at construction.
	obsPushes    *obs.Counter
	obsDelivered *obs.Counter
	obsRounds    *obs.Counter
	obsRepaired  *obs.Counter
}

// NewMember attaches a gossip member to a node. Anti-entropy (if enabled)
// starts immediately and pauses automatically while the node is down.
func NewMember(node *simnet.Node, cfg Config) *Member {
	m := &Member{
		node:         node,
		cfg:          cfg.withDefaults(),
		items:        map[cryptoutil.Hash]Item{},
		obsPushes:    node.Obs().Counter("gossip.push.sent"),
		obsDelivered: node.Obs().Counter("gossip.item.delivered"),
		obsRounds:    node.Obs().Counter("gossip.antientropy.rounds"),
		obsRepaired:  node.Obs().Counter("gossip.repair.items"),
	}
	node.Handle(msgPush, m.onPush)
	node.Handle(msgSync, m.onSync)
	node.Handle(msgDelta, m.onDelta)
	if m.cfg.AntiEntropyInterval > 0 {
		m.scheduleAntiEntropy()
	}
	return m
}

// Node returns the underlying simnet node.
func (m *Member) Node() *simnet.Node { return m.node }

// SetPeers replaces the peer set used for pushes and anti-entropy.
func (m *Member) SetPeers(peers []simnet.NodeID) { m.peers = peers }

// Peers returns the current peer set.
func (m *Member) Peers() []simnet.NodeID { return m.peers }

// OnDeliver registers an observer called exactly once per item, at first
// receipt (including items this member publishes itself).
func (m *Member) OnDeliver(f func(Item)) { m.onDeliver = append(m.onDeliver, f) }

// Has reports whether the member holds the item.
func (m *Member) Has(id cryptoutil.Hash) bool { _, ok := m.items[id]; return ok }

// Get returns a held item.
func (m *Member) Get(id cryptoutil.Hash) (Item, bool) { it, ok := m.items[id]; return it, ok }

// Len returns how many items the member holds.
func (m *Member) Len() int { return len(m.items) }

// IDs returns all held item IDs in delivery order.
func (m *Member) IDs() []cryptoutil.Hash {
	out := make([]cryptoutil.Hash, len(m.order))
	copy(out, m.order)
	return out
}

// Publish introduces a new item at this member and pushes it to the
// network.
func (m *Member) Publish(it Item) {
	if m.accept(it) {
		m.push(it, -1)
	}
}

// accept stores a new item and fires delivery observers; returns false for
// duplicates.
func (m *Member) accept(it Item) bool {
	if _, ok := m.items[it.ID]; ok {
		return false
	}
	m.items[it.ID] = it
	m.order = append(m.order, it.ID)
	m.obsDelivered.Inc()
	for _, f := range m.onDeliver {
		f(it)
	}
	return true
}

// push forwards an item to up to Fanout random peers, skipping exclude.
func (m *Member) push(it Item, exclude simnet.NodeID) {
	if len(m.peers) == 0 {
		return
	}
	rng := m.node.Rand()
	perm := rng.Perm(len(m.peers))
	sent := 0
	for _, pi := range perm {
		if sent >= m.cfg.Fanout {
			break
		}
		p := m.peers[pi]
		if p == exclude || p == m.node.ID() {
			continue
		}
		m.node.Send(p, msgPush, it, it.Size+40)
		m.obsPushes.Inc()
		sent++
	}
}

func (m *Member) onPush(msg simnet.Message) {
	it, ok := msg.Payload.(Item)
	if !ok {
		return
	}
	if m.accept(it) {
		m.push(it, msg.From) // continue the epidemic
	}
}

func (m *Member) scheduleAntiEntropy() {
	// Jitter the period ±25 % so members don't synchronize. The timer runs
	// on the node's local clock, so skewed members drift apart under fault
	// plans.
	period := m.cfg.AntiEntropyInterval
	jit := time.Duration(m.node.Rand().Int63n(int64(period)/2)) - period/4
	m.node.After(period+jit, func() {
		if m.node.Up() && len(m.peers) > 0 {
			peer := m.peers[m.node.Rand().Intn(len(m.peers))]
			if peer != m.node.ID() {
				m.obsRounds.Inc()
				digest := syncDigest{from: m.node.ID(), ids: m.IDs()}
				m.node.Send(peer, msgSync, digest, 16+32*len(digest.ids))
			}
		}
		m.scheduleAntiEntropy()
	})
}

func (m *Member) onSync(msg simnet.Message) {
	d, ok := msg.Payload.(syncDigest)
	if !ok {
		return
	}
	theirs := make(map[cryptoutil.Hash]bool, len(d.ids))
	for _, id := range d.ids {
		theirs[id] = true
	}
	var delta syncDelta
	size := 16
	for _, id := range m.order { // delivery order: deterministic
		if it, ok := m.items[id]; ok && !theirs[id] {
			delta.items = append(delta.items, it)
			size += it.Size + 40
		}
	}
	for _, id := range d.ids {
		if !m.Has(id) {
			delta.want = append(delta.want, id)
			size += 32
		}
	}
	if len(delta.items) == 0 && len(delta.want) == 0 {
		return // in sync
	}
	m.node.Send(d.from, msgDelta, delta, size)
}

func (m *Member) onDelta(msg simnet.Message) {
	d, ok := msg.Payload.(syncDelta)
	if !ok {
		return
	}
	for _, it := range d.items {
		if m.accept(it) {
			m.obsRepaired.Inc()
		}
	}
	if len(d.want) > 0 {
		var back syncDelta
		size := 16
		for _, id := range d.want {
			if it, ok := m.items[id]; ok {
				back.items = append(back.items, it)
				size += it.Size + 40
			}
		}
		if len(back.items) > 0 {
			m.node.Send(msg.From, msgDelta, back, size)
		}
	}
}
