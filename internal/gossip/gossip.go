// Package gossip implements epidemic broadcast with anti-entropy repair
// over internal/simnet. New items flood to a random fanout of peers with
// duplicate suppression; a periodic push-pull digest exchange repairs holes
// left by message loss and downtime.
//
// The federated group-communication model (§3.2: Matrix "provides high
// availability by replicating data over the entire network") and the
// hostless-web seeding layer (§3.4) are built on this package.
package gossip

import (
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// Item is one gossiped datum. ID must be unique (typically a content
// hash); Size is the simulated wire size of Data.
type Item struct {
	ID   cryptoutil.Hash
	Data any
	Size int
}

// Config tunes a gossip member. Zero values select: fanout 3, anti-entropy
// every 30 s.
type Config struct {
	// Fanout is how many random peers each new item is pushed to.
	Fanout int
	// AntiEntropyInterval is the period of digest exchanges with a random
	// peer. Zero disables anti-entropy (push-only gossip).
	AntiEntropyInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Fanout == 0 {
		c.Fanout = 3
	}
	return c
}

// Wire kinds.
const (
	msgPush  = "gossip.push"  // payload Item
	msgSync  = "gossip.sync"  // payload syncDigest
	msgDelta = "gossip.delta" // payload syncDelta
)

type syncDigest struct {
	from simnet.NodeID
	ids  []cryptoutil.Hash
}

type syncDelta struct {
	items []Item            // items the receiver was missing
	want  []cryptoutil.Hash // items the sender is missing and requests back
}

// Member is one gossip participant.
type Member struct {
	node  *simnet.Node
	cfg   Config
	peers []simnet.NodeID
	// sample is a persistent index permutation over peers; push() runs a
	// partial Fisher-Yates over it to draw Fanout distinct peers without
	// allocating or shuffling the whole set (rng.Perm is O(peers) work and
	// one allocation per push — ruinous at 10k-member populations).
	sample []int32
	items  map[cryptoutil.Hash]Item
	order  []cryptoutil.Hash // delivery order, for digesting and inspection
	// onDeliver observers fire once per item on first receipt.
	onDeliver []func(Item)

	// Observability: network-wide gossip metrics (push fan-out volume,
	// first-time deliveries, anti-entropy rounds, holes repaired by digest
	// exchange). The bundle is Memo-cached on the registry, so it resolves
	// once per network rather than once per member.
	m *gossipMetrics
}

// gossipMetrics is the package's network-scoped counter bundle.
type gossipMetrics struct {
	pushes    *obs.Counter
	delivered *obs.Counter
	rounds    *obs.Counter
	repaired  *obs.Counter
}

func metricsFor(r *obs.Registry) *gossipMetrics {
	return r.Memo("gossip", func() any {
		return &gossipMetrics{
			pushes:    r.Counter("gossip.push.sent"),
			delivered: r.Counter("gossip.item.delivered"),
			rounds:    r.Counter("gossip.antientropy.rounds"),
			repaired:  r.Counter("gossip.repair.items"),
		}
	}).(*gossipMetrics)
}

// NewMember attaches a gossip member to a node. Anti-entropy (if enabled)
// starts immediately and pauses automatically while the node is down.
func NewMember(node *simnet.Node, cfg Config) *Member {
	m := &Member{
		node:  node,
		cfg:   cfg.withDefaults(),
		items: map[cryptoutil.Hash]Item{},
		m:     metricsFor(node.Obs()),
	}
	node.Handle(msgPush, m.onPush)
	node.Handle(msgSync, m.onSync)
	node.Handle(msgDelta, m.onDelta)
	if m.cfg.AntiEntropyInterval > 0 {
		m.scheduleAntiEntropy()
	}
	return m
}

// Node returns the underlying simnet node.
func (m *Member) Node() *simnet.Node { return m.node }

// SetPeers replaces the peer set used for pushes and anti-entropy.
func (m *Member) SetPeers(peers []simnet.NodeID) {
	m.peers = peers
	if cap(m.sample) < len(peers) {
		m.sample = make([]int32, len(peers))
	}
	m.sample = m.sample[:len(peers)]
	for i := range m.sample {
		m.sample[i] = int32(i)
	}
}

// Peers returns the current peer set.
func (m *Member) Peers() []simnet.NodeID { return m.peers }

// OnDeliver registers an observer called exactly once per item, at first
// receipt (including items this member publishes itself).
func (m *Member) OnDeliver(f func(Item)) { m.onDeliver = append(m.onDeliver, f) }

// Has reports whether the member holds the item.
func (m *Member) Has(id cryptoutil.Hash) bool { _, ok := m.items[id]; return ok }

// Get returns a held item.
func (m *Member) Get(id cryptoutil.Hash) (Item, bool) { it, ok := m.items[id]; return it, ok }

// Len returns how many items the member holds.
func (m *Member) Len() int { return len(m.items) }

// IDs returns all held item IDs in delivery order.
func (m *Member) IDs() []cryptoutil.Hash {
	out := make([]cryptoutil.Hash, len(m.order))
	copy(out, m.order)
	return out
}

// Publish introduces a new item at this member and pushes it to the
// network.
func (m *Member) Publish(it Item) {
	if m.accept(it) {
		m.push(it, -1)
	}
}

// accept stores a new item and fires delivery observers; returns false for
// duplicates.
func (m *Member) accept(it Item) bool {
	if _, ok := m.items[it.ID]; ok {
		return false
	}
	m.items[it.ID] = it
	m.order = append(m.order, it.ID)
	m.m.delivered.Inc()
	for _, f := range m.onDeliver {
		f(it)
	}
	return true
}

// push forwards an item to up to Fanout random peers, skipping exclude. It
// draws peers one at a time with a partial Fisher-Yates over the persistent
// sample permutation: Fanout draws cost O(Fanout) swaps regardless of how
// large the peer set is, and selection stays uniform because the buffer is
// always some permutation of the peer indices.
func (m *Member) push(it Item, exclude simnet.NodeID) {
	n := len(m.peers)
	if n == 0 {
		return
	}
	rng := m.node.Rand()
	sent := 0
	for i := 0; i < n && sent < m.cfg.Fanout; i++ {
		j := i + rng.Intn(n-i)
		m.sample[i], m.sample[j] = m.sample[j], m.sample[i]
		p := m.peers[m.sample[i]]
		if p == exclude || p == m.node.ID() {
			continue
		}
		m.node.Send(p, msgPush, it, it.Size+40)
		m.m.pushes.Inc()
		sent++
	}
}

func (m *Member) onPush(msg simnet.Message) {
	it, ok := msg.Payload.(Item)
	if !ok {
		return
	}
	if m.accept(it) {
		m.push(it, msg.From) // continue the epidemic
	}
}

func (m *Member) scheduleAntiEntropy() {
	// Jitter the period ±25 % so members don't synchronize. The timer runs
	// on the node's local clock, so skewed members drift apart under fault
	// plans. Scheduling goes through the closure-free AfterCall path with
	// the member itself as the argument: at 10k members this periodic
	// rescheduling would otherwise allocate a capture per round per node.
	period := m.cfg.AntiEntropyInterval
	jit := time.Duration(m.node.Rand().Int63n(int64(period)/2)) - period/4
	m.node.AfterCall(period+jit, antiEntropyEvent, m)
}

// antiEntropyEvent is the EventFunc behind every anti-entropy round; arg is
// the *Member.
func antiEntropyEvent(arg any) {
	m := arg.(*Member)
	if m.node.Up() && len(m.peers) > 0 {
		peer := m.peers[m.node.Rand().Intn(len(m.peers))]
		if peer != m.node.ID() {
			m.m.rounds.Inc()
			digest := syncDigest{from: m.node.ID(), ids: m.IDs()}
			m.node.Send(peer, msgSync, digest, 16+32*len(digest.ids))
		}
	}
	m.scheduleAntiEntropy()
}

func (m *Member) onSync(msg simnet.Message) {
	d, ok := msg.Payload.(syncDigest)
	if !ok {
		return
	}
	theirs := make(map[cryptoutil.Hash]bool, len(d.ids))
	for _, id := range d.ids {
		theirs[id] = true
	}
	var delta syncDelta
	size := 16
	for _, id := range m.order { // delivery order: deterministic
		if it, ok := m.items[id]; ok && !theirs[id] {
			delta.items = append(delta.items, it)
			size += it.Size + 40
		}
	}
	for _, id := range d.ids {
		if !m.Has(id) {
			delta.want = append(delta.want, id)
			size += 32
		}
	}
	if len(delta.items) == 0 && len(delta.want) == 0 {
		return // in sync
	}
	m.node.Send(d.from, msgDelta, delta, size)
}

func (m *Member) onDelta(msg simnet.Message) {
	d, ok := msg.Payload.(syncDelta)
	if !ok {
		return
	}
	for _, it := range d.items {
		if m.accept(it) {
			m.m.repaired.Inc()
		}
	}
	if len(d.want) > 0 {
		var back syncDelta
		size := 16
		for _, id := range d.want {
			if it, ok := m.items[id]; ok {
				back.items = append(back.items, it)
				size += it.Size + 40
			}
		}
		if len(back.items) > 0 {
			m.node.Send(msg.From, msgDelta, back, size)
		}
	}
}
