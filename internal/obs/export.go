package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// HistStat is the exported summary of a Histogram: exact quantiles over
// the retained samples. All fields are computed from the sorted sample
// list, so they are independent of observation order.
type HistStat struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time, export-ready copy of a registry (or of a
// deterministic merge of several). encoding/json emits map keys in sorted
// order, so marshalling a Snapshot is byte-deterministic.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
	Events     []Event             `json:"events,omitempty"`
	// EventsDropped counts spans lost to the tracing cap.
	EventsDropped int64 `json:"events_dropped,omitempty"`
}

func histStat(h *Histogram) HistStat {
	if h.Count() == 0 {
		return HistStat{}
	}
	return HistStat{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   h.Quantile(0),
		Max:   h.Quantile(1),
		P50:   h.Quantile(0.5),
		P90:   h.Quantile(0.9),
		P99:   h.Quantile(0.99),
	}
}

// Snapshot runs the publish hooks and exports every metric. The registry
// remains usable (and accumulating) afterwards.
func (r *Registry) Snapshot() *Snapshot {
	r.runPublish()
	s := &Snapshot{
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]float64, len(r.gauges)),
		Histograms:    make(map[string]HistStat, len(r.hists)),
		EventsDropped: r.eventsDropped,
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		if g.IsSet() {
			s.Gauges[name] = g.Value()
		}
	}
	for name, h := range r.hists {
		s.Histograms[name] = histStat(h)
	}
	if len(r.events) > 0 {
		s.Events = append([]Event(nil), r.events...)
	}
	return s
}

// MergeRegistries folds several registries into one Snapshot with
// commutative, order-independent semantics:
//
//   - counters sum;
//   - histogram samples pool (quantiles are computed over the union);
//   - gauges average across the registries that set them;
//   - span events are dropped (they only make sense within one timeline).
//
// Registries are first stable-sorted by label, so float accumulation
// order — and therefore the exported bytes — do not depend on which trial
// worker attached first.
func MergeRegistries(regs []*Registry) *Snapshot {
	ordered := append([]*Registry(nil), regs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].label < ordered[j].label })

	counters := map[string]int64{}
	gaugeSum := map[string]float64{}
	gaugeN := map[string]int{}
	pooled := map[string]*Histogram{}
	for _, r := range ordered {
		r.runPublish()
		for name, c := range r.counters {
			counters[name] += c.Value()
		}
		for name, g := range r.gauges {
			if g.IsSet() {
				gaugeSum[name] += g.Value()
				gaugeN[name]++
			}
		}
		for name, h := range r.hists {
			dst, ok := pooled[name]
			if !ok {
				dst = &Histogram{}
				pooled[name] = dst
			}
			dst.xs = append(dst.xs, h.xs...)
			dst.sorted = false
		}
	}
	s := &Snapshot{
		Counters:   counters,
		Gauges:     make(map[string]float64, len(gaugeSum)),
		Histograms: make(map[string]HistStat, len(pooled)),
	}
	for name, sum := range gaugeSum {
		s.Gauges[name] = sum / float64(gaugeN[name])
	}
	for name, h := range pooled {
		s.Histograms[name] = histStat(h)
	}
	return s
}

// MarshalJSON is not customized; the declaration below documents the
// determinism contract instead. encoding/json sorts map keys and formats
// floats with the shortest round-trip representation, so identical values
// always produce identical bytes.

// EncodeJSON writes the snapshot as indented JSON with a trailing newline.
func (s *Snapshot) EncodeJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV emits the snapshot as `type,name,field,value` rows sorted by
// (type, name, field) — a flat form spreadsheet tooling ingests directly.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	var rows []string
	for name, v := range s.Counters {
		rows = append(rows, fmt.Sprintf("counter,%s,value,%d", name, v))
	}
	for name, v := range s.Gauges {
		rows = append(rows, "gauge,"+name+",value,"+formatFloat(v))
	}
	for name, h := range s.Histograms {
		rows = append(rows,
			fmt.Sprintf("histogram,%s,count,%d", name, h.Count),
			"histogram,"+name+",sum,"+formatFloat(h.Sum),
			"histogram,"+name+",mean,"+formatFloat(h.Mean),
			"histogram,"+name+",min,"+formatFloat(h.Min),
			"histogram,"+name+",max,"+formatFloat(h.Max),
			"histogram,"+name+",p50,"+formatFloat(h.P50),
			"histogram,"+name+",p90,"+formatFloat(h.P90),
			"histogram,"+name+",p99,"+formatFloat(h.P99),
		)
	}
	sort.Strings(rows)
	if _, err := io.WriteString(w, "type,name,field,value\n"); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := io.WriteString(w, row+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
