package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchWith(counter string, v int64) *BenchFile {
	return &BenchFile{
		Schema: BenchSchema,
		Experiments: []BenchExperiment{
			{ID: "x", Metrics: &Snapshot{Counters: map[string]int64{counter: v}}},
		},
	}
}

func TestWithinTolEdges(t *testing.T) {
	cases := []struct {
		name          string
		old, new, tol float64
		want          bool
	}{
		{"exact equal, zero tol", 100, 100, 0, true},
		{"any drift, zero tol", 100, 100.0001, 0, false},
		{"just inside", 100, 110, 0.1, true}, // |10| == 0.1*100 exactly
		{"just outside", 100, 111, 0.1, false},
		{"inside below", 100, 91, 0.1, true},
		{"outside below", 100, 89, 0.1, false},
		{"old zero must stay zero", 0, 1, 10, false},
		{"old zero stays zero", 0, 0, 0, true},
		{"negative old scales by magnitude", -100, -109, 0.1, true},
	}
	for _, c := range cases {
		if got := withinTol(c.old, c.new, c.tol); got != c.want {
			t.Errorf("%s: withinTol(%v, %v, %v) = %v, want %v", c.name, c.old, c.new, c.tol, got, c.want)
		}
	}
}

func TestCompareToleranceEdges(t *testing.T) {
	old := benchWith("m", 100)
	for _, c := range []struct {
		name  string
		new   int64
		tol   float64
		wantN int
	}{
		{"exact equal at zero tol", 100, 0, 0},
		{"drift at zero tol", 101, 0, 1},
		{"just inside", 110, 0.1, 0},
		{"just outside", 111, 0.1, 1},
	} {
		probs := Compare(old, benchWith("m", c.new), Tolerances{Metric: c.tol})
		if len(probs) != c.wantN {
			t.Errorf("%s: got %d problems (%v), want %d", c.name, len(probs), probs, c.wantN)
		}
	}
}

func TestCompareMissingAndExtra(t *testing.T) {
	old := benchWith("m", 1)

	// A metric missing from the new file is a regression; the unrelated
	// "other" counter is an addition and does not count.
	probs := Compare(old, benchWith("other", 1), Tolerances{})
	if len(probs) != 1 || !strings.Contains(probs[0].Detail, "missing") {
		t.Fatalf("missing metric: got %v, want one missing-metric problem", probs)
	}

	// A whole experiment missing from the new file is a regression.
	probs = Compare(old, &BenchFile{Schema: BenchSchema}, Tolerances{})
	if len(probs) != 1 || !strings.Contains(probs[0].Detail, "missing") {
		t.Fatalf("missing experiment: got %v", probs)
	}

	// Extra experiments and metrics in the new file are additions, not
	// regressions.
	bigger := benchWith("m", 1)
	bigger.Experiments[0].Metrics.Counters["extra"] = 7
	bigger.Experiments = append(bigger.Experiments,
		BenchExperiment{ID: "y", Metrics: &Snapshot{Counters: map[string]int64{"n": 1}}})
	if probs := Compare(old, bigger, Tolerances{}); len(probs) != 0 {
		t.Fatalf("additions flagged as regressions: %v", probs)
	}
}

func TestCompareTimingGate(t *testing.T) {
	withTiming := func(wall int64) *BenchFile {
		f := benchWith("m", 1)
		f.Experiments[0].Timing = &Timing{WallNS: wall}
		return f
	}

	// Time tolerance zero: timing differences are ignored entirely.
	if probs := Compare(withTiming(100), withTiming(1000), Tolerances{}); len(probs) != 0 {
		t.Fatalf("timing gated with Time=0: %v", probs)
	}
	// Within the allowed slowdown.
	if probs := Compare(withTiming(100), withTiming(149), Tolerances{Time: 0.5}); len(probs) != 0 {
		t.Fatalf("timing inside tolerance flagged: %v", probs)
	}
	// Beyond it.
	if probs := Compare(withTiming(100), withTiming(151), Tolerances{Time: 0.5}); len(probs) != 1 {
		t.Fatalf("timing regression missed: %v", probs)
	}
	// Getting faster is never a regression.
	if probs := Compare(withTiming(100), withTiming(10), Tolerances{Time: 0.5}); len(probs) != 0 {
		t.Fatalf("speedup flagged: %v", probs)
	}
	// Timing present on only one side: informational, never gated.
	if probs := Compare(withTiming(100), benchWith("m", 1), Tolerances{Time: 0.5}); len(probs) != 0 {
		t.Fatalf("one-sided timing gated: %v", probs)
	}
}

func TestLoadBenchFileSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBenchFile(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}

	good := filepath.Join(dir, "good.json")
	f := benchWith("m", 1)
	b, err := f.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, b, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBenchFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if probs := Compare(f, loaded, Tolerances{}); len(probs) != 0 {
		t.Fatalf("round-trip drift: %v", probs)
	}
}
