package obs

import "sync"

// Collector gathers every Registry created while it is installed — one per
// simnet.Network, including the networks parallel trial workers build —
// so a harness can export one merged snapshot per experiment.
//
// Attach order is whatever the scheduler produced, but MergeRegistries
// sorts by registry label (simnet labels registries "seed:<seed>"), so the
// merged snapshot is identical at any worker count.
type Collector struct {
	mu   sync.Mutex
	regs []*Registry
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Attach adds a registry to the collector. Safe for concurrent use.
func (c *Collector) Attach(r *Registry) {
	c.mu.Lock()
	c.regs = append(c.regs, r)
	c.mu.Unlock()
}

// Len returns how many registries have attached.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.regs)
}

// Merged returns the deterministic merge of every attached registry.
func (c *Collector) Merged() *Snapshot {
	c.mu.Lock()
	regs := append([]*Registry(nil), c.regs...)
	c.mu.Unlock()
	return MergeRegistries(regs)
}

// current is the process-wide collector hook. simnet.New attaches each new
// network's registry to it when one is installed; the bench harness
// installs a fresh collector around each experiment.
var (
	currentMu sync.Mutex
	current   *Collector
)

// SetCollector installs c as the process-wide collector and returns a
// function restoring the previous one. Passing nil uninstalls.
func SetCollector(c *Collector) (restore func()) {
	currentMu.Lock()
	prev := current
	current = c
	currentMu.Unlock()
	return func() {
		currentMu.Lock()
		current = prev
		currentMu.Unlock()
	}
}

// AttachCurrent adds r to the installed collector, if any. Called by
// simnet.New for every network; a no-op outside bench runs.
func AttachCurrent(r *Registry) {
	currentMu.Lock()
	c := current
	currentMu.Unlock()
	if c != nil {
		c.Attach(r)
	}
}
