package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored
	if got := r.Counter("x.count").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	r.Gauge("x.gauge").Set(2.5)
	if got := r.Gauge("x.gauge").Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
	h := r.Histogram("x.hist")
	for _, v := range []float64{3, 1, 2, 4} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); got != 2.5 {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("min = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("max = %v, want 4", got)
	}
	if got := h.Sum(); got != 10 {
		t.Errorf("sum = %v, want 10", got)
	}
}

func TestSpanAndTracing(t *testing.T) {
	r := NewRegistry()
	r.EnableTracing(2)
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("op.duration", time.Duration(i)*time.Second)
		sp.End(time.Duration(i)*time.Second + 500*time.Millisecond)
	}
	if got := r.Histogram("op.duration").Count(); got != 3 {
		t.Errorf("span observations = %d, want 3", got)
	}
	if got := len(r.Events()); got != 2 {
		t.Errorf("retained events = %d, want 2 (cap)", got)
	}
	s := r.Snapshot()
	if s.EventsDropped != 1 {
		t.Errorf("events_dropped = %d, want 1", s.EventsDropped)
	}
	var zero Span
	zero.End(time.Second) // must not panic
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b.count").Add(7)
		r.Counter("a.count").Add(3)
		r.Gauge("g").Set(1.25)
		r.Histogram("h").Observe(0.5)
		r.Histogram("h").Observe(1.5)
		return r
	}
	var a, b bytes.Buffer
	if err := build().Snapshot().EncodeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("snapshot JSON not byte-identical:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"a.count": 3`) {
		t.Errorf("snapshot JSON missing counter: %s", a.String())
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	mk := func(label string, gauge float64, samples ...float64) *Registry {
		r := NewRegistry()
		r.SetLabel(label)
		r.Counter("c").Add(int64(len(samples)))
		r.Gauge("g").Set(gauge)
		for _, v := range samples {
			r.Histogram("h").Observe(v)
		}
		return r
	}
	fwd := []*Registry{mk("seed:1", 0.1, 1, 2), mk("seed:2", 0.3, 3), mk("seed:3", 0.2, 4, 5)}
	rev := []*Registry{mk("seed:3", 0.2, 4, 5), mk("seed:2", 0.3, 3), mk("seed:1", 0.1, 1, 2)}
	var a, b bytes.Buffer
	if err := MergeRegistries(fwd).EncodeJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := MergeRegistries(rev).EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("merge depends on registry order:\n%s\nvs\n%s", a.String(), b.String())
	}
	s := MergeRegistries(fwd)
	if s.Counters["c"] != 5 {
		t.Errorf("merged counter = %d, want 5", s.Counters["c"])
	}
	if got := s.Histograms["h"].Count; got != 5 {
		t.Errorf("merged histogram count = %d, want 5", got)
	}
}

func TestOnPublishHook(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.OnPublish(func(reg *Registry) {
		calls++
		reg.Counter("hooked").Set(42)
	})
	s := r.Snapshot()
	if s.Counters["hooked"] != 42 {
		t.Errorf("publish hook did not run: %v", s.Counters)
	}
	_ = r.Snapshot()
	if calls != 2 {
		t.Errorf("hook calls = %d, want 2 (once per snapshot)", calls)
	}
}

func TestCollectorAttach(t *testing.T) {
	col := NewCollector()
	restore := SetCollector(col)
	r := NewRegistry()
	AttachCurrent(r)
	restore()
	AttachCurrent(NewRegistry()) // no collector installed: dropped
	if col.Len() != 1 {
		t.Errorf("collector holds %d registries, want 1", col.Len())
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	r.Counter("net.msg.sent").Add(9)
	r.Histogram("dht.lookup.hops").Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "type,name,field,value\n") {
		t.Errorf("missing CSV header: %q", out)
	}
	for _, want := range []string{"counter,net.msg.sent,value,9", "histogram,dht.lookup.hops,count,1"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}
