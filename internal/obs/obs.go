// Package obs is the unified observability layer: a seed-deterministic
// metrics registry that the simulator substrate and every protocol
// subsystem publish into, plus machine-readable snapshot export (JSON/CSV)
// and the bench-file format the CI gate diffs.
//
// Design constraints, in order:
//
//  1. Determinism. Given the same seed and workload, everything exported
//     is bit-for-bit identical — across repeated runs and across trial
//     worker counts. Counters and histogram samples merge commutatively,
//     exports iterate names in sorted order, and nothing here reads the
//     wall clock or global randomness. Spans are stamped with *virtual*
//     time supplied by the caller.
//  2. Zero interference. Recording a metric must not perturb the
//     simulation: no RNG draws, no event scheduling, and cheap enough
//     (a field increment after one-time name resolution) that annotating
//     a hot path does not distort what is being measured.
//  3. One namespace. Metric names are flat dotted paths,
//     `<subsystem>.<object>.<measure>` (e.g. `dht.lookup.hops`,
//     `chain.reorg.depth`, `storage.repair.bytes`); the conventions are
//     documented in DESIGN.md so every future subsystem reports the same
//     way.
//
// A Registry is single-goroutine, like the simulation that feeds it: one
// Registry belongs to one simnet.Network. Cross-trial aggregation goes
// through Collector, which gathers whole registries and merges them in a
// deterministic order.
package obs

import (
	"math"
	"sort"
	"time"
)

// Counter is a monotonically increasing (or absolutely set) integer
// metric. The zero value is ready to use; Registry.Counter hands out
// pointers so call sites resolve the name once and increment a field
// thereafter.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (negative deltas are ignored; counters never decrease).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.n += delta
	}
}

// Set overwrites the counter with an absolute value. Publish hooks use
// this to mirror externally-accumulated totals (e.g. simnet's Trace) into
// the registry idempotently.
func (c *Counter) Set(v int64) { c.n = v }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a point-in-time float metric (a height, a ratio, a quantile
// published from elsewhere). Merging averages gauges across registries.
type Gauge struct {
	v   float64
	set bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) { g.v, g.set = v, true }

// Value returns the last set value (0 if never set).
func (g *Gauge) Value() float64 { return g.v }

// IsSet reports whether the gauge was ever set.
func (g *Gauge) IsSet() bool { return g.set }

// Histogram retains every observation so exact quantiles can be computed
// and so merges across trials are lossless. Intended for protocol-level
// event volumes (reorg depths, span durations), not per-message traffic —
// the substrate keeps its bucketed metrics.Histogram for that.
type Histogram struct {
	xs     []float64
	sorted bool
}

// Observe appends one sample.
func (h *Histogram) Observe(v float64) {
	h.xs = append(h.xs, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.xs) }

// Sum returns the total over all samples, accumulated in sorted order so
// the float result is independent of observation order.
func (h *Histogram) Sum() float64 {
	h.sort()
	var s float64
	for _, v := range h.xs {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if len(h.xs) == 0 {
		return 0
	}
	return h.Sum() / float64(len(h.xs))
}

// Quantile returns the exact q-quantile (0 ≤ q ≤ 1) with linear
// interpolation between closest ranks; 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.xs) == 0 {
		return 0
	}
	h.sort()
	if q <= 0 {
		return h.xs[0]
	}
	if q >= 1 {
		return h.xs[len(h.xs)-1]
	}
	pos := q * float64(len(h.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return h.xs[lo]
	}
	frac := pos - float64(lo)
	return h.xs[lo]*(1-frac) + h.xs[hi]*frac
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.xs)
		h.sorted = true
	}
}

// Event is one completed span on the virtual-time axis.
type Event struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// Span is an in-progress timed operation. End records the duration (in
// seconds of virtual time) into the histogram named at StartSpan and, when
// tracing is enabled, appends an Event. The zero Span is inert.
type Span struct {
	r     *Registry
	name  string
	start time.Duration
}

// End completes the span at virtual time now. Calling End on a zero Span
// is a no-op; ending before the start clamps to zero duration.
func (s Span) End(now time.Duration) {
	if s.r == nil {
		return
	}
	d := now - s.start
	if d < 0 {
		d = 0
	}
	s.r.Histogram(s.name).Observe(d.Seconds())
	if s.r.traceCap > 0 {
		if len(s.r.events) < s.r.traceCap {
			s.r.events = append(s.r.events, Event{Name: s.name, Start: s.start, End: now})
		} else {
			s.r.eventsDropped++
		}
	}
}

// Registry is one simulation's metric namespace. It is not safe for
// concurrent use — a simulation runs on one goroutine, and parallel trials
// each own their Network and therefore their Registry.
type Registry struct {
	label    string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	memo     map[string]any

	events        []Event
	eventsDropped int64
	traceCap      int

	publish []func(*Registry)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// SetLabel tags the registry for deterministic merge ordering; simnet sets
// "seed:<seed>" so trial merges sort by seed regardless of which worker
// finished first.
func (r *Registry) SetLabel(label string) { r.label = label }

// Label returns the registry's merge-ordering tag.
func (r *Registry) Label() string { return r.label }

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Memo returns the value cached under key, building it with build on first
// use. It is the batched-resolution hook for subsystems that annotate many
// nodes with the same network-scoped metrics: resolve the whole bundle of
// named counters once per registry, cache the bundle under a subsystem key,
// and hand every subsequent constructor the cached pointer set. At
// 10k-node populations this turns O(nodes × metrics) map lookups into
// O(metrics) without adding any branch to the per-event increment path.
func (r *Registry) Memo(key string, build func() any) any {
	if r.memo == nil {
		r.memo = map[string]any{}
	}
	v, ok := r.memo[key]
	if !ok {
		v = build()
		r.memo[key] = v
	}
	return v
}

// StartSpan opens a span named name at virtual time now. The duration
// lands in the histogram of the same name when End is called.
func (r *Registry) StartSpan(name string, now time.Duration) Span {
	return Span{r: r, name: name, start: now}
}

// EnableTracing starts retaining completed span events, up to cap entries
// (further events are counted in the snapshot's events_dropped). Tracing
// is off by default so steady-state runs retain nothing.
func (r *Registry) EnableTracing(cap int) { r.traceCap = cap }

// Events returns the retained span events in completion order.
func (r *Registry) Events() []Event { return r.events }

// OnPublish registers a hook run at snapshot time, before values are
// exported. The substrate uses this to mirror its Trace counters and
// latency quantiles into the registry without touching the per-message
// hot path.
func (r *Registry) OnPublish(f func(*Registry)) { r.publish = append(r.publish, f) }

// runPublish fires the publish hooks (in registration order).
func (r *Registry) runPublish() {
	for _, f := range r.publish {
		f(r)
	}
}
