package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// BenchSchema identifies the bench-file format; benchdiff refuses to
// compare files with mismatched schemas.
const BenchSchema = "feudalism-bench/v1"

// Timing is the non-deterministic half of a bench entry: host wall time
// and allocation counts. It is recorded only when the bench is invoked
// with -timing, so the default output stays byte-reproducible.
type Timing struct {
	WallNS     int64  `json:"wall_ns"`
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// BenchExperiment is one experiment's bench record: the deterministic
// protocol-metric snapshot, plus optional timing.
type BenchExperiment struct {
	ID      string    `json:"id"`
	Metrics *Snapshot `json:"metrics"`
	Timing  *Timing   `json:"timing,omitempty"`
}

// BenchFile is the machine-readable artifact `feudalism bench -json`
// emits and CI diffs (BENCH_baseline.json vs a fresh run).
type BenchFile struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Trials int    `json:"trials"`
	Scale  string `json:"scale"`
	// Experiments are sorted by ID.
	Experiments []BenchExperiment `json:"experiments"`
}

// Sort orders the experiments by ID (the canonical file order).
func (f *BenchFile) Sort() {
	sort.Slice(f.Experiments, func(i, j int) bool { return f.Experiments[i].ID < f.Experiments[j].ID })
}

// EncodeJSON renders the file as indented JSON with a trailing newline.
// With timing disabled the bytes are a pure function of (code, seed,
// trials, scale).
func (f *BenchFile) EncodeJSON() ([]byte, error) {
	f.Sort()
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// LoadBenchFile reads and validates a bench file from disk.
func LoadBenchFile(path string) (*BenchFile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != BenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, BenchSchema)
	}
	return &f, nil
}

// Tolerances configures the bench comparison.
type Tolerances struct {
	// Metric is the allowed relative drift for every deterministic value
	// (counters, gauges, histogram fields): |new-old| ≤ Metric·|old|.
	// Zero means exact equality — the right setting for same-seed runs.
	Metric float64
	// Time is the allowed relative wall-time growth: new ≤ old·(1+Time).
	// Zero disables the timing gate (timing is compared informationally
	// only); cross-machine comparisons should leave it off.
	Time float64
}

// Problem is one regression found by Compare.
type Problem struct {
	Experiment string
	Metric     string
	Old, New   float64
	Detail     string
}

func (p Problem) String() string {
	return fmt.Sprintf("%s: %s: %s (old=%v new=%v)", p.Experiment, p.Metric, p.Detail, p.Old, p.New)
}

// withinTol reports whether new is within relative tolerance tol of old.
// With old == 0 there is nothing to scale the tolerance by, so the values
// must match exactly.
func withinTol(old, new, tol float64) bool {
	if old == new {
		return true
	}
	return math.Abs(new-old) <= tol*math.Abs(old)
}

// Compare diffs new against old and returns every regression. Experiments
// or metrics present only in new are additions, not regressions; metrics
// missing from new are regressions (a measurement silently disappeared).
func Compare(old, new *BenchFile, tol Tolerances) []Problem {
	var probs []Problem
	newByID := map[string]BenchExperiment{}
	for _, e := range new.Experiments {
		newByID[e.ID] = e
	}
	olds := append([]BenchExperiment(nil), old.Experiments...)
	sort.Slice(olds, func(i, j int) bool { return olds[i].ID < olds[j].ID })
	for _, oe := range olds {
		ne, ok := newByID[oe.ID]
		if !ok {
			probs = append(probs, Problem{Experiment: oe.ID, Detail: "experiment missing from new file"})
			continue
		}
		probs = append(probs, compareSnapshots(oe.ID, oe.Metrics, ne.Metrics, tol.Metric)...)
		if tol.Time > 0 && oe.Timing != nil && ne.Timing != nil {
			ow, nw := float64(oe.Timing.WallNS), float64(ne.Timing.WallNS)
			if nw > ow*(1+tol.Time) {
				probs = append(probs, Problem{
					Experiment: oe.ID, Metric: "timing.wall_ns", Old: ow, New: nw,
					Detail: fmt.Sprintf("wall time grew beyond +%.0f%%", tol.Time*100),
				})
			}
		}
	}
	return probs
}

func compareSnapshots(id string, old, new *Snapshot, tol float64) []Problem {
	var probs []Problem
	if old == nil {
		return nil
	}
	if new == nil {
		return []Problem{{Experiment: id, Detail: "metrics missing from new file"}}
	}
	check := func(metric string, ov, nv float64, present bool) {
		if !present {
			probs = append(probs, Problem{Experiment: id, Metric: metric, Old: ov, Detail: "metric missing from new file"})
			return
		}
		if !withinTol(ov, nv, tol) {
			probs = append(probs, Problem{
				Experiment: id, Metric: metric, Old: ov, New: nv,
				Detail: fmt.Sprintf("drifted beyond tolerance %g", tol),
			})
		}
	}
	for _, name := range sortedKeys(old.Counters) {
		nv, ok := new.Counters[name]
		check("counter:"+name, float64(old.Counters[name]), float64(nv), ok)
	}
	for _, name := range sortedKeys(old.Gauges) {
		nv, ok := new.Gauges[name]
		check("gauge:"+name, old.Gauges[name], nv, ok)
	}
	for _, name := range sortedKeys(old.Histograms) {
		oh := old.Histograms[name]
		nh, ok := new.Histograms[name]
		check("histogram:"+name+":count", float64(oh.Count), float64(nh.Count), ok)
		if !ok {
			continue
		}
		fields := [][3]any{
			{"sum", oh.Sum, nh.Sum}, {"mean", oh.Mean, nh.Mean},
			{"min", oh.Min, nh.Min}, {"max", oh.Max, nh.Max},
			{"p50", oh.P50, nh.P50}, {"p90", oh.P90, nh.P90}, {"p99", oh.P99, nh.P99},
		}
		for _, f := range fields {
			check("histogram:"+name+":"+f[0].(string), f[1].(float64), f[2].(float64), true)
		}
	}
	return probs
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
