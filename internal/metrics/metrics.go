// Package metrics provides small, dependency-free statistical helpers used
// by the simulator and the experiment harnesses: streaming summaries,
// fixed-bucket histograms, percentile estimation over recorded samples, and
// simple rate counters.
//
// All types are safe for single-goroutine use; Summary and Histogram also
// provide locked variants via their *Sync wrappers where experiments run
// concurrent workers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Summary accumulates a stream of float64 observations and reports count,
// mean, min, max, variance and standard deviation without retaining the
// samples. Variance uses Welford's online algorithm for numerical stability.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe adds one sample to the summary.
func (s *Summary) Observe(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// Count returns the number of samples observed.
func (s *Summary) Count() int64 { return s.n }

// Mean returns the arithmetic mean of the observed samples, or 0 if empty.
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observed sample, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observed sample, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the population variance of the observed samples.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Merge folds other into s as if all of other's samples had been observed
// by s. Uses the parallel variance combination formula.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	delta := other.mean - s.mean
	mean := s.mean + delta*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + delta*delta*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// String renders the summary as a single human-readable line.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g min=%.4g max=%.4g sd=%.4g",
		s.n, s.Mean(), s.Min(), s.Max(), s.Stddev())
}

// Sample retains every observation so that exact percentiles can be
// computed. Intended for experiment-scale data (up to a few million points).
type Sample struct {
	xs     []float64
	sorted bool
}

// Observe appends one sample.
func (p *Sample) Observe(v float64) {
	p.xs = append(p.xs, v)
	p.sorted = false
}

// Count returns the number of retained samples.
func (p *Sample) Count() int { return len(p.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (p *Sample) Mean() float64 {
	if len(p.xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range p.xs {
		sum += v
	}
	return sum / float64(len(p.xs))
}

// Sum returns the total of all samples.
func (p *Sample) Sum() float64 {
	var sum float64
	for _, v := range p.xs {
		sum += v
	}
	return sum
}

func (p *Sample) sort() {
	if !p.sorted {
		sort.Float64s(p.xs)
		p.sorted = true
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. Returns 0 for an empty sample.
func (p *Sample) Quantile(q float64) float64 {
	if len(p.xs) == 0 {
		return 0
	}
	p.sort()
	if q <= 0 {
		return p.xs[0]
	}
	if q >= 1 {
		return p.xs[len(p.xs)-1]
	}
	pos := q * float64(len(p.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return p.xs[lo]
	}
	frac := pos - float64(lo)
	return p.xs[lo]*(1-frac) + p.xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (p *Sample) Median() float64 { return p.Quantile(0.5) }

// P99 returns the 0.99 quantile.
func (p *Sample) P99() float64 { return p.Quantile(0.99) }

// Values returns a copy of the retained samples in sorted order.
func (p *Sample) Values() []float64 {
	p.sort()
	out := make([]float64, len(p.xs))
	copy(out, p.xs)
	return out
}

// Histogram counts observations into fixed-width buckets covering
// [lo, hi); samples outside the range land in under/overflow buckets.
type Histogram struct {
	lo, hi   float64
	width    float64
	buckets  []int64
	under    int64
	over     int64
	observed int64
}

// NewHistogram creates a histogram with n equal buckets over [lo, hi).
// Panics if n <= 0 or hi <= lo, which indicates a programming error.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: invalid histogram bounds")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int64, n)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	h.observed++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		idx := int((v - h.lo) / h.width)
		if idx >= len(h.buckets) { // guard float rounding at the top edge
			idx = len(h.buckets) - 1
		}
		h.buckets[idx]++
	}
}

// Count returns the number of observed samples including out-of-range ones.
func (h *Histogram) Count() int64 { return h.observed }

// Bucket returns the count for bucket i and the bucket's [lo, hi) range.
func (h *Histogram) Bucket(i int) (count int64, lo, hi float64) {
	return h.buckets[i], h.lo + float64(i)*h.width, h.lo + float64(i+1)*h.width
}

// NumBuckets returns the number of in-range buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int64) { return h.under, h.over }

// Merge folds other's counts into h, bucket by bucket, as if h had seen
// all of other's samples. Both histograms must have identical bounds and
// bucket counts; merging is commutative and associative, which is what
// lets simnet's sharded engine combine per-shard latency histograms in any
// order. Panics on a bounds mismatch, which indicates a programming error.
func (h *Histogram) Merge(other *Histogram) {
	if h.lo != other.lo || h.hi != other.hi || len(h.buckets) != len(other.buckets) {
		panic("metrics: Merge on histograms with different bounds")
	}
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.under += other.under
	h.over += other.over
	h.observed += other.observed
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// interpolating linearly within the bucket that contains the target rank.
// Underflow resolves to lo and overflow to hi (the histogram does not know
// how far outside the range those samples fell). Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.observed == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.observed-1)
	if rank < float64(h.under) {
		return h.lo
	}
	cum := float64(h.under)
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if rank < cum+float64(n) {
			// Position within this bucket, interpolated across its width.
			frac := (rank - cum + 0.5) / float64(n)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum += float64(n)
	}
	return h.hi
}

// Counter is a monotonically increasing event counter, safe for concurrent
// use.
type Counter struct {
	mu sync.Mutex
	n  int64
}

// Add increments the counter by delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter.Add")
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Ratio safely divides num by den, returning 0 when den is zero. It keeps
// experiment report code free of divide-by-zero guards.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}
