package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummaryBasic(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Observe(v)
	}
	if s.Count() != 5 {
		t.Fatalf("count = %d, want 5", s.Count())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v, want 3", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max = %v/%v, want 1/5", s.Min(), s.Max())
	}
	if got, want := s.Variance(), 2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("variance = %v, want %v", got, want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Stddev() != 0 {
		t.Errorf("empty summary should report zeros, got %v", s.String())
	}
}

func TestSummaryMergeMatchesCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, b, all Summary
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*3 + 10
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("merged variance = %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max = %v/%v, want %v/%v", a.Min(), a.Max(), all.Min(), all.Max())
	}
}

func TestSummaryMergeIntoEmpty(t *testing.T) {
	var a, b Summary
	b.Observe(7)
	a.Merge(&b)
	if a.Count() != 1 || a.Mean() != 7 {
		t.Errorf("merge into empty: got %v", a.String())
	}
	var c Summary
	a.Merge(&c) // merging empty is a no-op
	if a.Count() != 1 {
		t.Errorf("merge of empty changed count: %d", a.Count())
	}
}

func TestSampleQuantiles(t *testing.T) {
	var p Sample
	for i := 1; i <= 100; i++ {
		p.Observe(float64(i))
	}
	if got := p.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := p.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := p.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
	if got := p.P99(); got < 99 || got > 100 {
		t.Errorf("p99 = %v, want in [99,100]", got)
	}
}

func TestSampleEmptyQuantile(t *testing.T) {
	var p Sample
	if p.Quantile(0.5) != 0 || p.Mean() != 0 {
		t.Error("empty sample should report zeros")
	}
}

func TestSampleObserveAfterQuantile(t *testing.T) {
	var p Sample
	p.Observe(10)
	_ = p.Median() // forces a sort
	p.Observe(1)   // must invalidate sort flag
	if got := p.Quantile(0); got != 1 {
		t.Errorf("min after re-observe = %v, want 1", got)
	}
}

func TestQuantileMonotonicProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var p Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			p.Observe(v)
		}
		if p.Count() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := p.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	h.Observe(-1)
	h.Observe(10) // hi is exclusive
	h.Observe(99)
	for i := 0; i < h.NumBuckets(); i++ {
		c, lo, hi := h.Bucket(i)
		if c != 1 {
			t.Errorf("bucket %d [%v,%v) = %d, want 1", i, lo, hi, c)
		}
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("out of range = %d/%d, want 1/2", under, over)
	}
	if h.Count() != 13 {
		t.Errorf("count = %d, want 13", h.Count())
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 0.3, 3)
	h.Observe(math.Nextafter(0.3, 0)) // just under hi; rounding must not index out of range
	if h.Count() != 1 {
		t.Fatal("observation lost")
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with hi<=lo should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Add should panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("ratio with zero denominator should be 0")
	}
	if Ratio(3, 4) != 0.75 {
		t.Error("ratio miscomputed")
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean miscomputed")
	}
}
