package storage

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/resil"
	"repro/internal/simnet"
)

func TestSplitChunks(t *testing.T) {
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	chunks := SplitChunks(data, 32)
	if len(chunks) != 4 {
		t.Fatalf("chunks = %d, want 4", len(chunks))
	}
	var total []byte
	for _, c := range chunks {
		if !c.Verify() {
			t.Error("chunk fails self-verification")
		}
		total = append(total, c.Data...)
	}
	if !bytes.Equal(total, data) {
		t.Error("chunks do not reassemble")
	}
	if len(SplitChunks(nil, 32)) != 1 {
		t.Error("empty data should yield one empty chunk")
	}
	if got := SplitChunks(data, 0); len(got) != 1 {
		t.Error("zero chunk size should select default (one chunk for small data)")
	}
}

func TestChunkVerifyDetectsTamper(t *testing.T) {
	c := NewChunk([]byte("data"))
	c.Data = []byte("tampered")
	if c.Verify() {
		t.Error("tampered chunk verified")
	}
}

func TestPlacementBookkeeping(t *testing.T) {
	pl := NewPlacement()
	id := cryptoutil.SumHash([]byte("x"))
	a, b := ProviderRef{Node: 1}, ProviderRef{Node: 2}
	pl.Add(id, a)
	pl.Add(id, a) // idempotent
	pl.Add(id, b)
	if pl.Count(id) != 2 {
		t.Errorf("count = %d", pl.Count(id))
	}
	pl.Remove(id, a)
	if pl.Count(id) != 1 || pl.Holders[id][0].Node != 2 {
		t.Error("remove failed")
	}
	m := &Manifest{Chunks: []cryptoutil.Hash{id}}
	if pl.MinRedundancy(m) != 1 {
		t.Error("min redundancy")
	}
	if (&Manifest{Mode: ModeErasure, DataShards: 4, ParityShards: 2}).RedundancyFactor() != 1.5 {
		t.Error("erasure redundancy factor")
	}
	if (&Manifest{Mode: ModeReplicate, Replicas: 3}).RedundancyFactor() != 3 {
		t.Error("replicate redundancy factor")
	}
}

// storageWorld builds a client plus n providers.
func storageWorld(t testing.TB, seed int64, n int, capacity int64, cheats ...CheatMode) (*simnet.Network, *Client, []*Provider) {
	t.Helper()
	nw := simnet.New(seed)
	client := NewClient(nw.AddNode(), 30*time.Second)
	providers := make([]*Provider, n)
	for i := range providers {
		cheat := Honest
		if i < len(cheats) {
			cheat = cheats[i]
		}
		providers[i] = NewProvider(nw.AddNode(), capacity, cheat)
	}
	return nw, client, providers
}

func refs(providers []*Provider) []ProviderRef {
	out := make([]ProviderRef, len(providers))
	for i, p := range providers {
		out[i] = p.Ref()
	}
	return out
}

func mkData(seed int64, n int) []byte {
	data := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(data)
	return data
}

func TestUploadDownloadReplicated(t *testing.T) {
	nw, client, providers := storageWorld(t, 1, 5, 1<<20)
	data := mkData(2, 3000)

	var m *Manifest
	var pl *Placement
	var upErr error
	client.Upload(data, 1024, refs(providers), 3, func(mm *Manifest, pp *Placement, err error) {
		m, pl, upErr = mm, pp, err
	})
	nw.RunAll()
	if upErr != nil {
		t.Fatal(upErr)
	}
	if len(m.Chunks) != 3 {
		t.Fatalf("chunks = %d", len(m.Chunks))
	}
	if pl.MinRedundancy(m) != 3 {
		t.Errorf("redundancy = %d, want 3", pl.MinRedundancy(m))
	}

	var got []byte
	var dlErr error
	client.Download(m, pl, func(d []byte, err error) { got, dlErr = d, err })
	nw.RunAll()
	if dlErr != nil {
		t.Fatal(dlErr)
	}
	if !bytes.Equal(got, data) {
		t.Error("download mismatch")
	}
}

func TestUploadValidation(t *testing.T) {
	nw, client, providers := storageWorld(t, 2, 2, 1<<20)
	gotErr := false
	client.Upload([]byte("x"), 0, refs(providers), 3, func(m *Manifest, pl *Placement, err error) {
		gotErr = err != nil
	})
	nw.RunAll()
	if !gotErr {
		t.Error("upload with replicas > providers should fail")
	}
	client.UploadErasure([]byte("x"), 4, 2, refs(providers), func(m *Manifest, pl *Placement, err error) {
		gotErr = err != nil
	})
	nw.RunAll()
	if !gotErr {
		t.Error("erasure upload with too few providers should fail")
	}
}

func TestDownloadSurvivesProviderDeath(t *testing.T) {
	nw, client, providers := storageWorld(t, 3, 5, 1<<20)
	data := mkData(4, 2000)
	var m *Manifest
	var pl *Placement
	client.Upload(data, 512, refs(providers), 3, func(mm *Manifest, pp *Placement, err error) { m, pl = mm, pp })
	nw.RunAll()
	// Kill two providers; each chunk still has ≥1 live replica.
	providers[0].Node().Crash()
	providers[1].Node().Crash()
	var got []byte
	var dlErr error
	client.Download(m, pl, func(d []byte, err error) { got, dlErr = d, err })
	nw.RunAll()
	if dlErr != nil || !bytes.Equal(got, data) {
		t.Errorf("download after deaths failed: %v", dlErr)
	}
}

func TestErasureUploadDownloadAndLoss(t *testing.T) {
	nw, client, providers := storageWorld(t, 5, 6, 1<<20)
	data := mkData(6, 5000)
	var m *Manifest
	var pl *Placement
	var upErr error
	client.UploadErasure(data, 4, 2, refs(providers), func(mm *Manifest, pp *Placement, err error) {
		m, pl, upErr = mm, pp, err
	})
	nw.RunAll()
	if upErr != nil {
		t.Fatal(upErr)
	}
	if len(m.Chunks) != 6 {
		t.Fatalf("shards = %d", len(m.Chunks))
	}
	// Kill any 2 providers: still recoverable from 4 shards.
	providers[1].Node().Crash()
	providers[4].Node().Crash()
	var got []byte
	var dlErr error
	client.Download(m, pl, func(d []byte, err error) { got, dlErr = d, err })
	nw.RunAll()
	if dlErr != nil || !bytes.Equal(got, data) {
		t.Fatalf("erasure download with 2 losses failed: %v", dlErr)
	}
	// A third loss exceeds parity: download must fail.
	providers[2].Node().Crash()
	dlErr = nil
	client.Download(m, pl, func(d []byte, err error) { dlErr = err })
	nw.RunAll()
	if dlErr == nil {
		t.Error("download with 3 losses in a (4,6) code should fail")
	}
}

func TestCapacityRefusal(t *testing.T) {
	nw, client, providers := storageWorld(t, 7, 1, 100) // tiny provider
	var upErr error
	client.Upload(mkData(8, 1000), 512, refs(providers), 1, func(m *Manifest, pl *Placement, err error) { upErr = err })
	nw.RunAll()
	if upErr == nil {
		t.Error("upload exceeding provider capacity should fail")
	}
}

func TestAuditHonestAndCheaters(t *testing.T) {
	nw, client, providers := storageWorld(t, 9, 3, 1<<20, Honest, DropAfterAck, CorruptBits)
	data := mkData(10, 2000)
	var m *Manifest
	var pl *Placement
	client.Upload(data, 1024, refs(providers), 3, func(mm *Manifest, pp *Placement, err error) { m, pl = mm, pp })
	nw.RunAll()
	// All three "accepted" the data (cheaters lie), so placement shows 3.
	if pl.MinRedundancy(m) != 3 {
		t.Fatalf("placement = %d", pl.MinRedundancy(m))
	}
	var report *AuditReport
	client.Audit(m, pl, 10*time.Second, func(r *AuditReport) { report = r })
	nw.RunAll()
	if report == nil {
		t.Fatal("no report")
	}
	// Per chunk: honest passes, dropper and corrupter fail.
	failedBy := map[simnet.NodeID]int{}
	for _, res := range report.Results {
		if !res.OK {
			failedBy[res.Holder.Node]++
		}
	}
	if failedBy[providers[0].Node().ID()] != 0 {
		t.Error("honest provider failed audit")
	}
	if failedBy[providers[1].Node().ID()] == 0 {
		t.Error("data-dropping provider passed audit")
	}
	if failedBy[providers[2].Node().ID()] == 0 {
		t.Error("bit-corrupting provider passed audit")
	}
	if len(report.FailedHolders()) != 2 {
		t.Errorf("failed holders = %d, want 2", len(report.FailedHolders()))
	}
	if report.Passed()+report.Failed() != len(report.Results) {
		t.Error("report accounting inconsistent")
	}
}

func TestOutsourcingAttackCaughtByDeadline(t *testing.T) {
	// Providers on slow links; the outsourcer must make an extra round trip
	// to its accomplice, blowing a deadline an honest provider meets.
	nw := simnet.New(11)
	nw.SetDefaultProfile(simnet.LinkProfile{Latency: 50 * time.Millisecond, UplinkBps: 10e6, DownlinkBps: 10e6})
	client := NewClient(nw.AddNode(), 30*time.Second)
	honest := NewProvider(nw.AddNode(), 1<<20, Honest)
	outsourcer := NewProvider(nw.AddNode(), 1<<20, OutsourceFetch)
	accomplice := NewProvider(nw.AddNode(), 1<<20, Honest)
	outsourcer.SetAccomplice(accomplice.Node().ID())

	data := mkData(12, 1500)
	var m *Manifest
	var pl *Placement
	// Place on honest + outsourcer + accomplice: the accomplice genuinely
	// stores, the outsourcer only pretends.
	client.Upload(data, 2048, []ProviderRef{honest.Ref(), outsourcer.Ref(), accomplice.Ref()}, 3,
		func(mm *Manifest, pp *Placement, err error) { m, pl = mm, pp })
	nw.RunAll()

	// Generous deadline: outsourcer passes (it fetches and answers
	// correctly) — the attack "works" without timing enforcement.
	var lax *AuditReport
	client.Audit(m, pl, 10*time.Second, func(r *AuditReport) { lax = r })
	nw.RunAll()
	if lax.Failed() != 0 {
		t.Fatalf("with lax deadline all should pass, failed=%d", lax.Failed())
	}
	// Tight deadline (≈ 1 honest RTT + margin): outsourcer caught.
	var strict *AuditReport
	client.Audit(m, pl, 300*time.Millisecond, func(r *AuditReport) { strict = r })
	nw.RunAll()
	failedBy := map[simnet.NodeID]bool{}
	for _, res := range strict.Results {
		if !res.OK {
			failedBy[res.Holder.Node] = true
		}
	}
	if failedBy[honest.Node().ID()] {
		t.Error("honest provider failed tight deadline")
	}
	if !failedBy[outsourcer.Node().ID()] {
		t.Error("outsourcing provider passed tight deadline")
	}
}

func TestRetrievabilitySentinels(t *testing.T) {
	nw, client, providers := storageWorld(t, 13, 2, 1<<20, Honest, DropAfterAck)
	data := mkData(14, 1000)
	chunk := NewChunk(data)
	sentinels, err := MakeSentinels(rand.New(rand.NewSource(15)), data, 5)
	if err != nil {
		t.Fatal(err)
	}
	var m *Manifest
	var pl *Placement
	client.Upload(data, 0, refs(providers), 2, func(mm *Manifest, pp *Placement, err error) { m, pl = mm, pp })
	nw.RunAll()
	_ = m

	var okHonest, okDropper bool
	client.RetAudit(chunk.ID, providers[0].Ref(), sentinels[0], 10*time.Second, func(ok bool) { okHonest = ok })
	client.RetAudit(chunk.ID, providers[1].Ref(), sentinels[1], 10*time.Second, func(ok bool) { okDropper = ok })
	nw.RunAll()
	if !okHonest {
		t.Error("honest provider failed retrievability audit")
	}
	if okDropper {
		t.Error("dropping provider passed retrievability audit")
	}
	_ = pl
}

func TestSealUnsealRoundTrip(t *testing.T) {
	data := mkData(16, 10_000) // > HKDF single-expand limit
	sealed := Seal(data, 7, 2)
	if bytes.Equal(sealed, data) {
		t.Error("sealing is identity")
	}
	if !bytes.Equal(Unseal(sealed, 7, 2), data) {
		t.Error("unseal failed")
	}
	// Different provider/replica give different sealed bytes.
	if bytes.Equal(Seal(data, 7, 2), Seal(data, 8, 2)) {
		t.Error("seal not provider-specific")
	}
	if bytes.Equal(Seal(data, 7, 2), Seal(data, 7, 3)) {
		t.Error("seal not replica-specific")
	}
	if Seal(nil, 1, 1) != nil {
		t.Error("sealing empty data")
	}
}

func TestProofOfReplicationDetectsDedup(t *testing.T) {
	nw, client, providers := storageWorld(t, 17, 2, 1<<20, Honest, DedupReplicas)
	honest, cheater := providers[0], providers[1]
	data := mkData(18, 2000)
	chunk := NewChunk(data)

	// Store 3 sealed replicas on each.
	stored := 0
	for _, p := range []*Provider{honest, cheater} {
		for r := 0; r < 3; r++ {
			client.PutSealed(chunk.ID, data, p.Ref(), r, func(ok bool) {
				if ok {
					stored++
				}
			})
		}
	}
	nw.RunAll()
	if stored != 6 {
		t.Fatalf("stored acks = %d, want 6 (cheater lies)", stored)
	}

	// Audit all replicas on both providers.
	results := map[simnet.NodeID][]bool{}
	for _, p := range []*Provider{honest, cheater} {
		for r := 0; r < 3; r++ {
			root := SealedRoot(data, p.Node().ID(), r)
			p := p
			client.RepAudit(chunk.ID, root, len(data), p.Ref(), r, 10*time.Second, func(ok bool) {
				results[p.Node().ID()] = append(results[p.Node().ID()], ok)
			})
		}
	}
	nw.RunAll()
	for _, ok := range results[honest.Node().ID()] {
		if !ok {
			t.Error("honest provider failed a replica audit")
		}
	}
	cheaterPasses := 0
	for _, ok := range results[cheater.Node().ID()] {
		if ok {
			cheaterPasses++
		}
	}
	if cheaterPasses != 1 {
		t.Errorf("dedup cheater passed %d/3 replica audits, want exactly 1 (replica 0)", cheaterPasses)
	}
}

func TestRepairReplicated(t *testing.T) {
	nw, client, providers := storageWorld(t, 19, 6, 1<<20)
	data := mkData(20, 2000)
	var m *Manifest
	var pl *Placement
	client.Upload(data, 512, refs(providers[:3]), 3, func(mm *Manifest, pp *Placement, err error) { m, pl = mm, pp })
	nw.RunAll()

	// Provider 0 dies; owner notices (via audit) and repairs onto the pool.
	providers[0].Node().Crash()
	for _, id := range m.Chunks {
		pl.Remove(id, providers[0].Ref())
	}
	if pl.MinRedundancy(m) != 2 {
		t.Fatalf("redundancy after death = %d", pl.MinRedundancy(m))
	}
	var restored int
	var repErr error
	client.Repair(m, pl, refs(providers), func(n int, err error) { restored, repErr = n, err })
	nw.RunAll()
	if repErr != nil {
		t.Fatal(repErr)
	}
	if restored != len(m.Chunks) {
		t.Errorf("restored %d copies, want %d", restored, len(m.Chunks))
	}
	if pl.MinRedundancy(m) != 3 {
		t.Errorf("redundancy after repair = %d", pl.MinRedundancy(m))
	}
	// Data still downloads.
	var got []byte
	client.Download(m, pl, func(d []byte, err error) { got = d })
	nw.RunAll()
	if !bytes.Equal(got, data) {
		t.Error("download after repair failed")
	}
}

func TestRepairErasureRebuildsLostShards(t *testing.T) {
	nw, client, providers := storageWorld(t, 21, 8, 1<<20)
	data := mkData(22, 4000)
	var m *Manifest
	var pl *Placement
	client.UploadErasure(data, 4, 2, refs(providers[:6]), func(mm *Manifest, pp *Placement, err error) { m, pl = mm, pp })
	nw.RunAll()

	// Two providers die: their shards are lost.
	dead := []*Provider{providers[0], providers[3]}
	for _, d := range dead {
		d.Node().Crash()
		for _, id := range m.Chunks {
			pl.Remove(id, d.Ref())
		}
	}
	var restored int
	var repErr error
	client.Repair(m, pl, refs(providers[6:]), func(n int, err error) { restored, repErr = n, err })
	nw.RunAll()
	if repErr != nil {
		t.Fatal(repErr)
	}
	if restored != 2 {
		t.Errorf("restored = %d shards, want 2", restored)
	}
	if pl.MinRedundancy(m) != 1 {
		t.Errorf("min redundancy = %d", pl.MinRedundancy(m))
	}
	// Now even with two more deaths the object survives.
	providers[1].Node().Crash()
	providers[4].Node().Crash()
	var got []byte
	var dlErr error
	client.Download(m, pl, func(d []byte, err error) { got, dlErr = d, err })
	nw.RunAll()
	if dlErr != nil || !bytes.Equal(got, data) {
		t.Errorf("download after erasure repair failed: %v", dlErr)
	}
}

func TestRepairNoopWhenHealthy(t *testing.T) {
	nw, client, providers := storageWorld(t, 23, 3, 1<<20)
	var m *Manifest
	var pl *Placement
	client.Upload(mkData(24, 500), 0, refs(providers), 3, func(mm *Manifest, pp *Placement, err error) { m, pl = mm, pp })
	nw.RunAll()
	var restored = -1
	client.Repair(m, pl, refs(providers), func(n int, err error) { restored = n })
	nw.RunAll()
	if restored != 0 {
		t.Errorf("healthy repair restored %d", restored)
	}
}

// Property: seal/unseal round-trips for arbitrary data and parameters.
func TestSealProperty(t *testing.T) {
	f := func(data []byte, provider uint8, replica uint8) bool {
		s := Seal(data, simnet.NodeID(provider), int(replica))
		return bytes.Equal(Unseal(s, simnet.NodeID(provider), int(replica)), data) ||
			(len(data) == 0 && s == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSpacetimeAuditContinuous(t *testing.T) {
	nw, client, providers := storageWorld(t, 31, 1, 1<<30)
	p := providers[0]
	data := mkData(32, 1500)
	chunk := NewChunk(data)
	client.PutSealed(chunk.ID, data, p.Ref(), 0, func(bool) {})
	nw.RunAll()
	root := SealedRoot(data, p.Node().ID(), 0)

	var res SpacetimeResult
	client.SpacetimeAudit(chunk.ID, root, len(data), p.Ref(), 0, 5, time.Hour, 10*time.Second, func(r SpacetimeResult) { res = r })
	nw.Run(nw.Now() + 6*time.Hour)
	if !res.Continuous || res.Passed != 5 {
		t.Errorf("honest spacetime audit: %+v", res)
	}
}

func TestSpacetimeAuditCatchesMidWindowOutage(t *testing.T) {
	nw, client, providers := storageWorld(t, 33, 1, 1<<30)
	p := providers[0]
	data := mkData(34, 1500)
	chunk := NewChunk(data)
	client.PutSealed(chunk.ID, data, p.Ref(), 0, func(bool) {})
	nw.RunAll()
	root := SealedRoot(data, p.Node().ID(), 0)

	// Provider goes dark during epochs 2–3 and returns: continuity is
	// broken even though the data survives.
	nw.After(90*time.Minute, func() { p.Node().Crash() })
	nw.After(3*time.Hour+30*time.Minute, func() { p.Node().Restart() })
	var res SpacetimeResult
	client.SpacetimeAudit(chunk.ID, root, len(data), p.Ref(), 0, 5, time.Hour, 10*time.Second, func(r SpacetimeResult) { res = r })
	nw.Run(nw.Now() + 8*time.Hour)
	if res.Continuous {
		t.Error("outage should break spacetime continuity")
	}
	if res.Passed == 0 || res.Passed >= res.Total {
		t.Errorf("expected partial passes, got %+v", res)
	}
}

func TestSpacetimeAuditZeroEpochs(t *testing.T) {
	nw, client, providers := storageWorld(t, 35, 1, 1<<30)
	var res SpacetimeResult
	client.SpacetimeAudit(cryptoutil.Hash{}, cryptoutil.Hash{}, 0, providers[0].Ref(), 0, 0, time.Hour, time.Second, func(r SpacetimeResult) { res = r })
	nw.RunAll()
	if !res.Continuous || res.Total != 0 {
		t.Errorf("zero-epoch audit: %+v", res)
	}
}

func TestProbe(t *testing.T) {
	nw, client, providers := storageWorld(t, 61, 3, 1<<20, Honest, DropAfterAck)
	data := mkData(62, 500)
	chunk := NewChunk(data)
	var m *Manifest
	client.Upload(data, 0, refs(providers[:2]), 2, func(mm *Manifest, pp *Placement, err error) { m = mm })
	nw.RunAll()
	_ = m

	results := map[simnet.NodeID][2]bool{}
	for _, p := range providers {
		p := p
		client.Probe(p.Ref(), chunk.ID, 5*time.Second, func(claims, reachable bool) {
			results[p.Node().ID()] = [2]bool{claims, reachable}
		})
	}
	nw.RunAll()
	if r := results[providers[0].Node().ID()]; !r[0] || !r[1] {
		t.Error("honest holder should claim possession")
	}
	// The dropper lies — exactly why probes are only hints.
	if r := results[providers[1].Node().ID()]; !r[0] {
		t.Error("dropper should (falsely) claim possession")
	}
	// Third provider never got the chunk and is honest: claims false.
	if r := results[providers[2].Node().ID()]; r[0] || !r[1] {
		t.Error("non-holder should deny")
	}
	// Unreachable provider.
	providers[0].Node().Crash()
	var reachable bool
	client.Probe(providers[0].Ref(), chunk.ID, 2*time.Second, func(c, r bool) { reachable = r })
	nw.RunAll()
	if reachable {
		t.Error("crashed provider reported reachable")
	}
}

func TestProviderAccessors(t *testing.T) {
	nw, client, providers := storageWorld(t, 63, 1, 4096)
	p := providers[0]
	p.SetPrice(7)
	if p.Price() != 7 || p.Capacity() != 4096 || p.Used() != 0 {
		t.Error("accessors wrong")
	}
	client.Upload(mkData(64, 1000), 0, refs(providers), 1, func(*Manifest, *Placement, error) {})
	nw.RunAll()
	if p.Used() != 1000 {
		t.Errorf("used = %d", p.Used())
	}
	if ModeReplicate.String() != "replicate" || ModeErasure.String() != "erasure" || PlacementMode(9).String() != "unknown" {
		t.Error("mode strings")
	}
	if NewPlacement().String() == "" {
		t.Error("placement string")
	}
	if SealedID(mkData(65, 64), 1, 0).IsZero() {
		t.Error("sealed id zero")
	}
}

// TestPutRetriesAcrossHealedPartition is the regression pin for the old
// bespoke single-retry the resilience layer replaced: a put whose first
// transmission is swallowed by a network partition must still complete once
// the partition heals, because the layer's timeout-driven retransmit path
// re-issues it. The naive fixed-timeout client would report a failed
// placement here.
func TestPutRetriesAcrossHealedPartition(t *testing.T) {
	nw := simnet.New(21)
	clientNode := nw.AddNode()
	client := NewClientWith(clientNode, 30*time.Second, resil.Defaults())
	provider := NewProvider(nw.AddNode(), 1<<20, Honest)
	data := mkData(22, 1000)

	// The put's first transmission launches into a partition separating
	// client and provider; the partition heals just after the 1s initial
	// RTO expires, so the first backoff retry (~1.1s) crosses a healthy
	// network.
	nw.Partition([]simnet.NodeID{clientNode.ID()}, []simnet.NodeID{provider.Ref().Node})
	clientNode.After(1050*time.Millisecond, nw.Heal)

	var m *Manifest
	var pl *Placement
	var upErr error
	client.Upload(data, 0, []ProviderRef{provider.Ref()}, 1, func(mm *Manifest, pp *Placement, err error) {
		m, pl, upErr = mm, pp, err
	})
	nw.RunAll()
	if upErr != nil {
		t.Fatalf("put did not survive the healed partition: %v", upErr)
	}
	if pl.Count(m.Chunks[0]) != 1 {
		t.Fatalf("placement count = %d, want 1", pl.Count(m.Chunks[0]))
	}

	// The stored copy is real: the object downloads back intact.
	var got []byte
	var dlErr error
	client.Download(m, pl, func(d []byte, err error) { got, dlErr = d, err })
	nw.RunAll()
	if dlErr != nil || !bytes.Equal(got, data) {
		t.Fatalf("download after retried put: err=%v match=%v", dlErr, bytes.Equal(got, data))
	}
}
