package storage

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cryptoutil"
	"repro/internal/simnet"
)

func chainKey(t testing.TB, seed int64) *cryptoutil.KeyPair {
	t.Helper()
	kp, err := cryptoutil.GenerateKeyPair(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func TestContractEncodeDecodeAndID(t *testing.T) {
	ct := &Contract{
		Client:        chain.Address{1},
		Provider:      chain.Address{2},
		FileID:        cryptoutil.SumHash([]byte("f")),
		SizeBytes:     1000,
		PricePerEpoch: 5,
		Epochs:        10,
		ProofEvery:    4,
	}
	got, err := DecodeContract(ct.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *ct {
		t.Error("round trip mismatch")
	}
	if ct.TotalPrice() != 50 {
		t.Error("total price")
	}
	if ct.ID().IsZero() {
		t.Error("zero ID")
	}
	if _, err := DecodeContract([]byte("junk")); err == nil {
		t.Error("junk accepted")
	}
}

func TestContractAnchorAndScan(t *testing.T) {
	clientKey := chainKey(t, 1)
	c := chain.NewChain(chain.Config{
		InitialDifficulty: 4,
		GenesisAlloc:      map[chain.Address]uint64{clientKey.Fingerprint(): 1000},
	})
	ct := &Contract{
		Client:        clientKey.Fingerprint(),
		Provider:      chain.Address{2},
		FileID:        cryptoutil.SumHash([]byte("file")),
		SizeBytes:     4096,
		PricePerEpoch: 3,
		Epochs:        5,
	}
	anchor := ct.AnchorTx(clientKey, 0)
	b, err := c.NewBlock(c.HeadHash(), []*chain.Tx{anchor}, time.Second, chain.Address{9})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	found := ContractsOnChain(c)
	if len(found) != 1 || found[0].ID() != ct.ID() {
		t.Fatalf("found %d contracts", len(found))
	}

	// A forged contract claiming another client must be ignored.
	mallory := chainKey(t, 2)
	cMallory := chain.NewChain(chain.Config{
		InitialDifficulty: 4,
		GenesisAlloc:      map[chain.Address]uint64{mallory.Fingerprint(): 1000},
	})
	forged := &Contract{Client: clientKey.Fingerprint(), Provider: chain.Address{3}, Epochs: 1}
	tx := forged.AnchorTx(mallory, 0) // signed by mallory, claims clientKey
	b2, err := cMallory.NewBlock(cMallory.HeadHash(), []*chain.Tx{tx}, time.Second, chain.Address{9})
	if err != nil {
		t.Fatal(err)
	}
	if err := cMallory.AddBlock(b2); err != nil {
		t.Fatal(err)
	}
	if got := ContractsOnChain(cMallory); len(got) != 0 {
		t.Error("forged client binding accepted")
	}
}

func TestContractSettlement(t *testing.T) {
	clientKey := chainKey(t, 3)
	provider := chain.Address{0x50}
	c := chain.NewChain(chain.Config{
		InitialDifficulty: 4,
		GenesisAlloc:      map[chain.Address]uint64{clientKey.Fingerprint(): 1000},
	})
	ct := &Contract{
		Client:        clientKey.Fingerprint(),
		Provider:      provider,
		PricePerEpoch: 7,
		Epochs:        3,
	}
	nonce := uint64(0)
	txs := []*chain.Tx{ct.AnchorTx(clientKey, nonce)}
	nonce++
	// Three passing epochs → three payments.
	for e := 0; e < 3; e++ {
		txs = append(txs, ct.PaymentTx(clientKey, nonce))
		nonce++
	}
	b, err := c.NewBlock(c.HeadHash(), txs, time.Second, chain.Address{9})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddBlock(b); err != nil {
		t.Fatal(err)
	}
	if bal := c.State().Balance(provider); bal != 21 {
		t.Errorf("provider balance = %d, want 21", bal)
	}
}

func TestSelectAsks(t *testing.T) {
	asks := []Ask{
		{Ref: ProviderRef{Node: 1}, PricePerEpoch: 9, FreeBytes: 1000},
		{Ref: ProviderRef{Node: 2}, PricePerEpoch: 3, FreeBytes: 1000},
		{Ref: ProviderRef{Node: 3}, PricePerEpoch: 3, FreeBytes: 10},
		{Ref: ProviderRef{Node: 4}, PricePerEpoch: 5, FreeBytes: 1000},
	}
	sel := SelectAsks(asks, 500, 2)
	if len(sel) != 2 || sel[0].Ref.Node != 2 || sel[1].Ref.Node != 4 {
		t.Errorf("selection = %+v", sel)
	}
	if len(SelectAsks(asks, 1<<40, 2)) != 0 {
		t.Error("capacity filter failed")
	}
}

func TestBitswapReciprocity(t *testing.T) {
	nw := simnet.New(1)
	cfg := BitswapConfig{DebtRatioLimit: 2, GraceBytes: 1000}
	server := NewBitswapNode(nw.AddNode(), cfg)
	freerider := NewBitswapNode(nw.AddNode(), cfg)
	good := NewBitswapNode(nw.AddNode(), cfg)

	// Server holds blocks everyone wants; good peer also has blocks to give
	// back.
	var serverBlocks []cryptoutil.Hash
	for i := 0; i < 20; i++ {
		serverBlocks = append(serverBlocks, server.Put(mkData(int64(i), 400)))
	}
	var goodBlocks []cryptoutil.Hash
	for i := 100; i < 120; i++ {
		goodBlocks = append(goodBlocks, good.Put(mkData(int64(i), 400)))
	}

	// Freerider only takes. After grace + ratio, it gets refused.
	refusedAt := -1
	for i, id := range serverBlocks {
		i, id := i, id
		freerider.Want(server.Node().ID(), id, time.Minute, func(ok, refused bool) {
			if refused && refusedAt < 0 {
				refusedAt = i
			}
		})
	}
	nw.RunAll()
	if refusedAt < 0 {
		t.Fatal("freerider was never refused")
	}
	if server.Refusals == 0 {
		t.Error("refusals not counted")
	}

	// The good peer alternates: serve one to server, take one. Never refused.
	anyRefused := false
	for i := 0; i < 10; i++ {
		// Server pulls from good (credits good).
		server.Want(good.Node().ID(), goodBlocks[i], time.Minute, func(ok, refused bool) {})
		// Good pulls from server.
		good.Want(server.Node().ID(), serverBlocks[i], time.Minute, func(ok, refused bool) {
			if refused {
				anyRefused = true
			}
		})
		nw.RunAll()
	}
	if anyRefused {
		t.Error("reciprocating peer was refused")
	}
	if !good.Has(serverBlocks[0]) {
		t.Error("fetched block not stored")
	}
	if server.DebtRatio(freerider.Node().ID()) <= server.DebtRatio(good.Node().ID()) {
		t.Error("freerider should carry more debt than the good peer")
	}
}

func TestBitswapNotFoundAndBadData(t *testing.T) {
	nw := simnet.New(2)
	a := NewBitswapNode(nw.AddNode(), BitswapConfig{})
	b := NewBitswapNode(nw.AddNode(), BitswapConfig{})
	var ok, refused bool
	a.Want(b.Node().ID(), cryptoutil.SumHash([]byte("missing")), time.Minute, func(o, r bool) { ok, refused = o, r })
	nw.RunAll()
	if ok || refused {
		t.Error("missing block should be a plain miss")
	}
}
