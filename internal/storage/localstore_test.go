package storage

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/obs"
)

func lsChunk(i, size int) (cryptoutil.Hash, []byte) {
	data := bytes.Repeat([]byte{byte(i + 1)}, size)
	data[0] = byte(i >> 8)
	return cryptoutil.SumHash(data), data
}

func TestLocalStoreDedup(t *testing.T) {
	ls := NewLocalStore(LocalStoreConfig{Capacity: 1 << 20})
	id, data := lsChunk(0, 100)
	for i := 0; i < 3; i++ {
		if !ls.Put(id, data) {
			t.Fatalf("put %d refused", i)
		}
	}
	if got := ls.PhysicalBytes(); got != 100 {
		t.Errorf("physical = %d, want 100 (one copy)", got)
	}
	if got := ls.LogicalBytes(); got != 300 {
		t.Errorf("logical = %d, want 300 (three accepted puts)", got)
	}
	if r := ls.DedupRatio(); r != 3 {
		t.Errorf("dedup ratio = %v, want 3", r)
	}
	if ls.Len() != 1 {
		t.Errorf("len = %d, want 1", ls.Len())
	}
	got, ok := ls.Get(id)
	if !ok || !bytes.Equal(got, data) {
		t.Error("get after dedup puts failed")
	}
}

func TestLocalStoreDedupHitAtCapacity(t *testing.T) {
	// A duplicate put costs no disk, so it must succeed even when the
	// store is full.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 100})
	id, data := lsChunk(0, 100)
	if !ls.Put(id, data) {
		t.Fatal("first put refused")
	}
	if !ls.Put(id, data) {
		t.Error("duplicate put refused at capacity")
	}
	id2, data2 := lsChunk(1, 1)
	if ls.Put(id2, data2) {
		t.Error("new put accepted beyond capacity without GC")
	}
}

func TestLocalStoreEmptyRatio(t *testing.T) {
	ls := NewLocalStore(LocalStoreConfig{Capacity: 10})
	if r := ls.DedupRatio(); r != 1 {
		t.Errorf("empty-store dedup ratio = %v, want 1", r)
	}
	if _, ok := ls.Get(cryptoutil.Hash{}); ok {
		t.Error("get on empty store succeeded")
	}
}

func TestLocalStoreMemTier(t *testing.T) {
	// Mem tier fits two 100-byte chunks. Writing three means the first
	// (coldest) is demoted; reading it is a disk hit that re-promotes it.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 1 << 20, MemCapacity: 200})
	ids := make([]cryptoutil.Hash, 3)
	for i := range ids {
		id, data := lsChunk(i, 100)
		ids[i] = id
		ls.Put(id, data)
	}
	if got := ls.MemBytes(); got != 200 {
		t.Fatalf("mem bytes = %d, want 200", got)
	}
	if _, ok := ls.Get(ids[0]); !ok {
		t.Fatal("get evicted-from-mem chunk failed")
	}
	mem, disk := ls.TierHits()
	if mem != 0 || disk != 1 {
		t.Errorf("tier hits = (%d, %d), want (0, 1): chunk 0 was demoted", mem, disk)
	}
	// Promotion happened: the second read is a mem hit.
	ls.Get(ids[0])
	if mem, _ := ls.TierHits(); mem != 1 {
		t.Errorf("mem hits after re-read = %d, want 1 (disk read promotes)", mem)
	}
	// Chunk 1 paid for the promotion (LRU among residents).
	ls.Get(ids[1])
	if _, disk := ls.TierHits(); disk != 2 {
		t.Errorf("disk hits = %d, want 2 (chunk 1 demoted by promotion)", disk)
	}
}

func TestLocalStoreMemOversize(t *testing.T) {
	// A chunk larger than the whole memory tier is served from disk only
	// and must not evict the resident cache.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 1 << 20, MemCapacity: 100})
	small, smallData := lsChunk(0, 80)
	big, bigData := lsChunk(1, 200)
	ls.Put(small, smallData)
	ls.Put(big, bigData)
	if got := ls.MemBytes(); got != 80 {
		t.Errorf("mem bytes = %d, want 80 (oversize chunk bypasses mem)", got)
	}
	ls.Get(small)
	if mem, _ := ls.TierHits(); mem != 1 {
		t.Error("small chunk should still be memory-resident")
	}
}

func TestLocalStorePeek(t *testing.T) {
	// Peek serves proofs: no tier-hit accounting, no promotion, but the
	// access count and recency still move.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 1 << 20, MemCapacity: 50})
	id, data := lsChunk(0, 100)
	ls.Put(id, data)
	got, ok := ls.Peek(id)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("peek failed")
	}
	mem, disk := ls.TierHits()
	if mem != 0 || disk != 0 {
		t.Errorf("peek counted tier hits (%d, %d)", mem, disk)
	}
	if ls.Accesses(id) != 1 {
		t.Errorf("accesses = %d, want 1", ls.Accesses(id))
	}
	if _, ok := ls.Peek(cryptoutil.SumHash([]byte("missing"))); ok {
		t.Error("peek of missing chunk succeeded")
	}
	if ls.Accesses(cryptoutil.SumHash([]byte("missing"))) != 0 {
		t.Error("accesses of missing chunk non-zero")
	}
}

func TestLocalStoreGCReleasedFirst(t *testing.T) {
	// Disk holds 10 × 100B. GC must evict released chunks before
	// still-referenced ones, LRU order within each pass.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 1000, GC: true, GCLowWater: 0.8})
	ids := make([]cryptoutil.Hash, 10)
	for i := range ids {
		id, data := lsChunk(i, 100)
		ids[i] = id
		ls.Put(id, data)
	}
	// Release 3 and 7; touch 3 so 7 is the colder released chunk.
	ls.Release(ids[3])
	ls.Release(ids[7])
	ls.Get(ids[3])
	id, data := lsChunk(100, 100)
	if !ls.Put(id, data) {
		t.Fatal("put under GC refused")
	}
	// Target = 0.8*1000 = 800, so two evictions: both released chunks go,
	// no referenced chunk is touched.
	if ls.Has(ids[7]) || ls.Has(ids[3]) {
		t.Error("released chunks survived GC that needed their space")
	}
	for i, want := range ids {
		if i == 3 || i == 7 {
			continue
		}
		if !ls.Has(want) {
			t.Errorf("referenced chunk %d evicted while released chunks existed", i)
		}
	}
	if got := ls.GCReclaimedBytes(); got != 200 {
		t.Errorf("gc reclaimed = %d, want 200", got)
	}
}

func TestLocalStoreGCSecondPass(t *testing.T) {
	// No released chunks: GC's second pass must evict referenced (but
	// unpinned) chunks, coldest first, and spare pinned ones.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 400, GC: true})
	ids := make([]cryptoutil.Hash, 4)
	for i := range ids {
		id, data := lsChunk(i, 100)
		ids[i] = id
		ls.Put(id, data)
	}
	if !ls.Pin(ids[0]) {
		t.Fatal("pin failed")
	}
	if !ls.Pinned(ids[0]) {
		t.Fatal("pinned chunk not reported pinned")
	}
	id, data := lsChunk(100, 100)
	if !ls.Put(id, data) {
		t.Fatal("put under GC refused")
	}
	if !ls.Has(ids[0]) {
		t.Error("pinned chunk evicted")
	}
	if ls.Has(ids[1]) {
		t.Error("coldest unpinned chunk survived")
	}
	// Unpin makes it eligible again.
	ls.Unpin(ids[0])
	if ls.Pinned(ids[0]) {
		t.Error("chunk still pinned after unpin")
	}
}

func TestLocalStoreGCOversizedPut(t *testing.T) {
	// A chunk that can never fit must be refused without wiping the store.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 100, GC: true})
	id, data := lsChunk(0, 60)
	ls.Put(id, data)
	big, bigData := lsChunk(1, 200)
	if ls.Put(big, bigData) {
		t.Fatal("oversized put accepted")
	}
	if !ls.Has(id) {
		t.Error("resident chunk evicted for a put that could never fit")
	}
}

func TestLocalStoreReleaseUnderflow(t *testing.T) {
	ls := NewLocalStore(LocalStoreConfig{Capacity: 1 << 20})
	id, data := lsChunk(0, 10)
	ls.Put(id, data)
	ls.Release(id)
	ls.Release(id) // extra release must not underflow
	ls.Unpin(id)   // unpin without pin must not underflow
	if !ls.Has(id) {
		t.Error("release deleted the chunk (reclaim must be lazy)")
	}
}

func TestLocalStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ls := NewLocalStore(LocalStoreConfig{Capacity: 300, MemCapacity: 100, GC: true})
	ls.AttachMetrics(reg)
	ids := make([]cryptoutil.Hash, 3)
	for i := range ids {
		id, data := lsChunk(i, 100)
		ids[i] = id
		ls.Put(id, data)
		ls.Put(id, data) // dedup hit
	}
	ls.Get(ids[2]) // mem hit (most recent is resident)
	ls.Get(ids[0]) // disk hit
	ls.Release(ids[0])
	id, data := lsChunk(100, 100)
	ls.Put(id, data) // forces GC
	if v := reg.Counter("storage.tier.mem.hits").Value(); v != 1 {
		t.Errorf("mem.hits = %d, want 1", v)
	}
	if v := reg.Counter("storage.tier.disk.hits").Value(); v != 1 {
		t.Errorf("disk.hits = %d, want 1", v)
	}
	if v := reg.Counter("storage.gc.reclaimed_bytes").Value(); v <= 0 {
		t.Errorf("gc.reclaimed_bytes = %d, want > 0", v)
	}
	if v := reg.Gauge("storage.dedup.ratio").Value(); v <= 1 {
		t.Errorf("dedup.ratio gauge = %v, want > 1", v)
	}
}

func TestLocalStoreLRUOrderAcrossOps(t *testing.T) {
	// Sanity sweep: interleaved puts/gets/peeks keep both LRU lists
	// consistent with the entry map (every eviction still finds its
	// elements). Exercised by evicting everything via GC pressure.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 500, MemCapacity: 200, GC: true})
	for round := 0; round < 6; round++ {
		for i := 0; i < 5; i++ {
			id, data := lsChunk(round*5+i, 100)
			ls.Put(id, data)
			if i%2 == 0 {
				ls.Get(id)
			} else {
				ls.Peek(id)
			}
		}
		for i := 0; i < 5; i++ {
			id, _ := lsChunk(round*5+i, 100)
			ls.Release(id)
		}
	}
	if ls.PhysicalBytes() > 500 {
		t.Errorf("physical %d exceeds capacity", ls.PhysicalBytes())
	}
	if ls.MemBytes() > 200 {
		t.Errorf("mem %d exceeds mem capacity", ls.MemBytes())
	}
	if ls.Len() == 0 {
		t.Error("store ended empty")
	}
}

func TestLocalStorePinMissing(t *testing.T) {
	ls := NewLocalStore(LocalStoreConfig{Capacity: 10})
	if ls.Pin(cryptoutil.SumHash([]byte("nope"))) {
		t.Error("pin of missing chunk succeeded")
	}
}

func TestLocalStorePutCopies(t *testing.T) {
	// The store must own its bytes: mutating the caller's buffer after
	// Put must not corrupt the stored chunk.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 1 << 10})
	data := []byte("immutable once stored")
	id := cryptoutil.SumHash(data)
	ls.Put(id, data)
	data[0] = 'X'
	got, _ := ls.Get(id)
	if got[0] == 'X' {
		t.Error("store aliases the caller's buffer")
	}
}

func TestLocalStoreManyUniqueFill(t *testing.T) {
	// Fill to exactly capacity with unique chunks, then verify the next
	// put is refused without GC and accepted with it.
	for _, gc := range []bool{false, true} {
		ls := NewLocalStore(LocalStoreConfig{Capacity: 1000, GC: gc})
		for i := 0; i < 10; i++ {
			id, data := lsChunk(i, 100)
			if !ls.Put(id, data) {
				t.Fatalf("gc=%v: fill put %d refused", gc, i)
			}
		}
		id, data := lsChunk(100, 100)
		if got := ls.Put(id, data); got != gc {
			t.Errorf("gc=%v: over-capacity put accepted=%v", gc, got)
		}
	}
}

func TestLocalStoreAccessCounters(t *testing.T) {
	ls := NewLocalStore(LocalStoreConfig{Capacity: 1 << 10})
	id, data := lsChunk(0, 10)
	ls.Put(id, data)
	for i := 0; i < 3; i++ {
		ls.Get(id)
	}
	ls.Peek(id)
	if got := ls.Accesses(id); got != 4 {
		t.Errorf("accesses = %d, want 4", got)
	}
}

func TestLocalStoreStress(t *testing.T) {
	// Deterministic mixed workload against a small store; invariants
	// checked throughout: capacity respected, dedup ratio >= 1, tier
	// accounting non-negative.
	ls := NewLocalStore(LocalStoreConfig{Capacity: 2000, MemCapacity: 500, GC: true})
	for i := 0; i < 500; i++ {
		id, data := lsChunk(i%40, 50+(i%3)*25)
		ls.Put(id, data)
		if i%5 == 0 {
			ls.Get(id)
		}
		if i%11 == 0 {
			ls.Release(id)
		}
		if i%17 == 0 {
			ls.Pin(id)
		}
		if i%17 == 1 && i > 17 {
			prev, _ := lsChunk((i-1)%40, 50+((i-1)%3)*25)
			ls.Unpin(prev)
		}
		if ls.PhysicalBytes() > 2000 {
			t.Fatalf("step %d: physical %d over capacity", i, ls.PhysicalBytes())
		}
		if ls.MemBytes() > 500 {
			t.Fatalf("step %d: mem %d over capacity", i, ls.MemBytes())
		}
		if ls.DedupRatio() < 1 {
			t.Fatalf("step %d: dedup ratio %v < 1", i, ls.DedupRatio())
		}
	}
	mem, disk := ls.TierHits()
	if mem+disk == 0 {
		t.Error("no tier hits recorded")
	}
	if testing.Verbose() {
		fmt.Printf("stress: phys=%d mem=%d ratio=%.2f hits=(%d,%d) gc=%d\n",
			ls.PhysicalBytes(), ls.MemBytes(), ls.DedupRatio(), mem, disk, ls.GCReclaimedBytes())
	}
}
