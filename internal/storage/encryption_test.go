package storage

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestBoxRoundTripVariousSizes(t *testing.T) {
	k := NewBoxKey([]byte("owner master secret"))
	for _, size := range []int{0, 1, 100, boxFrameSize - 1, boxFrameSize, boxFrameSize + 1, 3*boxFrameSize + 17} {
		data := mkData(int64(size), size)
		sealed, err := k.EncryptObject(data)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		got, err := k.DecryptObject(sealed)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestBoxCiphertextUnreadableAndKeyed(t *testing.T) {
	k1 := NewBoxKey([]byte("alice"))
	k2 := NewBoxKey([]byte("mallory"))
	data := []byte("plaintext the provider must never see")
	sealed, _ := k1.EncryptObject(data)
	if bytes.Contains(sealed, []byte("plaintext")) {
		t.Fatal("plaintext leaked into sealed object")
	}
	if _, err := k2.DecryptObject(sealed); err == nil {
		t.Fatal("wrong key decrypted the object")
	}
	// Tampering is detected.
	sealed[len(sealed)-1] ^= 0xff
	if _, err := k1.DecryptObject(sealed); err == nil {
		t.Fatal("tampered object decrypted")
	}
	// Truncation is detected.
	if _, err := k1.DecryptObject(sealed[:3]); err == nil {
		t.Fatal("truncated object accepted")
	}
}

func TestBoxProperty(t *testing.T) {
	k := NewBoxKey([]byte("prop"))
	f := func(data []byte) bool {
		sealed, err := k.EncryptObject(data)
		if err != nil {
			return false
		}
		got, err := k.DecryptObject(sealed)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGuerrillaCloud is §5.3's "Decoupling authority from infrastructure …
// running encrypted services on the cloud" as an executable scenario: the
// owner stores a sealed object on an untrusted hyperscale provider. The
// provider can serve, refuse, or delete — but never read or silently
// modify — and when it censors, the owner's audit detects it and repair
// relocates the data to another provider without the owner ever trusting
// either one.
func TestGuerrillaCloud(t *testing.T) {
	nw, client, providers := storageWorld(t, 51, 4, 1<<30)
	cloud := providers[0] // the feudal provider
	secret := []byte("the authority stays with the user")
	k := NewBoxKey([]byte("owner key"))
	sealed, err := k.EncryptObject(secret)
	if err != nil {
		t.Fatal(err)
	}

	var m *Manifest
	var pl *Placement
	client.Upload(sealed, 1024, []ProviderRef{cloud.Ref(), providers[1].Ref()}, 2,
		func(mm *Manifest, pp *Placement, err error) {
			if err != nil {
				t.Fatal(err)
			}
			m, pl = mm, pp
		})
	nw.RunAll()

	// The cloud holds only ciphertext: inspect its stores directly.
	for _, id := range m.Chunks {
		if !cloud.HasChunk(id) {
			t.Fatal("cloud did not store the chunk")
		}
	}
	// (Chunk contents are content-addressed sealed bytes; the plaintext
	// never appears — covered by TestBoxCiphertextUnreadableAndKeyed.)

	// The cloud censors: crashes (or deletes). Audit detects, repair moves
	// the data to an independent provider, and the owner decrypts as before.
	cloud.Node().Crash()
	var report *AuditReport
	client.Audit(m, pl, 5*time.Second, func(r *AuditReport) { report = r })
	nw.Run(nw.Now() + time.Minute)
	if report.Failed() == 0 {
		t.Fatal("censorship went undetected")
	}
	for _, res := range report.Results {
		if !res.OK {
			pl.Remove(m.Chunks[res.ChunkIndex], res.Holder)
		}
	}
	client.Repair(m, pl, refs(providers), func(restored int, err error) {
		if err != nil || restored == 0 {
			t.Fatalf("repair: restored=%d err=%v", restored, err)
		}
	})
	nw.Run(nw.Now() + time.Minute)

	var fetched []byte
	client.Download(m, pl, func(d []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		fetched = d
	})
	nw.Run(nw.Now() + time.Minute)
	got, err := k.DecryptObject(fetched)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("plaintext corrupted through censorship + repair")
	}
}
